package rotary_test

// End-to-end exercises of the public facade — the same surface the
// examples and a downstream adopter use.

import (
	"testing"

	"rotary"
)

func TestPublicAPIAQPEndToEnd(t *testing.T) {
	ds := rotary.GenerateTPCH(0.005, 1)
	cat := rotary.NewCatalog(ds, 1)
	repo := rotary.NewRepository()
	if err := rotary.SeedAQPHistory(repo, cat, rotary.RecommendedBatchRows(cat)); err != nil {
		t.Fatal(err)
	}
	sched := rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3))
	exec := rotary.NewAQPExecutor(rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat)), sched, repo)

	cmd := "SELECT SUM(L_EXTENDEDPRICE*L_DISCOUNT) FROM LINEITEM ACC MIN 80% WITHIN 900 SECONDS"
	rest, crit, err := rotary.ParseCriteria(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if rest == "" || crit.Kind != rotary.AccuracyCriteria {
		t.Fatalf("parse: %q %+v", rest, crit)
	}
	q, err := cat.NewQuery("q6")
	if err != nil {
		t.Fatal(err)
	}
	job, err := rotary.NewAQPJob(rotary.AQPJobConfig{
		ID: "api-q6", Query: q, Criteria: crit, Class: "light",
		BatchRows: rotary.RecommendedBatchRows(cat),
	})
	if err != nil {
		t.Fatal(err)
	}
	exec.Submit(job, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	if !job.Status().Terminal() {
		t.Fatalf("job not terminal: %v", job.Status())
	}
	if job.Status() == rotary.StatusAttainedStop && job.EstimatedAccuracy() < 0.8 {
		t.Errorf("attained at estimated accuracy %v < threshold", job.EstimatedAccuracy())
	}
	rep := rotary.AnalyzeAQP("api", exec.Jobs(), nil)
	if len(rep.Outcomes) != 1 {
		t.Fatalf("report has %d outcomes", len(rep.Outcomes))
	}
}

func TestPublicAPIDLTEndToEnd(t *testing.T) {
	repo := rotary.NewRepository()
	if err := rotary.SeedDLTHistory(repo, 15, 30, 2); err != nil {
		t.Fatal(err)
	}
	sched := rotary.NewRotaryDLT(0.5, rotary.NewTEE(repo, 3), rotary.NewTME(repo, 3))
	exec := rotary.NewDLTExecutor(rotary.DefaultDLTExecConfig(), sched, repo)

	_, crit, err := rotary.ParseCriteria("TRAIN RESNET ON CIFAR10 ACC DELTA 0.01 WITHIN 30 EPOCHS")
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := rotary.NewTrainer(rotary.DLTConfig{
		Model: "resnet-18", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rotary.NewDLTJob("api-resnet", trainer, crit)
	if err != nil {
		t.Fatal(err)
	}
	exec.Submit(job, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	if job.Status() != rotary.StatusAttainedStop {
		t.Fatalf("convergence job ended %v", job.Status())
	}
	if job.ConvergedAtEpoch() == 0 {
		t.Error("no convergence epoch recorded")
	}
	snaps := rotary.SnapshotDLT(exec.Jobs(), []rotary.Time{exec.Engine().Now()})
	if len(snaps) != 1 || snaps[0].Attained != 1 {
		t.Fatalf("snapshot %+v", snaps)
	}
	if g := rotary.RenderGantt(exec.Jobs(), 4, exec.Engine().Now(), 20); g == "" {
		t.Error("empty Gantt")
	}
}

func TestPublicAPIWorkloadGeneration(t *testing.T) {
	specs := rotary.GenerateAQPWorkload(rotary.DefaultAQPWorkload(10, 1))
	if len(specs) != 10 {
		t.Fatalf("%d AQP specs", len(specs))
	}
	dspecs, err := rotary.GenerateDLTWorkload(rotary.DefaultDLTWorkload(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(dspecs) != 10 {
		t.Fatalf("%d DLT specs", len(dspecs))
	}
	if len(rotary.TPCHQueries) != 22 {
		t.Fatalf("%d TPC-H queries", len(rotary.TPCHQueries))
	}
	if len(rotary.Models()) == 0 {
		t.Fatal("empty model zoo")
	}
}
