package core_test

import (
	"fmt"
	"testing"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Metamorphic equivalence suite for the control-plane fast path: a run
// with decision caching enabled must be indistinguishable from the same
// run with it disabled — bit-identical trace sequences (every decision,
// timestamp, thread/device allocation, and detail string), terminal
// statuses, epoch counts, stop accuracies, and end times — across every
// policy, at seeds 1/7/42, including under fault-injection and overload
// chaos. The cache is only sound if a signature hit provably reproduces
// the slow-path decision; these tests are the proof obligation's
// empirical half (the analytical half is argued in fastpath.go).

// tracesIdentical fails unless the two runs produced exactly the same
// event sequence.
func tracesIdentical(t *testing.T, label string, off, on []core.TraceEvent) {
	t.Helper()
	if len(off) != len(on) {
		t.Errorf("%s: trace length diverged: off=%d on=%d", label, len(off), len(on))
		return
	}
	for i := range off {
		if off[i] != on[i] {
			t.Errorf("%s: trace diverged at event %d:\n  off: %+v\n  on:  %+v", label, i, off[i], on[i])
			return
		}
	}
}

// equivAQPRun executes one AQP workload with the fast path on or off.
// Everything else — scheduler, estimator repository, jobs, fault
// schedule — is rebuilt identically per run so the toggle is the only
// difference.
func equivAQPRun(t *testing.T, cat *tpch.Catalog, specs []workload.AQPSpec,
	mkSched func(*estimate.Repository) core.AQPScheduler, fastOn bool) (*core.AQPExecutor, *core.Tracer) {
	t.Helper()
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 2000); err != nil {
		t.Fatal(err)
	}
	tracer := core.NewTracer(0)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Tracer = tracer
	cfg.Obs = obs.NewRegistry()
	cfg.FastPath = fastOn
	exec := core.NewAQPExecutor(cfg, mkSched(repo), repo)
	for _, spec := range specs {
		j, err := workload.BuildAQPJob(cat, spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.ID, err)
		}
		exec.Submit(j, sim.Time(spec.ArrivalSecs))
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("fast=%v: %v", fastOn, err)
	}
	return exec, tracer
}

func equivAQPPolicies() map[string]func(*estimate.Repository) core.AQPScheduler {
	return map[string]func(*estimate.Repository) core.AQPScheduler{
		"rotary-aqp": func(repo *estimate.Repository) core.AQPScheduler {
			return core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		},
		"round-robin": func(*estimate.Repository) core.AQPScheduler { return baselines.RoundRobinAQP{} },
		"edf":         func(*estimate.Repository) core.AQPScheduler { return baselines.EDFAQP{} },
		"laf":         func(*estimate.Repository) core.AQPScheduler { return baselines.LAFAQP{} },
		"relaqs":      func(*estimate.Repository) core.AQPScheduler { return baselines.ReLAQS{} },
	}
}

// TestFastPathAQPEquivalence: all five AQP policies, seeds 1/7/42, fast
// path off vs on — bit-identical traces and outcomes.
func TestFastPathAQPEquivalence(t *testing.T) {
	var hits, misses uint64
	for name, mk := range equivAQPPolicies() {
		for _, seed := range chaosSeeds {
			label := fmt.Sprintf("%s/seed=%d", name, seed)
			cat, specs := buildAQPWorkload(t, 8, seed)
			off, offTr := equivAQPRun(t, cat, specs, mk, false)
			on, onTr := equivAQPRun(t, cat, specs, mk, true)
			tracesIdentical(t, label, offTr.Events(), onTr.Events())
			want := aqpOutcomes(off.Jobs())
			for _, j := range on.Jobs() {
				w := want[j.ID()]
				if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
					t.Errorf("%s: job %s diverged: %v/%d/%v, want %v/%d/%v",
						label, j.ID(), j.Status(), j.Epochs(), j.StopAccuracy(),
						w.status, w.epochs, w.stopAcc)
				}
				if !snapshotsEqual(j.Query().Snapshot().Groups, w.groups) {
					t.Errorf("%s: job %s final aggregates diverged", label, j.ID())
				}
			}
			if off.Engine().Now() != on.Engine().Now() {
				t.Errorf("%s: makespans diverged: off=%v on=%v", label, off.Engine().Now(), on.Engine().Now())
			}
			st := on.FastPath()
			if st.Bypassed > 0 {
				t.Errorf("%s: %d arbitrations bypassed — profiled policy should engage the cache", label, st.Bypassed)
			}
			hits += st.Hits
			misses += st.Misses
		}
	}
	if hits+misses == 0 {
		t.Error("fast path never consulted across any AQP run")
	}
	t.Logf("AQP live-run cache: %d hits / %d misses", hits, misses)
}

// equivDLTRun mirrors equivAQPRun for the DLT executor.
func equivDLTRun(t *testing.T, specs []workload.DLTSpec,
	mkSched func(*estimate.Repository) core.DLTScheduler, fastOn bool) (*core.DLTExecutor, *core.Tracer) {
	t.Helper()
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 40, 30, 3); err != nil {
		t.Fatal(err)
	}
	tracer := core.NewTracer(0)
	cfg := core.DefaultDLTExecConfig()
	cfg.Tracer = tracer
	cfg.Obs = obs.NewRegistry()
	cfg.FastPath = fastOn
	exec := core.NewDLTExecutor(cfg, mkSched(repo), repo)
	for _, spec := range specs {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.ID, err)
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("fast=%v: %v", fastOn, err)
	}
	return exec, tracer
}

func equivDLTPolicies() map[string]func(*estimate.Repository) core.DLTScheduler {
	mkRotary := func(threshold float64) func(*estimate.Repository) core.DLTScheduler {
		return func(repo *estimate.Repository) core.DLTScheduler {
			return core.NewRotaryDLT(threshold, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		}
	}
	return map[string]func(*estimate.Repository) core.DLTScheduler{
		"rotary-dlt-efficiency": mkRotary(0.0),
		"rotary-dlt-adaptive":   mkRotary(0.5),
		"rotary-dlt-fairness":   mkRotary(1.0),
		"srf":                   func(*estimate.Repository) core.DLTScheduler { return baselines.SRF{} },
		"bcf":                   func(*estimate.Repository) core.DLTScheduler { return baselines.BCF{} },
		"laf":                   func(*estimate.Repository) core.DLTScheduler { return baselines.LAFDLT{} },
	}
}

// TestFastPathDLTEquivalence: all DLT policies (the three Rotary
// threshold variants and the three baselines), seeds 1/7/42.
func TestFastPathDLTEquivalence(t *testing.T) {
	var hits, misses uint64
	for name, mk := range equivDLTPolicies() {
		for _, seed := range chaosSeeds {
			label := fmt.Sprintf("%s/seed=%d", name, seed)
			specs := mustGenDLT(t, 8, seed)
			off, offTr := equivDLTRun(t, specs, mk, false)
			on, onTr := equivDLTRun(t, specs, mk, true)
			tracesIdentical(t, label, offTr.Events(), onTr.Events())
			want := dltOutcomes(off.Jobs())
			for _, j := range on.Jobs() {
				w := want[j.ID()]
				if j.Status() != w.status || j.Epochs() != w.epochs ||
					j.Accuracy() != w.accuracy || j.ConvergedAtEpoch() != w.convergedAt {
					t.Errorf("%s: job %s diverged: %v/%d/%v/%d, want %v/%d/%v/%d",
						label, j.ID(), j.Status(), j.Epochs(), j.Accuracy(), j.ConvergedAtEpoch(),
						w.status, w.epochs, w.accuracy, w.convergedAt)
				}
			}
			if off.Engine().Now() != on.Engine().Now() {
				t.Errorf("%s: makespans diverged: off=%v on=%v", label, off.Engine().Now(), on.Engine().Now())
			}
			st := on.FastPath()
			if st.Bypassed > 0 {
				t.Errorf("%s: %d arbitrations bypassed", label, st.Bypassed)
			}
			hits += st.Hits
			misses += st.Misses
		}
	}
	if hits+misses == 0 {
		t.Error("fast path never consulted across any DLT run")
	}
	t.Logf("DLT live-run cache: %d hits / %d misses", hits, misses)
}

// TestFastPathRandomEstimatorUncachable: RotaryAQP with the RandomProgress
// estimator consumes an RNG draw per priority call — hidden state no
// signature covers. The profile must degrade to uncachable (every
// arbitration bypassed) and the runs must still match trivially.
func TestFastPathRandomEstimatorUncachable(t *testing.T) {
	mk := func(*estimate.Repository) core.AQPScheduler {
		return baselines.RandomRotaryAQP(sim.NewRand(99))
	}
	cat, specs := buildAQPWorkload(t, 6, 1)
	off, offTr := equivAQPRun(t, cat, specs, mk, false)
	on, onTr := equivAQPRun(t, cat, specs, mk, true)
	tracesIdentical(t, "random-rotary-aqp", offTr.Events(), onTr.Events())
	if off.Engine().Now() != on.Engine().Now() {
		t.Errorf("makespans diverged: off=%v on=%v", off.Engine().Now(), on.Engine().Now())
	}
	st := on.FastPath()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("unversioned estimator must never reach the cache: %+v", st)
	}
	if st.Bypassed == 0 {
		t.Error("no arbitrations recorded as bypassed")
	}
}

// equivChaosAQPRun is runChaosAQP with the fast-path toggle: contended
// 2-thread pool, checkpoint store, recoverable fault injection.
func equivChaosAQPRun(t *testing.T, cat *tpch.Catalog,
	mkSched func(*estimate.Repository) core.AQPScheduler, seed uint64, fastOn bool) (*core.AQPExecutor, *core.Tracer) {
	t.Helper()
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 2000); err != nil {
		t.Fatal(err)
	}
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tracer := core.NewTracer(0)
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 2
	cfg.Store = store
	cfg.Tracer = tracer
	cfg.Obs = obs.NewRegistry()
	cfg.FastPath = fastOn
	in := faults.New(faults.Recoverable(seed, 0.12))
	store.SetFaults(in)
	cfg.Faults = in
	exec := core.NewAQPExecutor(cfg, mkSched(repo), repo)
	for i, j := range chaosAQPJobs(t, cat) {
		exec.Submit(j, sim.Time(float64(i)*5))
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("seed %d fast=%v: %v", seed, fastOn, err)
	}
	return exec, tracer
}

// TestFastPathChaosAQPEquivalence: under crash/transient-I/O injection
// the cached and uncached runs must still be bit-identical — crashes
// dirty in-memory query state, and the needsRestore/crashPending flags
// in the job fingerprints are what keeps such states from colliding
// with clean ones.
func TestFastPathChaosAQPEquivalence(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	policies := map[string]func(*estimate.Repository) core.AQPScheduler{
		"rotary-aqp": func(repo *estimate.Repository) core.AQPScheduler {
			return core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		},
		"relaqs": func(*estimate.Repository) core.AQPScheduler { return baselines.ReLAQS{} },
	}
	for name, mk := range policies {
		for _, seed := range chaosSeeds {
			label := fmt.Sprintf("%s/seed=%d", name, seed)
			off, offTr := equivChaosAQPRun(t, cat, mk, seed, false)
			on, onTr := equivChaosAQPRun(t, cat, mk, seed, true)
			if off.Recovery().Crashes == 0 {
				t.Fatalf("%s: no crashes injected — the run proves nothing", label)
			}
			if off.Recovery() != on.Recovery() {
				t.Errorf("%s: recovery counters diverged: off=%+v on=%+v", label, off.Recovery(), on.Recovery())
			}
			tracesIdentical(t, label, offTr.Events(), onTr.Events())
			want := aqpOutcomes(off.Jobs())
			for _, j := range on.Jobs() {
				w := want[j.ID()]
				if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
					t.Errorf("%s: job %s diverged", label, j.ID())
				}
			}
		}
	}
}

// TestFastPathChaosDLTEquivalence: the full Rotary-DLT policy under
// recoverable fault injection, cached vs uncached.
func TestFastPathChaosDLTEquivalence(t *testing.T) {
	run := func(specs []workload.DLTSpec, seed uint64, fastOn bool) (*core.DLTExecutor, *core.Tracer) {
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 40, 30, 3); err != nil {
			t.Fatal(err)
		}
		store, err := core.NewCheckpointStore(t.TempDir(), 2)
		if err != nil {
			t.Fatal(err)
		}
		tracer := core.NewTracer(0)
		cfg := core.DefaultDLTExecConfig()
		cfg.Store = store
		cfg.Tracer = tracer
		cfg.Obs = obs.NewRegistry()
		cfg.FastPath = fastOn
		in := faults.New(faults.Recoverable(seed, 0.12))
		store.SetFaults(in)
		cfg.Faults = in
		exec := core.NewDLTExecutor(cfg, core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3)), repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatalf("build %s: %v", spec.ID, err)
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			t.Fatalf("seed %d fast=%v: %v", seed, fastOn, err)
		}
		return exec, tracer
	}
	for _, seed := range chaosSeeds {
		label := fmt.Sprintf("rotary-dlt/seed=%d", seed)
		specs := mustGenDLT(t, 8, seed)
		off, offTr := run(specs, seed, false)
		on, onTr := run(specs, seed, true)
		if off.Recovery().Crashes == 0 {
			t.Fatalf("%s: no crashes injected — the run proves nothing", label)
		}
		tracesIdentical(t, label, offTr.Events(), onTr.Events())
		want := dltOutcomes(off.Jobs())
		for _, j := range on.Jobs() {
			w := want[j.ID()]
			if j.Status() != w.status || j.Epochs() != w.epochs ||
				j.Accuracy() != w.accuracy || j.ConvergedAtEpoch() != w.convergedAt {
				t.Errorf("%s: job %s diverged", label, j.ID())
			}
		}
	}
}

// equivOverloadRun is runOverloadAQP with the fast-path toggle and a
// configurable aging setting: AgingRounds > 0 wraps the policy in the
// starvation guard, whose mutable counters make it unprofiled — the
// fast path must then bypass every arbitration rather than cache a
// stateful scheduler.
func equivOverloadRun(t *testing.T, cat *tpch.Catalog, seed uint64, agingRounds int, fastOn bool) (*core.AQPExecutor, *core.Tracer, []*core.AQPJob) {
	t.Helper()
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	store.SetObs(reg)
	ctrl := admission.NewController(admission.Config{
		MaxQueueDepth: overloadQueueBound,
		SlackFactor:   1,
		Policy:        admission.ShedLowestValue,
		Obs:           reg,
	})
	tracer := core.NewTracer(0)
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 2
	cfg.Store = store
	cfg.Admission = ctrl
	cfg.WatchdogSlack = 0.5
	cfg.AgingRounds = agingRounds
	cfg.Tracer = tracer
	cfg.Obs = reg
	cfg.FastPath = fastOn
	in := faults.New(faults.Recoverable(seed, 0.05))
	store.SetFaults(in)
	cfg.Faults = in
	exec := core.NewAQPExecutor(cfg, baselines.EDFAQP{}, nil)

	r := sim.NewRand(seed)
	queries := []string{"q1", "q6", "q12", "q14", "q3", "q19"}
	var jobs []*core.AQPJob
	at := 0.0
	for i := 0; i < 24; i++ {
		deadline := 1e6
		if i%2 == 1 {
			deadline = 150
		}
		j := buildJob(t, cat, fmt.Sprintf("ov-%02d", i), queries[i%len(queries)], 0.9, deadline)
		jobs = append(jobs, j)
		exec.Submit(j, sim.Time(at))
		at += r.Exp(5)
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("seed %d fast=%v: %v", seed, fastOn, err)
	}
	return exec, tracer, jobs
}

// TestFastPathOverloadEquivalence: open-loop overload with admission
// control, shedding, and the watchdog armed. Without aging the cache is
// active; with aging the starvation guard forces a clean bypass. Either
// way: bit-identical.
func TestFastPathOverloadEquivalence(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	for _, aging := range []int{0, 4} {
		for _, seed := range chaosSeeds {
			label := fmt.Sprintf("aging=%d/seed=%d", aging, seed)
			off, offTr, _ := equivOverloadRun(t, cat, seed, aging, false)
			on, onTr, onJobs := equivOverloadRun(t, cat, seed, aging, true)
			tracesIdentical(t, label, offTr.Events(), onTr.Events())
			want := aqpOutcomes(off.Jobs())
			for _, j := range onJobs {
				w := want[j.ID()]
				if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
					t.Errorf("%s: job %s diverged: %v/%d/%v, want %v/%d/%v",
						label, j.ID(), j.Status(), j.Epochs(), j.StopAccuracy(),
						w.status, w.epochs, w.stopAcc)
				}
			}
			st := on.FastPath()
			if aging > 0 {
				if st.Bypassed == 0 {
					t.Errorf("%s: starvation-guard-wrapped policy must bypass the cache", label)
				}
				if st.Hits+st.Misses != 0 {
					t.Errorf("%s: wrapped policy must never reach the cache: %+v", label, st)
				}
			} else if st.Bypassed > 0 {
				t.Errorf("%s: unwrapped EDF should engage the cache, got %d bypasses", label, st.Bypassed)
			}
		}
	}
}

// TestFastPathUnifiedEquivalence: the unified AQP+DLT executor couples
// the two substrates through stateful wrapper schedulers, which the
// fast path must bypass; with both sides' FastPath flags on, the mixed
// run must still match the uncached one exactly.
func TestFastPathUnifiedEquivalence(t *testing.T) {
	run := func(fastOn bool) (*core.UnifiedExecutor, *core.Tracer) {
		cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
		repo := estimate.NewRepository()
		if err := workload.SeedAQPHistory(repo, cat, workload.RecommendedBatchRows(cat)); err != nil {
			t.Fatal(err)
		}
		if err := workload.SeedDLTHistory(repo, 20, 30, 1); err != nil {
			t.Fatal(err)
		}
		tracer := core.NewTracer(0)
		cfg := core.UnifiedExecConfig{
			AQP:       core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)),
			DLT:       core.DefaultDLTExecConfig(),
			Threshold: 0.5,
		}
		cfg.AQP.Tracer = tracer
		cfg.AQP.Obs = obs.NewRegistry()
		cfg.AQP.FastPath = fastOn
		cfg.DLT.Tracer = tracer
		cfg.DLT.Obs = cfg.AQP.Obs
		cfg.DLT.FastPath = fastOn
		u := core.NewUnifiedExecutor(cfg, repo)
		aqpSpecs := workload.GenerateAQP(workload.DefaultAQPWorkload(6, 3))
		for _, spec := range aqpSpecs {
			spec.BatchRows = workload.RecommendedBatchRows(cat)
			j, err := workload.BuildAQPJob(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			u.SubmitAQP(j, sim.Time(spec.ArrivalSecs))
		}
		for _, spec := range mustGenDLT(t, 6, 3) {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			u.SubmitDLT(j, 0)
		}
		if err := u.Run(); err != nil {
			t.Fatalf("fast=%v: %v", fastOn, err)
		}
		return u, tracer
	}
	off, offTr := run(false)
	on, onTr := run(true)
	tracesIdentical(t, "unified", offTr.Events(), onTr.Events())
	if off.Engine().Now() != on.Engine().Now() {
		t.Errorf("makespans diverged: off=%v on=%v", off.Engine().Now(), on.Engine().Now())
	}
	wantAQP := aqpOutcomes(off.AQPJobs())
	for _, j := range on.AQPJobs() {
		w := wantAQP[j.ID()]
		if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
			t.Errorf("unified: AQP job %s diverged", j.ID())
		}
	}
	wantDLT := dltOutcomes(off.DLTJobs())
	for _, j := range on.DLTJobs() {
		w := wantDLT[j.ID()]
		if j.Status() != w.status || j.Epochs() != w.epochs || j.Accuracy() != w.accuracy {
			t.Errorf("unified: DLT job %s diverged", j.ID())
		}
	}
}
