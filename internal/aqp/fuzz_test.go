package aqp

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzGroupTableJSON fuzzes the checkpoint format: any input that
// UnmarshalJSON accepts must re-marshal without error, and the re-decoded
// table must hold the identical cells (checkpoints are lossless). No
// input may panic — malformed group rows are rejected with an error
// instead.
func FuzzGroupTableJSON(f *testing.F) {
	// Seed corpus from the shapes the checkpoint tests exercise.
	seed := func(build func(*GroupTable)) {
		gt := NewGroupTable([]AggSpec{
			{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}, {Name: "a", Kind: Avg},
			{Name: "mn", Kind: Min}, {Name: "mx", Kind: Max},
		})
		build(gt)
		data, err := json.Marshal(gt)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(func(gt *GroupTable) {})
	seed(func(gt *GroupTable) {
		gt.Update("g", 4, 1, 4, 4, 4)
		gt.Update("g", -2, 1, -2, -2, -2)
		gt.Update("h", 1e300, 1, 1e-300, 0, 0)
	})
	seed(func(gt *GroupTable) {
		// ±Inf extrema sentinels: a group whose columns saw only NaN.
		gt.Update("empty", math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN())
	})
	f.Add([]byte(`{"specs":[{"name":"x","kind":0,"weight":2}],"groups":{"":[{"sum":1,"sumsq":1,"count":1,"min":"-Inf","max":"+Inf"}]}}`))
	f.Add([]byte(`{"specs":[],"groups":{}}`))
	f.Add([]byte(`{"specs":[{"name":"x","kind":0}],"groups":{"g":[]}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		gt := &GroupTable{}
		if err := json.Unmarshal(data, gt); err != nil {
			return // rejected inputs are fine; panics are not
		}
		out, err := json.Marshal(gt)
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v\ninput: %q", err, data)
		}
		back := &GroupTable{}
		if err := json.Unmarshal(out, back); err != nil {
			t.Fatalf("round trip rejected its own output: %v\noutput: %q", err, out)
		}
		// Every cell must survive bit-for-bit: compare the raw accumulator
		// state, not just the reduced snapshot.
		if len(back.specs) != len(gt.specs) || len(back.groups) != len(gt.groups) {
			t.Fatalf("round trip changed shape: %d/%d specs, %d/%d groups",
				len(back.specs), len(gt.specs), len(back.groups), len(gt.groups))
		}
		for g, cs := range gt.groups {
			bs, ok := back.groups[g]
			if !ok || len(bs) != len(cs) {
				t.Fatalf("round trip lost group %q", g)
			}
			for i := range cs {
				if !cellsEqual(cs[i], bs[i]) {
					t.Fatalf("group %q cell %d changed: %+v vs %+v", g, i, cs[i], bs[i])
				}
			}
		}
		// The second marshal must be byte-stable (same canonical form).
		out2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal not canonical:\n%q\n%q", out, out2)
		}
	})
}

// cellsEqual compares accumulators bit-for-bit, treating NaN as equal to
// itself (the round trip must preserve it, even though NaN != NaN).
func cellsEqual(a, b cell) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Sum, b.Sum) && eq(a.SumSq, b.SumSq) && a.Count == b.Count &&
		eq(a.Min, b.Min) && eq(a.Max, b.Max)
}
