package experiments

import (
	"fmt"
	"os"
	"strings"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/workload"
)

// AblationMaterialization exercises §VI's materialization trade-off with
// the real checkpoint store: the same contended Table I workload runs
// with deferred-job state persisted disk-only versus with a memory tier
// large enough to keep every paused job resident. Headline metrics:
// makespan and attained jobs.
func AblationMaterialization(cfg Config) (*AblationResult, error) {
	cat := catalogFor(cfg.SF, cfg.Seed)
	wcfg := workload.DefaultAQPWorkload(cfg.AQPJobs, cfg.Seed)
	wcfg.BatchRows = workload.RecommendedBatchRows(cat)
	specs := workload.GenerateAQP(wcfg)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, wcfg.BatchRows); err != nil {
		return nil, err
	}

	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: checkpoint materialization (disk-only vs memory tier)\n")
	for _, v := range []struct {
		label string
		slots int
	}{{"disk-only", 0}, {"memory-tier", 1 << 20}} {
		dir, err := os.MkdirTemp("", "rotary-ckpt-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := core.NewCheckpointStore(dir, v.slots)
		if err != nil {
			return nil, err
		}
		execCfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
		execCfg.Store = store
		// A small pool forces constant deferral, so checkpoints are
		// actually resumed rather than hot-continued.
		execCfg.Threads = 6
		execCfg.CheckpointBaseSecs = 5
		sched := core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		exec := core.NewAQPExecutor(execCfg, sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildAQPJob(cat, spec)
			if err != nil {
				return nil, err
			}
			exec.Submit(j, sim.Time(spec.ArrivalSecs))
		}
		if err := exec.Run(); err != nil {
			return nil, err
		}
		attained := 0
		for _, j := range exec.Jobs() {
			runtime := (j.EndTime() - j.Arrival()).Seconds()
			if j.StopAccuracy() >= j.Criteria().Threshold && runtime <= j.DeadlineSecs() &&
				j.Status() != core.StatusExpired {
				attained++
			}
		}
		writes, memHits, diskHits, diskBytes := store.Stats()
		res.Values[v.label+"/makespan"] = exec.Engine().Now().Seconds()
		res.Values[v.label+"/attained"] = float64(attained)
		fmt.Fprintf(&b, "%-12s makespan=%.0fs attained=%d writes=%d mem-resumes=%d disk-resumes=%d disk-bytes=%d\n",
			v.label, exec.Engine().Now().Seconds(), attained, writes, memHits, diskHits, diskBytes)
	}
	res.Text = b.String()
	return res, nil
}

// UnifiedResult compares the §VI unified AQP+DLT system's cluster-wide
// fairness threshold at T = 100% and T = 0% on a mixed workload.
type UnifiedResult struct {
	// MinProgressAt maps "T=100%"/"T=0%" to the cluster-wide minimum
	// progress sampled every 10 virtual minutes.
	MinProgressAt map[string][]float64
	// Attained maps the variants to total attained jobs (AQP + DLT).
	Attained map[string]int
	Text     string
}

// Unified regenerates the §VI unified-arbitration comparison.
func Unified(cfg Config) (*UnifiedResult, error) {
	res := &UnifiedResult{
		MinProgressAt: map[string][]float64{},
		Attained:      map[string]int{},
	}
	var b strings.Builder
	b.WriteString("§VI extension: unified AQP+DLT arbitration, cluster-wide min progress per 10 min\n")
	for _, v := range []struct {
		label     string
		threshold float64
	}{{"T=100%", 1.0}, {"T=0%", 0.0}} {
		cat := catalogFor(cfg.SF, cfg.Seed)
		repo := estimate.NewRepository()
		if err := workload.SeedAQPHistory(repo, cat, workload.RecommendedBatchRows(cat)); err != nil {
			return nil, err
		}
		if err := workload.SeedDLTHistory(repo, 30, 30, cfg.Seed); err != nil {
			return nil, err
		}
		u := core.NewUnifiedExecutor(core.UnifiedExecConfig{
			AQP:       core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)),
			DLT:       core.DefaultDLTExecConfig(),
			Threshold: v.threshold,
		}, repo)
		wcfg := workload.DefaultAQPWorkload(cfg.AQPJobs/2, cfg.Seed)
		wcfg.BatchRows = workload.RecommendedBatchRows(cat)
		for _, spec := range workload.GenerateAQP(wcfg) {
			j, err := workload.BuildAQPJob(cat, spec)
			if err != nil {
				return nil, err
			}
			u.SubmitAQP(j, sim.Time(spec.ArrivalSecs))
		}
		dltSpecs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(cfg.DLTJobs/2, cfg.Seed))
		if err != nil {
			return nil, err
		}
		for _, spec := range dltSpecs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				return nil, err
			}
			u.SubmitDLT(j, 0)
		}
		var series []float64
		for tick := sim.Time(600); ; tick += 600 {
			u.Engine().RunUntil(tick)
			series = append(series, u.MinProgress())
			if u.Engine().Pending() == 0 {
				break
			}
		}
		attained := 0
		for _, j := range u.AQPJobs() {
			if j.Status() == core.StatusAttainedStop {
				attained++
			}
		}
		for _, j := range u.DLTJobs() {
			if j.Status() == core.StatusAttainedStop {
				attained++
			}
		}
		res.MinProgressAt[v.label] = series
		res.Attained[v.label] = attained
		fmt.Fprintf(&b, "%-8s attained=%d min-progress:", v.label, attained)
		for i, p := range series {
			if i >= 12 {
				b.WriteString(" …")
				break
			}
			fmt.Fprintf(&b, " %.2f", p)
		}
		b.WriteByte('\n')
	}
	res.Text = b.String()
	return res, nil
}

// AblationSwapOverhead quantifies §III-C's third advantage ("the overhead
// of job interruption, such as checkpointing to disk, can be avoided if a
// job is continuously prioritized"): the same DLT workload runs under
// efficiency Rotary-DLT — which keeps its top jobs on their devices for
// consecutive epochs — with the swap cost (checkpoint + restore + CUDA
// warm-up on re-placement) zeroed versus priced, against round-robin
// SRF-tail scheduling, whose rotation churns placements.
func AblationSwapOverhead(cfg Config) (*AblationResult, error) {
	specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(cfg.DLTJobs, cfg.Seed))
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: placement-swap overhead (§III-C continuous prioritization)\n")
	variants := []struct {
		label string
		sched string // "rotary" or "rr"
		swap  bool
	}{
		{"rotary/free-swaps", "rotary", false},
		{"rotary/priced-swaps", "rotary", true},
		{"round-robin/free-swaps", "rr", false},
		{"round-robin/priced-swaps", "rr", true},
	}
	for _, v := range variants {
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 40, 30, cfg.Seed); err != nil {
			return nil, err
		}
		execCfg := core.DefaultDLTExecConfig()
		if !v.swap {
			execCfg.SwapBaseSecs = 0
			execCfg.SwapSecsPerParam = 0
		}
		var sched core.DLTScheduler
		if v.sched == "rotary" {
			sched = core.NewRotaryDLT(0, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		} else {
			sched = baselines.SRF{}
		}
		exec := core.NewDLTExecutor(execCfg, sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				return nil, err
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			return nil, err
		}
		// Total GPU-seconds consumed: swap costs land here directly (the
		// makespan absorbs them into round-barrier slack).
		var busy float64
		for _, j := range exec.Jobs() {
			busy += j.ProcessingSecs()
		}
		res.Values[v.label] = busy
		fmt.Fprintf(&b, "%-26s gpu-seconds=%.0f makespan=%.0fs\n",
			v.label, busy, exec.Engine().Now().Seconds())
	}
	// Swap-cost penalty per policy: the GPU time burned on checkpoint/
	// restore/warm-up. Continuous prioritization keeps Rotary's low.
	rotaryPenalty := res.Values["rotary/priced-swaps"] - res.Values["rotary/free-swaps"]
	rrPenalty := res.Values["round-robin/priced-swaps"] - res.Values["round-robin/free-swaps"]
	res.Values["rotary/penalty"] = rotaryPenalty
	res.Values["round-robin/penalty"] = rrPenalty
	fmt.Fprintf(&b, "swap-cost GPU-seconds: rotary %.0f, round-robin %.0f\n", rotaryPenalty, rrPenalty)
	res.Text = b.String()
	return res, nil
}

// AblationArrivalRate sweeps the Poisson arrival rate around Table I's
// λ=160 s, measuring how Rotary-AQP's attainment advantage over EDF moves
// with contention: faster arrivals mean more concurrent jobs competing
// for the 20 threads and the memory budget.
func AblationArrivalRate(cfg Config) (*AblationResult, error) {
	cat := catalogFor(cfg.SF, cfg.Seed)
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: arrival-rate sensitivity (attained jobs, rotary vs edf)\n")
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	for _, mean := range []float64{80, 160, 320} {
		var attained [2]float64
		for run := 0; run < runs; run++ {
			seed := cfg.Seed + uint64(run)
			wcfg := workload.DefaultAQPWorkload(cfg.AQPJobs, seed)
			wcfg.MeanArrivalSecs = mean
			wcfg.BatchRows = workload.RecommendedBatchRows(cat)
			specs := workload.GenerateAQP(wcfg)
			for i, name := range []aqpPolicyName{PolicyRotaryAQP, PolicyEDF} {
				jobs, err := runAQPPolicy(cat, specs, name, seed)
				if err != nil {
					return nil, err
				}
				for _, j := range jobs {
					runtime := (j.EndTime() - j.Arrival()).Seconds()
					if j.StopAccuracy() >= j.Criteria().Threshold && runtime <= j.DeadlineSecs() &&
						j.Status() != core.StatusExpired {
						attained[i]++
					}
				}
			}
		}
		attained[0] /= float64(runs)
		attained[1] /= float64(runs)
		label := fmt.Sprintf("mean-arrival=%.0fs", mean)
		res.Values[label+"/rotary"] = attained[0]
		res.Values[label+"/edf"] = attained[1]
		fmt.Fprintf(&b, "%-22s rotary=%4.1f edf=%4.1f (of %d, mean of %d runs)\n",
			label, attained[0], attained[1], cfg.AQPJobs, runs)
	}
	res.Text = b.String()
	return res, nil
}
