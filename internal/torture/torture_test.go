package torture_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rotary/internal/torture"
)

// TestTortureComposedFaults is the tentpole acceptance matrix: seeds
// 1/7/42, each composing disk-fault windows, process kills, and rogue
// connections against one durable server under open-loop traffic. The
// run itself audits the invariants (acked ⊆ journal, unique ids,
// monotonic epochs, ledger agreement, heal-without-restart); the test
// asserts the audit passed and that the run actually exercised
// something. On failure the invariant report and journal segments land
// in $ROTARY_CHAOS_ARTIFACTS for offline debugging.
func TestTortureComposedFaults(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			base := t.TempDir()
			rep, err := torture.Run(torture.Config{
				Seed:        seed,
				Dir:         filepath.Join(base, "state"),
				Socket:      filepath.Join(base, "rotary.sock"),
				Rounds:      3,
				Ops:         90,
				Rate:        250,
				Conns:       3,
				ArtifactDir: os.Getenv("ROTARY_CHAOS_ARTIFACTS"),
				Logf:        t.Logf,
			})
			if err != nil {
				t.Fatalf("torture run: %v", err)
			}
			if !rep.OK {
				t.Fatalf("invariants violated:\n  %v", rep.Failures)
			}
			if rep.Acked == 0 {
				t.Fatal("run acked nothing: the traffic never reached the server")
			}
			if rep.DiskFaults == 0 || rep.Kills == 0 || rep.ConnFaults == 0 {
				t.Fatalf("fault families not composed: disk=%d kills=%d conn=%d",
					rep.DiskFaults, rep.Kills, rep.ConnFaults)
			}
			if rep.Heals == 0 {
				t.Fatal("no recovery barrier journaled: the disk-fault round never healed in place")
			}
		})
	}
}
