package diskio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestFaultyDeterministic proves equal seeds deal identical fault
// schedules: the whole point of seeded injection is that a failing run
// replays bit-for-bit.
func TestFaultyDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		dir := t.TempDir()
		f := NewFaulty(OS{}, FaultConfig{Seed: seed, WriteFailRate: 0.3, SyncFailRate: 0.3})
		var outcome []bool
		for i := 0; i < 64; i++ {
			fh, err := f.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			_, werr := fh.Write([]byte("0123456789"))
			serr := fh.Sync()
			fh.Close()
			outcome = append(outcome, werr != nil, serr != nil)
		}
		return outcome
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d with equal seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds dealt identical 128-op schedules (suspicious)")
	}
}

// TestFaultyShortWriteLandsPrefix proves an injected ENOSPC write is a
// genuine torn write: a strict prefix of the buffer reaches the real
// file, so recovery code downstream faces real partial bytes.
func TestFaultyShortWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	f := NewFaulty(OS{}, FaultConfig{Seed: 1})
	f.ForceFail(nil) // ENOSPC
	fh, err := OS{}.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Route the write through the injector by wrapping the open handle.
	ff := &faultyFile{name: path, inner: fh, f: f}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, werr := ff.Write(payload)
	ff.Close()
	if werr == nil {
		t.Fatalf("forced write succeeded")
	}
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC through Unwrap, got %v", werr)
	}
	if !IsInjected(werr) {
		t.Fatalf("injected error not identifiable: %v", werr)
	}
	data, _ := os.ReadFile(path)
	if len(data) != n || n >= len(payload) {
		t.Fatalf("short write landed %d bytes, reported %d (payload %d)", len(data), n, len(payload))
	}
}

// TestFaultyForcedWindowClears proves the scripted fault window the
// heal proofs depend on: every mutating op fails while forced, and the
// very next op after Clear succeeds.
func TestFaultyForcedWindowClears(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, FaultConfig{Seed: 42})
	f.ForceFail(syscall.EIO)
	if _, err := f.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644); err == nil {
		t.Fatalf("open succeeded inside forced window")
	}
	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err == nil {
		t.Fatalf("rename succeeded inside forced window")
	}
	f.Clear()
	fh, err := f.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open after Clear: %v", err)
	}
	if _, err := fh.Write([]byte("ok")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	if err := fh.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
	fh.Close()
}

// TestFaultyBurst proves a drawn fault extends over BurstOps follow-on
// operations — the ENOSPC-episode model — then clears on its own.
func TestFaultyBurst(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, FaultConfig{Seed: 3, RenameFailRate: 1, BurstOps: 4})
	src := filepath.Join(dir, "src")
	os.WriteFile(src, []byte("x"), 0o644)
	// First rename draws the fault and opens a 4-op burst; the burst
	// then covers any mutating op kind.
	if err := f.Rename(src, filepath.Join(dir, "dst")); err == nil {
		t.Fatalf("rate-1 rename succeeded")
	}
	for i := 0; i < 4; i++ {
		if err := f.Remove(src); err == nil {
			t.Fatalf("op %d inside burst succeeded", i)
		}
	}
	// Burst exhausted; RemoveFailRate is 0, so this succeeds.
	if err := f.Remove(src); err != nil {
		t.Fatalf("remove after burst: %v", err)
	}
	st := f.Stats()
	if st.RenameFails != 1 || st.RemoveFails != 4 {
		t.Fatalf("stats = %+v, want 1 rename / 4 remove fails", st)
	}
}

// TestFaultyReadsPassThrough proves reads never fault: replay and
// round-trip verification must see the disk as it is.
func TestFaultyReadsPassThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r")
	os.WriteFile(path, []byte("payload"), 0o644)
	f := NewFaulty(OS{}, FaultConfig{Seed: 9})
	f.ForceFail(nil)
	data, err := f.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read inside forced window: %q, %v", data, err)
	}
	if _, err := f.ReadDir(dir); err != nil {
		t.Fatalf("readdir inside forced window: %v", err)
	}
}
