package tpch

import (
	"testing"
)

func testCatalog(t *testing.T, sf float64) *Catalog {
	t.Helper()
	ds := Generate(sf, 42)
	return NewCatalog(ds, 42)
}

func TestAllQueriesProduceGroundTruth(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for _, name := range AllQueries {
		truth, err := cat.GroundTruth(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(truth.Groups) == 0 {
			t.Errorf("%s: ground truth has no groups", name)
		}
		if len(truth.Specs) == 0 {
			t.Errorf("%s: ground truth has no aggregate specs", name)
		}
	}
}

func TestAllQueriesConvergeToFullAccuracy(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for _, name := range AllQueries {
		q, err := cat.NewQuery(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prev := -1.0
		drops := 0
		for !q.Exhausted() {
			rows, cost := q.ProcessBatch(5000, 2)
			if rows == 0 {
				break
			}
			if cost <= 0 {
				t.Fatalf("%s: non-positive batch cost %v", name, cost)
			}
			acc := q.Accuracy()
			if acc < 0 || acc > 1 {
				t.Fatalf("%s: accuracy %v out of range", name, acc)
			}
			if acc < prev-0.05 {
				drops++ // accuracy may wiggle (AVG/MIN) but not collapse often
			}
			prev = acc
		}
		if got := q.Accuracy(); got < 0.999 {
			t.Errorf("%s: accuracy at exhaustion = %v, want ≈1", name, got)
		}
		if got := q.DataProgress(); got < 0.999 {
			t.Errorf("%s: data progress at exhaustion = %v, want 1", name, got)
		}
		if drops > 5 {
			t.Errorf("%s: accuracy collapsed %d times while streaming", name, drops)
		}
	}
}

func TestQueryCheckpointRestoreRoundTrip(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for _, name := range []string{"q1", "q4", "q17", "q18", "q21", "q13", "q22", "q11"} {
		q1, err := cat.NewQuery(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 3; i++ {
			q1.ProcessBatch(2000, 1)
		}
		cp, err := q1.Checkpoint()
		if err != nil {
			t.Fatalf("%s: checkpoint: %v", name, err)
		}
		q2, err := cat.NewQuery(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := q2.Restore(cp); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if q1.RowsProcessed() != q2.RowsProcessed() {
			t.Errorf("%s: rows %d vs %d after restore", name, q1.RowsProcessed(), q2.RowsProcessed())
		}
		// Drain both; they must land on identical accuracy.
		for !q1.Exhausted() {
			q1.ProcessBatch(5000, 1)
		}
		for !q2.Exhausted() {
			q2.ProcessBatch(5000, 1)
		}
		a1, a2 := q1.Accuracy(), q2.Accuracy()
		if diff := a1 - a2; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: post-restore accuracy diverged: %v vs %v", name, a1, a2)
		}
	}
}

func TestMemoryProfilesMatchTableIClasses(t *testing.T) {
	cat := testCatalog(t, 0.02)
	classMax := map[Class]float64{}
	classMin := map[Class]float64{Light: 1e18, Medium: 1e18, Heavy: 1e18}
	for _, name := range AllQueries {
		prof, err := cat.MemoryProfile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mb := prof.EstimateMB()
		if mb <= 0 {
			t.Errorf("%s: non-positive memory estimate", name)
		}
		cls, _ := ClassOf(name)
		if mb > classMax[cls] {
			classMax[cls] = mb
		}
		if mb < classMin[cls] {
			classMin[cls] = mb
		}
	}
	// The class medians must be ordered; allow overlap at the extremes but
	// require heavy-min > light-min and heavy-max > light-max.
	if classMax[Heavy] <= classMax[Light] {
		t.Errorf("heavy max %.1f MB not above light max %.1f MB", classMax[Heavy], classMax[Light])
	}
	if classMin[Heavy] <= classMin[Light] {
		t.Errorf("heavy min %.1f MB not above light min %.1f MB", classMin[Heavy], classMin[Light])
	}
}

func TestCostModelClassOrdering(t *testing.T) {
	cat := testCatalog(t, 0.01)
	fullPass := func(name string) float64 {
		cm, err := cat.CostModel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, _ := cat.FactRows(name)
		return cm.BatchCost(rows, 1)
	}
	if l, h := fullPass("q19"), fullPass("q7"); h < 2.5*l {
		t.Errorf("q7 full pass %.0fs not ≫ q19 %.0fs (Fig 1a shape)", h, l)
	}
	if l, m := fullPass("q19"), fullPass("q5"); m < 1.5*l {
		t.Errorf("q5 full pass %.0fs not > q19 %.0fs", m, l)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(0.005, 7)
	b := Generate(0.005, 7)
	if a.Rows() != b.Rows() {
		t.Fatalf("row counts differ: %d vs %d", a.Rows(), b.Rows())
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(0.005, 8)
	same := 0
	for i := range a.Lineitems {
		if i < len(c.Lineitems) && a.Lineitems[i] == c.Lineitems[i] {
			same++
		}
	}
	if same == len(a.Lineitems) {
		t.Fatal("different seeds produced identical lineitems")
	}
}

func TestDateRoundTrip(t *testing.T) {
	cases := []struct{ y, m, d int }{
		{1992, 1, 1}, {1995, 6, 17}, {1998, 8, 2}, {1996, 2, 29}, {1994, 12, 31},
	}
	for _, c := range cases {
		dt := MakeDate(c.y, c.m, c.d)
		if dt.Year() != c.y || dt.Month() != c.m {
			t.Errorf("MakeDate(%d,%d,%d) round-trips to year=%d month=%d", c.y, c.m, c.d, dt.Year(), dt.Month())
		}
	}
	if MakeDate(1992, 1, 1) != 0 {
		t.Errorf("epoch is not zero: %d", MakeDate(1992, 1, 1))
	}
	if MakeDate(1992, 1, 2) != 1 {
		t.Errorf("day arithmetic broken: %d", MakeDate(1992, 1, 2))
	}
}

func TestDatasetStats(t *testing.T) {
	cat := testCatalog(t, 0.005)
	stats := cat.Stats()
	if len(stats) != 8 {
		t.Fatalf("%d tables, want 8", len(stats))
	}
	li, err := cat.TableStatsByName("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if li.Rows != len(cat.Dataset().Lineitems) {
		t.Errorf("lineitem rows %d, want %d", li.Rows, len(cat.Dataset().Lineitems))
	}
	disc, ok := li.ColumnByName("l_discount")
	if !ok {
		t.Fatal("no l_discount stats")
	}
	if disc.Min < 0 || disc.Max > 0.10+1e-9 || disc.Distinct != 11 {
		t.Errorf("l_discount stats %+v, want 11 distinct values in [0, 0.10]", disc)
	}
	rf, _ := li.ColumnByName("l_returnflag")
	if rf.Distinct != 3 {
		t.Errorf("l_returnflag distinct %d, want 3 (R/A/N)", rf.Distinct)
	}
	nation, _ := cat.TableStatsByName("nation")
	nk, _ := nation.ColumnByName("n_nationkey")
	if nk.Distinct != 25 || nk.Min != 0 || nk.Max != 24 {
		t.Errorf("n_nationkey stats %+v", nk)
	}
	if _, err := cat.TableStatsByName("nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if out := RenderStats(stats); len(out) == 0 {
		t.Error("empty stats render")
	}
	// Cached: second call returns the same slice.
	if &cat.Stats()[0] != &stats[0] {
		t.Error("stats not cached")
	}
}

func TestDescribeAllQueries(t *testing.T) {
	cat := testCatalog(t, 0.005)
	for _, q := range AllQueries {
		out, err := cat.Describe(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(out) == 0 {
			t.Errorf("%s: empty description", q)
		}
	}
	if _, err := cat.Describe("q99"); err == nil {
		t.Error("described an unknown query")
	}
}
