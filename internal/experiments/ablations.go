package experiments

import (
	"fmt"
	"math"
	"strings"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/estimate"
	"rotary/internal/metrics"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// runRotaryVariant runs one Table I workload under a customized Rotary
// scheduler and returns the analyzed report.
func runRotaryVariant(cfg Config, mutate func(*core.RotaryAQP), envelopeWindow int) (metrics.AQPReport, error) {
	cat := catalogFor(cfg.SF, cfg.Seed)
	wcfg := workload.DefaultAQPWorkload(cfg.AQPJobs, cfg.Seed)
	wcfg.BatchRows = workload.RecommendedBatchRows(cat)
	specs := workload.GenerateAQP(wcfg)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, specs[0].BatchRows); err != nil {
		return metrics.AQPReport{}, err
	}
	sched := core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
	if mutate != nil {
		mutate(sched)
	}
	exec := core.NewAQPExecutor(core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)), sched, repo)
	for _, spec := range specs {
		q, err := cat.NewQuery(spec.Query)
		if err != nil {
			return metrics.AQPReport{}, err
		}
		prof, err := cat.MemoryProfile(spec.Query)
		if err != nil {
			return metrics.AQPReport{}, err
		}
		crit, err := criteria.NewAccuracy("ACC", spec.Accuracy,
			criteria.Deadline{Value: spec.DeadlineSecs, Unit: criteria.Seconds})
		if err != nil {
			return metrics.AQPReport{}, err
		}
		j, err := core.NewAQPJob(core.AQPJobConfig{
			ID: spec.ID, Query: q, Criteria: crit, Class: spec.Class.String(),
			EstMemMB: prof.EstimateMB(), BatchRows: spec.BatchRows,
			EnvelopeWindow: envelopeWindow,
		})
		if err != nil {
			return metrics.AQPReport{}, err
		}
		exec.Submit(j, sim.Time(spec.ArrivalSecs))
	}
	if err := exec.Run(); err != nil {
		return metrics.AQPReport{}, err
	}
	return metrics.AnalyzeAQP(sched.Name(), exec.Jobs(), nil), nil
}

// AblationResult is a generic labeled-variant comparison.
type AblationResult struct {
	// Values maps variant label to the headline metric.
	Values map[string]float64
	Text   string
}

// AblationFixedEpochs compares Rotary-AQP's adaptive running epochs
// against fixed epochs (design decision 2 in DESIGN.md). Headline metric:
// attained heavy jobs.
func AblationFixedEpochs(cfg Config) (*AblationResult, error) {
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: adaptive vs fixed running epochs (attained jobs)\n")
	for _, v := range []struct {
		label    string
		adaptive bool
	}{{"adaptive-epochs", true}, {"fixed-epochs", false}} {
		rep, err := runRotaryVariant(cfg, func(s *core.RotaryAQP) { s.AdaptiveEpochs = v.adaptive }, 0)
		if err != nil {
			return nil, err
		}
		att := rep.AttainedByClass()
		res.Values[v.label] = float64(att["total"])
		res.Values[v.label+"/heavy"] = float64(att["heavy"])
		fmt.Fprintf(&b, "%-18s total=%d heavy=%d\n", v.label, att["total"], att["heavy"])
	}
	res.Text = b.String()
	return res, nil
}

// AblationMemoryBlind compares memory-aware arbitration against the
// memory-blind (ReLAQS-style) variant (design decision 4).
func AblationMemoryBlind(cfg Config) (*AblationResult, error) {
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: memory-aware vs memory-blind arbitration (attained jobs)\n")
	for _, v := range []struct {
		label string
		aware bool
	}{{"memory-aware", true}, {"memory-blind", false}} {
		rep, err := runRotaryVariant(cfg, func(s *core.RotaryAQP) { s.MemoryAware = v.aware }, 0)
		if err != nil {
			return nil, err
		}
		att := rep.AttainedByClass()
		res.Values[v.label] = float64(att["total"])
		fmt.Fprintf(&b, "%-14s total=%d heavy=%d\n", v.label, att["total"], att["heavy"])
	}
	res.Text = b.String()
	return res, nil
}

// AblationEnvelopeWindow sweeps the envelope window (design decision 6):
// §V-A3 predicts longer windows reduce false attainment.
func AblationEnvelopeWindow(cfg Config) (*AblationResult, error) {
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: envelope window vs false attainment\n")
	for _, window := range []int{2, 3, 4, 6, 8} {
		rep, err := runRotaryVariant(cfg, nil, window)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("window=%d", window)
		res.Values[label] = float64(rep.FalseAttained())
		fmt.Fprintf(&b, "%-10s false-attainment=%d attained=%d\n",
			label, rep.FalseAttained(), rep.AttainedByClass()["total"])
	}
	res.Text = b.String()
	return res, nil
}

// AblationEstimatorSources measures prediction error of history-only,
// realtime-only (ReLAQS-style), and joint fitting (design decision 3):
// for each query, after every epoch the three estimators predict the
// accuracy one epoch ahead; the table reports mean absolute error.
func AblationEstimatorSources(cfg Config) (*AblationResult, error) {
	cat := catalogFor(cfg.SF, cfg.Seed)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 2000); err != nil {
		return nil, err
	}
	type acc struct {
		err float64
		n   int
	}
	modes := map[string]*acc{"history-only": {}, "realtime-only": {}, "joint": {}}
	for _, name := range tpch.AllQueries {
		q, err := cat.NewQuery(name)
		if err != nil {
			return nil, err
		}
		cls, _ := tpch.ClassOf(name)
		var hist []estimate.Point
		for _, rec := range repo.TopKSimilarAQP(name, cls.String(), 2000, 3) {
			hist = append(hist, rec.Curve...)
		}
		var secs float64
		var realtime []estimate.Point
		type pending struct {
			at   float64
			mode string
			pred float64
		}
		var preds []pending
		for !q.Exhausted() {
			var epochCost float64
			for b := 0; b < 4; b++ {
				rows, cost := q.ProcessBatch(2000, 1)
				epochCost += cost
				if rows == 0 {
					break
				}
			}
			secs += epochCost
			actual := q.Accuracy()
			// Resolve predictions that targeted (approximately) this time.
			for _, p := range preds {
				if p.at <= secs {
					m := modes[p.mode]
					m.err += math.Abs(p.pred - actual)
					m.n++
				}
			}
			kept := preds[:0]
			for _, p := range preds {
				if p.at > secs {
					kept = append(kept, p)
				}
			}
			preds = kept
			realtime = append(realtime, estimate.Point{X: secs, Y: actual})
			next := secs + epochCost
			clip := func(v float64) float64 { return math.Max(0, math.Min(1, v)) }
			// Realtime-only cannot extrapolate from a single observation
			// (the ReLAQS cold-start the paper calls out); it predicts
			// "no change" until it has two points.
			rtPred := clip(actual)
			if len(realtime) >= 2 {
				rtPred = clip(estimate.JointFit(nil, realtime).At(next))
			}
			preds = append(preds,
				pending{next, "history-only", clip(estimate.JointFit(hist, nil).At(next))},
				pending{next, "realtime-only", rtPred},
				pending{next, "joint", clip(estimate.JointFit(hist, realtime).At(next))},
			)
		}
	}
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: estimator sources, one-epoch-ahead MAE over all 22 queries\n")
	for _, label := range []string{"history-only", "realtime-only", "joint"} {
		m := modes[label]
		mae := 0.0
		if m.n > 0 {
			mae = m.err / float64(m.n)
		}
		res.Values[label] = mae
		fmt.Fprintf(&b, "%-14s mae=%.4f (n=%d)\n", label, mae, m.n)
	}
	res.Text = b.String()
	return res, nil
}

// AblationThresholdSweep sweeps Algorithm 3's threshold T (design
// decision 5), reporting the fairness metric (minimum attainment
// progress at the workload's halfway point) and the efficiency metric
// (jobs attained by the halfway point).
func AblationThresholdSweep(cfg Config) (*AblationResult, error) {
	specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(cfg.DLTJobs, cfg.Seed))
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Values: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: Algorithm 3 threshold T sweep\n")
	fmt.Fprintf(&b, "%8s %22s %22s %14s\n", "T", "min-progress@half", "attained@half", "makespan(s)")
	for _, T := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 40, 30, cfg.Seed); err != nil {
			return nil, err
		}
		sched := core.NewRotaryDLT(T, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				return nil, err
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			return nil, err
		}
		half := exec.Engine().Now() / 2
		minP := 1.0
		attained := 0
		for _, j := range exec.Jobs() {
			p := metrics.DLTProgressAt(j, half)
			if p < minP {
				minP = p
			}
			if j.Status() == core.StatusAttainedStop && j.EndTime() <= half {
				attained++
			}
		}
		label := fmt.Sprintf("T=%.0f%%", T*100)
		res.Values[label+"/min-progress"] = minP
		res.Values[label+"/attained"] = float64(attained)
		fmt.Fprintf(&b, "%8s %22.2f %22d %14.0f\n", label, minP, attained, exec.Engine().Now().Seconds())
	}
	res.Text = b.String()
	return res, nil
}
