package admission

import (
	"errors"
	"fmt"
	"testing"

	"rotary/internal/obs"
)

// twoTenantTable caps tenant "a" tightly and leaves "b" on the default.
func twoTenantTable() TenantTable {
	return TenantTable{
		Tenants: map[string]TenantQuota{
			"a": {RatePerSec: 0.5, Burst: 2, MaxActive: 2, MaxPending: 2},
		},
	}
}

func TestParseTenantSpec(t *testing.T) {
	tbl, err := ParseTenantSpec("alpha:weight=2,rate=5,burst=10,max-active=8;default:rate=1,burst=4")
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Enabled() {
		t.Fatal("parsed table should be enabled")
	}
	qa := tbl.Quota("alpha")
	if qa.Weight != 2 || qa.RatePerSec != 5 || qa.Burst != 10 || qa.MaxActive != 8 {
		t.Fatalf("alpha quota %+v", qa)
	}
	// Unlisted tenants fall back to the default clause.
	qd := tbl.Quota("nobody")
	if qd.RatePerSec != 1 || qd.Burst != 4 {
		t.Fatalf("default quota %+v", qd)
	}
	if w := tbl.Weights(); w["alpha"] != 2 {
		t.Fatalf("weights %v", w)
	}
	if tbl, err := ParseTenantSpec(""); err != nil || tbl.Enabled() {
		t.Fatalf("empty spec: %v %v", tbl, err)
	}
	for _, bad := range []string{"noclause", "a:rate", "a:rate=-1", "a:turbo=9"} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestTenantQuotaZeroValueIsNoop(t *testing.T) {
	q := TenantQuota{}.normalized()
	if q.Weight != 1 || q.RatePerSec != 0 || q.MaxActive != 0 {
		t.Fatalf("normalized zero quota %+v", q)
	}
	// Rate without burst means strict pacing: burst 1.
	if q := (TenantQuota{RatePerSec: 2}).normalized(); q.Burst != 1 {
		t.Fatalf("burst default %+v", q)
	}
}

func TestTenantRateBucket(t *testing.T) {
	c := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
	// Burst 2: two immediate admissions, the third refused with a hint.
	for i := 0; i < 2; i++ {
		d := c.Decide(Request{ID: fmt.Sprintf("j%d", i), Tenant: "a", Now: 0})
		if d.Verdict != Admit {
			t.Fatalf("arrival %d: %v %v", i, d.Verdict, d.Err)
		}
	}
	d := c.Decide(Request{ID: "j2", Tenant: "a", Now: 0})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrTenantQuotaExceeded) {
		t.Fatalf("want rate refusal, got %v %v", d.Verdict, d.Err)
	}
	// Deficit is one full token at rate 0.5/s: hint = 2s.
	if d.RetryAfterSecs != 2 {
		t.Fatalf("retry hint %v, want 2", d.RetryAfterSecs)
	}
	// Honoring the hint admits (free a concurrent-job slot first so only
	// the rate gate is in play).
	c.JobDone("a")
	if d := c.Decide(Request{ID: "j3", Tenant: "a", Now: 2}); d.Verdict != Admit {
		t.Fatalf("post-hint arrival: %v %v", d.Verdict, d.Err)
	}
	// Tenant "b" is unconstrained (zero default quota) and unaffected.
	if d := c.Decide(Request{ID: "k0", Tenant: "b", Now: 0}); d.Verdict != Admit {
		t.Fatalf("tenant b: %v %v", d.Verdict, d.Err)
	}
}

func TestTenantRefusalDoesNotMutateBucket(t *testing.T) {
	c := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
	c.Decide(Request{ID: "j0", Tenant: "a", Now: 0})
	c.Decide(Request{ID: "j1", Tenant: "a", Now: 0})
	st := c.tenants["a"]
	tokens, last := st.tokens, st.last
	// Hammer refusals at increasing times: peek-only, no state change.
	for i := 0; i < 5; i++ {
		d := c.Decide(Request{ID: fmt.Sprintf("r%d", i), Tenant: "a", Now: 0.1 * float64(i)})
		if d.Verdict != RejectJob {
			t.Fatalf("refusal %d: %v", i, d.Verdict)
		}
	}
	if st.tokens != tokens || st.last != last {
		t.Fatalf("refusals mutated bucket: (%v,%v) -> (%v,%v)", tokens, last, st.tokens, st.last)
	}
}

func TestTenantActiveAndQueueCaps(t *testing.T) {
	c := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
	// MaxActive 2: admit two (no rate pressure at widely spaced times).
	c.Decide(Request{ID: "j0", Tenant: "a", Now: 0})
	c.Decide(Request{ID: "j1", Tenant: "a", Now: 100})
	d := c.Decide(Request{ID: "j2", Tenant: "a", Now: 200})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrTenantQuotaExceeded) {
		t.Fatalf("want active-cap refusal, got %v %v", d.Verdict, d.Err)
	}
	// Releasing a slot reopens the cap.
	c.JobDone("a")
	if d := c.Decide(Request{ID: "j3", Tenant: "a", Now: 300}); d.Verdict != Admit {
		t.Fatalf("post-release: %v %v", d.Verdict, d.Err)
	}
	// MaxPending 2: the executor-supplied tenant queue depth gates.
	c.JobDone("a")
	d = c.Decide(Request{ID: "j4", Tenant: "a", Now: 400, TenantPending: 2})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrTenantQueueFull) {
		t.Fatalf("want queue-cap refusal, got %v %v", d.Verdict, d.Err)
	}
}

// TestTenantLedgerReconciles asserts the reconciliation invariant: every
// attributed arrival lands in exactly one ledger bucket, and the obs
// counters mirror the ledger exactly.
func TestTenantLedgerReconciles(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Config{
		MaxQueueDepth: 2,
		SlackFactor:   1,
		Tenants:       twoTenantTable(),
		Obs:           reg,
	})
	now := 0.0
	for i := 0; i < 40; i++ {
		tenant := "a"
		if i%3 == 0 {
			tenant = "b"
		}
		r := Request{
			ID:            fmt.Sprintf("j%02d", i),
			Tenant:        tenant,
			Now:           now,
			QueueDepth:    i % 3,
			TenantPending: i % 4,
			RemainingSecs: 600,
		}
		if i%7 == 0 {
			r.EstCompletionSecs = 1e6 // deadline-infeasible: global reject
		}
		c.Decide(r)
		if i%5 == 0 {
			c.JobDone(tenant)
		}
		now += 0.4
	}
	for name, s := range c.TenantStats() {
		if s.Admitted+s.Rejected != s.Submitted {
			t.Errorf("tenant %s: admitted %d + rejected %d != submitted %d", name, s.Admitted, s.Rejected, s.Submitted)
		}
		gate := s.RateRejections + s.ActiveCapRejections + s.QueueCapRejections
		if gate > s.Rejected {
			t.Errorf("tenant %s: gate refusals %d > rejected %d", name, gate, s.Rejected)
		}
		if s.Active < 0 || s.Active > s.Admitted {
			t.Errorf("tenant %s: active %d outside [0, admitted %d]", name, s.Active, s.Admitted)
		}
		for metric, want := range map[string]int{
			"submitted_total":             s.Submitted,
			"admitted_total":              s.Admitted,
			"rejected_total":              s.Rejected,
			"rate_rejections_total":       s.RateRejections,
			"active_cap_rejections_total": s.ActiveCapRejections,
			"queue_cap_rejections_total":  s.QueueCapRejections,
		} {
			full := fmt.Sprintf("rotary_admission_tenant_%s{tenant=%q}", metric, name)
			got, ok := reg.Value(full)
			if !ok || int(got) != want {
				t.Errorf("tenant %s: obs %s = %v (ok=%v), ledger %d", name, metric, got, ok, want)
			}
		}
	}
}

// TestTenantVerdictDeterminism feeds the same arrival sequence to two
// controllers and requires identical verdicts and bit-identical bucket
// state — the property journal replay depends on.
func TestTenantVerdictDeterminism(t *testing.T) {
	arrivals := make([]Request, 60)
	now := 0.0
	for i := range arrivals {
		arrivals[i] = Request{ID: fmt.Sprintf("j%02d", i), Tenant: "a", Now: now}
		now += 0.37 * float64(i%5)
	}
	run := func() (*Controller, []Verdict) {
		c := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
		var vs []Verdict
		for i, r := range arrivals {
			d := c.Decide(r)
			vs = append(vs, d.Verdict)
			if i%2 == 1 {
				c.JobDone("a") // keep the active cap from dominating
			}
		}
		return c, vs
	}
	c1, v1 := run()
	c2, v2 := run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged: %v vs %v", i, v1[i], v2[i])
		}
	}
	s1, s2 := c1.tenants["a"], c2.tenants["a"]
	if s1.tokens != s2.tokens || s1.last != s2.last || s1.primed != s2.primed {
		t.Fatalf("bucket diverged: (%v,%v,%v) vs (%v,%v,%v)",
			s1.tokens, s1.last, s1.primed, s2.tokens, s2.last, s2.primed)
	}

	// ReplayAdmitted over only the admitted arrivals reproduces the exact
	// bucket: the fold a journal replay performs.
	c3 := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
	for i, r := range arrivals {
		if v1[i] == Admit {
			c3.ReplayAdmitted("a", r.Now)
		}
	}
	s3 := c3.tenants["a"]
	if s3.tokens != s1.tokens || s3.last != s1.last || s3.primed != s1.primed {
		t.Fatalf("replayed bucket diverged: (%v,%v,%v) vs (%v,%v,%v)",
			s3.tokens, s3.last, s3.primed, s1.tokens, s1.last, s1.primed)
	}
	// And post-replay verdicts stay identical to the uninterrupted run's.
	d1 := c1.Decide(Request{ID: "probe", Tenant: "a", Now: now + 0.1})
	d3 := c3.Decide(Request{ID: "probe", Tenant: "a", Now: now + 0.1})
	if (d1.Verdict == RejectJob) != (d3.Verdict == RejectJob) {
		t.Fatalf("post-replay probe diverged: %v vs %v", d1.Verdict, d3.Verdict)
	}
}

func TestAdoptRecoveredRestoresActiveSlots(t *testing.T) {
	c := NewController(Config{Tenants: twoTenantTable(), Obs: obs.NewRegistry()})
	c.AdoptRecovered("a")
	c.AdoptRecovered("a")
	if d := c.Decide(Request{ID: "j0", Tenant: "a", Now: 0}); d.Verdict != RejectJob ||
		!errors.Is(d.Err, ErrTenantQuotaExceeded) {
		t.Fatalf("adopted slots should count against MaxActive: %v %v", d.Verdict, d.Err)
	}
	c.JobDone("a")
	if d := c.Decide(Request{ID: "j1", Tenant: "a", Now: 0}); d.Verdict != Admit {
		t.Fatalf("post-release: %v %v", d.Verdict, d.Err)
	}
}

func TestTenantLabelSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"plain":        "plain",
		`ev"il\x`:      "ev_il_x",
		"ctl\x00\x1f.": "ctl__.",
	} {
		if got := tenantLabel(in); got != want {
			t.Errorf("tenantLabel(%q) = %q, want %q", in, got, want)
		}
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'a'
	}
	if got := tenantLabel(string(long)); len(got) > 64 {
		t.Errorf("long label not truncated: %d bytes", len(got))
	}
}
