// Package baselines implements every comparison policy from the paper's
// evaluation: round-robin, EDF, LAF, and a ReLAQS re-implementation for
// the AQP system (§V-A), and SRF, BCF, and LAF for the DLT system (§V-B).
package baselines

import (
	"sort"

	"rotary/internal/core"
	"rotary/internal/estimate"
)

// assignByRank grants one thread per job in rank order (respecting the
// memory reservation when reserveMem is set), then hands out the
// remaining threads one at a time in the same order up to maxThreads per
// job. It is the shared machinery of the simple AQP baselines.
func assignByRank(ctx *core.AQPContext, ranked []*core.AQPJob, reserveMem bool, maxThreads int) []core.AQPGrant {
	freeThreads := ctx.FreeThreads
	freeMem := ctx.FreeMemMB
	grants := make([]core.AQPGrant, 0, len(ranked))
	index := make(map[string]int)
	for _, j := range ranked {
		if freeThreads == 0 {
			break
		}
		reserve := 0.0
		if reserveMem {
			reserve = j.EstMemMB()
			if reserve > freeMem {
				continue
			}
		}
		grants = append(grants, core.AQPGrant{Job: j, Threads: 1, ReserveMemMB: reserve})
		index[j.ID()] = len(grants)
		freeThreads--
		freeMem -= reserve
	}
	// Extras fill the highest-ranked jobs to their cap first, mirroring
	// the greedy priority walk of Rotary's phase 2 so the baselines
	// differ only in their ranking rule.
	for _, j := range ranked {
		if freeThreads == 0 {
			break
		}
		gi, ok := index[j.ID()]
		if !ok {
			continue
		}
		for grants[gi-1].Threads < maxThreads && freeThreads > 0 {
			grants[gi-1].Threads++
			freeThreads--
		}
	}
	return grants
}

// RoundRobinAQP is the vanilla baseline: "allocates one core to each job
// in turn until there are no more cores and run them for an epoch per
// time until they reach their completion criteria".
type RoundRobinAQP struct{}

// Name implements core.AQPScheduler.
func (RoundRobinAQP) Name() string { return "round-robin" }

// ArbiterProfile implements core.ProfiledAQPScheduler: the ranking reads
// only the pending jobs' epoch/arrival state, so the default signature
// (pending queue + capacity) is sound and the decision cache may serve
// repeats.
func (RoundRobinAQP) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Assign implements core.AQPScheduler.
func (RoundRobinAQP) Assign(ctx *core.AQPContext) []core.AQPGrant {
	ranked := append([]*core.AQPJob(nil), ctx.Pending...)
	// In turn: FIFO by arrival; fewer completed epochs first so everyone
	// cycles.
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Epochs() != ranked[b].Epochs() {
			return ranked[a].Epochs() < ranked[b].Epochs()
		}
		return ranked[a].Arrival() < ranked[b].Arrival()
	})
	return assignByRank(ctx, ranked, true, 1)
}

// EDFAQP always prioritizes the jobs with the earliest absolute deadline.
type EDFAQP struct{}

// Name implements core.AQPScheduler.
func (EDFAQP) Name() string { return "edf" }

// ArbiterProfile implements core.ProfiledAQPScheduler: absolute
// deadlines derive from arrival + criteria, both covered by the job
// fingerprints.
func (EDFAQP) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Assign implements core.AQPScheduler.
func (EDFAQP) Assign(ctx *core.AQPContext) []core.AQPGrant {
	ranked := append([]*core.AQPJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(a, b int) bool {
		da := ranked[a].Arrival().Seconds() + ranked[a].DeadlineSecs()
		db := ranked[b].Arrival().Seconds() + ranked[b].DeadlineSecs()
		return da < db
	})
	return assignByRank(ctx, ranked, true, 8)
}

// LAFAQP always prioritizes the jobs with the least current (estimated)
// accuracy.
type LAFAQP struct{}

// Name implements core.AQPScheduler.
func (LAFAQP) Name() string { return "laf" }

// ArbiterProfile implements core.ProfiledAQPScheduler: estimated
// accuracy equals the last recorded real-time point for any queued job,
// which the job fingerprint folds.
func (LAFAQP) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Assign implements core.AQPScheduler.
func (LAFAQP) Assign(ctx *core.AQPContext) []core.AQPGrant {
	ranked := append([]*core.AQPJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return ranked[a].EstimatedAccuracy() < ranked[b].EstimatedAccuracy()
	})
	return assignByRank(ctx, ranked, true, 8)
}

// ReLAQS re-implements the state-of-the-art comparison system
// (Stafman et al., Middleware'19): it schedules CPU cores to the jobs
// with the most potential for improvement, estimating that potential from
// the job's own recent results only (no historical data), ignores memory
// (it "only schedules CPU cores"), and uses fixed running epochs.
type ReLAQS struct{}

// Name implements core.AQPScheduler.
func (ReLAQS) Name() string { return "relaqs" }

// ArbiterProfile implements core.ProfiledAQPScheduler: the improvement
// slope reads the last two real-time points — covered by the curve
// length + last point in the job fingerprint (the penultimate point is
// immutable once the last one exists). The fixed SetEpochBatches(4)
// writes are recorded as template diffs and replayed on hits.
func (ReLAQS) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Assign implements core.AQPScheduler.
func (ReLAQS) Assign(ctx *core.AQPContext) []core.AQPGrant {
	ranked := append([]*core.AQPJob(nil), ctx.Pending...)
	improvement := make(map[string]float64, len(ranked))
	for _, j := range ranked {
		improvement[j.ID()] = relaqsImprovement(j)
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		return improvement[ranked[a].ID()] > improvement[ranked[b].ID()]
	})
	// Fixed epochs: ReLAQS does not adapt running-epoch length.
	for _, j := range ranked {
		j.SetEpochBatches(4)
	}
	return assignByRank(ctx, ranked, false, 8)
}

// relaqsImprovement predicts next-epoch accuracy gain from the slope of
// the job's last two real-time results — exactly the "only uses real-time
// results to predict the progress for the next running epoch" behaviour
// the paper contrasts Rotary-AQP against. Fresh jobs score highest
// (unknown potential), which is also what gives ReLAQS its cold-start
// bias.
func relaqsImprovement(j *core.AQPJob) float64 {
	curve := j.RealtimeCurve()
	if len(curve) < 2 {
		return 1
	}
	a, b := curve[len(curve)-2], curve[len(curve)-1]
	dt := b.X - a.X
	if dt <= 0 {
		return 0
	}
	slope := (b.Y - a.Y) / dt
	if slope < 0 {
		slope = 0
	}
	perEpoch := j.ProcessingSecs() / float64(j.Epochs())
	return slope * perEpoch
}

// RandomRotaryAQP is the Fig. 9 configuration: Rotary-AQP's Algorithm 2
// with the misleading uniform-random progress estimator swapped in.
func RandomRotaryAQP(src interface{ Float64() float64 }) *core.RotaryAQP {
	return core.NewRotaryAQP(estimate.NewRandomProgress(src))
}
