// Consistent-hash ring: how the router maps job ids onto shards. Each
// shard owns a fixed set of virtual nodes hashed onto a 64-bit circle; a
// job id hashes to a point and is owned by the first vnode at or after
// it. The assignment is a pure function of (id, shard count, vnode
// count) — no clocks, no randomness — so a control run and a chaos run
// route every job identically, which the multi-shard trace-equivalence
// suite depends on. Vnodes keep ownership balanced and make the
// walk-forward fallback (used when the home shard is retired) spread a
// retired shard's keys across the survivors instead of dumping them on
// one neighbor.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per shard.
const defaultVnodes = 64

type ringPoint struct {
	hash  uint64
	shard int
}

type hashRing struct {
	points []ringPoint
	shards int
}

func newHashRing(shards, vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &hashRing{shards: shards}
	r.points = make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit FNV) break on shard index so
		// the ring order stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	// Raw FNV barely avalanches: keys differing only in trailing bytes
	// (sequential job ids like srv-00001, srv-00002) hash closer together
	// than the ring's average gap and pile onto one shard. Finish with a
	// 64-bit mixer so every input bit diffuses.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the shard owning the key: the first vnode clockwise from
// the key's hash whose shard ok accepts (nil ok accepts every shard).
// Returns -1 when no shard qualifies. The walk visits each distinct shard
// at most once, so a mostly-filtered ring still terminates promptly.
func (r *hashRing) Owner(key string, ok func(int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[int]bool, r.shards)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.shard] {
			continue
		}
		tried[p.shard] = true
		if ok == nil || ok(p.shard) {
			return p.shard
		}
		if len(tried) == r.shards {
			break
		}
	}
	return -1
}
