package core

import (
	"rotary/internal/cluster"
	"rotary/internal/sim"
)

// This file defines the resource-arbitration policy interface of §III-D:
// π : Q_t → assign(W, M). A policy sees the current queue state (pending
// and running jobs with their intermediate state) plus the free resources,
// and produces assignment decisions. The executors apply the decisions,
// run the selected jobs for an epoch, observe the attainment progress, and
// invoke the policy again — Algorithm 1's loop.

// AQPContext is the queue state Q_t an AQP policy decides over.
type AQPContext struct {
	Now sim.Time
	// Pending holds active jobs currently without resources; Running holds
	// jobs mid-epoch (informational — their resources are not preemptible
	// before the epoch boundary, per §III-D "a job holds on to a
	// particular resource for at least an epoch").
	Pending []*AQPJob
	Running []*AQPJob

	FreeThreads  int
	TotalThreads int
	FreeMemMB    float64
	TotalMemMB   float64
}

// AQPGrant assigns threads (and a memory reservation) to a pending job
// for its next running epoch.
type AQPGrant struct {
	Job     *AQPJob
	Threads int
	// ReserveMemMB is the memory reservation the executor books against
	// the pool; memory-blind policies (ReLAQS) reserve zero and risk
	// oversubscription pressure.
	ReserveMemMB float64
}

// AQPScheduler is a resource-arbitration policy for the AQP system.
type AQPScheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Assign produces this round's grants. Jobs not granted stay pending
	// (deferred, checkpointed). Grants must not exceed the free resources.
	Assign(ctx *AQPContext) []AQPGrant
}

// DLTContext is the queue state a DLT policy decides over.
type DLTContext struct {
	Now      sim.Time
	Pending  []*DLTJob
	Running  []*DLTJob
	FreeGPUs []cluster.GPU
}

// DLTPlacement assigns a pending job to a free device for one epoch.
type DLTPlacement struct {
	Job    *DLTJob
	Device int
	// EstMemMB is the memory estimate used for the placement decision
	// (recorded for diagnostics; the executor verifies the actual fit).
	EstMemMB float64
}

// DLTScheduler is a resource-arbitration policy for the DLT system.
type DLTScheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Place produces this round's placements onto the free devices.
	Place(ctx *DLTContext) []DLTPlacement
}

// StarvationGuardAQP wraps any AQP policy with aging: a pending job the
// inner policy passes over for more than MaxSkippedRounds consecutive
// arbitration rounds is forced a minimal one-thread grant, so every
// admitted job eventually runs under any policy. Priority-ordered
// policies (EDF under a stream of tight deadlines, LAF under a steady
// supply of low-accuracy arrivals) otherwise starve the tail of the
// queue indefinitely under sustained overload.
//
// The forced grant reserves no memory (the job may induce pressure — the
// deliberate cost of liveness) and is funded, in order of preference, by
// leftover free threads, by stripping one thread from the widest grant,
// or by displacing the inner policy's last (lowest-priority) grant.
type StarvationGuardAQP struct {
	inner AQPScheduler
	// maxSkipped is the consecutive-rounds-passed-over threshold.
	maxSkipped int
	skipped    map[string]int
	forced     int
}

// NewStarvationGuardAQP wraps inner; maxSkipped < 1 defaults to 8.
func NewStarvationGuardAQP(inner AQPScheduler, maxSkipped int) *StarvationGuardAQP {
	if maxSkipped < 1 {
		maxSkipped = 8
	}
	return &StarvationGuardAQP{inner: inner, maxSkipped: maxSkipped, skipped: make(map[string]int)}
}

// Name implements AQPScheduler.
func (g *StarvationGuardAQP) Name() string { return g.inner.Name() + "+aging" }

// ForcedGrants reports how many grants the guard forced.
func (g *StarvationGuardAQP) ForcedGrants() int { return g.forced }

// Assign implements AQPScheduler.
func (g *StarvationGuardAQP) Assign(ctx *AQPContext) []AQPGrant {
	grants := g.inner.Assign(ctx)
	granted := make(map[string]bool, len(grants))
	for _, gr := range grants {
		granted[gr.Job.ID()] = true
	}
	// Pick the most-starved passed-over job; ties break by ID for
	// determinism. Counters are read as "what this round would bring
	// them to" but committed only against the FINAL grant list below —
	// a job whose grant the forced one displaces must keep aging, or
	// the guard robs the same near-granted job every round while
	// resetting its counter and starves it indefinitely.
	var starving *AQPJob
	starvingCount := 0
	for _, j := range ctx.Pending {
		if granted[j.ID()] {
			continue
		}
		c := g.skipped[j.ID()] + 1
		if c <= g.maxSkipped {
			continue
		}
		if starving == nil || c > starvingCount ||
			(c == starvingCount && j.ID() < starving.ID()) {
			starving, starvingCount = j, c
		}
	}
	if starving != nil {
		forced := AQPGrant{Job: starving, Threads: 1}
		used := 0
		for _, gr := range grants {
			used += gr.Threads
		}
		wi := -1
		for i, gr := range grants {
			if gr.Threads > 1 && (wi < 0 || gr.Threads >= grants[wi].Threads) {
				wi = i
			}
		}
		applied := true
		switch {
		case used < ctx.FreeThreads:
			grants = append(grants, forced)
		case wi >= 0:
			grants[wi].Threads--
			grants = append(grants, forced)
		case len(grants) > 0 && starvingCount > g.skipped[grants[len(grants)-1].Job.ID()]+1:
			// Displace the inner policy's last grant — but only when the
			// forced job is strictly more starved than the job it robs.
			// An unconditional displacement robs the top-ranked (often
			// equally starved) job every single-thread round, and the
			// guard becomes the starvation it exists to prevent.
			grants[len(grants)-1] = forced
		default:
			applied = false
		}
		if applied {
			g.forced++
		}
	}
	// Commit aging against what is actually granted this round.
	final := make(map[string]bool, len(grants))
	for _, gr := range grants {
		final[gr.Job.ID()] = true
	}
	seen := make(map[string]bool, len(ctx.Pending))
	for _, j := range ctx.Pending {
		seen[j.ID()] = true
		if final[j.ID()] {
			delete(g.skipped, j.ID())
		} else {
			g.skipped[j.ID()]++
		}
	}
	for id := range g.skipped {
		if !seen[id] {
			delete(g.skipped, id) // granted, terminal, or shed: no longer pending
		}
	}
	return grants
}

// StarvationGuardDLT wraps any DLT policy with the same aging rule: a
// pending job passed over for more than MaxSkippedRounds consecutive
// rounds is forced onto a device — a free one the inner policy left
// idle, else the device of the inner policy's last placement.
type StarvationGuardDLT struct {
	inner      DLTScheduler
	maxSkipped int
	skipped    map[string]int
	forced     int
}

// NewStarvationGuardDLT wraps inner; maxSkipped < 1 defaults to 8.
func NewStarvationGuardDLT(inner DLTScheduler, maxSkipped int) *StarvationGuardDLT {
	if maxSkipped < 1 {
		maxSkipped = 8
	}
	return &StarvationGuardDLT{inner: inner, maxSkipped: maxSkipped, skipped: make(map[string]int)}
}

// Name implements DLTScheduler.
func (g *StarvationGuardDLT) Name() string { return g.inner.Name() + "+aging" }

// ForcedGrants reports how many placements the guard forced.
func (g *StarvationGuardDLT) ForcedGrants() int { return g.forced }

// Place implements DLTScheduler.
func (g *StarvationGuardDLT) Place(ctx *DLTContext) []DLTPlacement {
	placements := g.inner.Place(ctx)
	placed := make(map[string]bool, len(placements))
	for _, p := range placements {
		placed[p.Job.ID()] = true
	}
	// Same commit-against-final-placements rule as the AQP guard: a job
	// whose placement the forced one displaces keeps aging.
	var starving *DLTJob
	starvingCount := 0
	for _, j := range ctx.Pending {
		if placed[j.ID()] {
			continue
		}
		c := g.skipped[j.ID()] + 1
		if c <= g.maxSkipped {
			continue
		}
		if starving == nil || c > starvingCount ||
			(c == starvingCount && j.ID() < starving.ID()) {
			starving, starvingCount = j, c
		}
	}
	if starving != nil {
		usedDev := make(map[int]bool, len(placements))
		for _, p := range placements {
			usedDev[p.Device] = true
		}
		forcedOn := -1
		for _, d := range ctx.FreeGPUs {
			if !usedDev[d.ID] {
				forcedOn = d.ID
				break
			}
		}
		switch {
		case forcedOn >= 0:
			placements = append(placements, DLTPlacement{Job: starving, Device: forcedOn})
			g.forced++
		case len(placements) > 0 && starvingCount > g.skipped[placements[len(placements)-1].Job.ID()]+1:
			// Same strictly-more-starved rule as the AQP guard: never rob
			// a placement from a job as starved as the forced one.
			placements[len(placements)-1] = DLTPlacement{Job: starving, Device: placements[len(placements)-1].Device}
			g.forced++
		}
	}
	final := make(map[string]bool, len(placements))
	for _, p := range placements {
		final[p.Job.ID()] = true
	}
	seen := make(map[string]bool, len(ctx.Pending))
	for _, j := range ctx.Pending {
		seen[j.ID()] = true
		if final[j.ID()] {
			delete(g.skipped, j.ID())
		} else {
			g.skipped[j.ID()]++
		}
	}
	for id := range g.skipped {
		if !seen[id] {
			delete(g.skipped, id)
		}
	}
	return placements
}
