// Package core implements the Rotary resource-arbitration framework:
// the job and queue model of §III-D, the arbitration loop of Algorithm 1,
// the Rotary-AQP policy of Algorithm 2, the threshold-based Rotary-DLT
// policy of Algorithm 3 with the progress computation of Algorithm 4, and
// the event-driven executors that drive jobs, policies, and the resource
// substrates over virtual time.
package core

import (
	"fmt"
	"math"

	"rotary/internal/aqp"
	"rotary/internal/criteria"
	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// AQPJob is one progressive query in the multi-tenant AQP system: the
// running online query plus its completion criterion, envelope state, and
// the bookkeeping the arbiter and the metrics need.
type AQPJob struct {
	id    string
	query aqp.OnlineQuery
	crit  criteria.Criteria
	class string
	// tenant attributes the job for quota accounting, fair-share
	// arbitration, and per-tenant telemetry. Immutable after
	// construction; empty means the default tenant.
	tenant string

	// Memory facts: the CBO-style pre-run estimate and the row batch used
	// per processing step.
	estMemMB  float64
	batchRows int

	// epochBatches is the running-epoch length in batches; Rotary sets it
	// adaptively (∝ estimated memory), baselines leave the default.
	epochBatches int

	envelope *envelopeState

	// Runtime bookkeeping.
	arrival        sim.Time
	arrived        bool
	epochs         int
	processingSecs float64
	// normSecs is cumulative processing work in single-thread-equivalent
	// seconds, the unit the progress-runtime curves are fitted in (the
	// historical curves are recorded single-threaded, so real-time points
	// must normalize out the varying thread grants).
	normSecs    float64
	lastRelease sim.Time
	everRan     bool
	status      JobStatus
	endTime     sim.Time
	stopAcc     float64 // true accuracy at stop (metrics only)

	// Fault-recovery state. pristine is the query's state as captured at
	// submission, the fallback when no usable checkpoint survives a
	// failure. needsRestore forces the next grant to replay persisted
	// state even at the release instant — a crash leaves the in-memory
	// query dirty (batches of the interrupted epoch were consumed), so
	// the hot-state shortcut would resume from a state no completed epoch
	// ever observed. crashPending/crashedSince track the open recovery
	// window for the latency counter; deferredPenaltySecs carries
	// checkpoint-I/O backoff accrued at save time into the next epoch's
	// virtual cost.
	pristine            []byte
	needsRestore        bool
	crashPending        bool
	crashedSince        sim.Time
	deferredPenaltySecs float64

	// Overload state. bestEffort marks a job the admission controller
	// admitted under the Degrade policy (deadline infeasible at arrival);
	// it runs normally but is first in line for shedding.
	// watchdogStrikes counts consecutive watchdog preemptions; each strike
	// doubles the next epoch's budget so a genuinely long epoch eventually
	// completes instead of livelocking against the watchdog. Strikes reset
	// when an epoch completes within budget.
	bestEffort      bool
	watchdogStrikes int

	// Admission refusal detail, set when the gate terminates the job with
	// StatusRejected: the typed cause (errors.Is-matchable against the
	// admission package's sentinels) and the quota layer's retry hint.
	rejectErr      error
	retryAfterSecs float64

	// detached marks a job removed from its executor by Detach for
	// checkpoint-carried migration to another arbiter shard: events already
	// scheduled against it (its deadline watchdog) must become no-ops — the
	// receiving shard owns the rest of its lifecycle.
	detached bool

	// realtimeCurve is the recorded (processing-seconds, estimated
	// accuracy) series fed to the progress estimator.
	realtimeCurve []estimate.Point

	epochLog []EpochObs
}

// envelopeState bundles the per-cell envelopes with the spec metadata
// needed to compose the system-side accuracy estimate.
type envelopeState struct {
	perCol   map[int]*colEnvelope
	window   int
	converge float64
}

type colEnvelope struct {
	cells map[string]*cellTrack
}

// cellTrack couples a cell's envelope with its growth history. For SUM
// and COUNT aggregates the final-ratio estimate is f^k, where f is the
// processed data fraction and k is the growth exponent fitted on the
// cell's recent log-log (fraction, value) trajectory: uniformly accruing
// aggregates have k ≈ 1 (the classic online-aggregation scaling), while
// aggregates whose qualifying events need many co-located rows (Q18's
// per-order quantity crossings, Q21's completed orders) grow
// superlinearly, and the plain data fraction would overestimate badly.
type cellTrack struct {
	env *estimate.Envelope
	pts []estimate.Point // (ln f, ln |v|), last growthWindow points
}

const growthWindow = 8

func (c *cellTrack) observe(frac, v float64) {
	c.env.Observe(v)
	if frac <= 0 || v == 0 {
		return
	}
	if v < 0 {
		v = -v
	}
	c.pts = append(c.pts, estimate.Point{X: math.Log(frac), Y: math.Log(v)})
	if len(c.pts) > growthWindow {
		c.pts = c.pts[len(c.pts)-growthWindow:]
	}
}

// growthExponent fits k on the recent trajectory, clamped to [0.5, 6].
// With too little signal it reports the uniform-accrual default 1.
func (c *cellTrack) growthExponent() float64 {
	if len(c.pts) < 3 {
		return 1
	}
	w := make([]float64, len(c.pts))
	for i := range w {
		w[i] = 1
	}
	k := estimate.FitWLS(c.pts, w).Slope
	if k < 0.5 {
		k = 0.5
	}
	if k > 6 {
		k = 6
	}
	return k
}

// JobStatus is a job's terminal (or live) state.
type JobStatus int

// Job statuses. A job stops as AttainedStop when the system believes its
// criterion is met, ConvergedStop when the envelope (AQP) or delta check
// (DLT) declares convergence, Expired when its deadline passes first.
// Under admission control a job may instead terminate Rejected (refused
// at the gate — deadline infeasible or queue full) or Shed (admitted but
// later evicted from the queue for a higher-value arrival); both are
// terminal and must stay ≥ StatusAttainedStop so Terminal() holds.
const (
	StatusPending JobStatus = iota
	StatusRunning
	StatusAttainedStop
	StatusConvergedStop
	StatusExpired
	StatusRejected
	StatusShed
)

// String names the status.
func (s JobStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusAttainedStop:
		return "attained"
	case StatusConvergedStop:
		return "converged"
	case StatusExpired:
		return "expired"
	case StatusRejected:
		return "rejected"
	case StatusShed:
		return "shed"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool { return s >= StatusAttainedStop }

// EpochObs is one per-epoch observation in a job's log.
type EpochObs struct {
	At       sim.Time
	Epoch    int
	EstAcc   float64
	TrueAcc  float64
	Progress float64
}

// AQPJobConfig assembles an AQPJob.
type AQPJobConfig struct {
	ID    string
	Query aqp.OnlineQuery
	// Criteria must be accuracy-oriented with a wall-time deadline for the
	// Table I workloads; the framework accepts any kind.
	Criteria criteria.Criteria
	Class    string
	// Tenant attributes the job for quotas and fair-share arbitration;
	// empty means the default tenant.
	Tenant   string
	EstMemMB float64
	// BatchRows is the per-step row batch (Table I's batch size feature).
	BatchRows int
	// EpochBatches is the default running-epoch length in batches.
	EpochBatches int
	// EnvelopeWindow and ConvergeThreshold configure the §IV-A envelope.
	EnvelopeWindow    int
	ConvergeThreshold float64
}

// NewAQPJob wraps a running online query as an arbitrated job.
func NewAQPJob(cfg AQPJobConfig) (*AQPJob, error) {
	if cfg.Query == nil {
		return nil, fmt.Errorf("core: job %s has no query", cfg.ID)
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 2000
	}
	if cfg.EpochBatches <= 0 {
		cfg.EpochBatches = 4
	}
	if cfg.EnvelopeWindow <= 0 {
		cfg.EnvelopeWindow = 4
	}
	if cfg.ConvergeThreshold <= 0 {
		cfg.ConvergeThreshold = 0.999
	}
	return &AQPJob{
		id:           cfg.ID,
		query:        cfg.Query,
		crit:         cfg.Criteria,
		class:        cfg.Class,
		tenant:       cfg.Tenant,
		estMemMB:     cfg.EstMemMB,
		batchRows:    cfg.BatchRows,
		epochBatches: cfg.EpochBatches,
		envelope: &envelopeState{
			window:   cfg.EnvelopeWindow,
			converge: cfg.ConvergeThreshold,
		},
	}, nil
}

// ID returns the job identifier.
func (j *AQPJob) ID() string { return j.id }

// Tenant reports the job's tenant attribution (empty = default tenant).
func (j *AQPJob) Tenant() string { return j.tenant }

// RejectErr returns the typed admission refusal cause for a
// StatusRejected job (nil otherwise). Match with errors.Is against the
// admission package's sentinel errors.
func (j *AQPJob) RejectErr() error { return j.rejectErr }

// RetryAfterSecs returns the quota layer's retry hint for a refused
// job; 0 when the refusal was not time-based.
func (j *AQPJob) RetryAfterSecs() float64 { return j.retryAfterSecs }

// Criteria returns the job's completion criterion.
func (j *AQPJob) Criteria() criteria.Criteria { return j.crit }

// Class returns the Table I class label ("light", "medium", "heavy").
func (j *AQPJob) Class() string { return j.class }

// Query exposes the underlying online query.
func (j *AQPJob) Query() aqp.OnlineQuery { return j.query }

// EstMemMB returns the CBO-style pre-run memory estimate.
func (j *AQPJob) EstMemMB() float64 { return j.estMemMB }

// BatchRows returns the per-step row batch size.
func (j *AQPJob) BatchRows() int { return j.batchRows }

// EpochBatches returns the current running-epoch length in batches.
func (j *AQPJob) EpochBatches() int { return j.epochBatches }

// SetEpochBatches overrides the running-epoch length (Rotary's adaptive
// running epochs; Algorithm 2's "Assign running epoch e_j for job j").
func (j *AQPJob) SetEpochBatches(n int) {
	if n < 1 {
		n = 1
	}
	j.epochBatches = n
}

// Status returns the job's current status.
func (j *AQPJob) Status() JobStatus { return j.status }

// BestEffort reports whether the admission controller degraded the job to
// best-effort service (deadline infeasible at arrival).
func (j *AQPJob) BestEffort() bool { return j.bestEffort }

// Arrival returns the job's arrival time; valid once arrived.
func (j *AQPJob) Arrival() sim.Time { return j.arrival }

// EndTime returns the terminal time; valid once Terminal.
func (j *AQPJob) EndTime() sim.Time { return j.endTime }

// Epochs reports completed running epochs.
func (j *AQPJob) Epochs() int { return j.epochs }

// ProcessingSecs reports cumulative virtual processing time.
func (j *AQPJob) ProcessingSecs() float64 { return j.processingSecs }

// NormProcessingSecs reports cumulative work in single-thread-equivalent
// seconds — the x-axis of the progress-runtime curves.
func (j *AQPJob) NormProcessingSecs() float64 { return j.normSecs }

// LastRunAt reports when the job last finished a running epoch (its
// arrival time if it never ran) — the aging input for deferred-job
// reconsideration.
func (j *AQPJob) LastRunAt() sim.Time {
	if j.everRan {
		return j.lastRelease
	}
	return j.arrival
}

// EpochLog returns the per-epoch observation log.
func (j *AQPJob) EpochLog() []EpochObs { return j.epochLog }

// RealtimeCurve returns the recorded (processing seconds, estimated
// accuracy) points — the real-time input to the §IV-A joint fit.
func (j *AQPJob) RealtimeCurve() []estimate.Point {
	out := make([]estimate.Point, len(j.realtimeCurve))
	copy(out, j.realtimeCurve)
	return out
}

// StopAccuracy reports the ground-truth accuracy at the job's stop time
// (metrics only; the system never reads it while arbitrating).
func (j *AQPJob) StopAccuracy() float64 { return j.stopAcc }

// EstimatedAccuracy is the system-side accuracy estimate that does not
// require the final answer: SUM and COUNT columns use the growth-
// exponent scaling f^k (online-aggregation scaling corrected for
// non-uniform event accrual), while AVG, MIN, and MAX columns use the
// envelope's p/q stability ratio from §IV-A.
func (j *AQPJob) EstimatedAccuracy() float64 {
	specs := j.query.Snapshot().Specs
	if len(specs) == 0 {
		return 0
	}
	frac := j.query.DataProgress()
	var sum float64
	for i, spec := range specs {
		switch spec.Kind {
		case aqp.Sum, aqp.Count:
			sum += j.envelope.colScaled(i, frac)
		default:
			sum += j.envelope.colRatio(i)
		}
	}
	return sum / float64(len(specs))
}

// colRatio averages the envelope ratios over the cells of column i.
func (e *envelopeState) colRatio(i int) float64 {
	if e.perCol == nil {
		return 0
	}
	col, ok := e.perCol[i]
	if !ok || len(col.cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range col.cells {
		sum += c.env.Ratio()
	}
	return sum / float64(len(col.cells))
}

// colScaled averages the growth-scaled final-ratio estimates f^k over the
// cells of column i.
func (e *envelopeState) colScaled(i int, frac float64) float64 {
	if e.perCol == nil || frac <= 0 {
		return 0
	}
	col, ok := e.perCol[i]
	if !ok || len(col.cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range col.cells {
		sum += math.Pow(frac, c.growthExponent())
	}
	return sum / float64(len(col.cells))
}

// observeEpoch feeds the latest snapshot into the envelopes and growth
// trackers and appends the real-time point.
func (j *AQPJob) observeEpoch(now sim.Time) {
	snap := j.query.Snapshot()
	frac := j.query.DataProgress()
	if j.envelope.perCol == nil {
		j.envelope.perCol = make(map[int]*colEnvelope)
	}
	for g, vals := range snap.Groups {
		for i, v := range vals {
			col, ok := j.envelope.perCol[i]
			if !ok {
				col = &colEnvelope{cells: make(map[string]*cellTrack)}
				j.envelope.perCol[i] = col
			}
			c, ok := col.cells[g]
			if !ok {
				c = &cellTrack{env: estimate.NewEnvelope(j.envelope.window)}
				col.cells[g] = c
			}
			c.observe(frac, v)
		}
	}
	est := j.EstimatedAccuracy()
	j.realtimeCurve = append(j.realtimeCurve, estimate.Point{X: j.normSecs, Y: est})
	j.epochLog = append(j.epochLog, EpochObs{
		At:       now,
		Epoch:    j.epochs,
		EstAcc:   est,
		TrueAcc:  j.query.Accuracy(),
		Progress: j.AttainmentProgress(),
	})
}

// resetForScratchRestart clears every observation the job accumulated so
// a from-scratch replay reproduces the fault-free observation sequence
// bit-for-bit: fresh envelope and growth trackers, empty real-time curve,
// zeroed epoch and work counters. The caller restores the query itself
// from the pristine checkpoint. processingSecs is deliberately kept — the
// wasted time was really spent and the metrics must see it.
func (j *AQPJob) resetForScratchRestart() {
	j.envelope = &envelopeState{window: j.envelope.window, converge: j.envelope.converge}
	j.realtimeCurve = nil
	j.epochs = 0
	j.normSecs = 0
	j.everRan = false
	j.needsRestore = false
	j.lastRelease = 0
}

// envelopeConverged reports whether every tracked cell's envelope has
// filled its window and stabilized — the §IV-A stop signal.
func (j *AQPJob) envelopeConverged() bool {
	if j.envelope.perCol == nil || len(j.envelope.perCol) == 0 {
		return false
	}
	for _, col := range j.envelope.perCol {
		for _, c := range col.cells {
			if !c.env.Converged(j.envelope.converge) {
				return false
			}
		}
	}
	return true
}

// AttainmentProgress is the job's progress φ toward its completion
// criterion, in [0, 1]: estimated accuracy relative to the accuracy
// threshold for accuracy-oriented criteria, elapsed fraction for
// runtime-oriented ones.
func (j *AQPJob) AttainmentProgress() float64 {
	switch j.crit.Kind {
	case criteria.Accuracy, criteria.Convergence:
		if j.crit.Threshold <= 0 {
			return 0
		}
		p := j.EstimatedAccuracy() / j.crit.Threshold
		if p > 1 {
			p = 1
		}
		return p
	case criteria.Runtime:
		if secs, ok := j.crit.Deadline.DeadlineSeconds(); ok && secs > 0 {
			p := j.processingSecs / secs
			if p > 1 {
				p = 1
			}
			return p
		}
		return 0
	default:
		return 0
	}
}

// DeadlineSecs returns the wall-time deadline in seconds (∞-like large
// value for epoch deadlines, which the AQP workloads do not use).
func (j *AQPJob) DeadlineSecs() float64 {
	if secs, ok := j.crit.Deadline.DeadlineSeconds(); ok {
		return secs
	}
	return 1e18
}
