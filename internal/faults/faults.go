// Package faults provides deterministic fault injection for chaos-testing
// the Rotary executors. An Injector is driven by the same seeded PRNG
// substrate as the rest of the simulation (internal/sim), so every chaos
// run — which worker crashes when, which checkpoint write is corrupted,
// which read stalls — replays bit-for-bit from a single seed.
//
// The injector is consulted at well-defined decision points by the
// executors and the checkpoint store:
//
//   - EpochCrash: once per started epoch, may interrupt it mid-flight
//     (a worker process or GPU device crash);
//   - WriteFault / ReadFault: once per checkpoint I/O attempt, may inject
//     a transient error (retryable), corrupted bytes (write only,
//     detected by checksum at read), or a slow-storage event;
//   - RepairSecs / SlowDelaySecs: draw the virtual-time cost of a device
//     repair or a slow I/O op.
//
// All methods are safe on a nil *Injector (no faults) and safe for
// concurrent use, although the executors consult it from the
// single-threaded event loop, which is what makes draw order — and hence
// the whole fault schedule — deterministic.
package faults

import (
	"fmt"
	"sort"
	"sync"

	"rotary/internal/sim"
)

// Kind classifies one injected fault.
type Kind int

// Fault kinds.
const (
	// None means the operation proceeds unharmed.
	None Kind = iota
	// Crash interrupts a running epoch: the worker process (AQP) or the
	// GPU device (DLT) dies and every in-flight result is lost.
	Crash
	// Transient is a retryable checkpoint I/O error (EIO, a flaky NFS
	// mount, a throttled blob store).
	Transient
	// Corrupt silently flips checkpoint bytes on their way to disk; the
	// store's checksum detects it at load time.
	Corrupt
	// Slow is a slow-storage event: the I/O completes but takes extra
	// virtual time.
	Slow
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config sets the fault mix. All rates are per-opportunity probabilities
// in [0, 1): CrashRate applies once per started epoch, the I/O rates once
// per checkpoint read/write attempt. The rates are classified from a
// single uniform draw per opportunity, so TransientRate + CorruptRate +
// SlowRate must not exceed 1.
type Config struct {
	// Seed drives every draw; equal seeds replay identical fault
	// schedules against identical executor event sequences.
	Seed uint64
	// CrashRate is the probability a started epoch is interrupted by a
	// worker/device crash.
	CrashRate float64
	// TransientRate is the probability a checkpoint I/O attempt fails
	// with a retryable error.
	TransientRate float64
	// CorruptRate is the probability a checkpoint write's bytes are
	// silently corrupted (reads are never corrupted directly: corruption
	// is planted at write time and caught by the checksum at load).
	CorruptRate float64
	// SlowRate is the probability a checkpoint I/O attempt hits a
	// slow-storage event.
	SlowRate float64
	// SlowMeanSecs is the mean extra virtual latency of a slow I/O op
	// (exponentially distributed). Defaults to 5s.
	SlowMeanSecs float64
	// MeanRepairSecs is the mean virtual downtime of a crashed device
	// before it rejoins the cluster (exponentially distributed, clamped
	// to ≥ 1s). Defaults to 60s.
	MeanRepairSecs float64
}

// Uniform is a convenience mix: crash, transient and slow faults all at
// rate, corruption at rate/2, with default latencies. It is what the
// -fault-rate command-line flag constructs.
func Uniform(seed uint64, rate float64) Config {
	if rate < 0 {
		rate = 0
	}
	if rate > 0.3 {
		rate = 0.3 // keep the classification draw well-formed and runs convergent
	}
	return Config{
		Seed:          seed,
		CrashRate:     rate,
		TransientRate: rate,
		CorruptRate:   rate / 2,
		SlowRate:      rate,
	}
}

// Recoverable is the Uniform mix without corruption: every injected
// fault is recoverable from the last valid checkpoint, the precondition
// of the chaos suite's bit-equivalence check.
func Recoverable(seed uint64, rate float64) Config {
	c := Uniform(seed, rate)
	c.CorruptRate = 0
	return c
}

// Stats counts the faults an injector has dealt.
type Stats struct {
	Crashes     int
	Transients  int
	Corruptions int
	SlowIOs     int
}

// Injector deals deterministic faults from a seeded PRNG.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *sim.Rand
	stats Stats
}

// New returns an injector for the given mix. Zero-valued latencies take
// their documented defaults.
func New(cfg Config) *Injector {
	if cfg.SlowMeanSecs <= 0 {
		cfg.SlowMeanSecs = 5
	}
	if cfg.MeanRepairSecs <= 0 {
		cfg.MeanRepairSecs = 60
	}
	return &Injector{cfg: cfg, rng: sim.NewRand(cfg.Seed ^ 0xfa017)}
}

// Enabled reports whether the injector deals faults (false for nil).
func (in *Injector) Enabled() bool { return in != nil }

// EpochCrash reports whether an epoch of the given virtual length is
// interrupted by a crash, and after how many virtual seconds. The crash
// point is uniform over the middle 90% of the epoch.
func (in *Injector) EpochCrash(epochSecs float64) (afterSecs float64, crashed bool) {
	if in == nil || in.cfg.CrashRate <= 0 || epochSecs <= 0 {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.CrashRate {
		return 0, false
	}
	in.stats.Crashes++
	return in.rng.Range(0.05, 0.95) * epochSecs, true
}

// WriteFault draws the fault affecting one checkpoint write attempt.
func (in *Injector) WriteFault() Kind {
	return in.ioFault(true)
}

// ReadFault draws the fault affecting one checkpoint read attempt.
// Corruption never originates at read time — it is planted by WriteFault
// and surfaces as a checksum mismatch when the frame is decoded.
func (in *Injector) ReadFault() Kind {
	return in.ioFault(false)
}

func (in *Injector) ioFault(write bool) Kind {
	if in == nil {
		return None
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	corrupt := 0.0
	if write {
		corrupt = in.cfg.CorruptRate
	}
	u := in.rng.Float64()
	switch {
	case u < in.cfg.TransientRate:
		in.stats.Transients++
		return Transient
	case u < in.cfg.TransientRate+corrupt:
		in.stats.Corruptions++
		return Corrupt
	case u < in.cfg.TransientRate+corrupt+in.cfg.SlowRate:
		in.stats.SlowIOs++
		return Slow
	default:
		return None
	}
}

// SlowDelaySecs draws the extra virtual latency of one slow I/O event.
func (in *Injector) SlowDelaySecs() float64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Exp(in.cfg.SlowMeanSecs)
}

// RepairSecs draws the virtual downtime of a crashed device.
func (in *Injector) RepairSecs() float64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	d := in.rng.Exp(in.cfg.MeanRepairSecs)
	if d < 1 {
		d = 1
	}
	return d
}

// CrashSchedule is a deterministic process-crash plan for the durable
// serving mode's kill-restart chaos suite: a seeded sequence of virtual
// times at which the arbiter daemon itself is killed (SIGKILL — no drain,
// no flush beyond what each journal append already fsynced). Unlike the
// Injector's per-opportunity draws, the schedule is fixed up front: the
// test harness needs to know every kill point before the run starts so it
// can drive the victim to exactly that virtual time, kill it, and restart
// it from the journal.
type CrashSchedule struct {
	points []float64
}

// NewCrashSchedule draws kills daemon-kill points uniformly over
// (0, horizonSecs), sorted ascending, from the seed. Equal seeds replay
// identical schedules. A non-positive kills or horizon yields an empty
// schedule.
func NewCrashSchedule(seed uint64, horizonSecs float64, kills int) *CrashSchedule {
	s := &CrashSchedule{}
	if kills <= 0 || horizonSecs <= 0 {
		return s
	}
	rng := sim.NewRand(seed ^ 0x1c11)
	s.points = make([]float64, 0, kills)
	for i := 0; i < kills; i++ {
		s.points = append(s.points, rng.Range(0, 1)*horizonSecs)
	}
	sort.Float64s(s.points)
	return s
}

// Points returns the kill times in ascending virtual-time order.
func (s *CrashSchedule) Points() []float64 {
	out := make([]float64, len(s.points))
	copy(out, s.points)
	return out
}

// VictimShards draws a deterministic victim shard index for each kill of
// a multi-shard chaos plan: element i is the shard to SIGKILL at the i-th
// kill point. The draw is independent of the kill times so the same seed
// pairs the same victims with NewCrashSchedule's points. Equal seeds
// replay identical victim sequences; non-positive kills or shards yields
// an empty plan.
func VictimShards(seed uint64, kills, shards int) []int {
	if kills <= 0 || shards <= 0 {
		return nil
	}
	rng := sim.NewRand(seed ^ 0x5a4d)
	out := make([]int, kills)
	for i := range out {
		out[i] = rng.IntN(shards)
	}
	return out
}

// Stats returns the counts of faults dealt so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
