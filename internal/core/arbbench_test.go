package core

import (
	"strings"
	"testing"

	"rotary/internal/estimate"
)

func benchBaseReport() *ArbBenchReport {
	return &ArbBenchReport{
		Schema:        arbBenchSchema,
		CalibrationNs: 1000,
		Cases: []ArbBenchCase{
			{Path: "aqp", Policy: "rotary-aqp", Queued: 100, FastPath: false, NsPerOp: 10000, AllocsPerOp: 100},
			{Path: "aqp", Policy: "rotary-aqp", Queued: 100, FastPath: true, NsPerOp: 500, AllocsPerOp: 2},
		},
	}
}

// CompareArbBench passes a report against itself and flags ns, alloc,
// and missing-case regressions with the tolerance bands applied.
func TestCompareArbBench(t *testing.T) {
	base := benchBaseReport()
	if fails := CompareArbBench(base, base, 0.15, 0.10); len(fails) != 0 {
		t.Fatalf("self-comparison failed: %v", fails)
	}

	// Within band: 10% slower under a 15% band.
	cur := benchBaseReport()
	cur.Cases[0].NsPerOp = 11000
	if fails := CompareArbBench(base, cur, 0.15, 0.10); len(fails) != 0 {
		t.Fatalf("within-band slowdown flagged: %v", fails)
	}

	// Out of band: 20% slower.
	cur = benchBaseReport()
	cur.Cases[0].NsPerOp = 12000
	fails := CompareArbBench(base, cur, 0.15, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Fatalf("out-of-band slowdown not flagged correctly: %v", fails)
	}

	// Alloc regression: 100 -> 120 under a 10% band.
	cur = benchBaseReport()
	cur.Cases[0].AllocsPerOp = 120
	fails = CompareArbBench(base, cur, 0.15, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged correctly: %v", fails)
	}

	// Missing case.
	cur = benchBaseReport()
	cur.Cases = cur.Cases[:1]
	fails = CompareArbBench(base, cur, 0.15, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing case not flagged correctly: %v", fails)
	}
}

// Calibration normalization: a current run on a machine measured 2×
// slower (calibration 2000 vs 1000) may be 2× slower on every case
// without being a regression — and conversely, raw-equal numbers on a
// 2× faster machine ARE a regression.
func TestCompareArbBenchCalibrationScaling(t *testing.T) {
	base := benchBaseReport()
	cur := benchBaseReport()
	cur.CalibrationNs = 2000
	for i := range cur.Cases {
		cur.Cases[i].NsPerOp *= 2
	}
	if fails := CompareArbBench(base, cur, 0.15, 0.10); len(fails) != 0 {
		t.Fatalf("slower machine flagged despite calibration: %v", fails)
	}

	fast := benchBaseReport()
	fast.CalibrationNs = 500 // machine is 2× faster...
	// ...but the measured ns/op did not improve at all: real regression.
	if fails := CompareArbBench(base, fast, 0.15, 0.10); len(fails) != len(base.Cases) {
		t.Fatalf("faster machine's stagnant ns/op not flagged: %v", fails)
	}
	// Allocs are machine-independent: never scaled.
	alloc := benchBaseReport()
	alloc.CalibrationNs = 2000
	for i := range alloc.Cases {
		alloc.Cases[i].NsPerOp *= 2
		alloc.Cases[i].AllocsPerOp *= 2
	}
	fails := CompareArbBench(base, alloc, 0.15, 0.10)
	if len(fails) != len(base.Cases) {
		t.Fatalf("alloc doubling not flagged on slower machine: %v", fails)
	}

	// Cell-adjacent calibration overrides the run-level number: a cell
	// measured while the machine was 2× loaded may be 2× slower even
	// though the run-level calibration (taken at startup) saw no load.
	cellBase := benchBaseReport()
	cellCur := benchBaseReport()
	for i := range cellBase.Cases {
		cellBase.Cases[i].CalibrationNs = 1000
		cellCur.Cases[i].CalibrationNs = 2000
		cellCur.Cases[i].NsPerOp *= 2
	}
	if fails := CompareArbBench(cellBase, cellCur, 0.15, 0.10); len(fails) != 0 {
		t.Fatalf("mid-matrix load flagged despite cell calibration: %v", fails)
	}
	// And the reverse: the cell's own spin got faster, raw-equal ns/op is
	// a real regression even though run-level calibration is unchanged.
	cellFast := benchBaseReport()
	for i := range cellFast.Cases {
		cellFast.Cases[i].CalibrationNs = 500
	}
	if fails := CompareArbBench(cellBase, cellFast, 0.15, 0.10); len(fails) != len(cellBase.Cases) {
		t.Fatalf("per-cell stagnant ns/op not flagged: %v", fails)
	}
}

// MergeArbBenchMin keeps, per cell, whichever run was faster, and
// passes through cells measured only once.
func TestMergeArbBenchMin(t *testing.T) {
	a := benchBaseReport()
	b := benchBaseReport()
	b.Cases[0].NsPerOp = 8000 // retry was faster: keep it
	b.Cases[1].NsPerOp = 900  // retry was slower: keep the original
	b.Cases = append(b.Cases, ArbBenchCase{Path: "dlt", Policy: "srf", Queued: 100, NsPerOp: 77})

	m := MergeArbBenchMin(a, b)
	if len(m.Cases) != 3 {
		t.Fatalf("merged cases = %d, want 3", len(m.Cases))
	}
	if m.Cases[0].NsPerOp != 8000 {
		t.Errorf("cell 0: kept %v, want the faster retry 8000", m.Cases[0].NsPerOp)
	}
	if m.Cases[1].NsPerOp != 500 {
		t.Errorf("cell 1: kept %v, want the faster original 500", m.Cases[1].NsPerOp)
	}
	if m.Cases[2].NsPerOp != 77 {
		t.Errorf("retry-only cell not passed through: %+v", m.Cases[2])
	}
	// Inputs are not mutated.
	if a.Cases[0].NsPerOp != 10000 {
		t.Errorf("merge mutated its input: %v", a.Cases[0].NsPerOp)
	}
}

// The queue synthesis is a pure function of the seed: two queues from
// the same seed fingerprint identically, different seeds differ.
func TestSynthQueuesDeterministic(t *testing.T) {
	f := newAQPFastPath(NewRotaryAQP(estimate.NewAccuracyProgress(estimate.NewRepository(), 3)))
	a, b := synthAQPQueue(12, 9), synthAQPQueue(12, 9)
	for i := range a {
		fa := f.jobFingerprint(a[i])
		// Separate memo identity: clear so pointer memoization can't mask
		// a content difference.
		delete(f.idH, a[i])
		if fb := f.jobFingerprint(b[i]); fa != fb {
			t.Fatalf("job %d fingerprints diverged across same-seed synthesis", i)
		}
	}
	c := synthAQPQueue(12, 10)
	same := true
	for i := range a {
		delete(f.idH, a[i])
		fa := f.jobFingerprint(a[i])
		delete(f.idH, c[i])
		if fa != f.jobFingerprint(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical queues")
	}
}

// End-to-end smoke over a tiny matrix: the harness must produce one
// case per (policy, depth, toggle) cell, with hits recorded on the
// fast-path cells and sane derived numbers.
func TestRunArbiterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks (~seconds)")
	}
	var lines int
	rep, err := RunArbiterBench(ArbBenchConfig{
		QueueSizes:     []int{6},
		Seed:           7,
		HistoryRecords: 8,
		AQP: []ArbBenchAQPPolicy{{Name: "rotary-aqp", Build: func(repo *estimate.Repository) AQPScheduler {
			return NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		}}},
		DLT: []ArbBenchDLTPolicy{{Name: "rotary-dlt", Build: func(repo *estimate.Repository) DLTScheduler {
			return NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		}}},
		Log: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != arbBenchSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.CalibrationNs <= 0 {
		t.Errorf("calibration = %v", rep.CalibrationNs)
	}
	if len(rep.Cases) != 4 || lines != 4 {
		t.Fatalf("cases = %d, log lines = %d, want 4", len(rep.Cases), lines)
	}
	for _, c := range rep.Cases {
		if c.NsPerOp <= 0 || c.DecisionsPerSec <= 0 {
			t.Errorf("%s: empty measurement: %+v", arbCaseKey(c), c)
		}
		if c.EpochVirtualSecs <= 0 || c.OverheadFrac <= 0 {
			t.Errorf("%s: missing overhead accounting: %+v", arbCaseKey(c), c)
		}
		if c.CalibrationNs <= 0 {
			t.Errorf("%s: missing cell calibration", arbCaseKey(c))
		}
		if c.FastPath && c.FastPathHits == 0 {
			t.Errorf("%s: fast-path cell recorded no hits", arbCaseKey(c))
		}
		if !c.FastPath && (c.FastPathHits != 0 || c.FastPathMisses != 0) {
			t.Errorf("%s: slow-path cell recorded cache traffic", arbCaseKey(c))
		}
	}
	if fails := CompareArbBench(rep, rep, 0.15, 0.10); len(fails) != 0 {
		t.Errorf("fresh report fails against itself: %v", fails)
	}
	if r := rep.Render(); !strings.Contains(r, "rotary-aqp") || !strings.Contains(r, "fast=on") {
		t.Errorf("render missing expected content:\n%s", r)
	}
}
