// Package cliutil holds shared command-line validation for the rotary
// binaries: flag values are range-checked before any work starts, so a
// typo'd -jobs -5 fails with a usage error instead of a confusing panic
// (or a silent empty run) minutes into dataset generation.
package cliutil

import (
	"errors"
	"fmt"
)

// MinInt requires v >= min.
func MinInt(name string, v, min int) error {
	if v < min {
		return fmt.Errorf("%s must be >= %d (got %d)", name, min, v)
	}
	return nil
}

// Positive requires v > 0.
func Positive(name string, v float64) error {
	if !(v > 0) { // NaN fails too
		return fmt.Errorf("%s must be > 0 (got %g)", name, v)
	}
	return nil
}

// NonNegative requires v >= 0.
func NonNegative(name string, v float64) error {
	if !(v >= 0) { // NaN fails too
		return fmt.Errorf("%s must be >= 0 (got %g)", name, v)
	}
	return nil
}

// Fraction requires v in [0, 1].
func Fraction(name string, v float64) error {
	if !(v >= 0 && v <= 1) { // NaN fails too
		return fmt.Errorf("%s must be in [0, 1] (got %g)", name, v)
	}
	return nil
}

// ValidateAll joins the non-nil errors, one per line.
func ValidateAll(errs ...error) error {
	return errors.Join(errs...)
}
