package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
)

// idOwnedBy finds a job id whose consistent-hash owner is the given
// shard — the ring is a pure function of the id, so tests can steer
// submissions deterministically.
func idOwnedBy(t *testing.T, r *Router, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("own-%d-%d", shard, i)
		if r.ring.Owner(id, func(int) bool { return true }) == shard {
			return id
		}
	}
	t.Fatalf("no id hashing to shard %d in 10000 candidates", shard)
	return ""
}

// TestRouterSubmitRoutingAndStatus: the router speaks the single-server
// protocol over N shards — submits land on their hash-owners, status
// answers from wherever the job lives, stats and metrics fan in across
// the fleet.
func TestRouterSubmitRoutingAndStatus(t *testing.T) {
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: 3,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	c := dial(t, r.cfg.Socket)

	used := map[int]bool{}
	var ids []string
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("rt-%d", i)
		resp := c.call(t, Message{Op: "submit", ID: id, Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if !resp.OK {
			t.Fatalf("submit %s: %+v", id, resp)
		}
		if resp.Shard < 0 || resp.Shard >= 3 {
			t.Fatalf("submit %s routed to shard %d", id, resp.Shard)
		}
		used[resp.Shard] = true
		ids = append(ids, id)
		// Status must answer from the same shard the submit landed on.
		st := c.call(t, Message{Op: "status", ID: id})
		if !st.OK || st.Shard != resp.Shard {
			t.Fatalf("status %s from shard %d, submitted to %d: %+v", id, st.Shard, resp.Shard, st)
		}
	}
	if len(used) < 2 {
		t.Fatalf("8 submits all hashed to one shard: %v", used)
	}
	// An id-less submit gets a router-generated id (routing needs the key
	// before any shard has seen the job).
	anon := c.call(t, Message{Op: "submit", Statement: "q6 ACC MIN 55% WITHIN 900 SECONDS"})
	if !anon.OK || anon.ID == "" {
		t.Fatalf("id-less submit: %+v", anon)
	}
	ids = append(ids, anon.ID)

	stats := c.call(t, Message{Op: "stats"})
	if !stats.OK || stats.Jobs != len(ids) {
		t.Fatalf("aggregate stats tracked %d jobs, want %d: %+v", stats.Jobs, len(ids), stats)
	}
	for i := 0; i < 3; i++ {
		if !strings.Contains(stats.Report, fmt.Sprintf("=== shard %d ===", i)) {
			t.Fatalf("stats report missing shard %d section:\n%s", i, stats.Report)
		}
	}
	met := c.call(t, Message{Op: "metrics"})
	if !met.OK {
		t.Fatalf("metrics: %+v", met)
	}
	for _, want := range []string{
		`rotary_router_requests_total{op="submit"}`,
		`rotary_router_forwards_total`,
		`shard="0"`, // per-shard registries merge under an injected label
	} {
		if !strings.Contains(met.Report, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, met.Report)
		}
	}

	if resp := c.call(t, Message{Op: "advance", Seconds: 2000}); !resp.OK {
		t.Fatalf("advance: %+v", resp)
	}
	for _, id := range ids {
		resp := c.call(t, Message{Op: "status", ID: id})
		if !resp.OK || !terminalStatus(resp.Status) {
			t.Fatalf("job %s not terminal: %+v", id, resp)
		}
	}
	dr := c.call(t, Message{Op: "drain"})
	if !dr.OK || dr.Jobs != len(ids) || dr.Terminal != len(ids) {
		t.Fatalf("drain: %+v", dr)
	}
}

// TestRouterShardUnavailableTyped is the graceful-degradation contract:
// a dead shard yields a typed shard-unavailable reply with a
// retry-after hint — promptly, never a hang — both before the
// supervisor has noticed the crash (transport failure) and after it has
// (probed-down). The surviving shard keeps serving throughout.
func TestRouterShardUnavailableTyped(t *testing.T) {
	t.Run("undetected-crash", func(t *testing.T) {
		base := t.TempDir()
		r := startTestRouter(t, RouterConfig{
			Socket:        filepath.Join(base, "r.sock"),
			Shards:        2,
			Dir:           filepath.Join(base, "state"),
			Pace:          0,
			ProbeInterval: time.Hour, // supervisor never notices: forwards hit the corpse
		})
		c := dial(t, r.cfg.Socket)
		victimID := idOwnedBy(t, r, 0)
		if resp := c.call(t, Message{Op: "submit", ID: victimID, Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK || resp.Shard != 0 {
			t.Fatalf("submit: %+v", resp)
		}
		if err := r.KillShard(0); err != nil {
			t.Fatalf("KillShard: %v", err)
		}
		start := time.Now()
		resp := c.call(t, Message{Op: "status", ID: victimID})
		elapsed := time.Since(start)
		if resp.OK || resp.Code != CodeShardUnavailable || resp.Shard != 0 {
			t.Fatalf("status against dead shard: %+v", resp)
		}
		if resp.RetryAfterSecs <= 0 {
			t.Fatalf("no retry-after hint: %+v", resp)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("deadline-bounded forward took %v", elapsed)
		}
	})

	t.Run("probed-down", func(t *testing.T) {
		base := t.TempDir()
		r := startTestRouter(t, RouterConfig{
			Socket:         filepath.Join(base, "r.sock"),
			Shards:         2,
			Dir:            filepath.Join(base, "state"),
			Pace:           0,
			ProbeInterval:  10 * time.Millisecond,
			RestartBackoff: time.Hour, // detected fast, restarted never: stays Down
		})
		c := dial(t, r.cfg.Socket)
		deadID, liveID := idOwnedBy(t, r, 0), idOwnedBy(t, r, 1)
		if resp := c.call(t, Message{Op: "submit", ID: deadID, Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK {
			t.Fatalf("submit: %+v", resp)
		}
		if err := r.KillShard(0); err != nil {
			t.Fatalf("KillShard: %v", err)
		}
		waitShardState(t, r, 0, ShardDown, 10*time.Second)

		resp := c.call(t, Message{Op: "status", ID: deadID})
		if resp.OK || resp.Code != CodeShardUnavailable || resp.RetryAfterSecs <= 0 {
			t.Fatalf("status against down shard: %+v", resp)
		}
		// A submit hashing to the down shard is refused, not rerouted: its
		// durable state lives in that shard's journal.
		sub := c.call(t, Message{Op: "submit", ID: idOwnedBy(t, r, 0) + "-new", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if sub.OK && sub.Shard == 0 {
			t.Fatalf("submit reached a down shard: %+v", sub)
		}
		// Fault isolation: the surviving shard serves undisturbed.
		if resp := c.call(t, Message{Op: "submit", ID: liveID, Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK || resp.Shard != 1 {
			t.Fatalf("submit to surviving shard: %+v", resp)
		}
		h := c.call(t, Message{Op: "health"})
		if !h.OK || !strings.Contains(h.Status, "degraded") {
			t.Fatalf("health with a down shard: %+v", h)
		}
		sh := c.call(t, Message{Op: "shards"})
		if !sh.OK || sh.Shards[0].State != "down" || sh.Shards[1].State != "running" {
			t.Fatalf("shards report: %+v", sh)
		}
	})
}

// TestRouterStaleShardSockets: SIGKILL leaves socket files behind for
// the router and every shard; the next start must reclaim each of them
// — one leftover shard socket never aborts the whole daemon's startup.
func TestRouterStaleShardSockets(t *testing.T) {
	base := t.TempDir()
	socket := filepath.Join(base, "r.sock")
	for _, path := range []string{socket, socket + ".shard0", socket + ".shard1"} {
		ln, err := net.Listen("unix", path)
		if err != nil {
			t.Fatalf("plant socket %s: %v", path, err)
		}
		ln.(*net.UnixListener).SetUnlinkOnClose(false)
		ln.Close()
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("stale socket not on disk: %v", err)
		}
	}
	r := startTestRouter(t, RouterConfig{
		Socket: socket,
		Shards: 2,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	for i := 0; i < 2; i++ {
		if st, _ := r.ShardState(i); st != ShardRunning {
			t.Fatalf("shard %d is %v after stale-socket startup", i, st)
		}
	}
	c := dial(t, socket)
	if resp := c.call(t, Message{Op: "health"}); !resp.OK || resp.Status != "healthy" {
		t.Fatalf("health on reclaimed sockets: %+v", resp)
	}
}

// TestRouterStartupShardFailureIsolated: a shard whose stack fails to
// build at boot is marked down — the daemon still comes up and serves
// the healthy shards.
func TestRouterStartupShardFailureIsolated(t *testing.T) {
	base := t.TempDir()
	build := func(index int, store *core.CheckpointStore) (*core.AQPExecutor, *tpch.Catalog, *obs.Registry, error) {
		if index == 0 {
			return nil, nil, nil, errors.New("injected: shard 0 build failure")
		}
		return testShardBuilder(index, store)
	}
	r := startTestRouter(t, RouterConfig{
		Socket:         filepath.Join(base, "r.sock"),
		Shards:         2,
		Dir:            filepath.Join(base, "state"),
		Build:          build,
		Pace:           0,
		RestartBackoff: time.Hour, // one failed boot, no retry churn during the test
	})
	c := dial(t, r.cfg.Socket)
	h := c.call(t, Message{Op: "health"})
	if !h.OK || !strings.Contains(h.Status, "degraded") {
		t.Fatalf("health: %+v", h)
	}
	if resp := c.call(t, Message{Op: "submit", ID: idOwnedBy(t, r, 1), Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK || resp.Shard != 1 {
		t.Fatalf("submit to healthy shard: %+v", resp)
	}
	dead := c.call(t, Message{Op: "submit", ID: idOwnedBy(t, r, 0), Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if dead.OK || dead.Code != CodeShardUnavailable {
		t.Fatalf("submit to failed shard: %+v", dead)
	}
	sh := c.call(t, Message{Op: "shards"})
	if !sh.OK || sh.Shards[0].State == "running" || sh.Shards[0].Error == "" {
		t.Fatalf("shards report hides the boot failure: %+v", sh)
	}
}

// TestRouterRetire: retiring a shard migrates its tracked jobs to their
// ring successors, drains it, and reroutes future traffic around it —
// permanently and idempotently.
func TestRouterRetire(t *testing.T) {
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: 2,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	c := dial(t, r.cfg.Socket)
	onZero, onOne := idOwnedBy(t, r, 0), idOwnedBy(t, r, 1)
	for _, id := range []string{onZero, onOne} {
		if resp := c.call(t, Message{Op: "submit", ID: id, Statement: "q1 ACC MIN 99% WITHIN 900 SECONDS"}); !resp.OK {
			t.Fatalf("submit %s: %+v", id, resp)
		}
	}
	if resp := c.call(t, Message{Op: "advance", Seconds: 20}); !resp.OK {
		t.Fatalf("advance: %+v", resp)
	}
	ret := c.call(t, Message{Op: "retire", Shard: 0})
	if !ret.OK || ret.Status != "retired" || ret.Jobs != 1 {
		t.Fatalf("retire: %+v", ret)
	}
	if st, _ := r.ShardState(0); st != ShardRetired {
		t.Fatalf("shard 0 is %v after retire", st)
	}
	// The migrated job answers from its new home.
	st := c.call(t, Message{Op: "status", ID: onZero})
	if !st.OK || st.Shard != 1 {
		t.Fatalf("status %s after retire: %+v", onZero, st)
	}
	// New work that would hash to the retired shard reroutes.
	reroute := c.call(t, Message{Op: "submit", ID: idOwnedBy(t, r, 0) + "-late", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !reroute.OK || reroute.Shard != 1 {
		t.Fatalf("post-retire submit: %+v", reroute)
	}
	// Retire is idempotent.
	again := c.call(t, Message{Op: "retire", Shard: 0})
	if !again.OK || again.Code != CodeShardRetired {
		t.Fatalf("second retire: %+v", again)
	}
	if resp := c.call(t, Message{Op: "advance", Seconds: 3000}); !resp.OK {
		t.Fatalf("advance: %+v", resp)
	}
	for _, id := range []string{onZero, onOne, reroute.ID} {
		resp := c.call(t, Message{Op: "status", ID: id})
		if !resp.OK || !terminalStatus(resp.Status) {
			t.Fatalf("job %s not terminal after retire: %+v", id, resp)
		}
	}
	if dr := c.call(t, Message{Op: "drain"}); !dr.OK {
		t.Fatalf("drain: %+v", dr)
	}
}

// TestRouterResponseCodes pins the machine-readable Code on each
// router-level error class, so clients can branch without
// string-matching Error.
func TestRouterResponseCodes(t *testing.T) {
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: 2,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	c := dial(t, r.cfg.Socket)
	if resp := c.call(t, Message{Op: "submit", ID: "vc", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK {
		t.Fatalf("submit: %+v", resp)
	}
	cases := []struct {
		name string
		m    Message
		code string
		ok   bool
	}{
		{"unknown op", Message{Op: "bogus"}, CodeUnknownOp, false},
		{"status without id", Message{Op: "status"}, CodeBadRequest, false},
		{"negative advance", Message{Op: "advance", Seconds: -1}, CodeBadRequest, false},
		{"migrate without id", Message{Op: "migrate", Shard: 1}, CodeBadRequest, false},
		{"migrate unknown job", Message{Op: "migrate", ID: "nope", Shard: 1}, CodeUnknownJob, false},
		{"migrate bad shard", Message{Op: "migrate", ID: "vc", Shard: 7}, CodeBadShard, false},
		{"migrate negative shard", Message{Op: "migrate", ID: "vc", Shard: -2}, CodeBadShard, false},
		{"retire bad shard", Message{Op: "retire", Shard: 99}, CodeBadShard, false},
		{"trace-tail bad shard", Message{Op: "trace-tail", Shard: 31}, CodeBadShard, false},
	}
	for _, tc := range cases {
		resp := c.call(t, tc.m)
		if resp.OK != tc.ok || resp.Code != tc.code {
			t.Errorf("%s: got ok=%v code=%q, want ok=%v code=%q (%+v)", tc.name, resp.OK, resp.Code, tc.ok, tc.code, resp)
		}
	}
	// Migrate to the job's own shard is an explicit no-op, not an error.
	own := c.call(t, Message{Op: "status", ID: "vc"})
	noop := c.call(t, Message{Op: "migrate", ID: "vc", Shard: own.Shard})
	if !noop.OK || noop.Code != CodeMigrateNoop {
		t.Errorf("same-shard migrate: %+v", noop)
	}
}

// TestRouterOversizedRequestLine mirrors the single server's oversized
// handling on the router socket: a typed too-large reply, then the
// connection closes.
func TestRouterOversizedRequestLine(t *testing.T) {
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: 1,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	conn, err := net.Dial("unix", r.cfg.Socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	big := append(bytes.Repeat([]byte("a"), maxLineBytes+16), '\n')
	if _, err := conn.Write(big); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no reply to oversized request: %v", err)
	}
	if resp.OK || resp.Code != CodeTooLarge {
		t.Fatalf("oversized reply: %+v", resp)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatalf("connection still open after oversized request")
	}
}
