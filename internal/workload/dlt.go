package workload

import (
	"fmt"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// Table II parameter spaces (the survey-derived distributions).
var (
	// ConvergenceDeltas are the delta-accuracy choices.
	ConvergenceDeltas = []float64{0.05, 0.03, 0.01, 0.005, 0.003, 0.001, 0.0005, 0.0003, 0.0001, 0.00005, 0.00003, 0.00001}
	// AccuracyTargets are the final-accuracy choices.
	AccuracyTargets = []float64{0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90, 0.92}
	// RuntimeEpochsScratch and RuntimeEpochsPretrained are the runtime-
	// criteria epoch choices.
	RuntimeEpochsScratch    = []int{5, 10, 30, 50, 100}
	RuntimeEpochsPretrained = []int{1, 2, 3, 4, 5}
	// MaxEpochChoices bound accuracy/convergence criteria.
	MaxEpochChoices = []int{1, 5, 10, 15, 20, 25, 30}
)

// DLTSpec is one synthesized DLT job.
type DLTSpec struct {
	ID       string
	Config   dlt.Config
	Criteria criteria.Criteria
}

// DLTWorkloadConfig parameterizes Table II generation.
type DLTWorkloadConfig struct {
	// Jobs is the workload size.
	Jobs int
	// CriteriaMix is the convergence/accuracy/runtime proportion
	// (Table II: 60/20/20).
	CriteriaMix [3]float64
	// PretrainedFraction is the share of fine-tuning jobs.
	PretrainedFraction float64
	// Seed drives every random choice.
	Seed uint64
}

// DefaultDLTWorkload is the Table II configuration.
func DefaultDLTWorkload(jobs int, seed uint64) DLTWorkloadConfig {
	if jobs <= 0 {
		jobs = 30
	}
	return DLTWorkloadConfig{
		Jobs:               jobs,
		CriteriaMix:        [3]float64{0.60, 0.20, 0.20},
		PretrainedFraction: 0.2,
		Seed:               seed,
	}
}

// GenerateDLT samples a Table II workload: model architecture and the
// criteria mix follow the survey distributions; hyperparameters and
// criteria parameters are uniform over their spaces. A criteria
// construction failure (a malformed parameter space) is reported, not
// panicked, so library callers can handle it.
func GenerateDLT(cfg DLTWorkloadConfig) ([]DLTSpec, error) {
	r := sim.NewRand(cfg.Seed ^ 0xd17)
	if cfg.Jobs <= 0 {
		cfg.Jobs = 30
	}
	specs := make([]DLTSpec, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		kind := r.PickWeighted(cfg.CriteriaMix[:])
		pretrained := r.Float64() < cfg.PretrainedFraction

		var model string
		if pretrained {
			model = sim.Pick(r, dlt.PreTrainedModels())
		} else {
			// Pick a domain first (surveyed researchers skew CV), then an
			// architecture.
			domain := dlt.CV
			if r.Float64() < 0.3 {
				domain = dlt.NLP
			}
			model = sim.Pick(r, dlt.ScratchModels(domain))
		}
		spec, _ := dlt.Lookup(model)
		var dataset string
		var batch int
		if spec.Domain == dlt.CV {
			dataset = "cifar10"
			batch = sim.Pick(r, dlt.BatchSizesCV)
		} else {
			dataset = sim.Pick(r, dlt.DatasetsFor(dlt.NLP))
			batch = sim.Pick(r, dlt.BatchSizesNLP)
		}
		jobCfg := dlt.Config{
			Model:     model,
			Dataset:   dataset,
			BatchSize: batch,
			Optimizer: sim.Pick(r, dlt.Optimizers),
			LR:        sim.Pick(r, dlt.LearningRates),
			Seed:      cfg.Seed ^ uint64(i)*0x1009,
		}

		var crit criteria.Criteria
		var err error
		switch kind {
		case 0: // convergence-oriented
			crit, err = criteria.NewConvergence("ACC",
				sim.Pick(r, ConvergenceDeltas),
				criteria.Deadline{Value: float64(sim.Pick(r, MaxEpochChoices)), Unit: criteria.Epochs})
		case 1: // accuracy-oriented
			crit, err = criteria.NewAccuracy("ACC",
				sim.Pick(r, AccuracyTargets),
				criteria.Deadline{Value: float64(sim.Pick(r, MaxEpochChoices)), Unit: criteria.Epochs})
		default: // runtime-oriented
			epochs := RuntimeEpochsScratch
			if pretrained {
				epochs = RuntimeEpochsPretrained
			}
			crit, err = criteria.NewRuntime(
				criteria.Deadline{Value: float64(sim.Pick(r, epochs)), Unit: criteria.Epochs})
		}
		if err != nil {
			return nil, fmt.Errorf("workload: DLT job %d criteria: %w", i, err)
		}
		specs = append(specs, DLTSpec{
			ID:       fmt.Sprintf("dlt-%02d-%s", i, model),
			Config:   jobCfg,
			Criteria: crit,
		})
	}
	return specs, nil
}

// BuildDLTJob turns a spec into a runnable arbitrated job.
func BuildDLTJob(spec DLTSpec) (*core.DLTJob, error) {
	trainer, err := dlt.NewJob(spec.Config)
	if err != nil {
		return nil, err
	}
	return core.NewDLTJob(spec.ID, trainer, spec.Criteria)
}

// SeedDLTHistory populates a repository with nJobs completed training
// runs sampled from the Table II spaces — the historical jobs Rotary-DLT
// "stores … in a repository so that the system can provide more accurate
// estimates" (§IV-B). Each history job trains to its curve's plateau
// (capped at maxEpochs) entirely off the arbitration path.
func SeedDLTHistory(repo *estimate.Repository, nJobs, maxEpochs int, seed uint64) error {
	if maxEpochs <= 0 {
		maxEpochs = 30
	}
	r := sim.NewRand(seed ^ 0x5eed)
	for i := 0; i < nJobs; i++ {
		domain := dlt.CV
		if r.Float64() < 0.35 {
			domain = dlt.NLP
		}
		model := sim.Pick(r, dlt.ScratchModels(domain))
		spec, _ := dlt.Lookup(model)
		var dataset string
		var batch int
		if spec.Domain == dlt.CV {
			dataset = "cifar10"
			batch = sim.Pick(r, dlt.BatchSizesCV)
		} else {
			dataset = sim.Pick(r, dlt.DatasetsFor(dlt.NLP))
			batch = sim.Pick(r, dlt.BatchSizesNLP)
		}
		cfg := dlt.Config{
			Model:     model,
			Dataset:   dataset,
			BatchSize: batch,
			Optimizer: sim.Pick(r, dlt.Optimizers),
			LR:        sim.Pick(r, dlt.LearningRates),
			Seed:      seed ^ uint64(i)*0x2003,
		}
		job, err := dlt.NewJob(cfg)
		if err != nil {
			return err
		}
		var totalSecs float64
		for e := 0; e < maxEpochs; e++ {
			_, secs := job.TrainEpoch()
			totalSecs += secs
			if job.Converged(0.001) {
				break
			}
		}
		epochs := job.EpochsTrained()
		repo.AddDLT(estimate.DLTRecord{
			ID:        fmt.Sprintf("hist-dlt-%03d-%s", i, model),
			Model:     cfg.Model,
			Family:    spec.Family,
			Dataset:   cfg.Dataset,
			ParamsM:   spec.ParamsM,
			BatchSize: cfg.BatchSize,
			Optimizer: cfg.Optimizer,
			LR:        cfg.LR,
			Epochs:    epochs,
			AccCurve:  job.AccuracyHistory(),
			PeakMemMB: job.PeakMemoryMB(),
			EpochSecs: totalSecs / float64(epochs),
		})
	}
	return nil
}
