// Package sim provides the discrete-event simulation substrate that drives
// every Rotary experiment in this repository.
//
// The paper's evaluation runs for wall-clock hours on a 24-core Spark/Kafka
// server (Rotary-AQP) and a 4-GPU TensorFlow box (Rotary-DLT). This package
// replaces wall-clock time with a virtual clock: engine cost models charge
// virtual seconds for batch processing and training epochs, and an event
// queue advances the clock to the next completion or arrival. All policies
// (Rotary and every baseline) are driven by the same event loop and charged
// the same costs, so policy comparisons remain apples-to-apples while
// experiments that took the authors hours replay in milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation.
type Time float64

// Seconds reports the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Minutes reports the time as a float64 number of minutes.
func (t Time) Minutes() float64 { return float64(t) / 60 }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// for the same instant fire in scheduling order (deterministic replay).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; Rotary's arbitration
// loop is single-threaded by design (the paper's Algorithm 1 is a
// sequential loop over epochs).
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// New returns a fresh simulation engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// is treated as zero. Events scheduled for the same instant run in the
// order they were scheduled.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e.ScheduleAt(e.now+Time(delay), fn)
}

// ScheduleAt arranges for fn to run at the absolute virtual time at. Times
// in the past are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Pending reports the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Stop discards every pending event without advancing the clock. Drivers
// call it when their workload is complete so leftover watchdog timers do
// not drag the clock to the horizon.
func (e *Engine) Stop() {
	e.events = e.events[:0]
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline (if the clock has not passed it already). Events scheduled
// beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
