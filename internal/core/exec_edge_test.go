package core_test

import (
	"testing"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// fifoAQP grants one thread per job in arrival order with a configurable
// memory reservation — a minimal deterministic policy for edge tests.
type fifoAQP struct {
	reserve bool
	threads int
}

func (f fifoAQP) Name() string { return "fifo-test" }

func (f fifoAQP) Assign(ctx *core.AQPContext) []core.AQPGrant {
	th := f.threads
	if th <= 0 {
		th = 1
	}
	var grants []core.AQPGrant
	free := ctx.FreeThreads
	mem := ctx.FreeMemMB
	for _, j := range ctx.Pending {
		if free < th {
			break
		}
		r := 0.0
		if f.reserve {
			r = j.EstMemMB()
			if r > mem {
				continue
			}
		}
		grants = append(grants, core.AQPGrant{Job: j, Threads: th, ReserveMemMB: r})
		free -= th
		mem -= r
	}
	return grants
}

func buildJob(t *testing.T, cat *tpch.Catalog, id, query string, acc, deadline float64) *core.AQPJob {
	t.Helper()
	cls, _ := tpch.ClassOf(query)
	j, err := workload.BuildAQPJob(cat, workload.AQPSpec{
		ID: id, Query: query, Class: cls, Accuracy: acc,
		DeadlineSecs: deadline, BatchRows: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestWatchdogExpiresWaitingJobs(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	// One thread total: the second job can never run before its deadline.
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 1
	exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
	long := buildJob(t, cat, "long", "q7", 0.95, 4000)
	starved := buildJob(t, cat, "starved", "q6", 0.95, 50)
	exec.Submit(long, 0)
	exec.Submit(starved, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	if starved.Status() != core.StatusExpired {
		t.Fatalf("starved job ended %v, want expired", starved.Status())
	}
	// The watchdog fires exactly at the deadline, not at the next epoch
	// boundary of some other job.
	if got := (starved.EndTime() - starved.Arrival()).Seconds(); got != 50 {
		t.Errorf("starved job expired after %vs, want exactly 50s", got)
	}
	if starved.Epochs() != 0 {
		t.Errorf("starved job ran %d epochs on a busy pool", starved.Epochs())
	}
}

func TestMemoryPressureSlowsOversubscribedPolicies(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	heavyProf, _ := cat.MemoryProfile("q9")
	budget := heavyProf.EstimateMB() * 1.05 // fits one q9; two oversubscribe heavily

	runtime := func(reserve bool) float64 {
		cfg := core.DefaultAQPExecConfig(budget)
		cfg.Threads = 4
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: reserve}, nil)
		a := buildJob(t, cat, "a", "q9", 0.9, 1e6)
		b := buildJob(t, cat, "b", "q9", 0.9, 1e6)
		exec.Submit(a, 0)
		exec.Submit(b, 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Engine().Now().Seconds()
	}
	aware := runtime(true)
	blind := runtime(false)
	// The memory-blind run co-schedules both heavy jobs and pays the
	// thrashing factor; despite the extra parallelism it must not beat the
	// memory-aware run by much, and the pressure should make it slower.
	if blind <= aware*0.95 {
		t.Errorf("memory-blind makespan %.0fs vs aware %.0fs: oversubscription unpunished", blind, aware)
	}
}

func TestHotContinueAvoidsCheckpointCost(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	// Single job alone: re-granted at the instant it releases, so no
	// checkpoint/restore cost is ever paid. Compare against a config with
	// enormous checkpoint costs — the makespan must be identical.
	run := func(cpSecs float64) float64 {
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 2
		cfg.CheckpointBaseSecs = cpSecs
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		j := buildJob(t, cat, "solo", "q6", 0.9, 1e6)
		exec.Submit(j, 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Engine().Now().Seconds()
	}
	cheap := run(0.001)
	pricey := run(1000)
	if cheap != pricey {
		t.Errorf("continuously prioritized job paid checkpoint costs: %.1fs vs %.1fs", cheap, pricey)
	}
}

// underestimatingDLT places jobs while declaring (and believing) far too
// little memory, forcing the executor's OOM path.
type underestimatingDLT struct{}

func (underestimatingDLT) Name() string { return "underestimate" }

func (underestimatingDLT) Place(ctx *core.DLTContext) []core.DLTPlacement {
	var out []core.DLTPlacement
	used := map[string]bool{}
	for _, gpu := range ctx.FreeGPUs {
		for _, j := range ctx.Pending {
			if used[j.ID()] {
				continue
			}
			out = append(out, core.DLTPlacement{Job: j, Device: gpu.ID, EstMemMB: 1})
			used[j.ID()] = true
			break
		}
	}
	return out
}

func TestDLTOOMPathRequeuesJob(t *testing.T) {
	cfg := core.DefaultDLTExecConfig()
	cfg.GPUs = 1
	cfg.GPUMemMB = 512 // far below any real model's footprint
	exec := core.NewDLTExecutor(cfg, underestimatingDLT{}, nil)
	trainer, err := dlt.NewJob(dlt.Config{
		Model: "resnet-18", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 3, Unit: criteria.Epochs})
	j, err := core.NewDLTJob("oom", trainer, crit)
	if err != nil {
		t.Fatal(err)
	}
	exec.Submit(j, 0)
	exec.Engine().RunUntil(sim.Time(3600))
	if exec.OOMEvents() == 0 {
		t.Fatal("no OOM events on a 512 MB device")
	}
	if j.Epochs() != 0 {
		t.Errorf("job trained %d epochs despite OOM", j.Epochs())
	}
	if j.Status().Terminal() {
		t.Errorf("OOM job terminal: %v", j.Status())
	}
}

func TestDLTRoundBarrierNoMidRoundPlacement(t *testing.T) {
	// With one GPU and two equal jobs, placements must alternate round by
	// round is not required — but a round must never start while the
	// previous round's job is still mid-epoch, so the device is never
	// double-booked and placements never overlap in time.
	repo := estimate.NewRepository()
	sched := core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	cfg := core.DefaultDLTExecConfig()
	cfg.GPUs = 1
	exec := core.NewDLTExecutor(cfg, sched, repo)
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 4, Unit: criteria.Epochs})
	var jobs []*core.DLTJob
	for i := 0; i < 2; i++ {
		trainer, err := dlt.NewJob(dlt.Config{
			Model: "lenet", Dataset: "cifar10", BatchSize: 32,
			Optimizer: "sgd", LR: 0.01, Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		j, err := core.NewDLTJob(string(rune('a'+i)), trainer, crit)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	// Collect all placements on device 0 and check non-overlap.
	type span struct{ s, e sim.Time }
	var spans []span
	for _, j := range jobs {
		for _, p := range j.Placements() {
			if p.Device != 0 {
				t.Fatalf("placement on unknown device %d", p.Device)
			}
			spans = append(spans, span{p.Start, p.End})
		}
	}
	for i := range spans {
		for k := i + 1; k < len(spans); k++ {
			a, b := spans[i], spans[k]
			if a.s < b.e && b.s < a.e {
				t.Fatalf("overlapping placements %v and %v on one device", a, b)
			}
		}
	}
}

func TestGPUClusterNeverOverCommitted(t *testing.T) {
	// Run a full DLT workload and verify the cluster ledger stayed sound
	// (the executor checks nothing explicitly; the invariant must hold by
	// construction).
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 20, 30, 1); err != nil {
		t.Fatal(err)
	}
	sched := core.NewRotaryDLT(0.0, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
	for _, spec := range mustGenDLT(t, 8, 2) {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	// Per-device placement spans must not overlap across the whole run.
	byDevice := map[int][]core.Placement{}
	for _, j := range exec.Jobs() {
		for _, p := range j.Placements() {
			byDevice[p.Device] = append(byDevice[p.Device], p)
		}
	}
	if len(byDevice) == 0 {
		t.Fatal("no placements recorded")
	}
	for dev, ps := range byDevice {
		for i := range ps {
			for k := i + 1; k < len(ps); k++ {
				if ps[i].Start < ps[k].End && ps[k].Start < ps[i].End {
					t.Fatalf("device %d double-booked: %+v vs %+v", dev, ps[i], ps[k])
				}
			}
		}
	}
}
