package estimate

// Versioned is implemented by estimators whose outputs are a pure
// function of (their inputs, a monotone state version). The arbitration
// fast path may only cache decisions derived from such estimators: a
// cached grant recorded at version v is provably reproducible for as
// long as EstimatorVersion still reports v. Estimators with hidden
// mutable state that cannot be versioned (e.g. RandomProgress, which
// consumes an RNG stream per call) must NOT implement this interface —
// their absence is what forces the arbiter onto the slow path.
type Versioned interface {
	// EstimatorVersion reports a counter that advances whenever the
	// estimator's internal state changes in a way that could alter any
	// future estimate.
	EstimatorVersion() uint64
}

// EstimatorVersion implements Versioned. AccuracyProgress is pure given
// the repository contents (the overhead/call counters never influence
// estimates), so the repository mutation counter is its version.
func (a *AccuracyProgress) EstimatorVersion() uint64 { return a.repo.Version() }

// EstimatorVersion implements Versioned; TEE estimates depend only on
// the repository records (and the immutable MinRealtime/topK knobs).
func (t *TEE) EstimatorVersion() uint64 { return t.repo.Version() }

// EstimatorVersion implements Versioned; TME estimates depend only on
// the repository records (and the immutable padding knobs).
func (t *TME) EstimatorVersion() uint64 { return t.repo.Version() }
