package admission

import (
	"errors"
	"math"
	"testing"
)

func TestAdmitWithinBoundsAndDeadline(t *testing.T) {
	c := NewController(Config{MaxQueueDepth: 4, SlackFactor: 1.5})
	d := c.Decide(Request{ID: "j1", QueueDepth: 2, EstCompletionSecs: 100, RemainingSecs: 600})
	if d.Verdict != Admit || d.Err != nil {
		t.Fatalf("want Admit, got %v err=%v", d.Verdict, d.Err)
	}
	s := c.Stats()
	if s.Submitted != 1 || s.Admitted != 1 || s.Rejected != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDeadlineInfeasibleRejected(t *testing.T) {
	c := NewController(Config{SlackFactor: 1.5})
	d := c.Decide(Request{ID: "j1", EstCompletionSecs: 500, RemainingSecs: 600})
	if d.Verdict != RejectJob {
		t.Fatalf("want RejectJob, got %v", d.Verdict)
	}
	if !errors.Is(d.Err, ErrAdmissionRejected) {
		t.Fatalf("want ErrAdmissionRejected, got %v", d.Err)
	}
	if errors.Is(d.Err, ErrQueueFull) {
		t.Fatal("deadline refusal must not carry ErrQueueFull")
	}
}

func TestQueueFullRejected(t *testing.T) {
	c := NewController(Config{MaxQueueDepth: 2})
	d := c.Decide(Request{ID: "j1", QueueDepth: 2, RemainingSecs: math.Inf(1)})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrQueueFull) {
		t.Fatalf("want RejectJob/ErrQueueFull, got %v err=%v", d.Verdict, d.Err)
	}
	s := c.Stats()
	if s.QueueFullRejections != 1 || s.Rejected != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestShedPolicyDefersToExecutor(t *testing.T) {
	c := NewController(Config{MaxQueueDepth: 1, Policy: ShedLowestValue})
	d := c.Decide(Request{ID: "j1", QueueDepth: 1})
	if d.Verdict != ShedVictim {
		t.Fatalf("want ShedVictim, got %v", d.Verdict)
	}
	c.ResolveShed(Request{ID: "j1", QueueDepth: 1}, true)
	if s := c.Stats(); s.Shed != 1 || s.Admitted != 1 {
		t.Fatalf("after successful shed: %+v", s)
	}
	d = c.Decide(Request{ID: "j2", QueueDepth: 1})
	if d.Verdict != ShedVictim {
		t.Fatalf("want ShedVictim, got %v", d.Verdict)
	}
	c.ResolveShed(Request{ID: "j2", QueueDepth: 1}, false)
	if s := c.Stats(); s.Rejected != 1 || s.QueueFullRejections != 1 {
		t.Fatalf("after failed shed: %+v", s)
	}
	if !errors.Is(ShedRefusalErr("j2", 1, 1), ErrQueueFull) {
		t.Fatal("shed refusal must be typed ErrQueueFull")
	}
}

func TestDegradePolicyAdmitsBestEffort(t *testing.T) {
	c := NewController(Config{SlackFactor: 2, Policy: Degrade})
	d := c.Decide(Request{ID: "j1", EstCompletionSecs: 500, RemainingSecs: 600})
	if d.Verdict != DegradeBestEffort {
		t.Fatalf("want DegradeBestEffort, got %v", d.Verdict)
	}
	if s := c.Stats(); s.Degraded != 1 || s.Admitted != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The bound stays hard under Degrade.
	c2 := NewController(Config{MaxQueueDepth: 1, SlackFactor: 2, Policy: Degrade})
	d = c2.Decide(Request{ID: "j2", QueueDepth: 1, EstCompletionSecs: 1, RemainingSecs: 1e9})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrQueueFull) {
		t.Fatalf("degrade at full queue: got %v err=%v", d.Verdict, d.Err)
	}
}

func TestDeadlineCheckPrecedesQueueBound(t *testing.T) {
	// An infeasible job is refused with ErrAdmissionRejected even when the
	// queue is also full: shedding frees a slot, not time.
	c := NewController(Config{MaxQueueDepth: 1, SlackFactor: 1, Policy: ShedLowestValue})
	d := c.Decide(Request{ID: "j1", QueueDepth: 1, EstCompletionSecs: 700, RemainingSecs: 600})
	if d.Verdict != RejectJob || !errors.Is(d.Err, ErrAdmissionRejected) {
		t.Fatalf("got %v err=%v", d.Verdict, d.Err)
	}
}

func TestNoDeadlineNeverDeadlineRefused(t *testing.T) {
	c := NewController(Config{SlackFactor: 1.5})
	for _, remaining := range []float64{math.Inf(1), 0, -5} {
		d := c.Decide(Request{ID: "j", EstCompletionSecs: 1e12, RemainingSecs: remaining})
		if d.Verdict != Admit {
			t.Fatalf("remaining=%v: want Admit, got %v", remaining, d.Verdict)
		}
	}
}

func TestConfigSanitized(t *testing.T) {
	c := NewController(Config{SlackFactor: math.NaN(), MaxQueueDepth: -3})
	if got := c.Config(); got.SlackFactor != 0 || got.MaxQueueDepth != 0 {
		t.Fatalf("config not sanitized: %+v", got)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"reject": Reject, "shed": ShedLowestValue, "degrade": Degrade}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestMaxQueueDepthTracksHighWater(t *testing.T) {
	c := NewController(Config{})
	for _, depth := range []int{1, 5, 3} {
		c.Decide(Request{QueueDepth: depth})
	}
	if s := c.Stats(); s.MaxQueueDepth != 5 {
		t.Fatalf("MaxQueueDepth = %d, want 5", s.MaxQueueDepth)
	}
}
