// Package serve hosts the long-lived serving mode: a wall-clock driver
// around the virtual-time AQP arbiter. Clients submit completion-criteria
// statements (Fig. 3 syntax, e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS")
// over a Unix socket carrying one JSON object per line; the server admits
// or refuses them through the admission controller, arbitrates them on
// the shared virtual clock, and reports status and overload counters on
// demand. Beyond submit/status/stats/advance/drain, the protocol exposes
// live observability ops: "metrics" returns the Prometheus text rendering
// of the obs registry, "trace-tail" returns the last N events of the
// executor's bounded trace ring (with the overwrite count), and "health"
// is a cheap liveness probe reporting job counts and the virtual clock.
//
// The engine stays single-threaded: one driver goroutine owns the engine
// and executor exclusively. Connection handlers never touch either — they
// forward requests over a channel and relay the reply. Wall-clock pacing
// maps real time onto the virtual clock at a configurable rate; a drain
// (the SIGTERM path) stops accepting work and fast-forwards virtual time
// until every in-flight job reaches a terminal status, which each job's
// deadline watchdog guarantees is a bounded wait.
package serve

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"rotary/internal/admission"
	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/metrics"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Config parameterizes the server.
type Config struct {
	// Socket is the Unix socket path to listen on.
	Socket string
	// Listeners are extra listen specs served alongside Socket:
	// "tcp:host:port" or "unix:/path". Every listener speaks both codecs
	// (negotiated per connection), so one daemon can serve local debug
	// clients on the socket and fleet traffic over TCP.
	Listeners []string
	// IngressDepth bounds the ingress ring between connection handlers
	// and the driver. A full ring refuses new requests with code
	// "overloaded" and a retry hint instead of buffering without bound.
	// Defaults to 1024.
	IngressDepth int
	// IngressBatch is how many queued requests the driver drains per
	// wakeup. The batch shares one channel-hop wakeup and — on a
	// journaled server — one group-commit fsync covering every record the
	// batch staged. 1 restores the request-at-a-time, fsync-per-submit
	// behaviour (the load generator's baseline mode). Defaults to 64.
	IngressBatch int
	// OverloadRetrySecs is the base retry hint on "overloaded" refusals;
	// the hint scales with how saturated the admission queue is relative
	// to its configured bound. Defaults to 0.25.
	OverloadRetrySecs float64
	// Pace is how many virtual seconds elapse per wall-clock second.
	// Zero freezes the clock between requests — virtual time then only
	// advances on submit, advance, and drain (the deterministic-test
	// mode).
	Pace float64
	// Tick is the wall-clock pacing granularity. Defaults to 50 ms.
	Tick time.Duration
	// BatchRows is the default per-step batch size for submissions that
	// do not specify one.
	BatchRows int
	// Obs selects the metrics registry served by the "metrics" op (and
	// holding the server's own request counters). Nil uses the
	// process-wide obs.Default(), which the executor's and admission
	// controller's counters also land on by default.
	Obs *obs.Registry
	// Journal, when set, makes the arbiter durable: every serve-state
	// transition is fsynced to the write-ahead journal before the client
	// sees the reply, and New replays the journal's recovered state —
	// re-registering every non-terminal job with the executor, restoring
	// the virtual clock, and rebuilding the admission queue in original
	// arrival order. Nil keeps the process-scoped (PR 3) behaviour.
	Journal *Journal
	// ClockJournalSecs bounds how far the virtual clock may advance
	// without a journaled position: an idle paced server persists a clock
	// record at least this often (in virtual seconds). Defaults to 60.
	ClockJournalSecs float64
	// HealProbeSecs is how often (wall seconds) a degraded journal is
	// probed for healing: the driver attempts Journal.Heal at most this
	// often, and degraded refusals carry it as retry_after_secs so
	// clients back off on the probe cadence. Defaults to 0.5.
	HealProbeSecs float64
	// MaxHealFailures caps consecutive failed heal attempts. Past the
	// cap the server stops probing and the health op reports
	// "journal-failed" — the supervisor's signal that self-healing lost
	// and a restart is the remaining move. Defaults to 8.
	MaxHealFailures int
}

// Message is one client request line.
type Message struct {
	// Op selects the operation: "submit", "status", "stats", "advance",
	// "metrics", "trace-tail", "health", "resume", or "drain".
	Op string `json:"op"`
	// ID names the job for submit (optional; generated when empty) and
	// status.
	ID string `json:"id,omitempty"`
	// ReqID is a client-supplied idempotency key for submit: a resubmit
	// carrying a ReqID the journal (or this incarnation) has already
	// accepted returns the existing job's status instead of a duplicate
	// job, so a client that lost a reply to a crash can safely retry.
	ReqID string `json:"req_id,omitempty"`
	// ServerEpoch is the resume-handshake payload: the server epoch the
	// client last observed. A mismatch in the reply (code
	// "server-restarted") tells the client the daemon restarted since.
	ServerEpoch int `json:"server_epoch,omitempty"`
	// Statement is the submit payload: a query name with an appended
	// Fig. 3 accuracy criterion, e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS".
	Statement string `json:"statement,omitempty"`
	// Tenant attributes a submit to a tenant for quota enforcement, fair
	// share, and per-tenant telemetry. Empty means the default tenant.
	// On a router-fronted daemon the tenant is also the placement key, so
	// one tenant's jobs co-locate deterministically on one shard.
	Tenant string `json:"tenant,omitempty"`
	// Shard addresses one shard of a sharded (router-fronted) daemon: the
	// migration target for "migrate", the shard whose trace ring
	// "trace-tail" reads, and the shard to retire for "retire". Encoded
	// without omitempty because shard 0 is a valid explicit target.
	Shard int `json:"shard"`
	// Job is the migrate-in payload: the journaled lifecycle record of a
	// job detached from another shard, carrying everything the receiving
	// shard needs to rebuild it (statement, original arrival for
	// absolute-deadline arithmetic, epoch count, best-effort flag).
	Job *JobRecord `json:"job,omitempty"`
	// BatchRows overrides the server's default batch size for this job.
	BatchRows int `json:"batch_rows,omitempty"`
	// Seconds is the advance payload: virtual seconds to fast-forward.
	Seconds float64 `json:"seconds,omitempty"`
	// Wall selects whether the "metrics" op includes wall-clock-derived
	// metrics. The default false keeps the response deterministic for a
	// seeded run (golden comparisons rely on this).
	Wall bool `json:"wall,omitempty"`
	// N bounds the "trace-tail" op: how many trailing trace events to
	// render (default 32).
	N int `json:"n,omitempty"`
}

// Machine-readable response codes: retrying clients branch on Code
// instead of string-matching Error.
const (
	// CodeDraining: the server is draining; the request was not (or may
	// not have been) processed. Safe to retry against a restarted server.
	CodeDraining = "draining"
	// CodeBadRequest: the request was malformed (bad JSON, bad statement,
	// invalid argument). Retrying unchanged will fail again.
	CodeBadRequest = "bad-request"
	// CodeTooLarge: the request line exceeded the protocol's line limit;
	// the connection closes after this reply.
	CodeTooLarge = "too-large"
	// CodeDuplicateRequest: the submit duplicated an existing job id or
	// an already-accepted req_id (the latter replies OK with the existing
	// job's status — the idempotent-resubmit path).
	CodeDuplicateRequest = "duplicate-request"
	// CodeUnknownOp: the op is not part of the protocol.
	CodeUnknownOp = "unknown-op"
	// CodeUnknownJob: no job with the requested id.
	CodeUnknownJob = "unknown-job"
	// CodeAdmissionRefused: the admission controller rejected or shed the
	// submission.
	CodeAdmissionRefused = "admission-refused"
	// CodeServerRestarted: the resume handshake detected a server epoch
	// newer than the client's — the daemon restarted; journaled jobs were
	// recovered, unjournaled replies may have been lost.
	CodeServerRestarted = "server-restarted"
	// CodeShardUnavailable: the shard owning the request is down and under
	// supervised restart. The reply carries retry_after_secs; the request
	// was not processed and is safe to retry (submits should carry a
	// req_id). Never a hang: every router→shard call is deadline-bounded.
	CodeShardUnavailable = "shard-unavailable"
	// CodeShardRetired: the shard was retired; its jobs were migrated off
	// and new work is rerouted, but shard-addressed ops (trace-tail,
	// retire) have nothing to talk to.
	CodeShardRetired = "shard-retired"
	// CodeMigrateNoop: the job reached a terminal status before (or while)
	// the migration drained it — there is nothing left to move, and the
	// reply carries the terminal status.
	CodeMigrateNoop = "migrate-noop"
	// CodeMigrateBusy: the job is mid-transition (running or in limbo) and
	// could not be drained to a detachable state; retry.
	CodeMigrateBusy = "migrate-busy"
	// CodeBadShard: the shard index is out of range.
	CodeBadShard = "bad-shard"
	// CodeTenantQuota: the submission was refused by the tenant's quota
	// (submit-rate bucket, concurrent-job cap, or queued-job cap). The
	// reply carries retry_after_secs when the refusal is time-based; the
	// tenant should back off instead of hammering the shared queue.
	CodeTenantQuota = "tenant-quota"
	// CodeOverloaded: the ingress ring is full — the serving front end is
	// saturated and refused the request instead of buffering it without
	// bound. The request was not processed; the reply carries
	// retry_after_secs scaled by how far the admission queue is over its
	// configured bound.
	CodeOverloaded = "overloaded"
	// CodeJournalDegraded: the write-ahead journal is degraded (an append
	// failed mid-record), so the server cannot honor the write-ahead
	// contract for state-changing ops and refuses them — with a
	// retry_after_secs hint, because degradation is recoverable: a
	// background prober rolls the journal to a fresh segment and lifts
	// the latch once the disk cooperates. Read ops keep working; the
	// health op reports the cause ("journal-degraded" while healing is
	// still being attempted, "journal-failed" once the heal budget is
	// exhausted and a supervised restart is the remaining move).
	CodeJournalDegraded = "journal-degraded"
)

// Response is one server reply line.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the machine-readable classification of the reply (set on
	// every error, and on OK replies that carry a caveat, e.g.
	// duplicate-request dedupe hits and restart detections).
	Code   string `json:"code,omitempty"`
	ID     string `json:"id,omitempty"`
	Status string `json:"status,omitempty"`
	// Tenant echoes the submit/status subject's tenant attribution — and
	// only that tenant's; replies never carry another tenant's state.
	Tenant     string  `json:"tenant,omitempty"`
	Accuracy   float64 `json:"accuracy,omitempty"`
	Progress   float64 `json:"progress,omitempty"`
	BestEffort bool    `json:"best_effort,omitempty"`
	VirtualNow float64 `json:"virtual_now,omitempty"`
	Jobs       int     `json:"jobs,omitempty"`
	Terminal   int     `json:"terminal,omitempty"`
	Report     string  `json:"report,omitempty"`
	// Dropped reports the tracer ring's overwritten-event count
	// (trace-tail and health ops).
	Dropped uint64 `json:"dropped,omitempty"`
	// ServerEpoch identifies the daemon incarnation (resume and health
	// ops; journaled servers increment it every restart). A router reports
	// the sum of its shards' epochs, so any shard restart still reads as a
	// change.
	ServerEpoch int `json:"server_epoch,omitempty"`
	// Recovered reports how many journaled non-terminal jobs this
	// incarnation re-registered at startup (resume and health ops).
	Recovered int `json:"recovered,omitempty"`
	// RetryAfterSecs hints when a shard-unavailable request is worth
	// retrying (the supervisor's current restart-backoff horizon).
	RetryAfterSecs float64 `json:"retry_after_secs,omitempty"`
	// Shard reports which shard handled (or owns) the request on a
	// router-fronted daemon (submit, status, migrate replies).
	Shard int `json:"shard,omitempty"`
	// Shards is the per-shard supervision report of the "shards" op.
	Shards []ShardInfo `json:"shards,omitempty"`
	// Job is the migrate-out reply payload: the detached job's journaled
	// lifecycle record, which the router hands to the receiving shard.
	Job *JobRecord `json:"job,omitempty"`
}

// ShardInfo is one shard's row in the router's "shards" report.
type ShardInfo struct {
	Index       int     `json:"index"`
	State       string  `json:"state"`
	Restarts    int     `json:"restarts"`
	Jobs        int     `json:"jobs,omitempty"`
	Terminal    int     `json:"terminal,omitempty"`
	VirtualNow  float64 `json:"virtual_now,omitempty"`
	ServerEpoch int     `json:"server_epoch,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// maxLineBytes bounds one request line; longer lines are answered with
// code "too-large" and the connection closes (the stream position is
// unrecoverable mid-line).
const maxLineBytes = 1 << 20

type request struct {
	msg   Message
	reply chan Response
}

// Server is the live arbiter.
type Server struct {
	cfg  Config
	exec *core.AQPExecutor
	cat  *tpch.Catalog
	reg  *obs.Registry
	met  *serveMetrics

	// reqCh is the bounded ingress ring: connection handlers enqueue
	// without blocking (a full ring is an overload refusal) and the
	// driver drains up to IngressBatch requests per wakeup.
	reqCh   chan request
	drainCh chan chan Response
	doneCh  chan struct{}
	killCh  chan struct{}

	// Durability state (driver goroutine only, except the immutable
	// serverEpoch/recovered set in New).
	jl          *Journal
	serverEpoch int
	recovered   int
	lastJourn   map[string]*jobMark
	reqIndex    map[string]string // req_id -> job id
	lastClockAt float64
	jlErr       error
	// Heal probing (driver goroutine only): lastHealProbe rate-limits
	// Journal.Heal attempts to one per HealProbeSecs; healFails counts
	// consecutive failed attempts — at MaxHealFailures the prober stops
	// and the health op escalates to "journal-failed".
	lastHealProbe time.Time
	healFails     int

	// Job bookkeeping (driver goroutine only). jobIndex holds every job
	// registered with the executor this incarnation — the O(1) lookup
	// behind status and duplicate checks that used to scan exec.Jobs().
	// liveJobs is the subset not yet journal-terminal: the only jobs
	// syncState must walk, so a long-lived daemon's per-batch sync cost
	// tracks its in-flight load, not its lifetime submit count.
	jobIndex map[string]*core.AQPJob
	liveJobs map[string]*liveEntry
	// liveList is the live entries in registration order — syncState
	// iterates it so journal record order stays deterministic (map
	// iteration is not), compacting out detached and terminal entries as
	// it goes. Each entry carries its job's journal mark so the sweep —
	// the per-batch hot path — touches no maps at all.
	liveList   []*liveEntry
	terminal   int
	nextAutoID int

	// liveSize mirrors len(liveJobs) for connection handlers computing
	// overload retry hints without touching driver state.
	liveSize atomic.Int64

	// Group-commit staging (driver goroutine only): while a batch is
	// being handled, journal() stages records here instead of appending;
	// the batch ends with one Append — one fsync for the whole group.
	staging bool
	staged  []Record
	// droppedStaged shelves the records of a failed group commit. Their
	// requests already moved server state — jobs registered, req_ids
	// indexed, sync marks advanced — before the flush failed, so simply
	// discarding them would leave ghost jobs the journal never heard of.
	// A successful heal re-appends the shelf onto the fresh segment
	// before the catch-up sweep, restoring journal/state agreement.
	droppedStaged []Record

	mu       sync.Mutex
	lns      []net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	final    Response
	killOnce sync.Once
}

// jobMark is the last journaled position of one job: the diff target
// syncState compares the executor's live state against.
type jobMark struct {
	running  bool
	epochs   int
	terminal bool
}

// liveEntry is one live job's row in the sweep list: the job, its
// journal mark, and a tombstone set on detach (migrate-out) so the
// sweep skips stale entries without consulting the live map.
type liveEntry struct {
	j    *core.AQPJob
	mark *jobMark
	gone bool
}

// New builds a server over an executor and the catalog its jobs bind to.
// The executor must not be Run — the server drives its engine itself.
func New(cfg Config, exec *core.AQPExecutor, cat *tpch.Catalog) (*Server, error) {
	if cfg.Socket == "" {
		return nil, errors.New("serve: socket path required")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Millisecond
	}
	if cfg.Pace < 0 {
		cfg.Pace = 0
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = workload.RecommendedBatchRows(cat)
	}
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	if cfg.ClockJournalSecs <= 0 {
		cfg.ClockJournalSecs = 60
	}
	if cfg.IngressDepth <= 0 {
		cfg.IngressDepth = 1024
	}
	if cfg.IngressBatch <= 0 {
		cfg.IngressBatch = 64
	}
	if cfg.OverloadRetrySecs <= 0 {
		cfg.OverloadRetrySecs = 0.25
	}
	if cfg.HealProbeSecs <= 0 {
		cfg.HealProbeSecs = 0.5
	}
	if cfg.MaxHealFailures <= 0 {
		cfg.MaxHealFailures = 8
	}
	s := &Server{
		cfg:         cfg,
		exec:        exec,
		cat:         cat,
		reg:         reg,
		met:         newServeMetrics(reg),
		reqCh:       make(chan request, cfg.IngressDepth),
		drainCh:     make(chan chan Response),
		doneCh:      make(chan struct{}),
		killCh:      make(chan struct{}),
		jl:          cfg.Journal,
		serverEpoch: 1,
		lastJourn:   make(map[string]*jobMark),
		reqIndex:    make(map[string]string),
		jobIndex:    make(map[string]*core.AQPJob),
		liveJobs:    make(map[string]*liveEntry),
	}
	s.conns = make(map[net.Conn]struct{})
	if s.jl != nil {
		s.serverEpoch = s.jl.ServerEpoch()
		if err := s.recoverFromJournal(); err != nil {
			return nil, err
		}
	}
	s.met.serverEpoch.Set(float64(s.serverEpoch))
	return s, nil
}

// serveMetrics holds the server's own obs handles: per-op request
// counters, the virtual-clock position, and the pacing-drift gauge.
type serveMetrics struct {
	requests map[string]*obs.Counter
	other    *obs.Counter
	// paceDrift is wall-class: how many wall-clock seconds the virtual
	// clock lagged the ideal pace line at the last tick, measured before
	// the tick's catch-up. Healthy scheduling keeps it near the tick
	// interval; growth means the driver cannot keep pace.
	paceDrift  *obs.Gauge
	virtualNow *obs.Gauge
	// Durability handles: restart-recovery and journal activity, plus the
	// protocol-hardening drop counters.
	serverEpoch    *obs.Gauge
	recoveredJobs  *obs.Counter
	journalRecords *obs.Counter
	journalCompact *obs.Counter
	journalErrors  *obs.Counter
	journalHeals   *obs.Counter
	healFailures   *obs.Counter
	oversized      *obs.Counter
	dedupedSubmits *obs.Counter
	// Heavy-traffic front-end handles. Batch counters are deterministic
	// for a sequential client (every request is its own batch); the batch
	// size distribution and ring depth depend on wall-clock arrival
	// interleaving, so they are wall-class and excluded from
	// deterministic renders.
	batches      *obs.Counter
	batchedReqs  *obs.Counter
	groupCommits *obs.Counter
	overloaded   *obs.Counter
	batchSize    *obs.Histogram
	ingressDepth *obs.Gauge
	conns        map[string]*obs.Counter
}

// serveOps are the protocol operations with pre-registered counters;
// anything else lands on op="other".
var serveOps = []string{"submit", "status", "stats", "advance", "metrics", "trace-tail", "health", "resume", "drain", "migrate-out", "migrate-commit", "migrate-in"}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{requests: make(map[string]*obs.Counter, len(serveOps))}
	for _, op := range serveOps {
		m.requests[op] = reg.Counter(fmt.Sprintf("rotary_serve_requests_total{op=%q}", op), "client requests by operation")
	}
	m.other = reg.Counter(`rotary_serve_requests_total{op="other"}`, "client requests by operation")
	m.paceDrift = reg.WallGauge("rotary_serve_pace_drift_secs",
		"wall seconds the virtual clock lagged the pace line at the last tick (pre catch-up)")
	m.virtualNow = reg.Gauge("rotary_serve_virtual_now_secs", "virtual clock position")
	m.serverEpoch = reg.Gauge("rotary_serve_server_epoch", "daemon incarnation (increments per journaled restart)")
	m.recoveredJobs = reg.Counter("rotary_serve_recovered_jobs_total", "journaled non-terminal jobs re-registered at startup")
	m.journalRecords = reg.Counter("rotary_serve_journal_records_total", "journal records appended by this incarnation")
	m.journalCompact = reg.Counter("rotary_serve_journal_compactions_total", "journal compactions to a snapshot record")
	m.journalErrors = reg.Counter("rotary_serve_journal_errors_total", "journal append failures (durability degraded)")
	m.journalHeals = reg.Counter("rotary_serve_journal_heals_total", "degraded journals healed by rolling to a fresh segment")
	m.healFailures = reg.Counter("rotary_serve_journal_heal_failures_total", "failed heal attempts against a degraded journal")
	m.oversized = reg.Counter("rotary_serve_oversized_requests_total", "request lines dropped for exceeding the line limit")
	m.dedupedSubmits = reg.Counter("rotary_serve_deduped_submits_total", "submits answered from the req_id dedupe index")
	m.batches = reg.Counter("rotary_serve_ingress_batches_total", "driver wakeups (one per drained request batch)")
	m.batchedReqs = reg.Counter("rotary_serve_ingress_requests_total", "requests drained from the ingress ring")
	m.groupCommits = reg.Counter("rotary_serve_group_commits_total", "journal flushes that coalesced a multi-record group under one fsync")
	m.overloaded = reg.Counter("rotary_serve_overloaded_total", "requests refused because the ingress ring was full")
	m.batchSize = reg.WallHistogram("rotary_serve_ingress_batch_size", "requests per driver batch",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
	m.ingressDepth = reg.WallGauge("rotary_serve_ingress_depth", "requests queued in the ingress ring at the last driver wakeup")
	m.conns = map[string]*obs.Counter{
		CodecJSON:   reg.Counter(`rotary_serve_conns_total{codec="json"}`, "accepted connections by negotiated codec"),
		CodecBinary: reg.Counter(`rotary_serve_conns_total{codec="binary"}`, "accepted connections by negotiated codec"),
	}
	return m
}

func (m *serveMetrics) count(op string) {
	if c, ok := m.requests[op]; ok {
		c.Inc()
		return
	}
	m.other.Inc()
}

// Serve binds the configured socket plus every extra listener and
// blocks until a drain completes (a client "drain" op or a Drain call,
// typically from the SIGTERM handler).
func (s *Server) Serve() error {
	lns, err := bindListeners(s.cfg.Socket, s.cfg.Listeners)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lns = lns
	s.mu.Unlock()
	go s.drive()
	var accept sync.WaitGroup
	for _, ln := range lns {
		accept.Add(1)
		go func(ln net.Listener) {
			defer accept.Done()
			s.acceptLoop(ln)
		}(ln)
	}
	accept.Wait()
	<-s.doneCh
	// Unblock idle readers without cutting off in-flight replies: a
	// handler mid-write finishes, then its next read fails and it closes
	// its own connection.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by drain
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAddrs reports the bound listener addresses (useful when a
// "tcp:127.0.0.1:0" spec asked the kernel to pick the port).
func (s *Server) ListenAddrs() []net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs := make([]net.Addr, 0, len(s.lns))
	for _, ln := range s.lns {
		addrs = append(addrs, ln.Addr())
	}
	return addrs
}

func (s *Server) closeListeners() {
	s.mu.Lock()
	for _, ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()
}

// removeStaleSocket clears a dead Unix socket left by an unclean exit
// (SIGKILL never runs the listener's unlink): if the path exists, is a
// socket, and nothing answers a dial, it is removed so net.Listen can
// bind. A live socket (the dial succeeds) is left alone — net.Listen then
// fails with the honest "address already in use".
func removeStaleSocket(path string) error {
	fi, err := os.Stat(path)
	if err != nil || fi.Mode()&os.ModeSocket == 0 {
		return nil // absent, or not a socket: let net.Listen report it
	}
	conn, err := net.DialTimeout("unix", path, 250*time.Millisecond)
	if err == nil {
		conn.Close()
		return nil // a live server owns it
	}
	if rmErr := os.Remove(path); rmErr != nil {
		return fmt.Errorf("serve: remove stale socket %s: %w", path, rmErr)
	}
	return nil
}

// Kill abruptly stops the server — the in-process stand-in for SIGKILL
// the kill-restart chaos suite uses. No drain, no final journal record,
// no flush beyond what each transition's append already fsynced: the
// on-disk journal after Kill is exactly what a real `kill -9` would
// leave. The executor's in-memory state is simply abandoned.
func (s *Server) Kill() {
	s.killOnce.Do(func() { close(s.killCh) })
	s.closeListeners()
	<-s.doneCh
	if s.jl != nil {
		s.jl.Close()
	}
}

// Drain initiates a graceful drain from outside the protocol (the
// SIGTERM handler): stop accepting, fast-forward the in-flight jobs to
// termination, shut down. It returns the final drain response; if the
// server is already draining it reports that without blocking.
func (s *Server) Drain() Response {
	rc := make(chan Response, 1)
	select {
	case s.drainCh <- rc:
		return <-rc
	case <-s.doneCh:
		return s.Final()
	}
}

// Final reports the drain response once the server has drained (zero
// Response before then) — the shutdown report main prints after Serve
// returns.
func (s *Server) Final() Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// drive is the single goroutine that owns the engine and executor.
//
// Pacing uses a fixed start anchor: every tick advances the clock to
// base + Pace × (wall elapsed since anchor). The previous per-tick
// time.Now() deltas let each tick's scheduler lateness compound into
// permanent drift; against a fixed anchor a late tick is self-correcting
// — the next target already includes the time the tick missed. External
// clock jumps (the advance op, a submit's same-instant arbitration past
// the pace line) re-anchor so pacing resumes from the new position
// instead of freezing until wall time catches up.
func (s *Server) drive() {
	defer close(s.doneCh)
	var tickC <-chan time.Time
	if s.cfg.Pace > 0 {
		ticker := time.NewTicker(s.cfg.Tick)
		defer ticker.Stop()
		tickC = ticker.C
	}
	eng := s.exec.Engine()
	anchor := time.Now()
	base := eng.Now()
	target := func() sim.Time {
		return base + sim.Time(time.Since(anchor).Seconds()*s.cfg.Pace)
	}
	for {
		select {
		case r := <-s.reqCh:
			if s.handleBatch(r) {
				return
			}
			if eng.Now() > target() {
				anchor = time.Now()
				base = eng.Now()
			}
		case rc := <-s.drainCh:
			rc <- s.drainNow()
			return
		case <-s.killCh:
			return
		case <-tickC:
			t := target()
			if lag := (t - eng.Now()).Seconds(); lag > 0 {
				s.met.paceDrift.Set(lag / s.cfg.Pace)
				eng.RunUntil(t)
			}
			s.met.virtualNow.Set(eng.Now().Seconds())
			s.maybeHeal(false)
			s.syncState()
		}
	}
}

// maybeHeal probes a degraded journal for recovery (driver goroutine
// only). Probes are rate-limited to one per HealProbeSecs unless
// forced, and stop entirely once MaxHealFailures consecutive attempts
// have lost — past that the health op reports "journal-failed" and
// escalation belongs to the supervisor, not to a prober hammering a
// dead disk. A successful heal rolled the journal to a fresh verified
// segment: the latch is lifted, the clock position is re-journaled,
// and one syncState sweep re-emits every transition the freeze
// skipped while degraded — so the new segment's snapshot-plus-diffs
// catches the journal up to live state before the next durable ack.
func (s *Server) maybeHeal(force bool) {
	if s.jl == nil || s.jl.Degraded() == nil {
		return
	}
	if s.healFails >= s.cfg.MaxHealFailures {
		return
	}
	if !force && time.Since(s.lastHealProbe).Seconds() < s.cfg.HealProbeSecs {
		return
	}
	s.lastHealProbe = time.Now()
	if err := s.jl.Heal(); err != nil {
		s.healFails++
		s.met.healFailures.Inc()
		s.jlErr = err
		return
	}
	s.healFails = 0
	s.jlErr = nil
	s.met.journalHeals.Inc()
	// Replay the shelf first: the failed groups' submits must precede the
	// catch-up sweep's grant/epoch records for the same jobs, or replay
	// would drop them as records for an unknown id.
	if len(s.droppedStaged) > 0 {
		recs := s.droppedStaged
		s.droppedStaged = nil
		if err := s.appendNow(recs); err != nil {
			// The disk failed again mid-recovery: the journal re-latched
			// degraded and the shelf goes back for the next heal.
			s.droppedStaged = recs
			return
		}
	}
	s.journalClock()
	s.syncState()
}

// pendingReply is one batched request's computed reply, held until the
// group's journal records are durable.
type pendingReply struct {
	reply chan Response
	resp  Response
	// journaled marks a reply whose request staged journal records: its
	// release is conditional on the group commit succeeding.
	journaled bool
}

// handleBatch drains up to IngressBatch-1 more requests from the ring
// and handles them as one group: every request's journal records are
// staged, the whole group is appended under ONE fsync, and only then are
// the replies released — the write-ahead contract each submit used to
// buy with a private fsync now holds per group, at 1/len(batch) the
// cost. Returns true when a drain op ended the server.
func (s *Server) handleBatch(first request) bool {
	batch := make([]request, 1, s.cfg.IngressBatch)
	batch[0] = first
fill:
	for len(batch) < s.cfg.IngressBatch {
		select {
		case r := <-s.reqCh:
			batch = append(batch, r)
		default:
			break fill
		}
	}
	s.met.batches.Inc()
	s.met.batchedReqs.Add(int64(len(batch)))
	s.met.batchSize.Observe(float64(len(batch)))
	s.met.ingressDepth.Set(float64(len(s.reqCh)))
	// An unpaced server has no tick: request arrival is the only chance
	// a degraded journal gets to heal before refusing the batch's writes.
	s.maybeHeal(false)
	pending := make([]pendingReply, 0, len(batch))
	flushRelease := func() {
		err := s.flushStaged()
		for _, p := range pending {
			if err != nil && p.journaled {
				// The group commit failed: these records are NOT durable, so
				// the computed (often OK) replies must not be released — the
				// client would hold a reply the write-ahead contract cannot
				// back. The in-memory job still runs; a req_id retry dedupes.
				p.reply <- Response{
					Error:          "serve: journal degraded: " + err.Error(),
					Code:           CodeJournalDegraded,
					RetryAfterSecs: s.cfg.HealProbeSecs,
				}
				continue
			}
			p.reply <- p.resp
		}
		pending = pending[:0]
	}
	for i, r := range batch {
		if r.msg.Op == "drain" {
			// Release everything handled so far (their records must sync
			// before their replies), then drain; later requests in the batch
			// see the draining refusal dispatch would have given them.
			flushRelease()
			s.met.count("drain")
			r.reply <- s.drainNow()
			for _, rest := range batch[i+1:] {
				rest.reply <- Response{Error: "serve: server draining", Code: CodeDraining}
			}
			return true
		}
		stagedBefore := len(s.staged)
		s.staging = true
		resp := s.handle(r.msg)
		s.staging = false
		pending = append(pending, pendingReply{
			reply:     r.reply,
			resp:      resp,
			journaled: len(s.staged) > stagedBefore,
		})
	}
	flushRelease()
	return false
}

// flushStaged group-commits the records the current batch staged: one
// Append, one fsync, covering every request in the group. Returns the
// append error so handleBatch can withhold write-ahead-dependent
// replies.
func (s *Server) flushStaged() error {
	if len(s.staged) == 0 {
		return nil
	}
	recs := s.staged
	s.staged = s.staged[:0]
	if len(recs) > 1 {
		s.met.groupCommits.Inc()
	}
	err := s.appendNow(recs)
	if err != nil {
		// Shelve the group (copied — staged's backing array is reused) for
		// the post-heal replay.
		s.droppedStaged = append(s.droppedStaged, recs...)
	}
	return err
}

// drainNow stops the listeners and fast-forwards virtual time until
// every submitted job is terminal. Every admitted job carries a deadline
// watchdog event, so the event queue cannot run dry before the jobs do —
// but if it somehow does, the failure is reported, not hidden.
func (s *Server) drainNow() Response {
	s.closeListeners()
	// A drain must not leave terminal outcomes un-journaled behind a
	// frozen syncState: give a degraded journal one forced, unthrottled
	// heal attempt so the drain's sweeps land on a working segment.
	s.maybeHeal(true)
	eng := s.exec.Engine()
	for len(s.liveJobs) > 0 {
		progressed := false
		// Step a block of events between live-set syncs so the drain cost
		// is events + periodic O(live) sweeps, not O(live) per event.
		for i := 0; i < 256; i++ {
			if !eng.Step() {
				break
			}
			progressed = true
		}
		s.syncState()
		if !progressed {
			break
		}
	}
	s.syncState()
	resp := s.statsResponse()
	resp.Status = "drained"
	if left := len(s.liveJobs); left > 0 {
		resp.OK = false
		resp.Error = fmt.Sprintf("serve: drain left %d jobs unterminated", left)
	}
	s.mu.Lock()
	s.final = resp
	s.mu.Unlock()
	return resp
}

// terminalCount reports how many registered jobs have reached a terminal
// status (maintained incrementally by syncState — no executor scan).
func (s *Server) terminalCount() int { return s.terminal }

// knownJobID reports whether a job id is taken: registered this
// incarnation, or remembered by the journal (including jobs terminal
// before a restart, which are never re-registered).
func (s *Server) knownJobID(id string) bool {
	if _, ok := s.jobIndex[id]; ok {
		return true
	}
	if s.jl != nil {
		if _, ok := s.jl.Job(id); ok {
			return true
		}
	}
	return false
}

// registerJob indexes a job the executor just accepted (submit, journal
// recovery, migrate-in), binding it to its journal mark (the recovery
// and migrate paths pre-seed s.lastJourn; a fresh submit starts from a
// zero mark).
func (s *Server) registerJob(j *core.AQPJob) {
	id := j.ID()
	s.jobIndex[id] = j
	mark := s.lastJourn[id]
	if mark == nil {
		mark = &jobMark{}
		s.lastJourn[id] = mark
	}
	e := &liveEntry{j: j, mark: mark}
	s.liveJobs[id] = e
	s.liveList = append(s.liveList, e)
	s.liveSize.Store(int64(len(s.liveJobs)))
}

// unregisterJob drops a detached job (migrate-out): it is no longer the
// executor's — status answers from the journal until migrate-commit.
// The sweep-list entry is tombstoned, not searched out; syncState
// compacts it away on its next pass.
func (s *Server) unregisterJob(id string) {
	delete(s.jobIndex, id)
	if e := s.liveJobs[id]; e != nil {
		e.gone = true
		delete(s.liveJobs, id)
	}
	s.liveSize.Store(int64(len(s.liveJobs)))
}

// handle executes one request against the executor (driver goroutine
// only).
func (s *Server) handle(m Message) Response {
	s.met.count(m.Op)
	defer s.met.virtualNow.Set(s.exec.Engine().Now().Seconds())
	switch m.Op {
	case "submit":
		return s.submit(m)
	case "status":
		return s.status(m)
	case "stats":
		return s.statsResponse()
	case "advance":
		if m.Seconds < 0 {
			return Response{Error: "serve: advance seconds must be >= 0", Code: CodeBadRequest}
		}
		eng := s.exec.Engine()
		eng.RunUntil(eng.Now() + sim.Time(m.Seconds))
		// An explicit clock jump is journaled unconditionally: a restart
		// must resume at the advanced position, not rewind to the last job
		// transition.
		s.journalClock()
		s.syncState()
		return Response{OK: true, VirtualNow: eng.Now().Seconds()}
	case "resume":
		// The restart handshake: the client reports the server epoch it
		// last saw; a newer epoch means the daemon restarted under it and
		// journaled jobs were recovered (unjournaled replies may be lost —
		// resubmit with req_id to dedupe).
		resp := Response{
			OK:          true,
			ServerEpoch: s.serverEpoch,
			Recovered:   s.recovered,
			Jobs:        len(s.jobIndex),
			Terminal:    s.terminalCount(),
			VirtualNow:  s.exec.Engine().Now().Seconds(),
		}
		if m.ServerEpoch != 0 && m.ServerEpoch != s.serverEpoch {
			resp.Code = CodeServerRestarted
		}
		return resp
	case "metrics":
		// Wall metrics are excluded by default so a seeded run's response
		// is replay-stable; {"op":"metrics","wall":true} includes them.
		return Response{
			OK:         true,
			VirtualNow: s.exec.Engine().Now().Seconds(),
			Report:     s.reg.RenderText(m.Wall),
		}
	case "trace-tail":
		tr := s.exec.Tracer()
		if tr == nil {
			return Response{Error: "serve: tracing disabled (executor has no Tracer configured)"}
		}
		n := m.N
		if n <= 0 {
			n = 32
		}
		return Response{
			OK:         true,
			VirtualNow: s.exec.Engine().Now().Seconds(),
			Report:     tr.Render(n),
			Dropped:    tr.Dropped(),
		}
	case "migrate-out":
		return s.migrateOut(m)
	case "migrate-commit":
		return s.migrateCommit(m)
	case "migrate-in":
		return s.migrateIn(m)
	case "health":
		resp := Response{
			OK:          true,
			Status:      "healthy",
			Jobs:        len(s.jobIndex),
			Terminal:    s.terminalCount(),
			VirtualNow:  s.exec.Engine().Now().Seconds(),
			ServerEpoch: s.serverEpoch,
			Recovered:   s.recovered,
		}
		// Journal health is three-state: healthy; journal-degraded (heals
		// still being attempted — retry_after_secs carries the probe
		// cadence); journal-failed (heal budget exhausted — the
		// supervisor's restart-escalation trigger).
		if s.jl != nil && s.jl.Degraded() != nil {
			if s.healFails >= s.cfg.MaxHealFailures {
				resp.Status = "journal-failed"
			} else {
				resp.Status = "journal-degraded"
				resp.RetryAfterSecs = s.cfg.HealProbeSecs
			}
			resp.Error = s.jl.Degraded().Error()
		} else if s.jlErr != nil {
			resp.Status = "journal-degraded"
			resp.Error = s.jlErr.Error()
		}
		if tr := s.exec.Tracer(); tr != nil {
			resp.Dropped = tr.Dropped()
		}
		return resp
	default:
		return Response{Error: fmt.Sprintf("serve: unknown op %q", m.Op), Code: CodeUnknownOp}
	}
}

// submit parses the statement, binds the job, and pushes it through the
// admission gate at the current virtual instant. The arrival (and its
// admission verdict) is forced to fire before replying, so the response
// carries the decision. With a journal configured the ordering is
// write-ahead: the submit record is fsynced before the executor sees the
// job, and the verdict (plus any same-instant grant) is fsynced before
// the client sees the reply — an admitted job is never silently dropped
// by a crash.
func (s *Server) submit(m Message) Response {
	// Idempotent resubmit: a req_id the journal (or this incarnation) has
	// already accepted returns the existing job's status instead of a
	// duplicate job.
	if m.ReqID != "" {
		if id, ok := s.reqIndex[m.ReqID]; ok {
			s.met.dedupedSubmits.Inc()
			resp := s.status(Message{ID: id})
			resp.Code = CodeDuplicateRequest
			return resp
		}
	}
	if err := ValidateTenant(m.Tenant); err != nil {
		return Response{Error: err.Error(), Code: CodeBadRequest}
	}
	// A degraded journal cannot back the write-ahead contract an OK
	// submit reply promises: refuse state changes (reads keep working,
	// health reports the cause) instead of silently serving undurable
	// admissions. The refusal hints the heal-probe cadence — the next
	// probe may lift the latch, so the client retries instead of giving
	// the job up.
	if s.jl != nil {
		if derr := s.jl.Degraded(); derr != nil {
			return Response{
				Error:          "serve: journal degraded: " + derr.Error(),
				Code:           CodeJournalDegraded,
				RetryAfterSecs: s.cfg.HealProbeSecs,
			}
		}
	}
	cmd, crit, err := criteria.Parse(m.Statement)
	if err != nil {
		return Response{Error: err.Error(), Code: CodeBadRequest}
	}
	if crit.Kind != criteria.Accuracy {
		return Response{Error: `serve: serving mode requires an accuracy criterion (e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS")`, Code: CodeBadRequest}
	}
	deadline, ok := crit.Deadline.DeadlineSeconds()
	if !ok {
		return Response{Error: "serve: AQP deadlines must be wall-time, not epochs", Code: CodeBadRequest}
	}
	query := strings.ToLower(strings.TrimSpace(cmd))
	cls, err := tpch.ClassOf(query)
	if err != nil {
		return Response{Error: err.Error(), Code: CodeBadRequest}
	}
	id := m.ID
	if id == "" {
		// Monotonic counter, never reused within an incarnation and
		// recovered from the journal across restarts. The historical
		// len(s.exec.Jobs()) scheme collided after migrate-out/detach
		// shrank the job set — the next auto id re-minted one already
		// taken, bouncing an innocent client with "duplicate job id".
		for {
			id = fmt.Sprintf("srv-%03d", s.nextAutoID)
			s.nextAutoID++
			if !s.knownJobID(id) {
				break
			}
		}
	} else if s.knownJobID(id) {
		return Response{Error: fmt.Sprintf("serve: duplicate job id %q", id), Code: CodeDuplicateRequest}
	}
	batch := m.BatchRows
	if batch <= 0 {
		batch = s.cfg.BatchRows
	}
	j, err := workload.BuildAQPJob(s.cat, workload.AQPSpec{
		ID:           id,
		Query:        query,
		Class:        cls,
		Tenant:       m.Tenant,
		Accuracy:     crit.Threshold,
		DeadlineSecs: deadline,
		BatchRows:    batch,
	})
	if err != nil {
		return Response{Error: err.Error(), Code: CodeBadRequest}
	}
	eng := s.exec.Engine()
	s.journal(Record{Kind: recSubmit, ID: id, ReqID: m.ReqID, Statement: m.Statement,
		Tenant: m.Tenant, BatchRows: batch, At: eng.Now().Seconds()})
	s.exec.Submit(j, eng.Now())
	s.registerJob(j)
	// Fire the arrival and its same-instant arbitration so the reply
	// reports the admission verdict.
	eng.RunUntil(eng.Now())
	st := j.Status()
	verdict := "admitted"
	switch {
	case st == core.StatusRejected || st == core.StatusShed:
		verdict = "rejected"
	case j.BestEffort():
		verdict = "degraded"
	}
	s.journal(Record{Kind: recVerdict, ID: id, Status: verdict, At: eng.Now().Seconds()})
	s.syncState()
	if m.ReqID != "" {
		s.reqIndex[m.ReqID] = id
	}
	resp := Response{
		ID:         id,
		Status:     st.String(),
		Tenant:     m.Tenant,
		BestEffort: j.BestEffort(),
		VirtualNow: eng.Now().Seconds(),
	}
	switch st {
	case core.StatusRejected, core.StatusShed:
		// Tenant-quota refusals get their own code plus the controller's
		// retry hint, so an over-quota tenant backs off instead of
		// hammering the shared queue.
		if cause := j.RejectErr(); cause != nil &&
			(errors.Is(cause, admission.ErrTenantQuotaExceeded) || errors.Is(cause, admission.ErrTenantQueueFull)) {
			resp.Error = "serve: " + cause.Error()
			resp.Code = CodeTenantQuota
			resp.RetryAfterSecs = j.RetryAfterSecs()
		} else {
			resp.Error = "serve: admission refused: " + st.String()
			resp.Code = CodeAdmissionRefused
		}
	default:
		resp.OK = true
	}
	return resp
}

// maxTenantBytes bounds a tenant id on the wire.
const maxTenantBytes = 128

// ValidateTenant rejects tenant ids that could corrupt journals,
// metric labels, or logs: oversized, invalid UTF-8, or containing
// control characters. The empty id is valid (the default tenant).
func ValidateTenant(t string) error {
	if len(t) > maxTenantBytes {
		return fmt.Errorf("serve: tenant id exceeds %d bytes", maxTenantBytes)
	}
	if !utf8.ValidString(t) {
		return errors.New("serve: tenant id is not valid UTF-8")
	}
	for _, r := range t {
		if r < 0x20 || r == 0x7f {
			return errors.New("serve: tenant id contains control characters")
		}
	}
	return nil
}

func (s *Server) status(m Message) Response {
	if j, ok := s.jobIndex[m.ID]; ok {
		return Response{
			OK:         true,
			ID:         j.ID(),
			Status:     j.Status().String(),
			Tenant:     j.Tenant(),
			Accuracy:   j.EstimatedAccuracy(),
			Progress:   j.AttainmentProgress(),
			BestEffort: j.BestEffort(),
			VirtualNow: s.exec.Engine().Now().Seconds(),
		}
	}
	// A job that reached a terminal status before a restart is not
	// re-registered with the executor, but its outcome is durable in the
	// journal — answer from there instead of "unknown job".
	if s.jl != nil {
		if jr, ok := s.jl.Job(m.ID); ok {
			return Response{
				OK:         true,
				ID:         jr.ID,
				Status:     jr.Status,
				Tenant:     jr.Tenant,
				BestEffort: jr.BestEffort,
				VirtualNow: s.exec.Engine().Now().Seconds(),
			}
		}
	}
	return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID), Code: CodeUnknownJob}
}

func (s *Server) statsResponse() Response {
	var as admission.Stats
	if ctrl := s.exec.Admission(); ctrl != nil {
		as = ctrl.Stats()
	}
	return Response{
		OK:         true,
		Jobs:       len(s.jobIndex),
		Terminal:   s.terminalCount(),
		VirtualNow: s.exec.Engine().Now().Seconds(),
		Report:     metrics.RenderOverload("serve", as, s.exec.Overload()),
	}
}

// serveConn negotiates the connection's codec and runs the shared
// connection loop: requests in, replies out, typed errors for malformed
// or oversized input.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	connLoop(conn, s.dispatch,
		func(codec string) { s.met.conns[codec].Inc() },
		func() { s.met.oversized.Inc() })
}

// dispatch forwards one message to the driver goroutine, handling the
// races around drain (the driver may exit between the send and the
// reply) and applying ingress backpressure: a full ring answers a typed
// "overloaded" refusal with a retry hint instead of blocking the
// connection handler — unbounded buffering just moves the queue
// somewhere invisible.
func (s *Server) dispatch(m Message) Response {
	r := request{msg: m, reply: make(chan Response, 1)}
	select {
	case s.reqCh <- r:
	case <-s.doneCh:
		return Response{Error: "serve: server draining", Code: CodeDraining}
	default:
		select {
		case <-s.doneCh:
			return Response{Error: "serve: server draining", Code: CodeDraining}
		default:
		}
		s.met.overloaded.Inc()
		return Response{
			Error:          fmt.Sprintf("serve: overloaded: ingress ring full (%d queued)", cap(s.reqCh)),
			Code:           CodeOverloaded,
			RetryAfterSecs: s.overloadRetryHint(),
		}
	}
	select {
	case resp := <-r.reply:
		return resp
	case <-s.doneCh:
		// The driver may have replied just before exiting.
		select {
		case resp := <-r.reply:
			return resp
		default:
			return Response{Error: "serve: server draining", Code: CodeDraining}
		}
	}
}

// overloadRetryHint sizes the "overloaded" reply's retry hint from the
// admission controller's view of the backlog: the base hint, scaled up
// by how far the live job set is over the controller's configured queue
// bound. A server whose arbitration queue is many multiples over bound
// needs more than one ring-drain of breathing room before a retry can
// possibly be admitted.
func (s *Server) overloadRetryHint() float64 {
	hint := s.cfg.OverloadRetrySecs
	if ctrl := s.exec.Admission(); ctrl != nil {
		if bound := ctrl.Config().MaxQueueDepth; bound > 0 {
			if live := s.liveSize.Load(); live > int64(bound) {
				over := float64(live) / float64(bound)
				if over > 8 {
					over = 8
				}
				hint *= over
			}
		}
	}
	return hint
}
