// Command rotary-aqp runs a Table I TPC-H AQP workload under Rotary-AQP
// or one of the paper's baselines and prints the attainment report.
//
// Usage:
//
//	rotary-aqp [-policy rotary|relaqs|edf|laf|rr] [-jobs 30] [-sf 0.02] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"rotary"
	"rotary/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-aqp: ")
	var (
		policy  = flag.String("policy", "rotary", "scheduling policy: rotary, relaqs, edf, laf, rr")
		jobs    = flag.Int("jobs", 30, "workload size")
		sf      = flag.Float64("sf", 0.02, "TPC-H scale factor")
		seed    = flag.Uint64("seed", 1, "random seed")
		mean    = flag.Float64("arrival", 160, "mean Poisson inter-arrival time (seconds)")
		trace   = flag.Int("trace", 0, "print the last N arbitration trace events")
		save    = flag.String("save-workload", "", "write the generated workload to this JSON file")
		load    = flag.String("load-workload", "", "run the workload from this JSON file instead of generating")
		desc    = flag.String("describe", "", "describe a query's plan shape (e.g. q5) and exit")
		dataPar = flag.Int("data-parallel", runtime.NumCPU(),
			"cap on real goroutines per epoch's data path (minimum 1)")
		faultSeed = flag.Uint64("fault-seed", 0, "fault-injection seed (0 = reuse -seed)")
		faultRate = flag.Float64("fault-rate", 0,
			"total per-opportunity fault probability (crashes + checkpoint I/O faults); 0 disables injection")
		traceOut   = flag.String("trace-out", "", "stream every trace event as JSON lines to this file")
		metricsOut = flag.String("metrics-out", "", "write the final metrics registry (Prometheus text format) to this file")
	)
	flag.Parse()
	if err := cliutil.ValidateAll(
		cliutil.MinInt("-jobs", *jobs, 1),
		cliutil.Positive("-sf", *sf),
		cliutil.NonNegative("-arrival", *mean),
		cliutil.MinInt("-trace", *trace, 0),
		cliutil.MinInt("-data-parallel", *dataPar, 1),
		cliutil.Fraction("-fault-rate", *faultRate),
	); err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("generating TPC-H at SF=%g (seed %d)…\n", *sf, *seed)
	ds := rotary.GenerateTPCH(*sf, *seed)
	cat := rotary.NewCatalog(ds, *seed)

	if *desc != "" {
		out, err := cat.Describe(*desc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}

	var specs []rotary.AQPSpec
	if *load != "" {
		var err error
		specs, err = rotary.LoadAQPSpecs(*load)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		wcfg := rotary.DefaultAQPWorkload(*jobs, *seed)
		wcfg.MeanArrivalSecs = *mean
		wcfg.BatchRows = rotary.RecommendedBatchRows(cat)
		specs = rotary.GenerateAQPWorkload(wcfg)
	}
	if *save != "" {
		if err := rotary.SaveAQPSpecs(*save, specs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved workload to %s\n", *save)
	}

	repo := rotary.NewRepository()
	var sched rotary.AQPScheduler
	switch *policy {
	case "rotary":
		if err := rotary.SeedAQPHistory(repo, cat, rotary.RecommendedBatchRows(cat)); err != nil {
			log.Fatal(err)
		}
		sched = rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3))
	case "relaqs":
		sched = rotary.ReLAQS{}
	case "edf":
		sched = rotary.EDFAQP{}
	case "laf":
		sched = rotary.LAFAQP{}
	case "rr":
		sched = rotary.RoundRobinAQP{}
	default:
		log.Printf("unknown policy %q", *policy)
		flag.Usage()
		os.Exit(2)
	}

	execCfg := rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat))
	// Grants map to real goroutines in the data path; cap the physical
	// fan-out to the local machine while the virtual 20-thread testbed
	// accounting stays unchanged.
	execCfg.DataParallelism = *dataPar
	var injector *rotary.FaultInjector
	if *faultRate > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		dir, err := os.MkdirTemp("", "rotary-ckpt-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		store, err := rotary.NewCheckpointStore(dir, 8)
		if err != nil {
			log.Fatal(err)
		}
		injector = rotary.NewFaultInjector(rotary.UniformFaults(fseed, *faultRate))
		store.SetFaults(injector)
		execCfg.Store = store
		execCfg.Faults = injector
		fmt.Printf("fault injection armed: rate=%g seed=%d\n", *faultRate, fseed)
	}
	var tracer *rotary.Tracer
	if *trace > 0 || *traceOut != "" {
		tracer = &rotary.Tracer{}
		execCfg.Tracer = tracer
	}
	if *traceOut != "" {
		sink, err := rotary.OpenJSONLSink(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		tracer.SetSink(sink)
	}
	exec := rotary.NewAQPExecutor(execCfg, sched, repo)
	for _, spec := range specs {
		j, err := rotary.BuildAQPJob(cat, spec)
		if err != nil {
			log.Fatal(err)
		}
		exec.Submit(j, rotary.Time(spec.ArrivalSecs))
	}
	fmt.Printf("running %d jobs under %s…\n\n", len(specs), sched.Name())
	if err := exec.Run(); err != nil {
		log.Fatal(err)
	}

	rep := rotary.AnalyzeAQP(sched.Name(), exec.Jobs(), nil)
	rep.SortOutcomesByID()
	fmt.Printf("%-18s %-7s %-7s %9s %9s %9s %-10s %s\n",
		"job", "query", "class", "threshold", "deadline", "runtime", "status", "attained")
	for _, o := range rep.Outcomes {
		att := ""
		if o.Attained {
			att = "✓"
		}
		fmt.Printf("%-18s %-7s %-7s %8.0f%% %8.0fs %8.0fs %-10s %s\n",
			o.ID, o.Query, o.Class, findThreshold(specs, o.ID)*100, findDeadline(specs, o.ID),
			o.RuntimeSecs, o.Status, att)
	}
	att := rep.AttainedByClass()
	tot := rep.TotalByClass()
	fmt.Printf("\nattained: light %d/%d, medium %d/%d, heavy %d/%d, total %d/%d; false attainment %d\n",
		att["light"], tot["light"], att["medium"], tot["medium"],
		att["heavy"], tot["heavy"], att["total"], tot["total"], rep.FalseAttained())
	fmt.Printf("virtual makespan: %s\n", exec.Engine().Now())
	if injector != nil {
		fmt.Println()
		fmt.Print(rotary.RenderRecovery(sched.Name(), exec.Recovery(), execCfg.Store.Health()))
	}
	if tracer != nil && *trace > 0 {
		fmt.Printf("\nlast %d arbitration events:\n%s", *trace, tracer.Render(*trace))
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(rotary.DefaultMetrics().RenderText(true)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

func findThreshold(specs []rotary.AQPSpec, id string) float64 {
	for _, s := range specs {
		if s.ID == id {
			return s.Accuracy
		}
	}
	return 0
}

func findDeadline(specs []rotary.AQPSpec, id string) float64 {
	for _, s := range specs {
		if s.ID == id {
			return s.DeadlineSecs
		}
	}
	return 0
}
