// Resilient client: the connection layer that makes the durable arbiter
// usable from a process that outlives daemon restarts. It reconnects
// with capped exponential backoff when the socket drops (the daemon was
// killed, is restarting, or has not bound yet), re-runs the resume
// handshake on every new connection to detect restarts via the server
// epoch, and retries the in-flight request on the fresh connection —
// which is safe for submits exactly because the protocol dedupes
// client-supplied req_ids against the journal.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrTimeout is wrapped into every error caused by a request exceeding
// RequestTimeout (or DialTimeout), so callers can branch on
// errors.Is(err, ErrTimeout) instead of string-matching — a stalled or
// wedged server surfaces as a typed timeout, never an indefinite hang.
var ErrTimeout = errors.New("serve: request timed out")

// ClientConfig parameterizes a resilient client.
type ClientConfig struct {
	// Socket is the server's listen address: a Unix socket path, or a
	// "tcp:host:port" / "unix:/path" spec (the server's Listeners
	// syntax).
	Socket string
	// Codec selects the wire format: CodecJSON (the default — one JSON
	// object per line, human-readable with socat) or CodecBinary (the
	// length-prefixed framing, negotiated by preamble). The server
	// accepts either on every listener.
	Codec string
	// DialTimeout bounds each connection attempt. Defaults to 1s.
	DialTimeout time.Duration
	// Backoff is the initial reconnect delay, doubling per failed attempt
	// up to MaxBackoff. Defaults to 50ms.
	Backoff time.Duration
	// MaxBackoff caps the reconnect delay. Defaults to 2s.
	MaxBackoff time.Duration
	// Attempts bounds how many connections one request may be tried on
	// before Do gives up (each attempt may first reconnect). Defaults
	// to 8.
	Attempts int
	// RequestTimeout bounds one round trip on an established connection:
	// the request write plus the reply read. On expiry the attempt fails
	// with an error wrapping ErrTimeout, the connection is dropped, and Do
	// retries (a fresh connection re-runs the resume handshake, so a
	// restarted server is detected, a wedged one keeps timing out). Zero
	// defaults to 30s — a deliberately generous "never forever" bound;
	// negative disables the deadline entirely.
	RequestTimeout time.Duration
	// RetryHinted makes Do treat hint-carrying transient refusals —
	// shard-unavailable, overloaded, and journal-degraded — as
	// retryable: instead of surfacing the typed refusal immediately, it
	// sleeps for the server's retry_after_secs hint (the supervisor's
	// restart horizon, the overload drain estimate, or the journal
	// heal-probe cadence — not a blind exponential guess) and re-sends,
	// up to Attempts. The reply's own hint replaces the reconnect
	// backoff for that retry; if every attempt stays refused the last
	// typed reply is returned with a nil error so callers can still
	// branch on Code.
	RetryHinted bool
	// RetryOverQuota extends RetryHinted to tenant-quota refusals: an
	// over-quota submit sleeps for the admission controller's deficit
	// hint and retries. Off by default — quota pushback is a correctness
	// signal most callers should surface, not absorb.
	RetryOverQuota bool
	// MaxRetryAfter caps a server-supplied retry hint so a pathological
	// reply cannot stall the client. Defaults to 5s.
	MaxRetryAfter time.Duration
}

// Client is a reconnecting serve-protocol client. It is safe for
// concurrent use; requests are serialized over one connection.
type Client struct {
	cfg ClientConfig

	mu    sync.Mutex
	conn  net.Conn
	codec clientCodec
	// serverEpoch is the daemon incarnation last observed via the resume
	// handshake; restarts counts the epoch changes the handshakes have
	// witnessed.
	serverEpoch int
	restarts    int
}

// NewClient builds a client for the socket. No connection is made until
// the first request.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Socket == "" {
		return nil, fmt.Errorf("serve: client socket path required")
	}
	if _, _, err := parseListenAddr(cfg.Socket); err != nil {
		return nil, err
	}
	switch cfg.Codec {
	case "", CodecJSON, CodecBinary:
	default:
		return nil, fmt.Errorf("serve: unknown codec %q (want %q or %q)", cfg.Codec, CodecJSON, CodecBinary)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 8
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	return &Client{cfg: cfg}, nil
}

// ServerEpoch returns the daemon incarnation last observed by the resume
// handshake (0 before the first connection).
func (c *Client) ServerEpoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverEpoch
}

// Restarts returns how many server restarts the client's handshakes have
// detected so far.
func (c *Client) Restarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restarts
}

// Do sends one request and returns the reply, transparently reconnecting
// (with capped exponential backoff) and retrying on connection failure.
// A submit retried this way must carry a ReqID: the journal-backed
// dedupe is what makes the retry idempotent when the original reply was
// lost to a crash.
func (c *Client) Do(m Message) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	var lastResp Response
	haveResp := false
	backoff := c.cfg.Backoff
	hintWait := time.Duration(0)
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if hintWait > 0 {
			// A hinted refusal replaces the blind reconnect backoff with the
			// server's own retry horizon.
			time.Sleep(hintWait)
			hintWait = 0
		} else if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		}
		if err := c.connectLocked(); err != nil {
			lastErr = err
			continue
		}
		resp, err := c.roundTripLocked(m)
		if err != nil {
			lastErr = err
			c.closeLocked()
			continue
		}
		if wait, retryable := c.hintedRetry(resp); retryable {
			lastResp, haveResp = resp, true
			lastErr = fmt.Errorf("serve: %s: %s", resp.Code, resp.Error)
			hintWait = wait
			continue
		}
		return resp, nil
	}
	if haveResp {
		// Every attempt came back with the same class of typed refusal;
		// surface the reply, not an error, so callers branch on Code.
		return lastResp, nil
	}
	return Response{}, fmt.Errorf("serve: request failed after %d attempts: %w", c.cfg.Attempts, lastErr)
}

// hintedRetry decides whether a typed refusal should be retried after
// its server-supplied hint, and for how long to wait.
func (c *Client) hintedRetry(resp Response) (time.Duration, bool) {
	switch resp.Code {
	case CodeShardUnavailable, CodeOverloaded, CodeJournalDegraded:
		// journal-degraded is transient by design: the server's heal
		// prober rolls the journal to a fresh segment on the cadence the
		// hint carries, so a patient client outlives the fault window.
		if !c.cfg.RetryHinted {
			return 0, false
		}
	case CodeTenantQuota:
		if !c.cfg.RetryHinted || !c.cfg.RetryOverQuota {
			return 0, false
		}
	default:
		return 0, false
	}
	wait := time.Duration(resp.RetryAfterSecs * float64(time.Second))
	if wait <= 0 {
		wait = c.cfg.Backoff
	}
	if wait > c.cfg.MaxRetryAfter {
		wait = c.cfg.MaxRetryAfter
	}
	return wait, true
}

// Close drops the connection (a later Do reconnects).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
	return nil
}

func (c *Client) closeLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.codec = nil
	}
}

// connectLocked dials if disconnected and runs the resume handshake on
// every fresh connection, recording restart detections.
func (c *Client) connectLocked() error {
	if c.conn != nil {
		return nil
	}
	network, addr, err := parseListenAddr(c.cfg.Socket)
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout(network, addr, c.cfg.DialTimeout)
	if err != nil {
		return wrapTimeout(err)
	}
	c.conn = conn
	if c.cfg.Codec == CodecBinary {
		c.codec = newBinClientCodec(conn)
	} else {
		c.codec = newJSONClientCodec(conn)
	}
	resp, err := c.roundTripLocked(Message{Op: "resume", ServerEpoch: c.serverEpoch})
	if err != nil {
		c.closeLocked()
		return err
	}
	if resp.Code == CodeServerRestarted {
		c.restarts++
	}
	if resp.ServerEpoch != 0 {
		c.serverEpoch = resp.ServerEpoch
	}
	return nil
}

// roundTripLocked writes one request and reads one reply through the
// connection's codec, the whole exchange bounded by RequestTimeout.
func (c *Client) roundTripLocked(m Message) (Response, error) {
	if c.cfg.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.codec.WriteMessage(m); err != nil {
		return Response{}, wrapTimeout(err)
	}
	resp, err := c.codec.ReadResponse()
	if err != nil {
		return Response{}, wrapTimeout(err)
	}
	return resp, nil
}

// wrapTimeout tags network deadline expiries with ErrTimeout so they stay
// recognizable through Do's final "failed after N attempts" wrapping.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}
