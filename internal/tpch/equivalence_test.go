package tpch

import (
	"fmt"
	"math"
	"testing"

	"rotary/internal/aqp"
)

// drainAt runs a fresh instance of the named query to exhaustion with the
// given epoch sizing and worker width, returning it for inspection.
func drainAt(t *testing.T, cat *Catalog, name string, batch, width int) aqp.OnlineQuery {
	t.Helper()
	q, err := cat.NewQuery(name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for {
		rows, _ := q.ProcessBatch(batch, width)
		if rows == 0 {
			return q
		}
	}
}

// TestAllQueriesParallelEquivalence is the metamorphic proof obligation of
// the parallel data path: for each of the 22 TPC-H queries, running with
// worker widths 2, 4, 8, and 16 (the catalog's fact topics have 4
// partitions, so 8 and 16 are degenerate widths above the partition count)
// must produce a Snapshot bit-identical to the width-1 run — including the
// ConfidenceInterval outputs, which expose the raw Sum/SumSq/Count
// accumulators that the snapshot reduction could otherwise mask. A
// different epoch sizing rides along to show epoch boundaries don't matter
// either. Queries with auxiliary state (q4, q17, q18, q21) take the
// sequential fallback path internally and must satisfy the same property.
func TestAllQueriesParallelEquivalence(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for _, name := range AllQueries {
		t.Run(name, func(t *testing.T) {
			ref := drainAt(t, cat, name, 5000, 1)
			refSnap := ref.Snapshot()
			if len(refSnap.Groups) == 0 {
				t.Fatalf("reference snapshot has no groups")
			}
			for _, cfg := range []struct{ batch, width int }{
				{5000, 2}, {5000, 4}, {5000, 8}, {5000, 16},
				{1700, 4},
			} {
				label := fmt.Sprintf("batch=%d width=%d", cfg.batch, cfg.width)
				q := drainAt(t, cat, name, cfg.batch, cfg.width)
				snap := q.Snapshot()
				requireIdenticalSnapshots(t, label, refSnap, snap)
				requireIdenticalIntervals(t, label, refSnap, ref, q)
				if a, b := ref.Accuracy(), q.Accuracy(); math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("%s: accuracy %v differs from reference %v", label, b, a)
				}
			}
		})
	}
}

func requireIdenticalSnapshots(t *testing.T, label string, want, got aqp.Snapshot) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, reference has %d", label, len(got.Groups), len(want.Groups))
	}
	for g, wv := range want.Groups {
		gv, ok := got.Groups[g]
		if !ok {
			t.Fatalf("%s: group %q missing", label, g)
		}
		if len(gv) != len(wv) {
			t.Fatalf("%s: group %q has %d values, reference %d", label, g, len(gv), len(wv))
		}
		for i := range wv {
			if math.Float64bits(gv[i]) != math.Float64bits(wv[i]) {
				t.Fatalf("%s: group %q col %d (%s): %v vs reference %v — bits differ",
					label, g, i, want.Specs[i].Name, gv[i], wv[i])
			}
		}
	}
}

func requireIdenticalIntervals(t *testing.T, label string, snap aqp.Snapshot, ref, q aqp.OnlineQuery) {
	t.Helper()
	for g := range snap.Groups {
		for col := range snap.Specs {
			rlo, rhi, rok := ref.ConfidenceInterval(g, col, 1.96)
			qlo, qhi, qok := q.ConfidenceInterval(g, col, 1.96)
			if rok != qok || math.Float64bits(rlo) != math.Float64bits(qlo) ||
				math.Float64bits(rhi) != math.Float64bits(qhi) {
				t.Fatalf("%s: CI(%q, %d) = (%v, %v, %v), reference (%v, %v, %v)",
					label, g, col, qlo, qhi, qok, rlo, rhi, rok)
			}
		}
	}
}

// A mid-stream checkpoint taken under one worker width must restore and
// finish under another with a bit-identical result, for both the
// partitioned path (q1) and the sequential aux-state fallback (q18).
func TestQueryCheckpointAcrossWidths(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for _, name := range []string{"q1", "q6", "q18"} {
		t.Run(name, func(t *testing.T) {
			q1, err := cat.NewQuery(name)
			if err != nil {
				t.Fatal(err)
			}
			q1.ProcessBatch(4000, 4)
			cp, err := q1.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			q2, err := cat.NewQuery(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := q2.Restore(cp); err != nil {
				t.Fatal(err)
			}
			for !q1.Exhausted() {
				q1.ProcessBatch(5000, 8)
			}
			for !q2.Exhausted() {
				q2.ProcessBatch(3000, 2)
			}
			requireIdenticalSnapshots(t, "post-restore", q1.Snapshot(), q2.Snapshot())
		})
	}
}
