// Arbiter write-ahead journal: the durability layer that turns the
// serving daemon from a process-scoped prototype into a crash-recoverable
// arbiter. Every serve-state transition — submit, admission verdict,
// grant, epoch completion, terminal status — is appended as one
// CRC-framed JSON line and fsynced before the client sees the reply, so a
// SIGKILL at any instant loses at most the transition in flight. On
// restart the journal replays to the last durable state: the registry of
// jobs, each job's latest status, the admission queue's arrival order,
// and the virtual-clock position. Size-triggered compaction folds the log
// into a single snapshot record published through the checkpoint store's
// atomic-write machinery, so the journal stays bounded however long the
// daemon lives.
//
// Corruption tolerance: a torn append (power cut mid-line) or a
// bit-flipped tail is detected by the per-line CRC32 and the journal
// degrades to its longest valid prefix — the damaged suffix is truncated
// away and recovery proceeds from what was provably durable, instead of
// refusing to start.
//
// Disk-fault tolerance: a failed write or fsync marks the journal
// degraded — the active segment may end in a torn frame, so appending
// past it would be unrecoverable on replay and is refused with
// ErrJournalDegraded. Degradation is recoverable: Heal rolls the log to
// a fresh segment headed by a snapshot of the durable state plus a
// recovery-barrier record, fsyncs it, verifies the segment round-trips
// byte-for-byte off the disk, and only then swaps the write handle and
// lifts the latch. Recovery replays the segment chain in order with the
// same longest-valid-prefix rule per segment; each snapshot-headed
// segment subsumes everything before it, including any torn tail the
// degraded segment was abandoned with. All file operations go through a
// pluggable diskio.IO so chaos runs can deal ENOSPC, EIO, short writes,
// and slow fsyncs from a seed.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rotary/internal/core"
	"rotary/internal/diskio"
)

// Journal record kinds, one per arbiter state transition.
const (
	// recServerEpoch marks a daemon boot: the server-epoch counter
	// increments once per OpenJournal, and clients detect restarts by
	// comparing it in the resume handshake.
	recServerEpoch = "server-epoch"
	// recSubmit logs an accepted submission before it reaches the
	// executor (WAL ordering: log first, apply second).
	recSubmit = "submit"
	// recVerdict logs the admission decision: admitted, rejected, or
	// degraded (admitted best-effort).
	recVerdict = "verdict"
	// recGrant logs a pending → running transition.
	recGrant = "grant"
	// recEpoch logs a completed running epoch (cumulative count).
	recEpoch = "epoch"
	// recTerminal logs a terminal status: attained, converged, expired,
	// rejected, or shed.
	recTerminal = "terminal"
	// recClock periodically persists the virtual-clock position so a
	// restart of an idle paced server does not rewind time to the last
	// job transition.
	recClock = "clock"
	// recSnapshot is the compaction record: the full replayed state,
	// folded into one line at the head of a fresh journal file.
	recSnapshot = "snapshot"
	// recBarrier is the recovery barrier written (after a snapshot) at
	// the head of the fresh segment a Heal rolls to: proof on disk that
	// a degraded journal was verified healthy again, carrying the
	// cumulative heal count.
	recBarrier = "recovery-barrier"
)

// Record is one journal entry. At is the virtual time of the transition;
// recovery resumes the clock at the maximum At seen in the valid prefix.
type Record struct {
	Kind        string      `json:"kind"`
	ID          string      `json:"id,omitempty"`
	ReqID       string      `json:"req_id,omitempty"`
	Statement   string      `json:"stmt,omitempty"`
	Tenant      string      `json:"tenant,omitempty"`
	BatchRows   int         `json:"batch,omitempty"`
	Status      string      `json:"status,omitempty"`
	BestEffort  bool        `json:"best_effort,omitempty"`
	Epochs      int         `json:"epochs,omitempty"`
	At          float64     `json:"at"`
	ServerEpoch int         `json:"server_epoch,omitempty"`
	Heals       int         `json:"heals,omitempty"` // recovery-barrier only
	Jobs        []JobRecord `json:"jobs,omitempty"`  // snapshot only
}

// JobRecord is one job's journaled lifecycle state: everything recovery
// needs to rebuild the job and its queue position after a restart.
type JobRecord struct {
	ID         string  `json:"id"`
	ReqID      string  `json:"req_id,omitempty"`
	Statement  string  `json:"stmt"`
	Tenant     string  `json:"tenant,omitempty"`
	BatchRows  int     `json:"batch,omitempty"`
	ArrivalAt  float64 `json:"arrival_at"`
	Status     string  `json:"status"`
	BestEffort bool    `json:"best_effort,omitempty"`
	Epochs     int     `json:"epochs,omitempty"`
}

// terminalStatus reports whether a journaled status string is final.
// "submitted" (logged, not yet admitted) and "pending"/"running" are
// live; everything else recovery must not re-register.
func terminalStatus(status string) bool {
	switch status {
	case "submitted", "pending", "running":
		return false
	default:
		return true
	}
}

// Recovered is the durable state replayed from the journal's valid
// prefix at open time: what the previous daemon incarnation provably
// committed.
type Recovered struct {
	// ServerEpoch is the new incarnation's epoch (previous epoch + 1).
	ServerEpoch int
	// VirtualNow is the virtual-clock position to resume from: the
	// maximum transition time in the valid prefix.
	VirtualNow float64
	// Jobs lists every journaled job in original arrival order, each at
	// its latest journaled status.
	Jobs []JobRecord
	// DroppedBytes counts corrupt or truncated tail bytes discarded at
	// open (0 for a clean journal).
	DroppedBytes int64
	// Heals is the cumulative recovery-barrier count replayed from the
	// chain: how many times past incarnations healed a degraded journal.
	Heals int64
}

// NonTerminal returns the journaled jobs recovery must re-register, in
// arrival order.
func (r Recovered) NonTerminal() []JobRecord {
	out := make([]JobRecord, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if !terminalStatus(j.Status) {
			out = append(out, j)
		}
	}
	return out
}

// Journal line format:
//
//	RJNL1 <crc32-hex8> <json-record>\n
//
// The CRC32 (IEEE) covers exactly the JSON payload bytes, reusing the
// checkpoint frame's checksum discipline in a line-oriented shape: a
// record whose prefix, checksum, or JSON fails to parse marks the end of
// the journal's valid prefix.
const journalMagic = "RJNL1"

// journalFile is the base segment's file name inside the journal
// directory. Segments rolled by Heal append a numeric suffix
// (serve.journal.000001, …); replay walks them in sequence order.
const journalFile = "serve.journal"

// DefaultCompactBytes is the journal size that triggers compaction to a
// snapshot record.
const DefaultCompactBytes = 1 << 20

// segmentName renders one segment's file name: the bare journal file
// for sequence 0, a zero-padded numeric suffix afterwards (padding
// keeps lexical directory listings in sequence order for humans; the
// code sorts numerically).
func segmentName(seq int) string {
	if seq == 0 {
		return journalFile
	}
	return fmt.Sprintf("%s.%06d", journalFile, seq)
}

// parseSegmentName reports the sequence number of a journal segment
// file name, or ok=false for anything else (temp files, checkpoints).
func parseSegmentName(name string) (seq int, ok bool) {
	if name == journalFile {
		return 0, true
	}
	suffix, found := strings.CutPrefix(name, journalFile+".")
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Journal is the arbiter's write-ahead log. Append is safe for
// concurrent use, though the serving mode only writes from its single
// driver goroutine.
type Journal struct {
	mu           sync.Mutex
	dir          string
	dio          diskio.IO
	seq          int    // active segment sequence number
	path         string // active segment path
	f            diskio.File
	size         int64
	compactBytes int64

	// Live replay state, mirrored on every append so compaction can fold
	// the log into a snapshot without re-reading it.
	jobs        map[string]*JobRecord
	order       []string
	serverEpoch int
	virtualNow  float64

	recovered    Recovered
	appends      int64
	syncs        int64
	groups       int64
	compactions  int64
	heals        int64
	healFailures int64
	closed       bool

	// degraded latches the journal after a failed write or sync. A torn
	// frame ends the active segment's longest valid prefix: any record
	// written past it would be unreadable on replay, so instead of
	// silently losing post-tear appends the journal refuses them with
	// ErrJournalDegraded until Heal rolls to a verified fresh segment.
	degraded error

	// Fault-injection hooks for tests; nil in production.
	frameHook func(Record) ([]byte, error)
	writeHook func([]byte) (int, error)
}

// OpenJournal opens (creating if absent) the write-ahead journal under
// dir, replays its valid prefix, truncates any corrupt tail, and stamps
// the new daemon incarnation with an incremented server-epoch record.
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalIO(dir, nil)
}

// OpenJournalIO is OpenJournal over a pluggable disk layer (nil means
// the real disk). Orphaned atomic-write temp files from a crashed or
// fault-interrupted compaction are swept before replay.
func OpenJournalIO(dir string, dio diskio.IO) (*Journal, error) {
	if dio == nil {
		dio = diskio.OS{}
	}
	if err := dio.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	jl := &Journal{
		dir:          dir,
		dio:          dio,
		compactBytes: DefaultCompactBytes,
		jobs:         make(map[string]*JobRecord),
	}
	sweepJournalTemps(dio, dir)
	segs, err := listSegments(dio, dir)
	if err != nil {
		return nil, err
	}
	dropped, err := jl.replayChain(segs, true)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		jl.seq = segs[len(segs)-1]
	}
	jl.path = filepath.Join(dir, segmentName(jl.seq))
	f, err := dio.OpenFile(jl.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	jl.f = f
	jl.serverEpoch++
	jl.recovered = Recovered{
		ServerEpoch:  jl.serverEpoch,
		VirtualNow:   jl.virtualNow,
		Jobs:         jl.snapshotJobs(),
		DroppedBytes: dropped,
		Heals:        jl.heals,
	}
	if err := jl.Append(Record{Kind: recServerEpoch, ServerEpoch: jl.serverEpoch, At: jl.virtualNow}); err != nil {
		f.Close()
		return nil, err
	}
	return jl, nil
}

// ReplayJournal replays the journal chain under dir read-only: no
// truncation, no epoch increment, no appended boot record. It is the
// offline inspection primitive the torture harness's invariant checker
// uses to compare what the disk provably holds against what clients
// were acked.
func ReplayJournal(dir string) (Recovered, error) {
	return ReplayJournalIO(dir, nil)
}

// ReplayJournalIO is ReplayJournal over a pluggable disk layer.
func ReplayJournalIO(dir string, dio diskio.IO) (Recovered, error) {
	if dio == nil {
		dio = diskio.OS{}
	}
	jl := &Journal{dir: dir, dio: dio, jobs: make(map[string]*JobRecord)}
	segs, err := listSegments(dio, dir)
	if err != nil {
		return Recovered{}, err
	}
	dropped, err := jl.replayChain(segs, false)
	if err != nil {
		return Recovered{}, err
	}
	return Recovered{
		ServerEpoch:  jl.serverEpoch,
		VirtualNow:   jl.virtualNow,
		Jobs:         jl.snapshotJobs(),
		DroppedBytes: dropped,
		Heals:        jl.heals,
	}, nil
}

// sweepJournalTemps removes orphaned atomic-write temp files
// (serve.journal*.tmp) left behind when a crash or an injected fault
// interrupted a compaction between temp-fsync and rename. The rename
// never happened, so a temp never holds the only copy of durable state
// — sweeping is always safe, and leaving them would leak disk forever.
func sweepJournalTemps(dio diskio.IO, dir string) {
	entries, err := dio.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, journalFile) || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		_ = dio.Remove(filepath.Join(dir, name))
	}
}

// listSegments returns the journal segment sequence numbers present
// under dir, sorted ascending. A missing directory or no segments is an
// empty journal.
func listSegments(dio diskio.IO, dir string) ([]int, error) {
	entries, err := dio.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: list journal segments: %w", err)
	}
	var segs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// replayChain replays every segment in sequence order, applying each
// segment's longest valid prefix. When truncate is set, each segment's
// invalid tail is cut off on disk (open-for-write semantics); read-only
// callers leave the files untouched. A torn tail in a non-final segment
// is safe to drop either way: segments after it were created by Heal or
// compaction, whose head snapshot subsumes everything the tail could
// have held.
func (jl *Journal) replayChain(segs []int, truncate bool) (dropped int64, err error) {
	for _, seq := range segs {
		d, err := jl.replaySegment(filepath.Join(jl.dir, segmentName(seq)), truncate)
		if err != nil {
			return dropped, err
		}
		dropped += d
	}
	return dropped, nil
}

// replaySegment reads one segment, applies every valid record, and (if
// truncate is set) cuts the file to the longest valid prefix, reporting
// how many tail bytes were dropped. A missing file is an empty segment.
func (jl *Journal) replaySegment(path string, truncate bool) (dropped int64, err error) {
	data, err := jl.dio.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: read journal: %w", err)
	}
	valid := int64(0)
	r := bufio.NewReader(bytes.NewReader(data))
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == io.EOF && len(line) == 0 {
			break
		}
		// A line without its trailing newline is a torn append.
		if rerr != nil {
			break
		}
		rec, perr := parseJournalLine(line[:len(line)-1])
		if perr != nil {
			break
		}
		jl.apply(rec)
		valid += int64(len(line))
	}
	dropped = int64(len(data)) - valid
	if dropped > 0 && truncate {
		if terr := jl.dio.Truncate(path, valid); terr != nil {
			return dropped, fmt.Errorf("serve: truncate corrupt journal tail: %w", terr)
		}
	}
	jl.size = valid
	return dropped, nil
}

// frameJournalLine renders one record as a CRC-framed line (including the
// trailing newline).
func frameJournalLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal journal record: %w", err)
	}
	line := make([]byte, 0, len(journalMagic)+10+len(payload)+1)
	line = append(line, journalMagic...)
	line = append(line, ' ')
	line = append(line, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseJournalLine validates one framed line (without its newline) and
// returns its record. Any deviation — bad magic, short line, checksum
// mismatch, malformed JSON — is corruption.
func parseJournalLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < len(journalMagic)+10 {
		return rec, fmt.Errorf("serve: journal line too short (%d bytes)", len(line))
	}
	if string(line[:len(journalMagic)]) != journalMagic || line[len(journalMagic)] != ' ' {
		return rec, fmt.Errorf("serve: bad journal magic %q", line[:len(journalMagic)])
	}
	crcHex := string(line[len(journalMagic)+1 : len(journalMagic)+9])
	if line[len(journalMagic)+9] != ' ' {
		return rec, fmt.Errorf("serve: malformed journal frame")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return rec, fmt.Errorf("serve: bad journal checksum field: %w", err)
	}
	payload := line[len(journalMagic)+10:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return rec, fmt.Errorf("serve: journal CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("serve: journal record: %w", err)
	}
	return rec, nil
}

// apply folds one record into the live replay state. Shared by the open
// replay and Append, so the in-memory mirror always equals what a fresh
// replay of the file would produce.
func (jl *Journal) apply(rec Record) {
	if rec.At > jl.virtualNow {
		jl.virtualNow = rec.At
	}
	switch rec.Kind {
	case recServerEpoch:
		if rec.ServerEpoch > jl.serverEpoch {
			jl.serverEpoch = rec.ServerEpoch
		}
	case recSnapshot:
		jl.jobs = make(map[string]*JobRecord, len(rec.Jobs))
		jl.order = jl.order[:0]
		for i := range rec.Jobs {
			j := rec.Jobs[i]
			jl.jobs[j.ID] = &j
			jl.order = append(jl.order, j.ID)
		}
		if rec.ServerEpoch > jl.serverEpoch {
			jl.serverEpoch = rec.ServerEpoch
		}
	case recBarrier:
		if int64(rec.Heals) > jl.heals {
			jl.heals = int64(rec.Heals)
		}
		if rec.ServerEpoch > jl.serverEpoch {
			jl.serverEpoch = rec.ServerEpoch
		}
	case recSubmit:
		if _, ok := jl.jobs[rec.ID]; !ok {
			jl.jobs[rec.ID] = &JobRecord{
				ID:        rec.ID,
				ReqID:     rec.ReqID,
				Statement: rec.Statement,
				Tenant:    rec.Tenant,
				BatchRows: rec.BatchRows,
				ArrivalAt: rec.At,
				Status:    "submitted",
			}
			jl.order = append(jl.order, rec.ID)
		}
	case recVerdict:
		if j, ok := jl.jobs[rec.ID]; ok {
			switch rec.Status {
			case "admitted":
				j.Status = "pending"
			case "degraded":
				j.Status = "pending"
				j.BestEffort = true
			default: // rejected
				j.Status = rec.Status
			}
		}
	case recGrant:
		if j, ok := jl.jobs[rec.ID]; ok && !terminalStatus(j.Status) {
			j.Status = "running"
		}
	case recEpoch:
		if j, ok := jl.jobs[rec.ID]; ok {
			if rec.Epochs > j.Epochs {
				j.Epochs = rec.Epochs
			}
			if !terminalStatus(j.Status) {
				j.Status = "pending"
			}
		}
	case recTerminal:
		if j, ok := jl.jobs[rec.ID]; ok {
			j.Status = rec.Status
			if rec.Epochs > j.Epochs {
				j.Epochs = rec.Epochs
			}
		}
	}
}

// snapshotJobs copies the live job state in arrival order.
func (jl *Journal) snapshotJobs() []JobRecord {
	out := make([]JobRecord, 0, len(jl.order))
	for _, id := range jl.order {
		out = append(out, *jl.jobs[id])
	}
	return out
}

// Recovered returns the state replayed at open: the previous
// incarnation's durable registry, queue order, and clock.
func (jl *Journal) Recovered() Recovered {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.recovered
}

// ServerEpoch returns this incarnation's epoch.
func (jl *Journal) ServerEpoch() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.serverEpoch
}

// Job returns the journaled record for one id — the status op's
// fallback for jobs that went terminal before a restart and were
// therefore never re-registered with the executor.
func (jl *Journal) Job(id string) (JobRecord, bool) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	j, ok := jl.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return *j, true
}

// NonTerminalIDs returns the set of job ids the journal still references
// as live — the checkpoint store's retention set across a restart.
func (jl *Journal) NonTerminalIDs() map[string]bool {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	live := make(map[string]bool)
	for id, j := range jl.jobs {
		if !terminalStatus(j.Status) {
			live[id] = true
		}
	}
	return live
}

// Stats reports journal activity: records appended and compactions run
// by this incarnation, and the current file size.
func (jl *Journal) Stats() (appends, compactions, sizeBytes int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.appends, jl.compactions, jl.size
}

// SyncStats reports fsync amortization: how many f.Sync calls covered how
// many records, and how many of those syncs covered a multi-record group.
// records/syncs is the group-commit factor the ingress batching buys.
func (jl *Journal) SyncStats() (syncs, records, groups int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.syncs, jl.appends, jl.groups
}

// HealStats reports degraded-mode recovery activity: successful heals
// (cumulative across incarnations, replayed from recovery barriers) and
// failed heal attempts by this incarnation.
func (jl *Journal) HealStats() (heals, failures int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.heals, jl.healFailures
}

// Segment returns the active segment's sequence number — observable
// proof for tests that a heal rolled the log (and a restart did not).
func (jl *Journal) Segment() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.seq
}

// ErrJournalDegraded marks a journal refusing appends after a failed
// write or sync left (or may have left) a torn frame at the active
// segment's tail. The state is recoverable: Heal rolls to a verified
// fresh segment and lifts it.
var ErrJournalDegraded = fmt.Errorf("serve: journal degraded")

// Degraded returns the latched write/sync failure, or nil while the
// journal is healthy.
func (jl *Journal) Degraded() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.degraded
}

// Heal attempts to lift a degraded journal by rolling to a fresh
// segment: the next sequence number is created, seeded with a snapshot
// of the in-memory mirror (which holds exactly the durably-applied
// state — records are folded only after their fsync succeeded) plus a
// recovery-barrier record, fsynced along with its directory entry, and
// read back to verify the bytes round-trip. Only after the verification
// passes does the journal swap its write handle, lift the latch, and
// best-effort remove the superseded segments (the snapshot subsumes
// them; leftovers replay harmlessly and are reclaimed by the next
// compaction or heal). Any failure leaves the journal degraded with the
// original latch cause intact and counts a heal failure. Healing a
// healthy journal is a no-op.
func (jl *Journal) Heal() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return fmt.Errorf("serve: journal closed")
	}
	if jl.degraded == nil {
		return nil
	}
	if err := jl.healLocked(); err != nil {
		jl.healFailures++
		return fmt.Errorf("serve: journal heal: %w", err)
	}
	return nil
}

func (jl *Journal) healLocked() error {
	seq := jl.seq + 1
	path := filepath.Join(jl.dir, segmentName(seq))
	snapLine, err := frameJournalLine(Record{
		Kind:        recSnapshot,
		ServerEpoch: jl.serverEpoch,
		At:          jl.virtualNow,
		Jobs:        jl.snapshotJobs(),
	})
	if err != nil {
		return err
	}
	barLine, err := frameJournalLine(Record{
		Kind:        recBarrier,
		ServerEpoch: jl.serverEpoch,
		At:          jl.virtualNow,
		Heals:       int(jl.heals) + 1,
	})
	if err != nil {
		return err
	}
	want := append(append(make([]byte, 0, len(snapLine)+len(barLine)), snapLine...), barLine...)
	f, err := jl.dio.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("open segment %d: %w", seq, err)
	}
	if _, err := f.Write(want); err != nil {
		f.Close()
		_ = jl.dio.Remove(path)
		return fmt.Errorf("write segment %d: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = jl.dio.Remove(path)
		return fmt.Errorf("sync segment %d: %w", seq, err)
	}
	// The directory entry must be durable too: a crash that forgets the
	// new segment's name while acked records sit in it would lose them.
	if err := jl.dio.SyncDir(jl.dir); err != nil {
		f.Close()
		_ = jl.dio.Remove(path)
		return fmt.Errorf("sync journal dir: %w", err)
	}
	// Round-trip verification: the bytes must come back off the disk
	// exactly as framed, and both frames must re-parse. Reads bypass
	// fault injection, so this observes the disk's real content.
	got, err := jl.dio.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("verify segment %d: %w", seq, err)
	}
	if !bytes.Equal(got, want) {
		f.Close()
		_ = jl.dio.Remove(path)
		return fmt.Errorf("verify segment %d: read back %d bytes, wrote %d", seq, len(got), len(want))
	}
	// Commit: swap the write handle, lift the latch, reclaim the chain.
	if jl.f != nil {
		_ = jl.f.Close()
	}
	oldSeq := jl.seq
	jl.f = f
	jl.seq = seq
	jl.path = path
	jl.size = int64(len(want))
	jl.degraded = nil
	jl.heals++
	for s := oldSeq; s >= 0; s-- {
		_ = jl.dio.Remove(filepath.Join(jl.dir, segmentName(s)))
	}
	return nil
}

// Append durably logs the records as one group: the whole batch is framed
// first, written and fsynced once, and only then folded into the live
// replay state. The ordering matters twice over: a frame error mid-batch
// must leave memory and disk untouched (not memory ahead of disk), and a
// failed write or sync must not fold records the file provably may lack.
// After a write/sync failure the journal latches degraded — the tail may
// hold a torn frame that ends the longest valid prefix, so further
// appends would be unrecoverable on replay and are refused — until Heal
// rolls to a verified fresh segment. When the file outgrows the
// compaction threshold it is folded into a snapshot published with the
// checkpoint store's atomic-write machinery.
func (jl *Journal) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return fmt.Errorf("serve: journal closed")
	}
	if jl.degraded != nil {
		return fmt.Errorf("%w: %v", ErrJournalDegraded, jl.degraded)
	}
	frame := frameJournalLine
	if jl.frameHook != nil {
		frame = jl.frameHook
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := frame(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	write := jl.f.Write
	if jl.writeHook != nil {
		write = jl.writeHook
	}
	n, err := write(buf.Bytes())
	jl.size += int64(n)
	if err != nil {
		jl.degraded = fmt.Errorf("append: %w", err)
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		jl.degraded = fmt.Errorf("sync: %w", err)
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	for _, rec := range recs {
		jl.apply(rec)
	}
	jl.appends += int64(len(recs))
	jl.syncs++
	if len(recs) > 1 {
		jl.groups++
	}
	if jl.size > jl.compactBytes {
		return jl.compactLocked()
	}
	return nil
}

// SetCompactBytes overrides the size threshold that triggers compaction
// (non-positive restores the default).
func (jl *Journal) SetCompactBytes(n int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if n <= 0 {
		n = DefaultCompactBytes
	}
	jl.compactBytes = n
}

// compactLocked folds the journal into one snapshot record, atomically
// replaces the active segment with it, and best-effort removes older
// segments (the snapshot subsumes them). A crash during compaction
// leaves either the old chain or the new snapshot — both replay to the
// same state. A compaction failure latches the journal degraded: the
// appended records are durable, but the write handle may be in an
// unknown state, and Heal's segment roll is the recovery path.
func (jl *Journal) compactLocked() error {
	snap := Record{
		Kind:        recSnapshot,
		ServerEpoch: jl.serverEpoch,
		At:          jl.virtualNow,
		Jobs:        jl.snapshotJobs(),
	}
	line, err := frameJournalLine(snap)
	if err != nil {
		return err
	}
	if err := core.AtomicWriteFileIO(jl.dio, jl.path, line); err != nil {
		jl.degraded = fmt.Errorf("compaction: %w", err)
		return fmt.Errorf("serve: journal compaction: %w", err)
	}
	if err := jl.f.Close(); err != nil {
		jl.degraded = fmt.Errorf("compaction close: %w", err)
		return fmt.Errorf("serve: journal compaction: %w", err)
	}
	f, err := jl.dio.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		jl.degraded = fmt.Errorf("compaction reopen: %w", err)
		return fmt.Errorf("serve: journal compaction reopen: %w", err)
	}
	jl.f = f
	jl.size = int64(len(line))
	jl.compactions++
	for s := jl.seq - 1; s >= 0; s-- {
		_ = jl.dio.Remove(filepath.Join(jl.dir, segmentName(s)))
	}
	return nil
}

// Close closes the journal file. Records already appended stay durable;
// Close adds nothing (a crash and a clean shutdown leave the same
// on-disk state, which is the point).
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return nil
	}
	jl.closed = true
	return jl.f.Close()
}
