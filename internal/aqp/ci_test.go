package aqp

import (
	"math"
	"testing"

	"rotary/internal/sim"
	"rotary/internal/stream"
)

func TestConfidenceIntervalAvgCoversTrueMean(t *testing.T) {
	r := sim.NewRand(5)
	gt := NewGroupTable([]AggSpec{{Name: "avg", Kind: Avg}})
	const trueMean = 50.0
	for i := 0; i < 5000; i++ {
		gt.Update("g", r.Norm(trueMean, 10))
	}
	lo, hi, ok := gt.ConfidenceInterval("g", 0, 1.96, 0.5)
	if !ok {
		t.Fatal("no CI for AVG")
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if trueMean < lo || trueMean > hi {
		t.Errorf("95%% CI [%v, %v] misses true mean %v", lo, hi, trueMean)
	}
	if hi-lo > 2 {
		t.Errorf("CI width %v too wide for n=5000, σ=10", hi-lo)
	}
}

func TestConfidenceIntervalSumScalesUp(t *testing.T) {
	gt := NewGroupTable([]AggSpec{{Name: "sum", Kind: Sum}})
	for i := 0; i < 1000; i++ {
		gt.Update("g", 2.0)
	}
	// Half the data seen: the scale-up point estimate is 2×current.
	lo, hi, ok := gt.ConfidenceInterval("g", 0, 1.96, 0.5)
	if !ok {
		t.Fatal("no CI for SUM")
	}
	mid := (lo + hi) / 2
	if math.Abs(mid-4000) > 1 {
		t.Errorf("scale-up estimate %v, want 4000", mid)
	}
	// Constant values → zero variance → tight interval.
	if hi-lo > 1e-6 {
		t.Errorf("constant-value CI width %v, want ~0", hi-lo)
	}
}

func TestConfidenceIntervalShrinksWithData(t *testing.T) {
	r := sim.NewRand(6)
	gt := NewGroupTable([]AggSpec{{Name: "avg", Kind: Avg}})
	var prevWidth float64 = math.Inf(1)
	for _, n := range []int{100, 1000, 10000} {
		for i := 0; i < n; i++ {
			gt.Update("g", r.Range(0, 100))
		}
		lo, hi, ok := gt.ConfidenceInterval("g", 0, 1.96, 0.5)
		if !ok {
			t.Fatal("no CI")
		}
		width := hi - lo
		if width >= prevWidth {
			t.Errorf("CI width %v did not shrink (was %v)", width, prevWidth)
		}
		prevWidth = width
	}
}

func TestConfidenceIntervalUnavailableCases(t *testing.T) {
	gt := NewGroupTable([]AggSpec{{Name: "min", Kind: Min}, {Name: "sum", Kind: Sum}})
	gt.Update("g", 1, 1)
	gt.Update("g", 2, 2)
	if _, _, ok := gt.ConfidenceInterval("g", 0, 1.96, 0.5); ok {
		t.Error("MIN reported a CI")
	}
	if _, _, ok := gt.ConfidenceInterval("missing", 1, 1.96, 0.5); ok {
		t.Error("missing group reported a CI")
	}
	if _, _, ok := gt.ConfidenceInterval("g", 9, 1.96, 0.5); ok {
		t.Error("out-of-range column reported a CI")
	}
	if _, _, ok := gt.ConfidenceInterval("g", 1, 1.96, 0); ok {
		t.Error("SUM CI with zero fraction")
	}
	single := NewGroupTable([]AggSpec{{Name: "avg", Kind: Avg}})
	single.Update("g", 1)
	if _, _, ok := single.ConfidenceInterval("g", 0, 1.96, 0.5); ok {
		t.Error("single observation reported a CI")
	}
}

func TestConfidenceIntervalOnRunningQuery(t *testing.T) {
	records := make([]float64, 400)
	r := sim.NewRand(7)
	var total float64
	for i := range records {
		records[i] = r.Range(0, 10)
		total += records[i]
	}
	topic := stream.NewTopic("t", records, 2)
	q := NewRunning("ci", stream.NewConsumer(topic),
		[]AggSpec{{Name: "sum", Kind: Sum}},
		Processor[float64]{Process: func(rows []float64, gt *GroupTable) {
			for _, v := range rows {
				gt.Update("all", v)
			}
		}},
		CostModel{SecsPerRow: 0.001})
	q.ProcessBatch(200, 1) // half the data
	lo, hi, ok := q.ConfidenceInterval("all", 0, 1.96)
	if !ok {
		t.Fatal("no CI mid-stream")
	}
	if total < lo || total > hi {
		t.Errorf("CI [%v, %v] misses the true final sum %v", lo, hi, total)
	}
}
