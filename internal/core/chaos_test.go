package core_test

import (
	"strings"
	"testing"

	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Chaos suite: full workloads under deterministic fault injection must
// terminate, and — when every injected fault is recoverable — finish on
// results bit-identical to the fault-free run. The argument: per-epoch
// data consumption is fixed per job (epochBatches × batchRows), results
// are thread-width-invariant, and every stop rule is a function of the
// per-epoch observation sequence, which crash rollback and from-scratch
// replay reproduce exactly. Run under -race in CI at three fixed seeds.

var chaosSeeds = []uint64{1, 7, 42}

// mustGenDLT generates a DLT workload, failing the test on an invalid
// criteria draw (impossible for the default workload parameters).
func mustGenDLT(t *testing.T, jobs int, seed uint64) []workload.DLTSpec {
	t.Helper()
	specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(jobs, seed))
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

type aqpOutcome struct {
	status  core.JobStatus
	epochs  int
	stopAcc float64
	groups  map[string][]float64
}

func aqpOutcomes(jobs []*core.AQPJob) map[string]aqpOutcome {
	out := make(map[string]aqpOutcome, len(jobs))
	for _, j := range jobs {
		out[j.ID()] = aqpOutcome{
			status:  j.Status(),
			epochs:  j.Epochs(),
			stopAcc: j.StopAccuracy(),
			groups:  j.Query().Snapshot().Groups,
		}
	}
	return out
}

// chaosAQPJobs builds a contended mixed-query workload with deadlines far
// beyond any recovery delay, so deadline expiry never turns a timing
// difference into a result difference.
func chaosAQPJobs(t *testing.T, cat *tpch.Catalog) []*core.AQPJob {
	t.Helper()
	var jobs []*core.AQPJob
	for _, q := range []struct {
		id, query string
		acc       float64
	}{
		{"c1", "q1", 0.95}, {"c2", "q6", 0.95}, {"c3", "q12", 0.9},
		{"c4", "q14", 0.9}, {"c5", "q3", 0.9}, {"c6", "q19", 0.9},
	} {
		jobs = append(jobs, buildJob(t, cat, q.id, q.query, q.acc, 1e7))
	}
	return jobs
}

func runChaosAQP(t *testing.T, cat *tpch.Catalog, sched core.AQPScheduler, cfg faults.Config, arm bool) (*core.AQPExecutor, *core.CheckpointStore) {
	t.Helper()
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultAQPExecConfig(1e6)
	ecfg.Threads = 2 // contention: jobs continually defer and resume
	ecfg.Store = store
	if arm {
		in := faults.New(cfg)
		store.SetFaults(in)
		ecfg.Faults = in
	}
	exec := core.NewAQPExecutor(ecfg, sched, nil)
	for i, j := range chaosAQPJobs(t, cat) {
		exec.Submit(j, sim.Time(float64(i)*5))
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("chaos AQP run: %v", err)
	}
	return exec, store
}

// With only recoverable faults (crashes, transient I/O, slow storage — no
// corruption), the final aggregates, statuses, and epoch counts must be
// bit-identical to the fault-free run.
func TestChaosAQPRecoverableFaultsBitIdentical(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	ref, _ := runChaosAQP(t, cat, fifoAQP{reserve: true}, faults.Config{}, false)
	want := aqpOutcomes(ref.Jobs())
	for _, seed := range chaosSeeds {
		exec, _ := runChaosAQP(t, cat, fifoAQP{reserve: true}, faults.Recoverable(seed, 0.12), true)
		rec := exec.Recovery()
		if rec.Crashes == 0 {
			t.Fatalf("seed %d: no crashes injected — the run proves nothing", seed)
		}
		if rec.WastedWorkSecs <= 0 {
			t.Errorf("seed %d: %d crashes but no wasted work recorded", seed, rec.Crashes)
		}
		if rec.Recovered == 0 {
			t.Errorf("seed %d: no crash ever recovered", seed)
		}
		for _, j := range exec.Jobs() {
			w := want[j.ID()]
			if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
				t.Errorf("seed %d: job %s diverged: %v/%d/%v, want %v/%d/%v",
					seed, j.ID(), j.Status(), j.Epochs(), j.StopAccuracy(),
					w.status, w.epochs, w.stopAcc)
			}
			if !snapshotsEqual(j.Query().Snapshot().Groups, w.groups) {
				t.Errorf("seed %d: job %s final aggregates diverged from fault-free run", seed, j.ID())
			}
		}
	}
}

// The same fault schedule must replay bit-for-bit: two runs from one seed
// are indistinguishable, including the recovery counters.
func TestChaosAQPSameSeedReplaysExactly(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	a, _ := runChaosAQP(t, cat, fifoAQP{reserve: true}, faults.Uniform(7, 0.12), true)
	b, _ := runChaosAQP(t, cat, fifoAQP{reserve: true}, faults.Uniform(7, 0.12), true)
	if a.Recovery() != b.Recovery() {
		t.Fatalf("recovery counters diverged across identical seeds: %+v vs %+v", a.Recovery(), b.Recovery())
	}
	if a.Engine().Now() != b.Engine().Now() {
		t.Fatalf("makespans diverged: %v vs %v", a.Engine().Now(), b.Engine().Now())
	}
	wa, wb := aqpOutcomes(a.Jobs()), aqpOutcomes(b.Jobs())
	for id, oa := range wa {
		ob := wb[id]
		if oa.status != ob.status || oa.epochs != ob.epochs || oa.stopAcc != ob.stopAcc {
			t.Errorf("job %s diverged across identical seeds", id)
		}
	}
}

// The full adaptive Rotary-AQP policy under the complete fault mix —
// including corruption — must still terminate cleanly, with corrupted
// checkpoints caught by the checksum and restarted from scratch.
func TestChaosRotaryAQPFullMixTerminates(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 2000); err != nil {
		t.Fatal(err)
	}
	corruptionsDealt, corruptionsDetected := 0, 0
	for _, seed := range chaosSeeds {
		// Disk-only store: every resume decodes the on-disk frame, so a
		// corrupted write that is ever read back must be caught.
		store, err := core.NewCheckpointStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		in := faults.New(faults.Uniform(seed, 0.15))
		store.SetFaults(in)
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 4
		cfg.Store = store
		cfg.Faults = in
		exec := core.NewAQPExecutor(cfg, core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3)), repo)
		for i, j := range chaosAQPJobs(t, cat) {
			exec.Submit(j, sim.Time(float64(i)*5))
		}
		if err := exec.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, j := range exec.Jobs() {
			if !j.Status().Terminal() {
				t.Errorf("seed %d: job %s not terminal", seed, j.ID())
			}
		}
		corruptionsDealt += in.Stats().Corruptions
		corruptionsDetected += store.Health().CorruptDetected
	}
	// A corrupted write that is overwritten before any read goes unseen
	// (harmless); but across three seeds some corrupt frame must have been
	// read back, detected by the checksum, and recovered from.
	if corruptionsDealt == 0 {
		t.Fatal("no corruption injected across any seed — the test proves nothing")
	}
	if corruptionsDetected == 0 {
		t.Fatal("corrupt frames were persisted but none was ever detected at load")
	}
}

type dltOutcome struct {
	status      core.JobStatus
	epochs      int
	accuracy    float64
	convergedAt int
}

func dltOutcomes(jobs []*core.DLTJob) map[string]dltOutcome {
	out := make(map[string]dltOutcome, len(jobs))
	for _, j := range jobs {
		out[j.ID()] = dltOutcome{
			status:      j.Status(),
			epochs:      j.Epochs(),
			accuracy:    j.Accuracy(),
			convergedAt: j.ConvergedAtEpoch(),
		}
	}
	return out
}

func runChaosDLT(t *testing.T, specs []workload.DLTSpec, cfg faults.Config, arm bool) *core.DLTExecutor {
	t.Helper()
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 40, 30, 3); err != nil {
		t.Fatal(err)
	}
	tee := estimate.NewTEE(repo, 3)
	tme := estimate.NewTME(repo, 3)
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultDLTExecConfig()
	ecfg.Store = store
	if arm {
		in := faults.New(cfg)
		store.SetFaults(in)
		ecfg.Faults = in
	}
	exec := core.NewDLTExecutor(ecfg, core.NewRotaryDLT(0.5, tee, tme), repo)
	for _, spec := range specs {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.ID, err)
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("chaos DLT run: %v", err)
	}
	return exec
}

// DLT stop rules are epoch-indexed and the accuracy curve is a pure
// function of the epoch count, so recovery by rollback or from-scratch
// replay must land every job on exactly the fault-free outcome — even
// under the full Rotary-DLT policy, whose placement order may differ.
func TestChaosDLTRecoverableFaultsBitIdentical(t *testing.T) {
	specs := mustGenDLT(t, 8, 7)
	ref := runChaosDLT(t, specs, faults.Config{}, false)
	want := dltOutcomes(ref.Jobs())
	for _, seed := range chaosSeeds {
		exec := runChaosDLT(t, specs, faults.Recoverable(seed, 0.12), true)
		rec := exec.Recovery()
		if rec.Crashes == 0 {
			t.Fatalf("seed %d: no crashes injected — the run proves nothing", seed)
		}
		for _, j := range exec.Jobs() {
			w := want[j.ID()]
			if j.Status() != w.status || j.Epochs() != w.epochs ||
				j.Accuracy() != w.accuracy || j.ConvergedAtEpoch() != w.convergedAt {
				t.Errorf("seed %d: job %s diverged: %v/%d/%v/%d, want %v/%d/%v/%d",
					seed, j.ID(), j.Status(), j.Epochs(), j.Accuracy(), j.ConvergedAtEpoch(),
					w.status, w.epochs, w.accuracy, w.convergedAt)
			}
		}
	}
}

// The unified AQP+DLT system under the full fault mix on both substrates
// must terminate with every job terminal.
func TestChaosUnifiedFullMixTerminates(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	dltSpecs := mustGenDLT(t, 4, 7)
	for _, seed := range chaosSeeds {
		in := faults.New(faults.Uniform(seed, 0.1))
		aqpStore, err := core.NewCheckpointStore(t.TempDir(), 1)
		if err != nil {
			t.Fatal(err)
		}
		dltStore, err := core.NewCheckpointStore(t.TempDir(), 1)
		if err != nil {
			t.Fatal(err)
		}
		aqpStore.SetFaults(in)
		dltStore.SetFaults(in)
		cfg := core.UnifiedExecConfig{
			AQP:       core.DefaultAQPExecConfig(1e6),
			DLT:       core.DefaultDLTExecConfig(),
			Threshold: 0.5,
		}
		cfg.AQP.Threads = 4
		cfg.AQP.Store = aqpStore
		cfg.AQP.Faults = in
		cfg.DLT.Store = dltStore
		cfg.DLT.Faults = in
		exec := core.NewUnifiedExecutor(cfg, nil)
		for i, j := range chaosAQPJobs(t, cat) {
			exec.SubmitAQP(j, sim.Time(float64(i)*5))
		}
		for _, spec := range dltSpecs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			exec.SubmitDLT(j, 0)
		}
		if err := exec.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rec := exec.Recovery()
		if rec.Recovered > rec.Crashes {
			t.Errorf("seed %d: recovered %d of %d crashes — counter inconsistency", seed, rec.Recovered, rec.Crashes)
		}
		for _, j := range exec.AQPJobs() {
			if !j.Status().Terminal() {
				t.Errorf("seed %d: AQP job %s not terminal", seed, j.ID())
			}
		}
		for _, j := range exec.DLTJobs() {
			if !j.Status().Terminal() {
				t.Errorf("seed %d: DLT job %s not terminal", seed, j.ID())
			}
		}
	}
}

// TestChaosObsCountersAgree re-runs the recoverable-fault chaos mix with
// a private metrics registry and demands the always-on obs counters agree
// exactly with the executor's RecoveryStats and the store's own ledger —
// the two accounting paths must never drift.
func TestChaosObsCountersAgree(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	reg := obs.NewRegistry()
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	store.SetObs(reg)
	ecfg := core.DefaultAQPExecConfig(1e6)
	ecfg.Threads = 2
	ecfg.Store = store
	ecfg.Obs = reg
	in := faults.New(faults.Recoverable(chaosSeeds[0], 0.08))
	store.SetFaults(in)
	ecfg.Faults = in
	exec := core.NewAQPExecutor(ecfg, core.NewRotaryAQP(nil), nil)
	for i, j := range chaosAQPJobs(t, cat) {
		exec.Submit(j, sim.Time(float64(i)*5))
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("chaos AQP run: %v", err)
	}

	get := func(name string) float64 {
		t.Helper()
		v, ok := reg.Value(name)
		if !ok {
			t.Fatalf("metric %s never registered", name)
		}
		return v
	}
	rec := exec.Recovery()
	if rec.Crashes == 0 {
		t.Fatalf("fault plan injected no crashes; agreement test is vacuous")
	}
	for name, want := range map[string]int{
		"rotary_aqp_crashes_total":          rec.Crashes,
		"rotary_aqp_rollbacks_total":        rec.Rollbacks,
		"rotary_aqp_scratch_restarts_total": rec.ScratchRestarts,
		"rotary_aqp_recovered_total":        rec.Recovered,
		"rotary_aqp_arrivals_total":         len(exec.Jobs()),
	} {
		if got := get(name); got != float64(want) {
			t.Errorf("%s = %v, executor says %d", name, got, want)
		}
	}
	writes, memHits, diskHits, _ := store.Stats()
	health := store.Health()
	for name, want := range map[string]int{
		"rotary_ckpt_writes_total":             writes,
		"rotary_ckpt_mem_hits_total":           memHits,
		"rotary_ckpt_disk_hits_total":          diskHits,
		"rotary_ckpt_retries_total":            health.Retries,
		"rotary_ckpt_transient_failures_total": health.TransientFailures,
		"rotary_ckpt_corrupt_detected_total":   health.CorruptDetected,
		"rotary_ckpt_swept_total":              health.Swept,
	} {
		if got := get(name); got != float64(want) {
			t.Errorf("%s = %v, store says %d", name, got, want)
		}
	}
	// Epoch-duration and frame-size histograms must have seen real traffic.
	if v, ok := reg.Value("rotary_aqp_epochs_total"); !ok || v == 0 {
		t.Errorf("no epochs counted: %v %v", v, ok)
	}
	if writes > 0 {
		text := reg.RenderText(false)
		if !strings.Contains(text, "rotary_ckpt_frame_bytes_count") {
			t.Errorf("frame-size histogram missing despite %d writes:\n%s", writes, text)
		}
	}
}
