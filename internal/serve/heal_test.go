package serve

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/obs"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// TestJournalHealRollsToFreshSegment is the journal-level heal
// lifecycle: a forced disk fault latches the journal degraded, Heal
// fails while the fault persists, and once the fault clears Heal rolls
// to a verified fresh segment, lifts the latch, and the full chain
// replays every record — pre-fault, and post-heal — after a reopen.
func TestJournalHealRollsToFreshSegment(t *testing.T) {
	dir := t.TempDir()
	faulty := diskio.NewFaulty(nil, diskio.FaultConfig{Seed: 1})
	jl, err := OpenJournalIO(dir, faulty)
	if err != nil {
		t.Fatalf("OpenJournalIO: %v", err)
	}
	defer jl.Close()
	if err := jl.Append(
		Record{Kind: recSubmit, ID: "pre", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 1},
		Record{Kind: recVerdict, ID: "pre", Status: "admitted", At: 1},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}

	faulty.ForceFail(nil) // ENOSPC until cleared
	if err := jl.Append(Record{Kind: recClock, At: 2}); err == nil {
		t.Fatal("append succeeded inside the fault window")
	}
	if jl.Degraded() == nil {
		t.Fatal("journal not degraded after failed append")
	}
	// Healing against a disk that is still failing must fail and leave
	// the latch in place.
	if err := jl.Heal(); err == nil {
		t.Fatal("Heal succeeded while the disk still faults")
	}
	if jl.Degraded() == nil {
		t.Fatal("failed heal lifted the latch")
	}
	if _, failures := jl.HealStats(); failures == 0 {
		t.Fatal("failed heal not counted")
	}

	faulty.Clear()
	if err := jl.Heal(); err != nil {
		t.Fatalf("Heal after fault cleared: %v", err)
	}
	if jl.Degraded() != nil {
		t.Fatalf("journal still degraded after heal: %v", jl.Degraded())
	}
	if jl.Segment() == 0 {
		t.Fatal("heal did not roll to a new segment")
	}
	if heals, _ := jl.HealStats(); heals != 1 {
		t.Fatalf("heals = %d, want 1", heals)
	}
	// Durable appends resume on the fresh segment.
	if err := jl.Append(
		Record{Kind: recSubmit, ID: "post", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 3},
		Record{Kind: recVerdict, ID: "post", Status: "admitted", At: 3},
	); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	jl.Close()

	// The chain replays both sides of the heal, and the recovery barrier
	// survives as the cumulative heal count.
	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.Heals != 1 {
		t.Fatalf("replayed heal count %d, want 1", rec.Heals)
	}
	byID := map[string]JobRecord{}
	for _, j := range rec.Jobs {
		byID[j.ID] = j
	}
	for _, id := range []string{"pre", "post"} {
		if j, ok := byID[id]; !ok || j.Status != "pending" {
			t.Fatalf("job %s after heal+reopen: %+v (jobs %+v)", id, j, rec.Jobs)
		}
	}
}

// TestJournalHealIdempotentWhenHealthy: Heal on a healthy journal is a
// no-op — no segment roll, no counted heal.
func TestJournalHealIdempotentWhenHealthy(t *testing.T) {
	jl := openTestJournal(t, t.TempDir())
	if err := jl.Heal(); err != nil {
		t.Fatalf("Heal on healthy journal: %v", err)
	}
	if jl.Segment() != 0 {
		t.Fatal("no-op heal rolled the segment")
	}
	if heals, failures := jl.HealStats(); heals != 0 || failures != 0 {
		t.Fatalf("no-op heal moved stats: %d/%d", heals, failures)
	}
}

// healHarness is the durable harness with a fault-injecting disk under
// the whole durability stack.
type healHarness struct {
	dir    string
	socket string
	faulty *diskio.Faulty

	jl   *Journal
	srv  *Server
	exec *core.AQPExecutor
	wg   *sync.WaitGroup
}

func newHealHarness(t *testing.T) *healHarness {
	t.Helper()
	base := t.TempDir()
	return &healHarness{
		dir:    filepath.Join(base, "state"),
		socket: filepath.Join(base, "rotary.sock"),
		faulty: diskio.NewFaulty(nil, diskio.FaultConfig{Seed: 7}),
	}
}

func (h *healHarness) start(t *testing.T, cfg Config) {
	t.Helper()
	jl, store, err := OpenDurableIO(h.dir, h.faulty)
	if err != nil {
		t.Fatalf("OpenDurableIO: %v", err)
	}
	h.jl = jl
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	ecfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	ecfg.Obs = reg
	ecfg.Store = store
	h.exec = core.NewAQPExecutor(ecfg, baselines.RoundRobinAQP{}, nil)
	cfg.Socket = h.socket
	cfg.Obs = reg
	cfg.Journal = jl
	h.srv, err = New(cfg, h.exec, cat)
	if err != nil {
		jl.Close()
		t.Fatalf("New (faulty durable): %v", err)
	}
	h.wg = serveAsync(t, h.srv)
}

// TestServerHealsDegradedJournalWithoutRestart is the tentpole
// acceptance property: a server whose journal faults clear must lift
// the degraded latch and resume durable acks WITHOUT a restart — same
// incarnation, same server epoch, journal rolled to a fresh segment —
// and the jobs from the failed fault-window group commit must be
// durable after the heal, not ghosts only the executor remembers.
func TestServerHealsDegradedJournalWithoutRestart(t *testing.T) {
	h := newHealHarness(t)
	h.start(t, Config{Pace: 0, HealProbeSecs: 0.01})
	c := dial(t, h.socket)

	if r := c.call(t, Message{Op: "submit", ID: "pre", ReqID: "req-pre",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit pre: %+v", r)
	}
	epoch0 := c.call(t, Message{Op: "resume"}).ServerEpoch

	// Open the fault window: the next group commit fails, so the reply is
	// withheld and replaced with the typed degraded refusal.
	h.faulty.ForceFail(nil)
	r := c.call(t, Message{Op: "submit", ID: "window", ReqID: "req-window",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if r.Code != CodeJournalDegraded {
		t.Fatalf("submit during fault window: %+v, want journal-degraded", r)
	}
	if r.RetryAfterSecs <= 0 {
		t.Fatalf("degraded refusal carried no retry hint: %+v", r)
	}
	// While degraded, state-changing ops are refused upfront.
	if r := c.call(t, Message{Op: "submit", ID: "refused",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.Code != CodeJournalDegraded {
		t.Fatalf("submit while degraded: %+v, want upfront refusal", r)
	}
	if hr := c.call(t, Message{Op: "health"}); hr.Status != "journal-degraded" {
		t.Fatalf("health while degraded: %+v", hr)
	}

	// The disk recovers. The next probed request heals the journal and
	// durable acks resume — no restart.
	h.faulty.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(20 * time.Millisecond)
		r = c.call(t, Message{Op: "submit", ID: "post", ReqID: "req-post",
			Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if r.OK {
			break
		}
		if r.Code != CodeJournalDegraded && r.Code != CodeDuplicateRequest {
			t.Fatalf("submit after fault cleared: %+v", r)
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never healed; last reply %+v", r)
		}
	}
	if hr := c.call(t, Message{Op: "health"}); hr.Status != "healthy" {
		t.Fatalf("health after heal: %+v", hr)
	}
	if got := c.call(t, Message{Op: "resume"}).ServerEpoch; got != epoch0 {
		t.Fatalf("server epoch moved %d -> %d: heal must not restart", epoch0, got)
	}
	if h.jl.Segment() == 0 {
		t.Fatal("journal did not roll to a fresh segment")
	}
	if heals, _ := h.jl.HealStats(); heals == 0 {
		t.Fatal("no heal recorded")
	}

	// The fault-window job's records were shelved and replayed onto the
	// fresh segment: a restart must recover it alongside the others.
	h.srv.Kill()
	h.wg.Wait()
	h.start(t, Config{Pace: 0, HealProbeSecs: 0.01})
	c2 := dial(t, h.socket)
	for _, id := range []string{"pre", "window", "post"} {
		if r := c2.call(t, Message{Op: "status", ID: id}); !r.OK {
			t.Fatalf("status %s after heal+restart: %+v", id, r)
		}
	}
	h.srv.Kill()
	h.wg.Wait()
}

// TestServerJournalFailedAfterHealBudget: when the fault never clears,
// consecutive heal failures exhaust MaxHealFailures and health
// escalates from "journal-degraded" to "journal-failed" — the typed
// signal the shard supervisor keys restarts on. Probing stops: the
// failure count is capped, not unbounded.
func TestServerJournalFailedAfterHealBudget(t *testing.T) {
	h := newHealHarness(t)
	h.start(t, Config{Pace: 0, HealProbeSecs: 0.001, MaxHealFailures: 2})
	c := dial(t, h.socket)

	h.faulty.ForceFail(nil)
	if r := c.call(t, Message{Op: "submit", ID: "w",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.Code != CodeJournalDegraded {
		t.Fatalf("submit during fault window: %+v", r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(5 * time.Millisecond)
		hr := c.call(t, Message{Op: "health"})
		if hr.Status == "journal-failed" {
			break
		}
		if hr.Status != "journal-degraded" {
			t.Fatalf("health = %+v, want degraded or failed", hr)
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never escalated to journal-failed: %+v", hr)
		}
	}
	if _, failures := h.jl.HealStats(); failures != 2 {
		t.Fatalf("heal failures = %d, want exactly MaxHealFailures=2 (probing must stop)", failures)
	}
	h.faulty.Clear()
	h.srv.Kill()
	h.wg.Wait()
}

// TestShardJournalFailureEscalatesToRestart is the supervised-restart
// companion proof: a shard whose journal faults persist past the heal
// budget reports "journal-failed", the supervisor kills and restarts
// it, and once the disk recovers the restart succeeds — the shard
// rejoins with a bumped server epoch and serves durable submits again.
func TestShardJournalFailureEscalatesToRestart(t *testing.T) {
	base := t.TempDir()
	faulty := diskio.NewFaulty(nil, diskio.FaultConfig{Seed: 42})
	r := startTestRouter(t, RouterConfig{
		Socket:          filepath.Join(base, "r.sock"),
		Shards:          1,
		Dir:             filepath.Join(base, "state"),
		Pace:            0,
		ProbeInterval:   20 * time.Millisecond,
		RestartBackoff:  10 * time.Millisecond,
		HealProbeSecs:   0.001,
		MaxHealFailures: 2,
		DiskIO:          func(int) diskio.IO { return faulty },
	})
	c := dial(t, r.cfg.Socket)

	if resp := c.call(t, Message{Op: "submit", ID: "pre",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK {
		t.Fatalf("submit pre: %+v", resp)
	}

	// Permanent fault: degrade the shard's journal and let its heal
	// budget burn out. The supervisor's probe must then take it down.
	faulty.ForceFail(nil)
	if resp := c.call(t, Message{Op: "submit", ID: "w",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); resp.Code != CodeJournalDegraded {
		t.Fatalf("submit during fault: %+v", resp)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := r.ShardState(0)
		if err != nil {
			t.Fatalf("ShardState: %v", err)
		}
		if st == ShardDown || st == ShardRestarting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never took the journal-failed shard down (state %v)", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart attempts fail while the disk still faults (the reopen needs
	// writes); once it recovers, the supervised restart goes through.
	faulty.Clear()
	waitShardState(t, r, 0, ShardRunning, 10*time.Second)

	// Post-restart: a new incarnation (epoch bumped past the journaled
	// history) serving durable submits, with the pre-fault job intact.
	resp := c.call(t, Message{Op: "submit", ID: "post",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !resp.OK {
		t.Fatalf("submit after supervised restart: %+v", resp)
	}
	if st := c.call(t, Message{Op: "status", ID: "pre"}); !st.OK {
		t.Fatalf("pre-fault job lost across supervised restart: %+v", st)
	}
	shards := c.call(t, Message{Op: "shards"})
	if !shards.OK || len(shards.Shards) != 1 || shards.Shards[0].Restarts == 0 {
		t.Fatalf("shards report shows no supervised restart: %+v", shards)
	}
}
