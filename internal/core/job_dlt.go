package core

import (
	"fmt"

	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// DLTJob is one deep learning training job under arbitration: the
// simulated trainer plus its completion criterion and bookkeeping.
type DLTJob struct {
	id    string
	job   *dlt.Job
	crit  criteria.Criteria
	query estimate.DLTQuery // similarity-search identity
	// tenant attributes the job for quota accounting and fair-share
	// arbitration; empty means the default tenant. Set before submission.
	tenant string

	arrival        sim.Time
	arrived        bool
	epochs         int
	processingSecs float64
	status         JobStatus
	endTime        sim.Time

	lastDevice  int
	lastRelease sim.Time
	everRan     bool

	// Fault-recovery state, mirroring AQPJob: pristine is the trainer's
	// state at submission (the restart-from-scratch fallback), needsRestore
	// forces a checkpoint replay after a device crash left the in-memory
	// trainer dirty, crashPending/crashedSince track the open recovery
	// window, deferredPenaltySecs carries save-time I/O backoff into the
	// next epoch's cost.
	pristine            []byte
	needsRestore        bool
	crashPending        bool
	crashedSince        sim.Time
	deferredPenaltySecs float64

	// Overload state, mirroring AQPJob: bestEffort marks a Degrade-policy
	// admission, watchdogStrikes doubles the watchdog budget per
	// consecutive preemption (reset on a completed epoch).
	bestEffort      bool
	watchdogStrikes int

	// convergedAtEpoch records the first epoch at which the delta check
	// fired (0 = never) — the metrics' convergence-line.
	convergedAtEpoch int

	epochLog   []EpochObs
	placements []Placement
}

// Placement is one contiguous stretch of a job on a device (the Fig. 11
// Gantt rectangles).
type Placement struct {
	Device int
	Start  sim.Time
	End    sim.Time
}

// NewDLTJob wraps a trainer with a completion criterion.
func NewDLTJob(id string, job *dlt.Job, crit criteria.Criteria) (*DLTJob, error) {
	if job == nil {
		return nil, fmt.Errorf("core: DLT job %s has no trainer", id)
	}
	cfg := job.Config()
	spec := job.Spec()
	return &DLTJob{
		id:   id,
		job:  job,
		crit: crit,
		query: estimate.DLTQuery{
			Model:     cfg.Model,
			Family:    spec.Family,
			Dataset:   cfg.Dataset,
			ParamsM:   spec.ParamsM,
			BatchSize: cfg.BatchSize,
			Optimizer: cfg.Optimizer,
			LR:        cfg.LR,
		},
		lastDevice: -1,
	}, nil
}

// ID returns the job identifier.
func (j *DLTJob) ID() string { return j.id }

// Tenant reports the job's tenant attribution (empty = default tenant).
func (j *DLTJob) Tenant() string { return j.tenant }

// SetTenant attributes the job to a tenant. Call before submission —
// the attribution is folded into admission, fair-share, and fast-path
// state at registration.
func (j *DLTJob) SetTenant(t string) { j.tenant = t }

// Criteria returns the completion criterion.
func (j *DLTJob) Criteria() criteria.Criteria { return j.crit }

// Trainer exposes the underlying simulated training job.
func (j *DLTJob) Trainer() *dlt.Job { return j.job }

// SimilarityQuery returns the job identity used by TEE/TME retrieval.
func (j *DLTJob) SimilarityQuery() estimate.DLTQuery { return j.query }

// Status returns the job's current status.
func (j *DLTJob) Status() JobStatus { return j.status }

// BestEffort reports whether the admission controller degraded the job to
// best-effort service.
func (j *DLTJob) BestEffort() bool { return j.bestEffort }

// nextEpochSecsGuess projects the next epoch's training time from the
// job's own history, falling back to the trainer's nominal per-epoch cost
// — the watchdog's budget input.
func (j *DLTJob) nextEpochSecsGuess() float64 {
	if j.epochs > 0 {
		return j.processingSecs / float64(j.epochs)
	}
	per := float64(j.job.StepsPerEpoch()) * j.job.StepSeconds()
	if per <= 0 {
		per = 60
	}
	return per
}

// Arrival returns the arrival time (valid once arrived).
func (j *DLTJob) Arrival() sim.Time { return j.arrival }

// EndTime returns the terminal time (valid once Terminal).
func (j *DLTJob) EndTime() sim.Time { return j.endTime }

// Epochs reports completed training epochs.
func (j *DLTJob) Epochs() int { return j.epochs }

// ProcessingSecs reports cumulative virtual training time.
func (j *DLTJob) ProcessingSecs() float64 { return j.processingSecs }

// Accuracy reports the latest evaluation accuracy.
func (j *DLTJob) Accuracy() float64 { return j.job.Accuracy() }

// EpochLog returns the per-epoch observation log.
func (j *DLTJob) EpochLog() []EpochObs { return j.epochLog }

// Placements returns the device-placement history.
func (j *DLTJob) Placements() []Placement { return j.placements }

// ConvergedAtEpoch reports the first epoch at which the convergence delta
// fired, or 0 if it never did — the §V-B convergence-line.
func (j *DLTJob) ConvergedAtEpoch() int { return j.convergedAtEpoch }

// MaxEpochs returns the criterion's epoch bound: the runtime target for
// runtime-oriented jobs, the WITHIN bound for the others. Wall-time
// deadlines convert using the job's steady-state epoch time.
func (j *DLTJob) MaxEpochs() int {
	if e, ok := j.crit.Deadline.DeadlineEpochs(); ok {
		return e
	}
	if secs, ok := j.crit.Deadline.DeadlineSeconds(); ok {
		per := float64(j.job.StepsPerEpoch()) * j.job.StepSeconds()
		if per <= 0 {
			return 1
		}
		e := int(secs / per)
		if e < 1 {
			e = 1
		}
		return e
	}
	return 1
}

// CriteriaMet reports whether the job's completion criterion is satisfied
// by its observed state (Algorithm 3's completion check).
func (j *DLTJob) CriteriaMet() bool {
	switch j.crit.Kind {
	case criteria.Accuracy:
		return j.job.Accuracy() >= j.crit.Threshold
	case criteria.Convergence:
		return j.convergedAtEpoch > 0
	case criteria.Runtime:
		return j.epochs >= j.MaxEpochs()
	default:
		return false
	}
}

// DeadlineExpired reports whether the criterion's bound has passed
// without attainment.
func (j *DLTJob) DeadlineExpired() bool {
	if j.crit.Kind == criteria.Runtime {
		return false // expiry is completion
	}
	return j.epochs >= j.MaxEpochs()
}

// AttainmentProgress implements Algorithm 4's progress computation φ,
// using tee to estimate ê (the number of epochs needed) for accuracy- and
// convergence-oriented criteria. A nil tee or a failed estimate yields
// the conservative e*/e_max fallback.
func (j *DLTJob) AttainmentProgress(tee *estimate.TEE) float64 {
	eStar := float64(j.epochs)
	eMax := float64(j.MaxEpochs())
	if eMax <= 0 {
		eMax = 1
	}
	clamp := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		if p < 0 {
			return 0
		}
		return p
	}
	switch j.crit.Kind {
	case criteria.Runtime:
		return clamp(eStar / eMax)
	case criteria.Accuracy:
		if tee == nil {
			return clamp(eStar / eMax)
		}
		// Algorithm 4's printed branches would only consult ê once the job
		// is overdue; the paper's own Fig. 11 discussion ("the inaccurate
		// estimate is 125, so its progress φ is much lower than others")
		// requires φ = e*/ê while more epochs are still needed, so we
		// follow that reading. An unavailable estimate falls back to the
		// conservative e*/e_max.
		eHat, ok := tee.EstimateEpochs(j.query, j.job.AccuracyHistory(), j.crit.Threshold)
		if !ok {
			return clamp(eStar / eMax)
		}
		if eHat < 1 {
			eHat = 1
		}
		return clamp(eStar / float64(eHat))
	case criteria.Convergence:
		if j.convergedAtEpoch > 0 {
			return 1
		}
		if tee == nil {
			return clamp(eStar / eMax)
		}
		// Expected accuracy at convergence: the plateau the similar
		// historical jobs reached, minus the delta margin.
		target, ok := j.expectedConvergedAccuracy(tee)
		if !ok {
			return clamp(eStar / eMax)
		}
		eHat, ok := tee.EstimateEpochs(j.query, j.job.AccuracyHistory(), target)
		if !ok {
			return clamp(eStar / eMax)
		}
		if eHat < 1 {
			eHat = 1
		}
		return clamp(eStar / float64(eHat))
	default:
		return 0
	}
}

// expectedConvergedAccuracy derives the plateau accuracy from the job's
// own history when long enough, else it signals the caller to fall back.
func (j *DLTJob) expectedConvergedAccuracy(tee *estimate.TEE) (float64, bool) {
	hist := j.job.AccuracyHistory()
	if len(hist) >= 2 {
		// Extrapolate the current trajectory: the curve flattens when the
		// per-epoch gain falls below the delta; treat the latest accuracy
		// plus a few remaining gains as the plateau.
		last := hist[len(hist)-1]
		gain := last - hist[len(hist)-2]
		if gain < 0 {
			gain = 0
		}
		return last + 3*gain, true
	}
	// No real-time data yet: ask TEE's repository via a high target; the
	// joint fit then relies purely on similar historical jobs.
	if tee == nil {
		return 0, false
	}
	return 0.9, true
}
