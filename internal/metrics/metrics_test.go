package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/workload"
)

func TestSummarizeQuantiles(t *testing.T) {
	v := Summarize([]float64{4, 1, 3, 2, 5})
	if v.Min != 1 || v.Max != 5 || v.P50 != 3 || v.Mean != 3 || v.N != 5 {
		t.Fatalf("summary %+v", v)
	}
	if v.P25 != 2 || v.P75 != 4 {
		t.Fatalf("quartiles %+v", v)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.P50 != 7 {
		t.Fatalf("singleton summary %+v", one)
	}
}

func TestSummarizeProperties(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := sim.NewRand(seed)
		size := int(n)%60 + 1
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = r.Range(-100, 100)
		}
		orig := make([]float64, size)
		copy(orig, vals)
		v := Summarize(vals)
		// Input must not be mutated.
		for i := range vals {
			if vals[i] != orig[i] {
				return false
			}
		}
		sorted := make([]float64, size)
		copy(sorted, vals)
		sort.Float64s(sorted)
		return v.Min == sorted[0] && v.Max == sorted[size-1] &&
			v.Min <= v.P25 && v.P25 <= v.P50 && v.P50 <= v.P75 && v.P75 <= v.Max &&
			v.Mean >= v.Min && v.Mean <= v.Max
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); len([]rune(got)) != 5 {
		t.Errorf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(20, 10, 10); len([]rune(got)) != 10 {
		t.Errorf("overflow bar %q not clamped", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate bars not empty")
	}
}

func TestRenderAQPComparisonFormatting(t *testing.T) {
	rep := AQPReport{Policy: "test", Outcomes: []AQPJobOutcome{
		{ID: "a", Class: "light", Attained: true},
		{ID: "b", Class: "heavy", Attained: false},
	}}
	out := RenderAQPComparison([]AQPReport{rep})
	if !strings.Contains(out, "test") || !strings.Contains(out, "light") {
		t.Errorf("render missing fields:\n%s", out)
	}
	att := rep.AttainedByClass()
	if att["light"] != 1 || att["total"] != 1 {
		t.Errorf("attained counts %v", att)
	}
	tot := rep.TotalByClass()
	if tot["heavy"] != 1 || tot["total"] != 2 {
		t.Errorf("total counts %v", tot)
	}
}

func TestAvgWaitOverAttainedOnly(t *testing.T) {
	rep := AQPReport{Outcomes: []AQPJobOutcome{
		{Attained: true, WaitSecs: 10},
		{Attained: true, WaitSecs: 30},
		{Attained: false, WaitSecs: 1000},
	}}
	if got := rep.AvgWaitSecs(); got != 20 {
		t.Errorf("avg wait %v, want 20 over attained jobs", got)
	}
	if (AQPReport{}).AvgWaitSecs() != 0 {
		t.Error("empty report wait not 0")
	}
}

func TestRenderLineChart(t *testing.T) {
	rising := Series{Name: "rising", Points: []XY{{0, 0}, {50, 0.5}, {100, 1}}}
	flat := Series{Name: "flat", Points: []XY{{0, 0.2}, {100, 0.2}}}
	out := RenderLineChart("demo", []Series{rising, flat}, 40, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "rising") || !strings.Contains(out, "flat") {
		t.Fatalf("chart missing title/legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// The top-left cell region must hold the max label, the rising series'
	// last point lands near the top-right.
	if !strings.Contains(lines[1], "1.00") {
		t.Errorf("max label missing from top row: %q", lines[1])
	}
	topRow := lines[1]
	if !strings.Contains(topRow, "*") {
		t.Errorf("rising series missing from top row: %q", topRow)
	}
	if empty := RenderLineChart("x", nil, 40, 10); !strings.Contains(empty, "no data") {
		t.Errorf("empty chart rendered %q", empty)
	}
}

func TestRenderLineChartOverlapGlyph(t *testing.T) {
	a := Series{Name: "a", Points: []XY{{0, 0.5}}}
	b := Series{Name: "b", Points: []XY{{0, 0.5}}}
	out := RenderLineChart("", []Series{a, b}, 20, 6)
	if !strings.Contains(out, "#") {
		t.Errorf("overlapping points not marked:\n%s", out)
	}
}

func TestRenderOverload(t *testing.T) {
	as := admission.Stats{
		Submitted: 10, Admitted: 6, Rejected: 2, Shed: 1, Degraded: 1,
		QueueFullRejections: 2, MaxQueueDepth: 4,
	}
	os := core.OverloadStats{
		WatchdogPreemptions: 3, WatchdogWastedSecs: 12.5,
		Rejected: 2, Shed: 1, Degraded: 1, ForcedGrants: 5, MaxPendingDepth: 4,
	}
	out := RenderOverload("aqp", as, os)
	for _, want := range []string{
		"overload report: aqp", "submitted=10", "admitted=6",
		"queue-full-rejections=2", "max-depth=4", "preemptions=3",
		"wasted=12.5s", "forced-grants=5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// No controller configured ⇒ the admission line is suppressed.
	if quiet := RenderOverload("dlt", admission.Stats{}, os); strings.Contains(quiet, "admission:") {
		t.Errorf("zero admission stats still rendered an admission line:\n%s", quiet)
	}
}

func TestRenderRecovery(t *testing.T) {
	rs := core.RecoveryStats{
		Crashes: 3, Recovered: 2, Rollbacks: 2, ScratchRestarts: 1,
		WastedWorkSecs: 40.5, RecoveryLatencySecs: 9,
	}
	health := core.StoreHealth{Retries: 4, TransientFailures: 1, CorruptDetected: 1, SlowIOs: 2, Swept: 3}
	out := RenderRecovery("aqp", rs, health)
	for _, want := range []string{
		"recovery report: aqp", "crashes=3", "recovered=2", "rollbacks=2",
		"scratch-restarts=1", "wasted-work=40.5s", "mean=3.0s",
		"retries=4", "transient-failures=1", "corrupt-detected=1", "slow-ios=2", "swept=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBarNonFiniteInputs(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	// NaN passes `value < 0` (every ordered comparison with NaN is false)
	// and int(NaN) is implementation-defined — all non-finite inputs must
	// render empty rather than panic strings.Repeat.
	for _, tc := range [][2]float64{{nan, 10}, {1, nan}, {nan, nan}, {inf, 10}, {1, inf}, {-inf, 10}, {1, -inf}} {
		if got := Bar(tc[0], tc[1], 10); got != "" {
			t.Errorf("Bar(%v, %v, 10) = %q, want empty", tc[0], tc[1], got)
		}
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Errorf("zero bar %q, want empty", got)
	}
}

// TestRenderGanttDegenerateHorizon replays the divide-by-zero hazard: a
// zero horizon made slotLen 0, so every placement's slot index became
// int(±Inf). The chart must instead auto-fit to the latest placement and
// still show every job's track.
func TestRenderGanttDegenerateHorizon(t *testing.T) {
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 8, 10, 3); err != nil {
		t.Fatalf("seed history: %v", err)
	}
	specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(2, 7))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), baselines.SRF{}, repo)
	for _, spec := range specs {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.ID, err)
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	placed := 0
	for _, j := range exec.Jobs() {
		placed += len(j.Placements())
	}
	if placed == 0 {
		t.Fatalf("fixture produced no placements; the regression needs at least one")
	}
	for _, horizon := range []sim.Time{0, -5, sim.Time(math.NaN()), sim.Time(math.Inf(1))} {
		g := RenderGantt(exec.Jobs(), 4, horizon, 20)
		if !strings.Contains(g, "gpu0") || !strings.Contains(g, " 0") {
			t.Fatalf("horizon %v: malformed gantt:\n%s", horizon, g)
		}
		if !strings.Contains(g, " 1") {
			t.Errorf("horizon %v: auto-fit chart lost job tracks:\n%s", horizon, g)
		}
	}
	// A sane horizon still renders as before.
	if g := RenderGantt(exec.Jobs(), 4, exec.Engine().Now(), 20); !strings.Contains(g, "gpu0") {
		t.Fatalf("normal horizon broken:\n%s", g)
	}
}

// TestRenderLineChartSinglePoint guards the companion degenerate-range
// case: one point collapses both axis ranges, which the renderer must
// widen rather than divide by zero.
func TestRenderLineChartSinglePoint(t *testing.T) {
	out := RenderLineChart("single", []Series{{Name: "s", Points: []XY{{X: 3, Y: 0.7}}}}, 30, 8)
	if !strings.Contains(out, "single") || !strings.Contains(out, "*") {
		t.Fatalf("single-point chart missing plot:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
			t.Fatalf("non-finite label leaked: %q", line)
		}
	}
}
