package aqp_test

import (
	"fmt"

	"rotary/internal/aqp"
)

// A GroupTable folds rows into running grouped aggregates; the accuracy
// αc/αf compares an intermediate snapshot against the final answer.
func ExampleAccuracy() {
	specs := []aqp.AggSpec{{Name: "revenue", Kind: aqp.Sum}}
	run := func(values []float64) aqp.Snapshot {
		gt := aqp.NewGroupTable(specs)
		for _, v := range values {
			gt.Update("asia", v)
		}
		return gt.Snapshot()
	}
	final := run([]float64{10, 20, 30, 40})
	half := run([]float64{10, 20})
	fmt.Printf("%.2f %.2f\n", aqp.Accuracy(half, final), aqp.Accuracy(final, final))
	// Output: 0.30 1.00
}

// Confidence intervals are the §III-B optional error bounds: for SUM the
// Horvitz-Thompson scale-up given the processed fraction.
func ExampleGroupTable_ConfidenceInterval() {
	gt := aqp.NewGroupTable([]aqp.AggSpec{{Name: "sum", Kind: aqp.Sum}})
	for i := 0; i < 100; i++ {
		gt.Update("all", 2)
	}
	lo, hi, ok := gt.ConfidenceInterval("all", 0, 1.96, 0.25) // 25% of data seen
	fmt.Printf("%v estimate=%.0f width=%.0f\n", ok, (lo+hi)/2, hi-lo)
	// Output: true estimate=800 width=0
}
