package metrics

import (
	"fmt"
	"strings"

	"rotary/internal/core"
)

// RenderRecovery renders one executor's fault-recovery report: the
// crash/rollback/restart counters with the wasted-work and
// recovery-latency totals, followed by the checkpoint store's health
// counters when a store was in play.
func RenderRecovery(label string, rs core.RecoveryStats, health core.StoreHealth) string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery report: %s\n", label)
	fmt.Fprintf(&b, " crashes=%d recovered=%d rollbacks=%d scratch-restarts=%d\n",
		rs.Crashes, rs.Recovered, rs.Rollbacks, rs.ScratchRestarts)
	fmt.Fprintf(&b, " wasted-work=%.1fs recovery-latency: total=%.1fs mean=%.1fs\n",
		rs.WastedWorkSecs, rs.RecoveryLatencySecs, rs.MeanRecoveryLatencySecs())
	fmt.Fprintf(&b, " checkpoint store: retries=%d transient-failures=%d corrupt-detected=%d slow-ios=%d swept=%d\n",
		health.Retries, health.TransientFailures, health.CorruptDetected, health.SlowIOs, health.Swept)
	return b.String()
}
