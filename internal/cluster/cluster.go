// Package cluster models the computing resources Rotary arbitrates.
//
// The paper's problem statement (§III-D) models resources as M possibly
// heterogeneous units that "can only process one job at a time and are not
// sub-dividable"; a job "holds on to a particular resource for at least an
// epoch". Rotary-AQP arbitrates CPU hardware threads under a shared memory
// budget (Algorithm 2); Rotary-DLT arbitrates whole GPUs, each with its own
// memory (Algorithm 3). Both substrates are modeled here, with an
// assignment ledger whose conservation invariants are property-tested.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInsufficient is returned when an allocation request cannot be
// satisfied by the remaining resources.
var ErrInsufficient = errors.New("cluster: insufficient resources")

// CPUPool models the Rotary-AQP resource substrate: D interchangeable
// hardware threads plus a shared memory budget in megabytes. The paper's
// testbed exposed 20 physical cores and 192 GB to the AQP system.
type CPUPool struct {
	totalThreads int
	totalMemMB   float64
	freeThreads  int
	freeMemMB    float64
	held         map[string]cpuGrant
}

type cpuGrant struct {
	threads int
	memMB   float64
}

// NewCPUPool returns a pool with the given thread count and memory budget.
func NewCPUPool(threads int, memMB float64) *CPUPool {
	if threads < 0 || memMB < 0 {
		panic("cluster: negative pool size")
	}
	return &CPUPool{
		totalThreads: threads,
		totalMemMB:   memMB,
		freeThreads:  threads,
		freeMemMB:    memMB,
		held:         make(map[string]cpuGrant),
	}
}

// TotalThreads reports the pool's thread capacity.
func (p *CPUPool) TotalThreads() int { return p.totalThreads }

// TotalMemMB reports the pool's memory capacity in MB.
func (p *CPUPool) TotalMemMB() float64 { return p.totalMemMB }

// FreeThreads reports the currently unallocated thread count.
func (p *CPUPool) FreeThreads() int { return p.freeThreads }

// FreeMemMB reports the currently unallocated memory in MB.
func (p *CPUPool) FreeMemMB() float64 { return p.freeMemMB }

// Holding reports the threads and memory currently granted to jobID.
func (p *CPUPool) Holding(jobID string) (threads int, memMB float64) {
	g := p.held[jobID]
	return g.threads, g.memMB
}

// Allocate grants threads and memMB to jobID. A job may hold at most one
// grant; allocating for a job that already holds resources is an error
// (grow with Grow instead, matching Algorithm 2's "allocate extra 1
// hardware thread" step).
func (p *CPUPool) Allocate(jobID string, threads int, memMB float64) error {
	if threads <= 0 {
		return fmt.Errorf("cluster: allocate %d threads for %s: thread count must be positive", threads, jobID)
	}
	if memMB < 0 {
		return fmt.Errorf("cluster: allocate negative memory for %s", jobID)
	}
	if _, ok := p.held[jobID]; ok {
		return fmt.Errorf("cluster: job %s already holds resources", jobID)
	}
	if threads > p.freeThreads || memMB > p.freeMemMB {
		return ErrInsufficient
	}
	p.freeThreads -= threads
	p.freeMemMB -= memMB
	p.held[jobID] = cpuGrant{threads: threads, memMB: memMB}
	return nil
}

// Grow adds extra threads to an existing grant, implementing the second
// phase of Algorithm 2 where the highest-priority jobs receive additional
// hardware threads while D ≠ 0.
func (p *CPUPool) Grow(jobID string, extraThreads int) error {
	g, ok := p.held[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %s holds no resources to grow", jobID)
	}
	if extraThreads <= 0 {
		return fmt.Errorf("cluster: grow by %d threads", extraThreads)
	}
	if extraThreads > p.freeThreads {
		return ErrInsufficient
	}
	p.freeThreads -= extraThreads
	g.threads += extraThreads
	p.held[jobID] = g
	return nil
}

// Release returns all resources held by jobID to the pool. Releasing a job
// that holds nothing is a no-op, so epoch-completion handlers can release
// unconditionally.
func (p *CPUPool) Release(jobID string) {
	g, ok := p.held[jobID]
	if !ok {
		return
	}
	p.freeThreads += g.threads
	p.freeMemMB += g.memMB
	delete(p.held, jobID)
}

// HeldJobs returns the IDs of jobs currently holding resources, sorted for
// deterministic iteration.
func (p *CPUPool) HeldJobs() []string {
	ids := make([]string, 0, len(p.held))
	for id := range p.held {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Check verifies the ledger's conservation invariants, returning an error
// describing the first violation. Tests call Check after every mutation
// sequence.
func (p *CPUPool) Check() error {
	threads := p.freeThreads
	mem := p.freeMemMB
	for id, g := range p.held {
		if g.threads <= 0 {
			return fmt.Errorf("cluster: job %s holds %d threads", id, g.threads)
		}
		if g.memMB < 0 {
			return fmt.Errorf("cluster: job %s holds negative memory", id)
		}
		threads += g.threads
		mem += g.memMB
	}
	if threads != p.totalThreads {
		return fmt.Errorf("cluster: thread leak: %d accounted, %d total", threads, p.totalThreads)
	}
	if diff := mem - p.totalMemMB; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("cluster: memory leak: %.3f accounted, %.3f total", mem, p.totalMemMB)
	}
	return nil
}
