package dlt

import (
	"math"
	"testing"
	"testing/quick"

	"rotary/internal/sim"
)

func goodConfig(model, dataset string) Config {
	return Config{Model: model, Dataset: dataset, BatchSize: 32, Optimizer: "sgd", LR: 0.01, Seed: 1}
}

func TestZooConsistency(t *testing.T) {
	for _, name := range Models() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.ParamsM <= 0 || spec.BaseAccuracy <= 0 || spec.BaseAccuracy > 1 || spec.BaseRate <= 0 {
			t.Errorf("%s: implausible spec %+v", name, spec)
		}
	}
	if len(PreTrainedModels()) != 3 {
		t.Errorf("want 3 pre-trained variants, got %v", PreTrainedModels())
	}
	for _, name := range ScratchModels(NLP) {
		spec, _ := Lookup(name)
		if spec.Domain != NLP || spec.PreTrained {
			t.Errorf("%s leaked into NLP scratch list", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg  Config
		ok   bool
		name string
	}{
		{goodConfig("resnet-18", "cifar10"), true, "valid"},
		{goodConfig("nope", "cifar10"), false, "unknown model"},
		{goodConfig("resnet-18", "nope"), false, "unknown dataset"},
		{goodConfig("resnet-18", "imdb"), false, "domain mismatch"},
		{func() Config { c := goodConfig("resnet-18", "cifar10"); c.BatchSize = 0; return c }(), false, "zero batch"},
		{func() Config { c := goodConfig("resnet-18", "cifar10"); c.LR = 0; return c }(), false, "zero lr"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestCurveSaturatesWithDiminishingReturns(t *testing.T) {
	curve, err := NewCurve(goodConfig("resnet-18", "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	if curve.At(0) > 0.2 {
		t.Errorf("untrained accuracy %v too high", curve.At(0))
	}
	early := curve.At(5) - curve.At(0)
	late := curve.At(30) - curve.At(25)
	if early <= late {
		t.Errorf("no diminishing returns: early %v late %v", early, late)
	}
	if c := curve.Ceiling(); curve.At(100) > c+0.01 {
		t.Errorf("accuracy %v exceeds ceiling %v", curve.At(100), c)
	}
}

func TestCurveHyperparameterQuality(t *testing.T) {
	good, _ := NewCurve(goodConfig("resnet-18", "cifar10"))
	badCfg := goodConfig("resnet-18", "cifar10")
	badCfg.LR = 0.00001
	bad, _ := NewCurve(badCfg)
	if bad.Ceiling() >= good.Ceiling() {
		t.Errorf("badly tuned ceiling %v not below well-tuned %v", bad.Ceiling(), good.Ceiling())
	}
	if bad.Rate() >= good.Rate() {
		t.Errorf("badly tuned rate %v not below well-tuned %v", bad.Rate(), good.Rate())
	}
}

func TestPreTrainedStartsNearCeiling(t *testing.T) {
	cfg := goodConfig("resnet-18-pretrained", "cifar10")
	curve, err := NewCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if curve.At(0) < 0.85*curve.Ceiling() {
		t.Errorf("pre-trained start %v far below ceiling %v", curve.At(0), curve.Ceiling())
	}
	if _, reached := curve.EpochsToAccuracy(curve.Ceiling() * 0.98); !reached {
		t.Error("pre-trained curve cannot approach its own ceiling")
	}
}

func TestEpochsToAccuracyMatchesAt(t *testing.T) {
	check := func(seed uint64) bool {
		models := ScratchModels(CV)
		r := sim.NewRand(seed)
		cfg := goodConfig(models[r.IntN(len(models))], "cifar10")
		cfg.Seed = 0 // noiseless check against the mean curve uses seed-0 noise anyway
		curve, err := NewCurve(cfg)
		if err != nil {
			return false
		}
		target := curve.Ceiling() * 0.9
		e, ok := curve.EpochsToAccuracy(target)
		if !ok {
			return false
		}
		// The noiseless mean at e must be ≥ target - small noise tolerance.
		return curve.At(e) >= target-0.02
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJobTrainingAndWarmup(t *testing.T) {
	job, err := NewJob(goodConfig("mobilenet", "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	_, first := job.TrainEpoch()
	_, second := job.TrainEpoch()
	if first <= second {
		t.Errorf("first epoch %v not slower than second %v (CUDA warm-up)", first, second)
	}
	if math.Abs(first-second-WarmupSeconds) > 1e-9 {
		t.Errorf("warm-up difference %v, want %v", first-second, WarmupSeconds)
	}
	if job.EpochsTrained() != 2 || len(job.AccuracyHistory()) != 2 {
		t.Fatal("epoch bookkeeping broken")
	}
}

func TestJobCheckpointRestore(t *testing.T) {
	cfg := goodConfig("vgg-11", "cifar10")
	a, _ := NewJob(cfg)
	for i := 0; i < 5; i++ {
		a.TrainEpoch()
	}
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewJob(cfg)
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.EpochsTrained() != 5 || b.Accuracy() != a.Accuracy() {
		t.Fatal("restore did not reproduce state")
	}
	// Restored job pays the warm-up again.
	_, post := b.TrainEpoch()
	c, _ := NewJob(cfg)
	for i := 0; i < 5; i++ {
		c.TrainEpoch()
	}
	_, cont := c.TrainEpoch()
	if post <= cont {
		t.Errorf("restored epoch %v not slower than continuous %v", post, cont)
	}
	// Wrong-config restores fail.
	other, _ := NewJob(goodConfig("lenet", "cifar10"))
	if err := other.Restore(cp); err == nil {
		t.Error("restored checkpoint into different config")
	}
}

func TestConvergedDelta(t *testing.T) {
	job, _ := NewJob(goodConfig("resnet-18", "cifar10"))
	if job.Converged(0.5) {
		t.Error("converged with no epochs")
	}
	for i := 0; i < 60; i++ {
		job.TrainEpoch()
	}
	if !job.Converged(0.01) {
		t.Error("saturated curve not converged at delta 0.01")
	}
	fresh, _ := NewJob(goodConfig("resnet-18", "cifar10"))
	fresh.TrainEpoch()
	fresh.TrainEpoch()
	if fresh.Converged(0.001) {
		t.Error("steeply rising curve declared converged")
	}
}

func TestMemoryModelShape(t *testing.T) {
	spec, _ := Lookup("resnet-18")
	m8 := PeakMemoryMB(spec, 8, "sgd")
	m32 := PeakMemoryMB(spec, 32, "sgd")
	if m32 <= m8 {
		t.Error("memory not increasing in batch size")
	}
	adam := PeakMemoryMB(spec, 32, "adam")
	if adam <= m32 {
		t.Error("adam state not heavier than sgd")
	}
	// Every Table II configuration must fit the paper's 8 GB devices.
	for _, name := range Models() {
		s, _ := Lookup(name)
		batches := BatchSizesCV
		if s.Domain == NLP {
			batches = BatchSizesNLP
		}
		for _, b := range batches {
			if mb := PeakMemoryMB(s, b, "adam"); mb > 8192 {
				t.Errorf("%s batch %d needs %.0f MB > 8 GB", name, b, mb)
			}
		}
	}
}

func TestEpochTimesComparableAcrossDomains(t *testing.T) {
	cv, _ := NewJob(goodConfig("resnet-18", "cifar10"))
	nlpCfg := Config{Model: "bert-mini", Dataset: "imdb", BatchSize: 128, Optimizer: "adam", LR: 0.001, Seed: 1}
	nlp, _ := NewJob(nlpCfg)
	cvSecs := float64(cv.StepsPerEpoch()) * cv.StepSeconds()
	nlpSecs := float64(nlp.StepsPerEpoch()) * nlp.StepSeconds()
	ratio := cvSecs / nlpSecs
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("CV epoch %.0fs vs NLP epoch %.0fs: domains not comparable", cvSecs, nlpSecs)
	}
}

func TestTTRDiscardsWarmup(t *testing.T) {
	ttr := NewTTR()
	// 100 steps, 0.1 s each, plus warm-up on the first epoch.
	ttr.RecordEpoch("j", 0, 100*0.1+WarmupSeconds, 100, true)
	s, ok := ttr.StepSeconds("j", 0)
	if !ok {
		t.Fatal("no recording")
	}
	// Discarding the first step: (12 - 2) / 99 ≈ 0.101.
	if s < 0.095 || s > 0.11 {
		t.Errorf("step time %v, want ≈0.1 after warm-up discard", s)
	}
	// Fallback to another device's record.
	if _, ok := ttr.StepSeconds("j", 5); !ok {
		t.Error("no cross-device fallback")
	}
	if secs, ok := ttr.EpochSeconds("j", 0, 200); !ok || secs < 19 || secs > 22 {
		t.Errorf("EpochSeconds = %v, %v", secs, ok)
	}
	if ttr.Overhead() <= 0 {
		t.Error("overhead accounting inactive")
	}
	if ttr.Records() != 1 {
		t.Errorf("records = %d", ttr.Records())
	}
}

func TestDeterministicCurves(t *testing.T) {
	cfg := goodConfig("densenet-121", "cifar10")
	a, _ := NewJob(cfg)
	b, _ := NewJob(cfg)
	for i := 0; i < 10; i++ {
		accA, _ := a.TrainEpoch()
		accB, _ := b.TrainEpoch()
		if accA != accB {
			t.Fatalf("same config diverged at epoch %d", i+1)
		}
	}
}
