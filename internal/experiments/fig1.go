package experiments

import (
	"fmt"
	"strings"

	"rotary/internal/dlt"
	"rotary/internal/metrics"
)

// Fig1aResult holds the Fig. 1a progress curves: online-aggregation
// progress of TPC-H Q5, Q7 and Q19 over time, single-threaded, checked at
// per-query intervals.
type Fig1aResult struct {
	// Series maps query name to (seconds, data-progress, true accuracy)
	// samples.
	Series map[string][]ProgressSample
	Text   string
}

// ProgressSample is one checkpointed observation of a progressing query.
type ProgressSample struct {
	Secs     float64
	DataFrac float64
	Accuracy float64
}

// Fig1a regenerates Fig. 1a: it streams Q5, Q7 and Q19 standalone and
// samples their progress every 60 seconds, then re-samples Q5 at 120 s
// and Q7 at 180 s to show the paper's observation that per-query check
// intervals align the progress patterns.
func Fig1a(cfg Config) (*Fig1aResult, error) {
	cat := catalogFor(cfg.SF, cfg.Seed)
	res := &Fig1aResult{Series: map[string][]ProgressSample{}}
	curves := []struct {
		query    string
		interval float64
		label    string
	}{
		{"q5", 60, "q5@60s"}, {"q7", 60, "q7@60s"}, {"q19", 60, "q19@60s"},
		{"q5", 120, "q5@120s"}, {"q7", 180, "q7@180s"},
	}
	for _, c := range curves {
		q, err := cat.NewQuery(c.query)
		if err != nil {
			return nil, err
		}
		var secs float64
		nextCheck := c.interval
		var samples []ProgressSample
		for !q.Exhausted() {
			rows, cost := q.ProcessBatch(2000, 1)
			if rows == 0 {
				break
			}
			secs += cost
			for secs >= nextCheck {
				samples = append(samples, ProgressSample{Secs: nextCheck, DataFrac: q.DataProgress(), Accuracy: q.Accuracy()})
				nextCheck += c.interval
			}
		}
		samples = append(samples, ProgressSample{Secs: secs, DataFrac: 1, Accuracy: q.Accuracy()})
		res.Series[c.label] = samples
	}

	var b strings.Builder
	b.WriteString("Fig 1a: online-aggregation progress of TPC-H q5, q7, q19 (single thread)\n")
	for _, c := range curves {
		samples := res.Series[c.label]
		fmt.Fprintf(&b, "%-8s", c.label)
		for i, s := range samples {
			if i >= 10 {
				fmt.Fprintf(&b, " …")
				break
			}
			fmt.Fprintf(&b, " %4.0fs:%3.0f%%", s.Secs, s.DataFrac*100)
		}
		b.WriteByte('\n')
	}
	var plotted []metrics.Series
	for _, label := range []string{"q19@60s", "q5@60s", "q7@60s"} {
		ser := metrics.Series{Name: label}
		for _, s := range res.Series[label] {
			ser.Points = append(ser.Points, metrics.XY{X: s.Secs, Y: s.DataFrac})
		}
		plotted = append(plotted, ser)
	}
	b.WriteByte('\n')
	b.WriteString(metrics.RenderLineChart("data progress vs seconds (checked every 60 s)", plotted, 64, 14))
	res.Text = b.String()
	return res, nil
}

// Fig1bResult holds the Fig. 1b learning curves of five well-tuned
// convolutional models on CIFAR-10 (batch 128, lr 0.01).
type Fig1bResult struct {
	// Curves maps model name to accuracy after each epoch (30 epochs).
	Curves map[string][]float64
	Text   string
}

// Fig1bModels are the five CNNs plotted.
var Fig1bModels = []string{"resnet-18", "mobilenet", "densenet-121", "vgg-11", "shufflenet"}

// Fig1b regenerates Fig. 1b from the DLT learning-curve substrate.
func Fig1b(cfg Config) (*Fig1bResult, error) {
	res := &Fig1bResult{Curves: map[string][]float64{}}
	const epochs = 30
	for _, model := range Fig1bModels {
		curve, err := dlt.NewCurve(dlt.Config{
			Model: model, Dataset: "cifar10", BatchSize: 128,
			Optimizer: "sgd", LR: 0.01, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		accs := make([]float64, epochs)
		for e := 1; e <= epochs; e++ {
			accs[e-1] = curve.At(e)
		}
		res.Curves[model] = accs
	}
	var b strings.Builder
	b.WriteString("Fig 1b: evaluation accuracy on CIFAR-10 (batch 128, lr 0.01)\n")
	fmt.Fprintf(&b, "%-14s", "epoch")
	for _, e := range []int{1, 2, 4, 8, 12, 16, 20, 25, 30} {
		fmt.Fprintf(&b, "%7d", e)
	}
	b.WriteByte('\n')
	for _, model := range Fig1bModels {
		fmt.Fprintf(&b, "%-14s", model)
		for _, e := range []int{1, 2, 4, 8, 12, 16, 20, 25, 30} {
			fmt.Fprintf(&b, "%6.1f%%", res.Curves[model][e-1]*100)
		}
		b.WriteByte('\n')
	}
	var plotted []metrics.Series
	for _, model := range Fig1bModels {
		ser := metrics.Series{Name: model}
		for e, acc := range res.Curves[model] {
			ser.Points = append(ser.Points, metrics.XY{X: float64(e + 1), Y: acc})
		}
		plotted = append(plotted, ser)
	}
	b.WriteByte('\n')
	b.WriteString(metrics.RenderLineChart("evaluation accuracy vs epoch", plotted, 64, 14))
	res.Text = b.String()
	return res, nil
}
