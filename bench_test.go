package rotary_test

// One benchmark per table and figure of the paper's evaluation section,
// plus the DESIGN.md ablations. Each benchmark regenerates its experiment
// end-to-end (workload synthesis → arbitration over virtual time →
// metrics) and reports the experiment's headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the harness
// and prints the reproduced numbers. cmd/rotary-bench renders the same
// experiments as full-text reports.

import (
	"sync"
	"testing"

	"rotary"
	"rotary/internal/aqp"
	"rotary/internal/experiments"
	"rotary/internal/stream"
	"rotary/internal/tpch"
)

// benchConfig mirrors the paper's 30-job, 3-run protocol at a reduced
// scale factor (virtual-time costs are SF-invariant; see DESIGN.md).
func benchConfig() experiments.Config {
	return experiments.Config{SF: 0.01, Seed: 1, Runs: 3, AQPJobs: 30, DLTJobs: 30}
}

// quickConfig is for the single-workload experiments.
func quickConfig() experiments.Config {
	cfg := benchConfig()
	cfg.Runs = 1
	return cfg
}

func BenchmarkFig1aProgressCurves(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			q19 := res.Series["q19@60s"]
			b.ReportMetric(q19[0].DataFrac*100, "q19-%data@60s")
		}
	}
}

func BenchmarkFig1bLearningCurves(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Curves["resnet-18"][29]*100, "resnet18-acc@30ep-%")
		}
	}
}

func BenchmarkTable1AQPWorkload(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Specs)), "jobs")
		}
	}
}

func BenchmarkFig6AQPAttainment(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Reports["rotary-aqp"].AttainedByClass["total"], "rotary-attained")
			b.ReportMetric(res.Reports["relaqs"].AttainedByClass["total"], "relaqs-attained")
		}
	}
}

func BenchmarkFig7FalseAttainmentWaiting(b *testing.B) {
	cfg := quickConfig() // isolated-runtime measurement is the slow part
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Reports["rotary-aqp"].FalseAttainments, "rotary-false-attain")
			b.ReportMetric(res.Reports["rotary-aqp"].AvgWaitSecs, "rotary-wait-s")
		}
	}
}

func BenchmarkFig8SkewedWorkloads(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BySkew["heavy"]["rotary-aqp"].AttainedByClass["total"], "rotary-heavy-only")
		}
	}
}

func BenchmarkFig9EstimationSensitivity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Reports["rotary-aqp"].AttainedByClass["total"], "real-est-attained")
			b.ReportMetric(res.Reports["rotary-random-est"].AttainedByClass["total"], "random-est-attained")
		}
	}
}

func BenchmarkTable2DLTWorkload(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Specs)), "jobs")
		}
	}
}

func BenchmarkFig10DLTAttainment(b *testing.B) {
	cfg := quickConfig()
	cfg.DLTJobs = 24
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.SnapshotTimes) > 0 {
			idx := len(res.SnapshotTimes) / 3
			b.ReportMetric(res.Snapshots["rotary-fairness(T=100%)"][idx].Progress.Min, "fairness-min-prog")
			b.ReportMetric(float64(res.Snapshots["rotary-efficiency(T=0%)"][idx].Attained), "efficiency-attained")
		}
	}
}

func BenchmarkFig11EpochEstimationImpact(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Reliable.NLPMeanEndSecs, "reliable-nlp-end-s")
			b.ReportMetric(res.Erroneous.NLPMeanEndSecs, "erroneous-nlp-end-s")
		}
	}
}

func BenchmarkTable3Overhead(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.OverallRunSecs, "virtual-run-s(40jobs)")
			b.ReportMetric(float64(last.TEEOverhead.Microseconds()), "tee-overhead-us")
		}
	}
}

func BenchmarkAblationFixedEpochs(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFixedEpochs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["adaptive-epochs"], "adaptive-attained")
			b.ReportMetric(res.Values["fixed-epochs"], "fixed-attained")
		}
	}
}

func BenchmarkAblationMemoryBlind(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMemoryBlind(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["memory-aware"], "aware-attained")
			b.ReportMetric(res.Values["memory-blind"], "blind-attained")
		}
	}
}

func BenchmarkAblationEnvelopeWindow(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEnvelopeWindow(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["window=2"], "false-attain@w2")
			b.ReportMetric(res.Values["window=8"], "false-attain@w8")
		}
	}
}

func BenchmarkAblationEstimatorSources(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEstimatorSources(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["joint"]*1000, "joint-mae-milli")
			b.ReportMetric(res.Values["realtime-only"]*1000, "realtime-mae-milli")
		}
	}
}

func BenchmarkAblationThresholdSweep(b *testing.B) {
	cfg := quickConfig()
	cfg.DLTJobs = 20
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationThresholdSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["T=100%/min-progress"], "fairness-min-prog@half")
			b.ReportMetric(res.Values["T=0%/attained"], "efficiency-attained@half")
		}
	}
}

func BenchmarkAblationMaterialization(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMaterialization(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["disk-only/makespan"], "disk-only-makespan-s")
			b.ReportMetric(res.Values["memory-tier/makespan"], "memory-tier-makespan-s")
		}
	}
}

func BenchmarkUnifiedArbitration(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Unified(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Attained["T=100%"]), "fairness-attained")
			b.ReportMetric(float64(res.Attained["T=0%"]), "efficiency-attained")
		}
	}
}

func BenchmarkAblationSwapOverhead(b *testing.B) {
	cfg := quickConfig()
	cfg.DLTJobs = 16
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSwapOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["rotary/penalty"], "rotary-swap-gpu-s")
			b.ReportMetric(res.Values["round-robin/penalty"], "rr-swap-gpu-s")
		}
	}
}

func BenchmarkAblationArrivalRate(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationArrivalRate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Values["mean-arrival=80s/rotary"], "rotary-attained@80s")
			b.ReportMetric(res.Values["mean-arrival=80s/edf"], "edf-attained@80s")
		}
	}
}

// BenchmarkAQPEpoch times the raw AQP data path — a q1-style
// scan→filter→group-by epoch over a generated TPC-H lineitem stream — at
// the worker widths the executor grants (seq = width 1). The fact topic
// gets 64 partitions so every width has independent work. rows/s is the
// headline metric; the sub-benchmarks share one generated dataset.
// Parallel speedup only shows on multicore hardware, so nothing here
// asserts wall-clock ratios — the equivalence tests prove the widths
// compute identical results, this benchmark measures them.
func BenchmarkAQPEpoch(b *testing.B) {
	for _, bc := range []struct {
		name  string
		width int
	}{
		{"seq", 1}, {"par-2", 2}, {"par-4", 4}, {"par-8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) { benchmarkAQPEpoch(b, bc.width) })
	}
}

// aqpEpochTopic is generated once and shared by all widths.
var (
	aqpEpochOnce  sync.Once
	aqpEpochTopic *stream.Topic[tpch.Lineitem]
)

func benchmarkAQPEpoch(b *testing.B, width int) {
	aqpEpochOnce.Do(func() {
		ds := rotary.GenerateTPCH(0.05, 7)
		aqpEpochTopic = stream.NewShuffledTopic("lineitem", ds.Lineitems, 64, 7)
	})
	cutoff := tpch.MakeDate(1998, 9, 2)
	specs := []aqp.AggSpec{
		{Name: "sum_qty", Kind: aqp.Sum},
		{Name: "avg_price", Kind: aqp.Avg},
		{Name: "count_order", Kind: aqp.Count},
	}
	proc := aqp.Processor[tpch.Lineitem]{
		Process: func(rows []tpch.Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate > cutoff {
					continue
				}
				gt.Update(string([]byte{l.ReturnFlag, '|', l.LineStatus}),
					l.Quantity, l.ExtendedPrice, 1)
			}
		},
	}
	var rows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := aqp.NewRunning("bench", stream.NewConsumer(aqpEpochTopic), specs, proc,
			aqp.CostModel{SecsPerRow: 1e-6})
		for {
			n, _ := q.ProcessBatch(1<<16, width)
			if n == 0 {
				break
			}
			rows += int64(n)
		}
	}
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
}
