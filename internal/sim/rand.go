package sim

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic pseudo-random source used by every stochastic
// component in the repository (dbgen, workload sampling, learning-curve
// noise, Poisson arrivals). All experiments pass explicit seeds so the
// paper's "averaged over 3 independent runs" protocol replays bit-for-bit.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a deterministic source seeded from seed.
func NewRand(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.src.Float64() }

// Exp returns an exponentially distributed value with the given mean.
// It is the inter-arrival time of a Poisson process with rate 1/mean,
// matching Table I's "job arrival is based on a Poisson distribution with
// a mean arrival time of 160 seconds".
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Pick returns a uniformly chosen element of choices. It panics if choices
// is empty, mirroring the workload tables where every parameter space is
// non-empty.
func Pick[T any](r *Rand, choices []T) T {
	return choices[r.IntN(len(choices))]
}

// PickWeighted returns index i with probability weights[i]/sum(weights).
// It panics if weights is empty or sums to a non-positive value.
func (r *Rand) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: non-positive weight sum")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes s in place.
func Shuffle[T any](r *Rand, s []T) {
	r.src.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method (the means used in this repository are small).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
