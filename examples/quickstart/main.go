// Quickstart: submit three progressive iterative analytic jobs — one per
// completion-criteria kind from Fig. 3 — to a tiny Rotary-managed system
// and watch the arbiter run them to their criteria.
package main

import (
	"fmt"
	"log"

	"rotary"
)

func main() {
	log.SetFlags(0)

	// The completion-criteria DSL of Fig. 4: criteria are add-ons to the
	// regular command, parsed off without touching the command itself.
	commands := []string{
		"SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) FROM LINEITEM ACC MIN 80% WITHIN 900 SECONDS",
		"TRAIN RESNET-18 ON CIFAR10 ACC DELTA 0.003 WITHIN 30 EPOCHS",
		"TRAIN MOBILENET ON CIFAR10 FOR 10 EPOCHS",
	}
	for _, cmd := range commands {
		prefix, crit, err := rotary.ParseCriteria(cmd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("command %q\n  → criteria: %v (%v-oriented)\n", prefix, crit, crit.Kind)
	}

	// --- An AQP job under Rotary-AQP -----------------------------------
	fmt.Println("\n-- Rotary-AQP: one online-aggregation job --")
	ds := rotary.GenerateTPCH(0.005, 42)
	cat := rotary.NewCatalog(ds, 42)
	repo := rotary.NewRepository()
	if err := rotary.SeedAQPHistory(repo, cat, rotary.RecommendedBatchRows(cat)); err != nil {
		log.Fatal(err)
	}
	sched := rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3))
	exec := rotary.NewAQPExecutor(rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat)), sched, repo)

	_, crit, err := rotary.ParseCriteria(commands[0])
	if err != nil {
		log.Fatal(err)
	}
	q, err := cat.NewQuery("q6") // the revenue-forecast aggregation
	if err != nil {
		log.Fatal(err)
	}
	job, err := rotary.NewAQPJob(rotary.AQPJobConfig{
		ID: "quickstart-q6", Query: q, Criteria: crit, Class: "light",
		BatchRows: rotary.RecommendedBatchRows(cat),
	})
	if err != nil {
		log.Fatal(err)
	}
	exec.Submit(job, 0)
	if err := exec.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q6 stopped %v after %d epochs, %.1f%% of data, estimated accuracy %.1f%%\n",
		job.Status(), job.Epochs(), job.Query().DataProgress()*100, job.EstimatedAccuracy()*100)

	// --- Two DLT jobs under Rotary-DLT ---------------------------------
	fmt.Println("\n-- Rotary-DLT: convergence- and runtime-oriented training --")
	dltRepo := rotary.NewRepository()
	if err := rotary.SeedDLTHistory(dltRepo, 20, 30, 42); err != nil {
		log.Fatal(err)
	}
	dltSched := rotary.NewRotaryDLT(0.5, rotary.NewTEE(dltRepo, 3), rotary.NewTME(dltRepo, 3))
	dltExec := rotary.NewDLTExecutor(rotary.DefaultDLTExecConfig(), dltSched, dltRepo)

	for i, cmd := range commands[1:] {
		_, crit, err := rotary.ParseCriteria(cmd)
		if err != nil {
			log.Fatal(err)
		}
		model := "resnet-18"
		if i == 1 {
			model = "mobilenet"
		}
		trainer, err := rotary.NewTrainer(rotary.DLTConfig{
			Model: model, Dataset: "cifar10", BatchSize: 32,
			Optimizer: "sgd", LR: 0.01, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		j, err := rotary.NewDLTJob(fmt.Sprintf("quickstart-%s", model), trainer, crit)
		if err != nil {
			log.Fatal(err)
		}
		dltExec.Submit(j, 0)
	}
	if err := dltExec.Run(); err != nil {
		log.Fatal(err)
	}
	for _, j := range dltExec.Jobs() {
		fmt.Printf("%s: %v after %d epochs at %.1f%% accuracy (%.1f virtual minutes)\n",
			j.ID(), j.Status(), j.Epochs(), j.Accuracy()*100, j.EndTime().Minutes())
	}
}
