// One shard of a sharded arbiter daemon: a full durable serving stack —
// private engine, executor, write-ahead journal, and checkpoint
// namespace — listening on its own Unix socket, plus the handle the
// router and supervisor share to manage it. Shards are isolation
// domains: a shard crash abandons only that shard's in-memory state, and
// its journal replays it back, exactly as the single-shard durable
// server recovers from a SIGKILL.
package serve

import (
	"fmt"
	"sync"
	"time"

	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/obs"
	"rotary/internal/tpch"
)

// ShardState is one shard's supervision state.
type ShardState int

const (
	// ShardStarting: the initial boot (or a supervised restart) is in
	// progress; the shard is not yet serving.
	ShardStarting ShardState = iota
	// ShardRunning: the shard answers health probes and accepts forwards.
	ShardRunning
	// ShardDown: the shard crashed or wedged; the supervisor will attempt
	// a journal-replaying restart once the backoff expires. Requests for
	// its jobs get typed shard-unavailable replies — never rerouted, since
	// the durable state lives in this shard's journal.
	ShardDown
	// ShardRestarting: a restart attempt is executing right now.
	ShardRestarting
	// ShardRetired: the shard was drained after its jobs migrated off; new
	// work reroutes around it permanently.
	ShardRetired
)

// String names the state for the shards report.
func (s ShardState) String() string {
	switch s {
	case ShardStarting:
		return "starting"
	case ShardRunning:
		return "running"
	case ShardDown:
		return "down"
	case ShardRestarting:
		return "restarting"
	case ShardRetired:
		return "retired"
	default:
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
}

// ShardBuilder constructs one shard's executor stack bound to a fresh
// engine and the shard's durable checkpoint store. It is called at boot
// and again on every supervised restart, so it must build an isolated
// stack each time (own engine, own tracer, own admission controller) and
// register metrics on a registry it returns — the router merges per-shard
// registries into one scrape under a shard label.
type ShardBuilder func(index int, store *core.CheckpointStore) (*core.AQPExecutor, *tpch.Catalog, *obs.Registry, error)

// shardHandle is the router/supervisor view of one shard.
type shardHandle struct {
	index  int
	socket string
	dir    string

	mu        sync.Mutex
	state     ShardState
	srv       *Server
	store     *core.CheckpointStore
	client    *Client // forwarding client (retries)
	probe     *Client // single-attempt health-probe client
	serveDone chan struct{}
	restarts  int
	backoff   time.Duration
	retryAt   time.Time
	lastErr   error
	lastEpoch int
}

// State reads the supervision state.
func (h *shardHandle) State() ShardState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Store reads the shard's durable checkpoint store (refreshed on every
// restart; nil before the first successful start).
func (h *shardHandle) Store() *core.CheckpointStore {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.store
}

// startShard boots (or restarts) one shard: reopen the durable pair —
// replaying the journal — build a fresh executor stack on it, serve the
// shard socket, wait until it answers a health probe, and catch its
// virtual clock up to the router's advance horizon. Any leftover server
// from a previous incarnation is killed first so its journal file handle
// is released before the reopen; a stale shard socket left by a SIGKILL
// is reclaimed by the server's own dial-probe sweep, so one dead socket
// never aborts the whole daemon's startup.
func (r *Router) startShard(h *shardHandle) error {
	h.mu.Lock()
	if old := h.srv; old != nil {
		h.mu.Unlock()
		old.Kill()
		h.mu.Lock()
	}
	if old := h.store; old != nil {
		old.Close()
	}
	h.srv = nil
	h.mu.Unlock()

	var dio diskio.IO
	if r.cfg.DiskIO != nil {
		dio = r.cfg.DiskIO(h.index)
	}
	jl, store, err := OpenDurableIO(h.dir, dio)
	if err != nil {
		return fmt.Errorf("shard %d: %w", h.index, err)
	}
	exec, cat, reg, err := r.cfg.Build(h.index, store)
	if err != nil {
		jl.Close()
		store.Close()
		return fmt.Errorf("shard %d: build: %w", h.index, err)
	}
	srv, err := New(Config{
		Socket:          h.socket,
		Pace:            r.cfg.Pace,
		Tick:            r.cfg.Tick,
		BatchRows:       r.cfg.BatchRows,
		IngressDepth:    r.cfg.IngressDepth,
		IngressBatch:    r.cfg.IngressBatch,
		Obs:             reg,
		Journal:         jl,
		HealProbeSecs:   r.cfg.HealProbeSecs,
		MaxHealFailures: r.cfg.MaxHealFailures,
	}, exec, cat)
	if err != nil {
		jl.Close()
		store.Close()
		return fmt.Errorf("shard %d: %w", h.index, err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve()
		close(done)
	}()

	// The probe client's retry loop doubles as the readiness wait: it
	// redials until the listener is bound, then runs the health op.
	probe, err := NewClient(ClientConfig{
		Socket:         h.socket,
		DialTimeout:    250 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		Attempts:       25,
		RequestTimeout: r.cfg.RequestTimeout,
	})
	if err == nil {
		var resp Response
		resp, err = probe.Do(Message{Op: "health"})
		if err == nil {
			// Clock catch-up: a restart rewinds the shard to its last
			// journaled position; advance it back to the furthest horizon the
			// router has broadcast so it rejoins its peers' timeline.
			if target := r.virtualTargetGet(); target > resp.VirtualNow {
				_, err = probe.Do(Message{Op: "advance", Seconds: target - resp.VirtualNow})
			}
			h.mu.Lock()
			h.lastEpoch = resp.ServerEpoch
			h.mu.Unlock()
		}
	}
	if err != nil {
		srv.Kill()
		store.Close()
		return fmt.Errorf("shard %d: readiness: %w", h.index, err)
	}
	client, err := NewClient(ClientConfig{
		Socket:         h.socket,
		DialTimeout:    500 * time.Millisecond,
		Backoff:        25 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
		Attempts:       3,
		RequestTimeout: r.cfg.RequestTimeout,
	})
	if err != nil {
		srv.Kill()
		store.Close()
		return fmt.Errorf("shard %d: %w", h.index, err)
	}

	h.mu.Lock()
	wasRestart := h.restarts > 0 || h.state == ShardRestarting || h.state == ShardDown
	h.srv = srv
	h.store = store
	h.client = client
	h.probe = probe
	h.serveDone = done
	h.state = ShardRunning
	h.backoff = 0
	h.lastErr = nil
	if wasRestart {
		h.restarts++
	}
	h.mu.Unlock()
	if wasRestart {
		r.met.restarts[h.index].Inc()
	}
	r.met.shardUp[h.index].Set(1)
	return nil
}
