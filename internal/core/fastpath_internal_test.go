package core

import (
	"testing"

	"rotary/internal/cluster"
	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// White-box tests for the fast-path internals: signature sensitivity,
// template replay and its pointer verification, the cache bound, and
// the sorted running-set presentation the whole determinism story rests
// on. The synthetic queues come from the arbiter bench harness
// (arbbench.go) — deterministic jobs with realistic mid-run state.

func benchCtx(jobs []*AQPJob) *AQPContext {
	return &AQPContext{
		Now:          sim.Time(500),
		Pending:      jobs,
		FreeThreads:  8,
		TotalThreads: 8,
		FreeMemMB:    1 << 20,
		TotalMemMB:   1 << 20,
	}
}

func grantsEqual(a, b []AQPGrant) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunningJobsSortedByID: the executors present ctx.Running sorted by
// job ID. Map iteration order is randomized per process, so feeding the
// running map in any insertion order must still yield one canonical
// slice — repeatedly, since the scratch slice is reused.
func TestRunningJobsSortedByID(t *testing.T) {
	jobs := synthAQPQueue(9, 3)
	e := NewAQPExecutor(DefaultAQPExecConfig(1e6), NewRotaryAQP(nil), nil)
	// Insert in a scrambled order; the map will scramble further.
	for _, i := range []int{4, 0, 8, 2, 6, 1, 7, 3, 5} {
		e.running[jobs[i].id] = jobs[i]
	}
	for round := 0; round < 5; round++ {
		got := e.runningJobs()
		if len(got) != len(jobs) {
			t.Fatalf("round %d: %d jobs, want %d", round, len(got), len(jobs))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].id >= got[i].id {
				t.Fatalf("round %d: running set not sorted: %q before %q", round, got[i-1].id, got[i].id)
			}
		}
	}

	dltJobs, err := synthDLTQueue(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDLTExecutor(DefaultDLTExecConfig(), NewRotaryDLT(0.5, nil, nil), nil)
	for _, i := range []int{3, 6, 0, 5, 1, 4, 2} {
		d.running[dltJobs[i].id] = dltJobs[i]
	}
	for round := 0; round < 5; round++ {
		got := d.runningJobs()
		for i := 1; i < len(got); i++ {
			if got[i-1].id >= got[i].id {
				t.Fatalf("round %d: DLT running set not sorted: %q before %q", round, got[i-1].id, got[i].id)
			}
		}
	}
}

// TestAQPFastPathHitReplaysIdentically: repeating the same arbitration
// converges onto the cache (Rotary-AQP's first call mutates epoch
// batches, so the state settles after one round) and every replay
// returns exactly the slow path's grants and side effects.
func TestAQPFastPathHitReplaysIdentically(t *testing.T) {
	repo := synthAQPRepo(16, 1)
	jobs := synthAQPQueue(30, 1)
	sched := NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
	f := newAQPFastPath(sched)
	ctx := benchCtx(jobs)

	g1 := f.assign(ctx)
	g2 := f.assign(ctx)
	g3 := f.assign(ctx)
	if len(g1) == 0 {
		t.Fatal("no grants issued; the test exercises nothing")
	}
	if !grantsEqual(g2, g3) || !grantsEqual(g1, g2) {
		t.Fatal("repeated identical arbitrations returned different grants")
	}
	if f.stats.Hits == 0 {
		t.Fatalf("no cache hit after identical repeats: %+v", f.stats)
	}
	// The replayed decision must also reproduce the SetEpochBatches side
	// effects: compare against a fresh slow-path run on an identical queue.
	jobs2 := synthAQPQueue(30, 1)
	sched2 := NewRotaryAQP(estimate.NewAccuracyProgress(synthAQPRepo(16, 1), 3))
	ctx2 := benchCtx(jobs2)
	sched2.Assign(ctx2)
	sched2.Assign(ctx2)
	for i := range jobs {
		if jobs[i].epochBatches != jobs2[i].epochBatches {
			t.Fatalf("job %d epochBatches diverged: fast=%d slow=%d", i, jobs[i].epochBatches, jobs2[i].epochBatches)
		}
	}
}

// TestAQPSignatureSensitivity: every profiled input must move the
// signature — clock, capacity, queue membership, per-job state, and the
// policy's own state fingerprint via the estimator version.
func TestAQPSignatureSensitivity(t *testing.T) {
	repo := synthAQPRepo(8, 2)
	jobs := synthAQPQueue(6, 2)
	sched := NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
	f := newAQPFastPath(sched)
	prof := sched.ArbiterProfile()
	ctx := benchCtx(jobs)
	base := f.signature(prof, ctx)

	check := func(name string, mutate, restore func()) {
		t.Helper()
		mutate()
		if got := f.signature(prof, ctx); got == base {
			t.Errorf("%s: signature unchanged", name)
		}
		restore()
		if got := f.signature(prof, ctx); got != base {
			t.Errorf("%s: signature not restored — mutation leaked", name)
		}
	}

	check("clock", func() { ctx.Now += 1 }, func() { ctx.Now -= 1 })
	check("free threads", func() { ctx.FreeThreads-- }, func() { ctx.FreeThreads++ })
	check("free memory", func() { ctx.FreeMemMB -= 64 }, func() { ctx.FreeMemMB += 64 })
	check("queue length", func() { ctx.Pending = jobs[:5] }, func() { ctx.Pending = jobs })
	check("job epochs", func() { jobs[0].epochs++ }, func() { jobs[0].epochs-- })
	check("job crash dirt", func() { jobs[1].needsRestore = true }, func() { jobs[1].needsRestore = false })
	check("job epoch batches", func() { jobs[2].epochBatches++ }, func() { jobs[2].epochBatches-- })
	check("running set", func() { ctx.Running = jobs[5:6] }, func() { ctx.Running = nil })

	// Estimator state: adding a history record bumps the repository
	// version, which must move the policy's state fingerprint (and hence
	// any signature built from it).
	repo.AddAQP(estimate.AQPRecord{ID: "sens", Query: "bench-q0", Class: "light", BatchRows: 2000,
		Curve: []estimate.Point{{X: 1, Y: 0.1}, {X: 2, Y: 0.2}}})
	prof2 := sched.ArbiterProfile()
	if prof2.StateFingerprint == prof.StateFingerprint {
		t.Error("estimator version bump did not move the state fingerprint")
	}
	if f.signature(prof2, ctx) == base {
		t.Error("estimator version bump did not move the signature")
	}
}

// TestDLTSignatureSensitivity mirrors the AQP checks for the DLT key:
// device fleet, queue state, and TEE/TME repository versions.
func TestDLTSignatureSensitivity(t *testing.T) {
	repo := synthDLTRepo(8, 2)
	jobs, err := synthDLTQueue(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	f := newDLTFastPath(sched)
	prof := sched.ArbiterProfile()
	ctx := &DLTContext{Now: sim.Time(500), Pending: jobs}
	for i := 0; i < 4; i++ {
		ctx.FreeGPUs = append(ctx.FreeGPUs, cluster.GPU{ID: i, MemMB: 8192})
	}
	base := f.signature(prof, ctx)

	check := func(name string, mutate, restore func()) {
		t.Helper()
		mutate()
		if got := f.signature(prof, ctx); got == base {
			t.Errorf("%s: signature unchanged", name)
		}
		restore()
		if got := f.signature(prof, ctx); got != base {
			t.Errorf("%s: signature not restored — mutation leaked", name)
		}
	}

	check("device fleet", func() { ctx.FreeGPUs = ctx.FreeGPUs[:3] }, func() { ctx.FreeGPUs = ctx.FreeGPUs[:4] })
	check("device memory", func() { ctx.FreeGPUs[0].MemMB -= 100 }, func() { ctx.FreeGPUs[0].MemMB += 100 })
	check("queue length", func() { ctx.Pending = jobs[:5] }, func() { ctx.Pending = jobs })
	check("job epochs", func() { jobs[0].epochs++ }, func() { jobs[0].epochs-- })
	check("job convergence", func() { jobs[1].convergedAtEpoch = 3 }, func() { jobs[1].convergedAtEpoch = 0 })
	check("running set", func() { ctx.Running = jobs[5:6] }, func() { ctx.Running = nil })

	// The policy is clock-free: Now must NOT be part of the key, or live
	// runs could never hit.
	ctx.Now += 100
	if f.signature(prof, ctx) != base {
		t.Error("clock-free policy's signature moved with the clock")
	}
	ctx.Now -= 100

	repo.AddDLT(estimate.DLTRecord{ID: "sens", Model: "lenet", Family: "lenet", Dataset: "cifar10",
		ParamsM: 0.06, BatchSize: 16, Optimizer: "sgd", LR: 0.01, Epochs: 2,
		AccCurve: []float64{0.3, 0.4}, PeakMemMB: 500, EpochSecs: 10})
	prof2 := sched.ArbiterProfile()
	if prof2.StateFingerprint == prof.StateFingerprint {
		t.Error("repository version bump did not move the state fingerprint")
	}
	if f.signature(prof2, ctx) == base {
		t.Error("repository version bump did not move the signature")
	}
}

// TestAQPTemplateReplayVerifiesPointers: a template only replays when
// every recorded (index, job pointer) pair still matches the queue — a
// signature collision or stale entry degrades to a miss, never to a
// grant for the wrong job.
func TestAQPTemplateReplayVerifiesPointers(t *testing.T) {
	jobs := synthAQPQueue(3, 4)
	tpl := &aqpTemplate{
		pendingLen: 2,
		grants:     []aqpTemplateGrant{{job: jobs[0], idx: 0, threads: 2, reserve: 64}},
		batches:    []aqpBatchDiff{{job: jobs[1], idx: 1, n: 7}},
	}

	ok := func(p []*AQPJob) bool {
		_, replayed := tpl.replay(&AQPContext{Pending: p})
		return replayed
	}
	if !ok([]*AQPJob{jobs[0], jobs[1]}) {
		t.Fatal("matching queue refused")
	}
	if jobs[1].epochBatches != 7 {
		t.Fatalf("batch diff not applied on replay: %d", jobs[1].epochBatches)
	}
	if ok([]*AQPJob{jobs[1], jobs[0]}) {
		t.Error("reordered queue replayed")
	}
	if ok([]*AQPJob{jobs[0], jobs[2]}) {
		t.Error("substituted job replayed")
	}
	if ok([]*AQPJob{jobs[0], jobs[1], jobs[2]}) {
		t.Error("longer queue replayed")
	}
	if ok([]*AQPJob{jobs[0]}) {
		t.Error("shorter queue replayed")
	}

	grants, replayed := tpl.replay(&AQPContext{Pending: []*AQPJob{jobs[0], jobs[1]}})
	if !replayed || len(grants) != 1 || grants[0].Job != jobs[0] || grants[0].Threads != 2 || grants[0].ReserveMemMB != 64 {
		t.Fatalf("replayed grants wrong: %+v (ok=%v)", grants, replayed)
	}

	dltJobs, err := synthDLTQueue(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	dtpl := &dltTemplate{
		pendingLen: 2,
		placements: []dltTemplatePlacement{{job: dltJobs[0], idx: 0, device: 1, estMemMB: 2048}},
	}
	if _, replayed := dtpl.replay(&DLTContext{Pending: []*DLTJob{dltJobs[1], dltJobs[0]}}); replayed {
		t.Error("reordered DLT queue replayed")
	}
	placements, replayed := dtpl.replay(&DLTContext{Pending: []*DLTJob{dltJobs[0], dltJobs[1]}})
	if !replayed || len(placements) != 1 || placements[0].Job != dltJobs[0] || placements[0].Device != 1 {
		t.Fatalf("replayed placements wrong: %+v (ok=%v)", placements, replayed)
	}
}

// TestFastPathCacheBoundClears: the template cache never exceeds its
// bound; overflow wipes the map and keeps recording.
func TestFastPathCacheBoundClears(t *testing.T) {
	sched := NewRotaryAQP(estimate.NewAccuracyProgress(synthAQPRepo(4, 5), 3))
	f := newAQPFastPath(sched)
	// Distinct signatures via the exact-capacity fold; empty queues keep
	// each miss O(1).
	n := fastPathCacheBound + 88
	for i := 0; i < n; i++ {
		ctx := &AQPContext{Now: sim.Time(1), FreeThreads: i + 1, TotalThreads: n, FreeMemMB: 1024, TotalMemMB: 1024}
		f.assign(ctx)
		if len(f.cache) > fastPathCacheBound {
			t.Fatalf("cache grew past the bound: %d", len(f.cache))
		}
	}
	if f.stats.Misses != uint64(n) {
		t.Fatalf("misses = %d, want %d", f.stats.Misses, n)
	}
	if len(f.cache) != 88 {
		t.Fatalf("cache size after overflow = %d, want 88 (cleared once, then refilled)", len(f.cache))
	}
}

// TestFastPathUnprofiledSchedulerBypasses: a scheduler without an
// ArbiterProfile must pass straight through with only the bypass
// counter moving.
func TestFastPathUnprofiledSchedulerBypasses(t *testing.T) {
	jobs := synthAQPQueue(4, 6)
	f := newAQPFastPath(plainAQPSched{})
	ctx := benchCtx(jobs)
	for i := 0; i < 3; i++ {
		f.assign(ctx)
	}
	if f.stats.Bypassed != 3 || f.stats.Hits != 0 || f.stats.Misses != 0 {
		t.Fatalf("unprofiled scheduler stats: %+v", f.stats)
	}
	if len(f.cache) != 0 {
		t.Fatalf("bypassed arbitrations populated the cache: %d entries", len(f.cache))
	}
}

// plainAQPSched implements AQPScheduler but not ProfiledAQPScheduler.
type plainAQPSched struct{}

func (plainAQPSched) Name() string { return "plain-test" }
func (plainAQPSched) Assign(ctx *AQPContext) []AQPGrant {
	if len(ctx.Pending) == 0 || ctx.FreeThreads == 0 {
		return nil
	}
	return []AQPGrant{{Job: ctx.Pending[0], Threads: 1}}
}
