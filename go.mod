module rotary

go 1.23
