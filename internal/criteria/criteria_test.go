package criteria

import (
	"strings"
	"testing"
)

func TestParsePaperExamples(t *testing.T) {
	cases := []struct {
		input     string
		kind      Kind
		metric    string
		threshold float64
		deadline  Deadline
		cmdPrefix string
	}{
		{
			"SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='CUST1' ACC MIN 95% WITHIN 3600 SECONDS",
			Accuracy, "ACC", 0.95, Deadline{3600, Seconds}, "SELECT AVG(PROFIT)",
		},
		{
			"TRAIN RESNET-50 ON CIFAR10 ACC DELTA 0.001 WITHIN 30 EPOCHS",
			Convergence, "ACC", 0.001, Deadline{30, Epochs}, "TRAIN RESNET-50 ON CIFAR10",
		},
		{
			"TRAIN MOBILENET ON CIFAR10 FOR 2 HOURS",
			Runtime, "", 0, Deadline{2, Hours}, "TRAIN MOBILENET ON CIFAR10",
		},
		{
			"train x on y loss delta 0.01 within 90 minutes",
			Convergence, "LOSS", 0.01, Deadline{90, Minutes}, "train x on y",
		},
		{
			"SELECT 1 F1 MIN 0.8 WITHIN 10 EPOCHS",
			Accuracy, "F1", 0.8, Deadline{10, Epochs}, "SELECT 1",
		},
	}
	for _, c := range cases {
		cmd, crit, err := Parse(c.input)
		if err != nil {
			t.Errorf("%q: %v", c.input, err)
			continue
		}
		if crit.Kind != c.kind {
			t.Errorf("%q: kind %v, want %v", c.input, crit.Kind, c.kind)
		}
		if c.metric != "" && crit.Metric != c.metric {
			t.Errorf("%q: metric %q, want %q", c.input, crit.Metric, c.metric)
		}
		if c.threshold != 0 && crit.Threshold != c.threshold {
			t.Errorf("%q: threshold %v, want %v", c.input, crit.Threshold, c.threshold)
		}
		if crit.Deadline != c.deadline {
			t.Errorf("%q: deadline %v, want %v", c.input, crit.Deadline, c.deadline)
		}
		if !strings.HasPrefix(cmd, c.cmdPrefix) {
			t.Errorf("%q: command %q lost prefix %q", c.input, cmd, c.cmdPrefix)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT 1",                               // no clause
		"SELECT 1 ACC MIN 95%",                   // truncated
		"SELECT 1 ACC MIN 95% WITHIN ten EPOCHS", // bad number
		"SELECT 1 ACC MIN 95% WITHIN 10 PARSECS", // bad unit
		"SELECT 1 ACC MIN abc WITHIN 10 EPOCHS",  // bad threshold
		"SELECT 1 ACC MIN 95% UNTIL 10 EPOCHS",   // wrong keyword
		"SELECT 1 FOR -2 HOURS",                  // non-positive runtime
		"SELECT 1 ACC DELTA 2 WITHIN 10 EPOCHS",  // delta out of range
		"SELECT 1 ACC MIN 150% WITHIN 10 EPOCHS", // accuracy out of range
	}
	for _, input := range bad {
		if _, _, err := Parse(input); err == nil {
			t.Errorf("%q parsed without error", input)
		}
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewAccuracy("acc", 0, Deadline{10, Epochs}); err == nil {
		t.Error("zero accuracy accepted")
	}
	if _, err := NewAccuracy("acc", 0.9, Deadline{0, Epochs}); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := NewConvergence("acc", 1, Deadline{10, Epochs}); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := NewRuntime(Deadline{-1, Hours}); err == nil {
		t.Error("negative runtime accepted")
	}
	c, err := NewAccuracy("f1", 0.5, Deadline{5, Minutes})
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric != "F1" {
		t.Errorf("metric not canonicalized: %q", c.Metric)
	}
}

func TestDeadlineConversions(t *testing.T) {
	if s, ok := (Deadline{2, Hours}).DeadlineSeconds(); !ok || s != 7200 {
		t.Errorf("2 hours = %v, %v", s, ok)
	}
	if s, ok := (Deadline{3, Minutes}).DeadlineSeconds(); !ok || s != 180 {
		t.Errorf("3 minutes = %v, %v", s, ok)
	}
	if _, ok := (Deadline{5, Epochs}).DeadlineSeconds(); ok {
		t.Error("epoch deadline converted to seconds")
	}
	if e, ok := (Deadline{5, Epochs}).DeadlineEpochs(); !ok || e != 5 {
		t.Errorf("5 epochs = %v, %v", e, ok)
	}
	if (Deadline{5, Epochs}).IsTime() {
		t.Error("epoch deadline claims to be wall time")
	}
}

func TestExpired(t *testing.T) {
	timeC, _ := NewAccuracy("acc", 0.9, Deadline{100, Seconds})
	if timeC.Expired(99, 1000) {
		t.Error("expired before its wall deadline")
	}
	if !timeC.Expired(100, 0) {
		t.Error("not expired at its wall deadline")
	}
	epochC, _ := NewConvergence("acc", 0.01, Deadline{10, Epochs})
	if epochC.Expired(1e9, 9) {
		t.Error("epoch criterion expired on wall time")
	}
	if !epochC.Expired(0, 10) {
		t.Error("epoch criterion not expired at its epoch bound")
	}
	runC, _ := NewRuntime(Deadline{5, Epochs})
	if !runC.Expired(0, 5) {
		t.Error("runtime criterion not complete at target")
	}
}

func TestStringRendering(t *testing.T) {
	a, _ := NewAccuracy("ACC", 0.95, Deadline{3600, Seconds})
	if got := a.String(); !strings.Contains(got, "MIN") || !strings.Contains(got, "95") {
		t.Errorf("accuracy render %q", got)
	}
	c, _ := NewConvergence("ACC", 0.001, Deadline{30, Epochs})
	if got := c.String(); !strings.Contains(got, "DELTA") {
		t.Errorf("convergence render %q", got)
	}
	r, _ := NewRuntime(Deadline{2, Hours})
	if got := r.String(); !strings.Contains(got, "FOR") {
		t.Errorf("runtime render %q", got)
	}
}

// Parsing the rendered form of a criterion appended to a command must
// reproduce the criterion.
func TestRenderParseRoundTrip(t *testing.T) {
	crits := []Criteria{}
	a, _ := NewAccuracy("ACC", 0.8, Deadline{600, Seconds})
	c, _ := NewConvergence("LOSS", 0.003, Deadline{25, Epochs})
	r, _ := NewRuntime(Deadline{90, Minutes})
	crits = append(crits, a, c, r)
	for _, want := range crits {
		input := "RUN SOMETHING " + want.String()
		_, got, err := Parse(input)
		if err != nil {
			t.Errorf("%q: %v", input, err)
			continue
		}
		if got != want {
			t.Errorf("round trip %q: got %+v want %+v", input, got, want)
		}
	}
}
