package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
)

// CI's regression tolerance bands: a fresh run may be at most 15% slower
// (after cross-machine calibration) and allocate at most 10% more per
// decision than the committed baseline.
const (
	arbNsTolerance    = 0.15
	arbAllocTolerance = 0.10
)

// arbiterPolicies enumerates every AQP policy and the DLT path for the
// arbiter microbenchmark. Estimator-backed policies are built against
// the synthetic history repository the harness seeds.
func arbiterPolicies() ([]core.ArbBenchAQPPolicy, []core.ArbBenchDLTPolicy) {
	aqpPols := []core.ArbBenchAQPPolicy{
		{Name: "rotary-aqp", Build: func(repo *estimate.Repository) core.AQPScheduler {
			return core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		}},
		{Name: "round-robin", Build: func(*estimate.Repository) core.AQPScheduler { return baselines.RoundRobinAQP{} }},
		{Name: "edf", Build: func(*estimate.Repository) core.AQPScheduler { return baselines.EDFAQP{} }},
		{Name: "laf", Build: func(*estimate.Repository) core.AQPScheduler { return baselines.LAFAQP{} }},
		{Name: "relaqs", Build: func(*estimate.Repository) core.AQPScheduler { return baselines.ReLAQS{} }},
	}
	dltPols := []core.ArbBenchDLTPolicy{
		{Name: "rotary-dlt", Build: func(repo *estimate.Repository) core.DLTScheduler {
			return core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		}},
		{Name: "srf", Build: func(*estimate.Repository) core.DLTScheduler { return baselines.SRF{} }},
		{Name: "bcf", Build: func(*estimate.Repository) core.DLTScheduler { return baselines.BCF{} }},
		{Name: "laf-dlt", Build: func(*estimate.Repository) core.DLTScheduler { return baselines.LAFDLT{} }},
	}
	return aqpPols, dltPols
}

// runArbiterBench executes `-experiment arbiter`: measure the matrix,
// optionally write the BENCH_<n>.json artifact, and optionally gate
// against a committed baseline (non-nil error on any regression).
func runArbiterBench(seed uint64, out, baseline string, quick bool) error {
	sizes := []int{100, 1000, 10000}
	if quick {
		// CI mode: the 10k tier dominates wall-clock; the shallower tiers
		// still catch any hot-path regression.
		sizes = []int{100, 1000}
	}
	aqpPols, dltPols := arbiterPolicies()
	cfg := core.ArbBenchConfig{
		QueueSizes: sizes,
		Seed:       seed,
		AQP:        aqpPols,
		DLT:        dltPols,
		Log:        func(format string, args ...any) { log.Printf(format, args...) },
	}
	rep, err := core.RunArbiterBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark report to %s\n", out)
	}

	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base core.ArbBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baseline, err)
		}
		// A quick run measures fewer queue depths than the committed full
		// matrix; compare only the depths actually measured (a dropped
		// policy within a measured depth still fails as missing).
		depths := make(map[int]bool, len(sizes))
		for _, s := range sizes {
			depths[s] = true
		}
		filtered := base
		filtered.Cases = nil
		for _, c := range base.Cases {
			if depths[c.Queued] {
				filtered.Cases = append(filtered.Cases, c)
			}
		}
		fails := core.CompareArbBench(&filtered, rep, arbNsTolerance, arbAllocTolerance)
		if len(fails) > 0 {
			// Alloc-heavy cells are sensitive to memory-subsystem noise the
			// CPU-bound calibration spin cannot see. Before declaring a
			// regression, re-measure once and keep each cell's fastest
			// observation: interference clears on the retry, a real
			// regression fails twice.
			log.Printf("%d cell(s) over band; re-measuring to rule out interference", len(fails))
			rerun, err := core.RunArbiterBench(cfg)
			if err != nil {
				return err
			}
			rep = core.MergeArbBenchMin(rep, rerun)
			fails = core.CompareArbBench(&filtered, rep, arbNsTolerance, arbAllocTolerance)
		}
		if len(fails) > 0 {
			for _, f := range fails {
				log.Printf("REGRESSION: %s", f)
			}
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(fails), baseline)
		}
		fmt.Printf("no regressions vs %s (%d baseline cases, ns band +%.0f%%, allocs band +%.0f%%)\n",
			baseline, len(filtered.Cases), 100*arbNsTolerance, 100*arbAllocTolerance)
	}
	return nil
}
