package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// testShardBuilder is the chaos suite's shard stack: a fresh engine,
// round-robin scheduler, private registry, and a trace ring big enough
// to compare byte-for-byte across runs. Each call regenerates the same
// seeded dataset, matching a real daemon restart over the same data.
func testShardBuilder(index int, store *core.CheckpointStore) (*core.AQPExecutor, *tpch.Catalog, *obs.Registry, error) {
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	cfg.Store = store
	cfg.Tracer = core.NewTracer(2048)
	return core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil), cat, reg, nil
}

// startTestRouter boots a sharded daemon with test-speed supervision
// defaults and tears it down with the test.
func startTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = testShardBuilder
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.RestartBackoff == 0 {
		cfg.RestartBackoff = 25 * time.Millisecond
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.Serve(); err != nil {
			t.Errorf("router Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		r.Close()
		<-done
	})
	<-r.Ready()
	return r
}

// waitShardState polls one shard's supervision state until it reaches
// want or the deadline passes.
func waitShardState(t *testing.T, r *Router, shard int, want ShardState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		got, err := r.ShardState(shard)
		if err != nil {
			t.Fatalf("ShardState(%d): %v", shard, err)
		}
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d stuck in %v, want %v within %v", shard, got, want, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitShardRestarted polls until the shard has completed at least one
// supervised restart and is running again.
func waitShardRestarted(t *testing.T, r *Router, shard int, within time.Duration) {
	t.Helper()
	h := r.shards[shard]
	deadline := time.Now().Add(within)
	for {
		h.mu.Lock()
		restarts, state := h.restarts, h.state
		h.mu.Unlock()
		if restarts > 0 && state == ShardRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d not restarted within %v (restarts=%d state=%v)", shard, within, restarts, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// shardChaosPlan draws a seeded multi-shard workload — eight feasible
// jobs plus one infeasible job that must expire in every run — and
// optionally merges in the seed's deterministic shard-kill point. The
// feasible deadlines carry slack well beyond the modeled recovery cost:
// status equality across a crash is only defined for jobs whose control
// outcome does not land within the resume penalty of their deadline.
func shardChaosPlan(seed uint64, withKill bool) []chaosEvent {
	rng := sim.NewRand(seed ^ 0x54a3d)
	queries := []string{"q1", "q3", "q5", "q6"}
	var evs []chaosEvent
	for i := 0; i < 8; i++ {
		evs = append(evs, chaosEvent{
			at:   rng.Range(0, 280),
			kind: "submit",
			id:   fmt.Sprintf("s%d-%d", seed, i),
			stmt: fmt.Sprintf("%s ACC MIN %.0f%% WITHIN 2000 SECONDS", queries[rng.IntN(len(queries))], rng.Range(50, 70)),
		})
	}
	evs = append(evs, chaosEvent{
		at:   rng.Range(0, 280),
		kind: "submit",
		id:   fmt.Sprintf("stight-%d", seed),
		stmt: "q1 ACC MIN 99% WITHIN 3 SECONDS",
	})
	if withKill {
		evs = append(evs, chaosEvent{at: faults.NewCrashSchedule(seed, 300, 1).Points()[0], kind: "kill"})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// runShardChaosPlan drives one plan against a 3-shard router, killing
// the seed's victim shard at the kill point and waiting for its
// supervised restart. It returns every job's terminal status and each
// shard's full rendered trace.
func runShardChaosPlan(t *testing.T, seed uint64, withKill bool) (map[string]string, []string) {
	t.Helper()
	const shards = 3
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: shards,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	c := dial(t, r.cfg.Socket)
	victim := faults.VictimShards(seed, 1, shards)[0]
	now := 0.0
	var submitted []string
	for _, ev := range shardChaosPlan(seed, withKill) {
		if ev.at > now {
			resp := c.call(t, Message{Op: "advance", Seconds: ev.at - now})
			if !resp.OK {
				t.Fatalf("advance to %.1f: %+v", ev.at, resp)
			}
			now = resp.VirtualNow
		}
		switch ev.kind {
		case "submit":
			resp := c.call(t, Message{Op: "submit", ID: ev.id, ReqID: "req-" + ev.id, Statement: ev.stmt})
			if !resp.OK {
				t.Fatalf("submit %s: %+v", ev.id, resp)
			}
			submitted = append(submitted, ev.id)
		case "kill":
			if err := r.KillShard(victim); err != nil {
				t.Fatalf("KillShard(%d): %v", victim, err)
			}
			// The supervisor must notice the corpse, replay the journal, and
			// catch the clock up — unattended. Wait on the restart counter,
			// not the state: the state still reads Running until the next
			// probe finds the corpse.
			waitShardRestarted(t, r, victim, 20*time.Second)
		}
	}
	if resp := c.call(t, Message{Op: "advance", Seconds: 3000}); !resp.OK {
		t.Fatalf("final advance: %+v", resp)
	}
	statuses := map[string]string{}
	for _, id := range submitted {
		resp := c.call(t, Message{Op: "status", ID: id})
		if !resp.OK {
			t.Fatalf("job %s silently dropped: %+v", id, resp)
		}
		if resp.Status == "" || resp.Status == "pending" || resp.Status == "running" {
			t.Fatalf("job %s never terminated: %+v", id, resp)
		}
		statuses[id] = resp.Status
	}
	traces := make([]string, shards)
	for i := 0; i < shards; i++ {
		tr := c.call(t, Message{Op: "trace-tail", Shard: i, N: 1 << 20})
		if !tr.OK {
			t.Fatalf("trace-tail shard %d: %+v", i, tr)
		}
		traces[i] = tr.Report
	}
	// ROTARY_CHAOS_ARTIFACTS names a directory to dump each run's
	// per-shard traces into; CI uploads it when a seed fails so the
	// control/chaos divergence can be diffed offline.
	if dir := os.Getenv("ROTARY_CHAOS_ARTIFACTS"); dir != "" {
		label := "control"
		if withKill {
			label = "chaos"
		}
		for i, trace := range traces {
			name := fmt.Sprintf("seed%d-%s-shard%d.trace", seed, label, i)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(trace), 0o644); err != nil {
				t.Logf("trace artifact %s: %v", name, err)
			}
		}
	}
	if withKill {
		sh := c.call(t, Message{Op: "shards"})
		if !sh.OK || len(sh.Shards) != shards {
			t.Fatalf("shards report: %+v", sh)
		}
		for _, info := range sh.Shards {
			if info.State != "running" {
				t.Fatalf("shard %d ended the chaos run %s", info.Index, info.State)
			}
			if info.Index == victim && info.Restarts == 0 {
				t.Fatalf("victim shard %d reports zero supervised restarts", victim)
			}
		}
	}
	dr := c.call(t, Message{Op: "drain"})
	if !dr.OK {
		t.Fatalf("drain: %+v", dr)
	}
	if dr.Terminal != dr.Jobs {
		t.Fatalf("drain left %d/%d jobs unterminated", dr.Jobs-dr.Terminal, dr.Jobs)
	}
	return statuses, traces
}

// TestShardChaosKillOne is the multi-shard chaos suite: for each seed, a
// control run (no kills) and a chaos run (the seed's victim shard is
// SIGKILLed at the seed's crash point and supervised back to life)
// execute the same workload. Fault isolation demands the surviving
// shards never notice: their traces must be bit-identical to the
// control run's. The killed shard's jobs must reach the control run's
// terminal statuses after the journal-replaying restart.
func TestShardChaosKillOne(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			control, controlTraces := runShardChaosPlan(t, seed, false)
			chaos, chaosTraces := runShardChaosPlan(t, seed, true)
			if len(chaos) != len(control) {
				t.Fatalf("chaos run tracked %d jobs, control %d", len(chaos), len(control))
			}
			for id, want := range control {
				if chaos[id] != want {
					t.Errorf("job %s: chaos run ended %q, control %q", id, chaos[id], want)
				}
			}
			if want := control[fmt.Sprintf("stight-%d", seed)]; want != "expired" {
				t.Errorf("infeasible job ended %q in control, want expired", want)
			}
			victim := faults.VictimShards(seed, 1, 3)[0]
			for i := range controlTraces {
				if i == victim {
					continue // the victim replays; only survivors must be undisturbed
				}
				if chaosTraces[i] != controlTraces[i] {
					t.Errorf("surviving shard %d's trace diverged under chaos:\n--- control ---\n%s\n--- chaos ---\n%s",
						i, controlTraces[i], chaosTraces[i])
				}
			}
			if controlTraces[victim] == "" {
				t.Logf("note: victim shard %d saw no trace events this seed", victim)
			}
		})
	}
}

// TestShardChaosMigration compares a run that live-migrates a job
// between shards mid-flight against a stay-put control: the migrated
// job (and every bystander) must reach the same terminal status, the
// checkpoint frame must leave the source shard's durable namespace, and
// status must follow the job to its new home.
func TestShardChaosMigration(t *testing.T) {
	ids := []string{"mg-a", "mg-b", "mg-c", "mg-d"}
	run := func(t *testing.T, migrate bool) map[string]string {
		base := t.TempDir()
		r := startTestRouter(t, RouterConfig{
			Socket: filepath.Join(base, "r.sock"),
			Shards: 2,
			Dir:    filepath.Join(base, "state"),
			Pace:   0,
		})
		c := dial(t, r.cfg.Socket)
		// Deadlines far beyond the work: migration shifts contention (and
		// adds drain/resume costs), so status equality with the stay-put
		// control is only defined when the deadline is not the binding
		// constraint for any job.
		shardOf := map[string]int{}
		for _, id := range ids {
			resp := c.call(t, Message{Op: "submit", ID: id, Statement: "q1 ACC MIN 99% WITHIN 3600 SECONDS"})
			if !resp.OK {
				t.Fatalf("submit %s: %+v", id, resp)
			}
			shardOf[id] = resp.Shard
		}
		if resp := c.call(t, Message{Op: "advance", Seconds: 20}); !resp.OK {
			t.Fatalf("advance: %+v", resp)
		}
		if migrate {
			mover := ids[0]
			src, dst := shardOf[mover], 1-shardOf[mover]
			mr := c.call(t, Message{Op: "migrate", ID: mover, Shard: dst})
			if !mr.OK || mr.Code == CodeMigrateNoop || mr.Shard != dst {
				t.Fatalf("migrate %s %d→%d: %+v", mover, src, dst, mr)
			}
			// Status follows the job to its new shard.
			st := c.call(t, Message{Op: "status", ID: mover})
			if !st.OK || st.Shard != dst {
				t.Fatalf("status after migrate answered from shard %d: %+v", st.Shard, st)
			}
			// The source's durable namespace no longer holds the frame.
			if _, err := r.shards[src].Store().Export(mover); err == nil {
				t.Fatalf("source shard %d still holds %s's checkpoint after migration", src, mover)
			}
		}
		if resp := c.call(t, Message{Op: "advance", Seconds: 8000}); !resp.OK {
			t.Fatalf("final advance: %+v", resp)
		}
		got := map[string]string{}
		for _, id := range ids {
			resp := c.call(t, Message{Op: "status", ID: id})
			if !resp.OK || !terminalStatus(resp.Status) {
				t.Fatalf("job %s not terminal: %+v", id, resp)
			}
			got[id] = resp.Status
		}
		if dr := c.call(t, Message{Op: "drain"}); !dr.OK {
			t.Fatalf("drain: %+v", dr)
		}
		return got
	}
	control := run(t, false)
	migrated := run(t, true)
	for id, want := range control {
		if migrated[id] != want {
			t.Errorf("job %s: migrated run ended %q, stay-put control %q", id, migrated[id], want)
		}
	}
}
