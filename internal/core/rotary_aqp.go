package core

import (
	"math"
	"sort"

	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// RotaryAQP implements Algorithm 2, the Rotary-AQP resource arbitration:
//
//  1. estimate each pending job's memory consumption m̂ and assign its
//     adaptive running epoch (proportional to m̂, §IV-A);
//  2. estimate each job's accuracy progress φ̂ for the next epoch by the
//     joint historical+real-time fit and build a priority queue;
//  3. allocate one hardware thread to every job that fits in memory, then
//     allocate the remaining threads one at a time to the highest-φ̂ jobs.
type RotaryAQP struct {
	// Estimator predicts next-epoch accuracy progress. The Fig. 9
	// sensitivity experiment swaps in estimate.RandomProgress here.
	Estimator estimate.ProgressEstimator
	// AdaptiveEpochs enables §IV-A's memory-proportional running epochs
	// (ablation: fixed epochs when false).
	AdaptiveEpochs bool
	// MemoryAware books memory reservations (ablation: oversubscribe when
	// false, the ReLAQS-style behaviour).
	MemoryAware bool
	// BaseEpochBatches is the running-epoch length of the lightest job.
	BaseEpochBatches int
	// MaxThreadsPerJob caps phase-two growth so one job cannot absorb the
	// whole pool.
	MaxThreadsPerJob int
}

// NewRotaryAQP returns the paper-default configuration.
func NewRotaryAQP(est estimate.ProgressEstimator) *RotaryAQP {
	return &RotaryAQP{
		Estimator:        est,
		AdaptiveEpochs:   true,
		MemoryAware:      true,
		BaseEpochBatches: 4,
		MaxThreadsPerJob: 8,
	}
}

// Name implements AQPScheduler.
func (r *RotaryAQP) Name() string { return "rotary-aqp" }

// ArbiterProfile implements ProfiledAQPScheduler. Cachability is
// decided at runtime from the estimator: the joint historical+real-time
// fit is a pure function of the repository (its mutation counter is the
// state fingerprint), but a non-Versioned estimator — RandomProgress
// consumes an RNG draw per call — has hidden state the signature cannot
// cover, so the profile degrades to uncachable. The policy reads the
// clock (aging, deadline slack) and the running set (the adaptive-epoch
// memory reference scans pending ∪ running), hence both flags.
func (r *RotaryAQP) ArbiterProfile() ArbiterProfile {
	v, ok := r.Estimator.(estimate.Versioned)
	if !ok {
		return ArbiterProfile{}
	}
	h := fpMix(fpInit, v.EstimatorVersion())
	h = fpBool(h, r.AdaptiveEpochs)
	h = fpBool(h, r.MemoryAware)
	h = fpMix(h, uint64(r.BaseEpochBatches))
	h = fpMix(h, uint64(r.MaxThreadsPerJob))
	return ArbiterProfile{
		Cachable:         true,
		TimeDependent:    true,
		ReadsRunning:     true,
		StateFingerprint: h,
	}
}

// Assign implements AQPScheduler (Algorithm 2).
func (r *RotaryAQP) Assign(ctx *AQPContext) []AQPGrant {
	if len(ctx.Pending) == 0 || ctx.FreeThreads == 0 {
		return nil
	}

	// Adaptive running epochs: every job's epoch length is proportionate
	// to its estimated memory consumption, normalized by the lightest job
	// in sight so long-running heavy jobs return comparable intermediate
	// results (§IV-A).
	if r.AdaptiveEpochs {
		ref := math.Inf(1)
		for _, j := range append(append([]*AQPJob(nil), ctx.Pending...), ctx.Running...) {
			if m := j.EstMemMB(); m > 0 && m < ref {
				ref = m
			}
		}
		if !math.IsInf(ref, 1) {
			for _, j := range ctx.Pending {
				ratio := j.EstMemMB() / ref
				n := int(math.Ceil(float64(r.BaseEpochBatches) * ratio))
				if n > 16*r.BaseEpochBatches {
					n = 16 * r.BaseEpochBatches
				}
				if n < r.BaseEpochBatches {
					n = r.BaseEpochBatches
				}
				j.SetEpochBatches(n)
			}
		}
	}

	// Priority: estimated accuracy progress after the next running epoch,
	// gated by deadline feasibility.
	type scored struct {
		job *AQPJob
		phi float64
	}
	pq := make([]scored, 0, len(ctx.Pending))
	for _, j := range ctx.Pending {
		pq = append(pq, scored{job: j, phi: r.priority(ctx.Now, j)})
	}
	sort.SliceStable(pq, func(a, b int) bool { return pq[a].phi > pq[b].phi })

	// Phase 1: one hardware thread per fitting job, in priority order.
	freeThreads := ctx.FreeThreads
	freeMem := ctx.FreeMemMB
	grants := make([]AQPGrant, 0, len(pq))
	granted := make(map[string]int) // job ID -> grant index+1
	for _, s := range pq {
		if freeThreads == 0 {
			break
		}
		reserve := s.job.EstMemMB()
		if !r.MemoryAware {
			reserve = 0
		}
		if reserve > freeMem {
			continue // does not fit in memory; deferred
		}
		grants = append(grants, AQPGrant{Job: s.job, Threads: 1, ReserveMemMB: reserve})
		granted[s.job.ID()] = len(grants)
		freeThreads--
		freeMem -= reserve
	}

	// Phase 2: remaining threads go to the highest-priority granted jobs
	// first, each filled to the per-job cap before the next is grown —
	// Algorithm 2's "allocate extra 1 hardware thread to job j_k" walked
	// in priority-queue order.
	for _, s := range pq {
		if freeThreads == 0 {
			break
		}
		gi, ok := granted[s.job.ID()]
		if !ok {
			continue
		}
		for grants[gi-1].Threads < r.MaxThreadsPerJob && freeThreads > 0 {
			grants[gi-1].Threads++
			freeThreads--
		}
	}
	return grants
}

// priority scores a pending job for the queue. This is where the
// progress estimator earns its keep (§III-C): the fitted progress-runtime
// curve gives the job's achievable accuracy rate, from which the policy
// derives the speedup the job needs to attain its threshold before its
// deadline. The bands, highest first:
//
//	2.5        trial — never-run jobs go first so the estimator gets
//	           real-time data;
//	2.0        finishing — jobs already at their (margined) threshold
//	           free their resources next epoch;
//	(1, 2]     feasible — ranked by required speedup, so extra threads
//	           flow to the jobs that genuinely need them to attain;
//	[0, 0.5)   hopeless — the curve cannot reach the threshold in time
//	           even at full speedup; resources are constrained, but
//	           deferred jobs age back in so the envelope can settle
//	           their fate early instead of them waiting to the deadline.
func (r *RotaryAQP) priority(now sim.Time, j *AQPJob) float64 {
	if j.Epochs() == 0 {
		return 2.5
	}
	thr := j.Criteria().Threshold
	estimate := func(atSecs float64) (float64, bool) {
		if r.Estimator == nil {
			return 0, false
		}
		return r.Estimator.EstimateAt(j.Query().Name(), j.Class(), j.BatchRows(), j.RealtimeCurve(), atSecs)
	}
	hopeless := func(base float64) float64 {
		aging := (now - j.LastRunAt()).Seconds() / j.DeadlineSecs()
		if aging > 1 {
			aging = 1
		}
		if aging < 0 {
			aging = 0
		}
		return base + 0.3*aging
	}

	target := thr * 1.03
	if target > thr+0.03 {
		target = thr + 0.03
	}
	a0 := j.EstimatedAccuracy()
	if thr <= 0 || a0 >= target {
		return 2.0
	}
	remaining := j.DeadlineSecs() - (now - j.Arrival()).Seconds()
	if remaining <= 0 {
		return 0
	}

	// Achievable accuracy rate per single-thread-equivalent second from
	// the fitted curve; the job's own last stretch is the fallback.
	t := j.NormProcessingSecs()
	const horizon = 600.0
	var rate float64
	e1, ok1 := estimate(t)
	e2, ok2 := estimate(t + horizon)
	if ok1 && ok2 {
		rate = (e2 - e1) / horizon
	} else if rt := j.RealtimeCurve(); len(rt) >= 2 {
		p, q := rt[len(rt)-2], rt[len(rt)-1]
		if q.X > p.X {
			rate = (q.Y - p.Y) / (q.X - p.X)
		}
	}
	maxSpeed := aqpSpeedup(r.MaxThreadsPerJob)
	required := math.Inf(1)
	if rate > 1e-9 {
		required = (target - a0) / rate / remaining // speedup to attain in time per the fit
	}
	// Exhaustion bound: processing the whole remaining stream yields the
	// exact answer (accuracy 1 ≥ any threshold), and the remaining work
	// is known exactly from the job's own cost per row: t·(1−f)/f
	// single-thread seconds. Late-blooming (convex) progress curves are
	// underestimated by the linear fit, but never worse than this bound.
	if f := j.Query().DataProgress(); f > 0 && f < 1 {
		exhaust := j.NormProcessingSecs() * (1 - f) / f / remaining
		if exhaust < required {
			required = exhaust
		}
	}
	if required > maxSpeed {
		return hopeless(0.05)
	}
	// Within the feasible band, Algorithm 2 prioritizes the highest
	// estimated progress — the jobs closest to attaining, which free
	// their resources soonest. Lower required speedup ⇒ closer to done.
	return 2 - required/maxSpeed
}

// nextEpochSecsGuess projects the next epoch's processing time from the
// job's own history (or a nominal first-epoch guess).
func (j *AQPJob) nextEpochSecsGuess() float64 {
	if j.epochs > 0 {
		return j.processingSecs / float64(j.epochs)
	}
	return 60
}

// aqpSpeedup mirrors the engine's sublinear thread-scaling model
// (aqp.Speedup) without importing the package into the scheduler's hot
// path signature.
func aqpSpeedup(threads int) float64 {
	if threads <= 1 {
		return 1
	}
	return math.Pow(float64(threads), 0.85)
}
