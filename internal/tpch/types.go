// Package tpch is a from-scratch, deterministic stand-in for TPC-H dbgen
// plus streaming implementations of all 22 TPC-H queries on the online-
// aggregation engine in internal/aqp.
//
// The paper evaluates Rotary-AQP on the TPC-H benchmark at scale factor 1:
// "Rotary-AQP supports all 22 queries and runs them on the TPC-H dataset"
// (§V-A1), with the queries grouped into light, medium, and heavy classes
// by observed memory consumption (Table I). This package reproduces the
// schema, the value domains that matter to the queries (dates, discounts,
// quantities, flags, brands, regions…), the cardinality ratios between
// tables, and the query shapes. Text columns are simplified to the token
// sets the queries filter on.
package tpch

import "fmt"

// Date is a day count since 1992-01-01, the start of the TPC-H order
// calendar. Orders span 1992-01-01 .. 1998-08-02.
type Date int32

// MakeDate builds a Date from a calendar day using a proleptic Gregorian
// day count. Months are 1-12, days 1-31.
func MakeDate(year, month, day int) Date {
	return Date(civilToDays(year, month, day) - civilToDays(1992, 1, 1))
}

// Year reports the calendar year of d.
func (d Date) Year() int {
	y, _, _ := daysToCivil(int(d) + civilToDays(1992, 1, 1))
	return y
}

// Month reports the calendar month (1-12) of d.
func (d Date) Month() int {
	_, m, _ := daysToCivil(int(d) + civilToDays(1992, 1, 1))
	return m
}

// String formats d as YYYY-MM-DD.
func (d Date) String() string {
	y, m, day := daysToCivil(int(d) + civilToDays(1992, 1, 1))
	return fmt.Sprintf("%04d-%02d-%02d", y, m, day)
}

// civilToDays converts a Gregorian civil date to a serial day number
// (days since 0000-03-01, Howard Hinnant's algorithm).
func civilToDays(y, m, d int) int {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400
	mp := (m + 9) % 12
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe
}

// daysToCivil is the inverse of civilToDays.
func daysToCivil(z int) (y, m, d int) {
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	m = (mp+2)%12 + 1
	if m <= 2 {
		y++
	}
	return y, m, d
}

// Region mirrors the TPC-H REGION table (5 rows).
type Region struct {
	RegionKey int32
	Name      string
}

// Nation mirrors the TPC-H NATION table (25 rows).
type Nation struct {
	NationKey int32
	Name      string
	RegionKey int32
}

// Supplier mirrors the TPC-H SUPPLIER table (10,000 × SF rows).
type Supplier struct {
	SuppKey   int32
	Name      string
	NationKey int32
	AcctBal   float64
	Comment   string
}

// Customer mirrors the TPC-H CUSTOMER table (150,000 × SF rows).
type Customer struct {
	CustKey    int32
	Name       string
	NationKey  int32
	Phone      string
	AcctBal    float64
	MktSegment string
}

// Part mirrors the TPC-H PART table (200,000 × SF rows).
type Part struct {
	PartKey     int32
	Name        string
	Mfgr        string
	Brand       string
	Type        string
	Size        int32
	Container   string
	RetailPrice float64
}

// PartSupp mirrors the TPC-H PARTSUPP table (800,000 × SF rows; 4
// suppliers per part).
type PartSupp struct {
	PartKey    int32
	SuppKey    int32
	AvailQty   int32
	SupplyCost float64
}

// Order mirrors the TPC-H ORDERS table (1,500,000 × SF rows).
type Order struct {
	OrderKey      int32
	CustKey       int32
	OrderStatus   byte
	TotalPrice    float64
	OrderDate     Date
	OrderPriority string
	Comment       string
	LineCount     int32 // lines generated for this order (dbgen internal)
}

// Lineitem mirrors the TPC-H LINEITEM table (~6,000,000 × SF rows; 1-7
// lines per order).
type Lineitem struct {
	OrderKey      int32
	PartKey       int32
	SuppKey       int32
	LineNumber    int32
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    byte
	LineStatus    byte
	ShipDate      Date
	CommitDate    Date
	ReceiptDate   Date
	ShipInstruct  string
	ShipMode      string
}

// Dataset is a fully generated TPC-H database at some scale factor,
// resident in memory. Dimension tables are indexed by the queries; the
// fact tables (lineitem, orders, partsupp) are streamed batch-by-batch by
// the AQP engine.
type Dataset struct {
	SF        float64
	Regions   []Region
	Nations   []Nation
	Suppliers []Supplier
	Customers []Customer
	Parts     []Part
	PartSupps []PartSupp
	Orders    []Order
	Lineitems []Lineitem
}

// Rows reports the total row count across all tables.
func (d *Dataset) Rows() int {
	return len(d.Regions) + len(d.Nations) + len(d.Suppliers) + len(d.Customers) +
		len(d.Parts) + len(d.PartSupps) + len(d.Orders) + len(d.Lineitems)
}
