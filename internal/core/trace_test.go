package core_test

import (
	"bytes"
	"strings"
	"testing"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
)

func TestAQPTraceSequencePerJob(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	tracer := &core.Tracer{}
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 1
	cfg.Tracer = tracer
	exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
	a := buildJob(t, cat, "a", "q6", 0.9, 1e6)
	b := buildJob(t, cat, "b", "q12", 0.9, 1e6)
	exec.Submit(a, 0)
	exec.Submit(b, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"a", "b"} {
		evs := tracer.JobEvents(id)
		if len(evs) < 4 {
			t.Fatalf("%s: only %d events", id, len(evs))
		}
		if evs[0].Kind != core.TraceArrive {
			t.Errorf("%s: first event %v, want arrive", id, evs[0].Kind)
		}
		if last := evs[len(evs)-1]; last.Kind != core.TraceStop {
			t.Errorf("%s: last event %v, want stop", id, last.Kind)
		}
		// Grants and epoch completions must strictly alternate, and the
		// timeline must be monotone.
		depth := 0
		prev := evs[0].At
		for _, ev := range evs {
			if ev.At < prev {
				t.Fatalf("%s: time went backwards at %v", id, ev)
			}
			prev = ev.At
			switch ev.Kind {
			case core.TraceGrant:
				depth++
				if depth != 1 {
					t.Fatalf("%s: nested grant", id)
				}
				if ev.Threads != 1 {
					t.Errorf("%s: grant with %d threads, want 1", id, ev.Threads)
				}
			case core.TraceEpochDone:
				depth--
				if depth != 0 {
					t.Fatalf("%s: epoch-done without grant", id)
				}
			}
		}
	}
	if out := tracer.Render(10); !strings.Contains(out, "stop") {
		t.Errorf("rendered trace missing stops:\n%s", out)
	}
}

func TestDLTTraceRecordsPlacementsAndStops(t *testing.T) {
	tracer := &core.Tracer{}
	cfg := core.DefaultDLTExecConfig()
	cfg.GPUs = 1
	cfg.Tracer = tracer
	repo := estimate.NewRepository()
	sched := core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	exec := core.NewDLTExecutor(cfg, sched, repo)
	trainer, err := dlt.NewJob(dlt.Config{
		Model: "lenet", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 3, Unit: criteria.Epochs})
	j, err := core.NewDLTJob("t", trainer, crit)
	if err != nil {
		t.Fatal(err)
	}
	exec.Submit(j, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tracer.JobEvents("t")
	places, epochs, stops := 0, 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case core.TracePlace:
			places++
			if ev.Device != 0 {
				t.Errorf("placed on device %d of a 1-GPU cluster", ev.Device)
			}
		case core.TraceEpochDone:
			epochs++
		case core.TraceStop:
			stops++
		}
	}
	if places != 3 || epochs != 3 || stops != 1 {
		t.Errorf("places=%d epochs=%d stops=%d, want 3/3/1", places, epochs, stops)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *core.Tracer
	tr.Emit(core.TraceEvent{Kind: core.TraceArrive, Job: "x"})
	if tr.Events() != nil || tr.JobEvents("x") != nil {
		t.Error("nil tracer retained events")
	}
}

// captureSink records every TraceRecord it is handed.
type captureSink struct {
	recs []obs.TraceRecord
}

func (s *captureSink) WriteTrace(r obs.TraceRecord) error { s.recs = append(s.recs, r); return nil }
func (s *captureSink) Flush() error                       { return nil }

func TestTracerBoundedRing(t *testing.T) {
	sink := &captureSink{}
	tr := core.NewTracer(3)
	tr.SetSink(sink)
	for i := 0; i < 10; i++ {
		tr.Emit(core.TraceEvent{At: sim.Time(i), Kind: core.TraceGrant, Job: "j", Threads: i})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("ring held %d events, want capacity 3", len(evs))
	}
	// The ring keeps the newest events in emit order.
	for i, ev := range evs {
		if want := 7 + i; ev.Threads != want {
			t.Errorf("ring[%d].Threads = %d, want %d", i, ev.Threads, want)
		}
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped() = %d, want 7", tr.Dropped())
	}
	// The sink saw everything, with monotone sequence numbers, before any
	// overwrite happened.
	if len(sink.recs) != 10 {
		t.Fatalf("sink saw %d records, want all 10", len(sink.recs))
	}
	for i, r := range sink.recs {
		if r.Seq != uint64(i) || r.Threads != i {
			t.Errorf("sink[%d] = seq %d threads %d", i, r.Seq, r.Threads)
		}
	}
	if tr.Capacity() != 3 {
		t.Errorf("Capacity() = %d", tr.Capacity())
	}
	// Render of a wrapped ring stays well-formed (no blank rows).
	if out := tr.Render(5); strings.Count(out, "\n") != 3 {
		t.Errorf("render of 3-slot ring:\n%s", out)
	}
}

func TestTracerZeroValueStaysUnbounded(t *testing.T) {
	tr := &core.Tracer{}
	for i := 0; i < 500; i++ {
		tr.Emit(core.TraceEvent{At: sim.Time(i), Kind: core.TraceArrive})
	}
	if len(tr.Events()) != 500 || tr.Dropped() != 0 {
		t.Fatalf("zero-value tracer dropped events: len=%d dropped=%d", len(tr.Events()), tr.Dropped())
	}
}

// TestTraceTelemetryReplayStable runs the same seeded workload twice with
// full telemetry on — private registries, bounded rings, JSONL sinks —
// and demands bit-identical streams: observability must not perturb (or
// be perturbed by) the virtual-time schedule.
func TestTraceTelemetryReplayStable(t *testing.T) {
	run := func() (sinkBytes string, render string, dropped uint64, metricsText string) {
		reg := obs.NewRegistry()
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf, 8)
		tr := core.NewTracer(16)
		tr.SetSink(sink)
		cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 2
		cfg.Tracer = tr
		cfg.Obs = reg
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		exec.Submit(buildJob(t, cat, "a", "q6", 0.9, 1e6), 0)
		exec.Submit(buildJob(t, cat, "b", "q12", 0.9, 1e6), 5)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String(), tr.Render(10), tr.Dropped(), reg.RenderText(false)
	}
	s1, r1, d1, m1 := run()
	s2, r2, d2, m2 := run()
	if s1 != s2 {
		t.Errorf("JSONL trace streams differ between identical seeded runs")
	}
	if s1 == "" || !strings.Contains(s1, `"kind":"arrive"`) {
		t.Errorf("trace stream missing arrivals:\n%.300s", s1)
	}
	if r1 != r2 || d1 != d2 {
		t.Errorf("ring state differs: dropped %d vs %d", d1, d2)
	}
	if m1 != m2 {
		t.Errorf("deterministic metrics rendering differs:\n--- first ---\n%s\n--- second ---\n%s", m1, m2)
	}
	if !strings.Contains(m1, "rotary_aqp_arrivals_total 2") {
		t.Errorf("metrics missing arrivals counter:\n%s", m1)
	}
}
