package core

import (
	"math"
	"sort"
)

// This file implements the arbitration control-plane fast path: an exact
// decision cache over Algorithm 1's per-epoch policy invocation. The
// motivating observation (see DESIGN.md §11) is that at scale the
// arbiter re-derives the same grants over and over — the queue state
// between consecutive epoch boundaries is usually unchanged except for
// the clock — and the per-arbitration estimation + sort dominates
// control-plane cost long before it shows up in virtual time.
//
// Soundness contract: the cache key (the "queue-state signature") must
// cover EVERY input the policy can read. A policy opts in by
// implementing ArbiterProfile() and promising that its Assign/Place is
// a pure function of (the profiled inputs, its StateFingerprint), apart
// from job mutations that the recorder captures as template diffs
// (SetEpochBatches is the only such mutation in-repo). Policies with
// unprofilable state — RNG-backed estimators, starvation-guard aging
// counters, the unified executor's shared threshold — simply do not
// implement the interface and bypass the cache, falling back to the
// plain slow path. Correctness therefore never depends on a policy
// author remembering to invalidate: a hit replays a decision whose
// complete input set provably matches, and the metamorphic equivalence
// suite (fastpath_equiv_test.go) checks the bit-identity end to end.

// ArbiterProfile declares what a scheduling policy reads, so the fast
// path can build a sound queue-state signature for it.
type ArbiterProfile struct {
	// Cachable opts the policy into decision caching. False (the zero
	// value) forces the slow path — the safe default for any policy
	// holding state the other fields cannot express.
	Cachable bool
	// TimeDependent marks policies whose decision reads ctx.Now (aging,
	// deadline slack). The clock is then folded into the signature, so
	// such policies only hit when two arbitrations coincide in virtual
	// time — rare by construction, but still sound.
	TimeDependent bool
	// ReadsRunning marks policies that inspect ctx.Running (not just
	// Pending); the running set is then folded into the signature.
	ReadsRunning bool
	// StateFingerprint summarizes the policy's own mutable inputs —
	// estimator state versions, tunable thresholds. Any change that
	// could alter a decision must move the fingerprint.
	StateFingerprint uint64
}

// ProfiledAQPScheduler is an AQP policy that declares its input profile
// and thereby opts into the arbitration fast path.
type ProfiledAQPScheduler interface {
	AQPScheduler
	ArbiterProfile() ArbiterProfile
}

// ProfiledDLTScheduler is a DLT policy that declares its input profile
// and thereby opts into the arbitration fast path.
type ProfiledDLTScheduler interface {
	DLTScheduler
	ArbiterProfile() ArbiterProfile
}

// AQPReplayCommitter is implemented by wrapper policies (the fair-share
// layer) whose own ledger advances as a deterministic function of the
// arbitration's inputs and outputs. On a cache hit the fast path skips
// Assign, so it invokes CommitReplay with the replayed grants instead;
// because the wrapper folds its ledger into StateFingerprint, a hit
// proves the replayed grants are exactly what Assign would have
// produced, and CommitReplay applies the identical ledger mutation.
type AQPReplayCommitter interface {
	CommitReplay(ctx *AQPContext, grants []AQPGrant)
}

// DLTReplayCommitter is the DLT twin of AQPReplayCommitter.
type DLTReplayCommitter interface {
	CommitReplay(ctx *DLTContext, placements []DLTPlacement)
}

// FastPathStats counts fast-path outcomes for one executor run.
type FastPathStats struct {
	// Hits are arbitrations served by replaying a cached template.
	Hits uint64
	// Misses are arbitrations that ran the policy and recorded a
	// template (includes replays refused by the pointer verification).
	Misses uint64
	// Bypassed are arbitrations that skipped the cache entirely: the
	// policy is unprofiled (guard-wrapped, unified, custom) or its
	// profile reported Cachable=false (e.g. an RNG-backed estimator).
	Bypassed uint64
}

// fastPathCacheBound caps the per-executor template cache. Signatures
// embed estimator versions and the virtual clock, so stale entries can
// never hit again; the bound just keeps dead entries from accumulating.
// Overflow clears the whole map — simple, and sound by construction.
const fastPathCacheBound = 512

// fpInit / fpMix implement the 64-bit FNV-1a-style word mix used for
// fingerprints and signatures: xor-fold the word, multiply by the FNV
// prime, then shear the high bits back down so consecutive small
// integers (job counts, thread counts) diffuse across the word.
const (
	fpInit        = uint64(14695981039346656037)
	fpPrime       = uint64(1099511628211)
	fpStringSalt  = uint64(0x9e3779b97f4a7c15)
	fpRunningSalt = uint64(0x517cc1b727220a95)
)

func fpMix(h, v uint64) uint64 {
	h ^= v
	h *= fpPrime
	h ^= h >> 32
	return h
}

func fpFloat(h uint64, v float64) uint64 { return fpMix(h, math.Float64bits(v)) }

func fpBool(h uint64, v bool) uint64 {
	if v {
		return fpMix(h, 1)
	}
	return fpMix(h, 2)
}

// fpString is the classic byte-wise FNV-1a, salted so an empty string
// still contributes.
func fpString(s string) uint64 {
	h := fpInit ^ fpStringSalt
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fpPrime
	}
	return h
}

// ---------------------------------------------------------------------
// AQP fast path
// ---------------------------------------------------------------------

// aqpFastPath is the decision cache in front of one AQP executor's
// scheduler. It is not safe for concurrent use; the executor invokes it
// only from the single-threaded simulation loop.
type aqpFastPath struct {
	sched AQPScheduler
	prof  ProfiledAQPScheduler // nil: every arbitration bypasses
	nameH uint64

	cache map[uint64]*aqpTemplate
	idH   map[*AQPJob]uint64 // memoized immutable-identity hashes
	stats FastPathStats

	preBatches []int // pre-Assign epochBatches scratch (recording)
}

// aqpTemplate is one cached arbitration decision: the grants plus the
// SetEpochBatches side effects the policy applied while deciding. Each
// entry records the job's position in ctx.Pending AND its pointer;
// replay verifies both, so a signature collision (or any bookkeeping
// bug) degrades to a miss instead of granting the wrong job.
type aqpTemplate struct {
	pendingLen int
	grants     []aqpTemplateGrant
	batches    []aqpBatchDiff
}

type aqpTemplateGrant struct {
	job     *AQPJob
	idx     int
	threads int
	reserve float64
}

type aqpBatchDiff struct {
	job *AQPJob
	idx int
	n   int
}

func newAQPFastPath(sched AQPScheduler) *aqpFastPath {
	f := &aqpFastPath{
		sched: sched,
		cache: make(map[uint64]*aqpTemplate),
		idH:   make(map[*AQPJob]uint64),
		nameH: fpString(sched.Name()),
	}
	f.prof, _ = sched.(ProfiledAQPScheduler)
	return f
}

// assign is the fast-path frontend to sched.Assign.
func (f *aqpFastPath) assign(ctx *AQPContext) []AQPGrant {
	if f.prof == nil {
		f.stats.Bypassed++
		return f.sched.Assign(ctx)
	}
	prof := f.prof.ArbiterProfile()
	if !prof.Cachable {
		f.stats.Bypassed++
		return f.sched.Assign(ctx)
	}
	sig := f.signature(prof, ctx)
	if t, ok := f.cache[sig]; ok {
		if grants, ok := t.replay(ctx); ok {
			f.stats.Hits++
			if c, ok := f.sched.(AQPReplayCommitter); ok {
				c.CommitReplay(ctx, grants)
			}
			return grants
		}
		delete(f.cache, sig) // pointer verification refused the replay
	}
	f.stats.Misses++

	pre := f.preBatches[:0]
	for _, j := range ctx.Pending {
		pre = append(pre, j.epochBatches)
	}
	f.preBatches = pre

	grants := f.sched.Assign(ctx)

	t := &aqpTemplate{pendingLen: len(ctx.Pending)}
	var index map[*AQPJob]int
	for i, j := range ctx.Pending {
		if j.epochBatches != pre[i] {
			t.batches = append(t.batches, aqpBatchDiff{job: j, idx: i, n: j.epochBatches})
		}
	}
	if len(grants) > 0 {
		index = make(map[*AQPJob]int, len(ctx.Pending))
		for i, j := range ctx.Pending {
			index[j] = i
		}
	}
	for _, g := range grants {
		idx, ok := index[g.Job]
		if !ok {
			// A grant for a job not in Pending is outside the template
			// model; never cache this decision.
			return grants
		}
		t.grants = append(t.grants, aqpTemplateGrant{job: g.Job, idx: idx, threads: g.Threads, reserve: g.ReserveMemMB})
	}
	if len(f.cache) >= fastPathCacheBound {
		f.cache = make(map[uint64]*aqpTemplate)
	}
	f.cache[sig] = t
	return grants
}

// replay re-issues the cached decision after verifying that every job
// the template touches still sits at its recorded queue position.
func (t *aqpTemplate) replay(ctx *AQPContext) ([]AQPGrant, bool) {
	if len(ctx.Pending) != t.pendingLen {
		return nil, false
	}
	for _, b := range t.batches {
		if b.idx >= len(ctx.Pending) || ctx.Pending[b.idx] != b.job {
			return nil, false
		}
	}
	for _, g := range t.grants {
		if g.idx >= len(ctx.Pending) || ctx.Pending[g.idx] != g.job {
			return nil, false
		}
	}
	for _, b := range t.batches {
		b.job.SetEpochBatches(b.n)
	}
	grants := make([]AQPGrant, len(t.grants))
	for i, g := range t.grants {
		grants[i] = AQPGrant{Job: g.job, Threads: g.threads, ReserveMemMB: g.reserve}
	}
	return grants, true
}

// signature folds every profiled policy input into the queue-state key:
// policy identity and state version, exact capacity, the pending queue
// in order, the (sorted) running set when the policy reads it, and the
// clock when the policy is time-dependent. Capacity is folded exactly —
// a coarser "band" would admit replays the policy might not have
// produced, breaking the bit-identity guarantee.
func (f *aqpFastPath) signature(prof ArbiterProfile, ctx *AQPContext) uint64 {
	h := fpMix(fpInit, f.nameH)
	h = fpMix(h, prof.StateFingerprint)
	if prof.TimeDependent {
		h = fpFloat(h, ctx.Now.Seconds())
	}
	h = fpMix(h, uint64(ctx.FreeThreads))
	h = fpMix(h, uint64(ctx.TotalThreads))
	h = fpFloat(h, ctx.FreeMemMB)
	h = fpFloat(h, ctx.TotalMemMB)
	h = fpMix(h, uint64(len(ctx.Pending)))
	for _, j := range ctx.Pending {
		h = fpMix(h, f.jobFingerprint(j))
	}
	if prof.ReadsRunning {
		h = fpMix(h, fpRunningSalt)
		h = fpMix(h, uint64(len(ctx.Running)))
		for _, j := range ctx.Running {
			h = fpMix(h, f.jobFingerprint(j))
		}
	}
	return h
}

// jobFingerprint summarizes one job's policy-visible state. The
// identity (id string — estMemMB, batchRows, class, and criteria are
// immutable per job) is memoized per pointer; the mutable part folds
// every field a policy can observe, directly or through derived
// accessors:
//
//   - epochs/processingSecs/normSecs advance on every state-mutating
//     path (a completed epoch charges ≥ 1ms; crash, preemption, and
//     checkpoint backoff all add positive wasted time), so they proxy
//     the query's own progress state (DataProgress, Exhausted);
//   - the realtime curve's length and last point cover the envelope:
//     observeEpoch appends EstimatedAccuracy() to the curve, and all
//     envelope mutations happen inside epochs, so for any queued job
//     the last point's Y IS the current EstimatedAccuracy;
//   - arrival/lastRelease/everRan feed deadline and aging terms;
//   - epochBatches is both read and written by policies (the template
//     records the writes as diffs);
//   - needsRestore/crashPending distinguish a crash-dirtied in-memory
//     query from a clean one with identical counters.
func (f *aqpFastPath) jobFingerprint(j *AQPJob) uint64 {
	h, ok := f.idH[j]
	if !ok {
		// Tenant rides in the memoized identity hash: it is immutable per
		// job and feeds the fair-share layer, so two queues differing only
		// in tenant attribution must never collide on a signature.
		h = fpMix(fpString(j.id), fpString(j.tenant))
		f.idH[j] = h
	}
	h = fpMix(h, uint64(j.epochs))
	h = fpFloat(h, j.processingSecs)
	h = fpFloat(h, j.normSecs)
	h = fpFloat(h, j.arrival.Seconds())
	h = fpFloat(h, j.lastRelease.Seconds())
	h = fpBool(h, j.everRan)
	h = fpBool(h, j.bestEffort)
	h = fpBool(h, j.needsRestore)
	h = fpBool(h, j.crashPending)
	h = fpMix(h, uint64(j.epochBatches))
	h = fpMix(h, uint64(j.watchdogStrikes))
	h = fpFloat(h, j.deferredPenaltySecs)
	h = fpMix(h, uint64(len(j.realtimeCurve)))
	if n := len(j.realtimeCurve); n > 0 {
		last := j.realtimeCurve[n-1]
		h = fpFloat(h, last.X)
		h = fpFloat(h, last.Y)
	}
	return h
}

// ---------------------------------------------------------------------
// DLT fast path
// ---------------------------------------------------------------------

// dltFastPath is the decision cache in front of one DLT executor's
// scheduler. DLT policies in-repo perform no job mutations while
// deciding, so templates carry placements only.
type dltFastPath struct {
	sched DLTScheduler
	prof  ProfiledDLTScheduler
	nameH uint64

	cache map[uint64]*dltTemplate
	idH   map[*DLTJob]uint64
	stats FastPathStats
}

type dltTemplate struct {
	pendingLen int
	placements []dltTemplatePlacement
}

type dltTemplatePlacement struct {
	job      *DLTJob
	idx      int
	device   int
	estMemMB float64
}

func newDLTFastPath(sched DLTScheduler) *dltFastPath {
	f := &dltFastPath{
		sched: sched,
		cache: make(map[uint64]*dltTemplate),
		idH:   make(map[*DLTJob]uint64),
		nameH: fpString(sched.Name()),
	}
	f.prof, _ = sched.(ProfiledDLTScheduler)
	return f
}

// place is the fast-path frontend to sched.Place.
func (f *dltFastPath) place(ctx *DLTContext) []DLTPlacement {
	if f.prof == nil {
		f.stats.Bypassed++
		return f.sched.Place(ctx)
	}
	prof := f.prof.ArbiterProfile()
	if !prof.Cachable {
		f.stats.Bypassed++
		return f.sched.Place(ctx)
	}
	sig := f.signature(prof, ctx)
	if t, ok := f.cache[sig]; ok {
		if placements, ok := t.replay(ctx); ok {
			f.stats.Hits++
			if c, ok := f.sched.(DLTReplayCommitter); ok {
				c.CommitReplay(ctx, placements)
			}
			return placements
		}
		delete(f.cache, sig)
	}
	f.stats.Misses++

	placements := f.sched.Place(ctx)

	t := &dltTemplate{pendingLen: len(ctx.Pending)}
	var index map[*DLTJob]int
	if len(placements) > 0 {
		index = make(map[*DLTJob]int, len(ctx.Pending))
		for i, j := range ctx.Pending {
			index[j] = i
		}
	}
	for _, p := range placements {
		idx, ok := index[p.Job]
		if !ok {
			return placements // outside the template model; don't cache
		}
		t.placements = append(t.placements, dltTemplatePlacement{job: p.Job, idx: idx, device: p.Device, estMemMB: p.EstMemMB})
	}
	if len(f.cache) >= fastPathCacheBound {
		f.cache = make(map[uint64]*dltTemplate)
	}
	f.cache[sig] = t
	return placements
}

func (t *dltTemplate) replay(ctx *DLTContext) ([]DLTPlacement, bool) {
	if len(ctx.Pending) != t.pendingLen {
		return nil, false
	}
	for _, p := range t.placements {
		if p.idx >= len(ctx.Pending) || ctx.Pending[p.idx] != p.job {
			return nil, false
		}
	}
	placements := make([]DLTPlacement, len(t.placements))
	for i, p := range t.placements {
		placements[i] = DLTPlacement{Job: p.job, Device: p.device, EstMemMB: p.estMemMB}
	}
	return placements, true
}

func (f *dltFastPath) signature(prof ArbiterProfile, ctx *DLTContext) uint64 {
	h := fpMix(fpInit, f.nameH)
	h = fpMix(h, prof.StateFingerprint)
	if prof.TimeDependent {
		h = fpFloat(h, ctx.Now.Seconds())
	}
	h = fpMix(h, uint64(len(ctx.FreeGPUs)))
	for _, g := range ctx.FreeGPUs {
		h = fpMix(h, uint64(g.ID))
		h = fpFloat(h, g.MemMB)
	}
	h = fpMix(h, uint64(len(ctx.Pending)))
	for _, j := range ctx.Pending {
		h = fpMix(h, f.jobFingerprint(j))
	}
	if prof.ReadsRunning {
		h = fpMix(h, fpRunningSalt)
		h = fpMix(h, uint64(len(ctx.Running)))
		for _, j := range ctx.Running {
			h = fpMix(h, f.jobFingerprint(j))
		}
	}
	return h
}

// jobFingerprint summarizes one DLT job's policy-visible state: the
// epoch and processing counters (every mutating path charges positive
// time), the trainer's accuracy trajectory (trained-epoch count +
// latest accuracy — the history grows exactly once per trained epoch
// and resets only with the counters on a scratch restart), convergence
// and overload markers, and the crash-dirty flags. The
// similarity-search identity (model/dataset/hyperparameters) is
// immutable and covered by the memoized id hash. Trajectory reads go
// through EpochsTrained/Accuracy, not AccuracyHistory, which copies.
func (f *dltFastPath) jobFingerprint(j *DLTJob) uint64 {
	h, ok := f.idH[j]
	if !ok {
		// Tenant attribution folds into the memoized identity hash (see
		// the AQP twin): immutable per job, policy-visible via fair share.
		h = fpMix(fpString(j.id), fpString(j.tenant))
		f.idH[j] = h
	}
	h = fpMix(h, uint64(j.epochs))
	h = fpFloat(h, j.processingSecs)
	h = fpFloat(h, j.arrival.Seconds())
	h = fpFloat(h, j.lastRelease.Seconds())
	h = fpMix(h, uint64(int64(j.lastDevice)+1))
	h = fpBool(h, j.everRan)
	h = fpBool(h, j.bestEffort)
	h = fpBool(h, j.needsRestore)
	h = fpBool(h, j.crashPending)
	h = fpMix(h, uint64(j.convergedAtEpoch))
	h = fpMix(h, uint64(j.watchdogStrikes))
	h = fpFloat(h, j.deferredPenaltySecs)
	h = fpMix(h, uint64(j.job.EpochsTrained()))
	if j.job.EpochsTrained() > 0 {
		h = fpFloat(h, j.job.Accuracy())
	}
	h = fpFloat(h, j.job.PeakMemoryMB())
	return h
}

// sortAQPJobsByID orders a job slice by ID in place — the executors'
// deterministic presentation of the running set (map iteration order
// would otherwise leak into policies that read ctx.Running).
func sortAQPJobsByID(jobs []*AQPJob) {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
}

// sortDLTJobsByID orders a job slice by ID in place.
func sortDLTJobsByID(jobs []*DLTJob) {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
}
