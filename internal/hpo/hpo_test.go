package hpo

import (
	"testing"

	"rotary/internal/dlt"
)

// gridConfigs builds an optimizer × learning-rate grid over one model.
func gridConfigs() []dlt.Config {
	var out []dlt.Config
	i := 0
	for _, opt := range []string{"sgd", "momentum", "adam", "adagrad"} {
		for _, lr := range []float64{0.1, 0.01, 0.001, 0.0001} {
			out = append(out, dlt.Config{
				Model: "resnet-18", Dataset: "cifar10", BatchSize: 32,
				Optimizer: opt, LR: lr, Seed: uint64(100 + i),
			})
			i++
		}
	}
	return out
}

func TestSearchEliminatesAndFindsGoodConfig(t *testing.T) {
	res, err := Search(DefaultConfig(), gridConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best trial")
	}
	// The winner must be a well-tuned configuration: its curve ceiling is
	// near the model's base accuracy only for good (optimizer, lr) pairs.
	if res.Best.Accuracy() < 0.80 {
		t.Errorf("best trial accuracy %.3f, want a well-tuned config (> 0.80)", res.Best.Accuracy())
	}
	// Successive halving: elimination actually happened, and eliminated
	// trials spent fewer epochs than survivors.
	dropped := 0
	maxDroppedEpochs, minSurvivorEpochs := 0, 1<<30
	for _, tr := range res.Trials {
		if tr.RungDropped() >= 0 {
			dropped++
			if tr.Epochs() > maxDroppedEpochs {
				maxDroppedEpochs = tr.Epochs()
			}
		} else if tr.Epochs() < minSurvivorEpochs {
			minSurvivorEpochs = tr.Epochs()
		}
	}
	if dropped == 0 {
		t.Fatal("no trials eliminated")
	}
	if maxDroppedEpochs >= minSurvivorEpochs {
		t.Errorf("a dropped trial trained %d epochs ≥ a survivor's %d", maxDroppedEpochs, minSurvivorEpochs)
	}
	// Rung budgets grow by eta and survivor counts shrink.
	for i := 1; i < len(res.Rungs); i++ {
		if res.Rungs[i].Trials >= res.Rungs[i-1].Trials {
			t.Errorf("rung %d has %d trials, previous had %d", i, res.Rungs[i].Trials, res.Rungs[i-1].Trials)
		}
	}
	if res.TotalEpochs <= 0 || res.VirtualSecs <= 0 {
		t.Error("missing cost accounting")
	}
}

func TestSearchBeatsUniformBudget(t *testing.T) {
	configs := gridConfigs()
	res, err := Search(DefaultConfig(), configs)
	if err != nil {
		t.Fatal(err)
	}
	// A uniform allocation spending the same total epoch budget evenly
	// across all trials must reach a worse (or equal) best accuracy.
	per := res.TotalEpochs / len(configs)
	if per < 1 {
		per = 1
	}
	bestUniform := 0.0
	for _, c := range configs {
		job, err := dlt.NewJob(c)
		if err != nil {
			t.Fatal(err)
		}
		var acc float64
		for e := 0; e < per; e++ {
			acc, _ = job.TrainEpoch()
		}
		if acc > bestUniform {
			bestUniform = acc
		}
	}
	if res.Best.Accuracy() < bestUniform-0.02 {
		t.Errorf("successive halving best %.3f clearly below uniform-budget best %.3f (budget %d epochs each)",
			res.Best.Accuracy(), bestUniform, per)
	}
	t.Logf("halving best %.3f (total %d epochs) vs uniform best %.3f (%d epochs each)",
		res.Best.Accuracy(), res.TotalEpochs, bestUniform, per)
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(DefaultConfig(), nil); err == nil {
		t.Error("empty search accepted")
	}
	if _, err := Search(DefaultConfig(), []dlt.Config{{Model: "nope"}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSearchSingleTrial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEpochs = 4
	res, err := Search(cfg, gridConfigs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.RungDropped() != -1 {
		t.Error("sole trial marked dropped")
	}
	if res.Best.Epochs() > cfg.MaxEpochs {
		t.Errorf("trial exceeded MaxEpochs: %d", res.Best.Epochs())
	}
}
