package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"rotary/internal/core"
	"rotary/internal/tpch"
)

func TestCheckpointStoreTiers(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} { // "a" spills to disk
		if err := store.Save(id, []byte("state-"+id)); err != nil {
			t.Fatal(err)
		}
	}
	if data, fromMem, err := store.Load("c"); err != nil || !fromMem || string(data) != "state-c" {
		t.Fatalf("load c: %q mem=%v err=%v", data, fromMem, err)
	}
	if data, fromMem, err := store.Load("a"); err != nil || fromMem || string(data) != "state-a" {
		t.Fatalf("load a: %q mem=%v err=%v (want disk tier)", data, fromMem, err)
	}
	writes, memHits, diskHits, diskBytes := store.Stats()
	if writes != 3 || memHits != 1 || diskHits != 1 || diskBytes == 0 {
		t.Fatalf("stats = %d %d %d %d", writes, memHits, diskHits, diskBytes)
	}
	store.Remove("a")
	if _, _, err := store.Load("a"); err == nil {
		t.Error("loaded a removed checkpoint")
	}
}

func TestCheckpointStoreDiskOnly(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, fromMem, err := store.Load("x"); err != nil || fromMem {
		t.Fatalf("disk-only store served from memory (err=%v)", err)
	}
}

func TestCheckpointStoreUpdateSameID(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("j", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("j", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, _, err := store.Load("j")
	if err != nil || string(data) != "v2" {
		t.Fatalf("load = %q, %v", data, err)
	}
}

// A contended workload with real persistence: deferred jobs' states are
// actually serialized, dropped, and restored, and the run must produce
// the same outcomes as an identical run without persistence — proving the
// checkpoint round trip is lossless under arbitration.
func TestExecutorWithRealCheckpointsMatchesInMemory(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := func(store *core.CheckpointStore) []*core.AQPJob {
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 1 // force constant deferral between two jobs
		cfg.Store = store
		// Zero the virtual resume cost so both runs share identical
		// timing and differ only in whether state is really persisted.
		cfg.CheckpointBaseSecs = 0
		cfg.CheckpointSecsPerMB = 0
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		a := buildJob(t, cat, "a", "q1", 0.9, 1e6)
		b := buildJob(t, cat, "b", "q12", 0.9, 1e6)
		exec.Submit(a, 0)
		exec.Submit(b, 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Jobs()
	}
	store, err := core.NewCheckpointStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	withStore := run(store)
	inMemory := run(nil)
	writes, memHits, diskHits, _ := store.Stats()
	if writes == 0 || memHits+diskHits == 0 {
		t.Fatalf("store unused: writes=%d resumes=%d", writes, memHits+diskHits)
	}
	for i := range withStore {
		a, b := withStore[i], inMemory[i]
		if a.Status() != b.Status() || a.Epochs() != b.Epochs() ||
			a.StopAccuracy() != b.StopAccuracy() || a.EndTime() != b.EndTime() {
			t.Errorf("job %s diverged with persistence: %v/%d/%v/%v vs %v/%d/%v/%v",
				a.ID(), a.Status(), a.Epochs(), a.StopAccuracy(), a.EndTime(),
				b.Status(), b.Epochs(), b.StopAccuracy(), b.EndTime())
		}
	}
}

// Memory-tier resumes must be cheaper in virtual time than disk replays.
func TestMemoryTierResumesAreCheaper(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := func(slots int) float64 {
		store, err := core.NewCheckpointStore(t.TempDir(), slots)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 1
		cfg.Store = store
		cfg.CheckpointBaseSecs = 10 // make replay cost visible
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		exec.Submit(buildJob(t, cat, "a", "q1", 0.9, 1e6), 0)
		exec.Submit(buildJob(t, cat, "b", "q12", 0.9, 1e6), 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Engine().Now().Seconds()
	}
	memTier := run(4) // both jobs stay resident
	diskOnly := run(0)
	if memTier >= diskOnly {
		t.Errorf("memory-tier makespan %.0fs not below disk-only %.0fs", memTier, diskOnly)
	}
}

// A corrupted persisted checkpoint must surface as a run error, not as
// silently wrong results.
func TestCorruptCheckpointSurfacesError(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	dir := t.TempDir()
	store, err := core.NewCheckpointStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 1
	cfg.Store = store
	exec := core.NewAQPExecutor(cfg, corruptingFifo{dir: dir}, nil)
	exec.Submit(buildJob(t, cat, "a", "q1", 0.9, 1e6), 0)
	exec.Submit(buildJob(t, cat, "b", "q12", 0.9, 1e6), 0)
	if err := exec.Run(); err == nil {
		t.Fatal("corrupted checkpoint went unnoticed")
	}
}

// corruptingFifo behaves like fifoAQP but trashes every persisted
// checkpoint before it can be resumed.
type corruptingFifo struct{ dir string }

func (c corruptingFifo) Name() string { return "corruptor" }

func (c corruptingFifo) Assign(ctx *core.AQPContext) []core.AQPGrant {
	entries, _ := os.ReadDir(c.dir)
	for _, e := range entries {
		_ = os.WriteFile(filepath.Join(c.dir, e.Name()), []byte("{broken"), 0o644)
	}
	return fifoAQP{reserve: true}.Assign(ctx)
}
