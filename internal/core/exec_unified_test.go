package core_test

import (
	"testing"

	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

func buildUnified(t *testing.T, threshold float64) (*core.UnifiedExecutor, *tpch.Catalog) {
	t.Helper()
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, workload.RecommendedBatchRows(cat)); err != nil {
		t.Fatal(err)
	}
	if err := workload.SeedDLTHistory(repo, 20, 30, 1); err != nil {
		t.Fatal(err)
	}
	cfg := core.UnifiedExecConfig{
		AQP:       core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)),
		DLT:       core.DefaultDLTExecConfig(),
		Threshold: threshold,
	}
	return core.NewUnifiedExecutor(cfg, repo), cat
}

func TestUnifiedExecutorRunsMixedWorkload(t *testing.T) {
	u, cat := buildUnified(t, 0.5)

	aqpSpecs := workload.GenerateAQP(workload.DefaultAQPWorkload(6, 3))
	for _, spec := range aqpSpecs {
		spec.BatchRows = workload.RecommendedBatchRows(cat)
		j, err := workload.BuildAQPJob(cat, spec)
		if err != nil {
			t.Fatal(err)
		}
		u.SubmitAQP(j, sim.Time(spec.ArrivalSecs))
	}
	dltSpecs := mustGenDLT(t, 6, 3)
	for _, spec := range dltSpecs {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		u.SubmitDLT(j, 0)
	}
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range u.AQPJobs() {
		if !j.Status().Terminal() {
			t.Errorf("AQP job %s not terminal: %v", j.ID(), j.Status())
		}
	}
	for _, j := range u.DLTJobs() {
		if !j.Status().Terminal() {
			t.Errorf("DLT job %s not terminal: %v", j.ID(), j.Status())
		}
	}
	if u.MinProgress() != 1 {
		t.Errorf("completed cluster min progress %v, want 1", u.MinProgress())
	}
	// Both sides really shared one clock: makespan covers both workloads.
	if u.Engine().Now() <= 0 {
		t.Error("no virtual time elapsed")
	}
}

// The global threshold must couple the two workload types: a straggling
// DLT job must hold the AQP side in its fairness phase (and vice versa),
// which shows up as the fairness variant pushing the cluster-wide minimum
// progress up sooner than the efficiency variant.
func TestUnifiedGlobalFairnessCouplesWorkloads(t *testing.T) {
	run := func(threshold float64) (minAt sim.Time, makespan sim.Time) {
		u, cat := buildUnified(t, threshold)
		aqpSpecs := workload.GenerateAQP(workload.DefaultAQPWorkload(5, 9))
		for _, spec := range aqpSpecs {
			spec.BatchRows = workload.RecommendedBatchRows(cat)
			j, err := workload.BuildAQPJob(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			u.SubmitAQP(j, 0)
		}
		for _, spec := range mustGenDLT(t, 5, 9) {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			u.SubmitDLT(j, 0)
		}
		// Sample the cluster-wide min progress every 10 virtual minutes
		// until it first clears 0.3.
		var firstCross sim.Time
		for tick := sim.Time(600); ; tick += 600 {
			u.Engine().RunUntil(tick)
			if firstCross == 0 && u.MinProgress() >= 0.3 {
				firstCross = tick
			}
			if u.Engine().Pending() == 0 {
				break
			}
		}
		return firstCross, u.Engine().Now()
	}
	fairCross, _ := run(1.0)
	effCross, _ := run(0.0)
	if fairCross == 0 {
		t.Fatal("fairness run never pushed the minimum progress past 0.3")
	}
	if effCross != 0 && fairCross > effCross {
		t.Errorf("global fairness crossed 0.3 at %v, efficiency at %v — threshold has no coupling effect",
			fairCross, effCross)
	}
}
