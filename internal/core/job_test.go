package core

import (
	"math"
	"testing"
	"testing/quick"

	"rotary/internal/cluster"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
)

func mkTrainer(t *testing.T, model string, lr float64) *dlt.Job {
	t.Helper()
	job, err := dlt.NewJob(dlt.Config{
		Model: model, Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: lr, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestDLTJobRuntimeProgress(t *testing.T) {
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 10, Unit: criteria.Epochs})
	j, err := NewDLTJob("r", mkTrainer(t, "mobilenet", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.AttainmentProgress(nil); got != 0 {
		t.Errorf("fresh runtime progress %v, want 0", got)
	}
	for i := 0; i < 5; i++ {
		j.Trainer().TrainEpoch()
		j.epochs++
	}
	// Algorithm 4: φ = e*/e for runtime criteria → 5/10.
	if got := j.AttainmentProgress(nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("runtime progress %v, want 0.5", got)
	}
	if j.CriteriaMet() {
		t.Error("runtime criterion met early")
	}
	for i := 0; i < 5; i++ {
		j.Trainer().TrainEpoch()
		j.epochs++
	}
	if !j.CriteriaMet() {
		t.Error("runtime criterion not met at target")
	}
	if j.DeadlineExpired() {
		t.Error("runtime criteria never 'expire' — expiry is completion")
	}
}

func TestDLTJobAccuracyProgressUsesTEE(t *testing.T) {
	crit, _ := criteria.NewAccuracy("ACC", 0.85, criteria.Deadline{Value: 30, Unit: criteria.Epochs})
	j, err := NewDLTJob("a", mkTrainer(t, "resnet-18", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	// Repository with one exact-match record reaching 0.85 at epoch 8.
	repo := estimate.NewRepository()
	repo.AddDLT(estimate.DLTRecord{
		ID: "h", Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01,
		Epochs: 8, AccCurve: []float64{0.3, 0.45, 0.57, 0.67, 0.74, 0.79, 0.83, 0.86},
	})
	tee := estimate.NewTEE(repo, 3)
	for i := 0; i < 2; i++ {
		j.Trainer().TrainEpoch()
		j.epochs++
	}
	phi := j.AttainmentProgress(tee)
	// φ = e*/ê with ê near 8: expect roughly 2/8 and certainly well above
	// the conservative 2/30 fallback.
	if phi < 2.0/30+0.02 || phi > 0.6 {
		t.Errorf("accuracy progress %v, want ≈0.25", phi)
	}
	// Without any estimator: conservative fallback e*/e_max.
	if got := j.AttainmentProgress(nil); math.Abs(got-2.0/30) > 1e-9 {
		t.Errorf("fallback progress %v, want %v", got, 2.0/30)
	}
}

func TestDLTJobConvergenceBookkeeping(t *testing.T) {
	crit, _ := criteria.NewConvergence("ACC", 0.05, criteria.Deadline{Value: 40, Unit: criteria.Epochs})
	j, err := NewDLTJob("c", mkTrainer(t, "squeezenet", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	if j.CriteriaMet() {
		t.Error("met before converging")
	}
	for i := 0; i < 30 && j.convergedAtEpoch == 0; i++ {
		j.Trainer().TrainEpoch()
		j.epochs++
		if j.Trainer().Converged(crit.Threshold) {
			j.convergedAtEpoch = j.epochs
		}
	}
	if j.convergedAtEpoch == 0 {
		t.Fatal("never converged at delta 0.05")
	}
	if !j.CriteriaMet() {
		t.Error("converged job does not meet its criterion")
	}
	if got := j.AttainmentProgress(nil); got != 1 {
		t.Errorf("converged progress %v, want 1", got)
	}
}

func TestDLTJobWallTimeDeadlineToEpochs(t *testing.T) {
	crit, _ := criteria.NewAccuracy("ACC", 0.9, criteria.Deadline{Value: 1, Unit: criteria.Hours})
	j, err := NewDLTJob("w", mkTrainer(t, "mobilenet", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	per := float64(j.Trainer().StepsPerEpoch()) * j.Trainer().StepSeconds()
	want := int(3600 / per)
	if got := j.MaxEpochs(); got != want {
		t.Errorf("MaxEpochs = %d, want %d", got, want)
	}
}

func TestDLTProgressWithinBounds(t *testing.T) {
	check := func(seed uint64, epochs uint8) bool {
		crit, _ := criteria.NewAccuracy("ACC", 0.8, criteria.Deadline{Value: 20, Unit: criteria.Epochs})
		trainer, err := dlt.NewJob(dlt.Config{
			Model: "vgg-11", Dataset: "cifar10", BatchSize: 8,
			Optimizer: "adam", LR: 0.001, Seed: seed,
		})
		if err != nil {
			return false
		}
		j, err := NewDLTJob("p", trainer, crit)
		if err != nil {
			return false
		}
		for i := 0; i < int(epochs)%25; i++ {
			trainer.TrainEpoch()
			j.epochs++
		}
		phi := j.AttainmentProgress(nil)
		return phi >= 0 && phi <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthExponentDetectsSuperlinearAccrual(t *testing.T) {
	linear := &cellTrack{env: estimate.NewEnvelope(4)}
	quartic := &cellTrack{env: estimate.NewEnvelope(4)}
	for i := 1; i <= 8; i++ {
		f := float64(i) / 10
		linear.observe(f, 100*f)
		quartic.observe(f, 100*math.Pow(f, 4))
	}
	kl, kq := linear.growthExponent(), quartic.growthExponent()
	if math.Abs(kl-1) > 0.05 {
		t.Errorf("linear growth exponent %v, want ≈1", kl)
	}
	if kq < 3.5 {
		t.Errorf("quartic growth exponent %v, want ≈4", kq)
	}
	// The scaled estimate f^k must be far below f for the quartic cell.
	fresh := &cellTrack{env: estimate.NewEnvelope(4)}
	if got := fresh.growthExponent(); got != 1 {
		t.Errorf("no-data exponent %v, want the uniform default 1", got)
	}
}

func TestJobStatusStringsAndTerminal(t *testing.T) {
	for s, want := range map[JobStatus]string{
		StatusPending: "pending", StatusRunning: "running",
		StatusAttainedStop: "attained", StatusConvergedStop: "converged",
		StatusExpired: "expired",
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", int(s), s.String())
		}
	}
	if StatusPending.Terminal() || StatusRunning.Terminal() {
		t.Error("live status marked terminal")
	}
	if !StatusAttainedStop.Terminal() || !StatusExpired.Terminal() {
		t.Error("final status not marked terminal")
	}
}

func TestRotaryDLTOrderingFairnessVsEfficiency(t *testing.T) {
	mk := func(id string, epochs int) *DLTJob {
		crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 10, Unit: criteria.Epochs})
		j, err := NewDLTJob(id, mkTrainer(t, "mobilenet", 0.01), crit)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < epochs; i++ {
			j.Trainer().TrainEpoch()
			j.epochs++
		}
		return j
	}
	behind := mk("behind", 1) // φ = 0.1
	ahead := mk("ahead", 8)   // φ = 0.8
	ctx := func() *DLTContext {
		return &DLTContext{
			Pending:  []*DLTJob{behind, ahead},
			FreeGPUs: []cluster.GPU{{ID: 0, MemMB: 8192}},
		}
	}
	fairness := NewRotaryDLT(1.0, nil, nil)
	fairness.TrialFirst = false
	if p := fairness.Place(ctx()); len(p) != 1 || p[0].Job.ID() != "behind" {
		t.Errorf("fairness placed %v, want behind", p)
	}
	efficiency := NewRotaryDLT(0.0, nil, nil)
	efficiency.TrialFirst = false
	if p := efficiency.Place(ctx()); len(p) != 1 || p[0].Job.ID() != "ahead" {
		t.Errorf("efficiency placed %v, want ahead", p)
	}
	// Adaptive at T=50%: "behind" is under the threshold, so the policy is
	// still fairness-like.
	adaptive := NewRotaryDLT(0.5, nil, nil)
	adaptive.TrialFirst = false
	if p := adaptive.Place(ctx()); len(p) != 1 || p[0].Job.ID() != "behind" {
		t.Errorf("adaptive under threshold placed %v, want behind", p)
	}
}

func TestRotaryDLTTrialFirst(t *testing.T) {
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 10, Unit: criteria.Epochs})
	fresh, err := NewDLTJob("fresh", mkTrainer(t, "mobilenet", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	ran, err := NewDLTJob("ran", mkTrainer(t, "mobilenet", 0.01), crit)
	if err != nil {
		t.Fatal(err)
	}
	ran.Trainer().TrainEpoch()
	ran.epochs = 9 // nearly done: highest φ under efficiency
	sched := NewRotaryDLT(0.0, nil, nil)
	p := sched.Place(&DLTContext{
		Pending:  []*DLTJob{ran, fresh},
		FreeGPUs: []cluster.GPU{{ID: 0, MemMB: 8192}},
	})
	if len(p) != 1 || p[0].Job.ID() != "fresh" {
		t.Errorf("trial phase did not run the fresh job first: %v", p)
	}
}
