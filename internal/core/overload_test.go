package core_test

import (
	"fmt"
	"testing"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Overload suite: open-loop Poisson arrivals far beyond capacity, with
// admission control, shedding, the epoch watchdog, starvation aging, and
// recoverable fault injection all armed at once. The run must terminate
// with every job terminal, keep the active set at the admission bound,
// and replay bit-identically per seed. Run under -race in CI alongside
// the chaos suite.

type overloadRun struct {
	exec   *core.AQPExecutor
	tracer *core.Tracer
	ctrl   *admission.Controller
	jobs   []*core.AQPJob
	// reg is the run's private metrics registry, so the obs-agreement
	// assertions see exactly this run's counters.
	reg *obs.Registry
}

const overloadQueueBound = 4

// runOverloadAQP drives 24 jobs at mean inter-arrival 5 s into a 2-thread
// pool — roughly 4× over what the pool clears — with every overload
// defence enabled. Deadlines alternate loose/tight so the feasibility
// check, shedding, and in-queue expiry all trigger.
func runOverloadAQP(t *testing.T, cat *tpch.Catalog, seed uint64) overloadRun {
	t.Helper()
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	store.SetObs(reg)
	ctrl := admission.NewController(admission.Config{
		MaxQueueDepth: overloadQueueBound,
		SlackFactor:   1,
		Policy:        admission.ShedLowestValue,
		Obs:           reg,
	})
	tracer := &core.Tracer{}
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 2
	cfg.Store = store
	cfg.Admission = ctrl
	// Slack below 1 makes the budget tighter than the predicted epoch
	// cost once a job has history — a pathological setting that preempts
	// aggressively and so proves the strike backoff makes progress anyway.
	cfg.WatchdogSlack = 0.5
	cfg.AgingRounds = 4
	cfg.Tracer = tracer
	cfg.Obs = reg
	in := faults.New(faults.Recoverable(seed, 0.05))
	store.SetFaults(in)
	cfg.Faults = in
	// EDF genuinely starves under overload — the loose-deadline half of
	// the workload waits behind every tight arrival — so the aging guard
	// has real work to do here, unlike a naturally-rotating policy.
	exec := core.NewAQPExecutor(cfg, baselines.EDFAQP{}, nil)

	r := sim.NewRand(seed)
	queries := []string{"q1", "q6", "q12", "q14", "q3", "q19"}
	var jobs []*core.AQPJob
	at := 0.0
	for i := 0; i < 24; i++ {
		deadline := 1e6
		if i%2 == 1 {
			deadline = 150
		}
		j := buildJob(t, cat, fmt.Sprintf("ov-%02d", i), queries[i%len(queries)], 0.9, deadline)
		jobs = append(jobs, j)
		exec.Submit(j, sim.Time(at))
		at += r.Exp(5)
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("seed %d: overload run: %v", seed, err)
	}
	return overloadRun{exec: exec, tracer: tracer, ctrl: ctrl, jobs: jobs, reg: reg}
}

func TestOverloadOpenLoopSurvives(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	var totalRefused, totalPreempts, totalForced int
	for _, seed := range chaosSeeds {
		run := runOverloadAQP(t, cat, seed)
		for _, j := range run.jobs {
			if !j.Status().Terminal() {
				t.Errorf("seed %d: job %s not terminal (%v)", seed, j.ID(), j.Status())
			}
		}
		ov := run.exec.Overload()
		if ov.MaxPendingDepth > overloadQueueBound {
			t.Errorf("seed %d: queue high-water %d exceeds admission bound %d",
				seed, ov.MaxPendingDepth, overloadQueueBound)
		}
		// Cross-layer counter consistency: the controller's view of
		// refusals must match the executor's terminal statuses.
		st := run.ctrl.Stats()
		var rejected, shed int
		for _, j := range run.jobs {
			switch j.Status() {
			case core.StatusRejected:
				rejected++
			case core.StatusShed:
				shed++
			}
		}
		if st.Submitted != len(run.jobs) {
			t.Errorf("seed %d: controller saw %d submissions of %d", seed, st.Submitted, len(run.jobs))
		}
		if st.Rejected != rejected || st.Shed != shed {
			t.Errorf("seed %d: controller counted rejected=%d shed=%d, statuses say %d/%d",
				seed, st.Rejected, st.Shed, rejected, shed)
		}
		if ov.Rejected != rejected || ov.Shed != shed {
			t.Errorf("seed %d: executor counted rejected=%d shed=%d, statuses say %d/%d",
				seed, ov.Rejected, ov.Shed, rejected, shed)
		}
		// Starvation-freedom: every admitted job was either granted at
		// least once or expired at its own deadline while waiting — never
		// left parked forever.
		for _, j := range run.jobs {
			if j.Status() == core.StatusRejected || j.Status() == core.StatusShed {
				continue
			}
			if j.Epochs() == 0 && j.Status() != core.StatusExpired {
				t.Errorf("seed %d: admitted job %s never ran yet ended %v", seed, j.ID(), j.Status())
			}
		}
		totalRefused += rejected + shed
		totalPreempts += ov.WatchdogPreemptions
		totalForced += ov.ForcedGrants
	}
	// The defences must actually fire somewhere across the three seeds,
	// or the suite proves nothing.
	if totalRefused == 0 {
		t.Error("no job was ever rejected or shed under 4x overload")
	}
	if totalPreempts == 0 {
		t.Error("the epoch watchdog never fired under a slack below 1")
	}
	if totalForced == 0 {
		t.Error("the starvation guard never forced a grant under 4x overload")
	}
}

// The whole overloaded timeline — every admission verdict, shed, watchdog
// preemption, crash, and grant — must replay bit-for-bit from one seed.
func TestOverloadSameSeedBitIdentical(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	a := runOverloadAQP(t, cat, 7)
	b := runOverloadAQP(t, cat, 7)
	if a.exec.Engine().Now() != b.exec.Engine().Now() {
		t.Fatalf("makespans diverged: %v vs %v", a.exec.Engine().Now(), b.exec.Engine().Now())
	}
	if a.exec.Overload() != b.exec.Overload() {
		t.Fatalf("overload counters diverged: %+v vs %+v", a.exec.Overload(), b.exec.Overload())
	}
	if a.ctrl.Stats() != b.ctrl.Stats() {
		t.Fatalf("admission stats diverged: %+v vs %+v", a.ctrl.Stats(), b.ctrl.Stats())
	}
	ea, eb := a.tracer.Events(), b.tracer.Events()
	if len(ea) != len(eb) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("trace event %d diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// A second overload shape: the DLT side under the same defences (bounded
// admission, watchdog, aging) must also terminate with a bounded queue.
func TestOverloadDLTSurvives(t *testing.T) {
	specs := mustGenDLT(t, 16, 7)
	for _, seed := range chaosSeeds {
		store, err := core.NewCheckpointStore(t.TempDir(), 2)
		if err != nil {
			t.Fatal(err)
		}
		ctrl := admission.NewController(admission.Config{
			MaxQueueDepth: 6,
			SlackFactor:   1,
			Policy:        admission.Reject,
		})
		cfg := core.DefaultDLTExecConfig()
		cfg.Store = store
		cfg.Admission = ctrl
		cfg.WatchdogSlack = 3
		cfg.AgingRounds = 4
		in := faults.New(faults.Recoverable(seed, 0.05))
		store.SetFaults(in)
		cfg.Faults = in
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 40, 30, 3); err != nil {
			t.Fatal(err)
		}
		tee := estimate.NewTEE(repo, 3)
		tme := estimate.NewTME(repo, 3)
		exec := core.NewDLTExecutor(cfg, core.NewRotaryDLT(0.5, tee, tme), repo)
		r := sim.NewRand(seed)
		at := 0.0
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			exec.Submit(j, sim.Time(at))
			at += r.Exp(20)
		}
		if err := exec.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, j := range exec.Jobs() {
			if !j.Status().Terminal() {
				t.Errorf("seed %d: DLT job %s not terminal (%v)", seed, j.ID(), j.Status())
			}
		}
		if ov := exec.Overload(); ov.MaxPendingDepth > 6 {
			t.Errorf("seed %d: DLT queue high-water %d exceeds bound 6", seed, ov.MaxPendingDepth)
		}
	}
}

// TestOverloadObsCountersAgree checks the always-on metrics against the
// run's authoritative ledgers: executor OverloadStats, admission Stats,
// and the job outcomes themselves. Any drift means an instrumentation
// site was missed or double-counted.
func TestOverloadObsCountersAgree(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := runOverloadAQP(t, cat, chaosSeeds[0])
	get := func(name string) float64 {
		t.Helper()
		v, ok := run.reg.Value(name)
		if !ok {
			t.Fatalf("metric %s never registered", name)
		}
		return v
	}

	ov := run.exec.Overload()
	ast := run.ctrl.Stats()
	if ov.WatchdogPreemptions == 0 || ast.Rejected == 0 {
		t.Fatalf("overload run triggered no defences (preempts=%d rejected=%d); agreement test is vacuous",
			ov.WatchdogPreemptions, ast.Rejected)
	}
	for name, want := range map[string]int{
		"rotary_aqp_watchdog_preemptions_total":        ov.WatchdogPreemptions,
		"rotary_aqp_rejected_total":                    ov.Rejected,
		"rotary_aqp_shed_total":                        ov.Shed,
		"rotary_aqp_degraded_total":                    ov.Degraded,
		"rotary_aqp_arrivals_total":                    len(run.jobs),
		"rotary_admission_submitted_total":             ast.Submitted,
		"rotary_admission_admitted_total":              ast.Admitted,
		"rotary_admission_rejected_total":              ast.Rejected,
		"rotary_admission_shed_total":                  ast.Shed,
		"rotary_admission_degraded_total":              ast.Degraded,
		"rotary_admission_queue_full_rejections_total": ast.QueueFullRejections,
	} {
		if got := get(name); got != float64(want) {
			t.Errorf("%s = %v, ledger says %d", name, got, want)
		}
	}
	// Terminal accounting: every job ends exactly once, and the per-status
	// outcome counters partition the stop total.
	stops := get("rotary_aqp_stops_total")
	if int(stops) != len(run.jobs) {
		t.Errorf("stops_total = %v, want %d (every job terminal exactly once)", stops, len(run.jobs))
	}
	var byStatus float64
	for _, status := range []string{"attained", "converged", "expired", "rejected", "shed"} {
		if v, ok := run.reg.Value(fmt.Sprintf("rotary_aqp_job_outcomes_total{status=%q}", status)); ok {
			byStatus += v
		}
	}
	if byStatus != stops {
		t.Errorf("per-status outcomes sum to %v, stops_total is %v", byStatus, stops)
	}
	// Gauges settle at zero once the run drains.
	if v := get("rotary_aqp_pending_jobs"); v != 0 {
		t.Errorf("pending_jobs gauge = %v after drain", v)
	}
	if v := get("rotary_aqp_running_jobs"); v != 0 {
		t.Errorf("running_jobs gauge = %v after drain", v)
	}
}
