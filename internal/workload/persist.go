package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file persists synthesized workloads as JSON so a run can be
// repeated exactly — across machines, policies, or code versions — from
// the same job list rather than the same seed.

// workloadFile is the on-disk envelope.
type workloadFile struct {
	// Kind is "aqp" or "dlt".
	Kind string          `json:"kind"`
	AQP  []AQPSpec       `json:"aqp,omitempty"`
	DLT  []dltSpecOnDisk `json:"dlt,omitempty"`
}

// dltSpecOnDisk flattens DLTSpec for stable serialization (criteria are
// stored structurally, not as the DSL string).
type dltSpecOnDisk struct {
	ID       string          `json:"id"`
	Config   json.RawMessage `json:"config"`
	Criteria json.RawMessage `json:"criteria"`
}

// SaveAQPSpecs writes an AQP workload to path.
func SaveAQPSpecs(path string, specs []AQPSpec) error {
	data, err := json.MarshalIndent(workloadFile{Kind: "aqp", AQP: specs}, "", " ")
	if err != nil {
		return fmt.Errorf("workload: encode: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadAQPSpecs reads an AQP workload from path.
func LoadAQPSpecs(path string) ([]AQPSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	var f workloadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("workload: parse %s: %w", path, err)
	}
	if f.Kind != "aqp" {
		return nil, fmt.Errorf("workload: %s holds a %q workload, want aqp", path, f.Kind)
	}
	return f.AQP, nil
}

// SaveDLTSpecs writes a DLT workload to path.
func SaveDLTSpecs(path string, specs []DLTSpec) error {
	f := workloadFile{Kind: "dlt"}
	for _, s := range specs {
		cfg, err := json.Marshal(s.Config)
		if err != nil {
			return fmt.Errorf("workload: encode %s config: %w", s.ID, err)
		}
		crit, err := json.Marshal(s.Criteria)
		if err != nil {
			return fmt.Errorf("workload: encode %s criteria: %w", s.ID, err)
		}
		f.DLT = append(f.DLT, dltSpecOnDisk{ID: s.ID, Config: cfg, Criteria: crit})
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("workload: encode: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDLTSpecs reads a DLT workload from path.
func LoadDLTSpecs(path string) ([]DLTSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	var f workloadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("workload: parse %s: %w", path, err)
	}
	if f.Kind != "dlt" {
		return nil, fmt.Errorf("workload: %s holds a %q workload, want dlt", path, f.Kind)
	}
	out := make([]DLTSpec, 0, len(f.DLT))
	for _, d := range f.DLT {
		var s DLTSpec
		s.ID = d.ID
		if err := json.Unmarshal(d.Config, &s.Config); err != nil {
			return nil, fmt.Errorf("workload: parse %s config: %w", d.ID, err)
		}
		if err := json.Unmarshal(d.Criteria, &s.Criteria); err != nil {
			return nil, fmt.Errorf("workload: parse %s criteria: %w", d.ID, err)
		}
		out = append(out, s)
	}
	return out, nil
}
