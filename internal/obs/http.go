package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is an optional HTTP listener exposing the registry in
// Prometheus text format at /metrics, a trivial /healthz, and the
// net/http/pprof profiling endpoints under /debug/pprof/. It uses its
// own mux — nothing leaks into http.DefaultServeMux.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// MetricsHandler serves reg (wall-clock metrics included) in the
// Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.RenderText(true))
	})
}

// StartDebug listens on addr (e.g. "127.0.0.1:9100", ":0" for an
// ephemeral port) and serves the debug endpoints in a background
// goroutine until Close.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
