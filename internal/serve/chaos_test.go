package serve

import (
	"fmt"
	"sort"
	"testing"

	"rotary/internal/faults"
	"rotary/internal/sim"
)

// chaosEvent is one step of a kill-restart chaos plan: at virtual time
// `at`, either submit a job or SIGKILL the daemon and restart it.
type chaosEvent struct {
	at   float64
	kind string // "submit" or "kill"
	id   string
	stmt string
}

// chaosPlan draws a seeded workload (feasible jobs plus one infeasible
// job that must expire in every run) and merges it with the seed's
// deterministic daemon-kill schedule into one time-ordered plan.
func chaosPlan(seed uint64, withKills bool) []chaosEvent {
	rng := sim.NewRand(seed ^ 0x5e21e)
	queries := []string{"q1", "q3", "q5", "q6"}
	var evs []chaosEvent
	for i := 0; i < 5; i++ {
		evs = append(evs, chaosEvent{
			at:   rng.Range(0, 280),
			kind: "submit",
			id:   fmt.Sprintf("c%d-%d", seed, i),
			stmt: fmt.Sprintf("%s ACC MIN %.0f%% WITHIN 900 SECONDS", queries[rng.IntN(len(queries))], rng.Range(50, 70)),
		})
	}
	evs = append(evs, chaosEvent{
		at:   rng.Range(0, 280),
		kind: "submit",
		id:   fmt.Sprintf("tight-%d", seed),
		stmt: "q1 ACC MIN 99% WITHIN 3 SECONDS",
	})
	if withKills {
		for i, at := range faults.NewCrashSchedule(seed, 300, 3).Points() {
			evs = append(evs, chaosEvent{at: at, kind: "kill", id: fmt.Sprintf("kill-%d", i)})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// runChaosPlan drives one plan against a durable server, killing and
// restarting the daemon at each kill point, and returns every submitted
// job's terminal status. It fails the test if any admitted job is
// dropped, any OK submit disappears, or the run does not terminate.
func runChaosPlan(t *testing.T, plan []chaosEvent) map[string]string {
	t.Helper()
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)
	now := 0.0
	var submitted []string
	for _, ev := range plan {
		if ev.at > now {
			r := c.call(t, Message{Op: "advance", Seconds: ev.at - now})
			if !r.OK {
				t.Fatalf("advance to %.1f: %+v", ev.at, r)
			}
			now = r.VirtualNow
		}
		switch ev.kind {
		case "submit":
			r := c.call(t, Message{Op: "submit", ID: ev.id, ReqID: "req-" + ev.id, Statement: ev.stmt})
			if !r.OK {
				t.Fatalf("submit %s: %+v", ev.id, r)
			}
			submitted = append(submitted, ev.id)
		case "kill":
			h.kill(t)
			h.start(t)
			c = dial(t, h.socket)
			res := c.call(t, Message{Op: "resume"})
			if !res.OK {
				t.Fatalf("resume after %s: %+v", ev.id, res)
			}
			if res.VirtualNow < now-1e-9 {
				t.Fatalf("restart rewound the clock: %.3f < %.3f", res.VirtualNow, now)
			}
			now = res.VirtualNow
		}
	}
	// Run far past every deadline: restart-at-any-virtual-time must still
	// terminate every job.
	if r := c.call(t, Message{Op: "advance", Seconds: 3000}); !r.OK {
		t.Fatalf("final advance: %+v", r)
	}
	got := map[string]string{}
	for _, id := range submitted {
		r := c.call(t, Message{Op: "status", ID: id})
		if !r.OK {
			t.Fatalf("job %s silently dropped: %+v", id, r)
		}
		if r.Status == "pending" || r.Status == "running" || r.Status == "" {
			t.Fatalf("job %s never terminated: %+v", id, r)
		}
		got[id] = r.Status
	}
	dr := c.call(t, Message{Op: "drain"})
	if !dr.OK {
		t.Fatalf("drain: %+v", dr)
	}
	if dr.Terminal != dr.Jobs {
		t.Fatalf("drain left %d/%d jobs unterminated", dr.Jobs-dr.Terminal, dr.Jobs)
	}
	return got
}

// TestKillRestartChaos is the kill-restart chaos suite: for each seed,
// a control run (no kills) and a chaos run (the seed's deterministic
// daemon-kill schedule) execute the same workload; the chaos run must
// terminate, keep every admitted job, and reach the same terminal
// statuses the uninterrupted run reached.
func TestKillRestartChaos(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			control := runChaosPlan(t, chaosPlan(seed, false))
			chaos := runChaosPlan(t, chaosPlan(seed, true))
			if len(chaos) != len(control) {
				t.Fatalf("chaos run tracked %d jobs, control %d", len(chaos), len(control))
			}
			for id, want := range control {
				if chaos[id] != want {
					t.Errorf("job %s: chaos run ended %q, control %q", id, chaos[id], want)
				}
			}
			if want := control[fmt.Sprintf("tight-%d", seed)]; want != "expired" {
				t.Errorf("infeasible job ended %q in control, want expired", want)
			}
		})
	}
}
