package core_test

import (
	"strings"
	"testing"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/tpch"
)

func TestAQPTraceSequencePerJob(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	tracer := &core.Tracer{}
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 1
	cfg.Tracer = tracer
	exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
	a := buildJob(t, cat, "a", "q6", 0.9, 1e6)
	b := buildJob(t, cat, "b", "q12", 0.9, 1e6)
	exec.Submit(a, 0)
	exec.Submit(b, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"a", "b"} {
		evs := tracer.JobEvents(id)
		if len(evs) < 4 {
			t.Fatalf("%s: only %d events", id, len(evs))
		}
		if evs[0].Kind != core.TraceArrive {
			t.Errorf("%s: first event %v, want arrive", id, evs[0].Kind)
		}
		if last := evs[len(evs)-1]; last.Kind != core.TraceStop {
			t.Errorf("%s: last event %v, want stop", id, last.Kind)
		}
		// Grants and epoch completions must strictly alternate, and the
		// timeline must be monotone.
		depth := 0
		prev := evs[0].At
		for _, ev := range evs {
			if ev.At < prev {
				t.Fatalf("%s: time went backwards at %v", id, ev)
			}
			prev = ev.At
			switch ev.Kind {
			case core.TraceGrant:
				depth++
				if depth != 1 {
					t.Fatalf("%s: nested grant", id)
				}
				if ev.Threads != 1 {
					t.Errorf("%s: grant with %d threads, want 1", id, ev.Threads)
				}
			case core.TraceEpochDone:
				depth--
				if depth != 0 {
					t.Fatalf("%s: epoch-done without grant", id)
				}
			}
		}
	}
	if out := tracer.Render(10); !strings.Contains(out, "stop") {
		t.Errorf("rendered trace missing stops:\n%s", out)
	}
}

func TestDLTTraceRecordsPlacementsAndStops(t *testing.T) {
	tracer := &core.Tracer{}
	cfg := core.DefaultDLTExecConfig()
	cfg.GPUs = 1
	cfg.Tracer = tracer
	repo := estimate.NewRepository()
	sched := core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	exec := core.NewDLTExecutor(cfg, sched, repo)
	trainer, err := dlt.NewJob(dlt.Config{
		Model: "lenet", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	crit, _ := criteria.NewRuntime(criteria.Deadline{Value: 3, Unit: criteria.Epochs})
	j, err := core.NewDLTJob("t", trainer, crit)
	if err != nil {
		t.Fatal(err)
	}
	exec.Submit(j, 0)
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tracer.JobEvents("t")
	places, epochs, stops := 0, 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case core.TracePlace:
			places++
			if ev.Device != 0 {
				t.Errorf("placed on device %d of a 1-GPU cluster", ev.Device)
			}
		case core.TraceEpochDone:
			epochs++
		case core.TraceStop:
			stops++
		}
	}
	if places != 3 || epochs != 3 || stops != 1 {
		t.Errorf("places=%d epochs=%d stops=%d, want 3/3/1", places, epochs, stops)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *core.Tracer
	tr.Emit(core.TraceEvent{Kind: core.TraceArrive, Job: "x"})
	if tr.Events() != nil || tr.JobEvents("x") != nil {
		t.Error("nil tracer retained events")
	}
}
