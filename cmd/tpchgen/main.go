// Command tpchgen emits the synthetic TPC-H tables as CSV files, one per
// table, into an output directory.
//
// Usage:
//
//	tpchgen [-sf 0.01] [-seed 1] [-out ./tpch-data] [-tables lineitem,orders,...]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rotary/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpchgen: ")
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor")
		seed   = flag.Uint64("seed", 1, "generation seed")
		out    = flag.String("out", "tpch-data", "output directory")
		tables = flag.String("tables", "", "comma-separated table subset (default: all)")
		stats  = flag.Bool("stats", false, "print table/column statistics instead of writing CSVs")
	)
	flag.Parse()

	ds := tpch.Generate(*sf, *seed)
	if *stats {
		fmt.Print(tpch.RenderStats(ds.Stats()))
		fmt.Printf("generated SF=%g: %d total rows\n", *sf, ds.Rows())
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			want[t] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	writers := []struct {
		name  string
		write func(*csv.Writer) error
	}{
		{"region", func(w *csv.Writer) error {
			if err := w.Write([]string{"r_regionkey", "r_name"}); err != nil {
				return err
			}
			for _, r := range ds.Regions {
				if err := w.Write([]string{itoa(r.RegionKey), r.Name}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"nation", func(w *csv.Writer) error {
			if err := w.Write([]string{"n_nationkey", "n_name", "n_regionkey"}); err != nil {
				return err
			}
			for _, n := range ds.Nations {
				if err := w.Write([]string{itoa(n.NationKey), n.Name, itoa(n.RegionKey)}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"supplier", func(w *csv.Writer) error {
			if err := w.Write([]string{"s_suppkey", "s_name", "s_nationkey", "s_acctbal", "s_comment"}); err != nil {
				return err
			}
			for _, s := range ds.Suppliers {
				if err := w.Write([]string{itoa(s.SuppKey), s.Name, itoa(s.NationKey), ftoa(s.AcctBal), s.Comment}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"customer", func(w *csv.Writer) error {
			if err := w.Write([]string{"c_custkey", "c_name", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment"}); err != nil {
				return err
			}
			for _, c := range ds.Customers {
				if err := w.Write([]string{itoa(c.CustKey), c.Name, itoa(c.NationKey), c.Phone, ftoa(c.AcctBal), c.MktSegment}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"part", func(w *csv.Writer) error {
			if err := w.Write([]string{"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice"}); err != nil {
				return err
			}
			for _, p := range ds.Parts {
				if err := w.Write([]string{itoa(p.PartKey), p.Name, p.Mfgr, p.Brand, p.Type, itoa(p.Size), p.Container, ftoa(p.RetailPrice)}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"partsupp", func(w *csv.Writer) error {
			if err := w.Write([]string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}); err != nil {
				return err
			}
			for _, ps := range ds.PartSupps {
				if err := w.Write([]string{itoa(ps.PartKey), itoa(ps.SuppKey), itoa(ps.AvailQty), ftoa(ps.SupplyCost)}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"orders", func(w *csv.Writer) error {
			if err := w.Write([]string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"}); err != nil {
				return err
			}
			for _, o := range ds.Orders {
				if err := w.Write([]string{itoa(o.OrderKey), itoa(o.CustKey), string(o.OrderStatus), ftoa(o.TotalPrice), o.OrderDate.String(), o.OrderPriority}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"lineitem", func(w *csv.Writer) error {
			header := []string{"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
				"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
				"l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode"}
			if err := w.Write(header); err != nil {
				return err
			}
			for _, l := range ds.Lineitems {
				rec := []string{itoa(l.OrderKey), itoa(l.PartKey), itoa(l.SuppKey), itoa(l.LineNumber),
					ftoa(l.Quantity), ftoa(l.ExtendedPrice), ftoa(l.Discount), ftoa(l.Tax),
					string(l.ReturnFlag), string(l.LineStatus),
					l.ShipDate.String(), l.CommitDate.String(), l.ReceiptDate.String(),
					l.ShipInstruct, l.ShipMode}
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	for _, t := range writers {
		if !selected(t.name) {
			continue
		}
		path := filepath.Join(*out, t.name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := t.write(w); err != nil {
			f.Close()
			log.Fatalf("%s: %v", t.name, err)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			log.Fatalf("%s: %v", t.name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Printf("generated SF=%g: %d total rows\n", *sf, ds.Rows())
}

func itoa(v int32) string   { return strconv.FormatInt(int64(v), 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
