package experiments

import (
	"strings"
	"testing"
)

// fastConfig keeps test runtime low; the benchmarks run the full-size
// configurations.
func fastConfig() Config {
	return Config{SF: 0.01, Seed: 3, Runs: 1, AQPJobs: 18, DLTJobs: 16}
}

func TestFig1aShape(t *testing.T) {
	res, err := Fig1a(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Q19 at 60s checks should be well ahead of Q7 at 60s.
	q19 := res.Series["q19@60s"]
	q7 := res.Series["q7@60s"]
	if len(q19) < 3 || len(q7) < 3 {
		t.Fatalf("series too short: q19=%d q7=%d", len(q19), len(q7))
	}
	if q19[2].DataFrac <= q7[2].DataFrac {
		t.Errorf("q19 progress %v not ahead of q7 %v at same check", q19[2].DataFrac, q7[2].DataFrac)
	}
	// Per-query intervals roughly align the patterns: q7@180s sample 1 vs
	// q19@60s sample 1 should be within a factor ~2.
	q7a := res.Series["q7@180s"]
	if len(q7a) >= 2 && (q7a[1].DataFrac < q19[1].DataFrac*0.4 || q7a[1].DataFrac > q19[1].DataFrac*2.5) {
		t.Errorf("adaptive check intervals do not align progress: q7@180=%v q19@60=%v", q7a[1].DataFrac, q19[1].DataFrac)
	}
	if !strings.Contains(res.Text, "q5@120s") {
		t.Error("rendered text missing q5@120s row")
	}
}

func TestFig1bShape(t *testing.T) {
	res, err := Fig1b(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for model, curve := range res.Curves {
		if len(curve) != 30 {
			t.Fatalf("%s: %d epochs", model, len(curve))
		}
		// Diminishing returns: early gains exceed late gains.
		early := curve[4] - curve[0]
		late := curve[29] - curve[25]
		if early <= late {
			t.Errorf("%s: no diminishing returns (early %.3f <= late %.3f)", model, early, late)
		}
		if curve[29] < 0.5 {
			t.Errorf("%s: final accuracy %.3f too low for a well-tuned model", model, curve[29])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 18 {
		t.Fatalf("want 18 jobs, got %d", len(res.Specs))
	}
	prev := -1.0
	for _, s := range res.Specs {
		if s.ArrivalSecs < prev {
			t.Errorf("arrivals not monotone: %v after %v", s.ArrivalSecs, prev)
		}
		prev = s.ArrivalSecs
		if s.Accuracy < 0.55 || s.Accuracy > 0.95 {
			t.Errorf("accuracy %v outside Table I space", s.Accuracy)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := fastConfig()
	cfg.DLTJobs = 40
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 40 {
		t.Fatalf("want 40 jobs, got %d", len(res.Specs))
	}
	if !strings.Contains(res.Text, "criteria mix observed") {
		t.Error("missing criteria mix line")
	}
}

// statConfig uses the paper's 30-job, 3-run protocol (at reduced SF) for
// the assertions that compare policies: single runs are too noisy.
func statConfig() Config {
	return Config{SF: 0.01, Seed: 1, Runs: 3, AQPJobs: 30, DLTJobs: 24}
}

func TestFig6RotaryWins(t *testing.T) {
	res, err := Fig6(statConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	rotary := res.Reports[PolicyRotaryAQP].AttainedByClass["total"]
	for _, p := range []aqpPolicyName{PolicyRoundRobin, PolicyEDF, PolicyLAF, PolicyReLAQS} {
		if other := res.Reports[p].AttainedByClass["total"]; rotary < other {
			t.Errorf("rotary attained %.1f < %s attained %.1f", rotary, p, other)
		}
	}
}

func TestFig9RandomEstimatorHurts(t *testing.T) {
	res, err := Fig9(statConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	rotary := res.Reports[PolicyRotaryAQP].AttainedByClass["total"]
	random := res.Reports[PolicyRandomEst].AttainedByClass["total"]
	// In this substrate the misleading estimator costs Rotary little on
	// average (the shared mechanisms dominate; see EXPERIMENTS.md), so the
	// assertion allows a one-job tolerance; a larger win for the random
	// estimator would indicate a real inversion.
	if random > rotary+1.0 {
		t.Errorf("random estimator attained %.1f ≫ real estimator %.1f", random, rotary)
	}
	// The paper's stronger claim — both Rotary variants beat round-robin —
	// must hold outright.
	if rr := res.Reports[PolicyRoundRobin].AttainedByClass["total"]; rotary <= rr {
		t.Errorf("rotary %.1f did not beat round-robin %.1f", rotary, rr)
	}
}

func TestFig10FairnessVsEfficiency(t *testing.T) {
	cfg := fastConfig()
	res, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	if len(res.SnapshotTimes) == 0 {
		t.Fatal("no snapshots")
	}
	// At an early-middle snapshot, fairness should have a higher minimum
	// progress than efficiency, and efficiency at least as many attained.
	idx := len(res.SnapshotTimes) / 3
	fair := res.Snapshots[PolicyRotaryFairness][idx]
	eff := res.Snapshots[PolicyRotaryEfficiency][idx]
	if fair.Progress.Min < eff.Progress.Min-1e-9 {
		t.Errorf("fairness min progress %.3f < efficiency %.3f at t=%v",
			fair.Progress.Min, eff.Progress.Min, res.SnapshotTimes[idx])
	}
	last := len(res.SnapshotTimes) - 1
	for _, p := range fig10Policies {
		if res.Snapshots[p][last].Attained == 0 {
			t.Errorf("%s attained nothing by the end", p)
		}
	}
}

func TestFig11ErroneousEstimationDelaysNLPJobs(t *testing.T) {
	res, err := Fig11(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	if res.Erroneous.NLPMeanEndSecs <= res.Reliable.NLPMeanEndSecs {
		t.Errorf("NLP jobs not delayed by erroneous estimation: reliable %.0fs, erroneous %.0fs",
			res.Reliable.NLPMeanEndSecs, res.Erroneous.NLPMeanEndSecs)
	}
}

func TestTable3OverheadNegligible(t *testing.T) {
	res, err := Table3(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The estimators' real cost must be a vanishing fraction of the
		// simulated processing time.
		if r.TTROverhead.Seconds() > 1 || r.TEEOverhead.Seconds() > 5 || r.TMEOverhead.Seconds() > 5 {
			t.Errorf("size %d: overhead too large: ttr=%v tee=%v tme=%v",
				r.WorkloadSize, r.TTROverhead, r.TEEOverhead, r.TMEOverhead)
		}
		if r.OverallRunSecs <= 0 {
			t.Errorf("size %d: no virtual runtime", r.WorkloadSize)
		}
	}
	if res.Rows[3].OverallRunSecs <= res.Rows[0].OverallRunSecs {
		t.Error("larger workloads should take longer overall")
	}
}

func TestAblationMaterialization(t *testing.T) {
	res, err := AblationMaterialization(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	if res.Values["disk-only/makespan"] <= 0 || res.Values["memory-tier/makespan"] <= 0 {
		t.Fatal("missing makespans")
	}
	// The memory tier must not be slower than disk-only (same schedule,
	// cheaper resumes).
	if res.Values["memory-tier/makespan"] > res.Values["disk-only/makespan"]*1.05 {
		t.Errorf("memory tier %.0fs slower than disk-only %.0fs",
			res.Values["memory-tier/makespan"], res.Values["disk-only/makespan"])
	}
}

func TestUnifiedExperiment(t *testing.T) {
	cfg := fastConfig()
	res, err := Unified(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Text)
	for _, label := range []string{"T=100%", "T=0%"} {
		series := res.MinProgressAt[label]
		if len(series) == 0 {
			t.Fatalf("%s: no progress series", label)
		}
		if last := series[len(series)-1]; last != 1 {
			t.Errorf("%s: final cluster min progress %v, want 1", label, last)
		}
	}
	// Cluster-wide fairness must dominate efficiency on the min-progress
	// series at every common sample point (weakly).
	fair, eff := res.MinProgressAt["T=100%"], res.MinProgressAt["T=0%"]
	n := len(fair)
	if len(eff) < n {
		n = len(eff)
	}
	ahead, behind := 0, 0
	for i := 0; i < n; i++ {
		if fair[i] > eff[i]+1e-9 {
			ahead++
		}
		if fair[i] < eff[i]-1e-9 {
			behind++
		}
	}
	if behind > ahead {
		t.Errorf("fairness behind efficiency on min progress at %d of %d samples", behind, n)
	}
}
