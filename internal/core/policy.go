package core

import (
	"rotary/internal/cluster"
	"rotary/internal/sim"
)

// This file defines the resource-arbitration policy interface of §III-D:
// π : Q_t → assign(W, M). A policy sees the current queue state (pending
// and running jobs with their intermediate state) plus the free resources,
// and produces assignment decisions. The executors apply the decisions,
// run the selected jobs for an epoch, observe the attainment progress, and
// invoke the policy again — Algorithm 1's loop.

// AQPContext is the queue state Q_t an AQP policy decides over.
type AQPContext struct {
	Now sim.Time
	// Pending holds active jobs currently without resources; Running holds
	// jobs mid-epoch (informational — their resources are not preemptible
	// before the epoch boundary, per §III-D "a job holds on to a
	// particular resource for at least an epoch").
	Pending []*AQPJob
	Running []*AQPJob

	FreeThreads  int
	TotalThreads int
	FreeMemMB    float64
	TotalMemMB   float64
}

// AQPGrant assigns threads (and a memory reservation) to a pending job
// for its next running epoch.
type AQPGrant struct {
	Job     *AQPJob
	Threads int
	// ReserveMemMB is the memory reservation the executor books against
	// the pool; memory-blind policies (ReLAQS) reserve zero and risk
	// oversubscription pressure.
	ReserveMemMB float64
}

// AQPScheduler is a resource-arbitration policy for the AQP system.
type AQPScheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Assign produces this round's grants. Jobs not granted stay pending
	// (deferred, checkpointed). Grants must not exceed the free resources.
	Assign(ctx *AQPContext) []AQPGrant
}

// DLTContext is the queue state a DLT policy decides over.
type DLTContext struct {
	Now      sim.Time
	Pending  []*DLTJob
	Running  []*DLTJob
	FreeGPUs []cluster.GPU
}

// DLTPlacement assigns a pending job to a free device for one epoch.
type DLTPlacement struct {
	Job    *DLTJob
	Device int
	// EstMemMB is the memory estimate used for the placement decision
	// (recorded for diagnostics; the executor verifies the actual fit).
	EstMemMB float64
}

// DLTScheduler is a resource-arbitration policy for the DLT system.
type DLTScheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Place produces this round's placements onto the free devices.
	Place(ctx *DLTContext) []DLTPlacement
}
