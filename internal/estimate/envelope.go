package estimate

import "math"

// Envelope is the non-parametric convergence estimator of §IV-A: it
// tracks the least (p) and largest (q) aggregation results within a
// sliding window of recent epochs and uses the ratio p/q both as an
// approximate accuracy-progress estimate and as a convergence signal —
// when the window's values stop moving, p/q approaches 1.
//
// The paper notes the estimator "can make mistakes, such as stopping the
// jobs which are not supposed to be permanently terminated" (false
// attainment, Fig. 7a) and that "this issue can be mitigated by
// lengthening the time window" — the ablation bench sweeps Window.
type Envelope struct {
	window int
	vals   []float64
	total  int
}

// NewEnvelope returns an envelope over the last window observations.
// window < 2 is raised to 2.
func NewEnvelope(window int) *Envelope {
	if window < 2 {
		window = 2
	}
	return &Envelope{window: window}
}

// Window reports the configured window length.
func (e *Envelope) Window() int { return e.window }

// Observe appends one per-epoch aggregation result. Non-finite values
// (a divide-by-zero aggregate over an empty partial group) are dropped
// without counting: one NaN in the window would otherwise pin Ratio at 0
// (NaN fails every comparison) and permanently block convergence.
func (e *Envelope) Observe(v float64) {
	if !finite(v) {
		return
	}
	e.total++
	e.vals = append(e.vals, v)
	if len(e.vals) > e.window {
		e.vals = e.vals[len(e.vals)-e.window:]
	}
}

// Observations reports the total number of observations seen.
func (e *Envelope) Observations() int { return e.total }

// Ratio reports p/q over the current window, where p and q are the least
// and largest absolute observations. It reports 0 until the window has at
// least two observations, and 0 whenever the window spans a sign change
// (the aggregate has not stabilized in any sense).
func (e *Envelope) Ratio() float64 {
	if len(e.vals) < 2 {
		return 0
	}
	lo, hi := e.vals[0], e.vals[0]
	for _, v := range e.vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 0 && hi > 0 {
		return 0
	}
	p, q := math.Abs(lo), math.Abs(hi)
	if p > q {
		p, q = q, p
	}
	if q == 0 {
		return 1 // the aggregate is exactly stable at zero
	}
	return p / q
}

// Converged reports whether the window is full and its ratio has reached
// the convergence threshold.
func (e *Envelope) Converged(threshold float64) bool {
	return len(e.vals) >= e.window && e.Ratio() >= threshold
}

// EnvelopeSet maintains one envelope per aggregate cell of a query's
// snapshots (group × column), producing the composite estimated accuracy
// Rotary-AQP arbitrates on. Cells are keyed by the caller.
type EnvelopeSet struct {
	window int
	cells  map[string]*Envelope
}

// NewEnvelopeSet returns an empty set with the given per-cell window.
func NewEnvelopeSet(window int) *EnvelopeSet {
	return &EnvelopeSet{window: window, cells: make(map[string]*Envelope)}
}

// Observe feeds one cell's per-epoch value.
func (s *EnvelopeSet) Observe(key string, v float64) {
	e, ok := s.cells[key]
	if !ok {
		e = NewEnvelope(s.window)
		s.cells[key] = e
	}
	e.Observe(v)
}

// EstimatedAccuracy reports the mean per-cell ratio — the system-side
// estimate of αc/αf that does not require knowing the final answer.
func (s *EnvelopeSet) EstimatedAccuracy() float64 {
	if len(s.cells) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.cells {
		sum += e.Ratio()
	}
	return sum / float64(len(s.cells))
}

// Converged reports whether every cell's envelope has converged at the
// threshold.
func (s *EnvelopeSet) Converged(threshold float64) bool {
	if len(s.cells) == 0 {
		return false
	}
	for _, e := range s.cells {
		if !e.Converged(threshold) {
			return false
		}
	}
	return true
}

// Cells reports how many aggregate cells are tracked.
func (s *EnvelopeSet) Cells() int { return len(s.cells) }
