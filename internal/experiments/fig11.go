package experiments

import (
	"fmt"
	"strings"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/metrics"
	"rotary/internal/workload"
)

// fig11Specs is the 8-job micro-benchmark of §V-B3: five CV jobs plus
// job 4 (BERT), job 5 (Bi-LSTM) and job 6 (LSTM), all with accuracy-
// oriented criteria. The NLP jobs can reach their criteria in a handful
// of epochs — when the epoch estimate is reliable they are triggered
// right after the trial phase and complete early.
func fig11Specs(seed uint64) ([]workload.DLTSpec, error) {
	var firstErr error
	mk := func(i int, model, dataset string, batch int, opt string, lr, acc float64, maxEpochs int) workload.DLTSpec {
		crit, err := criteria.NewAccuracy("ACC", acc,
			criteria.Deadline{Value: float64(maxEpochs), Unit: criteria.Epochs})
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: fig11 job %d criteria: %w", i, err)
		}
		return workload.DLTSpec{
			ID: fmt.Sprintf("job%d-%s", i, model),
			Config: dlt.Config{
				Model: model, Dataset: dataset, BatchSize: batch,
				Optimizer: opt, LR: lr, Seed: seed ^ uint64(i)*0x77,
			},
			Criteria: crit,
		}
	}
	specs := []workload.DLTSpec{
		mk(0, "resnet-18", "cifar10", 32, "sgd", 0.01, 0.88, 25),
		mk(1, "mobilenet", "cifar10", 16, "sgd", 0.01, 0.85, 25),
		mk(2, "vgg-11", "cifar10", 32, "momentum", 0.01, 0.85, 25),
		mk(3, "densenet-121", "cifar10", 16, "sgd", 0.01, 0.88, 30),
		mk(4, "bert-mini", "imdb", 128, "adam", 0.001, 0.80, 20),
		mk(5, "bilstm", "imdb", 64, "adam", 0.001, 0.82, 20),
		mk(6, "lstm", "udtreebank", 64, "adam", 0.001, 0.80, 20),
		mk(7, "shufflenet", "cifar10", 8, "sgd", 0.01, 0.80, 25),
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return specs, nil
}

// Fig11Case is one arm of the epoch-estimation micro-benchmark.
type Fig11Case struct {
	Label string
	// EndSecs[i] is job i's terminal virtual time.
	EndSecs []float64
	// NLPMeanEndSecs averages jobs 4-6 (the estimation-sensitive jobs).
	NLPMeanEndSecs float64
	Gantt          string
}

// Fig11Result compares efficiency Rotary-DLT with reliable vs erroneous
// training-epoch estimation (the NLP history stripped from the
// repository).
type Fig11Result struct {
	Reliable  Fig11Case
	Erroneous Fig11Case
	Text      string
}

// Fig11 regenerates Fig. 11a/11b.
func Fig11(cfg Config) (*Fig11Result, error) {
	specs, err := fig11Specs(cfg.Seed)
	if err != nil {
		return nil, err
	}
	run := func(stripNLP bool, label string) (Fig11Case, error) {
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 60, 30, cfg.Seed); err != nil {
			return Fig11Case{}, err
		}
		// The paper's premise is that the repository held history relevant
		// to these jobs before the NLP records were removed; seed one
		// completed sibling run per benchmark configuration so the
		// "reliable" arm's estimates are actually reliable.
		for i, spec := range specs {
			sibling := spec.Config
			sibling.Seed ^= 0x5ca1ab1e
			trainer, err := dlt.NewJob(sibling)
			if err != nil {
				return Fig11Case{}, err
			}
			var total float64
			for trainer.EpochsTrained() < 30 {
				acc, secs := trainer.TrainEpoch()
				total += secs
				if acc >= spec.Criteria.Threshold {
					break
				}
			}
			sp := trainer.Spec()
			repo.AddDLT(estimate.DLTRecord{
				ID: fmt.Sprintf("hist-fig11-%d", i), Model: sibling.Model, Family: sp.Family,
				Dataset: sibling.Dataset, ParamsM: sp.ParamsM, BatchSize: sibling.BatchSize,
				Optimizer: sibling.Optimizer, LR: sibling.LR,
				Epochs: trainer.EpochsTrained(), AccCurve: trainer.AccuracyHistory(),
				PeakMemMB: trainer.PeakMemoryMB(),
				EpochSecs: total / float64(trainer.EpochsTrained()),
			})
		}
		if stripNLP {
			repo.RemoveDLT(func(rec estimate.DLTRecord) bool { return rec.Dataset == "cifar10" })
		}
		sched := core.NewRotaryDLT(0.0, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				return Fig11Case{}, err
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			return Fig11Case{}, err
		}
		jobs := exec.Jobs()
		c := Fig11Case{Label: label, EndSecs: make([]float64, len(jobs))}
		for i, j := range jobs {
			c.EndSecs[i] = j.EndTime().Seconds()
		}
		c.NLPMeanEndSecs = (c.EndSecs[4] + c.EndSecs[5] + c.EndSecs[6]) / 3
		c.Gantt = metrics.RenderGantt(jobs, 4, exec.Engine().Now(), 48)
		return c, nil
	}

	reliable, err := run(false, "reliable estimation")
	if err != nil {
		return nil, err
	}
	erroneous, err := run(true, "erroneous estimation (NLP history removed)")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Fig 11: job placements under efficiency Rotary-DLT\n\n")
	fmt.Fprintf(&b, "(a) %s — NLP jobs 4-6 mean completion %.0fs\n%s\n", reliable.Label, reliable.NLPMeanEndSecs, reliable.Gantt)
	fmt.Fprintf(&b, "(b) %s — NLP jobs 4-6 mean completion %.0fs\n%s\n", erroneous.Label, erroneous.NLPMeanEndSecs, erroneous.Gantt)
	return &Fig11Result{Reliable: reliable, Erroneous: erroneous, Text: b.String()}, nil
}
