package core

import (
	"sort"

	"rotary/internal/dlt"
	"rotary/internal/estimate"
)

// RotaryDLT implements Algorithm 3, the threshold-based adaptive resource
// arbitration for DLT:
//
//   - while any job is below the attainment-progress threshold T, the
//     policy is fairness-like: the priority queue prefers the LOWEST
//     progress job, so no single job falls far behind;
//   - once every job either meets T or is considered converged, the
//     policy becomes efficiency-centric: the queue prefers the HIGHEST
//     progress job, completing promising jobs quickly.
//
// T = 100% is the pure-fairness variant, T = 0% the pure-efficiency
// variant, T = 50% the adaptive variant of Fig. 10.
type RotaryDLT struct {
	// Threshold is T in [0, 1].
	Threshold float64
	// TEE estimates the epochs needed per job (Algorithm 4's ê).
	TEE *estimate.TEE
	// TME estimates peak memory for placement; nil falls back to the
	// analytic model (used by tests).
	TME *estimate.TME
	// TrialFirst gives never-run jobs one trial epoch before estimates are
	// trusted, matching the trial phase Fig. 11 describes.
	TrialFirst bool
}

// NewRotaryDLT returns the variant with the given threshold T.
func NewRotaryDLT(threshold float64, tee *estimate.TEE, tme *estimate.TME) *RotaryDLT {
	if threshold < 0 {
		threshold = 0
	}
	if threshold > 1 {
		threshold = 1
	}
	return &RotaryDLT{Threshold: threshold, TEE: tee, TME: tme, TrialFirst: true}
}

// Name implements DLTScheduler.
func (r *RotaryDLT) Name() string {
	switch {
	case r.Threshold >= 1:
		return "rotary-dlt-fairness"
	case r.Threshold <= 0:
		return "rotary-dlt-efficiency"
	default:
		return "rotary-dlt-adaptive"
	}
}

// ArbiterProfile implements ProfiledDLTScheduler. TEE and TME are pure
// functions of the repository, so their mutation counters (plus the
// threshold and trial-first knobs) fingerprint the policy's state. The
// policy is clock-free but reads the running set for the all-meet-T
// check, so Running folds into the signature.
func (r *RotaryDLT) ArbiterProfile() ArbiterProfile {
	h := fpInit
	if r.TEE != nil {
		h = fpMix(h, r.TEE.EstimatorVersion()+1)
	}
	if r.TME != nil {
		h = fpMix(h, r.TME.EstimatorVersion()+2)
	}
	h = fpFloat(h, r.Threshold)
	h = fpBool(h, r.TrialFirst)
	return ArbiterProfile{
		Cachable:         true,
		ReadsRunning:     true,
		StateFingerprint: h,
	}
}

// EstimateMemMB returns the TME prediction for the job, falling back to
// the analytic model when the repository has no same-dataset history.
func (r *RotaryDLT) EstimateMemMB(j *DLTJob) float64 {
	q := j.SimilarityQuery()
	if r.TME != nil {
		if mb, ok := r.TME.EstimateMB(q.Dataset, q.ParamsM, q.BatchSize); ok {
			return mb
		}
	}
	cfg := j.Trainer().Config()
	return dlt.PeakMemoryMB(j.Trainer().Spec(), cfg.BatchSize, cfg.Optimizer)
}

// Place implements DLTScheduler (Algorithm 3).
func (r *RotaryDLT) Place(ctx *DLTContext) []DLTPlacement {
	if len(ctx.Pending) == 0 || len(ctx.FreeGPUs) == 0 {
		return nil
	}

	// "if all jobs from W meet T": active jobs = pending ∪ running;
	// converged jobs count as meeting T.
	allMeetT := true
	progress := make(map[string]float64, len(ctx.Pending))
	check := func(j *DLTJob) float64 {
		phi := j.AttainmentProgress(r.TEE)
		if phi < r.Threshold && j.ConvergedAtEpoch() == 0 {
			allMeetT = false
		}
		return phi
	}
	for _, j := range ctx.Pending {
		progress[j.ID()] = check(j)
	}
	for _, j := range ctx.Running {
		check(j)
	}

	pq := make([]*DLTJob, len(ctx.Pending))
	copy(pq, ctx.Pending)
	sort.SliceStable(pq, func(a, b int) bool {
		ja, jb := pq[a], pq[b]
		if r.TrialFirst {
			// Trial phase: jobs with no observed epoch run first so the
			// estimators get real-time data.
			ta, tb := ja.Epochs() == 0, jb.Epochs() == 0
			if ta != tb {
				return ta
			}
		}
		if allMeetT {
			return progress[ja.ID()] > progress[jb.ID()] // efficiency: highest φ first
		}
		return progress[ja.ID()] < progress[jb.ID()] // fairness: lowest φ first
	})

	var placements []DLTPlacement
	used := make(map[string]bool)
	for _, gpu := range ctx.FreeGPUs {
		for _, j := range pq {
			if used[j.ID()] {
				continue
			}
			mb := r.EstimateMemMB(j)
			if mb > gpu.MemMB {
				continue
			}
			placements = append(placements, DLTPlacement{Job: j, Device: gpu.ID, EstMemMB: mb})
			used[j.ID()] = true
			break
		}
	}
	return placements
}
