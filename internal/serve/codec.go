// Wire codecs for the serving protocol. Two codecs share one port:
//
//	JSON lines    one JSON object per \n-terminated line — the debug
//	              codec, human-typable with printf | nc, and the default
//	              for compatibility with every existing client.
//	binary        length-prefixed tag-encoded frames — the heavy-traffic
//	              codec: no reflection, no per-field string keys, one
//	              buffered write per reply.
//
// Negotiation is per connection and costs zero round trips: a binary
// client opens with a 4-byte magic whose first byte (0xB1) can never
// begin a JSON value, so the server peeks one byte and knows. Everything
// after the preamble is frames: a 4-byte big-endian payload length, then
// a payload of (tag, value) pairs — one pair per non-zero field, so the
// wire cost tracks the message's information content exactly like
// omitempty JSON does. Unknown tags are a decode error, not a skip:
// both ends of this protocol ship in one binary, and a frame from a
// newer peer failing loudly beats field loss failing silently.
//
// Both servers (single and router) run the same connLoop over whichever
// codec negotiation picks; the loop preserves the JSON protocol's error
// contract — empty input skipped, malformed input answered with a typed
// bad-request on a still-usable connection, oversized input answered
// with too-large and a close (mid-line the stream position is
// unrecoverable; mid-frame it is recoverable, but the symmetric close
// keeps client logic codec-independent).
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"time"
)

// Codec names (ClientConfig.Codec and metric labels).
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// binCodecMagic is the preamble a binary-codec client writes immediately
// after connect. 0xB1 cannot start a JSON line, so one peeked byte
// decides the codec.
var binCodecMagic = [4]byte{0xB1, 'R', 'B', '1'}

// maxFrameBytes bounds one binary frame's payload, mirroring the JSON
// codec's line limit.
const maxFrameBytes = maxLineBytes

// errTooLarge marks input past the codec's size bound: the connection is
// answered with code "too-large" and closed.
var errTooLarge = errors.New("serve: request exceeds size limit")

// midFrameStall bounds how long the server-side binary codec waits for
// the rest of a frame once its length header has arrived. An idle
// connection can wait for a new frame forever — that is the normal
// persistent-connection state — but a peer that sent a header and then
// died (or stalled) mid-frame would otherwise pin a server goroutine
// indefinitely. The deadline applies to the payload bytes only and is
// cleared once the frame completes.
const midFrameStall = 5 * time.Second

// badRequestError marks recoverable malformed input: the connection is
// answered with code "bad-request" and kept open.
type badRequestError struct{ cause error }

func (e badRequestError) Error() string { return e.cause.Error() }

// serverCodec reads client Messages and writes Responses on one
// negotiated connection.
type serverCodec interface {
	Name() string
	ReadMessage() (Message, error)
	WriteResponse(Response) error
}

// clientCodec is the client-side mirror.
type clientCodec interface {
	WriteMessage(Message) error
	ReadResponse() (Response, error)
}

// negotiateServerCodec peeks the first byte of the connection and
// returns the codec the client selected.
func negotiateServerCodec(conn net.Conn) (serverCodec, error) {
	br := bufio.NewReaderSize(conn, 64*1024)
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] != binCodecMagic[0] {
		return newJSONServerCodec(br, conn), nil
	}
	var preamble [4]byte
	if _, err := io.ReadFull(br, preamble[:]); err != nil {
		return nil, err
	}
	if preamble != binCodecMagic {
		return nil, fmt.Errorf("serve: bad binary-codec preamble % x", preamble)
	}
	return &binServerCodec{r: br, w: bufio.NewWriterSize(conn, 64*1024), conn: conn, stall: midFrameStall}, nil
}

// jsonServerCodec is the JSON-lines codec: the original protocol,
// unchanged on the wire.
type jsonServerCodec struct {
	sc  *bufio.Scanner
	enc *json.Encoder
}

func newJSONServerCodec(r io.Reader, w io.Writer) *jsonServerCodec {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &jsonServerCodec{sc: sc, enc: json.NewEncoder(w)}
}

func (c *jsonServerCodec) Name() string { return CodecJSON }

func (c *jsonServerCodec) ReadMessage() (Message, error) {
	for c.sc.Scan() {
		line := strings.TrimSpace(c.sc.Text())
		if line == "" {
			continue
		}
		var m Message
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return Message{}, badRequestError{err}
		}
		return m, nil
	}
	if errors.Is(c.sc.Err(), bufio.ErrTooLong) {
		return Message{}, errTooLarge
	}
	if err := c.sc.Err(); err != nil {
		return Message{}, err
	}
	return Message{}, io.EOF
}

func (c *jsonServerCodec) WriteResponse(resp Response) error { return c.enc.Encode(resp) }

// binServerCodec is the length-prefixed binary codec, server side.
type binServerCodec struct {
	r     *bufio.Reader
	w     *bufio.Writer
	conn  net.Conn      // deadline control for the mid-frame stall bound
	stall time.Duration // payload-completion deadline; 0 disables
}

func (c *binServerCodec) Name() string { return CodecBinary }

func (c *binServerCodec) ReadMessage() (Message, error) {
	payload, err := readFrameDeadline(c.r, c.conn, c.stall)
	if err != nil {
		return Message{}, err
	}
	m, derr := decodeMessage(payload)
	if derr != nil {
		return Message{}, badRequestError{derr}
	}
	return m, nil
}

func (c *binServerCodec) WriteResponse(resp Response) error {
	if err := writeFrame(c.w, encodeResponse(resp)); err != nil {
		return err
	}
	return c.w.Flush()
}

// readFrame reads one length-prefixed payload.
func readFrame(r *bufio.Reader) ([]byte, error) {
	return readFrameDeadline(r, nil, 0)
}

// readFrameDeadline is readFrame with a payload-completion bound: once
// the header has committed the peer to a frame, the remaining bytes
// must arrive within stall or the read fails with a deadline error and
// the connection loop closes cleanly. The wait for the header itself is
// unbounded — an idle persistent connection is not a fault.
func readFrameDeadline(r *bufio.Reader, conn net.Conn, stall time.Duration) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, errTooLarge
	}
	if conn != nil && stall > 0 && n > 0 {
		conn.SetReadDeadline(time.Now().Add(stall))
		defer conn.SetReadDeadline(time.Time{})
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeFrame writes one length-prefixed payload (no flush).
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// connLoop runs one negotiated connection for either server: read a
// request, hand it to handle, write the reply. It returns when the peer
// closes, a read deadline fires, the transport errors, or an oversized
// request forces the close. onCodec (nil ok) observes the negotiated
// codec once; onOversized (nil ok) counts too-large closes.
func connLoop(conn net.Conn, handle func(Message) Response, onCodec func(string), onOversized func()) {
	cc, err := negotiateServerCodec(conn)
	if err != nil {
		return
	}
	if onCodec != nil {
		onCodec(cc.Name())
	}
	for {
		m, err := cc.ReadMessage()
		switch {
		case err == nil:
			if werr := cc.WriteResponse(handle(m)); werr != nil {
				return
			}
		case errors.Is(err, errTooLarge):
			if onOversized != nil {
				onOversized()
			}
			cc.WriteResponse(Response{
				Error: fmt.Sprintf("serve: request line exceeds %d bytes", maxLineBytes),
				Code:  CodeTooLarge,
			})
			return
		case errors.As(err, &badRequestError{}):
			if werr := cc.WriteResponse(Response{Error: "serve: bad request: " + err.Error(), Code: CodeBadRequest}); werr != nil {
				return
			}
		default:
			return
		}
	}
}

// binClientCodec is the client-side binary codec. The preamble is
// written lazily with the first request so a constructed-but-unused
// client costs nothing.
type binClientCodec struct {
	r         *bufio.Reader
	w         *bufio.Writer
	preambled bool
}

func newBinClientCodec(conn net.Conn) *binClientCodec {
	return &binClientCodec{r: bufio.NewReaderSize(conn, 64*1024), w: bufio.NewWriterSize(conn, 64*1024)}
}

func (c *binClientCodec) WriteMessage(m Message) error {
	if !c.preambled {
		if _, err := c.w.Write(binCodecMagic[:]); err != nil {
			return err
		}
		c.preambled = true
	}
	if err := writeFrame(c.w, encodeMessage(m)); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *binClientCodec) ReadResponse() (Response, error) {
	payload, err := readFrame(c.r)
	if err != nil {
		return Response{}, err
	}
	return decodeResponse(payload)
}

// jsonClientCodec is the client-side JSON-lines codec.
type jsonClientCodec struct {
	sc  *bufio.Scanner
	enc *json.Encoder
}

func newJSONClientCodec(conn net.Conn) *jsonClientCodec {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &jsonClientCodec{sc: sc, enc: json.NewEncoder(conn)}
}

func (c *jsonClientCodec) WriteMessage(m Message) error { return c.enc.Encode(m) }

func (c *jsonClientCodec) ReadResponse() (Response, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, fmt.Errorf("serve: connection closed mid-request")
	}
	var resp Response
	if err := json.Unmarshal([]byte(strings.TrimSpace(c.sc.Text())), &resp); err != nil {
		return Response{}, fmt.Errorf("serve: bad reply: %w", err)
	}
	return resp, nil
}

// --- binary payload encoding ---------------------------------------------
//
// A payload is a sequence of (tag byte, value) pairs, one per non-zero
// field. Value shapes by field type: strings are uvarint length +
// bytes; ints are zigzag varints (negative values survive a malicious
// or buggy peer without silent truncation); float64 is 8 big-endian
// IEEE bytes; bool is the tag alone (presence = true); uint64 is a
// plain uvarint. The two rare nested shapes — the migrate handoff's
// *JobRecord and the shards report's []ShardInfo — ride as
// length-prefixed JSON sub-payloads: they appear on slow-path admin
// ops only, and reusing the JSON shape keeps one source of truth for
// their fields.

// Message field tags.
const (
	mtOp = iota + 1
	mtID
	mtReqID
	mtServerEpoch
	mtStatement
	mtTenant
	mtShard
	mtJob
	mtBatchRows
	mtSeconds
	mtWall
	mtN
)

// Response field tags.
const (
	rtOK = iota + 1
	rtError
	rtCode
	rtID
	rtStatus
	rtTenant
	rtAccuracy
	rtProgress
	rtBestEffort
	rtVirtualNow
	rtJobs
	rtTerminal
	rtReport
	rtDropped
	rtServerEpoch
	rtRecovered
	rtRetryAfterSecs
	rtShard
	rtShards
	rtJobRecord
)

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendInt(b []byte, tag byte, v int) []byte {
	b = append(b, tag)
	return binary.AppendVarint(b, int64(v))
}

func appendString(b []byte, tag byte, s string) []byte {
	b = append(b, tag)
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, tag byte, p []byte) []byte {
	b = append(b, tag)
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendFloat(b []byte, tag byte, f float64) []byte {
	b = append(b, tag)
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func encodeMessage(m Message) []byte {
	b := make([]byte, 0, 64)
	if m.Op != "" {
		b = appendString(b, mtOp, m.Op)
	}
	if m.ID != "" {
		b = appendString(b, mtID, m.ID)
	}
	if m.ReqID != "" {
		b = appendString(b, mtReqID, m.ReqID)
	}
	if m.ServerEpoch != 0 {
		b = appendInt(b, mtServerEpoch, m.ServerEpoch)
	}
	if m.Statement != "" {
		b = appendString(b, mtStatement, m.Statement)
	}
	if m.Tenant != "" {
		b = appendString(b, mtTenant, m.Tenant)
	}
	if m.Shard != 0 {
		b = appendInt(b, mtShard, m.Shard)
	}
	if m.Job != nil {
		p, _ := json.Marshal(m.Job)
		b = appendBytes(b, mtJob, p)
	}
	if m.BatchRows != 0 {
		b = appendInt(b, mtBatchRows, m.BatchRows)
	}
	if m.Seconds != 0 {
		b = appendFloat(b, mtSeconds, m.Seconds)
	}
	if m.Wall {
		b = append(b, mtWall)
	}
	if m.N != 0 {
		b = appendInt(b, mtN, m.N)
	}
	return b
}

func encodeResponse(r Response) []byte {
	b := make([]byte, 0, 128)
	if r.OK {
		b = append(b, rtOK)
	}
	if r.Error != "" {
		b = appendString(b, rtError, r.Error)
	}
	if r.Code != "" {
		b = appendString(b, rtCode, r.Code)
	}
	if r.ID != "" {
		b = appendString(b, rtID, r.ID)
	}
	if r.Status != "" {
		b = appendString(b, rtStatus, r.Status)
	}
	if r.Tenant != "" {
		b = appendString(b, rtTenant, r.Tenant)
	}
	if r.Accuracy != 0 {
		b = appendFloat(b, rtAccuracy, r.Accuracy)
	}
	if r.Progress != 0 {
		b = appendFloat(b, rtProgress, r.Progress)
	}
	if r.BestEffort {
		b = append(b, rtBestEffort)
	}
	if r.VirtualNow != 0 {
		b = appendFloat(b, rtVirtualNow, r.VirtualNow)
	}
	if r.Jobs != 0 {
		b = appendInt(b, rtJobs, r.Jobs)
	}
	if r.Terminal != 0 {
		b = appendInt(b, rtTerminal, r.Terminal)
	}
	if r.Report != "" {
		b = appendString(b, rtReport, r.Report)
	}
	if r.Dropped != 0 {
		b = append(b, rtDropped)
		b = appendUvarint(b, r.Dropped)
	}
	if r.ServerEpoch != 0 {
		b = appendInt(b, rtServerEpoch, r.ServerEpoch)
	}
	if r.Recovered != 0 {
		b = appendInt(b, rtRecovered, r.Recovered)
	}
	if r.RetryAfterSecs != 0 {
		b = appendFloat(b, rtRetryAfterSecs, r.RetryAfterSecs)
	}
	if r.Shard != 0 {
		b = appendInt(b, rtShard, r.Shard)
	}
	if len(r.Shards) != 0 {
		p, _ := json.Marshal(r.Shards)
		b = appendBytes(b, rtShards, p)
	}
	if r.Job != nil {
		p, _ := json.Marshal(r.Job)
		b = appendBytes(b, rtJobRecord, p)
	}
	return b
}

// payloadReader walks a tag-encoded payload with bounds checks; any
// malformed read poisons it so decode loops can check the error once.
type payloadReader struct {
	b   []byte
	pos int
	err error
}

func (p *payloadReader) more() bool { return p.err == nil && p.pos < len(p.b) }

func (p *payloadReader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("serve: truncated binary payload (%s at offset %d)", what, p.pos)
	}
}

func (p *payloadReader) tag() byte {
	if p.err != nil || p.pos >= len(p.b) {
		p.fail("tag")
		return 0
	}
	t := p.b[p.pos]
	p.pos++
	return t
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		p.fail("uvarint")
		return 0
	}
	p.pos += n
	return v
}

func (p *payloadReader) int() int {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.b[p.pos:])
	if n <= 0 {
		p.fail("varint")
		return 0
	}
	p.pos += n
	return int(v)
}

func (p *payloadReader) bytes() []byte {
	n := p.uvarint()
	if p.err != nil {
		return nil
	}
	if n > uint64(len(p.b)-p.pos) {
		p.fail("bytes")
		return nil
	}
	out := p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return out
}

func (p *payloadReader) string() string { return string(p.bytes()) }

func (p *payloadReader) float() float64 {
	if p.err != nil {
		return 0
	}
	if len(p.b)-p.pos < 8 {
		p.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(p.b[p.pos:]))
	p.pos += 8
	return v
}

func decodeMessage(b []byte) (Message, error) {
	var m Message
	p := &payloadReader{b: b}
	for p.more() {
		switch t := p.tag(); t {
		case mtOp:
			m.Op = p.string()
		case mtID:
			m.ID = p.string()
		case mtReqID:
			m.ReqID = p.string()
		case mtServerEpoch:
			m.ServerEpoch = p.int()
		case mtStatement:
			m.Statement = p.string()
		case mtTenant:
			m.Tenant = p.string()
		case mtShard:
			m.Shard = p.int()
		case mtJob:
			var jr JobRecord
			if raw := p.bytes(); p.err == nil {
				if err := json.Unmarshal(raw, &jr); err != nil {
					return m, fmt.Errorf("serve: binary message job record: %w", err)
				}
				m.Job = &jr
			}
		case mtBatchRows:
			m.BatchRows = p.int()
		case mtSeconds:
			m.Seconds = p.float()
		case mtWall:
			m.Wall = true
		case mtN:
			m.N = p.int()
		default:
			return m, fmt.Errorf("serve: unknown binary message tag %d", t)
		}
	}
	return m, p.err
}

func decodeResponse(b []byte) (Response, error) {
	var r Response
	p := &payloadReader{b: b}
	for p.more() {
		switch t := p.tag(); t {
		case rtOK:
			r.OK = true
		case rtError:
			r.Error = p.string()
		case rtCode:
			r.Code = p.string()
		case rtID:
			r.ID = p.string()
		case rtStatus:
			r.Status = p.string()
		case rtTenant:
			r.Tenant = p.string()
		case rtAccuracy:
			r.Accuracy = p.float()
		case rtProgress:
			r.Progress = p.float()
		case rtBestEffort:
			r.BestEffort = true
		case rtVirtualNow:
			r.VirtualNow = p.float()
		case rtJobs:
			r.Jobs = p.int()
		case rtTerminal:
			r.Terminal = p.int()
		case rtReport:
			r.Report = p.string()
		case rtDropped:
			r.Dropped = p.uvarint()
		case rtServerEpoch:
			r.ServerEpoch = p.int()
		case rtRecovered:
			r.Recovered = p.int()
		case rtRetryAfterSecs:
			r.RetryAfterSecs = p.float()
		case rtShard:
			r.Shard = p.int()
		case rtShards:
			if raw := p.bytes(); p.err == nil && len(raw) > 0 {
				if err := json.Unmarshal(raw, &r.Shards); err != nil {
					return r, fmt.Errorf("serve: binary response shards: %w", err)
				}
			}
		case rtJobRecord:
			var jr JobRecord
			if raw := p.bytes(); p.err == nil {
				if err := json.Unmarshal(raw, &jr); err != nil {
					return r, fmt.Errorf("serve: binary response job record: %w", err)
				}
				r.Job = &jr
			}
		default:
			return r, fmt.Errorf("serve: unknown binary response tag %d", t)
		}
	}
	return r, p.err
}

// --- listen address specs -------------------------------------------------

// parseListenAddr splits a listener spec into (network, address):
// "tcp:host:port" listens on TCP, "unix:/path" on a Unix socket, and a
// bare path keeps the historical Unix-socket meaning.
func parseListenAddr(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "tcp:"):
		addr = strings.TrimPrefix(spec, "tcp:")
		if addr == "" {
			return "", "", fmt.Errorf("serve: empty tcp listen address in %q", spec)
		}
		return "tcp", addr, nil
	case strings.HasPrefix(spec, "unix:"):
		addr = strings.TrimPrefix(spec, "unix:")
		if addr == "" {
			return "", "", fmt.Errorf("serve: empty unix socket path in %q", spec)
		}
		return "unix", addr, nil
	case spec == "":
		return "", "", errors.New("serve: empty listen address")
	default:
		return "unix", spec, nil
	}
}

// bindListeners binds the primary Unix socket plus every extra spec,
// closing everything already bound on any failure.
func bindListeners(socket string, extra []string) ([]net.Listener, error) {
	specs := make([]string, 0, 1+len(extra))
	if socket != "" {
		specs = append(specs, "unix:"+socket)
	}
	specs = append(specs, extra...)
	var lns []net.Listener
	fail := func(err error) ([]net.Listener, error) {
		for _, ln := range lns {
			ln.Close()
		}
		return nil, err
	}
	for _, spec := range specs {
		network, addr, err := parseListenAddr(spec)
		if err != nil {
			return fail(err)
		}
		if network == "unix" {
			if err := removeStaleSocket(addr); err != nil {
				return fail(err)
			}
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			return fail(err)
		}
		lns = append(lns, ln)
	}
	if len(lns) == 0 {
		return nil, errors.New("serve: no listen addresses")
	}
	return lns, nil
}
