package aqp

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"rotary/internal/sim"
	"rotary/internal/stream"
)

func TestAggKindsReduceCorrectly(t *testing.T) {
	gt := NewGroupTable([]AggSpec{
		{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}, {Name: "a", Kind: Avg},
		{Name: "mn", Kind: Min}, {Name: "mx", Kind: Max},
	})
	for _, v := range []float64{4, -2, 10} {
		gt.Update("g", v, v, v, v, v)
	}
	vals := gt.Snapshot().Groups["g"]
	want := []float64{12, 3, 4, -2, 10}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Errorf("col %d = %v, want %v", i, vals[i], w)
		}
	}
}

func TestNaNSkipsColumn(t *testing.T) {
	gt := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}})
	gt.Update("g", math.NaN(), 1)
	gt.Update("g", 5, 1)
	vals := gt.Snapshot().Groups["g"]
	if vals[0] != 5 {
		t.Errorf("sum with NaN skip = %v, want 5", vals[0])
	}
	if vals[1] != 2 {
		t.Errorf("count = %v, want 2", vals[1])
	}
}

func TestAccuracyIdentityAndBounds(t *testing.T) {
	mk := func(vals map[string][]float64) Snapshot {
		return Snapshot{Specs: []AggSpec{{Name: "x", Kind: Sum}}, Groups: vals}
	}
	full := mk(map[string][]float64{"a": {100}, "b": {50}})
	if got := Accuracy(full, full); got != 1 {
		t.Errorf("Accuracy(s, s) = %v, want 1", got)
	}
	half := mk(map[string][]float64{"a": {50}, "b": {25}})
	if got := Accuracy(half, full); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half accuracy = %v, want 0.5", got)
	}
	missing := mk(map[string][]float64{"a": {100}})
	if got := Accuracy(missing, full); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("missing-group accuracy = %v, want 0.5", got)
	}
	opposite := mk(map[string][]float64{"a": {-100}, "b": {-50}})
	if got := Accuracy(opposite, full); got != 0 {
		t.Errorf("opposite-sign accuracy = %v, want 0", got)
	}
}

func TestAccuracyPropertyBounds(t *testing.T) {
	check := func(seed uint64, groups uint8) bool {
		r := sim.NewRand(seed)
		specs := []AggSpec{{Name: "a", Kind: Sum}, {Name: "b", Kind: Avg}}
		cur := Snapshot{Specs: specs, Groups: map[string][]float64{}}
		fin := Snapshot{Specs: specs, Groups: map[string][]float64{}}
		n := int(groups)%10 + 1
		for i := 0; i < n; i++ {
			g := string(rune('a' + i))
			fin.Groups[g] = []float64{r.Range(-100, 100), r.Range(-100, 100)}
			if r.Float64() < 0.8 {
				cur.Groups[g] = []float64{r.Range(-100, 100), r.Range(-100, 100)}
			}
		}
		acc := Accuracy(cur, fin)
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyWeightsHonored(t *testing.T) {
	specs := []AggSpec{{Name: "x", Kind: Sum, Weight: 3}, {Name: "y", Kind: Sum, Weight: 1}}
	full := Snapshot{Specs: specs, Groups: map[string][]float64{"g": {100, 100}}}
	cur := Snapshot{Specs: specs, Groups: map[string][]float64{"g": {100, 0}}}
	// x exact (weight 3/4), y zero (weight 1/4) → 0.75.
	if got := Accuracy(cur, full); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("weighted accuracy = %v, want 0.75", got)
	}
}

func TestGroupTableJSONRoundTrip(t *testing.T) {
	check := func(seed uint64, rows uint8) bool {
		r := sim.NewRand(seed)
		gt := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}, {Name: "m", Kind: Min}})
		for i := 0; i < int(rows); i++ {
			gt.Update(string(rune('a'+r.IntN(5))), r.Range(-10, 10), r.Range(-10, 10))
		}
		data, err := json.Marshal(gt)
		if err != nil {
			return false
		}
		back := &GroupTable{}
		if err := json.Unmarshal(data, back); err != nil {
			return false
		}
		a, b := gt.Snapshot(), back.Snapshot()
		if len(a.Groups) != len(b.Groups) {
			return false
		}
		for g, vals := range a.Groups {
			for i, v := range vals {
				if b.Groups[g][i] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsEmptySpecs(t *testing.T) {
	gt := &GroupTable{}
	if err := json.Unmarshal([]byte(`{"specs":[],"groups":{}}`), gt); err == nil {
		t.Error("accepted checkpoint without specs")
	}
}

func TestSpeedupMonotonic(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 16; k++ {
		s := Speedup(k)
		if s <= prev {
			t.Fatalf("Speedup(%d) = %v not increasing", k, s)
		}
		if s > float64(k) {
			t.Fatalf("Speedup(%d) = %v superlinear", k, s)
		}
		prev = s
	}
	if Speedup(0) != 1 || Speedup(-3) != 1 {
		t.Error("degenerate thread counts must give speedup 1")
	}
}

func TestBatchCostScaling(t *testing.T) {
	cm := CostModel{SecsPerRow: 0.001, FixedPerBatch: 0.05}
	one := cm.BatchCost(1000, 1)
	four := cm.BatchCost(1000, 4)
	if four >= one {
		t.Errorf("4-thread cost %v not below 1-thread %v", four, one)
	}
	if cm.BatchCost(0, 1) != 0 {
		t.Error("zero rows must cost zero")
	}
}

func TestRunningQueryLifecycle(t *testing.T) {
	records := make([]float64, 100)
	for i := range records {
		records[i] = float64(i)
	}
	topic := stream.NewTopic("t", records, 2)
	mk := func() *Running[float64] {
		return NewRunning("sumq", stream.NewConsumer(topic),
			[]AggSpec{{Name: "sum", Kind: Sum}},
			Processor[float64]{Process: func(rows []float64, gt *GroupTable) {
				for _, v := range rows {
					gt.Update("all", v)
				}
			}},
			CostModel{SecsPerRow: 0.01})
	}
	final := mk()
	for {
		rows, _ := final.ProcessBatch(64, 1)
		if rows == 0 {
			break
		}
	}
	truth := final.Snapshot()

	q := mk()
	q.SetFinal(truth)
	rows, cost := q.ProcessBatch(50, 2)
	if rows != 50 {
		t.Fatalf("processed %d rows, want 50", rows)
	}
	if cost <= 0 {
		t.Fatal("non-positive cost")
	}
	if acc := q.Accuracy(); acc <= 0 || acc >= 1 {
		t.Fatalf("mid-stream accuracy %v not in (0,1)", acc)
	}
	cp, err := q.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	q2 := mk()
	q2.SetFinal(truth)
	if err := q2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if q2.RowsProcessed() != 50 || q2.DataProgress() != 0.5 {
		t.Fatalf("restored rows=%d progress=%v", q2.RowsProcessed(), q2.DataProgress())
	}
	for !q2.Exhausted() {
		q2.ProcessBatch(64, 1)
	}
	if acc := q2.Accuracy(); math.Abs(acc-1) > 1e-12 {
		t.Fatalf("final accuracy after restore = %v", acc)
	}
	// Restoring a checkpoint from another query must fail.
	other := NewRunning("otherq", stream.NewConsumer(topic),
		[]AggSpec{{Name: "sum", Kind: Sum}},
		Processor[float64]{Process: func([]float64, *GroupTable) {}},
		CostModel{SecsPerRow: 0.01})
	if err := other.Restore(cp); err == nil {
		t.Error("restored a checkpoint from a different query")
	}
}

func TestMemoryProfileEstimate(t *testing.T) {
	p := MemoryProfile{ResidentRows: 1000, ResidentRowBytes: 100, ProjectedGroups: 10, GroupBytes: 100}
	mb := p.EstimateMB()
	want := (1000*100 + 10*100) * 1.25 / (1 << 20)
	if math.Abs(mb-want) > 1e-9 {
		t.Errorf("EstimateMB = %v, want %v", mb, want)
	}
}
