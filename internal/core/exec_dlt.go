package core

import (
	"errors"
	"fmt"
	"math"

	"rotary/internal/admission"
	"rotary/internal/cluster"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
)

// DLTExecConfig sizes the DLT cluster. The paper's testbed has 4 GPUs
// with 8 GB each.
type DLTExecConfig struct {
	GPUs     int
	GPUMemMB float64
	// SwapBaseSecs and SwapSecsPerParamM price evicting a job to disk and
	// reloading it onto a device (checkpoint + restore + context setup).
	SwapBaseSecs     float64
	SwapSecsPerParam float64
	// RecordHistory appends completed jobs to the repository.
	RecordHistory bool
	// Store, when set, actually persists deferred jobs' trainer state and
	// restores it when the job swaps back onto a device — required for
	// fault injection, where recovery replays persisted state.
	Store *CheckpointStore
	// Faults, when set, deals deterministic device crashes into running
	// epochs (checkpoint I/O faults are dealt by arming the Store with the
	// same injector).
	Faults *faults.Injector
	// CrashRecoverySecs is the virtual time between a device crash and the
	// job rejoining the pending queue. Defaults to 2s. The device itself
	// stays down for the injector's repair delay.
	CrashRecoverySecs float64
	// Tracer, when set, records the arbitration timeline. Nil adopts the
	// process default tracer if one was installed (SetDefaultTracer).
	Tracer *Tracer
	// Obs selects the metrics registry (see AQPExecConfig.Obs). Nil uses
	// the process-wide obs.Default().
	Obs *obs.Registry
	// Admission, when set, gates arrivals exactly as on the AQP side: see
	// AQPExecConfig.Admission.
	Admission *admission.Controller
	// WatchdogSlack arms the epoch watchdog (see
	// AQPExecConfig.WatchdogSlack); requires a Store. Zero disables it.
	WatchdogSlack float64
	// WatchdogPenaltySecs is the re-queue delay after a watchdog
	// preemption. Defaults to 5s.
	WatchdogPenaltySecs float64
	// AgingRounds, when > 0, wraps the scheduler in a starvation guard
	// (see AQPExecConfig.AgingRounds).
	AgingRounds int
	// FastPath enables the arbitration decision cache (see
	// AQPExecConfig.FastPath and DESIGN.md §11): profiled schedulers
	// replay cached placement templates on identical queue-state
	// signatures, with bit-identical decisions either way.
	FastPath bool
}

// DefaultDLTExecConfig mirrors the paper's 4 × 8 GB testbed.
func DefaultDLTExecConfig() DLTExecConfig {
	return DLTExecConfig{
		GPUs:             4,
		GPUMemMB:         8192,
		SwapBaseSecs:     3.0,
		SwapSecsPerParam: 0.05,
		RecordHistory:    true,
	}
}

// DLTExecutor drives a DLT workload through a scheduling policy over
// virtual time: one evaluation epoch per placement, TTR recording, the
// convergence delta check, deadline expiry, swap overheads for evicted
// jobs, and OOM detection when a placement's actual footprint exceeds the
// device (the failure mode TME's padding exists to prevent).
type DLTExecutor struct {
	eng   *sim.Engine
	gpus  *cluster.GPUCluster
	sched DLTScheduler
	repo  *estimate.Repository
	ttr   *dlt.TTR
	cfg   DLTExecConfig

	jobs    []*DLTJob
	pending []*DLTJob
	running map[string]*DLTJob
	// limbo counts jobs in neither queue: preempted or crashed, waiting
	// out a penalty/recovery delay before re-enqueueing. Admission counts
	// them — they still occupy a slot of the bounded active set.
	limbo int

	// roundRunning counts the jobs still mid-epoch in the current
	// scheduling round. Algorithm 3 is round-based: every round rebuilds
	// the priority queue over all active jobs and assigns every device;
	// the next round starts when all placed jobs complete their epoch.
	roundRunning int
	// deviceLastJob tracks the last occupant of each device so a job that
	// is continuously prioritized onto the same device avoids the
	// checkpoint/restore/warm-up swap cost (§III-C's third advantage).
	deviceLastJob map[int]string

	arbPending    bool
	terminalCount int
	oomEvents     int
	storeErr      error
	rec           RecoveryStats
	overload      OverloadStats
	guard         *StarvationGuardDLT
	met           *execMetrics
	fast          *dltFastPath

	// Arbitration scratch, reused across rounds (see AQPExecutor): the
	// context and its slices are valid only during one Place call.
	arbCtx     DLTContext
	arbPend    []*DLTJob
	arbRunning []*DLTJob

	ownsEngine bool
	onDone     func()
}

// NewDLTExecutor builds an executor over a fresh engine and GPU cluster.
func NewDLTExecutor(cfg DLTExecConfig, sched DLTScheduler, repo *estimate.Repository) *DLTExecutor {
	e := NewDLTExecutorOn(sim.New(), cfg, sched, repo)
	e.ownsEngine = true
	return e
}

// NewDLTExecutorOn builds an executor over an existing engine, so that
// multiple executors (the unified AQP+DLT system of §VI) share one
// virtual clock.
func NewDLTExecutorOn(eng *sim.Engine, cfg DLTExecConfig, sched DLTScheduler, repo *estimate.Repository) *DLTExecutor {
	if cfg.GPUs <= 0 {
		cfg.GPUs = 4
	}
	if cfg.GPUMemMB <= 0 {
		cfg.GPUMemMB = 8192
	}
	if repo == nil {
		repo = estimate.NewRepository()
	}
	if cfg.CrashRecoverySecs <= 0 {
		cfg.CrashRecoverySecs = 2
	}
	if cfg.WatchdogPenaltySecs <= 0 {
		cfg.WatchdogPenaltySecs = 5
	}
	if cfg.Tracer == nil {
		cfg.Tracer = defaultTracer
	}
	e := &DLTExecutor{
		eng:           eng,
		gpus:          cluster.NewUniformGPUCluster(cfg.GPUs, cfg.GPUMemMB),
		sched:         sched,
		repo:          repo,
		ttr:           dlt.NewTTR(),
		cfg:           cfg,
		running:       make(map[string]*DLTJob),
		deviceLastJob: make(map[int]string),
		met:           newExecMetrics(cfg.Obs, "dlt"),
	}
	if cfg.AgingRounds > 0 {
		e.guard = NewStarvationGuardDLT(sched, cfg.AgingRounds)
		e.sched = e.guard
	}
	if cfg.FastPath {
		e.fast = newDLTFastPath(e.sched)
	}
	return e
}

// Engine exposes the virtual clock.
func (e *DLTExecutor) Engine() *sim.Engine { return e.eng }

// Tracer exposes the configured tracer (nil when tracing is disabled).
func (e *DLTExecutor) Tracer() *Tracer { return e.cfg.Tracer }

// Jobs returns every submitted job.
func (e *DLTExecutor) Jobs() []*DLTJob { return e.jobs }

// TTR exposes the training-time recorder (Table III reads its overhead).
func (e *DLTExecutor) TTR() *dlt.TTR { return e.ttr }

// OOMEvents reports placements that exceeded device memory.
func (e *DLTExecutor) OOMEvents() int { return e.oomEvents }

// Recovery reports the executor's fault-recovery counters.
func (e *DLTExecutor) Recovery() RecoveryStats { return e.rec }

// Overload reports the executor's overload-protection counters.
func (e *DLTExecutor) Overload() OverloadStats {
	o := e.overload
	if e.guard != nil {
		o.ForcedGrants = e.guard.ForcedGrants()
	}
	return o
}

// Admission exposes the configured admission controller (nil when
// admission is disabled).
func (e *DLTExecutor) Admission() *admission.Controller { return e.cfg.Admission }

// Submit schedules a job's arrival.
func (e *DLTExecutor) Submit(j *DLTJob, at sim.Time) {
	if e.cfg.Store != nil && j.pristine == nil {
		if data, err := j.job.Checkpoint(); err != nil {
			e.storeErr = fmt.Errorf("core: pristine checkpoint %s: %w", j.ID(), err)
		} else {
			j.pristine = data
		}
	}
	e.jobs = append(e.jobs, j)
	e.eng.ScheduleAt(at, func() {
		j.arrival = e.eng.Now()
		j.arrived = true
		j.status = StatusPending
		e.met.arrivals.Inc()
		if e.cfg.Admission != nil && !e.admit(j) {
			return
		}
		e.enqueue(j)
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceArrive, Job: j.ID(), Tenant: j.tenant})
		e.scheduleArbitrate()
	})
}

// admit runs the admission decision for an arriving job, reporting
// whether the job entered the wait queue (see AQPExecutor.admit).
func (e *DLTExecutor) admit(j *DLTJob) bool {
	ctrl := e.cfg.Admission
	depth := len(e.pending) + len(e.running) + e.limbo
	remaining := math.Inf(1)
	if secs, ok := j.crit.Deadline.DeadlineSeconds(); ok {
		remaining = secs
	}
	tenantPending := 0
	for _, p := range e.pending {
		if p.tenant == j.tenant {
			tenantPending++
		}
	}
	req := admission.Request{
		ID:                j.ID(),
		QueueDepth:        depth,
		EstCompletionSecs: e.estCompletionSecs(j),
		RemainingSecs:     remaining,
		Tenant:            j.tenant,
		Now:               e.eng.Now().Seconds(),
		TenantPending:     tenantPending,
	}
	dec := ctrl.Decide(req)
	switch dec.Verdict {
	case admission.DegradeBestEffort:
		j.bestEffort = true
		e.overload.Degraded++
		e.met.degraded.Inc()
		return true
	case admission.RejectJob:
		e.rejectJob(j, StatusRejected, dec.Reason)
		return false
	case admission.ShedVictim:
		v := e.shedVictim(j)
		if v == nil {
			ctrl.ResolveShed(req, false)
			e.rejectJob(j, StatusRejected, "queue-full no-victim")
			return false
		}
		ctrl.ResolveShed(req, true)
		e.removePending(v)
		e.rejectJob(v, StatusShed, fmt.Sprintf("for %s", j.ID()))
		return true
	default:
		return true
	}
}

// estCompletionSecs estimates an arrival's queueing delay plus first
// epoch under the current load, spread over the device fleet.
func (e *DLTExecutor) estCompletionSecs(j *DLTJob) float64 {
	var backlog float64
	for _, p := range e.pending {
		backlog += p.nextEpochSecsGuess()
	}
	for _, r := range e.running {
		backlog += r.nextEpochSecsGuess()
	}
	return backlog/float64(e.gpus.Size()) + j.nextEpochSecsGuess()
}

// shedVictim picks the queued job with strictly lower value than the
// arrival (see AQPExecutor.shedVictim).
func (e *DLTExecutor) shedVictim(arrival *DLTJob) *DLTJob {
	var victim *DLTJob
	for _, p := range e.pending {
		if victim == nil || dltLessValuable(p, victim) {
			victim = p
		}
	}
	if victim != nil && dltLessValuable(victim, arrival) {
		return victim
	}
	return nil
}

// dltLessValuable orders jobs by shedding preference: best-effort first,
// then lower attainment progress, then larger epoch bound (less urgent),
// then larger ID.
func dltLessValuable(a, b *DLTJob) bool {
	if a.bestEffort != b.bestEffort {
		return a.bestEffort
	}
	pa, pb := a.AttainmentProgress(nil), b.AttainmentProgress(nil)
	if pa != pb {
		return pa < pb
	}
	if a.MaxEpochs() != b.MaxEpochs() {
		return a.MaxEpochs() > b.MaxEpochs()
	}
	return a.id > b.id
}

// rejectJob terminates a job outside the normal stop path (see
// AQPExecutor.rejectJob).
func (e *DLTExecutor) rejectJob(j *DLTJob, status JobStatus, detail string) {
	kind := TraceReject
	if status == StatusShed {
		kind = TraceShed
		e.overload.Shed++
		e.met.shed.Inc()
		// A shed victim was admitted earlier and held a tenant slot.
		if e.cfg.Admission != nil {
			e.cfg.Admission.JobDone(j.tenant)
		}
	} else {
		e.overload.Rejected++
		e.met.rejected.Inc()
	}
	if e.cfg.Store != nil {
		e.cfg.Store.Remove(j.ID())
	}
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: kind, Job: j.ID(), Tenant: j.tenant, Detail: detail})
	j.status = status
	j.endTime = e.eng.Now()
	e.met.outcome(status)
	e.terminalCount++
	if e.terminalCount == len(e.jobs) {
		if e.ownsEngine {
			e.eng.Stop()
		} else if e.onDone != nil {
			e.onDone()
		}
	}
}

// enqueue appends to the wait queue, tracking its high-water mark.
func (e *DLTExecutor) enqueue(j *DLTJob) {
	e.pending = append(e.pending, j)
	if d := len(e.pending); d > e.overload.MaxPendingDepth {
		e.overload.MaxPendingDepth = d
	}
	e.met.pendingJobs.Set(float64(len(e.pending)))
}

// Run drives the simulation until every job is terminal.
func (e *DLTExecutor) Run() error {
	if e.cfg.Faults.Enabled() && e.cfg.Store == nil {
		return errors.New("core: DLT fault injection requires a CheckpointStore (recovery replays persisted state)")
	}
	if e.cfg.WatchdogSlack > 0 && e.cfg.Store == nil {
		return errors.New("core: DLT epoch watchdog requires a CheckpointStore (preemption rolls back to persisted state)")
	}
	e.eng.Run()
	if e.storeErr != nil {
		return e.storeErr
	}
	if e.terminalCount != len(e.jobs) {
		return fmt.Errorf("core: %d of %d DLT jobs did not terminate", len(e.jobs)-e.terminalCount, len(e.jobs))
	}
	return nil
}

// scheduleArbitrate coalesces all same-instant events (arrivals, epoch
// completions) into a single arbitration decision, so the policy always
// sees the complete queue state of the instant — not a prefix of it.
func (e *DLTExecutor) scheduleArbitrate() {
	if e.arbPending {
		return
	}
	e.arbPending = true
	e.eng.Schedule(0, func() {
		e.arbPending = false
		e.arbitrate()
	})
}

func (e *DLTExecutor) arbitrate() {
	// Round barrier: decisions are only taken between rounds, when every
	// previously placed job has finished its epoch.
	if e.roundRunning > 0 || len(e.pending) == 0 {
		return
	}
	free := e.gpus.FreeDevices()
	if len(free) == 0 {
		return
	}
	e.arbPend = append(e.arbPend[:0], e.pending...)
	e.arbCtx = DLTContext{
		Now:      e.eng.Now(),
		Pending:  e.arbPend,
		Running:  e.runningJobs(),
		FreeGPUs: free,
	}
	var placements []DLTPlacement
	if e.fast != nil {
		placements = e.fast.place(&e.arbCtx)
	} else {
		placements = e.sched.Place(&e.arbCtx)
	}
	for _, p := range placements {
		e.startEpoch(p)
	}
}

// runningJobs presents the running set sorted by job ID — see
// AQPExecutor.runningJobs for why determinism matters here.
func (e *DLTExecutor) runningJobs() []*DLTJob {
	out := e.arbRunning[:0]
	for _, j := range e.running {
		out = append(out, j)
	}
	sortDLTJobsByID(out)
	e.arbRunning = out
	return out
}

// FastPath reports the decision-cache counters; all-zero when the fast
// path is disabled.
func (e *DLTExecutor) FastPath() FastPathStats {
	if e.fast == nil {
		return FastPathStats{}
	}
	return e.fast.stats
}

func (e *DLTExecutor) startEpoch(p DLTPlacement) {
	j := p.Job
	if j.status.Terminal() || e.running[j.ID()] != nil {
		return
	}
	// The cluster admits the placement by its declared estimate; the
	// actual footprint check below models the OOM the estimate may miss.
	if err := e.gpus.Assign(j.ID(), p.Device, p.EstMemMB); err != nil {
		return
	}
	e.removePending(j)
	j.status = StatusRunning
	e.running[j.ID()] = j
	e.roundRunning++
	e.met.grants.Inc()
	e.met.runningJobs.Set(float64(len(e.running)))
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TracePlace, Job: j.ID(), Device: p.Device})

	actualMB := j.job.PeakMemoryMB()
	if dev, ok := e.deviceByID(p.Device); ok && actualMB > dev.MemMB {
		// Out of memory: the epoch aborts after the allocation failure;
		// the job pays a fraction of an epoch and returns to the queue.
		e.oomEvents++
		e.met.ooms.Inc()
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceOOM, Job: j.ID(), Device: p.Device,
				Detail: fmt.Sprintf("need=%.0fMB", actualMB)})
		}
		e.deviceLastJob[p.Device] = j.ID()
		waste := 0.1*float64(j.job.StepsPerEpoch())*j.job.StepSeconds() + dlt.WarmupSeconds
		e.eng.Schedule(waste, func() {
			e.gpus.Release(j.ID())
			delete(e.running, j.ID())
			e.roundRunning--
			e.met.runningJobs.Set(float64(len(e.running)))
			j.status = StatusPending
			j.processingSecs += waste
			e.enqueue(j)
			e.scheduleArbitrate()
		})
		return
	}

	var epochSecs float64
	epochSecs += j.deferredPenaltySecs
	j.deferredPenaltySecs = 0
	firstPlacement := !j.everRan
	// A job continuously prioritized onto the device it last occupied
	// keeps its state hot; anything else replays the checkpoint — and a
	// crash forces the replay regardless, because the interrupted epoch
	// left the in-memory trainer dirty.
	resumed := j.needsRestore || (j.everRan && e.deviceLastJob[p.Device] != j.ID())
	if resumed {
		epochSecs += e.cfg.SwapBaseSecs + e.cfg.SwapSecsPerParam*j.job.Spec().ParamsM
		if e.cfg.Store != nil {
			// Real replay: the trainer is rebuilt from persisted bytes. Its
			// Restore drops the warmed flag, so TrainEpoch below re-pays the
			// warm-up internally — no explicit charge here.
			epochSecs += e.resumeDLT(j)
		} else {
			epochSecs += dlt.WarmupSeconds
		}
	}
	e.deviceLastJob[p.Device] = j.ID()
	_, trainSecs := j.job.TrainEpoch()
	epochSecs += trainSecs
	start := e.eng.Now()
	// Epoch watchdog (see the AQP side): preempt a runaway epoch at
	// slack × predicted cost, doubling per strike. The injector's draw
	// comes first so arming the watchdog never perturbs the fault
	// sequence; an earlier crash wins.
	watchAt := math.Inf(1)
	if e.cfg.WatchdogSlack > 0 {
		budget := e.cfg.WatchdogSlack * j.nextEpochSecsGuess() * math.Pow(2, float64(j.watchdogStrikes))
		if epochSecs > budget {
			watchAt = budget
		}
	}
	if after, crashed := e.cfg.Faults.EpochCrash(epochSecs); crashed && after <= watchAt {
		e.eng.Schedule(after, func() { e.crashEpoch(j, p.Device, after) })
		return
	}
	if !math.IsInf(watchAt, 1) {
		e.eng.Schedule(watchAt, func() { e.preemptEpoch(j, p.Device, watchAt) })
		return
	}
	e.eng.Schedule(epochSecs, func() { e.finishEpoch(j, p.Device, start, epochSecs, firstPlacement || resumed) })
}

// preemptEpoch handles the watchdog firing wastedSecs into a running
// epoch: results lost, device freed (it stays healthy — this is not a
// fault), job re-queued after the penalty with a forced rollback.
func (e *DLTExecutor) preemptEpoch(j *DLTJob, device int, wastedSecs float64) {
	e.gpus.Release(j.ID())
	delete(e.running, j.ID())
	e.roundRunning--
	e.met.runningJobs.Set(float64(len(e.running)))
	j.status = StatusPending
	j.needsRestore = true
	j.processingSecs += wastedSecs
	j.watchdogStrikes++
	e.overload.WatchdogPreemptions++
	e.met.watchdogPreempts.Inc()
	e.overload.WatchdogWastedSecs += wastedSecs
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceWatchdog, Job: j.ID(), Device: device,
			Detail: fmt.Sprintf("wasted=%.1fs strikes=%d", wastedSecs, j.watchdogStrikes)})
	}
	e.limbo++
	e.eng.Schedule(e.cfg.WatchdogPenaltySecs, func() {
		e.limbo--
		if j.status.Terminal() {
			return
		}
		e.enqueue(j)
		e.scheduleArbitrate()
	})
	e.scheduleArbitrate()
}

// resumeDLT replays the trainer's persisted state, returning any injected
// I/O delay. An unusable checkpoint falls back to a from-scratch restart
// off the pristine state.
func (e *DLTExecutor) resumeDLT(j *DLTJob) float64 {
	rollingBack := j.needsRestore
	data, _, err := e.cfg.Store.Load(j.ID())
	extra := e.cfg.Store.TakePenaltySecs()
	if err == nil {
		err = j.job.Restore(data)
		if err == nil {
			j.needsRestore = false
			if rollingBack {
				e.rec.Rollbacks++
				e.met.rollbacks.Inc()
			}
			e.met.resumes.Inc()
			e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceResume, Job: j.ID()})
			return extra
		}
	}
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTransient) {
		if serr := e.scratchRestartDLT(j, err); serr != nil {
			e.storeErr = serr
		}
	} else {
		e.storeErr = fmt.Errorf("core: resume %s: %w", j.ID(), err)
	}
	return extra
}

// scratchRestartDLT rewinds the job to its pristine trainer state: with a
// deterministic accuracy curve, replaying from epoch zero reproduces the
// fault-free trajectory exactly.
func (e *DLTExecutor) scratchRestartDLT(j *DLTJob, cause error) error {
	if j.pristine == nil {
		return fmt.Errorf("core: restart %s: no pristine state: %w", j.ID(), cause)
	}
	if err := j.job.Restore(j.pristine); err != nil {
		return fmt.Errorf("core: restart %s: %w", j.ID(), err)
	}
	e.cfg.Store.Remove(j.ID())
	j.epochs = 0
	j.convergedAtEpoch = 0
	j.everRan = false
	j.needsRestore = false
	j.lastRelease = 0
	j.lastDevice = -1
	e.rec.ScratchRestarts++
	e.met.scratchRestarts.Inc()
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceRestart, Job: j.ID(),
		Detail: restartCause(cause)})
	return nil
}

// crashEpoch handles a device crash wastedSecs into a running epoch: the
// epoch's results are lost, the device goes down until repaired, and the
// job rejoins the queue after the crash-recovery delay with a forced
// rollback to its last valid checkpoint.
func (e *DLTExecutor) crashEpoch(j *DLTJob, device int, wastedSecs float64) {
	e.gpus.Release(j.ID())
	delete(e.running, j.ID())
	e.roundRunning--
	e.met.runningJobs.Set(float64(len(e.running)))
	j.status = StatusPending
	j.needsRestore = true
	j.processingSecs += wastedSecs
	if !j.crashPending {
		j.crashPending = true
		j.crashedSince = e.eng.Now()
	}
	e.rec.Crashes++
	e.met.crashes.Inc()
	e.rec.WastedWorkSecs += wastedSecs
	// The device's hot state is gone and the device itself leaves the
	// rotation until repaired.
	delete(e.deviceLastJob, device)
	e.gpus.SetDown(device, true)
	repair := e.cfg.Faults.RepairSecs()
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceCrash, Job: j.ID(), Device: device,
			Detail: fmt.Sprintf("wasted=%.1fs repair=%.0fs", wastedSecs, repair)})
	}
	e.eng.Schedule(repair, func() {
		e.gpus.SetDown(device, false)
		e.scheduleArbitrate()
	})
	e.limbo++
	e.eng.Schedule(e.cfg.CrashRecoverySecs, func() {
		e.limbo--
		if j.status.Terminal() {
			return
		}
		e.enqueue(j)
		e.scheduleArbitrate()
	})
	e.scheduleArbitrate()
}

func (e *DLTExecutor) deviceByID(id int) (cluster.GPU, bool) {
	for _, d := range e.gpus.Devices() {
		if d.ID == id {
			return d, true
		}
	}
	return cluster.GPU{}, false
}

func (e *DLTExecutor) finishEpoch(j *DLTJob, device int, start sim.Time, epochSecs float64, firstOnDevice bool) {
	e.gpus.Release(j.ID())
	delete(e.running, j.ID())
	e.roundRunning--
	e.met.runningJobs.Set(float64(len(e.running)))
	e.met.epochs.Inc()
	e.met.epochSecs.Observe(epochSecs)
	now := e.eng.Now()
	j.everRan = true
	j.lastRelease = now
	j.lastDevice = device
	j.epochs++
	j.processingSecs += epochSecs
	j.watchdogStrikes = 0 // completed within budget
	if j.crashPending {
		j.crashPending = false
		e.rec.Recovered++
		e.met.recovered.Inc()
		e.rec.RecoveryLatencySecs += (now - j.crashedSince).Seconds()
	}
	e.recordPlacement(j, device, start, now)

	e.ttr.RecordEpoch(j.ID(), device, epochSecs, j.job.StepsPerEpoch(), firstOnDevice)

	if j.crit.Kind == criteria.Convergence && j.convergedAtEpoch == 0 && j.job.Converged(j.crit.Threshold) {
		j.convergedAtEpoch = j.epochs
	}
	j.epochLog = append(j.epochLog, EpochObs{
		At:      now,
		Epoch:   j.epochs,
		TrueAcc: j.job.Accuracy(),
		EstAcc:  j.job.Accuracy(), // DLT evaluates directly; no proxy needed (§IV-B)
	})
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: now, Kind: TraceEpochDone, Job: j.ID(),
			Detail: fmt.Sprintf("epoch=%d acc=%.3f", j.epochs, j.job.Accuracy())})
	}

	switch {
	case j.CriteriaMet():
		e.finishJob(j, StatusAttainedStop)
	case j.DeadlineExpired():
		e.finishJob(j, StatusExpired)
	default:
		j.status = StatusPending
		e.enqueue(j)
		if e.cfg.Store != nil {
			if data, err := j.job.Checkpoint(); err != nil {
				e.storeErr = fmt.Errorf("core: checkpoint %s: %w", j.ID(), err)
			} else if err := e.cfg.Store.Save(j.ID(), data); err != nil {
				j.deferredPenaltySecs += e.cfg.Store.TakePenaltySecs()
				if errors.Is(err, ErrTransient) {
					// The save failed for good: the previous checkpoint is
					// behind the in-memory bookkeeping, so replay from
					// scratch instead of desynchronizing the job.
					if serr := e.scratchRestartDLT(j, err); serr != nil {
						e.storeErr = serr
					}
				} else {
					e.storeErr = err
				}
			} else {
				j.deferredPenaltySecs += e.cfg.Store.TakePenaltySecs()
				e.met.checkpoints.Inc()
				e.cfg.Tracer.Emit(TraceEvent{At: now, Kind: TraceCheckpoint, Job: j.ID()})
			}
		}
	}
	e.scheduleArbitrate()
}

// recordPlacement extends the last Gantt rectangle when the job stayed on
// the same device with no gap, else opens a new one.
func (e *DLTExecutor) recordPlacement(j *DLTJob, device int, start, end sim.Time) {
	n := len(j.placements)
	if n > 0 && j.placements[n-1].Device == device && j.placements[n-1].End == start {
		j.placements[n-1].End = end
		return
	}
	j.placements = append(j.placements, Placement{Device: device, Start: start, End: end})
}

func (e *DLTExecutor) finishJob(j *DLTJob, status JobStatus) {
	if e.cfg.Store != nil {
		e.cfg.Store.Remove(j.ID())
	}
	// Every finishJob target was admitted (it reached the queue), so its
	// tenant's concurrent-job slot opens here.
	if e.cfg.Admission != nil {
		e.cfg.Admission.JobDone(j.tenant)
	}
	if j.crashPending {
		j.crashPending = false
		e.rec.RecoveryLatencySecs += (e.eng.Now() - j.crashedSince).Seconds()
	}
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceStop, Job: j.ID(), Tenant: j.tenant, Detail: status.String()})
	j.status = status
	j.endTime = e.eng.Now()
	e.met.outcome(status)
	e.terminalCount++
	if e.terminalCount == len(e.jobs) {
		// Workload complete: drop leftover watchdog timers so the clock
		// reflects the real makespan (or tell the composing driver).
		if e.ownsEngine {
			e.eng.Stop()
		} else if e.onDone != nil {
			e.onDone()
		}
	}
	if e.cfg.RecordHistory {
		cfg := j.job.Config()
		spec := j.job.Spec()
		var epochSecs float64
		if j.epochs > 0 {
			epochSecs = j.processingSecs / float64(j.epochs)
		}
		e.repo.AddDLT(estimate.DLTRecord{
			ID:        j.ID(),
			Model:     cfg.Model,
			Family:    spec.Family,
			Dataset:   cfg.Dataset,
			ParamsM:   spec.ParamsM,
			BatchSize: cfg.BatchSize,
			Optimizer: cfg.Optimizer,
			LR:        cfg.LR,
			Epochs:    j.epochs,
			AccCurve:  j.job.AccuracyHistory(),
			PeakMemMB: j.job.PeakMemoryMB(),
			EpochSecs: epochSecs,
		})
	}
}

func (e *DLTExecutor) removePending(j *DLTJob) {
	for i, p := range e.pending {
		if p == j {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.met.pendingJobs.Set(float64(len(e.pending)))
			return
		}
	}
}
