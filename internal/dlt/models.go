// Package dlt is the deep-learning-training substrate that stands in for
// the paper's TensorFlow 1.15 + 4×RTX-2080 testbed.
//
// Rotary-DLT observes a training job only through (a) its per-epoch
// evaluation accuracy series, (b) its per-step/per-epoch wall time, and
// (c) its peak GPU memory. This package synthesizes all three with the
// qualitative traits the paper's arbitration exploits: saturating
// learning curves with diminishing returns (Fig. 1b), epoch times stable
// across steps but dependent on model size and batch size, a slow first
// step (the CUDA warm-up TTR discards), and memory linear in batch size
// with a model-size offset (the curve TME fits). The model zoo covers the
// 17 surveyed architectures of Table II, including the shrunk variants
// the paper uses to fit a single GPU, plus the pre-trained BERT/VGG/
// ResNet variants used for fine-tuning jobs.
package dlt

import (
	"fmt"
	"sort"
)

// Domain separates computer-vision from natural-language models; Table II
// gives them different batch-size spaces and datasets.
type Domain int

// Model domains.
const (
	CV Domain = iota
	NLP
)

// String returns "cv" or "nlp".
func (d Domain) String() string {
	if d == NLP {
		return "nlp"
	}
	return "cv"
}

// ModelSpec describes one architecture in the zoo. Accuracy ceilings and
// convergence rates are calibrated to the public CIFAR-10 / UD-Treebank /
// IMDB results of each architecture family; absolute fidelity is not
// required — Rotary only consumes the curve shapes.
type ModelSpec struct {
	Name string
	// Family groups variants for similarity search (e.g. pre-trained and
	// scratch ResNet share a family).
	Family string
	Domain Domain
	// ParamsM is the parameter count in millions — the model size the TME
	// similarity metric compares.
	ParamsM float64
	// BaseAccuracy is the well-tuned asymptotic evaluation accuracy.
	BaseAccuracy float64
	// BaseRate is the exponential learning-curve rate per epoch under
	// well-tuned hyperparameters.
	BaseRate float64
	// PreTrained marks fine-tuning variants: they start near their ceiling
	// and converge in a handful of epochs.
	PreTrained bool
}

// zoo lists the Table II architectures with shrunk single-GPU variants.
var zoo = []ModelSpec{
	{Name: "inception-v3", Family: "inception", Domain: CV, ParamsM: 23.8, BaseAccuracy: 0.935, BaseRate: 0.24},
	{Name: "mobilenet", Family: "mobilenet", Domain: CV, ParamsM: 4.2, BaseAccuracy: 0.905, BaseRate: 0.30},
	{Name: "mobilenetv2", Family: "mobilenet", Domain: CV, ParamsM: 3.5, BaseAccuracy: 0.915, BaseRate: 0.30},
	{Name: "squeezenet", Family: "squeezenet", Domain: CV, ParamsM: 1.2, BaseAccuracy: 0.875, BaseRate: 0.34},
	{Name: "shufflenet", Family: "shufflenet", Domain: CV, ParamsM: 1.9, BaseAccuracy: 0.895, BaseRate: 0.32},
	{Name: "shufflenetv2", Family: "shufflenet", Domain: CV, ParamsM: 2.3, BaseAccuracy: 0.905, BaseRate: 0.32},
	{Name: "resnet-18", Family: "resnet", Domain: CV, ParamsM: 11.7, BaseAccuracy: 0.945, BaseRate: 0.26},
	{Name: "resnet-34", Family: "resnet", Domain: CV, ParamsM: 21.8, BaseAccuracy: 0.950, BaseRate: 0.24},
	{Name: "resnext-29", Family: "resnext", Domain: CV, ParamsM: 9.1, BaseAccuracy: 0.945, BaseRate: 0.24},
	{Name: "efficientnet-b0", Family: "efficientnet", Domain: CV, ParamsM: 5.3, BaseAccuracy: 0.935, BaseRate: 0.26},
	{Name: "lenet", Family: "lenet", Domain: CV, ParamsM: 0.06, BaseAccuracy: 0.680, BaseRate: 0.42},
	{Name: "vgg-11", Family: "vgg", Domain: CV, ParamsM: 9.8, BaseAccuracy: 0.920, BaseRate: 0.26},
	{Name: "alexnet", Family: "alexnet", Domain: CV, ParamsM: 6.1, BaseAccuracy: 0.830, BaseRate: 0.32},
	{Name: "zfnet", Family: "zfnet", Domain: CV, ParamsM: 6.0, BaseAccuracy: 0.840, BaseRate: 0.32},
	{Name: "densenet-121", Family: "densenet", Domain: CV, ParamsM: 8.0, BaseAccuracy: 0.945, BaseRate: 0.22},
	{Name: "lstm", Family: "lstm", Domain: NLP, ParamsM: 2.4, BaseAccuracy: 0.880, BaseRate: 0.38},
	{Name: "bilstm", Family: "lstm", Domain: NLP, ParamsM: 4.1, BaseAccuracy: 0.895, BaseRate: 0.36},
	{Name: "bert-mini", Family: "bert", Domain: NLP, ParamsM: 11.3, BaseAccuracy: 0.910, BaseRate: 0.30},
	{Name: "bert-mini-pretrained", Family: "bert", Domain: NLP, ParamsM: 11.3, BaseAccuracy: 0.925, BaseRate: 1.2, PreTrained: true},
	{Name: "vgg-11-pretrained", Family: "vgg", Domain: CV, ParamsM: 9.8, BaseAccuracy: 0.930, BaseRate: 1.2, PreTrained: true},
	{Name: "resnet-18-pretrained", Family: "resnet", Domain: CV, ParamsM: 11.7, BaseAccuracy: 0.950, BaseRate: 1.2, PreTrained: true},
}

var zooByName = func() map[string]ModelSpec {
	m := make(map[string]ModelSpec, len(zoo))
	for _, s := range zoo {
		m[s.Name] = s
	}
	return m
}()

// Models returns the zoo's model names, sorted.
func Models() []string {
	names := make([]string, 0, len(zoo))
	for _, s := range zoo {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// ScratchModels returns the non-pre-trained model names, optionally
// filtered by domain (pass -1 for all domains).
func ScratchModels(d Domain) []string {
	var names []string
	for _, s := range zoo {
		if s.PreTrained {
			continue
		}
		if d == CV || d == NLP {
			if s.Domain != d {
				continue
			}
		}
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// PreTrainedModels returns the fine-tuning variants.
func PreTrainedModels() []string {
	var names []string
	for _, s := range zoo {
		if s.PreTrained {
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec of a model by name.
func Lookup(name string) (ModelSpec, error) {
	s, ok := zooByName[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("dlt: unknown model %q", name)
	}
	return s, nil
}

// DatasetSpec describes a training dataset.
type DatasetSpec struct {
	Name   string
	Domain Domain
	// TrainExamples determines steps per epoch (examples / batch size).
	TrainExamples int
}

// Datasets from Table II: CIFAR-10 for CV, UD Treebank and the Large
// Movie Review Dataset (IMDB) for NLP.
var datasets = map[string]DatasetSpec{
	"cifar10":    {Name: "cifar10", Domain: CV, TrainExamples: 50000},
	"udtreebank": {Name: "udtreebank", Domain: NLP, TrainExamples: 12543},
	"imdb":       {Name: "imdb", Domain: NLP, TrainExamples: 25000},
}

// LookupDataset returns a dataset spec by name.
func LookupDataset(name string) (DatasetSpec, error) {
	d, ok := datasets[name]
	if !ok {
		return DatasetSpec{}, fmt.Errorf("dlt: unknown dataset %q", name)
	}
	return d, nil
}

// DatasetsFor returns the dataset names for a domain, sorted.
func DatasetsFor(d Domain) []string {
	var names []string
	for _, ds := range datasets {
		if ds.Domain == d {
			names = append(names, ds.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Hyperparameter spaces from Table II.
var (
	// BatchSizesCV follows the small-batch empirical study the paper cites.
	BatchSizesCV = []int{2, 4, 8, 16, 32}
	// BatchSizesNLP follows common NLP practice.
	BatchSizesNLP = []int{32, 64, 128, 256}
	// Optimizers from Table II.
	Optimizers = []string{"sgd", "adam", "adagrad", "momentum"}
	// LearningRates from Table II.
	LearningRates = []float64{0.1, 0.01, 0.001, 0.0001, 0.00001}
)
