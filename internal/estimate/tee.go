package estimate

import (
	"math"
	"sync"
	"time"
)

// TEE is the training epoch estimator of §IV-B: it predicts how many
// training epochs a DLT job needs to reach a target accuracy by fitting
// an accuracy-epoch curve with weighted linear regression over the top-k
// similar historical jobs jointly with the job's own real-time
// observations (each real-time point and the combined history share equal
// weight). TEE tracks its real wall-clock overhead for Table III.
type TEE struct {
	repo *Repository
	topK int
	// MinRealtime is the minimum number of real-time observations needed
	// before a fit with no same-dataset history is trusted. Below it the
	// estimator reports unknown and Algorithm 4 falls back to the
	// conservative e*/e_max — the erroneous-estimation regime of §V-B3
	// (the paper's example: a 2-epoch job estimated at 125 epochs once
	// the matching history is removed).
	MinRealtime int

	mu       sync.Mutex
	overhead time.Duration
	calls    int
}

// NewTEE returns an estimator over the repository, selecting the top-k
// similar historical jobs per estimate.
func NewTEE(repo *Repository, topK int) *TEE {
	if topK < 1 {
		topK = 3
	}
	return &TEE{repo: repo, topK: topK, MinRealtime: 4}
}

// EstimateEpochs predicts the total number of epochs for the described
// job to reach targetAcc, given its observed accuracy history (realtime[i]
// is the accuracy after epoch i+1). The second result reports whether any
// estimate was possible (some history or real-time data existed and the
// fitted slope was positive); when false the job's progress is unknown —
// the erroneous-estimation regime of Fig. 11.
func (t *TEE) EstimateEpochs(q DLTQuery, realtime []float64, targetAcc float64) (int, bool) {
	start := time.Now()
	defer func() {
		t.mu.Lock()
		t.overhead += time.Since(start)
		t.calls++
		t.mu.Unlock()
	}()

	recs, scores := t.repo.TopKSimilarDLTScored(q, t.topK)
	sameDataset := false
	for _, rec := range recs {
		if rec.Dataset == q.Dataset {
			sameDataset = true
		}
	}
	rt := make([]Point, len(realtime))
	for i, acc := range realtime {
		rt[i] = Point{X: float64(i + 1), Y: acc}
	}
	if !sameDataset && len(rt) < t.MinRealtime {
		// Only dissimilar (or no) history and too little real-time data:
		// any fit would be unreliable or erroneous.
		return 0, false
	}
	if len(recs) == 0 && len(rt) < 2 {
		return 0, false
	}
	line := fitRecordsJoint(recs, scores, rt, targetAcc)
	// Already past the target on the fitted curve?
	if len(rt) > 0 && rt[len(rt)-1].Y >= targetAcc {
		return len(rt), true
	}
	x, ok := line.XFor(targetAcc)
	if !ok {
		return 0, false
	}
	// A near-flat fitted slope can put the crossing astronomically far
	// out; clamp before the int conversion so the estimate saturates
	// instead of overflowing (the caller treats huge estimates as
	// near-zero progress either way).
	if x > 1e9 {
		x = 1e9
	}
	e := int(math.Ceil(x))
	if e <= len(rt) {
		e = len(rt) + 1
	}
	return e, true
}

// fitRecordsJoint applies the §IV-A weighting with the historical records
// as the unit: every real-time point and the combined history share equal
// weight; within the history each record's share is proportional to a
// sharp power of its similarity score, and is spread over its curve
// points. (Pooling raw points would let one long mediocre curve swamp a
// short well-matched one; equal record shares would still let two vaguely
// similar curves outvote an excellent match.)
//
// Each record's curve is also truncated to its first target crossing and
// capped to an early-epoch window around the job's current position: a
// line fitted through a saturated plateau predicts nothing about
// time-to-target, and in weighted least squares far-x plateau points
// retain enormous leverage even at tiny weights.
func fitRecordsJoint(recs []DLTRecord, scores []float64, rt []Point, targetAcc float64) Line {
	m := len(rt)
	window := 2*m + 2
	if window < 8 {
		window = 8
	}
	var points []Point
	var weights []float64
	if len(recs) > 0 {
		histShare := 1.0
		if m > 0 {
			histShare = 1.0 / float64(m+1)
		}
		// Sharpened similarity weights: a near-exact match dominates
		// partial matches.
		recW := make([]float64, len(recs))
		var recWSum float64
		for i := range recs {
			w := 1.0
			if i < len(scores) && scores[i] > 0 {
				w = math.Pow(scores[i], 4)
			}
			recW[i] = w
			recWSum += w
		}
		for i, rec := range recs {
			curve := rec.AccCurve
			for e, acc := range curve {
				if acc >= targetAcc {
					curve = curve[:e+1]
					break
				}
			}
			if len(curve) > window {
				curve = curve[:window]
			}
			if len(curve) == 0 || recWSum == 0 {
				continue
			}
			perPoint := histShare * recW[i] / recWSum / float64(len(curve))
			for e, acc := range curve {
				points = append(points, Point{X: float64(e + 1), Y: acc})
				weights = append(weights, perPoint)
			}
		}
	}
	if m > 0 {
		share := 1.0
		if len(recs) > 0 {
			share = 1.0 / float64(m+1)
		} else {
			share = 1.0 / float64(m)
		}
		for _, p := range rt {
			points = append(points, p)
			weights = append(weights, share)
		}
	}
	return FitWLS(points, weights)
}

// Overhead reports the cumulative real wall-clock time spent estimating.
func (t *TEE) Overhead() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overhead
}

// Calls reports how many estimates were made.
func (t *TEE) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}
