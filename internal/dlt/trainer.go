package dlt

import (
	"encoding/json"
	"fmt"
	"math"

	"rotary/internal/sim"
)

// Config fully determines a training job's behaviour: the same Config and
// seed reproduce the same accuracy curve, epoch times, and memory.
type Config struct {
	Model     string  `json:"model"`
	Dataset   string  `json:"dataset"`
	BatchSize int     `json:"batch_size"`
	Optimizer string  `json:"optimizer"`
	LR        float64 `json:"lr"`
	Seed      uint64  `json:"seed"`
}

// Validate checks the configuration against the zoo and Table II spaces.
func (c Config) Validate() error {
	spec, err := Lookup(c.Model)
	if err != nil {
		return err
	}
	ds, err := LookupDataset(c.Dataset)
	if err != nil {
		return err
	}
	if spec.Domain != ds.Domain {
		return fmt.Errorf("dlt: model %s (%s) cannot train on dataset %s (%s)",
			c.Model, spec.Domain, c.Dataset, ds.Domain)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("dlt: batch size %d must be positive", c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("dlt: learning rate %g must be positive", c.LR)
	}
	return nil
}

// hyperQuality scores the (optimizer, lr) pair in (0, 1]: 1 at the
// optimizer's sweet spot, decaying with log-distance from it. This is
// what makes Table II's randomized hyperparameters produce the spread of
// convergence behaviours the survey reports — some trials converge high
// and fast, some plateau low (the unpromising trials the intro's
// hyperparameter-optimization scenario wants preempted).
func hyperQuality(optimizer string, lr float64) float64 {
	best := 0.01
	switch optimizer {
	case "adam", "adagrad":
		best = 0.001
	}
	d := math.Log10(lr) - math.Log10(best)
	return math.Exp(-0.45 * d * d)
}

// Curve is a deterministic learning curve: evaluation accuracy after each
// completed training epoch.
type Curve struct {
	ceiling float64
	rate    float64
	start   float64
	noise   []float64 // pre-drawn per-epoch noise, extended on demand
	seed    uint64
}

// NewCurve derives the learning curve of a configuration.
func NewCurve(c Config) (*Curve, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	spec, _ := Lookup(c.Model)
	q := hyperQuality(c.Optimizer, c.LR)
	ceiling := spec.BaseAccuracy * (0.55 + 0.45*q)
	// Smaller batches take more optimization steps per epoch, converging
	// in fewer epochs (the small-batch study the paper cites).
	ref := 32.0
	if spec.Domain == NLP {
		ref = 128.0
	}
	rate := spec.BaseRate * (0.35 + 0.65*q) * math.Pow(ref/float64(c.BatchSize), 0.30)
	start := 0.1 // random-guess CIFAR-10 accuracy
	if spec.Domain == NLP {
		start = 0.5
	}
	if spec.PreTrained {
		start = ceiling * 0.93
	}
	return &Curve{ceiling: ceiling, rate: rate, start: start, seed: c.Seed}, nil
}

// Ceiling reports the curve's asymptotic accuracy.
func (c *Curve) Ceiling() float64 { return c.ceiling }

// Rate reports the curve's exponential rate per epoch.
func (c *Curve) Rate() float64 { return c.rate }

// At reports the evaluation accuracy after epoch completed epochs (At(0)
// is the untrained accuracy). The saturating-exponential form is the
// diminishing-returns progress curve of Fig. 1b.
func (c *Curve) At(epoch int) float64 {
	if epoch < 0 {
		epoch = 0
	}
	mean := c.ceiling - (c.ceiling-c.start)*math.Exp(-c.rate*float64(epoch))
	acc := mean + c.noiseAt(epoch)
	if acc < 0 {
		acc = 0
	}
	if acc > 0.999 {
		acc = 0.999
	}
	return acc
}

func (c *Curve) noiseAt(epoch int) float64 {
	if epoch == 0 {
		return 0
	}
	for len(c.noise) <= epoch {
		r := sim.NewRand(c.seed ^ uint64(len(c.noise))*0x9e37)
		c.noise = append(c.noise, r.Norm(0, 0.004))
	}
	return c.noise[epoch]
}

// EpochsToAccuracy reports the first epoch at which the noiseless curve
// reaches target accuracy, or (0, false) if the ceiling is below target.
// This is the oracle TEE is benchmarked against.
func (c *Curve) EpochsToAccuracy(target float64) (int, bool) {
	if target >= c.ceiling {
		return 0, false
	}
	if target <= c.start {
		return 0, true
	}
	e := math.Log((c.ceiling-c.start)/(c.ceiling-target)) / c.rate
	return int(math.Ceil(e)), true
}

// Job is a running (or checkpointed) training job on the simulator. It is
// the DLT analogue of aqp.Running: Rotary-DLT drives it one epoch at a
// time and reads the accuracy series.
type Job struct {
	cfg    Config
	spec   ModelSpec
	ds     DatasetSpec
	curve  *Curve
	epochs int
	accs   []float64 // accs[i] = accuracy after epoch i+1
	warmed bool      // CUDA warm-up consumed (first step of first epoch)
}

// NewJob builds a training job from a validated configuration.
func NewJob(cfg Config) (*Job, error) {
	curve, err := NewCurve(cfg)
	if err != nil {
		return nil, err
	}
	spec, _ := Lookup(cfg.Model)
	ds, _ := LookupDataset(cfg.Dataset)
	return &Job{cfg: cfg, spec: spec, ds: ds, curve: curve}, nil
}

// Config returns the job's configuration.
func (j *Job) Config() Config { return j.cfg }

// Spec returns the model spec.
func (j *Job) Spec() ModelSpec { return j.spec }

// Curve returns the underlying learning curve (tests and the Fig. 1b
// bench read it; the arbiter must not — it only sees observed epochs).
func (j *Job) Curve() *Curve { return j.curve }

// EpochsTrained reports the number of completed training epochs.
func (j *Job) EpochsTrained() int { return j.epochs }

// Accuracy reports the latest evaluation accuracy (the untrained accuracy
// before the first epoch).
func (j *Job) Accuracy() float64 {
	if j.epochs == 0 {
		return j.curve.At(0)
	}
	return j.accs[j.epochs-1]
}

// AccuracyHistory returns the (epoch, accuracy) series observed so far;
// index i holds the accuracy after epoch i+1.
func (j *Job) AccuracyHistory() []float64 {
	out := make([]float64, len(j.accs))
	copy(out, j.accs)
	return out
}

// StepsPerEpoch reports the optimization steps in one epoch.
func (j *Job) StepsPerEpoch() int {
	steps := (j.ds.TrainExamples + j.cfg.BatchSize - 1) / j.cfg.BatchSize
	if steps < 1 {
		steps = 1
	}
	return steps
}

// StepSeconds reports the steady-state wall time of one optimization step
// on the simulated GPU: a fixed launch overhead plus compute proportional
// to model size and batch size. Sequence models pay a per-token cost that
// makes their large-batch steps much heavier than CV steps, so NLP and CV
// epochs land in the same wall-time range (as they do on the paper's
// RTX 2080 testbed).
func (j *Job) StepSeconds() float64 {
	ref := 32.0
	coeff := 0.0033
	if j.spec.Domain == NLP {
		ref = 128.0
		coeff = 0.060
	}
	return 0.015 + coeff*j.spec.ParamsM*math.Pow(float64(j.cfg.BatchSize)/ref, 0.7)
}

// WarmupSeconds is the extra cost of the very first training step of a
// freshly placed job (CUDA context creation and kernel autotuning). TTR
// discards the first step because of it (§IV-B).
const WarmupSeconds = 2.0

// TrainEpoch advances the job by one epoch and returns the new evaluation
// accuracy and the epoch's wall time in (virtual) seconds. The first
// epoch after construction or Restore pays the warm-up once.
func (j *Job) TrainEpoch() (acc float64, wallSecs float64) {
	steps := j.StepsPerEpoch()
	wallSecs = float64(steps) * j.StepSeconds()
	if !j.warmed {
		wallSecs += WarmupSeconds
		j.warmed = true
	}
	j.epochs++
	acc = j.curve.At(j.epochs)
	j.accs = append(j.accs, acc)
	return acc, wallSecs
}

// Converged reports whether the last two evaluation accuracies differ by
// less than delta — the convergence-oriented completion check.
func (j *Job) Converged(delta float64) bool {
	if len(j.accs) < 2 {
		return false
	}
	d := j.accs[len(j.accs)-1] - j.accs[len(j.accs)-2]
	if d < 0 {
		d = -d
	}
	return d < delta
}

// PeakMemoryMB reports the job's peak GPU memory: parameters, gradients
// and optimizer state (scaling with model size) plus activations (scaling
// with batch size) plus a framework baseline. This is the ground truth the
// TME batch-size/memory curve approximates.
func (j *Job) PeakMemoryMB() float64 {
	return PeakMemoryMB(j.spec, j.cfg.BatchSize, j.cfg.Optimizer)
}

// PeakMemoryMB is the memory model shared by jobs and the TME oracle.
// Convolutional models carry much heavier per-sample activation memory
// than sequence models, which is why Table II pairs CV models with small
// batches and NLP models with large ones; with the shrunk variants every
// configuration fits the testbed's 8 GB devices.
func PeakMemoryMB(spec ModelSpec, batchSize int, optimizer string) float64 {
	stateFactor := 12.0 // params + grads + momentum
	if optimizer == "adam" {
		stateFactor = 16.0 // two moment buffers
	}
	actCoeff := 14.0 // MB per sample per params^0.72, CV
	if spec.Domain == NLP {
		actCoeff = 1.8
	}
	activationsPerSample := actCoeff * math.Pow(spec.ParamsM, 0.72)
	return 180 + spec.ParamsM*stateFactor + float64(batchSize)*activationsPerSample
}

// jobState is the serialized checkpoint of a Job.
type jobState struct {
	Config Config    `json:"config"`
	Epochs int       `json:"epochs"`
	Accs   []float64 `json:"accs"`
}

// Checkpoint serializes the job (config, epochs, accuracy history). After
// Restore the next epoch pays the warm-up again — reloading a checkpoint
// onto a GPU re-creates the CUDA context.
func (j *Job) Checkpoint() ([]byte, error) {
	return json.Marshal(jobState{Config: j.cfg, Epochs: j.epochs, Accs: j.accs})
}

// Restore replaces the job state with a checkpoint.
func (j *Job) Restore(data []byte) error {
	var st jobState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("dlt: restore: %w", err)
	}
	if st.Config != j.cfg {
		return fmt.Errorf("dlt: restore: checkpoint config %+v does not match job %+v", st.Config, j.cfg)
	}
	if st.Epochs != len(st.Accs) {
		return fmt.Errorf("dlt: restore: %d epochs but %d accuracies", st.Epochs, len(st.Accs))
	}
	j.epochs = st.Epochs
	j.accs = st.Accs
	j.warmed = false
	return nil
}
