package core

import (
	"math"
	"testing"

	"rotary/internal/cluster"
	"rotary/internal/sim"
)

// unitAQP is a transparent inner policy for fair-share tests: one thread
// per pending job, in queue order, until the free pool is exhausted. Any
// deviation from the expected per-tenant counts is therefore caused by
// the wrapper's partitioning, not by inner-policy ordering.
type unitAQP struct{}

func (unitAQP) Name() string { return "unit" }

func (unitAQP) Assign(ctx *AQPContext) []AQPGrant {
	free := ctx.FreeThreads
	var out []AQPGrant
	for _, j := range ctx.Pending {
		if free <= 0 {
			break
		}
		out = append(out, AQPGrant{Job: j, Threads: 1})
		free--
	}
	return out
}

// unitDLT is the device-side twin: one device per pending job in order.
type unitDLT struct{}

func (unitDLT) Name() string { return "unit" }

func (unitDLT) Place(ctx *DLTContext) []DLTPlacement {
	var out []DLTPlacement
	for i, j := range ctx.Pending {
		if i >= len(ctx.FreeGPUs) {
			break
		}
		out = append(out, DLTPlacement{Job: j, Device: ctx.FreeGPUs[i].ID})
	}
	return out
}

// tagTenants splits jobs into contiguous per-tenant runs: counts maps
// tenant name to how many jobs it gets, applied in the order of names.
func tagTenants(jobs []*AQPJob, names []string, counts map[string]int) {
	i := 0
	for _, name := range names {
		for k := 0; k < counts[name] && i < len(jobs); k++ {
			jobs[i].tenant = name
			i++
		}
	}
}

func grantsPerTenant(grants []AQPGrant) map[string]int {
	out := make(map[string]int)
	for _, g := range grants {
		out[CanonicalTenantName(g.Job.tenant)] += g.Threads
	}
	return out
}

func TestFairLedgerOrderDeficitAscendingWithNameTiebreak(t *testing.T) {
	l := newFairLedger(map[string]float64{"a": 2, "b": 1, "c": 1})
	l.usage["a"] = 4 // norm 2
	l.usage["b"] = 1 // norm 1
	l.usage["c"] = 1 // norm 1, ties with b -> name order
	got := l.order([]string{"a", "b", "c"})
	want := []string{"b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFairLedgerIdleReturnClamp(t *testing.T) {
	l := newFairLedger(map[string]float64{"a": 1, "b": 1, "c": 2})
	ab := map[string]bool{"a": true, "b": true}

	// Round 1: a and b backlogged, no prior round — no one is clamped
	// (there is no continuing minimum yet), both enter wasBack.
	l.clamp(ab, ab)
	if l.usage["a"] != 0 || l.usage["b"] != 0 {
		t.Fatalf("first round mutated usage: %v", l.usage)
	}
	l.usage["a"] = 10
	l.usage["b"] = 4

	// Round 2: c returns from idle with a zero account. The clamp raises
	// it to weight x continuing-minimum-norm (min(10, 4) = 4, weight 2 ->
	// floor 8) so it gets its entitlement but no accumulated credit.
	abc := map[string]bool{"a": true, "b": true, "c": true}
	l.clamp(abc, abc)
	if l.usage["c"] != 8 {
		t.Fatalf("idle-return clamp: c usage = %v, want 8", l.usage["c"])
	}
	if l.usage["a"] != 10 || l.usage["b"] != 4 {
		t.Fatalf("clamp touched continuing tenants: %v", l.usage)
	}

	// Round 3: everyone is continuing now — no further raises even though
	// b's norm (4) is below c's (4) exactly and a's (10) is above.
	l.usage["c"] = 8
	l.clamp(abc, abc)
	if l.usage["c"] != 8 {
		t.Fatalf("continuing tenant re-clamped: c usage = %v", l.usage["c"])
	}

	// Round 4: b leaves the system entirely — pruned from both maps.
	ac := map[string]bool{"a": true, "c": true}
	l.clamp(ac, ac)
	if _, ok := l.usage["b"]; ok {
		t.Fatalf("departed tenant not pruned from usage: %v", l.usage)
	}
	if l.wasBack["b"] {
		t.Fatalf("departed tenant not pruned from wasBack: %v", l.wasBack)
	}
}

func TestFairLedgerFingerprintCoversWasBack(t *testing.T) {
	a := newFairLedger(nil)
	b := newFairLedger(nil)
	a.usage["x"] = 1
	b.usage["x"] = 1
	if a.fingerprint(fpInit) != b.fingerprint(fpInit) {
		t.Fatalf("identical ledgers fingerprint differently")
	}
	b.wasBack["x"] = true
	if a.fingerprint(fpInit) == b.fingerprint(fpInit) {
		t.Fatalf("wasBack divergence not visible in fingerprint")
	}
}

func TestFairShareAQPWeightedSplit(t *testing.T) {
	jobs := synthAQPQueue(16, 1)
	tagTenants(jobs, []string{"a", "b"}, map[string]int{"a": 8, "b": 8})
	f := NewFairShareAQP(unitAQP{}, map[string]float64{"a": 3, "b": 1})
	grants := f.Assign(benchCtx(jobs))
	got := grantsPerTenant(grants)
	// 8 free threads, weights 3:1 -> entitlements floor(8*3/4)=6 and
	// floor(8*1/4)=2; both tenants have backlog to fill them.
	if got["a"] != 6 || got["b"] != 2 {
		t.Fatalf("weighted split = %v, want a:6 b:2", got)
	}
	// DRF invariant: equal weighted usage after a fully-subscribed round —
	// a is charged 6 x (1/8) / 3, b is charged 2 x (1/8) / 1.
	u := f.Usage()
	if math.Abs(u["a"]-u["b"]) > 1e-12 {
		t.Fatalf("weighted usage diverged after one round: %v", u)
	}
}

func TestFairShareAQPWorkConserving(t *testing.T) {
	jobs := synthAQPQueue(9, 2)
	tagTenants(jobs, []string{"a", "b"}, map[string]int{"a": 8, "b": 1})
	f := NewFairShareAQP(unitAQP{}, nil)
	grants := f.Assign(benchCtx(jobs))
	got := grantsPerTenant(grants)
	// Equal weights entitle 4 threads each, but b has one job: its unused
	// share must be reclaimed by a, leaving zero idle threads.
	if got["a"] != 7 || got["b"] != 1 {
		t.Fatalf("reclaim split = %v, want a:7 b:1", got)
	}
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 8 {
		t.Fatalf("layer left threads idle: granted %d of 8", total)
	}
}

func TestFairShareAQPSingleTenantPassthrough(t *testing.T) {
	jobs := synthAQPQueue(5, 3)
	for _, j := range jobs {
		j.tenant = "solo"
	}
	f := NewFairShareAQP(unitAQP{}, map[string]float64{"solo": 2})
	bare := unitAQP{}.Assign(benchCtx(jobs))
	wrapped := f.Assign(benchCtx(jobs))
	if !grantsEqual(bare, wrapped) {
		t.Fatalf("single-tenant round diverged from inner policy:\nbare    %v\nwrapped %v", bare, wrapped)
	}
	if u := f.Usage(); u["solo"] == 0 {
		t.Fatalf("passthrough round did not charge the ledger: %v", u)
	}
}

func TestFairShareAQPCommitReplayMatchesAssign(t *testing.T) {
	weights := map[string]float64{"a": 3, "b": 1}
	mk := func() (*FairShareAQP, []*AQPJob) {
		jobs := synthAQPQueue(16, 4)
		tagTenants(jobs, []string{"a", "b"}, map[string]int{"a": 8, "b": 8})
		return NewFairShareAQP(unitAQP{}, weights), jobs
	}
	live, jobsA := mk()
	replay, jobsB := mk()
	grants := live.Assign(benchCtx(jobsA))
	// Map the grants onto the replay wrapper's job instances by index —
	// synthAQPQueue is deterministic, so index i is the same job.
	byIdx := make(map[*AQPJob]int, len(jobsA))
	for i, j := range jobsA {
		byIdx[j] = i
	}
	mirror := make([]AQPGrant, len(grants))
	for i, g := range grants {
		mirror[i] = AQPGrant{Job: jobsB[byIdx[g.Job]], Threads: g.Threads, ReserveMemMB: g.ReserveMemMB}
	}
	replay.CommitReplay(benchCtx(jobsB), mirror)

	ul, ur := live.Usage(), replay.Usage()
	if len(ul) != len(ur) {
		t.Fatalf("ledger shape diverged: assign %v, replay %v", ul, ur)
	}
	for name, v := range ul {
		if ur[name] != v {
			t.Fatalf("ledger diverged for %q: assign %v, replay %v", name, v, ur[name])
		}
	}
	if live.ledger.fingerprint(fpInit) != replay.ledger.fingerprint(fpInit) {
		t.Fatalf("ledger fingerprints diverged after replay")
	}
}

func TestFairShareDLTWeightedSplit(t *testing.T) {
	jobs, err := synthDLTQueue(16, 1)
	if err != nil {
		t.Fatalf("synthDLTQueue: %v", err)
	}
	for i, j := range jobs {
		if i < 8 {
			j.tenant = "a"
		} else {
			j.tenant = "b"
		}
	}
	free := make([]cluster.GPU, 8)
	for i := range free {
		free[i] = cluster.GPU{ID: i, MemMB: 8192}
	}
	f := NewFairShareDLT(unitDLT{}, map[string]float64{"a": 3, "b": 1})
	placements := f.Place(&DLTContext{Now: sim.Time(1000), Pending: jobs, FreeGPUs: free})
	got := make(map[string]int)
	seen := make(map[int]bool)
	for _, p := range placements {
		got[CanonicalTenantName(p.Job.tenant)]++
		if seen[p.Device] {
			t.Fatalf("device %d double-booked", p.Device)
		}
		seen[p.Device] = true
	}
	if got["a"] != 6 || got["b"] != 2 {
		t.Fatalf("weighted device split = %v, want a:6 b:2", got)
	}
}
