package serve

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAndBalanced: the ring is a pure function of
// (id, shard count, vnode count) — two rings agree on every key — and
// sequential ids (the router's own srv-NNNNN sequence) spread across
// shards instead of piling onto one.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := newHashRing(3, 0), newHashRing(3, 0)
	counts := make([]int, 3)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("srv-%05d", i)
		own := a.Owner(id, nil)
		if got := b.Owner(id, nil); got != own {
			t.Fatalf("rings disagree on %s: %d vs %d", id, own, got)
		}
		if own < 0 || own >= 3 {
			t.Fatalf("owner %d out of range for %s", own, id)
		}
		counts[own]++
	}
	for s, n := range counts {
		if n < 100 { // 10% floor on a 3-shard ring: catches hash clustering
			t.Fatalf("shard %d owns only %d/1000 sequential ids: %v", s, n, counts)
		}
	}
}

// TestRingFilteredWalk: the clockwise walk skips filtered shards and
// reports -1 only when every shard is filtered.
func TestRingFilteredWalk(t *testing.T) {
	r := newHashRing(3, 0)
	home := r.Owner("job-x", nil)
	alt := r.Owner("job-x", func(s int) bool { return s != home })
	if alt == home || alt < 0 {
		t.Fatalf("filtered walk returned %d (home %d)", alt, home)
	}
	if got := r.Owner("job-x", func(int) bool { return false }); got != -1 {
		t.Fatalf("fully filtered ring returned %d, want -1", got)
	}
}
