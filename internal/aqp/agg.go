// Package aqp is the online-aggregation engine that stands in for the
// paper's Spark-based progressive query processing system.
//
// The engine processes fact-table rows batch-by-batch (pulled from an
// internal/stream consumer), maintains running grouped aggregates, and
// exposes the two signals Rotary-AQP arbitrates on: the running accuracy
// αc/αf against the final answer (§IV-A) and the job's memory footprint.
// Job state — consumer offsets plus the whole aggregate table — serializes
// for the disk checkpointing the paper describes in §VI.
package aqp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// AggKind identifies an aggregate function over a column.
type AggKind int

// Aggregate kinds supported by the engine; the 22 TPC-H queries use all of
// them.
const (
	Sum AggKind = iota
	Count
	Avg
	Min
	Max
)

// String returns the SQL spelling of k.
func (k AggKind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec declares one output aggregate column of a query.
type AggSpec struct {
	Name string  `json:"name"`
	Kind AggKind `json:"kind"`
	// Weight is the user-assigned column importance from §IV-A ("Rotary-AQP
	// also allows the users to specify the importance of each column by
	// assigning weights"). Zero means equal weight.
	Weight float64 `json:"weight,omitempty"`
}

// cell is the running state of one aggregate in one group. SumSq backs
// the optional confidence intervals of §III-B ("Additional error bounds,
// such as confidence interval, are optional").
type cell struct {
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumsq"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// value reduces the cell under kind.
func (c cell) value(kind AggKind) float64 {
	switch kind {
	case Sum:
		return c.Sum
	case Count:
		return float64(c.Count)
	case Avg:
		if c.Count == 0 {
			return 0
		}
		return c.Sum / float64(c.Count)
	case Min:
		if c.Count == 0 {
			return 0
		}
		return c.Min
	case Max:
		if c.Count == 0 {
			return 0
		}
		return c.Max
	default:
		return 0
	}
}

// GroupTable is the running grouped-aggregate state of one online query.
// It is the unit of checkpointing and the source of the intermediate
// results users see after every batch.
type GroupTable struct {
	specs  []AggSpec
	groups map[string][]cell
}

// NewGroupTable returns an empty table producing the given aggregate
// columns.
func NewGroupTable(specs []AggSpec) *GroupTable {
	if len(specs) == 0 {
		panic("aqp: query must declare at least one aggregate")
	}
	ss := make([]AggSpec, len(specs))
	copy(ss, specs)
	return &GroupTable{specs: ss, groups: make(map[string][]cell)}
}

// Specs returns the table's aggregate columns.
func (t *GroupTable) Specs() []AggSpec {
	out := make([]AggSpec, len(t.specs))
	copy(out, t.specs)
	return out
}

// Update folds one row's values into group. vals must align with the
// declared specs; for Count specs the value is ignored (the row counts).
// A NaN value skips that column for this row (conditional aggregates).
func (t *GroupTable) Update(group string, vals ...float64) {
	if len(vals) != len(t.specs) {
		panic(fmt.Sprintf("aqp: %d values for %d specs", len(vals), len(t.specs)))
	}
	cs, ok := t.groups[group]
	if !ok {
		cs = make([]cell, len(t.specs))
		for i := range cs {
			cs[i] = cell{Min: math.Inf(1), Max: math.Inf(-1)}
		}
		t.groups[group] = cs
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		c := &cs[i]
		c.Sum += v
		c.SumSq += v * v
		c.Count++
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
}

// ConfidenceInterval reports the normal-approximation confidence interval
// of one aggregate cell at confidence z (e.g. 1.96 for 95%): for AVG the
// standard error of the sample mean, for SUM/COUNT the Horvitz-Thompson
// scale-up error given the processed fraction of the data. MIN/MAX have
// no distributional error bound and report ok == false, as do cells with
// fewer than two observations.
func (t *GroupTable) ConfidenceInterval(group string, col int, z, fraction float64) (lo, hi float64, ok bool) {
	cs, found := t.groups[group]
	if !found || col < 0 || col >= len(t.specs) {
		return 0, 0, false
	}
	c := cs[col]
	if c.Count < 2 {
		return 0, 0, false
	}
	n := float64(c.Count)
	mean := c.Sum / n
	variance := c.SumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / n)
	switch t.specs[col].Kind {
	case Avg:
		return mean - z*se, mean + z*se, true
	case Sum, Count:
		if fraction <= 0 || fraction > 1 {
			return 0, 0, false
		}
		// Scale-up estimate of the final value with its standard error.
		var est, width float64
		if t.specs[col].Kind == Sum {
			est = c.Sum / fraction
			width = z * se * n / fraction
		} else {
			est = n / fraction
			width = z * math.Sqrt(n*(1-fraction)) / fraction
		}
		return est - width, est + width, true
	default:
		return 0, 0, false
	}
}

// Groups reports the number of groups materialized so far.
func (t *GroupTable) Groups() int { return len(t.groups) }

// Snapshot is an immutable view of the aggregates: group → one value per
// declared spec. It is what users receive after each epoch and what the
// accuracy computation compares against the final answer.
type Snapshot struct {
	Specs  []AggSpec            `json:"specs"`
	Groups map[string][]float64 `json:"groups"`
}

// Snapshot reduces the current running state.
func (t *GroupTable) Snapshot() Snapshot {
	out := Snapshot{Specs: t.Specs(), Groups: make(map[string][]float64, len(t.groups))}
	for g, cs := range t.groups {
		vals := make([]float64, len(cs))
		for i, c := range cs {
			vals[i] = c.value(t.specs[i].Kind)
		}
		out.Groups[g] = vals
	}
	return out
}

// GroupNames returns the snapshot's groups in sorted order.
func (s Snapshot) GroupNames() []string {
	names := make([]string, 0, len(s.Groups))
	for g := range s.Groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// ratio implements the paper's per-column accuracy αc/αf, made symmetric
// so aggregates that approach the final value from above (MIN shrinking,
// AVG oscillating) score in [0, 1] as well. Opposite signs score 0; two
// zeros score 1.
func ratio(current, final float64) float64 {
	const eps = 1e-12
	if math.Abs(final) < eps {
		if math.Abs(current) < eps {
			return 1
		}
		return 0
	}
	if current*final < 0 {
		return 0
	}
	a, b := math.Abs(current), math.Abs(final)
	if a > b {
		a, b = b, a
	}
	return a / b
}

// Accuracy computes the paper's multi-column accuracy of current against
// the final answer: accuracy = (1/k) Σ_k αc^k / αf^k, where each column's
// term averages the per-group ratios over the groups of the final answer
// (a group not yet materialized contributes 0). Column weights from the
// specs are honored; unset (zero) weights mean equal importance, the
// assumption applied in the paper's evaluation.
func Accuracy(current, final Snapshot) float64 {
	if len(final.Specs) == 0 || len(final.Groups) == 0 {
		return 1
	}
	k := len(final.Specs)
	weights := make([]float64, k)
	var wsum float64
	for i, spec := range final.Specs {
		w := spec.Weight
		if w < 0 {
			w = 0
		}
		weights[i] = w
		wsum += w
	}
	if wsum == 0 {
		for i := range weights {
			weights[i] = 1
		}
		wsum = float64(k)
	}
	// Iterate groups in sorted order so the floating-point accumulation is
	// deterministic — checkpoint round trips must reproduce accuracies
	// bit-for-bit.
	names := final.GroupNames()
	var acc float64
	for i := 0; i < k; i++ {
		var colAcc float64
		for _, g := range names {
			fvals := final.Groups[g]
			cvals, ok := current.Groups[g]
			if !ok || i >= len(cvals) || i >= len(fvals) {
				continue
			}
			colAcc += ratio(cvals[i], fvals[i])
		}
		colAcc /= float64(len(final.Groups))
		acc += weights[i] / wsum * colAcc
	}
	if acc > 1 {
		acc = 1
	}
	if acc < 0 {
		acc = 0
	}
	return acc
}

// tableState is the serialized form of a GroupTable.
type tableState struct {
	Specs  []AggSpec         `json:"specs"`
	Groups map[string][]cell `json:"groups"`
}

// MarshalJSON serializes the running state for checkpointing.
func (t *GroupTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableState{Specs: t.specs, Groups: t.groups})
}

// UnmarshalJSON restores a checkpointed running state.
func (t *GroupTable) UnmarshalJSON(data []byte) error {
	var st tableState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Specs) == 0 {
		return fmt.Errorf("aqp: checkpoint has no aggregate specs")
	}
	t.specs = st.Specs
	t.groups = st.Groups
	if t.groups == nil {
		t.groups = make(map[string][]cell)
	}
	return nil
}

// StateBytes estimates the in-memory footprint of the running aggregate
// state, used by the memory-consumption estimator to track growth of
// stateful queries (Q17/Q18/Q21-style per-key maps).
func (t *GroupTable) StateBytes() int64 {
	const perGroup = 48 // map bucket + key header
	var b int64
	for g, cs := range t.groups {
		b += int64(len(g)) + perGroup + int64(len(cs))*32
	}
	return b
}
