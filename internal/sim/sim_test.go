package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(5, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5s", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order broken at %d: %v", i, got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var depth int
	var fire func()
	fire = func() {
		depth++
		if depth < 5 {
			e.Schedule(1, fire)
		}
	}
	e.Schedule(1, fire)
	e.Run()
	if depth != 5 {
		t.Fatalf("nested chain fired %d times, want 5", depth)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5s", e.Now())
	}
}

func TestEngineNegativeAndNaNDelaysClampToNow(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() {
		e.Schedule(-5, func() { fired++ })
		e.Schedule(math.NaN(), func() { fired++ })
	})
	e.Run()
	if fired != 2 {
		t.Fatalf("clamped events fired %d times, want 2", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v, want 10s", e.Now())
	}
}

func TestRunUntilLeavesFutureEventsPending(t *testing.T) {
	e := New()
	fired := []float64{}
	for _, d := range []float64{1, 2, 3, 10} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want the three events ≤ 5s", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5s after RunUntil", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d pending, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 10 {
		t.Fatalf("final state fired=%v now=%v", fired, e.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(100)
	same := 0
	d := NewRand(99)
	for i := 0; i < 1000; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds agree on %d of 1000 draws", same)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := NewRand(1)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(160)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / n
	if mean < 150 || mean > 170 {
		t.Fatalf("exponential mean %.1f, want ≈160", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestPickWeightedRespectsZeroWeights(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if got := r.PickWeighted([]float64{0, 1, 0}); got != 1 {
			t.Fatalf("picked index %d with weight 0", got)
		}
	}
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.PickWeighted([]float64{0.4, 0.3, 0.3})]++
	}
	if f := float64(counts[0]) / 30000; f < 0.37 || f > 0.43 {
		t.Fatalf("index 0 frequency %.3f, want ≈0.40", f)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n)%50 + 1
		orig := make([]int, size)
		for i := range orig {
			orig[i] = i
		}
		s := make([]int, size)
		copy(s, orig)
		Shuffle(NewRand(seed), s)
		seen := make([]bool, size)
		for _, v := range s {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeWithinBounds(t *testing.T) {
	r := NewRand(3)
	check := func(lo, hi float64) bool {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.IsInf(hi-lo, 0) {
			return true // span overflows float64; out of the utility's domain
		}
		v := r.Range(lo, hi)
		return (v >= lo && v < hi) || lo == hi && v == lo
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonNonNegativeAndMean(t *testing.T) {
	r := NewRand(4)
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		k := r.Poisson(3)
		if k < 0 {
			t.Fatal("negative Poisson draw")
		}
		sum += k
	}
	mean := float64(sum) / n
	if mean < 2.85 || mean > 3.15 {
		t.Fatalf("Poisson mean %.2f, want ≈3", mean)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Time(90).Minutes() != 1.5 {
		t.Fatalf("Minutes: %v", Time(90).Minutes())
	}
	if Time(1.5).String() != "1.500s" {
		t.Fatalf("String: %q", Time(1.5).String())
	}
}
