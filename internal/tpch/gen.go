package tpch

import (
	"fmt"

	"rotary/internal/sim"
)

// Value domains. These mirror the TPC-H specification's substitution sets
// closely enough that every predicate in Q1-Q22 is selective in the same
// way it is against real dbgen output.
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
		"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
		"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
		"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	// nationRegions maps each nation (by index above) to its region key,
	// matching the TPC-H seed data.
	nationRegions = []int32{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipInstructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes       = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers      = []string{
		"SM CASE", "SM BOX", "SM PACK", "SM PKG",
		"MED BAG", "MED BOX", "MED PKG", "MED PACK",
		"LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO CASE", "JUMBO BOX", "JUMBO PACK", "JUMBO PKG",
		"WRAP CASE", "WRAP BOX", "WRAP PACK", "WRAP PKG",
	}
	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partNameWords = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
		"blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
		"coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
		"dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost",
		"goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
		"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
		"navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
		"pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
		"royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate",
		"smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
		"violet", "wheat", "white", "yellow",
	}
	commentWords = []string{
		"carefully", "quickly", "blithely", "furiously", "slyly", "regular", "special",
		"express", "pending", "final", "ironic", "even", "bold", "silent", "Customer",
		"Complaints", "Recommends", "packages", "deposits", "requests", "accounts", "theodolites",
		"unusual", "ideas", "platelets", "instructions",
	}
)

var orderDateMax = MakeDate(1998, 8, 2)

// scaled returns base×sf rounded, with a floor of minimum so tiny test
// scale factors still produce joinable tables.
func scaled(base int, sf float64, minimum int) int {
	n := int(float64(base)*sf + 0.5)
	if n < minimum {
		n = minimum
	}
	return n
}

// Generate builds a complete deterministic dataset at scale factor sf.
// Generation is seeded: the same (sf, seed) pair yields the same database
// byte-for-byte, which the experiments rely on to precompute ground-truth
// aggregates once per dataset.
func Generate(sf float64, seed uint64) *Dataset {
	if sf <= 0 {
		panic("tpch: scale factor must be positive")
	}
	d := &Dataset{SF: sf}
	d.Regions = genRegions()
	d.Nations = genNations()
	d.Suppliers = genSuppliers(sf, seed)
	d.Customers = genCustomers(sf, seed)
	d.Parts = genParts(sf, seed)
	d.PartSupps = genPartSupps(d.Parts, d.Suppliers, seed)
	d.Orders, d.Lineitems = genOrdersAndLines(sf, d, seed)
	return d
}

func genRegions() []Region {
	out := make([]Region, len(regionNames))
	for i, n := range regionNames {
		out[i] = Region{RegionKey: int32(i), Name: n}
	}
	return out
}

func genNations() []Nation {
	out := make([]Nation, len(nationNames))
	for i, n := range nationNames {
		out[i] = Nation{NationKey: int32(i), Name: n, RegionKey: nationRegions[i]}
	}
	return out
}

func genComment(r *sim.Rand) string {
	a := sim.Pick(r, commentWords)
	b := sim.Pick(r, commentWords)
	return a + " " + b
}

func genPhone(r *sim.Rand, nation int32) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, 100+r.IntN(900), 100+r.IntN(900), 1000+r.IntN(9000))
}

func genSuppliers(sf float64, seed uint64) []Supplier {
	r := sim.NewRand(seed ^ 0x5)
	n := scaled(10000, sf, 40)
	out := make([]Supplier, n)
	for i := range out {
		comment := genComment(r)
		// ~0.05% of suppliers carry the "Customer Complaints" marker Q16
		// filters out; force a deterministic sprinkle.
		if i%2000 == 13 {
			comment = "Customer Complaints"
		}
		out[i] = Supplier{
			SuppKey:   int32(i + 1),
			Name:      fmt.Sprintf("Supplier#%09d", i+1),
			NationKey: int32(r.IntN(len(nationNames))),
			AcctBal:   r.Range(-999.99, 9999.99),
			Comment:   comment,
		}
	}
	return out
}

func genCustomers(sf float64, seed uint64) []Customer {
	r := sim.NewRand(seed ^ 0xc)
	n := scaled(150000, sf, 150)
	out := make([]Customer, n)
	for i := range out {
		nation := int32(r.IntN(len(nationNames)))
		out[i] = Customer{
			CustKey:    int32(i + 1),
			Name:       fmt.Sprintf("Customer#%09d", i+1),
			NationKey:  nation,
			Phone:      genPhone(r, nation),
			AcctBal:    r.Range(-999.99, 9999.99),
			MktSegment: sim.Pick(r, mktSegments),
		}
	}
	return out
}

func genParts(sf float64, seed uint64) []Part {
	r := sim.NewRand(seed ^ 0x9)
	n := scaled(200000, sf, 200)
	out := make([]Part, n)
	for i := range out {
		mfgr := 1 + r.IntN(5)
		brand := mfgr*10 + 1 + r.IntN(5)
		name := sim.Pick(r, partNameWords) + " " + sim.Pick(r, partNameWords) + " " +
			sim.Pick(r, partNameWords) + " " + sim.Pick(r, partNameWords) + " " + sim.Pick(r, partNameWords)
		out[i] = Part{
			PartKey:     int32(i + 1),
			Name:        name,
			Mfgr:        fmt.Sprintf("Manufacturer#%d", mfgr),
			Brand:       fmt.Sprintf("Brand#%d", brand),
			Type:        sim.Pick(r, typeSyllable1) + " " + sim.Pick(r, typeSyllable2) + " " + sim.Pick(r, typeSyllable3),
			Size:        int32(1 + r.IntN(50)),
			Container:   sim.Pick(r, containers),
			RetailPrice: 900 + float64((i+1)%200)/10 + float64((i+1)%1000)*0.01,
		}
	}
	return out
}

func genPartSupps(parts []Part, suppliers []Supplier, seed uint64) []PartSupp {
	r := sim.NewRand(seed ^ 0x7)
	out := make([]PartSupp, 0, len(parts)*4)
	ns := int32(len(suppliers))
	for _, p := range parts {
		for j := int32(0); j < 4; j++ {
			// TPC-H's supplier spread for a part; modulo keeps it joinable
			// at any scale.
			sk := (p.PartKey+j*(ns/4+1))%ns + 1
			out = append(out, PartSupp{
				PartKey:    p.PartKey,
				SuppKey:    sk,
				AvailQty:   int32(1 + r.IntN(9999)),
				SupplyCost: r.Range(1, 1000),
			})
		}
	}
	return out
}

func genOrdersAndLines(sf float64, d *Dataset, seed uint64) ([]Order, []Lineitem) {
	r := sim.NewRand(seed ^ 0x1f)
	nOrders := scaled(1500000, sf, 1500)
	nCust := int32(len(d.Customers))
	nPart := int32(len(d.Parts))
	nSupp := int32(len(d.Suppliers))
	orders := make([]Order, 0, nOrders)
	lines := make([]Lineitem, 0, nOrders*4)
	currentDate := MakeDate(1995, 6, 17) // dbgen's CURRENTDATE
	dateSpan := int(orderDateMax) - 1    // leave room for ship/receipt offsets

	for i := 0; i < nOrders; i++ {
		orderDate := Date(r.IntN(dateSpan - 121))
		nLines := 1 + r.IntN(7)
		// TPC-H rule: customers whose key is divisible by 3 never place
		// orders, which is what gives Q22 its "customers without orders"
		// population.
		custKey := 1 + int32(r.Int64N(int64(nCust)))
		for custKey%3 == 0 {
			custKey = 1 + int32(r.Int64N(int64(nCust)))
		}
		o := Order{
			OrderKey:      int32(i + 1),
			CustKey:       custKey,
			OrderDate:     orderDate,
			OrderPriority: sim.Pick(r, orderPriorities),
			Comment:       genComment(r),
			LineCount:     int32(nLines),
		}
		var total float64
		allFilled := true
		anyOpen := false
		for l := 0; l < nLines; l++ {
			qty := float64(1 + r.IntN(50))
			partKey := 1 + int32(r.Int64N(int64(nPart)))
			retail := d.Parts[partKey-1].RetailPrice
			ext := qty * retail
			ship := orderDate + Date(1+r.IntN(121))
			commit := orderDate + Date(30+r.IntN(61))
			receipt := ship + Date(1+r.IntN(30))
			var rf byte
			var ls byte
			if receipt <= currentDate {
				if r.Float64() < 0.5 {
					rf = 'R'
				} else {
					rf = 'A'
				}
			} else {
				rf = 'N'
			}
			if ship > currentDate {
				ls = 'O'
				anyOpen = true
				allFilled = false
			} else {
				ls = 'F'
			}
			li := Lineitem{
				OrderKey:      o.OrderKey,
				PartKey:       partKey,
				SuppKey:       (partKey%nSupp + 1),
				LineNumber:    int32(l + 1),
				Quantity:      qty,
				ExtendedPrice: ext,
				Discount:      float64(r.IntN(11)) / 100,
				Tax:           float64(r.IntN(9)) / 100,
				ReturnFlag:    rf,
				LineStatus:    ls,
				ShipDate:      ship,
				CommitDate:    commit,
				ReceiptDate:   receipt,
				ShipInstruct:  sim.Pick(r, shipInstructs),
				ShipMode:      sim.Pick(r, shipModes),
			}
			total += ext * (1 + li.Tax) * (1 - li.Discount)
			lines = append(lines, li)
		}
		switch {
		case allFilled:
			o.OrderStatus = 'F'
		case anyOpen && !allFilled && nLines > 1 && r.Float64() < 0.5:
			o.OrderStatus = 'P'
		default:
			o.OrderStatus = 'O'
		}
		o.TotalPrice = total
		orders = append(orders, o)
	}
	return orders, lines
}
