package core

// OverloadStats counts an executor's overload-protection activity: the
// epoch watchdog's preemptions, the admission gate's refusals and
// evictions as seen from the executor, the starvation guard's forced
// grants, and the wait queue's high-water mark. All times are virtual
// seconds. The admission controller keeps its own decision counters
// (admission.Stats); these are the executor-side effects.
type OverloadStats struct {
	// WatchdogPreemptions counts running epochs cut short because they
	// exceeded their virtual-time budget (predicted cost × slack).
	WatchdogPreemptions int
	// WatchdogWastedSecs is the virtual processing time lost to preempted
	// epochs (charged to the job; it rolls back at its next grant).
	WatchdogWastedSecs float64
	// Rejected counts arrivals refused at the admission gate.
	Rejected int
	// Shed counts queued jobs evicted to admit higher-value arrivals.
	Shed int
	// Degraded counts arrivals admitted as best-effort.
	Degraded int
	// ForcedGrants counts starvation-guard interventions: minimal grants
	// forced for jobs the policy passed over too many consecutive rounds.
	ForcedGrants int
	// MaxPendingDepth is the deepest wait queue observed.
	MaxPendingDepth int
}

// Add accumulates another executor's counters (the unified system sums
// its AQP and DLT sides; MaxPendingDepth takes the larger side).
func (o OverloadStats) Add(p OverloadStats) OverloadStats {
	maxDepth := o.MaxPendingDepth
	if p.MaxPendingDepth > maxDepth {
		maxDepth = p.MaxPendingDepth
	}
	return OverloadStats{
		WatchdogPreemptions: o.WatchdogPreemptions + p.WatchdogPreemptions,
		WatchdogWastedSecs:  o.WatchdogWastedSecs + p.WatchdogWastedSecs,
		Rejected:            o.Rejected + p.Rejected,
		Shed:                o.Shed + p.Shed,
		Degraded:            o.Degraded + p.Degraded,
		ForcedGrants:        o.ForcedGrants + p.ForcedGrants,
		MaxPendingDepth:     maxDepth,
	}
}
