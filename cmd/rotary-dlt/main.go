// Command rotary-dlt runs a Table II survey-based DLT workload under a
// Rotary-DLT variant or one of the paper's baselines on a simulated GPU
// cluster and prints per-job outcomes plus progress snapshots.
//
// Usage:
//
//	rotary-dlt [-policy adaptive|fairness|efficiency|srf|bcf|laf] [-jobs 30] [-gpus 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rotary"
	"rotary/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-dlt: ")
	var (
		policy    = flag.String("policy", "adaptive", "policy: adaptive, fairness, efficiency, srf, bcf, laf")
		jobs      = flag.Int("jobs", 30, "workload size")
		gpus      = flag.Int("gpus", 4, "GPU count")
		seed      = flag.Uint64("seed", 1, "random seed")
		history   = flag.Int("history", 40, "historical jobs to seed the repository with")
		trace     = flag.Int("trace", 0, "print the last N arbitration trace events")
		save      = flag.String("save-workload", "", "write the generated workload to this JSON file")
		load      = flag.String("load-workload", "", "run the workload from this JSON file instead of generating")
		faultSeed = flag.Uint64("fault-seed", 0, "fault-injection seed (0 = reuse -seed)")
		faultRate = flag.Float64("fault-rate", 0,
			"total per-opportunity fault probability (GPU crashes + checkpoint I/O faults); 0 disables injection")
		traceOut   = flag.String("trace-out", "", "stream every trace event as JSON lines to this file")
		metricsOut = flag.String("metrics-out", "", "write the final metrics registry (Prometheus text format) to this file")
	)
	flag.Parse()
	if err := cliutil.ValidateAll(
		cliutil.MinInt("-jobs", *jobs, 1),
		cliutil.MinInt("-gpus", *gpus, 1),
		cliutil.MinInt("-history", *history, 0),
		cliutil.MinInt("-trace", *trace, 0),
		cliutil.Fraction("-fault-rate", *faultRate),
	); err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}

	var specs []rotary.DLTSpec
	if *load != "" {
		var err error
		specs, err = rotary.LoadDLTSpecs(*load)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		specs, err = rotary.GenerateDLTWorkload(rotary.DefaultDLTWorkload(*jobs, *seed))
		if err != nil {
			log.Fatal(err)
		}
	}
	if *save != "" {
		if err := rotary.SaveDLTSpecs(*save, specs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved workload to %s\n", *save)
	}
	repo := rotary.NewRepository()
	if err := rotary.SeedDLTHistory(repo, *history, 30, *seed); err != nil {
		log.Fatal(err)
	}
	tee := rotary.NewTEE(repo, 3)
	tme := rotary.NewTME(repo, 3)

	var sched rotary.DLTScheduler
	switch *policy {
	case "adaptive":
		sched = rotary.NewRotaryDLT(0.5, tee, tme)
	case "fairness":
		sched = rotary.NewRotaryDLT(1.0, tee, tme)
	case "efficiency":
		sched = rotary.NewRotaryDLT(0.0, tee, tme)
	case "srf":
		sched = rotary.SRF{}
	case "bcf":
		sched = rotary.BCF{}
	case "laf":
		sched = rotary.LAFDLT{}
	default:
		log.Printf("unknown policy %q", *policy)
		flag.Usage()
		os.Exit(2)
	}

	cfg := rotary.DefaultDLTExecConfig()
	cfg.GPUs = *gpus
	var injector *rotary.FaultInjector
	if *faultRate > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		dir, err := os.MkdirTemp("", "rotary-ckpt-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		store, err := rotary.NewCheckpointStore(dir, 8)
		if err != nil {
			log.Fatal(err)
		}
		injector = rotary.NewFaultInjector(rotary.UniformFaults(fseed, *faultRate))
		store.SetFaults(injector)
		cfg.Store = store
		cfg.Faults = injector
		fmt.Printf("fault injection armed: rate=%g seed=%d\n", *faultRate, fseed)
	}
	var tracer *rotary.Tracer
	if *trace > 0 || *traceOut != "" {
		tracer = &rotary.Tracer{}
		cfg.Tracer = tracer
	}
	if *traceOut != "" {
		sink, err := rotary.OpenJSONLSink(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		tracer.SetSink(sink)
	}
	exec := rotary.NewDLTExecutor(cfg, sched, repo)
	built := make([]*rotary.DLTJob, 0, len(specs))
	for _, spec := range specs {
		j, err := rotary.BuildDLTJob(spec)
		if err != nil {
			log.Fatal(err)
		}
		built = append(built, j)
		exec.Submit(j, 0)
	}
	fmt.Printf("running %d DLT jobs on %d GPUs under %s…\n\n", len(specs), *gpus, sched.Name())
	if err := exec.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-12s %-12s %7s %8s %9s %-10s\n",
		"job", "kind", "criteria", "epochs", "accuracy", "end(min)", "status")
	for _, j := range built {
		fmt.Printf("%-28s %-12s %-12v %7d %7.1f%% %9.0f %-10s\n",
			j.ID(), j.Criteria().Kind, j.Criteria(), j.Epochs(),
			j.Accuracy()*100, j.EndTime().Minutes(), j.Status())
	}

	// Progress snapshots every 60 virtual minutes, Fig. 10-style.
	var times []rotary.Time
	for t := rotary.Time(3600); t <= exec.Engine().Now(); t += 3600 {
		times = append(times, t)
	}
	times = append(times, exec.Engine().Now())
	fmt.Printf("\n%10s %8s %6s %6s %6s %6s %6s %6s\n",
		"t(min)", "attained", "min", "p25", "p50", "p75", "max", "mean")
	for _, s := range rotary.SnapshotDLT(built, times) {
		v := s.Progress
		fmt.Printf("%10.0f %8d %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			s.At.Minutes(), s.Attained, v.Min, v.P25, v.P50, v.P75, v.Max, v.Mean)
	}
	fmt.Printf("\nvirtual makespan: %.0f minutes; TTR overhead: %v\n",
		exec.Engine().Now().Minutes(), exec.TTR().Overhead())
	if injector != nil {
		fmt.Println()
		fmt.Print(rotary.RenderRecovery(sched.Name(), exec.Recovery(), cfg.Store.Health()))
	}
	if tracer != nil && *trace > 0 {
		fmt.Printf("\nlast %d arbitration events:\n%s", *trace, tracer.Render(*trace))
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(rotary.DefaultMetrics().RenderText(true)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}
