// aqp-multitenant reproduces the introduction's motivating scenario: many
// analysts share one warehouse, each submitting reporting queries with a
// time budget, and an overly ambitious budget should not block key
// resources — if a query's answer is precise enough after one minute, the
// remaining budget should flow to other tenants.
//
// The example runs the same 30-query TPC-H workload under Rotary-AQP and
// under EDF and compares who attains what, and how much budgeted time the
// early stops returned to the cluster.
package main

import (
	"fmt"
	"log"

	"rotary"
)

func run(cat *rotary.Catalog, specs []rotary.AQPSpec, sched rotary.AQPScheduler, repo *rotary.Repository) []*rotary.AQPJob {
	exec := rotary.NewAQPExecutor(rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat)), sched, repo)
	for _, spec := range specs {
		j, err := rotary.BuildAQPJob(cat, spec)
		if err != nil {
			log.Fatal(err)
		}
		exec.Submit(j, rotary.Time(spec.ArrivalSecs))
	}
	if err := exec.Run(); err != nil {
		log.Fatal(err)
	}
	return exec.Jobs()
}

func main() {
	log.SetFlags(0)
	fmt.Println("generating shared TPC-H warehouse (SF 0.01)…")
	ds := rotary.GenerateTPCH(0.01, 7)
	cat := rotary.NewCatalog(ds, 7)

	wcfg := rotary.DefaultAQPWorkload(30, 7)
	wcfg.BatchRows = rotary.RecommendedBatchRows(cat)
	specs := rotary.GenerateAQPWorkload(wcfg)

	repo := rotary.NewRepository()
	if err := rotary.SeedAQPHistory(repo, cat, wcfg.BatchRows); err != nil {
		log.Fatal(err)
	}

	for _, s := range []rotary.AQPScheduler{
		rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3)),
		rotary.EDFAQP{},
	} {
		jobs := run(cat, specs, s, repo)
		rep := rotary.AnalyzeAQP(s.Name(), jobs, nil)
		att := rep.AttainedByClass()
		tot := rep.TotalByClass()

		// Budget returned to the cluster: deadline minus actual runtime,
		// summed over jobs that stopped early with a satisfying answer.
		var returnedSecs float64
		for _, j := range jobs {
			if j.Status() == rotary.StatusAttainedStop {
				if slack := j.DeadlineSecs() - (j.EndTime() - j.Arrival()).Seconds(); slack > 0 {
					returnedSecs += slack
				}
			}
		}
		fmt.Printf("\npolicy %-12s attained light %d/%d, medium %d/%d, heavy %d/%d, total %d/%d\n",
			s.Name(), att["light"], tot["light"], att["medium"], tot["medium"],
			att["heavy"], tot["heavy"], att["total"], tot["total"])
		fmt.Printf("  budgeted time returned by early stops: %.0f job-seconds\n", returnedSecs)
		fmt.Printf("  false attainments (envelope mistakes): %d\n", rep.FalseAttained())
	}
}
