package faults_test

import (
	"sync"
	"testing"

	"rotary/internal/faults"
)

// drawSequence replays a fixed consultation pattern and records every
// outcome, so two injectors can be compared draw-for-draw.
func drawSequence(in *faults.Injector, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if at, crashed := in.EpochCrash(100); crashed {
			out = append(out, 1, int(at))
		} else {
			out = append(out, 0)
		}
		out = append(out, int(in.WriteFault()), int(in.ReadFault()))
	}
	return out
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	cfg := faults.Uniform(42, 0.2)
	a := drawSequence(faults.New(cfg), 500)
	b := drawSequence(faults.New(cfg), 500)
	if len(a) != len(b) {
		t.Fatalf("sequence lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a := drawSequence(faults.New(faults.Uniform(1, 0.2)), 200)
	b := drawSequence(faults.New(faults.Uniform(2, 0.2)), 200)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestInjectorRatesRoughlyHonored(t *testing.T) {
	in := faults.New(faults.Config{Seed: 7, CrashRate: 0.25, TransientRate: 0.1, CorruptRate: 0.1, SlowRate: 0.1})
	const n = 4000
	crashes := 0
	for i := 0; i < n; i++ {
		if _, crashed := in.EpochCrash(10); crashed {
			crashes++
		}
		in.WriteFault()
	}
	st := in.Stats()
	if crashes < n/8 || crashes > n/2 {
		t.Errorf("crash count %d far from 25%% of %d", crashes, n)
	}
	for name, got := range map[string]int{
		"transients": st.Transients, "corruptions": st.Corruptions, "slow": st.SlowIOs,
	} {
		if got < n/25 || got > n/5 {
			t.Errorf("%s count %d far from 10%% of %d", name, got, n)
		}
	}
}

func TestNilAndZeroInjectorDealNoFaults(t *testing.T) {
	var nilIn *faults.Injector
	if nilIn.Enabled() {
		t.Error("nil injector reports enabled")
	}
	zero := faults.New(faults.Config{Seed: 3})
	for _, in := range []*faults.Injector{nilIn, zero} {
		for i := 0; i < 100; i++ {
			if _, crashed := in.EpochCrash(50); crashed {
				t.Fatal("crash dealt with zero crash rate")
			}
			if k := in.WriteFault(); k != faults.None {
				t.Fatalf("write fault %v dealt with zero rates", k)
			}
			if k := in.ReadFault(); k != faults.None {
				t.Fatalf("read fault %v dealt with zero rates", k)
			}
		}
	}
	if nilIn.SlowDelaySecs() != 0 || nilIn.RepairSecs() != 0 {
		t.Error("nil injector draws nonzero delays")
	}
}

func TestReadsNeverCorrupt(t *testing.T) {
	in := faults.New(faults.Config{Seed: 5, CorruptRate: 0.9})
	for i := 0; i < 500; i++ {
		if k := in.ReadFault(); k == faults.Corrupt {
			t.Fatal("read attempt drew a corruption fault")
		}
	}
	if st := in.Stats(); st.Corruptions != 0 {
		t.Errorf("read-only injector counted %d corruptions", st.Corruptions)
	}
}

func TestRepairAndSlowDelaysPositive(t *testing.T) {
	in := faults.New(faults.Uniform(9, 0.1))
	for i := 0; i < 50; i++ {
		if d := in.RepairSecs(); d < 1 {
			t.Fatalf("repair delay %g below 1s clamp", d)
		}
		if d := in.SlowDelaySecs(); d < 0 {
			t.Fatalf("negative slow delay %g", d)
		}
	}
}

// The executors consult the injector from a single-threaded event loop,
// but the checkpoint store may be hit from tests exercising concurrent
// Save/Load — the injector must be race-clean.
func TestInjectorConcurrentUse(t *testing.T) {
	in := faults.New(faults.Uniform(11, 0.2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.WriteFault()
				in.ReadFault()
				in.EpochCrash(10)
			}
		}()
	}
	wg.Wait()
	_ = in.Stats()
}
