package metrics

import (
	"fmt"
	"strings"

	"rotary/internal/admission"
	"rotary/internal/core"
)

// RenderOverload renders one executor's overload-protection report: the
// admission controller's verdict counters followed by the executor-side
// watchdog, shedding, and starvation-aging effects. Pass a zero
// admission.Stats when no controller was configured — the admission line
// is suppressed so the report reads like RenderRecovery with a store
// absent.
func RenderOverload(label string, as admission.Stats, os core.OverloadStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload report: %s\n", label)
	if as.Submitted > 0 {
		fmt.Fprintf(&b, " admission: submitted=%d admitted=%d rejected=%d shed=%d degraded=%d queue-full-rejections=%d\n",
			as.Submitted, as.Admitted, as.Rejected, as.Shed, as.Degraded, as.QueueFullRejections)
	}
	fmt.Fprintf(&b, " queue: max-depth=%d (admission high-water=%d)\n",
		os.MaxPendingDepth, as.MaxQueueDepth)
	fmt.Fprintf(&b, " watchdog: preemptions=%d wasted=%.1fs\n",
		os.WatchdogPreemptions, os.WatchdogWastedSecs)
	fmt.Fprintf(&b, " outcomes: rejected=%d shed=%d degraded=%d forced-grants=%d\n",
		os.Rejected, os.Shed, os.Degraded, os.ForcedGrants)
	return b.String()
}
