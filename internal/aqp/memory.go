package aqp

// This file implements the CBO-style memory-consumption estimate from
// §IV-A: "It predicts the memory consumption of the AQP jobs based on each
// batch's table and column statistics and query plans". The paper uses
// Apache Spark's cost-based optimizer; here the same inputs — resident
// table cardinalities and widths from internal/tpch's statistics, plus the
// query plan's projected group and per-key-state cardinalities — feed a
// plain footprint formula.

// MemoryProfile describes a query plan's memory-relevant shape, derived
// from table/column statistics by the query catalog.
type MemoryProfile struct {
	// ResidentRows and ResidentRowBytes describe the hash indexes the plan
	// builds over dimension/build-side tables before streaming starts.
	ResidentRows     int64
	ResidentRowBytes float64
	// ProjectedGroups and GroupBytes describe the grouped-aggregate state
	// at full cardinality.
	ProjectedGroups int64
	GroupBytes      float64
	// ProjectedAuxKeys and AuxKeyBytes describe per-key auxiliary state
	// (Q17's per-part running averages, Q18/Q21's per-order state).
	ProjectedAuxKeys int64
	AuxKeyBytes      float64
}

// EstimateMB is the CBO-style estimate of the plan's peak footprint in MB,
// including a 25% working-space allowance (batch buffers, merge space)
// analogous to the padding Rotary applies to minimize OOM risk.
func (p MemoryProfile) EstimateMB() float64 {
	bytes := float64(p.ResidentRows)*p.ResidentRowBytes +
		float64(p.ProjectedGroups)*p.GroupBytes +
		float64(p.ProjectedAuxKeys)*p.AuxKeyBytes
	return bytes * 1.25 / (1 << 20)
}
