package core_test

import (
	"testing"

	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Entire AQP runs must be bit-for-bit reproducible: the virtual clock,
// seeded generators, and deterministic tie-breaking leave no room for
// run-to-run variation.
func TestAQPRunDeterminism(t *testing.T) {
	run := func() []string {
		cat := tpch.NewCatalog(tpch.Generate(0.005, 3), 3)
		repo := estimate.NewRepository()
		if err := workload.SeedAQPHistory(repo, cat, workload.RecommendedBatchRows(cat)); err != nil {
			t.Fatal(err)
		}
		sched := core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		exec := core.NewAQPExecutor(core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)), sched, repo)
		wcfg := workload.DefaultAQPWorkload(10, 3)
		wcfg.BatchRows = workload.RecommendedBatchRows(cat)
		for _, spec := range workload.GenerateAQP(wcfg) {
			j, err := workload.BuildAQPJob(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			exec.Submit(j, sim.Time(spec.ArrivalSecs))
		}
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, j := range exec.Jobs() {
			out = append(out, j.ID(), j.Status().String(),
				j.EndTime().String(), sim.Time(j.ProcessingSecs()).String())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("AQP runs diverged at field %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// The same holds for DLT runs.
func TestDLTRunDeterminism(t *testing.T) {
	run := func() []string {
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 20, 30, 5); err != nil {
			t.Fatal(err)
		}
		sched := core.NewRotaryDLT(0.5, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
		exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
		for _, spec := range mustGenDLT(t, 8, 5) {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, j := range exec.Jobs() {
			out = append(out, j.ID(), j.Status().String(), j.EndTime().String())
			for _, p := range j.Placements() {
				out = append(out, p.Start.String(), p.End.String())
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("DLT run traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("DLT runs diverged at field %d: %q vs %q", i, a[i], b[i])
		}
	}
}
