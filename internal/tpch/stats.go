package tpch

import (
	"fmt"
	"sort"
)

// This file implements the table and column statistics the §IV-A memory
// estimator consumes ("It predicts the memory consumption of the AQP jobs
// based on each batch's table and column statistics and query plans") —
// the same inputs Spark's cost-based optimizer exposes: row counts, rough
// row widths, and per-column cardinality/min/max.

// ColumnStats summarizes one column of one table.
type ColumnStats struct {
	Name string
	// Distinct is the exact number of distinct values.
	Distinct int
	// Min and Max bound numeric columns; both are 0 for string columns
	// whose ordering is not meaningful to the estimator.
	Min, Max float64
}

// TableStats summarizes one table.
type TableStats struct {
	Name string
	Rows int
	// RowBytes is the approximate in-memory width of one row.
	RowBytes int
	Columns  []ColumnStats
}

// ColumnByName returns a table column's statistics.
func (t TableStats) ColumnByName(name string) (ColumnStats, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnStats{}, false
}

// Stats computes the statistics of every table in the dataset. The scan
// is linear in the dataset size and intended to run once per catalog.
func (d *Dataset) Stats() []TableStats {
	var out []TableStats

	out = append(out, TableStats{
		Name: "region", Rows: len(d.Regions), RowBytes: 32,
		Columns: []ColumnStats{
			intCol("r_regionkey", len(d.Regions), func(i int) float64 { return float64(d.Regions[i].RegionKey) }),
			strCol("r_name", len(d.Regions), func(i int) string { return d.Regions[i].Name }),
		},
	})
	out = append(out, TableStats{
		Name: "nation", Rows: len(d.Nations), RowBytes: 40,
		Columns: []ColumnStats{
			intCol("n_nationkey", len(d.Nations), func(i int) float64 { return float64(d.Nations[i].NationKey) }),
			strCol("n_name", len(d.Nations), func(i int) string { return d.Nations[i].Name }),
			intCol("n_regionkey", len(d.Nations), func(i int) float64 { return float64(d.Nations[i].RegionKey) }),
		},
	})
	out = append(out, TableStats{
		Name: "supplier", Rows: len(d.Suppliers), RowBytes: 96,
		Columns: []ColumnStats{
			intCol("s_suppkey", len(d.Suppliers), func(i int) float64 { return float64(d.Suppliers[i].SuppKey) }),
			intCol("s_nationkey", len(d.Suppliers), func(i int) float64 { return float64(d.Suppliers[i].NationKey) }),
			intCol("s_acctbal", len(d.Suppliers), func(i int) float64 { return d.Suppliers[i].AcctBal }),
		},
	})
	out = append(out, TableStats{
		Name: "customer", Rows: len(d.Customers), RowBytes: 112,
		Columns: []ColumnStats{
			intCol("c_custkey", len(d.Customers), func(i int) float64 { return float64(d.Customers[i].CustKey) }),
			intCol("c_nationkey", len(d.Customers), func(i int) float64 { return float64(d.Customers[i].NationKey) }),
			strCol("c_mktsegment", len(d.Customers), func(i int) string { return d.Customers[i].MktSegment }),
			intCol("c_acctbal", len(d.Customers), func(i int) float64 { return d.Customers[i].AcctBal }),
		},
	})
	out = append(out, TableStats{
		Name: "part", Rows: len(d.Parts), RowBytes: 128,
		Columns: []ColumnStats{
			intCol("p_partkey", len(d.Parts), func(i int) float64 { return float64(d.Parts[i].PartKey) }),
			strCol("p_brand", len(d.Parts), func(i int) string { return d.Parts[i].Brand }),
			strCol("p_type", len(d.Parts), func(i int) string { return d.Parts[i].Type }),
			strCol("p_container", len(d.Parts), func(i int) string { return d.Parts[i].Container }),
			intCol("p_size", len(d.Parts), func(i int) float64 { return float64(d.Parts[i].Size) }),
			intCol("p_retailprice", len(d.Parts), func(i int) float64 { return d.Parts[i].RetailPrice }),
		},
	})
	out = append(out, TableStats{
		Name: "partsupp", Rows: len(d.PartSupps), RowBytes: 40,
		Columns: []ColumnStats{
			intCol("ps_partkey", len(d.PartSupps), func(i int) float64 { return float64(d.PartSupps[i].PartKey) }),
			intCol("ps_suppkey", len(d.PartSupps), func(i int) float64 { return float64(d.PartSupps[i].SuppKey) }),
			intCol("ps_availqty", len(d.PartSupps), func(i int) float64 { return float64(d.PartSupps[i].AvailQty) }),
			intCol("ps_supplycost", len(d.PartSupps), func(i int) float64 { return d.PartSupps[i].SupplyCost }),
		},
	})
	out = append(out, TableStats{
		Name: "orders", Rows: len(d.Orders), RowBytes: 96,
		Columns: []ColumnStats{
			intCol("o_orderkey", len(d.Orders), func(i int) float64 { return float64(d.Orders[i].OrderKey) }),
			intCol("o_custkey", len(d.Orders), func(i int) float64 { return float64(d.Orders[i].CustKey) }),
			intCol("o_orderdate", len(d.Orders), func(i int) float64 { return float64(d.Orders[i].OrderDate) }),
			strCol("o_orderpriority", len(d.Orders), func(i int) string { return d.Orders[i].OrderPriority }),
			intCol("o_totalprice", len(d.Orders), func(i int) float64 { return d.Orders[i].TotalPrice }),
		},
	})
	out = append(out, TableStats{
		Name: "lineitem", Rows: len(d.Lineitems), RowBytes: 120,
		Columns: []ColumnStats{
			intCol("l_orderkey", len(d.Lineitems), func(i int) float64 { return float64(d.Lineitems[i].OrderKey) }),
			intCol("l_partkey", len(d.Lineitems), func(i int) float64 { return float64(d.Lineitems[i].PartKey) }),
			intCol("l_suppkey", len(d.Lineitems), func(i int) float64 { return float64(d.Lineitems[i].SuppKey) }),
			intCol("l_quantity", len(d.Lineitems), func(i int) float64 { return d.Lineitems[i].Quantity }),
			intCol("l_discount", len(d.Lineitems), func(i int) float64 { return d.Lineitems[i].Discount }),
			intCol("l_shipdate", len(d.Lineitems), func(i int) float64 { return float64(d.Lineitems[i].ShipDate) }),
			strCol("l_shipmode", len(d.Lineitems), func(i int) string { return d.Lineitems[i].ShipMode }),
			strCol("l_returnflag", len(d.Lineitems), func(i int) string { return string(d.Lineitems[i].ReturnFlag) }),
		},
	})
	return out
}

// intCol scans a numeric column.
func intCol(name string, n int, get func(int) float64) ColumnStats {
	c := ColumnStats{Name: name}
	if n == 0 {
		return c
	}
	distinct := make(map[float64]struct{}, 64)
	c.Min, c.Max = get(0), get(0)
	for i := 0; i < n; i++ {
		v := get(i)
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
		distinct[v] = struct{}{}
	}
	c.Distinct = len(distinct)
	return c
}

// strCol scans a string column.
func strCol(name string, n int, get func(int) string) ColumnStats {
	c := ColumnStats{Name: name}
	distinct := make(map[string]struct{}, 64)
	for i := 0; i < n; i++ {
		distinct[get(i)] = struct{}{}
	}
	c.Distinct = len(distinct)
	return c
}

// Stats returns the catalog's dataset statistics, computed once and
// cached.
func (c *Catalog) Stats() []TableStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats == nil {
		c.stats = c.ds.Stats()
	}
	return c.stats
}

// TableStatsByName returns one table's statistics from the catalog.
func (c *Catalog) TableStatsByName(name string) (TableStats, error) {
	for _, t := range c.Stats() {
		if t.Name == name {
			return t, nil
		}
	}
	return TableStats{}, fmt.Errorf("tpch: unknown table %q", name)
}

// RenderStats formats the statistics as a plain-text report (used by
// cmd/tpchgen -stats).
func RenderStats(stats []TableStats) string {
	var b []byte
	for _, t := range stats {
		b = append(b, fmt.Sprintf("%-10s rows=%-8d rowbytes=%d\n", t.Name, t.Rows, t.RowBytes)...)
		cols := append([]ColumnStats(nil), t.Columns...)
		sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
		for _, c := range cols {
			if c.Min == 0 && c.Max == 0 {
				b = append(b, fmt.Sprintf("  %-18s distinct=%d\n", c.Name, c.Distinct)...)
			} else {
				b = append(b, fmt.Sprintf("  %-18s distinct=%-8d min=%.2f max=%.2f\n", c.Name, c.Distinct, c.Min, c.Max)...)
			}
		}
	}
	return string(b)
}

// Describe returns a human-readable summary of the named query's plan
// shape: Table I class, fact stream, cost anchor, memory estimate, and
// the aggregate output columns.
func (c *Catalog) Describe(name string) (string, error) {
	cls, err := ClassOf(name)
	if err != nil {
		return "", err
	}
	rows, err := c.FactRows(name)
	if err != nil {
		return "", err
	}
	cm, err := c.CostModel(name)
	if err != nil {
		return "", err
	}
	prof, err := c.MemoryProfile(name)
	if err != nil {
		return "", err
	}
	q, err := c.build(name)
	if err != nil {
		return "", err
	}
	specs := q.online().Snapshot().Specs

	fact := "lineitem"
	switch name {
	case "q13":
		fact = "orders"
	case "q22":
		fact = "customer"
	case "q2", "q11", "q16", "q20":
		fact = "partsupp"
	}
	var b []byte
	b = fmt.Appendf(b, "%s: %s query\n", name, cls)
	b = fmt.Appendf(b, "  fact stream      : %s (%d rows)\n", fact, rows)
	b = fmt.Appendf(b, "  full pass (1 thr): %.0f virtual seconds\n", cm.BatchCost(rows, 1))
	b = fmt.Appendf(b, "  memory estimate  : %.1f MB (resident %d rows, %d projected groups)\n",
		prof.EstimateMB(), prof.ResidentRows, prof.ProjectedGroups)
	b = fmt.Appendf(b, "  aggregates       :")
	for _, s := range specs {
		b = fmt.Appendf(b, " %s(%s)", s.Kind, s.Name)
	}
	b = append(b, '\n')
	return string(b), nil
}
