package core

import (
	"fmt"

	"rotary/internal/obs"
)

// defaultTracer, when set, is adopted by executors constructed without an
// explicit Tracer — the hook commands use to stream traces out of deep
// call stacks (rotary-bench's experiment runners) without threading a
// tracer through every construction site. Set it before building
// executors; reads are unsynchronized by design (the goroutine-creation
// happens-before edge covers the CLI usage).
var defaultTracer *Tracer

// SetDefaultTracer installs the fallback tracer adopted by executors
// whose config leaves Tracer nil (nil uninstalls). Call before
// constructing executors.
func SetDefaultTracer(t *Tracer) { defaultTracer = t }

// epochSecsBuckets grade virtual epoch durations from sub-second epochs
// to pathological multi-minute ones (watchdog territory).
var epochSecsBuckets = []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}

// execMetrics holds one executor substrate's pre-resolved obs handles
// (sub is "aqp" or "dlt"). Handles are looked up once at construction;
// the hot path touches only atomics. Executors sharing a registry share
// handles and accumulate, like any process-wide metrics endpoint. All
// values here derive from virtual time and seed-stable inputs, so they
// render deterministically.
type execMetrics struct {
	reg *obs.Registry
	sub string

	arrivals         *obs.Counter
	grants           *obs.Counter // thread grants (aqp) / device placements (dlt)
	epochs           *obs.Counter
	epochSecs        *obs.Histogram
	checkpoints      *obs.Counter
	resumes          *obs.Counter
	rollbacks        *obs.Counter
	crashes          *obs.Counter
	recovered        *obs.Counter
	reattached       *obs.Counter
	detached         *obs.Counter
	scratchRestarts  *obs.Counter
	watchdogPreempts *obs.Counter
	rejected         *obs.Counter
	shed             *obs.Counter
	degraded         *obs.Counter
	stops            *obs.Counter
	ooms             *obs.Counter // dlt only
	pendingJobs      *obs.Gauge
	runningJobs      *obs.Gauge
}

func newExecMetrics(reg *obs.Registry, sub string) *execMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	p := "rotary_" + sub + "_"
	m := &execMetrics{
		reg:              reg,
		sub:              sub,
		arrivals:         reg.Counter(p+"arrivals_total", "job arrivals fired (counted before the admission gate)"),
		epochs:           reg.Counter(p+"epochs_total", "epochs completed"),
		epochSecs:        reg.Histogram(p+"epoch_secs", "completed-epoch duration in virtual seconds", epochSecsBuckets),
		checkpoints:      reg.Counter(p+"checkpoints_total", "deferred-job checkpoints persisted"),
		resumes:          reg.Counter(p+"resumes_total", "checkpoint resumes replayed"),
		rollbacks:        reg.Counter(p+"rollbacks_total", "forced rollbacks to a checkpoint after a crash or preemption"),
		crashes:          reg.Counter(p+"crashes_total", "injected worker/device crashes"),
		recovered:        reg.Counter(p+"recovered_total", "jobs that completed an epoch after a crash"),
		reattached:       reg.Counter(p+"reattached_total", "journal-recovered jobs re-registered after a daemon restart"),
		detached:         reg.Counter(p+"detached_total", "jobs detached for checkpoint-carried migration to another shard"),
		scratchRestarts:  reg.Counter(p+"scratch_restarts_total", "from-scratch restarts after an unusable checkpoint"),
		watchdogPreempts: reg.Counter(p+"watchdog_preemptions_total", "epochs preempted by the watchdog"),
		rejected:         reg.Counter(p+"rejected_total", "arrivals refused at the admission gate"),
		shed:             reg.Counter(p+"shed_total", "queued jobs evicted for a higher-value arrival"),
		degraded:         reg.Counter(p+"degraded_total", "arrivals admitted as best-effort"),
		stops:            reg.Counter(p+"stops_total", "jobs reaching a terminal status (any outcome)"),
		pendingJobs:      reg.Gauge(p+"pending_jobs", "wait-queue depth"),
		runningJobs:      reg.Gauge(p+"running_jobs", "jobs mid-epoch"),
	}
	if sub == "dlt" {
		m.grants = reg.Counter(p+"placements_total", "device placements applied")
		m.ooms = reg.Counter(p+"oom_total", "placements aborted by device OOM")
	} else {
		m.grants = reg.Counter(p+"grants_total", "thread grants applied")
	}
	return m
}

// outcome counts a terminal status in the per-status breakdown family.
// The registry lookup is amortized over a job's whole lifetime (one call
// at termination), not per-epoch.
func (m *execMetrics) outcome(status JobStatus) {
	m.stops.Inc()
	if m.reg != nil {
		m.reg.Counter(fmt.Sprintf("rotary_%s_job_outcomes_total{status=%q}", m.sub, status),
			"terminal job outcomes by status").Inc()
	}
}

// storeMetrics holds a CheckpointStore's obs handles. Counters and the
// frame-size histogram are virtual-time deterministic; the latency
// histograms measure real I/O and are wall-class.
type storeMetrics struct {
	writes       *obs.Counter
	memHits      *obs.Counter
	diskHits     *obs.Counter
	corrupt      *obs.Counter
	retries      *obs.Counter
	transient    *obs.Counter
	swept        *obs.Counter
	frameBytes   *obs.Histogram
	writeLatency *obs.Histogram // wall
	readLatency  *obs.Histogram // wall
}

var (
	ckptBytesBuckets   = []float64{256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
	ckptLatencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
)

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	const p = "rotary_ckpt_"
	return &storeMetrics{
		writes:       reg.Counter(p+"writes_total", "checkpoint saves accepted"),
		memHits:      reg.Counter(p+"mem_hits_total", "loads served from the memory tier"),
		diskHits:     reg.Counter(p+"disk_hits_total", "loads replayed from disk"),
		corrupt:      reg.Counter(p+"corrupt_detected_total", "loads rejected by frame validation"),
		retries:      reg.Counter(p+"retries_total", "transient I/O attempts retried"),
		transient:    reg.Counter(p+"transient_failures_total", "operations that exhausted their retries"),
		swept:        reg.Counter(p+"swept_total", "stale checkpoint files removed at startup"),
		frameBytes:   reg.Histogram(p+"frame_bytes", "on-disk checkpoint frame size in bytes", ckptBytesBuckets),
		writeLatency: reg.WallHistogram(p+"write_seconds", "wall-clock disk write latency", ckptLatencyBuckets),
		readLatency:  reg.WallHistogram(p+"read_seconds", "wall-clock disk read latency", ckptLatencyBuckets),
	}
}
