// Package stream is the data-source substrate for Rotary-AQP.
//
// The paper streams TPC-H data to the AQP system from an Apache Kafka
// cluster: "online aggregation systems process data iteratively using data
// batches, and each progressive sampling of the data is a batch and
// processes roughly the same amount of data" (§III-A, Example 1). This
// package reproduces the consumption semantics the arbiter depends on —
// partitioned topics, progressive batch delivery, explicit offsets that
// survive checkpoint/restore — without the network.
package stream

import (
	"fmt"

	"rotary/internal/sim"
)

// Topic holds the records of one logical stream, split across partitions.
// Records are delivered batch-by-batch as a progressive sample of the
// whole dataset; with Shuffle, delivery order is a seeded permutation so
// each batch is an (approximately) uniform sample, which is what makes the
// running aggregates converge toward the final answer.
type Topic[T any] struct {
	name       string
	partitions [][]T
	total      int
}

// NewTopic builds a topic from records, split round-robin into nparts
// partitions. nparts < 1 is treated as 1.
func NewTopic[T any](name string, records []T, nparts int) *Topic[T] {
	if nparts < 1 {
		nparts = 1
	}
	parts := make([][]T, nparts)
	for i, rec := range records {
		p := i % nparts
		parts[p] = append(parts[p], rec)
	}
	return &Topic[T]{name: name, partitions: parts, total: len(records)}
}

// NewShuffledTopic is NewTopic after a seeded permutation of records, so
// that batches are uniform progressive samples. The input slice is not
// modified.
func NewShuffledTopic[T any](name string, records []T, nparts int, seed uint64) *Topic[T] {
	shuffled := make([]T, len(records))
	copy(shuffled, records)
	sim.Shuffle(sim.NewRand(seed), shuffled)
	return NewTopic(name, shuffled, nparts)
}

// Name reports the topic name.
func (t *Topic[T]) Name() string { return t.name }

// Len reports the total number of records across partitions.
func (t *Topic[T]) Len() int { return t.total }

// Partitions reports the partition count.
func (t *Topic[T]) Partitions() int { return len(t.partitions) }

// Consumer reads a topic progressively. Consumers are cheap; each AQP job
// owns one. The consumer's position is captured by Offsets for
// checkpointing and restored with Seek, mirroring Kafka consumer-group
// offset commits.
type Consumer[T any] struct {
	topic   *Topic[T]
	offsets []int
	next    int // round-robin partition pointer
	read    int
}

// NewConsumer returns a consumer positioned at the start of the topic.
func NewConsumer[T any](t *Topic[T]) *Consumer[T] {
	return &Consumer[T]{topic: t, offsets: make([]int, len(t.partitions))}
}

// NextBatch returns up to n records and reports whether any records were
// returned. A false report means the topic is exhausted.
//
// Records are drawn one at a time in strict round-robin over partitions,
// so the global consumption order is a pure function of the topic — it
// does not depend on the batch sizes a consumer happens to use. Queries
// with order-sensitive auxiliary state (Q17's running averages) rely on
// this to agree with the ground-truth pass regardless of epoch sizing.
func (c *Consumer[T]) NextBatch(n int) ([]T, bool) {
	if n <= 0 {
		return nil, false
	}
	batch := make([]T, 0, n)
	parts := len(c.topic.partitions)
	empty := 0
	for len(batch) < n && empty < parts {
		p := c.next % parts
		c.next++
		part := c.topic.partitions[p]
		off := c.offsets[p]
		if off >= len(part) {
			empty++
			continue
		}
		empty = 0
		batch = append(batch, part[off])
		c.offsets[p] = off + 1
	}
	c.read += len(batch)
	if len(batch) == 0 {
		return nil, false
	}
	return batch, true
}

// Partitions reports the partition count of the consumer's topic.
func (c *Consumer[T]) Partitions() int { return len(c.topic.partitions) }

// NextBatchPartitioned returns up to n records grouped by partition:
// out[p] is the contiguous run of partition p's records drawn this call
// (nil if the partition contributed nothing). It reports whether any
// records were returned; false means the topic is exhausted.
//
// The per-partition quotas replicate NextBatch's strict round-robin draw
// exactly, so a consumer advanced with NextBatchPartitioned consumes the
// same record set per call and lands on the same ConsumerState as one
// advanced with NextBatch — checkpoints are interchangeable between the
// two access paths. Unlike NextBatch, the returned slices alias the
// topic's partitions (zero copy); callers must treat them as read-only.
//
// This is the parallel data path's entry point: each partition's run can
// be folded independently (partition p's record order is a pure function
// of the topic, never of batch sizing), then combined in partition-index
// order for a deterministic result.
func (c *Consumer[T]) NextBatchPartitioned(n int) ([][]T, bool) {
	if n <= 0 {
		return nil, false
	}
	parts := len(c.topic.partitions)
	take := make([]int, parts)
	taken := 0
	empty := 0
	for taken < n && empty < parts {
		p := c.next % parts
		c.next++
		part := c.topic.partitions[p]
		if c.offsets[p]+take[p] >= len(part) {
			empty++
			continue
		}
		empty = 0
		take[p]++
		taken++
	}
	if taken == 0 {
		return nil, false
	}
	out := make([][]T, parts)
	for p, k := range take {
		if k == 0 {
			continue
		}
		off := c.offsets[p]
		out[p] = c.topic.partitions[p][off : off+k : off+k]
		c.offsets[p] = off + k
	}
	c.read += taken
	return out, true
}

// Read reports the total number of records consumed so far.
func (c *Consumer[T]) Read() int { return c.read }

// Remaining reports how many records have not been consumed yet.
func (c *Consumer[T]) Remaining() int { return c.topic.total - c.read }

// Progress reports the consumed fraction of the topic in [0, 1]. An empty
// topic reports 1.
func (c *Consumer[T]) Progress() float64 {
	if c.topic.total == 0 {
		return 1
	}
	return float64(c.read) / float64(c.topic.total)
}

// Offsets returns a copy of the per-partition offsets plus the round-robin
// pointer, for inclusion in job checkpoints.
func (c *Consumer[T]) Offsets() ConsumerState {
	offs := make([]int, len(c.offsets))
	copy(offs, c.offsets)
	return ConsumerState{Offsets: offs, Next: c.next, Read: c.read}
}

// Seek restores a position previously captured by Offsets.
func (c *Consumer[T]) Seek(s ConsumerState) error {
	if len(s.Offsets) != len(c.offsets) {
		return fmt.Errorf("stream: offset count %d does not match %d partitions", len(s.Offsets), len(c.offsets))
	}
	for p, off := range s.Offsets {
		if off < 0 || off > len(c.topic.partitions[p]) {
			return fmt.Errorf("stream: offset %d out of range for partition %d", off, p)
		}
	}
	copy(c.offsets, s.Offsets)
	c.next = s.Next
	c.read = s.Read
	return nil
}

// ConsumerState is a serializable consumer position.
type ConsumerState struct {
	Offsets []int `json:"offsets"`
	Next    int   `json:"next"`
	Read    int   `json:"read"`
}
