// Package rotary is a from-scratch Go implementation of Rotary, the
// resource-arbitration framework for progressive iterative analytics
// (Liu, Elmore, Franklin, Krishnan — ICDE 2023), together with both of the
// paper's prototype systems:
//
//   - Rotary-AQP — arbitration of CPU hardware threads and memory across
//     multi-tenant approximate-query-processing jobs (online aggregation
//     over TPC-H, Algorithm 2), and
//   - Rotary-DLT — threshold-based arbitration of GPUs across deep
//     learning training jobs (Algorithms 3 and 4),
//
// plus every substrate they need: a TPC-H data generator with streaming
// implementations of all 22 queries, an online-aggregation engine, a deep
// learning training simulator with a 17-architecture model zoo, a
// discrete-event virtual clock, the §IV estimators (progress curves,
// envelope, TEE, TME, TTR), the historical-job repository, and all seven
// comparison baselines from the evaluation.
//
// This package is the public API: it re-exports the stable surface of the
// internal packages. The examples/ directory shows end-to-end use; the
// cmd/rotary-bench tool regenerates every table and figure in the paper.
//
// # Quick start
//
//	ds := rotary.GenerateTPCH(0.02, 1)             // scale factor, seed
//	cat := rotary.NewCatalog(ds, 1)
//	repo := rotary.NewRepository()
//	rotary.SeedAQPHistory(repo, cat, 500)
//	sched := rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3))
//	exec := rotary.NewAQPExecutor(rotary.DefaultAQPExecConfig(4096), sched, repo)
//
//	cmd := "SELECT SUM(L_EXTENDEDPRICE) FROM LINEITEM ACC MIN 90% WITHIN 900 SECONDS"
//	_, crit, _ := rotary.ParseCriteria(cmd)
//	q, _ := cat.NewQuery("q6")
//	job, _ := rotary.NewAQPJob(rotary.AQPJobConfig{ID: "demo", Query: q, Criteria: crit})
//	exec.Submit(job, 0)
//	exec.Run()
package rotary

import (
	"rotary/internal/admission"
	"rotary/internal/aqp"
	"rotary/internal/baselines"
	"rotary/internal/cluster"
	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/diskio"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/hpo"
	"rotary/internal/metrics"
	"rotary/internal/obs"
	"rotary/internal/serve"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Completion criteria (§III-B, Fig. 3-4).
type (
	// Criteria is a parsed user-defined completion criterion.
	Criteria = criteria.Criteria
	// Deadline is a bound in wall time or epochs.
	Deadline = criteria.Deadline
	// CriteriaKind distinguishes accuracy-, convergence- and runtime-
	// oriented criteria.
	CriteriaKind = criteria.Kind
	// DeadlineUnit is seconds/minutes/hours/epochs.
	DeadlineUnit = criteria.Unit
)

// Criteria kinds and units.
const (
	AccuracyCriteria    = criteria.Accuracy
	ConvergenceCriteria = criteria.Convergence
	RuntimeCriteria     = criteria.Runtime
	Seconds             = criteria.Seconds
	Minutes             = criteria.Minutes
	Hours               = criteria.Hours
	Epochs              = criteria.Epochs
)

// Criteria constructors and the Fig. 4 clause parser.
var (
	// ParseCriteria splits "<cmd> ACC MIN 95% WITHIN 3600 SECONDS"-style
	// input into the raw command and the parsed criterion.
	ParseCriteria = criteria.Parse
	// NewAccuracyCriteria builds "<metric> MIN <threshold> WITHIN <d>".
	NewAccuracyCriteria = criteria.NewAccuracy
	// NewConvergenceCriteria builds "<metric> DELTA <delta> WITHIN <d>".
	NewConvergenceCriteria = criteria.NewConvergence
	// NewRuntimeCriteria builds "FOR <runtime>".
	NewRuntimeCriteria = criteria.NewRuntime
)

// Virtual time.
type (
	// Time is a point in virtual time (seconds since simulation start).
	Time = sim.Time
	// Engine is the discrete-event simulator driving an executor.
	Engine = sim.Engine
)

// TPC-H substrate.
type (
	// Dataset is a generated TPC-H database.
	Dataset = tpch.Dataset
	// Catalog binds a dataset to runnable online queries with cost and
	// memory metadata and cached ground truths.
	Catalog = tpch.Catalog
	// QueryClass is the Table I light/medium/heavy grouping.
	QueryClass = tpch.Class
)

// TPC-H constructors and helpers.
var (
	// GenerateTPCH builds a deterministic dataset at a scale factor.
	GenerateTPCH = tpch.Generate
	// NewCatalog indexes a dataset for query execution.
	NewCatalog = tpch.NewCatalog
	// TPCHQueries lists the 22 query names.
	TPCHQueries = tpch.AllQueries
	// QueriesOfClass filters the query names by Table I class.
	QueriesOfClass = tpch.QueriesOfClass
)

// Online-aggregation engine.
type (
	// OnlineQuery is a progressively executing query.
	OnlineQuery = aqp.OnlineQuery
	// Snapshot is a query's intermediate grouped aggregates.
	Snapshot = aqp.Snapshot
)

// DLT substrate.
type (
	// DLTConfig fully determines a simulated training job.
	DLTConfig = dlt.Config
	// Trainer is a running (or checkpointed) simulated training job.
	Trainer = dlt.Job
	// ModelSpec describes one architecture of the Table II zoo.
	ModelSpec = dlt.ModelSpec
)

// DLT helpers.
var (
	// NewTrainer builds a simulated training job.
	NewTrainer = dlt.NewJob
	// Models lists the model zoo.
	Models = dlt.Models
	// LookupModel returns an architecture's spec.
	LookupModel = dlt.Lookup
)

// Estimation (§IV): repository, progress estimator, TEE, TME.
type (
	// Repository stores historical job information for the estimators.
	Repository = estimate.Repository
	// TEE is the training-epoch estimator.
	TEE = estimate.TEE
	// TME is the training-memory estimator.
	TME = estimate.TME
	// ProgressEstimator predicts AQP accuracy progress at a future runtime.
	ProgressEstimator = estimate.ProgressEstimator
	// Envelope is the non-parametric convergence detector.
	Envelope = estimate.Envelope
)

// Estimator constructors.
var (
	// NewRepository returns an in-memory historical-job store.
	NewRepository = estimate.NewRepository
	// OpenRepository loads (or creates) a JSON-file-backed store.
	OpenRepository = estimate.OpenRepository
	// NewAccuracyProgress returns the §IV-A joint historical+real-time
	// progress estimator.
	NewAccuracyProgress = estimate.NewAccuracyProgress
	// NewTEE returns the training-epoch estimator.
	NewTEE = estimate.NewTEE
	// NewTME returns the training-memory estimator.
	NewTME = estimate.NewTME
	// NewEnvelope returns a convergence detector with the given window.
	NewEnvelope = estimate.NewEnvelope
)

// Core framework: jobs, policies, executors.
type (
	// AQPJob is an arbitrated progressive query.
	AQPJob = core.AQPJob
	// AQPJobConfig assembles an AQPJob.
	AQPJobConfig = core.AQPJobConfig
	// DLTJob is an arbitrated training job.
	DLTJob = core.DLTJob
	// AQPScheduler is the π : Q_t → assign(W, M) policy for AQP.
	AQPScheduler = core.AQPScheduler
	// DLTScheduler is the policy for DLT.
	DLTScheduler = core.DLTScheduler
	// RotaryAQPScheduler is Algorithm 2.
	RotaryAQPScheduler = core.RotaryAQP
	// RotaryDLTScheduler is Algorithm 3 (threshold T tunes fairness vs
	// efficiency).
	RotaryDLTScheduler = core.RotaryDLT
	// AQPExecutor drives an AQP workload over virtual time.
	AQPExecutor = core.AQPExecutor
	// AQPExecConfig sizes the AQP system (threads, memory, checkpointing).
	AQPExecConfig = core.AQPExecConfig
	// DLTExecutor drives a DLT workload over virtual time.
	DLTExecutor = core.DLTExecutor
	// DLTExecConfig sizes the GPU cluster.
	DLTExecConfig = core.DLTExecConfig
	// JobStatus is a job's live or terminal state.
	JobStatus = core.JobStatus
	// Placement is one contiguous device occupancy (Fig. 11 Gantt cell).
	Placement = core.Placement
	// CheckpointStore persists deferred jobs' state with a memory
	// materialization tier over disk spill (§VI).
	CheckpointStore = core.CheckpointStore
	// UnifiedExecutor arbitrates a mixed AQP + DLT workload on one clock
	// under a cluster-wide fairness threshold (§VI's unified framework).
	UnifiedExecutor = core.UnifiedExecutor
	// UnifiedExecConfig sizes the combined cluster.
	UnifiedExecConfig = core.UnifiedExecConfig
	// Tracer records an executor run's arbitration timeline.
	Tracer = core.Tracer
	// TraceEvent is one timestamped arbitration decision.
	TraceEvent = core.TraceEvent
	// TableStats summarizes one generated TPC-H table.
	TableStats = tpch.TableStats
	// ColumnStats summarizes one column.
	ColumnStats = tpch.ColumnStats
)

// Core constructors.
var (
	// NewAQPJob wraps an online query with a completion criterion.
	NewAQPJob = core.NewAQPJob
	// NewDLTJob wraps a trainer with a completion criterion.
	NewDLTJob = core.NewDLTJob
	// NewRotaryAQP returns the Algorithm 2 scheduler.
	NewRotaryAQP = core.NewRotaryAQP
	// NewRotaryDLT returns the Algorithm 3 scheduler with threshold T.
	NewRotaryDLT = core.NewRotaryDLT
	// NewAQPExecutor builds an AQP executor over a fresh pool.
	NewAQPExecutor = core.NewAQPExecutor
	// NewDLTExecutor builds a DLT executor over a fresh GPU cluster.
	NewDLTExecutor = core.NewDLTExecutor
	// DefaultAQPExecConfig mirrors the paper's 20-thread testbed.
	DefaultAQPExecConfig = core.DefaultAQPExecConfig
	// DefaultDLTExecConfig mirrors the paper's 4×8 GB GPU testbed.
	DefaultDLTExecConfig = core.DefaultDLTExecConfig
	// NewCheckpointStore creates a two-tier (memory + disk) state store.
	NewCheckpointStore = core.NewCheckpointStore
	// NewUnifiedExecutor builds the §VI unified AQP+DLT system.
	NewUnifiedExecutor = core.NewUnifiedExecutor
)

// Fault injection and crash recovery (chaos testing).
type (
	// FaultInjector draws deterministic, seed-reproducible fault events
	// (crashes, transient/corrupting/slow checkpoint I/O) for the
	// executors to react to.
	FaultInjector = faults.Injector
	// FaultConfig sets the per-opportunity fault probabilities and seed.
	FaultConfig = faults.Config
	// FaultStats counts the faults an injector has dealt.
	FaultStats = faults.Stats
	// RecoveryStats counts an executor's crashes, rollbacks, scratch
	// restarts, wasted work and recovery latency.
	RecoveryStats = core.RecoveryStats
	// StoreHealth exposes a checkpoint store's I/O-fault counters.
	StoreHealth = core.StoreHealth
)

// Fault-injection constructors and helpers.
var (
	// NewFaultInjector builds an injector from a FaultConfig.
	NewFaultInjector = faults.New
	// UniformFaults spreads a total fault rate across every fault kind.
	UniformFaults = faults.Uniform
	// RecoverableFaults is UniformFaults minus checkpoint corruption, so
	// every injected fault is recoverable by checkpoint rollback.
	RecoverableFaults = faults.Recoverable
	// RenderRecovery renders an executor's fault-recovery report.
	RenderRecovery = metrics.RenderRecovery
)

// Checkpoint-store error classes.
var (
	// ErrCheckpointNotFound: no checkpoint stored under the id.
	ErrCheckpointNotFound = core.ErrNotFound
	// ErrCheckpointCorrupt: stored bytes failed frame or checksum
	// validation and were never deserialized.
	ErrCheckpointCorrupt = core.ErrCorrupt
	// ErrCheckpointTransient: I/O kept failing past the retry budget.
	ErrCheckpointTransient = core.ErrTransient
)

// Job statuses.
const (
	StatusPending       = core.StatusPending
	StatusRunning       = core.StatusRunning
	StatusAttainedStop  = core.StatusAttainedStop
	StatusConvergedStop = core.StatusConvergedStop
	StatusExpired       = core.StatusExpired
)

// Baselines from the evaluation.
type (
	// RoundRobinAQP, EDFAQP, LAFAQP and ReLAQS are the Fig. 6 baselines.
	RoundRobinAQP = baselines.RoundRobinAQP
	// EDFAQP prioritizes the earliest deadline.
	EDFAQP = baselines.EDFAQP
	// LAFAQP prioritizes the least accuracy.
	LAFAQP = baselines.LAFAQP
	// ReLAQS re-implements the state-of-the-art comparison system.
	ReLAQS = baselines.ReLAQS
	// SRF, BCF and LAFDLT are the Fig. 10 baselines.
	SRF = baselines.SRF
	// BCF prioritizes the biggest convergence criteria.
	BCF = baselines.BCF
	// LAFDLT prioritizes the lowest accuracy criteria.
	LAFDLT = baselines.LAFDLT
)

// Workload synthesis (Tables I and II).
type (
	// AQPSpec is one synthesized Table I job.
	AQPSpec = workload.AQPSpec
	// AQPWorkloadConfig parameterizes Table I generation.
	AQPWorkloadConfig = workload.AQPWorkloadConfig
	// DLTSpec is one synthesized Table II job.
	DLTSpec = workload.DLTSpec
	// DLTWorkloadConfig parameterizes Table II generation.
	DLTWorkloadConfig = workload.DLTWorkloadConfig
)

// Workload helpers.
var (
	// DefaultAQPWorkload is the Table I configuration.
	DefaultAQPWorkload = workload.DefaultAQPWorkload
	// GenerateAQPWorkload samples a Table I workload.
	GenerateAQPWorkload = workload.GenerateAQP
	// BuildAQPJob binds a spec to a catalog.
	BuildAQPJob = workload.BuildAQPJob
	// DefaultDLTWorkload is the Table II configuration.
	DefaultDLTWorkload = workload.DefaultDLTWorkload
	// GenerateDLTWorkload samples a Table II workload.
	GenerateDLTWorkload = workload.GenerateDLT
	// BuildDLTJob turns a spec into a runnable job.
	BuildDLTJob = workload.BuildDLTJob
	// SeedAQPHistory populates a repository with standalone query runs.
	SeedAQPHistory = workload.SeedAQPHistory
	// SeedDLTHistory populates a repository with completed training runs.
	SeedDLTHistory = workload.SeedDLTHistory
	// DefaultAQPMemoryMB sizes a contended pool for a catalog.
	DefaultAQPMemoryMB = workload.DefaultAQPMemoryMB
	// RecommendedBatchRows sizes per-step batches scale-invariantly.
	RecommendedBatchRows = workload.RecommendedBatchRows
	// SaveAQPSpecs / LoadAQPSpecs persist an AQP workload as JSON.
	SaveAQPSpecs = workload.SaveAQPSpecs
	// LoadAQPSpecs reads a saved AQP workload.
	LoadAQPSpecs = workload.LoadAQPSpecs
	// SaveDLTSpecs persists a DLT workload as JSON.
	SaveDLTSpecs = workload.SaveDLTSpecs
	// LoadDLTSpecs reads a saved DLT workload.
	LoadDLTSpecs = workload.LoadDLTSpecs
)

// Metrics.
type (
	// AQPReport aggregates one policy run (attainment, false attainment,
	// waiting time).
	AQPReport = metrics.AQPReport
	// DLTSnapshot is a workload's progress distribution at one time.
	DLTSnapshot = metrics.DLTSnapshot
	// Violin is the five-number summary behind one Fig. 10 violin.
	Violin = metrics.Violin
	// ChartSeries is one named line of a plain-text chart.
	ChartSeries = metrics.Series
	// ChartXY is one plotted point.
	ChartXY = metrics.XY
)

// Metric helpers.
var (
	// AnalyzeAQP derives a report from terminal jobs.
	AnalyzeAQP = metrics.AnalyzeAQP
	// SnapshotDLT computes Fig. 10-style progress snapshots.
	SnapshotDLT = metrics.SnapshotDLT
	// DLTProgressAt computes one job's §V-B attainment progress at a time.
	DLTProgressAt = metrics.DLTProgressAt
	// RenderGantt renders Fig. 11-style placements.
	RenderGantt = metrics.RenderGantt
	// RenderLineChart plots named series as a plain-text chart.
	RenderLineChart = metrics.RenderLineChart
)

// Hyperparameter optimization (the introduction's motivating scenario,
// built on the framework).
type (
	// HPOConfig parameterizes a successive-halving search.
	HPOConfig = hpo.Config
	// HPOResult summarizes a finished search.
	HPOResult = hpo.Result
	// HPOTrial is one configuration under evaluation.
	HPOTrial = hpo.Trial
)

// HPO helpers.
var (
	// HPOSearch runs successive halving over trial configurations on the
	// simulated cluster under efficiency Rotary-DLT.
	HPOSearch = hpo.Search
	// DefaultHPOConfig is a 1-epoch-rung, eta-3 search on 4 GPUs.
	DefaultHPOConfig = hpo.DefaultConfig
)

// Resources.
type (
	// GPU is one accelerator device.
	GPU = cluster.GPU
	// GPUCluster is the Rotary-DLT resource substrate.
	GPUCluster = cluster.GPUCluster
	// CPUPool is the Rotary-AQP resource substrate.
	CPUPool = cluster.CPUPool
)

// Overload protection: admission control, bounded queues, shedding, and
// the epoch watchdog (see DESIGN.md §8).
type (
	// AdmissionController gates arriving jobs on deadline feasibility and
	// a bounded wait queue, applying a backpressure Policy at the bound.
	AdmissionController = admission.Controller
	// AdmissionConfig parameterizes an AdmissionController.
	AdmissionConfig = admission.Config
	// AdmissionPolicy selects the backpressure response at the bound:
	// reject, shed the lowest-value queued job, or degrade to best-effort.
	AdmissionPolicy = admission.Policy
	// AdmissionStats counts an admission controller's verdicts.
	AdmissionStats = admission.Stats
	// OverloadStats counts an executor's overload-protection events
	// (watchdog preemptions, sheds, rejections, forced grants).
	OverloadStats = core.OverloadStats
	// StarvationGuardAQP wraps any AQP policy with aging so every
	// admitted job is eventually granted (AQPExecConfig.AgingRounds
	// installs it automatically).
	StarvationGuardAQP = core.StarvationGuardAQP
	// StarvationGuardDLT is the DLT-side aging wrapper.
	StarvationGuardDLT = core.StarvationGuardDLT
)

// Overload-protection constructors, policies, and errors.
var (
	// NewAdmissionController builds a controller from an AdmissionConfig.
	NewAdmissionController = admission.NewController
	// ParseAdmissionPolicy parses "reject", "shed", or "degrade".
	ParseAdmissionPolicy = admission.ParsePolicy
	// NewStarvationGuardAQP and NewStarvationGuardDLT wrap a policy with
	// aging explicitly (executors install them via AgingRounds).
	NewStarvationGuardAQP = core.NewStarvationGuardAQP
	NewStarvationGuardDLT = core.NewStarvationGuardDLT
	// RenderOverload renders an executor's overload-protection report.
	RenderOverload = metrics.RenderOverload
	// ErrAdmissionRejected: estimated completion cannot meet the deadline.
	ErrAdmissionRejected = admission.ErrAdmissionRejected
	// ErrQueueFull: the wait queue is at its configured bound.
	ErrQueueFull = admission.ErrQueueFull
)

// Backpressure policies at the admission bound.
const (
	// AdmitReject refuses the arrival outright.
	AdmitReject = admission.Reject
	// AdmitShedLowestValue evicts the lowest-value queued job instead,
	// when one exists with lower value than the arrival.
	AdmitShedLowestValue = admission.ShedLowestValue
	// AdmitDegradeBestEffort admits the arrival without its deadline
	// guarantee.
	AdmitDegradeBestEffort = admission.DegradeBestEffort
)

// Terminal statuses introduced by overload protection.
const (
	// StatusRejected: refused at the admission gate.
	StatusRejected = core.StatusRejected
	// StatusShed: evicted from the queue to admit a higher-value arrival.
	StatusShed = core.StatusShed
)

// Multi-tenant isolation: per-tenant quotas at the admission gate and
// weighted fair-share arbitration (see DESIGN.md §13).
type (
	// TenantQuota is one tenant's admission limits and fair-share weight.
	TenantQuota = admission.TenantQuota
	// TenantTable maps tenant names to quotas, with a default for
	// unlisted tenants.
	TenantTable = admission.TenantTable
	// TenantStats counts one tenant's admission ledger: submissions,
	// verdicts by refusal reason, releases, and live jobs.
	TenantStats = admission.TenantStats
	// FairShareAQP wraps any AQP policy with DRF-style weighted fair
	// division of threads and memory among active tenants.
	FairShareAQP = core.FairShareAQP
	// FairShareDLT is the DLT-side twin over GPU devices.
	FairShareDLT = core.FairShareDLT
)

// Multi-tenant constructors and errors.
var (
	// ParseTenantSpec parses the -tenants flag syntax, e.g.
	// "alpha:weight=2,rate=0.5,burst=4;default:rate=1,burst=4".
	ParseTenantSpec = admission.ParseTenantSpec
	// NewFairShareAQP and NewFairShareDLT wrap a policy with weighted
	// fair-share arbitration over the given tenant weights.
	NewFairShareAQP = core.NewFairShareAQP
	NewFairShareDLT = core.NewFairShareDLT
	// ErrTenantQuotaExceeded: the tenant's submit-rate token bucket is
	// empty or its concurrent-job cap is reached.
	ErrTenantQuotaExceeded = admission.ErrTenantQuotaExceeded
	// ErrTenantQueueFull: the tenant's queue-depth cap is reached.
	ErrTenantQueueFull = admission.ErrTenantQueueFull
)

// DefaultTenant is the tenant unattributed work accounts to.
const DefaultTenant = admission.DefaultTenant

// Live serving mode (cmd/rotary-serve): a long-lived arbiter over a Unix
// socket speaking one JSON object per line, pacing the virtual clock
// against wall-clock time, with graceful drain.
type (
	// Server is the serving-mode daemon around an AQPExecutor.
	Server = serve.Server
	// ServeConfig sets the socket path, wall-clock pace, and batch size.
	ServeConfig = serve.Config
	// ServeMessage is one client request line.
	ServeMessage = serve.Message
	// ServeResponse is one reply line.
	ServeResponse = serve.Response
)

// NewServer validates the executor configuration and builds a serving-
// mode daemon; Serve listens until a drain request or signal.
var NewServer = serve.New

// Arbiter durability (PR 6): the write-ahead journal that makes the
// serving daemon crash-recoverable, and the reconnecting client that
// rides across its restarts.
type (
	// ServeJournal is the arbiter's write-ahead log: every serve-state
	// transition fsynced before the client sees the reply, with
	// size-triggered compaction and longest-valid-prefix corruption
	// recovery.
	ServeJournal = serve.Journal
	// ServeJournalRecord is one journal entry.
	ServeJournalRecord = serve.Record
	// ServeRecovered is the durable state replayed from a journal at open.
	ServeRecovered = serve.Recovered
	// ServeClient is the reconnect-with-backoff protocol client; its
	// resume handshake detects daemon restarts by server epoch.
	ServeClient = serve.Client
	// ServeClientConfig sets the client's socket and backoff envelope.
	ServeClientConfig = serve.ClientConfig
)

// Sharded serving (PR 7): a router fronting N supervised durable shard
// workers, with consistent-hash routing, typed shard-unavailable
// degradation while a crashed shard restarts from its journal, and
// checkpoint-carried live migration between shards.
type (
	// ServeRouter is the sharded daemon's front end: same JSON-line
	// protocol as a single Server, plus the shards/migrate/retire ops.
	ServeRouter = serve.Router
	// ServeRouterConfig sets the shard count, durable-state root, shard
	// builder, and supervision cadence.
	ServeRouterConfig = serve.RouterConfig
	// ServeShardBuilder constructs one shard's executor stack at boot and
	// on every supervised restart.
	ServeShardBuilder = serve.ShardBuilder
	// ServeShardState is a shard's supervision state (running, down,
	// restarting, retired).
	ServeShardState = serve.ShardState
	// ServeShardInfo is one shard's row in the router's supervision
	// report.
	ServeShardInfo = serve.ShardInfo
)

var (
	// OpenServeJournal opens (and replays) a write-ahead journal directory.
	OpenServeJournal = serve.OpenJournal
	// OpenDurableServe opens the durability pair — journal plus a
	// disk-only checkpoint store retaining journal-referenced checkpoints
	// across restarts.
	OpenDurableServe = serve.OpenDurable
	// NewServeClient builds the reconnecting client.
	NewServeClient = serve.NewClient
	// NewServeRouter builds the sharded daemon front end.
	NewServeRouter = serve.NewRouter
	// ErrServeTimeout is wrapped into client errors caused by a request
	// exceeding its deadline, for errors.Is branching.
	ErrServeTimeout = serve.ErrTimeout
	// NewCheckpointStoreRetaining creates a checkpoint store whose
	// stale-file sweep spares ids accepted by the retain predicate.
	NewCheckpointStoreRetaining = core.NewCheckpointStoreRetaining
)

// Heavy-traffic front end (PR 10): multi-listener serving (TCP
// alongside the Unix socket), per-connection codec negotiation, the
// bounded ingress ring feeding the batched driver, and journal group
// commit — one fsync covers every record an ingress batch staged,
// with no reply released before the group is durable.
const (
	// ServeCodecJSON is the line-oriented JSON wire format (default).
	ServeCodecJSON = serve.CodecJSON
	// ServeCodecBinary is the length-prefixed binary frame format.
	ServeCodecBinary = serve.CodecBinary
	// ServeCodeOverloaded is the typed refusal a full ingress ring
	// returns; the reply carries a retry_after_secs backoff hint.
	ServeCodeOverloaded = serve.CodeOverloaded
)

// Observability: the always-on metrics registry and streaming trace
// sinks behind every executor, plus the debug HTTP listener.
type (
	// MetricsRegistry holds a process's (or one run's) counters, gauges,
	// and histograms; render with its RenderText method.
	MetricsRegistry = obs.Registry
	// TraceSink receives every trace event as it is emitted.
	TraceSink = obs.TraceSink
	// TraceRecord is the sink-side form of one trace event.
	TraceRecord = obs.TraceRecord
	// JSONLSink streams trace records as JSON lines with buffered flush.
	JSONLSink = obs.JSONLSink
	// DebugServer is the background HTTP listener serving /metrics and
	// net/http/pprof.
	DebugServer = obs.DebugServer
)

var (
	// NewMetricsRegistry creates a private registry, isolating one run's
	// telemetry from the process-wide default.
	NewMetricsRegistry = obs.NewRegistry
	// DefaultMetrics is the process-wide registry executors fall back to.
	DefaultMetrics = obs.Default
	// NewTracer builds a bounded trace ring holding the newest capacity
	// events (0 = unbounded).
	NewTracer = core.NewTracer
	// SetDefaultTracer installs the tracer executors adopt when their
	// config carries none; call before building executors.
	SetDefaultTracer = core.SetDefaultTracer
	// NewJSONLSink wraps a writer; OpenJSONLSink creates the file.
	NewJSONLSink  = obs.NewJSONLSink
	OpenJSONLSink = obs.OpenJSONLSink
	// StartMetricsDebug serves /metrics and pprof on addr until Close
	// (nil registry means the process-wide default).
	StartMetricsDebug = obs.StartDebug
)

// Control-plane fast path: the exact decision cache in front of the
// arbitration loop, its per-scheduler capability declaration, and the
// arbiter microbenchmark harness behind `rotary-bench -experiment
// arbiter`. Enable the cache per executor with the FastPath flag on
// AQPExecConfig / DLTExecConfig; correctness is policy-proven — a
// scheduler participates only by implementing ArbiterProfile(), and
// everything else bypasses.
type (
	// ArbiterProfile declares what a scheduling policy observes, making
	// its decisions cachable (or not) by signature.
	ArbiterProfile = core.ArbiterProfile
	// FastPathStats counts decision-cache hits, misses, and bypasses.
	FastPathStats = core.FastPathStats
	// EstimatorVersioned is implemented by estimators whose observable
	// state carries a version counter; profiles fold it into their
	// fingerprints so any history mutation invalidates cached decisions.
	EstimatorVersioned = estimate.Versioned

	// ArbBenchConfig parameterizes the arbiter microbenchmark matrix.
	ArbBenchConfig = core.ArbBenchConfig
	// ArbBenchAQPPolicy and ArbBenchDLTPolicy name one policy cell.
	ArbBenchAQPPolicy = core.ArbBenchAQPPolicy
	ArbBenchDLTPolicy = core.ArbBenchDLTPolicy
	// ArbBenchReport is the BENCH_<n>.json artifact.
	ArbBenchReport = core.ArbBenchReport
	// ArbBenchCase is one measured (path, policy, depth, cache) cell.
	ArbBenchCase = core.ArbBenchCase
)

var (
	// RunArbiterBench measures every configured policy × queue depth ×
	// cache toggle with real wall-clock benchmarks.
	RunArbiterBench = core.RunArbiterBench
	// CompareArbBench gates a report against a baseline: ns/op within a
	// calibration-scaled band, allocs/op within a raw band, no missing
	// cells.
	CompareArbBench = core.CompareArbBench
	// MergeArbBenchMin folds two measurements of the same matrix,
	// keeping each cell's faster run (retry-under-interference merge).
	MergeArbBenchMin = core.MergeArbBenchMin
)

// Self-healing durability (PR 11): the pluggable disk layer under the
// journal and checkpoint writers, the recoverable journal-degraded
// mode (typed refusals with retry hints, heal by rolling to a fresh
// verified segment), and the read-only journal audit behind the
// composed-fault torture harness (`rotary-chaos`; internal/torture is
// not re-exported — it drives loadgen, which benchmarks this package,
// and would close an import cycle).
type (
	// DiskIO is the pluggable filesystem layer the journal and
	// checkpoint store write through; DiskOS is the passthrough
	// implementation over the real os package.
	DiskIO = diskio.IO
	DiskOS = diskio.OS
	// FaultyDisk wraps a DiskIO with seeded, deterministic fault
	// injection (ENOSPC/EIO write and sync failures, slow fsyncs),
	// plus scripted ForceFail/Clear control for tests.
	FaultyDisk = diskio.Faulty
	// DiskFaultConfig parameterizes the seeded injector.
	DiskFaultConfig = diskio.FaultConfig
	// DiskInjectedError is the typed error injected faults unwrap to.
	DiskInjectedError = diskio.InjectedError
)

const (
	// ServeCodeJournalDegraded is the typed refusal a server emits for
	// mutating ops while its journal is degraded but healable; the
	// reply carries a retry_after_secs hint and clients retry it under
	// RetryHinted.
	ServeCodeJournalDegraded = serve.CodeJournalDegraded
)

var (
	// NewFaultyDisk builds the seeded fault injector over an inner
	// layer (nil means the real filesystem).
	NewFaultyDisk = diskio.NewFaulty
	// OpenDurableServeIO / OpenServeJournalIO are the durability
	// constructors over a pluggable disk layer (nil selects DiskOS).
	OpenDurableServeIO = serve.OpenDurableIO
	OpenServeJournalIO = serve.OpenJournalIO
	// ReplayServeJournal audits a journal chain read-only — no
	// truncation, no epoch bump — for invariant checking.
	ReplayServeJournal = serve.ReplayJournal
	// NewCheckpointStoreIO is the checkpoint store over a pluggable
	// disk layer.
	NewCheckpointStoreIO = core.NewCheckpointStoreIO
)
