package core

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"rotary/internal/aqp"
	"rotary/internal/cluster"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// This file is the arbiter microbenchmark harness behind
// `rotary-bench -experiment arbiter`: it measures the REAL (wall-clock)
// cost of one arbitration decision — Algorithm 1's per-epoch policy
// invocation — over synthetic queues of 100/1k/10k jobs, for every AQP
// policy and the DLT path, with the fast path off and on. Reports
// serialize as the repo's committed BENCH_<n>.json artifacts and CI
// compares a fresh run against the baseline with a tolerance band
// (CompareArbBench). ns/op is normalized across machines through a
// calibration workload; allocs/op is machine-independent and compared
// raw.

// ArbBenchAQPPolicy names an AQP policy under benchmark. Build receives
// the seeded history repository so estimator-backed policies
// (rotary-aqp) attach to it; the constructor indirection keeps
// internal/core free of a baselines import cycle.
type ArbBenchAQPPolicy struct {
	Name  string
	Build func(repo *estimate.Repository) AQPScheduler
}

// ArbBenchDLTPolicy names a DLT policy under benchmark.
type ArbBenchDLTPolicy struct {
	Name  string
	Build func(repo *estimate.Repository) DLTScheduler
}

// ArbBenchConfig parameterizes an arbiter benchmark run.
type ArbBenchConfig struct {
	// QueueSizes are the pending-queue depths measured; empty defaults
	// to 100, 1000, 10000.
	QueueSizes []int
	// Seed drives the deterministic queue synthesis. Zero defaults to 42.
	Seed uint64
	// HistoryRecords sizes the synthetic estimation repository. Zero
	// defaults to 64.
	HistoryRecords int
	// AQP and DLT are the policies to measure.
	AQP []ArbBenchAQPPolicy
	DLT []ArbBenchDLTPolicy
	// Log, when set, receives one progress line per completed case.
	Log func(format string, args ...any)
}

// ArbBenchCase is one measured (path, policy, depth, fast-path) cell.
type ArbBenchCase struct {
	Path     string `json:"path"`   // "aqp" or "dlt"
	Policy   string `json:"policy"` // scheduler name
	Queued   int    `json:"queued"` // pending-queue depth
	FastPath bool   `json:"fast_path"`

	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GrantsPerOp is the mean grants (placements) issued per decision;
	// DecisionsPerSec and GrantsPerSec are the derived throughputs.
	GrantsPerOp     float64 `json:"grants_per_op"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	GrantsPerSec    float64 `json:"grants_per_sec"`
	// EpochVirtualSecs is the queue's mean next-epoch virtual cost;
	// OverheadFrac = (NsPerOp/1e9) / EpochVirtualSecs is the acceptance
	// criterion's "arbiter overhead as a fraction of epoch cost".
	EpochVirtualSecs float64 `json:"epoch_virtual_secs"`
	OverheadFrac     float64 `json:"overhead_frac"`

	FastPathHits   uint64 `json:"fast_path_hits,omitempty"`
	FastPathMisses uint64 `json:"fast_path_misses,omitempty"`

	// CalibrationNs is the calibration workload's cost measured
	// immediately before this cell. Interference on a shared runner is
	// time-varying, so a run-level calibration taken at startup can miss
	// load that arrives mid-matrix; comparisons prefer the cell-adjacent
	// number when both reports carry one.
	CalibrationNs float64 `json:"calibration_ns,omitempty"`
}

// ArbBenchReport is the BENCH_<n>.json artifact.
type ArbBenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// CalibrationNs is the measured cost of a fixed CPU-bound hashing
	// workload on this machine; cross-machine ns/op comparisons scale by
	// the calibration ratio.
	CalibrationNs float64        `json:"calibration_ns"`
	Cases         []ArbBenchCase `json:"cases"`
}

// arbBenchSchema versions the artifact format.
const arbBenchSchema = "rotary-arbbench/1"

// RunArbiterBench measures every configured (policy, depth, fast-path)
// cell and assembles the report.
func RunArbiterBench(cfg ArbBenchConfig) (*ArbBenchReport, error) {
	if len(cfg.QueueSizes) == 0 {
		cfg.QueueSizes = []int{100, 1000, 10000}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.HistoryRecords == 0 {
		cfg.HistoryRecords = 64
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ArbBenchReport{
		Schema:        arbBenchSchema,
		GoVersion:     runtime.Version(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		CalibrationNs: arbBenchCalibrate(),
	}
	for _, depth := range cfg.QueueSizes {
		if len(cfg.AQP) > 0 {
			repo := synthAQPRepo(cfg.HistoryRecords, cfg.Seed)
			jobs := synthAQPQueue(depth, cfg.Seed)
			for _, pol := range cfg.AQP {
				for _, fastOn := range []bool{false, true} {
					c := benchAQPCase(pol.Build(repo), jobs, depth, fastOn)
					rep.Cases = append(rep.Cases, c)
					logf("%s", renderArbCase(c))
				}
			}
		}
		if len(cfg.DLT) > 0 {
			repo := synthDLTRepo(cfg.HistoryRecords, cfg.Seed)
			jobs, err := synthDLTQueue(depth, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("core: arbiter bench DLT synthesis: %w", err)
			}
			for _, pol := range cfg.DLT {
				for _, fastOn := range []bool{false, true} {
					c := benchDLTCase(pol.Build(repo), jobs, depth, fastOn)
					rep.Cases = append(rep.Cases, c)
					logf("%s", renderArbCase(c))
				}
			}
		}
	}
	return rep, nil
}

// benchAQPCase measures one AQP policy over a fixed queue snapshot. The
// context is frozen (constant Now, full capacity) so repeated decisions
// are identical — which is exactly what makes the fast-path-on cell
// measure the replay (hit) cost.
func benchAQPCase(sched AQPScheduler, jobs []*AQPJob, depth int, fastOn bool) ArbBenchCase {
	ctx := &AQPContext{
		Now:          sim.Time(1000),
		Pending:      jobs,
		FreeThreads:  20,
		TotalThreads: 20,
		FreeMemMB:    1 << 20,
		TotalMemMB:   1 << 20,
	}
	var fast *aqpFastPath
	if fastOn {
		fast = newAQPFastPath(sched)
	}
	cal := arbBenchCalibrate()
	var grants uint64
	var ops uint64
	res := benchBest(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var g []AQPGrant
			if fast != nil {
				g = fast.assign(ctx)
			} else {
				g = sched.Assign(ctx)
			}
			grants += uint64(len(g))
			ops++
		}
	})
	c := arbCaseFrom("aqp", sched.Name(), depth, fastOn, res, grants, ops)
	c.CalibrationNs = cal
	c.EpochVirtualSecs = meanNextEpochSecsAQP(jobs)
	if c.EpochVirtualSecs > 0 {
		c.OverheadFrac = c.NsPerOp / 1e9 / c.EpochVirtualSecs
	}
	if fast != nil {
		c.FastPathHits = fast.stats.Hits
		c.FastPathMisses = fast.stats.Misses
	}
	return c
}

// benchDLTCase measures one DLT policy over a fixed queue snapshot with
// the paper's 4 × 8 GB device fleet free.
func benchDLTCase(sched DLTScheduler, jobs []*DLTJob, depth int, fastOn bool) ArbBenchCase {
	free := make([]cluster.GPU, 4)
	for i := range free {
		free[i] = cluster.GPU{ID: i, MemMB: 8192}
	}
	ctx := &DLTContext{
		Now:      sim.Time(1000),
		Pending:  jobs,
		FreeGPUs: free,
	}
	var fast *dltFastPath
	if fastOn {
		fast = newDLTFastPath(sched)
	}
	cal := arbBenchCalibrate()
	var placements uint64
	var ops uint64
	res := benchBest(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var p []DLTPlacement
			if fast != nil {
				p = fast.place(ctx)
			} else {
				p = sched.Place(ctx)
			}
			placements += uint64(len(p))
			ops++
		}
	})
	c := arbCaseFrom("dlt", sched.Name(), depth, fastOn, res, placements, ops)
	c.CalibrationNs = cal
	c.EpochVirtualSecs = meanNextEpochSecsDLT(jobs)
	if c.EpochVirtualSecs > 0 {
		c.OverheadFrac = c.NsPerOp / 1e9 / c.EpochVirtualSecs
	}
	if fast != nil {
		c.FastPathHits = fast.stats.Hits
		c.FastPathMisses = fast.stats.Misses
	}
	return c
}

func arbCaseFrom(path, policy string, depth int, fastOn bool, res testing.BenchmarkResult, grants, ops uint64) ArbBenchCase {
	c := ArbBenchCase{
		Path:        path,
		Policy:      policy,
		Queued:      depth,
		FastPath:    fastOn,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if ops > 0 {
		c.GrantsPerOp = float64(grants) / float64(ops)
	}
	if c.NsPerOp > 0 {
		c.DecisionsPerSec = 1e9 / c.NsPerOp
		c.GrantsPerSec = c.GrantsPerOp * c.DecisionsPerSec
	}
	return c
}

func meanNextEpochSecsAQP(jobs []*AQPJob) float64 {
	if len(jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range jobs {
		sum += j.nextEpochSecsGuess()
	}
	return sum / float64(len(jobs))
}

func meanNextEpochSecsDLT(jobs []*DLTJob) float64 {
	if len(jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range jobs {
		sum += j.nextEpochSecsGuess()
	}
	return sum / float64(len(jobs))
}

// arbBenchSink defeats dead-code elimination in the calibration loop.
var arbBenchSink uint64

// arbBenchCalibrateBytes sizes the calibration working set. It must
// exceed the last-level cache: the arbitration cells walk queues of
// thousands of heap-allocated jobs, so their dominant sensitivity —
// both across machines and under noisy neighbors — is memory traffic,
// not ALU speed. A cache-resident spin stays flat while an alloc-heavy
// cell slows 20% under bandwidth contention, which would misread as a
// regression; a streaming workload slows with it.
const arbBenchCalibrateBytes = 16 << 20

// arbBenchCalibrate measures a fixed memory-streaming hash workload;
// the ratio between two calibration numbers approximates the ratio of
// effective single-thread memory throughput, which CompareArbBench
// uses to normalize ns/op across machines and across load.
func arbBenchCalibrate() float64 {
	buf := make([]uint64, arbBenchCalibrateBytes/8)
	for i := range buf {
		buf[i] = uint64(i)*fpPrime + fpInit
	}
	res := benchBest(func(b *testing.B) {
		h := fpInit
		for i := 0; i < b.N; i++ {
			for _, v := range buf {
				h ^= v
				h *= fpPrime
			}
		}
		arbBenchSink = h
	})
	return float64(res.NsPerOp())
}

// arbBenchRuns is how many times each cell is measured; the fastest run
// is kept. Interference noise on shared (CI) runners is one-sided — it
// only ever slows a run down — so min-of-N converges on the true cost
// far faster than one long run, keeping the regression bands tight
// without flaking.
const arbBenchRuns = 3

// benchBest runs fn arbBenchRuns times and returns the result with the
// lowest ns/op.
func benchBest(fn func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	for i := 1; i < arbBenchRuns; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// arbCaseKey identifies a case across reports.
func arbCaseKey(c ArbBenchCase) string {
	return fmt.Sprintf("%s/%s/q%d/fast=%v", c.Path, c.Policy, c.Queued, c.FastPath)
}

// CompareArbBench checks cur against base: every baseline case must be
// present, within nsTol of the (calibration-normalized) baseline ns/op,
// and within allocTol of the baseline allocs/op. It returns one message
// per violation; empty means no regression.
func CompareArbBench(base, cur *ArbBenchReport, nsTol, allocTol float64) []string {
	runScale := 1.0
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		runScale = cur.CalibrationNs / base.CalibrationNs
	}
	index := make(map[string]ArbBenchCase, len(cur.Cases))
	for _, c := range cur.Cases {
		index[arbCaseKey(c)] = c
	}
	var fails []string
	for _, b := range base.Cases {
		key := arbCaseKey(b)
		c, ok := index[key]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from current report", key))
			continue
		}
		// Prefer the cell-adjacent calibration pair: it tracks load that
		// arrived mid-matrix, which the run-level number (measured once at
		// startup) cannot see.
		scale := runScale
		if b.CalibrationNs > 0 && c.CalibrationNs > 0 {
			scale = c.CalibrationNs / b.CalibrationNs
		}
		if limit := b.NsPerOp * scale * (1 + nsTol); c.NsPerOp > limit {
			fails = append(fails, fmt.Sprintf("%s: ns/op %.0f > limit %.0f (baseline %.0f × scale %.2f × %.0f%% band)",
				key, c.NsPerOp, limit, b.NsPerOp, scale, 100*(1+nsTol)))
		}
		allocLimit := float64(b.AllocsPerOp) * (1 + allocTol)
		if float64(c.AllocsPerOp) > allocLimit {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %d > limit %.1f (baseline %d + %.0f%% band)",
				key, c.AllocsPerOp, allocLimit, b.AllocsPerOp, 100*allocTol))
		}
	}
	return fails
}

// MergeArbBenchMin folds two measurements of the same matrix into one
// report keeping, per cell, the run with the lower ns/op. Interference
// noise is strictly additive, so the faster observation of a cell is
// always the closer estimate of its true cost; gates retry a failed
// comparison through this merge so only reproducible slowdowns fail.
// Cells present in only one report are kept as measured.
func MergeArbBenchMin(a, b *ArbBenchReport) *ArbBenchReport {
	out := *a
	out.Cases = append([]ArbBenchCase(nil), a.Cases...)
	index := make(map[string]int, len(out.Cases))
	for i, c := range out.Cases {
		index[arbCaseKey(c)] = i
	}
	for _, c := range b.Cases {
		if i, ok := index[arbCaseKey(c)]; !ok {
			out.Cases = append(out.Cases, c)
		} else if c.NsPerOp < out.Cases[i].NsPerOp {
			out.Cases[i] = c
		}
	}
	return &out
}

// renderArbCase formats one case as a fixed-width line.
func renderArbCase(c ArbBenchCase) string {
	fp := "off"
	if c.FastPath {
		fp = "on"
	}
	return fmt.Sprintf("%-4s %-22s q=%-6d fast=%-3s %12.0f ns/op %8d allocs/op %10.0f dec/s %10.0f grants/s overhead=%.5f%%",
		c.Path, c.Policy, c.Queued, fp, c.NsPerOp, c.AllocsPerOp, c.DecisionsPerSec, c.GrantsPerSec, 100*c.OverheadFrac)
}

// Render formats the report as a plain-text table.
func (r *ArbBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arbiter bench  %s %s/%s  cpus=%d  calibration=%.0fns\n",
		r.GoVersion, r.GoOS, r.GoArch, r.NumCPU, r.CalibrationNs)
	for _, c := range r.Cases {
		b.WriteString(renderArbCase(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Deterministic queue synthesis
// ---------------------------------------------------------------------

// benchSplitmix is a splitmix64 step — the harness's only randomness,
// fully determined by the seed.
func benchSplitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// benchQuery is a deterministic synthetic OnlineQuery: cheap fixed-cost
// batches over a finite row stream, with snapshot values that move with
// data progress so envelopes and growth trackers see realistic series.
type benchQuery struct {
	name       string
	totalRows  int64
	processed  int64
	costPerRow float64
	specs      []aqp.AggSpec
	salt       uint64
}

// Name implements aqp.OnlineQuery.
func (q *benchQuery) Name() string { return q.name }

// ProcessBatch implements aqp.OnlineQuery.
func (q *benchQuery) ProcessBatch(batchRows, threads int) (int, float64) {
	remaining := q.totalRows - q.processed
	if remaining <= 0 {
		return 0, 0
	}
	n := int64(batchRows)
	if n > remaining {
		n = remaining
	}
	q.processed += n
	return int(n), float64(n) * q.costPerRow / aqp.Speedup(threads)
}

// Exhausted implements aqp.OnlineQuery.
func (q *benchQuery) Exhausted() bool { return q.processed >= q.totalRows }

// Snapshot implements aqp.OnlineQuery.
func (q *benchQuery) Snapshot() aqp.Snapshot {
	f := q.DataProgress()
	return aqp.Snapshot{
		Specs: q.specs,
		Groups: map[string][]float64{
			"g0": {12000 * f, 900 * f},
			"g1": {8000 * f * f * (1 + 0.1*math.Sin(float64(q.salt%97))), 600 * f},
		},
	}
}

// Accuracy implements aqp.OnlineQuery (ground truth ≈ data progress for
// the synthetic stream).
func (q *benchQuery) Accuracy() float64 { return q.DataProgress() }

// DataProgress implements aqp.OnlineQuery.
func (q *benchQuery) DataProgress() float64 {
	if q.totalRows == 0 {
		return 1
	}
	return float64(q.processed) / float64(q.totalRows)
}

// RowsProcessed implements aqp.OnlineQuery.
func (q *benchQuery) RowsProcessed() int64 { return q.processed }

// StateMemMB implements aqp.OnlineQuery.
func (q *benchQuery) StateMemMB() float64 { return 4 }

// ConfidenceInterval implements aqp.OnlineQuery.
func (q *benchQuery) ConfidenceInterval(string, int, float64) (float64, float64, bool) {
	return 0, 0, false
}

// Checkpoint implements aqp.OnlineQuery.
func (q *benchQuery) Checkpoint() ([]byte, error) {
	return []byte(fmt.Sprintf("%d", q.processed)), nil
}

// Restore implements aqp.OnlineQuery.
func (q *benchQuery) Restore(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%d", &q.processed)
	return err
}

var benchClasses = [...]string{"light", "medium", "heavy"}

// synthAQPQueue builds n pending AQP jobs with 0–4 simulated completed
// epochs each (real-time curves, envelope state, staggered arrivals) —
// the queue shape Algorithm 1 arbitrates over mid-run.
func synthAQPQueue(n int, seed uint64) []*AQPJob {
	state := seed
	jobs := make([]*AQPJob, 0, n)
	for i := 0; i < n; i++ {
		r := benchSplitmix(&state)
		q := &benchQuery{
			name:       fmt.Sprintf("bench-q%d", i%17),
			totalRows:  int64(200000 + r%800000),
			costPerRow: 0.0001 + float64(r%7)*0.00002,
			specs: []aqp.AggSpec{
				{Name: "s0", Kind: aqp.Sum, Weight: 0.5},
				{Name: "c1", Kind: aqp.Count, Weight: 0.5},
			},
			salt: r,
		}
		j, err := NewAQPJob(AQPJobConfig{
			ID:        fmt.Sprintf("bench-aqp-%05d", i),
			Query:     q,
			Criteria:  criteria.Criteria{Kind: criteria.Accuracy, Threshold: 0.9, Deadline: criteria.Deadline{Value: 1800, Unit: criteria.Seconds}},
			Class:     benchClasses[i%len(benchClasses)],
			EstMemMB:  float64(256 + r%2048),
			BatchRows: 2000,
		})
		if err != nil {
			panic(err) // unreachable: the query is always non-nil
		}
		j.arrival = sim.Time(float64(i%40) * 2)
		j.arrived = true
		j.status = StatusPending
		now := j.arrival
		for e := 0; e < int(r%5); e++ {
			var work float64
			for b := 0; b < j.epochBatches; b++ {
				rows, cost := q.ProcessBatch(j.batchRows, 2)
				work += cost
				if rows == 0 {
					break
				}
			}
			if work <= 0 {
				work = 0.001
			}
			now += sim.Time(work)
			j.epochs++
			j.processingSecs += work
			j.normSecs += work * aqp.Speedup(2)
			j.everRan = true
			j.lastRelease = now
			j.observeEpoch(now)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// synthAQPRepo seeds a history repository with exponential-progress
// curves matching the synthetic query names, so estimator-backed
// policies pay their real retrieval + fit cost.
func synthAQPRepo(n int, seed uint64) *estimate.Repository {
	state := seed ^ 0xa59b
	repo := estimate.NewRepository()
	for i := 0; i < n; i++ {
		r := benchSplitmix(&state)
		rate := 0.002 + float64(r%9)*0.0005
		pts := make([]estimate.Point, 0, 12)
		for k := 1; k <= 12; k++ {
			x := float64(k) * 50
			pts = append(pts, estimate.Point{X: x, Y: 1 - math.Exp(-rate*x)})
		}
		repo.AddAQP(estimate.AQPRecord{
			ID:        fmt.Sprintf("bench-hist-%d", i),
			Query:     fmt.Sprintf("bench-q%d", i%17),
			Class:     benchClasses[i%len(benchClasses)],
			BatchRows: 2000,
			Curve:     pts,
		})
	}
	return repo
}

// synthDLTQueue builds n pending DLT jobs over the CV zoo with 0–3
// trained epochs each and a mix of the three criteria kinds.
func synthDLTQueue(n int, seed uint64) ([]*DLTJob, error) {
	models := dlt.ScratchModels(dlt.CV)
	state := seed ^ 0x5ca1ab1e
	jobs := make([]*DLTJob, 0, n)
	for i := 0; i < n; i++ {
		r := benchSplitmix(&state)
		cfg := dlt.Config{
			Model:     models[int(r%uint64(len(models)))],
			Dataset:   "cifar10",
			BatchSize: dlt.BatchSizesCV[int(r>>8)%len(dlt.BatchSizesCV)],
			Optimizer: dlt.Optimizers[int(r>>16)%len(dlt.Optimizers)],
			LR:        dlt.LearningRates[int(r>>24)%len(dlt.LearningRates)],
			Seed:      r,
		}
		trainer, err := dlt.NewJob(cfg)
		if err != nil {
			return nil, err
		}
		var crit criteria.Criteria
		switch i % 3 {
		case 0:
			crit = criteria.Criteria{Kind: criteria.Accuracy, Threshold: 0.7, Deadline: criteria.Deadline{Value: 40, Unit: criteria.Epochs}}
		case 1:
			crit = criteria.Criteria{Kind: criteria.Convergence, Threshold: 0.002, Deadline: criteria.Deadline{Value: 40, Unit: criteria.Epochs}}
		default:
			crit = criteria.Criteria{Kind: criteria.Runtime, Deadline: criteria.Deadline{Value: 30, Unit: criteria.Epochs}}
		}
		j, err := NewDLTJob(fmt.Sprintf("bench-dlt-%05d", i), trainer, crit)
		if err != nil {
			return nil, err
		}
		j.arrival = sim.Time(float64(i % 60))
		j.arrived = true
		j.status = StatusPending
		now := j.arrival
		for e := 0; e < int(r%4); e++ {
			_, secs := trainer.TrainEpoch()
			now += sim.Time(secs)
			j.epochs++
			j.processingSecs += secs
			j.everRan = true
			j.lastRelease = now
			j.lastDevice = int(r % 4)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// synthDLTRepo seeds a history repository with plausible CV training
// records so TEE/TME retrieval and fitting pay their real cost.
func synthDLTRepo(n int, seed uint64) *estimate.Repository {
	models := dlt.ScratchModels(dlt.CV)
	state := seed ^ 0xd17a
	repo := estimate.NewRepository()
	for i := 0; i < n; i++ {
		r := benchSplitmix(&state)
		name := models[int(r%uint64(len(models)))]
		spec, err := dlt.Lookup(name)
		if err != nil {
			continue // unreachable: names come from the zoo
		}
		epochs := 8 + int(r%12)
		curve := make([]float64, epochs)
		rate := 0.18 + float64(r%10)*0.015
		for k := range curve {
			curve[k] = spec.BaseAccuracy * (1 - math.Exp(-rate*float64(k+1)))
		}
		repo.AddDLT(estimate.DLTRecord{
			ID:        fmt.Sprintf("bench-dlt-hist-%d", i),
			Model:     name,
			Family:    spec.Family,
			Dataset:   "cifar10",
			ParamsM:   spec.ParamsM,
			BatchSize: dlt.BatchSizesCV[int(r>>8)%len(dlt.BatchSizesCV)],
			Optimizer: dlt.Optimizers[int(r>>16)%len(dlt.Optimizers)],
			LR:        dlt.LearningRates[int(r>>24)%len(dlt.LearningRates)],
			Epochs:    epochs,
			AccCurve:  curve,
			PeakMemMB: 1500 + float64(r%2000),
			EpochSecs: 40 + float64(r%80),
		})
	}
	return repo
}
