// Package loadgen is the heavy-traffic load generator behind
// cmd/rotary-load: an open-loop driver that simulates large client
// populations (hundreds of thousands of virtual clients multiplexed
// over a bounded connection pool) against a serve-protocol endpoint and
// reports submit/status latency quantiles against SLOs.
//
// Open loop is the load-testing discipline that keeps the generator
// honest under coordinated omission: arrival times are fixed by the
// configured rate BEFORE the server's behavior is observed, and every
// request's latency is measured from its SCHEDULED arrival, not from
// the moment the generator got around to sending it. A server that
// stalls therefore charges the stall to every request scheduled behind
// the stall — exactly what a real client population would experience —
// instead of the generator quietly slowing its offered load to match.
// Rate 0 selects closed-loop saturation instead: every connection keeps
// exactly one request in flight, which measures peak sustainable
// throughput rather than latency under a fixed offered load.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rotary/internal/serve"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the serve endpoint: a Unix socket path, or a
	// "tcp:host:port" / "unix:/path" spec.
	Addr string
	// Codec selects the wire format per connection (serve.CodecJSON or
	// serve.CodecBinary; empty = JSON).
	Codec string
	// Conns is the connection pool size: the real sockets the virtual
	// clients multiplex over. Defaults to 32.
	Conns int
	// Clients is the simulated client population. Each request is issued
	// on behalf of virtual client (arrival index mod Clients), whose id
	// appears in the submit req_id — so dedupe, journals, and metrics see
	// the cardinality of a large fleet, not of the connection pool.
	// Defaults to Conns.
	Clients int
	// Rate is the open-loop arrival rate in submits/sec. 0 switches to
	// closed-loop saturation (each connection back-to-back).
	Rate float64
	// Ops bounds the total requests issued. 0 with Rate > 0 derives the
	// bound from Rate × Duration; 0 with Rate == 0 is invalid.
	Ops int
	// Duration bounds the run in wall time (open loop only; closed loop
	// runs until Ops). Defaults to 10s when Rate > 0 and Ops == 0.
	Duration time.Duration
	// StatusEvery issues a status probe for an already-acked job every
	// N-th request per connection, measuring read-path latency under the
	// same load. 0 disables.
	StatusEvery int
	// Statement is the submitted completion-criteria statement.
	Statement string
	// IDPrefix namespaces job ids and req_ids so repeated runs against a
	// durable server do not collide.
	IDPrefix string
	// Timeout bounds each round trip. Defaults to 30s.
	Timeout time.Duration
	// Attempts is the per-request retry budget passed through to the
	// client (dial and transport retries with backoff). Defaults to 1 —
	// the honest open-loop setting; the torture harness raises it so
	// virtual clients outlive server restarts mid-run.
	Attempts int
	// RetryHinted opts the client into sleeping on typed transient
	// refusals (shard-unavailable, overloaded, journal-degraded) per the
	// server's retry_after_secs hint, within the Attempts budget.
	RetryHinted bool
	// TrackAcked retains the identity of every acked submit in
	// Result.AckedJobs — the ground truth the torture harness checks
	// against the journal ("an ack is a durability promise").
	TrackAcked bool
}

// AckedJob is one acked submit's identity: the proof obligation the
// invariant checker carries to the journal.
type AckedJob struct {
	ID    string `json:"id"`
	ReqID string `json:"req_id"`
}

// Summary is one latency population's quantile report, in milliseconds.
type Summary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Max   float64 `json:"max_ms"`
}

// Result is one load run's outcome.
type Result struct {
	Conns      int     `json:"conns"`
	Clients    int     `json:"clients"`
	Rate       float64 `json:"rate,omitempty"`
	Secs       float64 `json:"secs"`
	Submitted  int64   `json:"submitted"`
	Acked      int64   `json:"acked"`
	Refused    int64   `json:"refused"`
	Overloaded int64   `json:"overloaded"`
	Degraded   int64   `json:"degraded,omitempty"`
	Errors     int64   `json:"errors"`
	StatusOps  int64   `json:"status_ops"`
	// AckedJobs lists every acked submit's identity (TrackAcked only).
	AckedJobs []AckedJob `json:"-"`
	// FirstError samples the first connection-level failure, so an
	// errored run reports what went wrong, not just how often.
	FirstError string `json:"first_error,omitempty"`
	// Throughput is acked submits per wall second.
	Throughput float64 `json:"throughput_per_sec"`
	Submit     Summary `json:"submit"`
	Status     Summary `json:"status"`

	submitLat []float64 // ms, retained for Histogram
}

// Run drives one load run against the endpoint.
func Run(cfg Config) (*Result, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: endpoint address required")
	}
	if cfg.Statement == "" {
		cfg.Statement = "q1 ACC MIN 60% WITHIN 900 SECONDS"
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 32
	}
	if cfg.Clients <= 0 {
		cfg.Clients = cfg.Conns
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Rate > 0 && cfg.Ops == 0 {
		if cfg.Duration <= 0 {
			cfg.Duration = 10 * time.Second
		}
		cfg.Ops = int(cfg.Rate * cfg.Duration.Seconds())
	}
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("loadgen: closed loop (rate 0) requires -ops > 0")
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "load"
	}

	var (
		next       atomic.Int64 // arrival index dispenser
		submitted  atomic.Int64
		acked      atomic.Int64
		refused    atomic.Int64
		overloaded atomic.Int64
		degraded   atomic.Int64
		errs       atomic.Int64
		statusOps  atomic.Int64
		firstErr   atomic.Value // string
	)
	fail := func(err error) {
		errs.Add(1)
		firstErr.CompareAndSwap(nil, err.Error())
	}
	submitLats := make([][]float64, cfg.Conns)
	statusLats := make([][]float64, cfg.Conns)
	ackedJobs := make([][]AckedJob, cfg.Conns)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attempts := cfg.Attempts
			if attempts <= 0 {
				attempts = 1
			}
			cl, err := serve.NewClient(serve.ClientConfig{
				Socket:         cfg.Addr,
				Codec:          cfg.Codec,
				Attempts:       attempts,
				RetryHinted:    cfg.RetryHinted,
				RequestTimeout: cfg.Timeout,
			})
			if err != nil {
				fail(err)
				return
			}
			defer cl.Close()
			lastAcked := ""
			sinceProbe := 0
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Ops) {
					return
				}
				// The scheduled arrival is fixed by the rate alone; latency is
				// measured from it, so generator or server backlog is charged
				// to the requests queued behind it (no coordinated omission).
				sched := start
				if cfg.Rate > 0 {
					sched = start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
					if cfg.Duration > 0 && time.Since(start) > cfg.Duration+cfg.Timeout {
						return // the run overran its window beyond any useful measurement
					}
				} else {
					sched = time.Now()
				}
				if cfg.StatusEvery > 0 && lastAcked != "" {
					if sinceProbe++; sinceProbe >= cfg.StatusEvery {
						sinceProbe = 0
						ps := time.Now()
						if resp, err := cl.Do(serve.Message{Op: "status", ID: lastAcked}); err == nil && resp.OK {
							statusOps.Add(1)
							statusLats[w] = append(statusLats[w], float64(time.Since(ps))/1e6)
						}
					}
				}
				client := i % int64(cfg.Clients)
				m := serve.Message{
					Op:        "submit",
					ID:        fmt.Sprintf("%s-%07d", cfg.IDPrefix, i),
					ReqID:     fmt.Sprintf("%s-c%06d-%07d", cfg.IDPrefix, client, i),
					Statement: cfg.Statement,
				}
				submitted.Add(1)
				resp, err := cl.Do(m)
				switch {
				case err != nil:
					fail(err)
					return // connection-level failure: this worker is done
				case resp.OK:
					acked.Add(1)
					lastAcked = resp.ID
					submitLats[w] = append(submitLats[w], float64(time.Since(sched))/1e6)
					if cfg.TrackAcked {
						ackedJobs[w] = append(ackedJobs[w], AckedJob{ID: m.ID, ReqID: m.ReqID})
					}
				case resp.Code == serve.CodeJournalDegraded:
					// Durability refusal: the server is answering but will not
					// promise persistence. Counted apart from generic refusals —
					// the torture harness asserts these NEVER appear in the
					// acked set.
					degraded.Add(1)
				case resp.Code == serve.CodeOverloaded:
					// Open-loop discipline: an overload refusal is counted and
					// dropped, never retried — retrying would convert the
					// backpressure signal back into the unbounded queue it
					// exists to prevent.
					overloaded.Add(1)
				default:
					refused.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		Conns:      cfg.Conns,
		Clients:    cfg.Clients,
		Rate:       cfg.Rate,
		Secs:       elapsed,
		Submitted:  submitted.Load(),
		Acked:      acked.Load(),
		Refused:    refused.Load(),
		Overloaded: overloaded.Load(),
		Degraded:   degraded.Load(),
		Errors:     errs.Load(),
		StatusOps:  statusOps.Load(),
	}
	if cfg.TrackAcked {
		for _, part := range ackedJobs {
			res.AckedJobs = append(res.AckedJobs, part...)
		}
	}
	if s, ok := firstErr.Load().(string); ok {
		res.FirstError = s
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Acked) / elapsed
	}
	res.submitLat = merge(submitLats)
	res.Submit = summarize(res.submitLat)
	res.Status = summarize(merge(statusLats))
	return res, nil
}

func merge(parts [][]float64) []float64 {
	var all []float64
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Float64s(all)
	return all
}

// summarize computes quantiles over a sorted latency population.
func summarize(sorted []float64) Summary {
	s := Summary{Count: int64(len(sorted))}
	if len(sorted) == 0 {
		return s
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	s.P50, s.P90, s.P99, s.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	s.Max = sorted[len(sorted)-1]
	return s
}

// histogramBounds are the log-spaced submit-latency buckets (ms) the
// failure artifact renders.
var histogramBounds = []float64{0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Histogram renders the submit-latency distribution as a log-bucketed
// text table — the artifact CI uploads when the SLO gate fails, so a
// red run carries the full shape of the regression, not two quantiles.
func (r *Result) Histogram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submit latency histogram (%d samples, ms)\n", len(r.submitLat))
	counts := make([]int, len(histogramBounds)+1)
	for _, v := range r.submitLat {
		i := sort.SearchFloat64s(histogramBounds, v)
		counts[i]++
	}
	cum := 0
	for i, c := range counts {
		cum += c
		label := fmt.Sprintf("<=%g", histogramBounds[len(histogramBounds)-1])
		if i < len(histogramBounds) {
			label = fmt.Sprintf("<=%g", histogramBounds[i])
		} else {
			label = fmt.Sprintf(">%g", histogramBounds[len(histogramBounds)-1])
		}
		bar := strings.Repeat("#", scaleBar(c, len(r.submitLat)))
		fmt.Fprintf(&b, "%8s %8d %6.2f%% %s\n", label, c, 100*float64(cum)/float64(max(1, len(r.submitLat))), bar)
	}
	return b.String()
}

func scaleBar(c, total int) int {
	if total == 0 {
		return 0
	}
	n := c * 50 / total
	if c > 0 && n == 0 {
		n = 1
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
