package stream

import (
	"testing"
	"testing/quick"
)

func intRecords(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestConsumerDrainsEverythingOnce(t *testing.T) {
	topic := NewTopic("t", intRecords(1000), 4)
	c := NewConsumer(topic)
	seen := make(map[int]bool)
	for {
		batch, ok := c.NextBatch(77)
		if !ok {
			break
		}
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("record %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("delivered %d of 1000 records", len(seen))
	}
	if c.Progress() != 1 || c.Remaining() != 0 {
		t.Fatalf("progress=%v remaining=%d after drain", c.Progress(), c.Remaining())
	}
}

// Consumption order must not depend on the batch sizes used — queries
// with order-sensitive state rely on this to agree with the ground-truth
// pass.
func TestOrderIsBatchSizeInvariant(t *testing.T) {
	topic := NewShuffledTopic("t", intRecords(500), 4, 9)
	drain := func(sizes []int) []int {
		c := NewConsumer(topic)
		var out []int
		i := 0
		for {
			n := sizes[i%len(sizes)]
			i++
			batch, ok := c.NextBatch(n)
			if !ok {
				break
			}
			out = append(out, batch...)
		}
		return out
	}
	a := drain([]int{1})
	b := drain([]int{7, 13, 200})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestShuffledTopicIsSeededPermutation(t *testing.T) {
	a := NewShuffledTopic("t", intRecords(200), 3, 5)
	b := NewShuffledTopic("t", intRecords(200), 3, 5)
	ca, cb := NewConsumer(a), NewConsumer(b)
	ba, _ := ca.NextBatch(200)
	bb, _ := cb.NextBatch(200)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
	c := NewShuffledTopic("t", intRecords(200), 3, 6)
	cc := NewConsumer(c)
	bc, _ := cc.NextBatch(200)
	same := 0
	for i := range ba {
		if ba[i] == bc[i] {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestOffsetsSeekRoundTrip(t *testing.T) {
	topic := NewTopic("t", intRecords(300), 4)
	c1 := NewConsumer(topic)
	c1.NextBatch(113)
	state := c1.Offsets()

	c2 := NewConsumer(topic)
	if err := c2.Seek(state); err != nil {
		t.Fatal(err)
	}
	if c2.Read() != c1.Read() {
		t.Fatalf("read count %d vs %d after seek", c2.Read(), c1.Read())
	}
	r1, _ := c1.NextBatch(300)
	r2, _ := c2.NextBatch(300)
	if len(r1) != len(r2) {
		t.Fatalf("remaining lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("post-seek order diverges at %d", i)
		}
	}
}

func TestSeekRejectsBadState(t *testing.T) {
	topic := NewTopic("t", intRecords(10), 2)
	c := NewConsumer(topic)
	if err := c.Seek(ConsumerState{Offsets: []int{0}}); err == nil {
		t.Error("seek accepted wrong partition count")
	}
	if err := c.Seek(ConsumerState{Offsets: []int{0, 99}}); err == nil {
		t.Error("seek accepted out-of-range offset")
	}
	if err := c.Seek(ConsumerState{Offsets: []int{0, -1}}); err == nil {
		t.Error("seek accepted negative offset")
	}
}

func TestProgressMonotonic(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n)%200 + 1
		topic := NewShuffledTopic("t", intRecords(size), 3, seed)
		c := NewConsumer(topic)
		prev := 0.0
		for {
			_, ok := c.NextBatch(7)
			p := c.Progress()
			if p < prev || p > 1 {
				return false
			}
			prev = p
			if !ok {
				break
			}
		}
		return prev == 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndZeroBatch(t *testing.T) {
	topic := NewTopic[int]("empty", nil, 4)
	c := NewConsumer(topic)
	if _, ok := c.NextBatch(10); ok {
		t.Error("empty topic returned a batch")
	}
	if c.Progress() != 1 {
		t.Error("empty topic progress should be 1")
	}
	topic2 := NewTopic("t", intRecords(5), 1)
	c2 := NewConsumer(topic2)
	if _, ok := c2.NextBatch(0); ok {
		t.Error("zero-size batch returned records")
	}
}
