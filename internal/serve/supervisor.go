// Shard supervisor: the watchdog that turns a shard crash into a
// bounded outage instead of a dead daemon. One goroutine probes every
// shard's health op on a wall-clock cadence; a probe failure (or the
// shard's serve loop exiting) marks it down, and downed shards are
// restarted with capped exponential backoff by reopening their journal —
// replaying every fsynced transition — and catching their virtual clock
// up to the router's advance horizon. Probes are deliberately
// trace-neutral: the health op reads state without mutating the engine
// or emitting trace events, so supervised runs stay bit-identical to
// unsupervised ones on the shards that never crash.
package serve

import (
	"errors"
	"fmt"
	"time"
)

// supervise is the supervisor loop, started by Serve and stopped by
// Drain/Close.
func (r *Router) supervise() {
	defer close(r.supDone)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.supStop:
			return
		case <-t.C:
		}
		for _, h := range r.shards {
			select {
			case <-r.supStop:
				return
			default:
			}
			r.checkShard(h)
		}
	}
}

// checkShard advances one shard's supervision state machine:
//
//	Running    → probe; a dead serve loop or failed probe marks it Down
//	Down       → once the backoff expires, attempt a restart
//	Retired    → final; never probed, never restarted
//
// Starting/Restarting are transient states owned by the goroutine
// performing the start.
func (r *Router) checkShard(h *shardHandle) {
	h.mu.Lock()
	state, probe, done := h.state, h.probe, h.serveDone
	retryAt := h.retryAt
	h.mu.Unlock()
	switch state {
	case ShardRunning:
		// A serve loop that exited is a crash even if a last probe would
		// still squeak through on a buffered connection.
		select {
		case <-done:
			r.met.probeFailures[h.index].Inc()
			r.markDown(h, errors.New("serve loop exited"))
			return
		default:
		}
		resp, err := probe.Do(Message{Op: "health"})
		if err != nil {
			r.met.probeFailures[h.index].Inc()
			r.markDown(h, err)
			return
		}
		// "journal-failed" means the shard exhausted its self-heal budget
		// against a degraded journal: in-process healing lost, so escalate
		// to the restart path — Kill releases the wedged file handles and
		// the reopen replays the segment chain's valid prefix. A shard
		// still merely "journal-degraded" is left alone; its own prober is
		// the cheaper first responder.
		if resp.Status == "journal-failed" {
			r.met.probeFailures[h.index].Inc()
			h.mu.Lock()
			srv := h.srv
			h.mu.Unlock()
			if srv != nil {
				srv.Kill()
			}
			r.markDown(h, fmt.Errorf("journal failed beyond self-heal: %s", resp.Error))
			return
		}
		h.mu.Lock()
		h.lastEpoch = resp.ServerEpoch
		h.mu.Unlock()
	case ShardDown:
		if time.Now().Before(retryAt) {
			return
		}
		r.restartShard(h)
	}
}

// markDown transitions a shard to Down and schedules its first restart
// attempt. Idempotent for already-down or retired shards.
func (r *Router) markDown(h *shardHandle, cause error) {
	h.mu.Lock()
	if h.state == ShardDown || h.state == ShardRetired {
		h.mu.Unlock()
		return
	}
	h.state = ShardDown
	h.lastErr = cause
	if h.backoff <= 0 {
		h.backoff = r.cfg.RestartBackoff
	}
	h.retryAt = time.Now().Add(h.backoff)
	h.mu.Unlock()
	r.met.shardUp[h.index].Set(0)
}

// restartShard attempts one supervised restart. Failure doubles the
// backoff (capped) and re-queues the shard; success is recorded by
// startShard itself.
func (r *Router) restartShard(h *shardHandle) {
	h.mu.Lock()
	h.state = ShardRestarting
	h.mu.Unlock()
	if err := r.startShard(h); err != nil {
		h.mu.Lock()
		h.backoff *= 2
		if h.backoff > r.cfg.MaxRestartBackoff {
			h.backoff = r.cfg.MaxRestartBackoff
		}
		h.state = ShardDown
		h.lastErr = err
		h.retryAt = time.Now().Add(h.backoff)
		h.mu.Unlock()
	}
}

// KillShard abruptly kills one shard — the in-process stand-in for
// `kill -9` of a shard worker, used by the multi-shard chaos suite. The
// shard's journal keeps exactly what each append already fsynced; the
// supervisor notices the corpse on its next probe and restarts it.
func (r *Router) KillShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("serve: shard %d out of range [0,%d)", i, len(r.shards))
	}
	h := r.shards[i]
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("serve: shard %d has no live server", i)
	}
	srv.Kill()
	return nil
}

// ShardState reports one shard's supervision state (tests and tooling).
func (r *Router) ShardState(i int) (ShardState, error) {
	if i < 0 || i >= len(r.shards) {
		return 0, fmt.Errorf("serve: shard %d out of range [0,%d)", i, len(r.shards))
	}
	return r.shards[i].State(), nil
}
