// Package criteria implements Rotary's user-defined completion criteria
// (§III-B): the three template kinds of Fig. 3 — accuracy-oriented,
// convergence-oriented, and runtime-oriented — and the parser for the
// add-on clauses of Fig. 4, e.g.
//
//	SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='CUST1' ACC MIN 95% WITHIN 3600 SECONDS
//	TRAIN RESNET-50 ON CIFAR10 ACC DELTA 0.001 WITHIN 30 EPOCHS
//	TRAIN MOBILENET ON CIFAR10 FOR 2 HOURS
//
// The criteria are add-ons to the regular query/training command and are
// orthogonal to its execution: Parse splits the command prefix off
// unchanged, without needing the original command parser.
package criteria

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the completion-criteria template.
type Kind int

// The three template kinds of Fig. 3.
const (
	Accuracy Kind = iota
	Convergence
	Runtime
)

// String returns the template name.
func (k Kind) String() string {
	switch k {
	case Accuracy:
		return "accuracy"
	case Convergence:
		return "convergence"
	case Runtime:
		return "runtime"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit is a deadline/runtime unit. The WITHIN and FOR predicates accept
// wall-time units or epochs.
type Unit int

// Deadline units.
const (
	Seconds Unit = iota
	Minutes
	Hours
	Epochs
)

// String returns the unit's canonical spelling.
func (u Unit) String() string {
	switch u {
	case Seconds:
		return "seconds"
	case Minutes:
		return "minutes"
	case Hours:
		return "hours"
	case Epochs:
		return "epochs"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// Deadline is a bound expressed in time or epochs.
type Deadline struct {
	Value float64 `json:"value"`
	Unit  Unit    `json:"unit"`
}

// IsTime reports whether the deadline is a wall-time bound.
func (d Deadline) IsTime() bool { return d.Unit != Epochs }

// DeadlineSeconds converts a wall-time deadline to seconds; ok is false
// for epoch deadlines.
func (d Deadline) DeadlineSeconds() (float64, bool) {
	switch d.Unit {
	case Seconds:
		return d.Value, true
	case Minutes:
		return d.Value * 60, true
	case Hours:
		return d.Value * 3600, true
	default:
		return 0, false
	}
}

// DeadlineEpochs converts an epoch deadline to an epoch count; ok is
// false for wall-time deadlines.
func (d Deadline) DeadlineEpochs() (int, bool) {
	if d.Unit != Epochs {
		return 0, false
	}
	return int(d.Value), true
}

// String formats the deadline for display.
func (d Deadline) String() string { return fmt.Sprintf("%g %s", d.Value, d.Unit) }

// Criteria is a parsed completion criterion.
type Criteria struct {
	Kind Kind `json:"kind"`
	// Metric is the convergence metric name, e.g. "ACC", "LOSS", "F1",
	// "PERPLEXITY". Empty for runtime-oriented criteria.
	Metric string `json:"metric,omitempty"`
	// Threshold is the accuracy target (accuracy-oriented, in [0, 1]) or
	// the convergence delta (convergence-oriented).
	Threshold float64 `json:"threshold,omitempty"`
	// Deadline bounds accuracy/convergence criteria; for runtime-oriented
	// criteria it is the runtime itself.
	Deadline Deadline `json:"deadline"`
}

// NewAccuracy builds an accuracy-oriented criterion: reach threshold on
// metric within the deadline.
func NewAccuracy(metric string, threshold float64, deadline Deadline) (Criteria, error) {
	if threshold <= 0 || threshold > 1 {
		return Criteria{}, fmt.Errorf("criteria: accuracy threshold %g must be in (0, 1]", threshold)
	}
	if deadline.Value <= 0 {
		return Criteria{}, fmt.Errorf("criteria: deadline %v must be positive", deadline)
	}
	return Criteria{Kind: Accuracy, Metric: canonMetric(metric), Threshold: threshold, Deadline: deadline}, nil
}

// NewConvergence builds a convergence-oriented criterion: metric changes
// by less than delta between epochs, bounded by the deadline.
func NewConvergence(metric string, delta float64, deadline Deadline) (Criteria, error) {
	if delta <= 0 || delta >= 1 {
		return Criteria{}, fmt.Errorf("criteria: convergence delta %g must be in (0, 1)", delta)
	}
	if deadline.Value <= 0 {
		return Criteria{}, fmt.Errorf("criteria: deadline %v must be positive", deadline)
	}
	return Criteria{Kind: Convergence, Metric: canonMetric(metric), Threshold: delta, Deadline: deadline}, nil
}

// NewRuntime builds a runtime-oriented criterion: run for the given
// duration or epoch count and return whatever was achieved.
func NewRuntime(runtime Deadline) (Criteria, error) {
	if runtime.Value <= 0 {
		return Criteria{}, fmt.Errorf("criteria: runtime %v must be positive", runtime)
	}
	return Criteria{Kind: Runtime, Deadline: runtime}, nil
}

func canonMetric(m string) string {
	m = strings.ToUpper(strings.TrimSpace(m))
	if m == "" {
		m = "ACC"
	}
	return m
}

// String renders the criterion in the Fig. 3 template syntax.
func (c Criteria) String() string {
	switch c.Kind {
	case Accuracy:
		return fmt.Sprintf("%s MIN %g%% WITHIN %v", c.Metric, c.Threshold*100, c.Deadline)
	case Convergence:
		return fmt.Sprintf("%s DELTA %g WITHIN %v", c.Metric, c.Threshold, c.Deadline)
	case Runtime:
		return fmt.Sprintf("FOR %v", c.Deadline)
	default:
		return "invalid criteria"
	}
}

// Expired reports whether the criterion's bound has passed given the
// job's elapsed runtime (seconds) and completed epochs. For runtime-
// oriented criteria expiry IS completion.
func (c Criteria) Expired(elapsedSecs float64, epochs int) bool {
	if secs, ok := c.Deadline.DeadlineSeconds(); ok {
		return elapsedSecs >= secs
	}
	e, _ := c.Deadline.DeadlineEpochs()
	return epochs >= e
}

// Parse splits a command with an appended completion-criteria clause into
// the raw command prefix and the parsed criterion. The clause grammar is
// case-insensitive:
//
//	<cmd> <metric> MIN   <pct|frac> WITHIN <n> <unit>
//	<cmd> <metric> DELTA <frac>     WITHIN <n> <unit>
//	<cmd> FOR <n> <unit>
func Parse(input string) (command string, c Criteria, err error) {
	tokens := strings.Fields(input)
	upper := make([]string, len(tokens))
	for i, t := range tokens {
		upper[i] = strings.ToUpper(t)
	}

	// Runtime-oriented: trailing "FOR <n> <unit>".
	if n := len(tokens); n >= 3 && upper[n-3] == "FOR" {
		value, verr := strconv.ParseFloat(tokens[n-2], 64)
		unit, uerr := parseUnit(upper[n-1])
		if verr == nil && uerr == nil {
			cr, err := NewRuntime(Deadline{Value: value, Unit: unit})
			if err != nil {
				return "", Criteria{}, err
			}
			return strings.Join(tokens[:n-3], " "), cr, nil
		}
	}

	// Accuracy/convergence: "<metric> MIN|DELTA <x> WITHIN <n> <unit>".
	for i := len(upper) - 1; i >= 1; i-- {
		if upper[i] != "MIN" && upper[i] != "DELTA" {
			continue
		}
		if i+4 >= len(tokens) {
			return "", Criteria{}, fmt.Errorf("criteria: truncated %s clause in %q", upper[i], input)
		}
		if upper[i+2] != "WITHIN" {
			return "", Criteria{}, fmt.Errorf("criteria: expected WITHIN after %s %s", upper[i], tokens[i+1])
		}
		metric := tokens[i-1]
		thr, err := parseThreshold(tokens[i+1])
		if err != nil {
			return "", Criteria{}, err
		}
		value, err := strconv.ParseFloat(tokens[i+3], 64)
		if err != nil {
			return "", Criteria{}, fmt.Errorf("criteria: bad deadline value %q: %v", tokens[i+3], err)
		}
		unit, err := parseUnit(upper[i+4])
		if err != nil {
			return "", Criteria{}, err
		}
		d := Deadline{Value: value, Unit: unit}
		var cr Criteria
		if upper[i] == "MIN" {
			cr, err = NewAccuracy(metric, thr, d)
		} else {
			cr, err = NewConvergence(metric, thr, d)
		}
		if err != nil {
			return "", Criteria{}, err
		}
		return strings.Join(tokens[:i-1], " "), cr, nil
	}

	return "", Criteria{}, fmt.Errorf("criteria: no completion-criteria clause in %q", input)
}

// parseThreshold accepts "95%" or a bare fraction like "0.95".
func parseThreshold(s string) (float64, error) {
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("criteria: bad percentage %q: %v", s, err)
		}
		return v / 100, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("criteria: bad threshold %q: %v", s, err)
	}
	return v, nil
}

func parseUnit(s string) (Unit, error) {
	switch strings.TrimSuffix(s, "S") {
	case "SECOND", "SEC":
		return Seconds, nil
	case "MINUTE", "MIN":
		return Minutes, nil
	case "HOUR", "HR":
		return Hours, nil
	case "EPOCH":
		return Epochs, nil
	default:
		return 0, fmt.Errorf("criteria: unknown unit %q", s)
	}
}
