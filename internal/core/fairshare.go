package core

import (
	"sort"

	"rotary/internal/cluster"
)

// This file implements the weighted fair-share arbitration layer: a
// DRF-style wrapper that partitions each arbitration round's free
// resources across tenants before the wrapped policy orders jobs within
// each tenant's share. The isolation claim it carries (proved by the
// noisy-neighbor chaos suite in internal/serve) is that one tenant's
// backlog cannot consume another tenant's guaranteed share: every
// backlogged tenant is offered its weight-proportional entitlement
// every round, in deficit order, before any leftover capacity is
// reclaimed work-conservingly.
//
// The deficit ledger is a cumulative dominant-resource usage account
// (Ghodsi et al.'s DRF share: max over resources of the granted
// fraction, divided by the tenant's weight). Tenants are served in
// ascending usage-per-weight order, so a tenant returning from idle —
// whose account lags the field — is first in line. The idle-return
// clamp bounds that credit: when a tenant becomes backlogged, its
// account is raised to the current backlogged minimum, so unused share
// is reclaimable by others while guaranteed share is recoverable within
// one arbitration round — a returning tenant gets its full entitlement
// immediately but cannot starve the field to "repay" arbitrarily old
// idleness.
//
// Fast-path composition: the wrapper implements ArbiterProfile when the
// inner policy does, folding the deficit ledger into StateFingerprint
// (a hit therefore proves the ledger matched), and implements
// AQPReplayCommitter/DLTReplayCommitter so a replayed decision advances
// the ledger exactly as the skipped Assign/Place would have.

// fairLedger is the tenant usage account shared by both wrappers.
type fairLedger struct {
	weights map[string]float64
	usage   map[string]float64
	// wasBack is the previous round's backlogged set: the idle-return
	// clamp raises only tenants (re)entering the backlog, and "entering"
	// is defined against this. Ledger state proper — folded into the
	// fast-path fingerprint alongside usage.
	wasBack map[string]bool
}

func newFairLedger(weights map[string]float64) fairLedger {
	w := make(map[string]float64, len(weights))
	for name, v := range weights {
		if v > 0 {
			w[CanonicalTenantName(name)] = v
		}
	}
	return fairLedger{weights: w, usage: make(map[string]float64), wasBack: make(map[string]bool)}
}

// CanonicalTenantName maps an attribution string to its ledger key
// (core-side mirror of admission.CanonicalTenant, kept dependency-free).
func CanonicalTenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

func (l *fairLedger) weight(tenant string) float64 {
	if w, ok := l.weights[tenant]; ok {
		return w
	}
	return 1
}

// clamp prunes tenants that left the system entirely and applies the
// idle-return bound: a tenant (re)entering the backlog has its account
// raised to the continuously-backlogged minimum usage-per-weight, so it
// gets its full weight-proportional entitlement immediately but carries
// no accumulated credit for the rounds it sat idle — others reclaimed
// that share for good. live holds every tenant present in the round
// (pending or running); backlogged the subset with pending work. Both
// are deterministic functions of the arbitration context, so the clamp
// replays identically under the fast path.
func (l *fairLedger) clamp(live, backlogged map[string]bool) {
	for name := range l.usage {
		if !live[name] {
			delete(l.usage, name)
		}
	}
	for name := range l.wasBack {
		if !live[name] {
			delete(l.wasBack, name)
		}
	}
	minNorm := -1.0
	for name := range backlogged {
		if !l.wasBack[name] {
			continue
		}
		n := l.usage[name] / l.weight(name)
		if minNorm < 0 || n < minNorm {
			minNorm = n
		}
	}
	if minNorm > 0 {
		for name := range backlogged {
			if l.wasBack[name] {
				continue
			}
			if floor := l.weight(name) * minNorm; l.usage[name] < floor {
				l.usage[name] = floor
			}
		}
	}
	for name := range l.wasBack {
		if !backlogged[name] {
			delete(l.wasBack, name)
		}
	}
	for name := range backlogged {
		l.wasBack[name] = true
	}
}

// order returns the backlogged tenants in service order: ascending
// usage-per-weight, ties by name — deterministic for replays.
func (l *fairLedger) order(backlogged []string) []string {
	sort.Slice(backlogged, func(i, j int) bool {
		ni := l.usage[backlogged[i]] / l.weight(backlogged[i])
		nj := l.usage[backlogged[j]] / l.weight(backlogged[j])
		if ni != nj {
			return ni < nj
		}
		return backlogged[i] < backlogged[j]
	})
	return backlogged
}

// charge books one grant's dominant share against a tenant.
func (l *fairLedger) charge(tenant string, dominant float64) {
	l.usage[tenant] += dominant / l.weight(tenant)
}

// fingerprint folds the ledger into a fast-path state fingerprint. Both
// state maps participate: usage drives the share split, wasBack drives
// the idle-return clamp, and a cache hit must prove both matched.
func (l *fairLedger) fingerprint(h uint64) uint64 {
	names := make([]string, 0, len(l.usage))
	for name := range l.usage {
		names = append(names, name)
	}
	sort.Strings(names)
	h = fpMix(h, uint64(len(names)))
	for _, name := range names {
		h = fpMix(h, fpString(name))
		h = fpFloat(h, l.usage[name])
		h = fpFloat(h, l.weight(name))
	}
	back := make([]string, 0, len(l.wasBack))
	for name := range l.wasBack {
		back = append(back, name)
	}
	sort.Strings(back)
	h = fpMix(h, uint64(len(back)))
	for _, name := range back {
		h = fpMix(h, fpString(name))
	}
	return h
}

// FairShareAQP wraps an AQP policy with weighted fair share over
// threads and memory. Compose it under the starvation guard and the
// fast path: executor wiring puts the guard (when configured) outside
// and the decision cache outside that.
type FairShareAQP struct {
	inner  AQPScheduler
	ledger fairLedger
}

// NewFairShareAQP wraps inner with the given tenant weight map (absent
// or non-positive weights default to 1).
func NewFairShareAQP(inner AQPScheduler, weights map[string]float64) *FairShareAQP {
	return &FairShareAQP{inner: inner, ledger: newFairLedger(weights)}
}

// Name implements AQPScheduler.
func (f *FairShareAQP) Name() string { return f.inner.Name() + "+fair" }

// Usage snapshots the deficit ledger (tests and reports).
func (f *FairShareAQP) Usage() map[string]float64 {
	out := make(map[string]float64, len(f.ledger.usage))
	for name, v := range f.ledger.usage {
		out[name] = v
	}
	return out
}

// ArbiterProfile opts into the fast path when the inner policy does,
// folding the deficit ledger into the state fingerprint so a cache hit
// proves the ledger (and hence the share computation) matched.
func (f *FairShareAQP) ArbiterProfile() ArbiterProfile {
	p, ok := f.inner.(ProfiledAQPScheduler)
	if !ok {
		return ArbiterProfile{}
	}
	prof := p.ArbiterProfile()
	if !prof.Cachable {
		return prof
	}
	prof.StateFingerprint = f.ledger.fingerprint(fpMix(fpInit, prof.StateFingerprint))
	return prof
}

// tenantSets derives the live/backlogged tenant sets and the pending
// grouping for one round.
func aqpTenantSets(ctx *AQPContext) (live, backlogged map[string]bool, groups map[string][]*AQPJob, names []string) {
	live = make(map[string]bool)
	backlogged = make(map[string]bool)
	groups = make(map[string][]*AQPJob)
	for _, j := range ctx.Pending {
		t := CanonicalTenantName(j.tenant)
		live[t] = true
		if !backlogged[t] {
			backlogged[t] = true
			names = append(names, t)
		}
		groups[t] = append(groups[t], j)
	}
	for _, j := range ctx.Running {
		live[CanonicalTenantName(j.tenant)] = true
	}
	return live, backlogged, groups, names
}

// Assign implements AQPScheduler: clamp the ledger, partition the free
// pool by weight in deficit order, reclaim leftovers work-conservingly,
// then charge the final grants.
func (f *FairShareAQP) Assign(ctx *AQPContext) []AQPGrant {
	live, backlogged, groups, names := aqpTenantSets(ctx)
	f.ledger.clamp(live, backlogged)
	grants := f.assignFair(ctx, groups, names)
	f.commit(ctx, grants)
	return grants
}

// CommitReplay implements AQPReplayCommitter: advance the ledger for a
// fast-path replayed decision exactly as Assign would have.
func (f *FairShareAQP) CommitReplay(ctx *AQPContext, grants []AQPGrant) {
	live, backlogged, _, _ := aqpTenantSets(ctx)
	f.ledger.clamp(live, backlogged)
	f.commit(ctx, grants)
}

func (f *FairShareAQP) commit(ctx *AQPContext, grants []AQPGrant) {
	for _, g := range grants {
		dom := 0.0
		if ctx.TotalThreads > 0 {
			dom = float64(g.Threads) / float64(ctx.TotalThreads)
		}
		if ctx.TotalMemMB > 0 {
			if m := g.ReserveMemMB / ctx.TotalMemMB; m > dom {
				dom = m
			}
		}
		f.ledger.charge(CanonicalTenantName(g.Job.tenant), dom)
	}
}

func (f *FairShareAQP) assignFair(ctx *AQPContext, groups map[string][]*AQPJob, names []string) []AQPGrant {
	// Single-tenant rounds need no partitioning: the inner policy sees
	// the whole pool, and only the ledger charge differs from a bare run.
	if len(names) <= 1 {
		return f.inner.Assign(ctx)
	}
	order := f.ledger.order(names)
	totalW := 0.0
	for _, name := range order {
		totalW += f.ledger.weight(name)
	}
	remThreads := ctx.FreeThreads
	remMem := ctx.FreeMemMB
	var out []AQPGrant
	granted := make(map[*AQPJob]bool)
	accept := func(grants []AQPGrant) {
		for _, g := range grants {
			if g.Threads <= 0 || g.Threads > remThreads || granted[g.Job] {
				continue
			}
			granted[g.Job] = true
			out = append(out, g)
			remThreads -= g.Threads
			remMem -= g.ReserveMemMB
		}
	}
	// Entitlement pass: each backlogged tenant, in deficit order, is
	// offered its weight-proportional slice of this round's free pool
	// (never less than one thread — the recoverable guaranteed share).
	for _, name := range order {
		if remThreads <= 0 {
			break
		}
		w := f.ledger.weight(name)
		ent := int(float64(ctx.FreeThreads) * w / totalW)
		if ent < 1 {
			ent = 1
		}
		if ent > remThreads {
			ent = remThreads
		}
		entMem := ctx.FreeMemMB * w / totalW
		if entMem > remMem {
			entMem = remMem
		}
		sub := AQPContext{
			Now:          ctx.Now,
			Pending:      groups[name],
			Running:      ctx.Running,
			FreeThreads:  ent,
			TotalThreads: ctx.TotalThreads,
			FreeMemMB:    entMem,
			TotalMemMB:   ctx.TotalMemMB,
		}
		accept(f.inner.Assign(&sub))
	}
	// Reclaim pass: leftover capacity (tenants without enough backlog to
	// fill their slice) is re-offered in the same order — unused share is
	// reclaimable, so the layer stays work-conserving.
	for _, name := range order {
		if remThreads <= 0 {
			break
		}
		var rest []*AQPJob
		for _, j := range groups[name] {
			if !granted[j] {
				rest = append(rest, j)
			}
		}
		if len(rest) == 0 {
			continue
		}
		mem := remMem
		if mem < 0 {
			mem = 0
		}
		sub := AQPContext{
			Now:          ctx.Now,
			Pending:      rest,
			Running:      ctx.Running,
			FreeThreads:  remThreads,
			TotalThreads: ctx.TotalThreads,
			FreeMemMB:    mem,
			TotalMemMB:   ctx.TotalMemMB,
		}
		accept(f.inner.Assign(&sub))
	}
	return out
}

// FairShareDLT wraps a DLT policy with weighted fair share over GPU
// slots: the dominant resource is the device count, entitlements are
// weight-proportional slices of this round's free device list.
type FairShareDLT struct {
	inner  DLTScheduler
	ledger fairLedger
}

// NewFairShareDLT wraps inner with the given tenant weight map.
func NewFairShareDLT(inner DLTScheduler, weights map[string]float64) *FairShareDLT {
	return &FairShareDLT{inner: inner, ledger: newFairLedger(weights)}
}

// Name implements DLTScheduler.
func (f *FairShareDLT) Name() string { return f.inner.Name() + "+fair" }

// Usage snapshots the deficit ledger.
func (f *FairShareDLT) Usage() map[string]float64 {
	out := make(map[string]float64, len(f.ledger.usage))
	for name, v := range f.ledger.usage {
		out[name] = v
	}
	return out
}

// ArbiterProfile opts into the fast path when the inner policy does.
func (f *FairShareDLT) ArbiterProfile() ArbiterProfile {
	p, ok := f.inner.(ProfiledDLTScheduler)
	if !ok {
		return ArbiterProfile{}
	}
	prof := p.ArbiterProfile()
	if !prof.Cachable {
		return prof
	}
	prof.StateFingerprint = f.ledger.fingerprint(fpMix(fpInit, prof.StateFingerprint))
	return prof
}

func dltTenantSets(ctx *DLTContext) (live, backlogged map[string]bool, groups map[string][]*DLTJob, names []string) {
	live = make(map[string]bool)
	backlogged = make(map[string]bool)
	groups = make(map[string][]*DLTJob)
	for _, j := range ctx.Pending {
		t := CanonicalTenantName(j.tenant)
		live[t] = true
		if !backlogged[t] {
			backlogged[t] = true
			names = append(names, t)
		}
		groups[t] = append(groups[t], j)
	}
	for _, j := range ctx.Running {
		live[CanonicalTenantName(j.tenant)] = true
	}
	return live, backlogged, groups, names
}

// Place implements DLTScheduler.
func (f *FairShareDLT) Place(ctx *DLTContext) []DLTPlacement {
	live, backlogged, groups, names := dltTenantSets(ctx)
	f.ledger.clamp(live, backlogged)
	placements := f.placeFair(ctx, groups, names)
	f.commit(placements)
	return placements
}

// CommitReplay implements DLTReplayCommitter.
func (f *FairShareDLT) CommitReplay(ctx *DLTContext, placements []DLTPlacement) {
	live, backlogged, _, _ := dltTenantSets(ctx)
	f.ledger.clamp(live, backlogged)
	f.commit(placements)
}

func (f *FairShareDLT) commit(placements []DLTPlacement) {
	for _, p := range placements {
		f.ledger.charge(CanonicalTenantName(p.Job.tenant), 1)
	}
}

func (f *FairShareDLT) placeFair(ctx *DLTContext, groups map[string][]*DLTJob, names []string) []DLTPlacement {
	if len(names) <= 1 {
		return f.inner.Place(ctx)
	}
	order := f.ledger.order(names)
	totalW := 0.0
	for _, name := range order {
		totalW += f.ledger.weight(name)
	}
	remaining := make([]cluster.GPU, len(ctx.FreeGPUs))
	copy(remaining, ctx.FreeGPUs)
	var out []DLTPlacement
	placed := make(map[*DLTJob]bool)
	takeDevice := func(id int) bool {
		for i, g := range remaining {
			if g.ID == id {
				remaining = append(remaining[:i], remaining[i+1:]...)
				return true
			}
		}
		return false
	}
	accept := func(ps []DLTPlacement) {
		for _, p := range ps {
			if placed[p.Job] || !takeDevice(p.Device) {
				continue
			}
			placed[p.Job] = true
			out = append(out, p)
		}
	}
	// Entitlement pass: each backlogged tenant, in deficit order, sees a
	// weight-proportional slice of the free device list (at least one
	// device). The slice is copied — accept mutates remaining.
	for _, name := range order {
		if len(remaining) == 0 {
			break
		}
		ent := int(float64(len(ctx.FreeGPUs)) * f.ledger.weight(name) / totalW)
		if ent < 1 {
			ent = 1
		}
		if ent > len(remaining) {
			ent = len(remaining)
		}
		slice := make([]cluster.GPU, ent)
		copy(slice, remaining[:ent])
		sub := DLTContext{Now: ctx.Now, Pending: groups[name], Running: ctx.Running, FreeGPUs: slice}
		accept(f.inner.Place(&sub))
	}
	// Reclaim pass: leftover devices re-offered in the same order.
	for _, name := range order {
		if len(remaining) == 0 {
			break
		}
		var rest []*DLTJob
		for _, j := range groups[name] {
			if !placed[j] {
				rest = append(rest, j)
			}
		}
		if len(rest) == 0 {
			continue
		}
		slice := make([]cluster.GPU, len(remaining))
		copy(slice, remaining)
		sub := DLTContext{Now: ctx.Now, Pending: rest, Running: ctx.Running, FreeGPUs: slice}
		accept(f.inner.Place(&sub))
	}
	return out
}
