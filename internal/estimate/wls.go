// Package estimate implements Rotary's estimation machinery: weighted
// linear regression, the paper's joint historical/real-time curve fitting,
// the top-k similar-job selection with similarity(x,y) = 1 − |x−y|/max(x,y),
// the non-parametric envelope-function convergence detector, the training
// epoch estimator (TEE), the training memory estimator (TME), and the
// historical-job repository that feeds them.
package estimate

import "math"

// Point is an (x, y) observation.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Line is a fitted y = Intercept + Slope·x.
type Line struct {
	Intercept float64
	Slope     float64
}

// At evaluates the line.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// XFor solves for the x at which the line reaches y, reporting false when
// the slope is non-positive (the line never gets there) — the erroneous-
// estimation regime Fig. 11 exercises — or when the fit itself is
// degenerate (non-finite coefficients or solution).
func (l Line) XFor(y float64) (float64, bool) {
	if !(l.Slope > 1e-12) { // NaN slopes fail this too
		return 0, false
	}
	x := (y - l.Intercept) / l.Slope
	if !finite(x) {
		return 0, false
	}
	return x, true
}

// finite reports whether v is neither NaN nor ±Inf — the package-wide
// guard against degenerate fits leaking into arbitration decisions.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// countFinite reports how many points have both coordinates finite.
// FitWLS over zero finite points returns the zero line, which evaluates
// to a plausible-looking 0 — estimators use this to tell "the fit says
// zero" from "there was no usable data at all".
func countFinite(pts []Point) int {
	n := 0
	for _, p := range pts {
		if finite(p.X) && finite(p.Y) {
			n++
		}
	}
	return n
}

// FitWLS fits y = a + b·x by weighted least squares (the paper cites Kay's
// classical WLS). Zero, negative, or non-finite weights drop the point,
// as do non-finite coordinates — one NaN observation (a degenerate
// envelope ratio, a log of zero) must not poison the whole fit. With
// fewer than two distinct x values the fit degenerates to a flat line
// through the weighted mean.
func FitWLS(points []Point, weights []float64) Line {
	if len(points) != len(weights) {
		panic("estimate: points/weights length mismatch")
	}
	var sw, swx, swy, swxx, swxy float64
	for i, p := range points {
		w := weights[i]
		if w <= 0 || !finite(w) || !finite(p.X) || !finite(p.Y) {
			continue
		}
		sw += w
		swx += w * p.X
		swy += w * p.Y
		swxx += w * p.X * p.X
		swxy += w * p.X * p.Y
	}
	if sw == 0 {
		return Line{}
	}
	den := sw*swxx - swx*swx
	if math.Abs(den) < 1e-12 {
		return Line{Intercept: swy / sw}
	}
	b := (sw*swxy - swx*swy) / den
	a := (swy - b*swx) / sw
	return Line{Intercept: a, Slope: b}
}

// JointFit implements §IV-A's continuous joint fitting: "each recorded
// real-time result and the combination of all the historical data will
// share equal weight". With m real-time points, every real-time point
// carries weight 1/(m+1) and the historical points split the remaining
// 1/(m+1) evenly. With no real-time data the fit is purely historical;
// with no history it is purely real-time.
func JointFit(historical, realtime []Point) Line {
	m := len(realtime)
	switch {
	case m == 0 && len(historical) == 0:
		return Line{}
	case m == 0:
		w := make([]float64, len(historical))
		for i := range w {
			w[i] = 1
		}
		return FitWLS(historical, w)
	case len(historical) == 0:
		w := make([]float64, m)
		for i := range w {
			w[i] = 1
		}
		return FitWLS(realtime, w)
	}
	share := 1.0 / float64(m+1)
	points := make([]Point, 0, len(historical)+m)
	weights := make([]float64, 0, len(historical)+m)
	histEach := share / float64(len(historical))
	for _, p := range historical {
		points = append(points, p)
		weights = append(weights, histEach)
	}
	for _, p := range realtime {
		points = append(points, p)
		weights = append(weights, share)
	}
	return FitWLS(points, weights)
}

// Similarity is §IV-B's size similarity: 1 − |x−y| / max(x, y), in [0, 1]
// for non-negative inputs. Two zeros are identical (similarity 1).
func Similarity(x, y float64) float64 {
	if x < 0 {
		x = -x
	}
	if y < 0 {
		y = -y
	}
	m := math.Max(x, y)
	if m == 0 {
		return 1
	}
	return 1 - math.Abs(x-y)/m
}
