package estimate

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"rotary/internal/sim"
)

func TestFitWLSRecoversExactLine(t *testing.T) {
	check := func(a, b float64, seed uint64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		r := sim.NewRand(seed)
		var pts []Point
		var ws []float64
		for i := 0; i < 10; i++ {
			x := r.Range(0, 100)
			pts = append(pts, Point{X: x, Y: a + b*x})
			ws = append(ws, r.Range(0.1, 2))
		}
		line := FitWLS(pts, ws)
		return math.Abs(line.Intercept-a) < 1e-6*(1+math.Abs(a)) &&
			math.Abs(line.Slope-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitWLSDegenerateInputs(t *testing.T) {
	if l := FitWLS(nil, nil); l.Slope != 0 || l.Intercept != 0 {
		t.Errorf("empty fit = %+v", l)
	}
	// All-same-x degenerates to the weighted mean.
	l := FitWLS([]Point{{1, 2}, {1, 4}}, []float64{1, 1})
	if l.Slope != 0 || math.Abs(l.Intercept-3) > 1e-12 {
		t.Errorf("degenerate fit = %+v, want flat through 3", l)
	}
	// Zero weights drop points.
	l = FitWLS([]Point{{0, 0}, {1, 1}, {5, 999}}, []float64{1, 1, 0})
	if math.Abs(l.Slope-1) > 1e-9 {
		t.Errorf("zero-weight point influenced fit: %+v", l)
	}
}

func TestLineXFor(t *testing.T) {
	l := Line{Intercept: 0.2, Slope: 0.1}
	x, ok := l.XFor(0.7)
	if !ok || math.Abs(x-5) > 1e-12 {
		t.Errorf("XFor = %v, %v", x, ok)
	}
	if _, ok := (Line{Slope: 0}).XFor(0.5); ok {
		t.Error("flat line claims to reach a target")
	}
	if _, ok := (Line{Slope: -1}).XFor(0.5); ok {
		t.Error("declining line claims to reach a target")
	}
}

func TestJointFitWeighting(t *testing.T) {
	// History says slope 0, real-time says slope 1; with m real-time
	// points the real-time side carries m/(m+1) of the weight.
	hist := []Point{{0, 0.5}, {10, 0.5}}
	rt := []Point{{0, 0}, {10, 10}}
	line := JointFit(hist, rt)
	histOnly := JointFit(hist, nil)
	rtOnly := JointFit(nil, rt)
	if !(histOnly.Slope < line.Slope && line.Slope < rtOnly.Slope) {
		t.Errorf("joint slope %v not between history %v and realtime %v",
			line.Slope, histOnly.Slope, rtOnly.Slope)
	}
	if rtOnly.Slope != 1 {
		t.Errorf("realtime-only slope %v, want 1", rtOnly.Slope)
	}
	if z := JointFit(nil, nil); z.Slope != 0 || z.Intercept != 0 {
		t.Errorf("empty joint fit = %+v", z)
	}
}

func TestSimilarityProperties(t *testing.T) {
	check := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		s := Similarity(x, y)
		if s < 0 || s > 1 {
			return false
		}
		if s != Similarity(y, x) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if Similarity(5, 5) != 1 || Similarity(0, 0) != 1 {
		t.Error("identity similarity must be 1")
	}
	if Similarity(1, 2) != 0.5 {
		t.Errorf("Similarity(1,2) = %v, want 0.5", Similarity(1, 2))
	}
}

func TestEnvelopeConvergence(t *testing.T) {
	e := NewEnvelope(4)
	if e.Converged(0.99) {
		t.Error("empty envelope converged")
	}
	// Growing values: ratio well below 1.
	for _, v := range []float64{1, 2, 3, 4} {
		e.Observe(v)
	}
	if e.Converged(0.99) {
		t.Errorf("growing window converged (ratio %v)", e.Ratio())
	}
	// Stable values converge.
	for i := 0; i < 4; i++ {
		e.Observe(100)
	}
	if !e.Converged(0.99) {
		t.Errorf("stable window not converged (ratio %v)", e.Ratio())
	}
	// Sign change resets confidence.
	e.Observe(-100)
	if e.Ratio() != 0 {
		t.Errorf("sign-change ratio = %v, want 0", e.Ratio())
	}
}

func TestEnvelopeZeroStable(t *testing.T) {
	e := NewEnvelope(3)
	for i := 0; i < 3; i++ {
		e.Observe(0)
	}
	if !e.Converged(0.999) {
		t.Error("constant-zero aggregate not converged")
	}
}

func TestEnvelopeSetComposite(t *testing.T) {
	s := NewEnvelopeSet(3)
	for i := 0; i < 3; i++ {
		s.Observe("stable", 10)
		s.Observe("growing", float64(i+1))
	}
	if s.Converged(0.99) {
		t.Error("set converged while one cell grows")
	}
	acc := s.EstimatedAccuracy()
	if acc <= 0 || acc >= 1 {
		t.Errorf("composite accuracy %v out of (0,1)", acc)
	}
	if s.Cells() != 2 {
		t.Errorf("cells = %d", s.Cells())
	}
}

func seededRepo() *Repository {
	r := NewRepository()
	r.AddDLT(DLTRecord{ID: "exact", Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01,
		Epochs: 10, AccCurve: []float64{0.3, 0.45, 0.56, 0.65, 0.72, 0.78, 0.82, 0.85, 0.87, 0.89},
		PeakMemMB: 3000, EpochSecs: 80})
	r.AddDLT(DLTRecord{ID: "family", Model: "resnet-34", Family: "resnet", Dataset: "cifar10",
		ParamsM: 21.8, BatchSize: 16, Optimizer: "adam", LR: 0.001,
		Epochs: 12, AccCurve: []float64{0.25, 0.4, 0.5, 0.6, 0.68, 0.74, 0.79, 0.83, 0.86, 0.88, 0.9, 0.91},
		PeakMemMB: 4200, EpochSecs: 150})
	r.AddDLT(DLTRecord{ID: "othernet", Model: "lenet", Family: "lenet", Dataset: "cifar10",
		ParamsM: 0.06, BatchSize: 32, Optimizer: "sgd", LR: 0.01,
		Epochs: 8, AccCurve: []float64{0.3, 0.4, 0.48, 0.55, 0.6, 0.63, 0.65, 0.66},
		PeakMemMB: 400, EpochSecs: 20})
	r.AddDLT(DLTRecord{ID: "nlp", Model: "bert-mini", Family: "bert", Dataset: "imdb",
		ParamsM: 11.3, BatchSize: 128, Optimizer: "adam", LR: 0.001,
		Epochs: 5, AccCurve: []float64{0.6, 0.7, 0.75, 0.79, 0.82},
		PeakMemMB: 2600, EpochSecs: 140})
	return r
}

func TestTopKSimilarDLTPrefersExactMatch(t *testing.T) {
	repo := seededRepo()
	q := DLTQuery{Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01}
	recs := repo.TopKSimilarDLT(q, 2)
	if len(recs) != 2 || recs[0].ID != "exact" {
		t.Fatalf("topK = %v", recs)
	}
}

func TestTopKSimilarDLTCrossDatasetFallback(t *testing.T) {
	repo := seededRepo()
	repo.RemoveDLT(func(rec DLTRecord) bool { return rec.Dataset != "imdb" })
	// Only cifar10 records remain; an imdb query falls back to them.
	q := DLTQuery{Model: "bert-mini", Family: "bert", Dataset: "imdb",
		ParamsM: 11.3, BatchSize: 128, Optimizer: "adam", LR: 0.001}
	recs := repo.TopKSimilarDLT(q, 3)
	if len(recs) == 0 {
		t.Fatal("no cross-dataset fallback")
	}
	for _, rec := range recs {
		if rec.Dataset == "imdb" {
			t.Fatal("imdb record survived removal")
		}
	}
}

func TestTEEKnownCurve(t *testing.T) {
	repo := seededRepo()
	tee := NewTEE(repo, 3)
	q := DLTQuery{Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01}
	// Cold start from history only: target 0.85 is reached around epoch 8
	// on the exact record.
	e, ok := tee.EstimateEpochs(q, nil, 0.85)
	if !ok {
		t.Fatal("no estimate from history")
	}
	if e < 5 || e > 14 {
		t.Errorf("cold-start estimate %d, want ≈8", e)
	}
	// With real-time data already past the target, the estimate is the
	// observed epoch count.
	e, ok = tee.EstimateEpochs(q, []float64{0.5, 0.7, 0.86}, 0.85)
	if !ok || e != 3 {
		t.Errorf("past-target estimate = %d, %v; want 3", e, ok)
	}
	if tee.Calls() != 2 || tee.Overhead() <= 0 {
		t.Error("overhead accounting inactive")
	}
}

func TestTEEUnknownWithoutRelevantData(t *testing.T) {
	repo := seededRepo()
	repo.RemoveDLT(func(rec DLTRecord) bool { return rec.Dataset == "cifar10" })
	tee := NewTEE(repo, 3)
	q := DLTQuery{Model: "bert-mini", Family: "bert", Dataset: "imdb",
		ParamsM: 11.3, BatchSize: 128, Optimizer: "adam", LR: 0.001}
	if _, ok := tee.EstimateEpochs(q, []float64{0.6}, 0.8); ok {
		t.Error("trusted a fit with no same-dataset history and 1 real-time point")
	}
	// Enough real-time points restore estimation.
	if _, ok := tee.EstimateEpochs(q, []float64{0.6, 0.7, 0.75, 0.79}, 0.85); !ok {
		t.Error("refused a realtime-rich fit")
	}
}

func TestTMEPredictsWithPadding(t *testing.T) {
	repo := seededRepo()
	tme := NewTME(repo, 3)
	mb, ok := tme.EstimateMB("cifar10", 11.7, 32)
	if !ok {
		t.Fatal("no estimate")
	}
	// Roughly near the similar records' footprints, plus padding.
	if mb < 2000 || mb > 8000 {
		t.Errorf("estimate %v MB implausible", mb)
	}
	if _, ok := tme.EstimateMB("udtreebank", 2, 64); ok {
		t.Error("estimated without same-dataset history")
	}
	if tme.Calls() != 2 {
		t.Errorf("calls = %d", tme.Calls())
	}
}

func TestRepositoryPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	r, err := OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	r.AddDLT(DLTRecord{ID: "x", Model: "lenet", Family: "lenet", Dataset: "cifar10", AccCurve: []float64{0.5}})
	r.AddAQP(AQPRecord{ID: "y", Query: "q1", Class: "light", Curve: []Point{{1, 0.5}}})
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.DLTCount() != 1 || back.AQPCount() != 1 {
		t.Fatalf("reloaded counts %d/%d", back.DLTCount(), back.AQPCount())
	}
	// In-memory repositories ignore Save.
	if err := NewRepository().Save(); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSimilarAQPPrefersSameQuery(t *testing.T) {
	r := NewRepository()
	r.AddAQP(AQPRecord{ID: "same", Query: "q5", Class: "medium", BatchRows: 500})
	r.AddAQP(AQPRecord{ID: "class", Query: "q3", Class: "medium", BatchRows: 500})
	r.AddAQP(AQPRecord{ID: "other", Query: "q1", Class: "light", BatchRows: 500})
	recs := r.TopKSimilarAQP("q5", "medium", 500, 2)
	if len(recs) != 2 || recs[0].ID != "same" || recs[1].ID != "class" {
		t.Fatalf("topK = %+v", recs)
	}
}

func TestRandomProgressBounds(t *testing.T) {
	rp := NewRandomProgress(sim.NewRand(1))
	for i := 0; i < 100; i++ {
		v, ok := rp.EstimateAt("q1", "light", 100, nil, 50)
		if !ok || v < 0 || v >= 1 {
			t.Fatalf("random estimate %v, %v", v, ok)
		}
	}
}

func TestAccuracyProgressJointEstimate(t *testing.T) {
	r := NewRepository()
	r.AddAQP(AQPRecord{ID: "h", Query: "q6", Class: "light", BatchRows: 500,
		Curve: []Point{{100, 0.2}, {200, 0.4}, {300, 0.6}, {400, 0.8}, {500, 1.0}}})
	ap := NewAccuracyProgress(r, 3)
	// Cold start: history only.
	est, ok := ap.EstimateAt("q6", "light", 500, nil, 250)
	if !ok || est < 0.3 || est > 0.7 {
		t.Errorf("cold-start estimate %v, %v; want ≈0.5", est, ok)
	}
	// Estimates are clamped to [0, 1].
	est, _ = ap.EstimateAt("q6", "light", 500, nil, 10000)
	if est > 1 {
		t.Errorf("estimate %v above 1", est)
	}
	if _, ok := NewAccuracyProgress(NewRepository(), 3).EstimateAt("q6", "light", 500, []Point{{1, 0.1}}, 50); ok {
		t.Error("estimated with neither history nor two realtime points")
	}
}

func TestLogSimilarity(t *testing.T) {
	if s := logSimilarity(0.01, 0.01); s != 1 {
		t.Errorf("identical lrs score %v", s)
	}
	near := logSimilarity(0.01, 0.03)
	far := logSimilarity(0.01, 0.00001)
	if near <= far {
		t.Errorf("near-lr %v not above far-lr %v", near, far)
	}
	if far > 0.15 {
		t.Errorf("3-decade distance scores %v, want near zero", far)
	}
	if logSimilarity(0, 0.01) != 0 {
		t.Error("non-positive lr must score 0")
	}
}
