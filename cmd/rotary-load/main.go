// Command rotary-load is the heavy-traffic load generator for the
// serving front end. It has two modes:
//
// External mode drives an already-running rotary-serve endpoint with an
// open-loop arrival process — a simulated population of virtual clients
// (100k+ via -clients) multiplexed over a bounded connection pool —
// and reports p50/p99/p999 submit and status latency measured from each
// request's scheduled arrival (coordinated-omission-aware). SLO flags
// turn the run into a gate: a violated -slo-p99-ms or -min-throughput
// exits non-zero after printing the latency histogram.
//
//	rotary-load -addr /tmp/rotary.sock -rate 2000 -secs 10 -clients 100000 -slo-p99-ms 50
//	rotary-load -addr tcp:127.0.0.1:7070 -codec binary -ops 20000   # closed-loop saturation
//
// Self-bench mode (-self-bench) is the reproducible experiment behind
// BENCH_2.json: it boots two in-process durable servers differing only
// in IngressBatch — 1 (one fsync per submit) versus the batched driver
// (group commit) — drives the identical closed-loop workload at both,
// and writes the throughput ratio plus an open-loop latency soak with a
// large simulated client population:
//
//	rotary-load -self-bench -out BENCH_2.json
//	rotary-load -self-bench -bench-baseline BENCH_2.json    # CI gate vs the committed report
//
// The CI gate scales its thresholds by the fsync calibration embedded
// in the committed report, so a slower CI disk does not fail the gate
// and a faster one does not weaken it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rotary/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-load: ")
	var (
		addr        = flag.String("addr", "", "serve endpoint: Unix socket path, or tcp:host:port / unix:/path spec")
		codec       = flag.String("codec", "binary", "wire codec: json or binary")
		conns       = flag.Int("conns", 64, "connection pool size")
		clients     = flag.Int("clients", 0, "simulated client population multiplexed over the pool (0 = conns)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in submits/sec (0 = closed-loop saturation)")
		ops         = flag.Int("ops", 0, "total requests (0 with -rate derives from -secs)")
		secs        = flag.Float64("secs", 10, "open-loop run duration in seconds")
		statusEvery = flag.Int("status-every", 8, "status-probe an acked job every N requests per connection (0 disables)")
		statement   = flag.String("statement", "", "completion-criteria statement to submit (default a 900s-deadline accuracy target)")
		idPrefix    = flag.String("id-prefix", "", "job/req id namespace (default derived from time)")
		sloP99      = flag.Float64("slo-p99-ms", 0, "gate: fail if submit p99 exceeds this (0 disables)")
		minThrough  = flag.Float64("min-throughput", 0, "gate: fail if acked submits/sec falls below this (0 disables)")
		histOut     = flag.String("hist-out", "", "write the submit-latency histogram to this file (always on gate failure)")

		selfBench = flag.Bool("self-bench", false, "run the BENCH_2 experiment against in-process servers instead of an external endpoint")
		dir       = flag.String("dir", "", "self-bench journal directory (empty = temp dir on the working disk)")
		benchOps  = flag.Int("bench-ops", 4096, "self-bench closed-loop submits per case")
		benchBat  = flag.Int("bench-batch", 64, "self-bench batched case's IngressBatch")
		soakCli   = flag.Int("soak-clients", 100000, "self-bench soak's simulated client population (0 skips the soak)")
		soakRate  = flag.Float64("soak-rate", 2500, "self-bench soak's open-loop rate")
		soakSecs  = flag.Float64("soak-secs", 4, "self-bench soak duration in seconds")
		out       = flag.String("out", "", "write the self-bench report JSON here")
		baseline  = flag.String("bench-baseline", "", "gate the self-bench against this committed report (CI soak job)")
	)
	flag.Parse()

	if *selfBench {
		if err := runSelfBench(*dir, *benchOps, *conns, *benchBat, *soakCli, *soakRate, *soakSecs, *out, *baseline, *histOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *addr == "" {
		log.Println("external mode requires -addr (or use -self-bench)")
		flag.Usage()
		os.Exit(2)
	}
	prefix := *idPrefix
	if prefix == "" {
		prefix = fmt.Sprintf("load%d", time.Now().Unix()%100000)
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:        *addr,
		Codec:       *codec,
		Conns:       *conns,
		Clients:     *clients,
		Rate:        *rate,
		Ops:         *ops,
		Duration:    time.Duration(*secs * float64(time.Second)),
		StatusEvery: *statusEvery,
		Statement:   *statement,
		IDPrefix:    prefix,
	})
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	failed := gate(res, *sloP99, *minThrough)
	if *histOut != "" || failed {
		writeHistogram(*histOut, res)
	}
	if failed {
		os.Exit(1)
	}
}

func printResult(res *loadgen.Result) {
	fmt.Printf("%d submitted over %d conns (%d simulated clients) in %.2fs: %d acked (%.0f/s), %d overloaded, %d refused, %d errors\n",
		res.Submitted, res.Conns, res.Clients, res.Secs, res.Acked, res.Throughput, res.Overloaded, res.Refused, res.Errors)
	fmt.Printf("submit latency ms: p50 %.2f  p90 %.2f  p99 %.2f  p999 %.2f  max %.2f\n",
		res.Submit.P50, res.Submit.P90, res.Submit.P99, res.Submit.P999, res.Submit.Max)
	if res.StatusOps > 0 {
		fmt.Printf("status latency ms: p50 %.2f  p90 %.2f  p99 %.2f  p999 %.2f  max %.2f  (%d probes)\n",
			res.Status.P50, res.Status.P90, res.Status.P99, res.Status.P999, res.Status.Max, res.StatusOps)
	}
}

// gate applies the external-mode SLO flags, reporting each violation.
func gate(res *loadgen.Result, sloP99, minThrough float64) bool {
	failed := false
	if sloP99 > 0 && res.Submit.P99 > sloP99 {
		log.Printf("SLO VIOLATED: submit p99 %.2fms > %.2fms", res.Submit.P99, sloP99)
		failed = true
	}
	if minThrough > 0 && res.Throughput < minThrough {
		log.Printf("SLO VIOLATED: throughput %.0f/s < %.0f/s", res.Throughput, minThrough)
		failed = true
	}
	return failed
}

// writeHistogram emits the latency-distribution artifact (stdout when no
// path was given).
func writeHistogram(path string, res *loadgen.Result) {
	h := res.Histogram()
	if path == "" {
		fmt.Print(h)
		return
	}
	if err := os.WriteFile(path, []byte(h), 0o644); err != nil {
		log.Printf("histogram write: %v", err)
		return
	}
	fmt.Printf("histogram written to %s\n", path)
}

func runSelfBench(dir string, ops, conns, batch, soakCli int, soakRate, soakSecs float64, out, baseline, histOut string) error {
	rep, err := loadgen.RunBench(loadgen.BenchConfig{
		Dir:         dir,
		Ops:         ops,
		Conns:       conns,
		Batch:       batch,
		SoakClients: soakCli,
		SoakRate:    soakRate,
		SoakSecs:    soakSecs,
		Progress:    func(s string) { fmt.Println(s) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("group commit speedup over fsync-per-submit: %.1fx\n", rep.Speedup)
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	if baseline != "" {
		return gateAgainst(rep, baseline, histOut)
	}
	return nil
}

// gateAgainst compares a fresh self-bench run to the committed report.
// The committed numbers were taken on one specific disk; the gate scales
// latency expectations by the fsync-calibration ratio so a slower CI
// volume widens the allowance proportionally instead of flaking, and
// holds the architectural claim (the speedup) to a conservative floor
// that survives runner noise.
func gateAgainst(rep *loadgen.BenchReport, baseline, histOut string) error {
	data, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	var want loadgen.BenchReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", baseline, err)
	}
	scale := 1.0
	if want.FsyncNs > 0 && rep.FsyncNs > 0 {
		scale = float64(rep.FsyncNs) / float64(want.FsyncNs)
		if scale < 1 {
			scale = 1
		}
	}
	failed := false
	// A quarter of the committed speedup, floored at 3x, still proves the
	// group commit is doing its job; a regression to ~1x fails loudly.
	minSpeedup := want.Speedup / 4
	if minSpeedup < 3 {
		minSpeedup = 3
	}
	if rep.Speedup < minSpeedup {
		log.Printf("GATE VIOLATED: speedup %.1fx < %.1fx (committed %.1fx)", rep.Speedup, minSpeedup, want.Speedup)
		failed = true
	}
	if want.Soak != nil && rep.Soak != nil {
		allow := want.Soak.Submit.P99 * 8 * scale
		if rep.Soak.Submit.P99 > allow {
			log.Printf("GATE VIOLATED: soak submit p99 %.2fms > %.2fms (committed %.2fms, fsync scale %.1fx)",
				rep.Soak.Submit.P99, allow, want.Soak.Submit.P99, scale)
			failed = true
		}
	}
	if failed {
		if rep.Soak != nil {
			writeHistogram(histOut, rep.Soak)
		}
		return fmt.Errorf("self-bench gate failed against %s", baseline)
	}
	fmt.Printf("gate passed against %s (speedup %.1fx >= %.1fx, fsync scale %.1fx)\n", baseline, rep.Speedup, minSpeedup, scale)
	return nil
}
