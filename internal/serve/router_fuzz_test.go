package serve

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
)

// FuzzRouterRequest throws arbitrary bytes at the router's request
// surface — malformed JSON, unknown ops, out-of-range and negative
// shard ids, oversized payload fields — with every shard permanently
// un-started (the worst case for every forwarding path). Whatever the
// input, the reply must be a typed Response: a failure always carries a
// machine-readable Code, and the router never panics or wedges.
func FuzzRouterRequest(f *testing.F) {
	seeds := []string{
		`{"op":"health"}`,
		`{"op":"resume","server_epoch":7}`,
		`{"op":"submit","id":"a","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`,
		`{"op":"submit","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`,
		`{"op":"status","id":"a"}`,
		`{"op":"status"}`,
		`{"op":"stats"}`,
		`{"op":"metrics"}`,
		`{"op":"shards"}`,
		`{"op":"advance","seconds":10}`,
		`{"op":"advance","seconds":-5}`,
		`{"op":"migrate","id":"a","shard":7}`,
		`{"op":"migrate","id":"a","shard":-3}`,
		`{"op":"migrate","shard":1}`,
		`{"op":"retire","shard":99}`,
		`{"op":"trace-tail","shard":2,"n":8}`,
		`{"op":"drain"}`,
		`{"op":"bogus"}`,
		`not json at all`,
		`{"op":`,
		`{"op":"submit","id":"` + strings.Repeat("x", 4096) + `"}`,
		`{"op":"submit","shard":9223372036854775807}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		reg := obs.NewRegistry()
		r, err := NewRouter(RouterConfig{
			Socket: filepath.Join(t.TempDir(), "r.sock"),
			Shards: 3,
			Dir:    t.TempDir(),
			Obs:    reg,
			Build: func(int, *core.CheckpointStore) (*core.AQPExecutor, *tpch.Catalog, *obs.Registry, error) {
				return nil, nil, nil, errors.New("fuzz: shards never start")
			},
		})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		resp := r.handleLine(line)
		if !resp.OK && resp.Code == "" {
			t.Fatalf("untyped failure for %q: %+v", line, resp)
		}
		// A second request after whatever the first did (including a drain)
		// must still get a typed answer — no wedged state.
		again := r.handleLine([]byte(`{"op":"health"}`))
		if !again.OK && again.Code == "" {
			t.Fatalf("router wedged after %q: %+v", line, again)
		}
	})
}
