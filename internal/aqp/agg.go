// Package aqp is the online-aggregation engine that stands in for the
// paper's Spark-based progressive query processing system.
//
// The engine processes fact-table rows batch-by-batch (pulled from an
// internal/stream consumer), maintains running grouped aggregates, and
// exposes the two signals Rotary-AQP arbitrates on: the running accuracy
// αc/αf against the final answer (§IV-A) and the job's memory footprint.
// Job state — consumer offsets plus the whole aggregate table — serializes
// for the disk checkpointing the paper describes in §VI.
package aqp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// AggKind identifies an aggregate function over a column.
type AggKind int

// Aggregate kinds supported by the engine; the 22 TPC-H queries use all of
// them.
const (
	Sum AggKind = iota
	Count
	Avg
	Min
	Max
)

// String returns the SQL spelling of k.
func (k AggKind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec declares one output aggregate column of a query.
type AggSpec struct {
	Name string  `json:"name"`
	Kind AggKind `json:"kind"`
	// Weight is the user-assigned column importance from §IV-A ("Rotary-AQP
	// also allows the users to specify the importance of each column by
	// assigning weights"). Zero means equal weight.
	Weight float64 `json:"weight,omitempty"`
}

// cell is the running state of one aggregate in one group. SumSq backs
// the optional confidence intervals of §III-B ("Additional error bounds,
// such as confidence interval, are optional"). Every field is a
// decomposable (mergeable) accumulator, which is what makes partial
// tables combinable: sums and counts add, extrema compare, and the
// pooled variance behind ConfidenceInterval falls out of Sum/SumSq/Count.
type cell struct {
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumsq"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// merge folds o into c. Addition order is caller-fixed (partials merge in
// partition-index order), which keeps the floating-point results
// deterministic.
func (c *cell) merge(o cell) {
	c.Sum += o.Sum
	c.SumSq += o.SumSq
	c.Count += o.Count
	if o.Min < c.Min {
		c.Min = o.Min
	}
	if o.Max > c.Max {
		c.Max = o.Max
	}
}

// cellJSON is the wire form of a cell. Float accumulators are encoded
// through encodeBound so the non-finite values a cell can legitimately
// hold — the ±Inf extrema sentinels of a column that has seen no finite
// value, or a Sum/SumSq that overflowed — survive serialization, which
// encoding/json cannot represent as numbers.
type cellJSON struct {
	Sum   json.RawMessage `json:"sum"`
	SumSq json.RawMessage `json:"sumsq"`
	Count int64           `json:"count"`
	Min   json.RawMessage `json:"min"`
	Max   json.RawMessage `json:"max"`
}

func encodeBound(v float64) json.RawMessage {
	switch {
	case math.IsInf(v, 1):
		return json.RawMessage(`"+Inf"`)
	case math.IsInf(v, -1):
		return json.RawMessage(`"-Inf"`)
	case math.IsNaN(v):
		return json.RawMessage(`"NaN"`)
	default:
		b, _ := json.Marshal(v)
		return b
	}
}

func decodeBound(raw json.RawMessage, def float64) (float64, error) {
	if len(raw) == 0 {
		return def, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		switch s {
		case "+Inf":
			return math.Inf(1), nil
		case "-Inf":
			return math.Inf(-1), nil
		case "NaN":
			return math.NaN(), nil
		default:
			return 0, fmt.Errorf("aqp: bad bound %q", s)
		}
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, err
	}
	return v, nil
}

// MarshalJSON encodes the cell with non-finite values made representable.
func (c cell) MarshalJSON() ([]byte, error) {
	return json.Marshal(cellJSON{
		Sum: encodeBound(c.Sum), SumSq: encodeBound(c.SumSq), Count: c.Count,
		Min: encodeBound(c.Min), Max: encodeBound(c.Max),
	})
}

// UnmarshalJSON decodes the wire form; absent Min/Max restore the empty
// sentinels so later Updates still compare correctly.
func (c *cell) UnmarshalJSON(data []byte) error {
	var w cellJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	sum, err := decodeBound(w.Sum, 0)
	if err != nil {
		return err
	}
	sumSq, err := decodeBound(w.SumSq, 0)
	if err != nil {
		return err
	}
	mn, err := decodeBound(w.Min, math.Inf(1))
	if err != nil {
		return err
	}
	mx, err := decodeBound(w.Max, math.Inf(-1))
	if err != nil {
		return err
	}
	*c = cell{Sum: sum, SumSq: sumSq, Count: w.Count, Min: mn, Max: mx}
	return nil
}

// value reduces the cell under kind.
func (c cell) value(kind AggKind) float64 {
	switch kind {
	case Sum:
		return c.Sum
	case Count:
		return float64(c.Count)
	case Avg:
		if c.Count == 0 {
			return 0
		}
		return c.Sum / float64(c.Count)
	case Min:
		if c.Count == 0 {
			return 0
		}
		return c.Min
	case Max:
		if c.Count == 0 {
			return 0
		}
		return c.Max
	default:
		return 0
	}
}

// GroupTable is the running grouped-aggregate state of one online query.
// It is the unit of checkpointing and the source of the intermediate
// results users see after every batch.
type GroupTable struct {
	specs  []AggSpec
	groups map[string][]cell
}

// NewGroupTable returns an empty table producing the given aggregate
// columns.
func NewGroupTable(specs []AggSpec) *GroupTable {
	if len(specs) == 0 {
		panic("aqp: query must declare at least one aggregate")
	}
	ss := make([]AggSpec, len(specs))
	copy(ss, specs)
	return &GroupTable{specs: ss, groups: make(map[string][]cell)}
}

// Specs returns the table's aggregate columns.
func (t *GroupTable) Specs() []AggSpec {
	out := make([]AggSpec, len(t.specs))
	copy(out, t.specs)
	return out
}

// Update folds one row's values into group. vals must align with the
// declared specs; for Count specs the value is ignored (the row counts).
// A NaN value skips that column for this row (conditional aggregates).
func (t *GroupTable) Update(group string, vals ...float64) {
	if len(vals) != len(t.specs) {
		panic(fmt.Sprintf("aqp: %d values for %d specs", len(vals), len(t.specs)))
	}
	cs, ok := t.groups[group]
	if !ok {
		cs = make([]cell, len(t.specs))
		for i := range cs {
			cs[i] = cell{Min: math.Inf(1), Max: math.Inf(-1)}
		}
		t.groups[group] = cs
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		c := &cs[i]
		c.Sum += v
		c.SumSq += v * v
		c.Count++
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
}

// Merge folds other's running state into t: sums, sum-of-squares, and
// counts add; extrema compare. Merging the partials of a partitioned scan
// reproduces exactly the cell a single table would hold for every kind —
// Sum/Count trivially, Avg and the variance accumulators behind
// ConfidenceInterval because both are derived from the mergeable
// Sum/SumSq/Count triple, Min/Max because comparison is order-free.
//
// Determinism: distinct groups occupy independent cells, so the map
// iteration order inside one Merge call is unobservable; for a single
// cell, the floating-point addition order is the order of the Merge calls
// themselves. Callers that need bit-reproducible results (the parallel
// data path) therefore merge partials in a fixed order — partition index
// order — and get identical bits on every run at every worker width.
//
// The tables must share the same aggregate specs; Merge panics otherwise,
// as mixing tables from different queries is always a programming error.
func (t *GroupTable) Merge(other *GroupTable) {
	if len(other.specs) != len(t.specs) {
		panic(fmt.Sprintf("aqp: merging %d-spec table into %d-spec table", len(other.specs), len(t.specs)))
	}
	for i := range t.specs {
		if t.specs[i].Kind != other.specs[i].Kind {
			panic(fmt.Sprintf("aqp: merge spec %d kind mismatch: %v vs %v", i, t.specs[i].Kind, other.specs[i].Kind))
		}
	}
	for g, ocs := range other.groups {
		cs, ok := t.groups[g]
		if !ok {
			cs = make([]cell, len(ocs))
			copy(cs, ocs)
			t.groups[g] = cs
			continue
		}
		for i := range cs {
			cs[i].merge(ocs[i])
		}
	}
}

// ConfidenceInterval reports the normal-approximation confidence interval
// of one aggregate cell at confidence z (e.g. 1.96 for 95%): for AVG the
// standard error of the sample mean, for SUM/COUNT the Horvitz-Thompson
// scale-up error given the processed fraction of the data. MIN/MAX have
// no distributional error bound and report ok == false, as do cells with
// fewer than two observations.
func (t *GroupTable) ConfidenceInterval(group string, col int, z, fraction float64) (lo, hi float64, ok bool) {
	cs, found := t.groups[group]
	if !found || col < 0 || col >= len(t.specs) {
		return 0, 0, false
	}
	c := cs[col]
	if c.Count < 2 {
		return 0, 0, false
	}
	n := float64(c.Count)
	mean := c.Sum / n
	variance := c.SumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / n)
	switch t.specs[col].Kind {
	case Avg:
		return mean - z*se, mean + z*se, true
	case Sum, Count:
		if fraction <= 0 || fraction > 1 {
			return 0, 0, false
		}
		// Scale-up estimate of the final value with its standard error.
		// Both kinds carry the finite-population correction √(1-fraction):
		// as the progressive sample approaches the full dataset the
		// estimate becomes exact and the interval collapses to a point.
		var est, width float64
		if t.specs[col].Kind == Sum {
			est = c.Sum / fraction
			width = z * se * n * math.Sqrt(1-fraction) / fraction
		} else {
			est = n / fraction
			width = z * math.Sqrt(n*(1-fraction)) / fraction
		}
		return est - width, est + width, true
	default:
		return 0, 0, false
	}
}

// Groups reports the number of groups materialized so far.
func (t *GroupTable) Groups() int { return len(t.groups) }

// Snapshot is an immutable view of the aggregates: group → one value per
// declared spec. It is what users receive after each epoch and what the
// accuracy computation compares against the final answer.
type Snapshot struct {
	Specs  []AggSpec            `json:"specs"`
	Groups map[string][]float64 `json:"groups"`
}

// Snapshot reduces the current running state.
func (t *GroupTable) Snapshot() Snapshot {
	out := Snapshot{Specs: t.Specs(), Groups: make(map[string][]float64, len(t.groups))}
	for g, cs := range t.groups {
		vals := make([]float64, len(cs))
		for i, c := range cs {
			vals[i] = c.value(t.specs[i].Kind)
		}
		out.Groups[g] = vals
	}
	return out
}

// GroupNames returns the snapshot's groups in sorted order.
func (s Snapshot) GroupNames() []string {
	names := make([]string, 0, len(s.Groups))
	for g := range s.Groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// ratio implements the paper's per-column accuracy αc/αf, made symmetric
// so aggregates that approach the final value from above (MIN shrinking,
// AVG oscillating) score in [0, 1] as well. Opposite signs score 0; two
// zeros score 1.
func ratio(current, final float64) float64 {
	const eps = 1e-12
	if math.Abs(final) < eps {
		if math.Abs(current) < eps {
			return 1
		}
		return 0
	}
	if current*final < 0 {
		return 0
	}
	a, b := math.Abs(current), math.Abs(final)
	if a > b {
		a, b = b, a
	}
	return a / b
}

// Accuracy computes the paper's multi-column accuracy of current against
// the final answer: accuracy = (1/k) Σ_k αc^k / αf^k, where each column's
// term averages the per-group ratios over the groups of the final answer
// (a group not yet materialized contributes 0). Column weights from the
// specs are honored; unset (zero) weights mean equal importance, the
// assumption applied in the paper's evaluation.
func Accuracy(current, final Snapshot) float64 {
	if len(final.Specs) == 0 || len(final.Groups) == 0 {
		return 1
	}
	k := len(final.Specs)
	weights := make([]float64, k)
	var wsum float64
	for i, spec := range final.Specs {
		w := spec.Weight
		if w < 0 {
			w = 0
		}
		weights[i] = w
		wsum += w
	}
	if wsum == 0 {
		for i := range weights {
			weights[i] = 1
		}
		wsum = float64(k)
	}
	// Iterate groups in sorted order so the floating-point accumulation is
	// deterministic — checkpoint round trips must reproduce accuracies
	// bit-for-bit.
	names := final.GroupNames()
	var acc float64
	for i := 0; i < k; i++ {
		var colAcc float64
		for _, g := range names {
			fvals := final.Groups[g]
			cvals, ok := current.Groups[g]
			if !ok || i >= len(cvals) || i >= len(fvals) {
				continue
			}
			colAcc += ratio(cvals[i], fvals[i])
		}
		colAcc /= float64(len(final.Groups))
		acc += weights[i] / wsum * colAcc
	}
	if acc > 1 {
		acc = 1
	}
	if acc < 0 {
		acc = 0
	}
	return acc
}

// tableState is the serialized form of a GroupTable.
type tableState struct {
	Specs  []AggSpec         `json:"specs"`
	Groups map[string][]cell `json:"groups"`
}

// MarshalJSON serializes the running state for checkpointing.
func (t *GroupTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableState{Specs: t.specs, Groups: t.groups})
}

// UnmarshalJSON restores a checkpointed running state.
func (t *GroupTable) UnmarshalJSON(data []byte) error {
	var st tableState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Specs) == 0 {
		return fmt.Errorf("aqp: checkpoint has no aggregate specs")
	}
	// Every group must carry exactly one cell per spec: a shorter or
	// longer row would make later Update/Snapshot calls index out of
	// range, so a malformed checkpoint is rejected here instead.
	for g, cs := range st.Groups {
		if len(cs) != len(st.Specs) {
			return fmt.Errorf("aqp: checkpoint group %q has %d cells for %d specs", g, len(cs), len(st.Specs))
		}
	}
	t.specs = st.Specs
	t.groups = st.Groups
	if t.groups == nil {
		t.groups = make(map[string][]cell)
	}
	return nil
}

// StateBytes estimates the in-memory footprint of the running aggregate
// state, used by the memory-consumption estimator to track growth of
// stateful queries (Q17/Q18/Q21-style per-key maps).
func (t *GroupTable) StateBytes() int64 {
	const perGroup = 48 // map bucket + key header
	var b int64
	for g, cs := range t.groups {
		b += int64(len(g)) + perGroup + int64(len(cs))*32
	}
	return b
}
