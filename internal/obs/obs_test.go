package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("test_total", "a counter"); same != c {
		t.Fatal("re-registering a counter must return the shared handle")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if v, ok := r.Value("test_total"); !ok || v != 5 {
		t.Fatalf("Value(test_total) = %g,%v", v, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_secs", "", []float64{1})
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must be inert")
	}
	if reg.RenderText(true) != "" {
		t.Fatal("nil registry must render empty")
	}
	var sink *JSONLSink
	if err := sink.WriteTrace(TraceRecord{}); err != nil {
		t.Fatal(err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_secs", "latency", []float64{1, 2, 5})
	// le semantics: a value exactly on a bound lands in that bound's bucket.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 100, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	text := r.RenderText(false)
	for _, line := range []string{
		`lat_secs_bucket{le="1"} 2`,
		`lat_secs_bucket{le="2"} 4`,
		`lat_secs_bucket{le="5"} 6`,
		`lat_secs_bucket{le="+Inf"} 8`,
		`lat_secs_count 8`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("render missing %q:\n%s", line, text)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_secs", "", []float64{0.1, 1, 10})
			g := r.Gauge(fmt.Sprintf(`conc_gauge{worker="%d"}`, i), "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 100)
				g.Set(float64(j))
				if j%100 == 0 {
					_ = r.RenderText(true)
				}
			}
		}(i)
	}
	wg.Wait()
	if got, _ := r.Value("conc_total"); got != 8000 {
		t.Fatalf("conc_total = %g, want 8000", got)
	}
	h := r.Histogram("conc_secs", "", []float64{0.1, 1, 10})
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// expositionLine matches one valid Prometheus text-format line.
var expositionLine = regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|[+-]Inf|NaN))$`)

func TestRenderTextWellFormedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Inc()
	r.Counter(`a_labeled_total{op="x"}`, "labeled").Inc()
	r.Gauge("c_gauge", "gauge").Set(0.125)
	r.WallGauge("wall_gauge", "wall").Set(42)
	r.Histogram("d_secs", "hist", []float64{1, 10}).Observe(3)

	det := r.RenderText(false)
	if strings.Contains(det, "wall_gauge") {
		t.Fatal("deterministic render must exclude wall metrics")
	}
	all := r.RenderText(true)
	if !strings.Contains(all, "wall_gauge 42") {
		t.Fatalf("full render missing wall gauge:\n%s", all)
	}
	for _, line := range strings.Split(strings.TrimRight(all, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	if det != r.RenderText(false) {
		t.Fatal("render must be stable across calls")
	}
	// Sorted: a_labeled_total before a_total? Names sort lexically; what
	// matters is stability and that each family's header precedes samples.
	if !strings.Contains(all, "# TYPE a_total counter\na_total 1") {
		t.Fatalf("family header must immediately precede its sample:\n%s", all)
	}
}

func TestJSONLSinkFlushOnDrain(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, 1000) // flushEvery larger than writes: only Flush drains
	for i := 0; i < 5; i++ {
		if err := s.WriteTrace(TraceRecord{Seq: uint64(i), Kind: "grant", Job: "j1", At: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("sink flushed early: %d bytes before Flush", buf.Len())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 || rec.Kind != "grant" || rec.Job != "j1" || rec.At != 3 {
		t.Fatalf("bad record: %+v", rec)
	}
	if s.Written() != 5 {
		t.Fatalf("Written = %d, want 5", s.Written())
	}
}

func TestJSONLSinkPeriodicFlush(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, 2)
	s.WriteTrace(TraceRecord{Seq: 0})
	if buf.Len() != 0 {
		t.Fatal("flushed before reaching flushEvery")
	}
	s.WriteTrace(TraceRecord{Seq: 1})
	if buf.Len() == 0 {
		t.Fatal("no flush at flushEvery boundary")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{n: 10}, 1)
	var firstErr error
	for i := 0; i < 10 && firstErr == nil; i++ {
		firstErr = s.WriteTrace(TraceRecord{Detail: strings.Repeat("x", 64)})
	}
	if firstErr == nil {
		t.Fatal("expected a write error")
	}
	if err := s.WriteTrace(TraceRecord{}); err != firstErr {
		t.Fatalf("error not sticky: %v vs %v", err, firstErr)
	}
}

func TestDebugServerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("dbg_total", "debug counter").Add(7)
	d, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		if !expositionLine.MatchString(sc.Text()) {
			t.Fatalf("malformed line %q", sc.Text())
		}
		if sc.Text() == "dbg_total 7" {
			found = true
		}
	}
	if !found {
		t.Fatal("dbg_total 7 not served")
	}
	hz, err := http.Get("http://" + d.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}
}
