// Package diskio is the pluggable disk-I/O layer under Rotary's
// durability machinery: the serve journal's segment files and the
// checkpoint store's atomic writes go through an IO implementation
// instead of calling the os package directly. Production uses OS, a
// zero-cost passthrough. Chaos runs use Faulty, a seeded
// fault-injecting wrapper that deals ENOSPC, EIO, short writes, and
// slow fsyncs from a single seed — the disk-level counterpart of
// internal/faults' checkpoint-level injector, following the same
// conventions: one seed drives every draw, all methods are safe on a
// nil receiver, and Stats reports what was dealt.
package diskio

import (
	"os"
)

// File is the writable-file surface the durability layer needs: append
// writes, fsync, close. It is deliberately narrower than *os.File so a
// fault injector can interpose on exactly the operations that matter
// for crash-safety arguments.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// IO is the filesystem surface under the journal and checkpoint
// writers. Every operation that participates in a durability protocol
// — opening segments, renaming temp files into place, fsyncing
// directories — goes through it, so a fault injector sees every
// opportunity a real failing disk would have.
type IO interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically moves oldpath over newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates inside it
	// durable.
	SyncDir(dir string) error
}

// OS is the production IO: direct passthrough to the os package.
type OS struct{}

// OpenFile implements IO.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements IO.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements IO.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Rename implements IO.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements IO.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements IO.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements IO.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements IO.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
