// Package experiments regenerates every table and figure in the paper's
// evaluation section (§V), plus the ablation studies DESIGN.md calls out.
// Each experiment returns structured results (asserted by tests and
// benchmarks) together with a rendered plain-text report (printed by
// cmd/rotary-bench).
package experiments

import (
	"sync"

	"rotary/internal/tpch"
)

// Config scales the experiments. The defaults reproduce the paper's
// shapes at laptop scale; raising SF and Runs tightens the statistics.
type Config struct {
	// SF is the TPC-H scale factor for the AQP experiments. Virtual-time
	// cost models are SF-invariant, so deadlines behave identically at
	// any scale; SF only trades fidelity for wall-clock time.
	SF float64
	// Seed drives all sampling; Runs-run experiments use Seed, Seed+1, ….
	Seed uint64
	// Runs averages independent runs (the paper averages 3).
	Runs int
	// AQPJobs and DLTJobs size the synthetic workloads (30 in the paper).
	AQPJobs int
	DLTJobs int
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{SF: 0.02, Seed: 1, Runs: 3, AQPJobs: 30, DLTJobs: 30}
}

// catalogCache shares generated datasets across experiments in one
// process: dataset generation plus 22 ground truths dominate setup cost.
var (
	catalogMu    sync.Mutex
	catalogCache = map[catalogKey]*tpch.Catalog{}
)

type catalogKey struct {
	sf   float64
	seed uint64
}

// catalogFor returns a (cached) catalog for the configuration.
func catalogFor(sf float64, seed uint64) *tpch.Catalog {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	key := catalogKey{sf, seed}
	if c, ok := catalogCache[key]; ok {
		return c
	}
	c := tpch.NewCatalog(tpch.Generate(sf, seed), seed)
	catalogCache[key] = c
	return c
}
