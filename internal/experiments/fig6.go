package experiments

import (
	"fmt"
	"strings"
)

// Fig6Result is the attainment comparison of Rotary-AQP against the four
// baselines on the Table I workload (Fig. 6), averaged over cfg.Runs.
type Fig6Result struct {
	Reports map[aqpPolicyName]*AveragedAQPReport
	Text    string
}

// Fig6 regenerates Fig. 6.
func Fig6(cfg Config) (*Fig6Result, error) {
	reports, err := runAQPComparison(cfg, fig6Policies, false, nil)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Reports: reports, Text: renderAveraged("Fig 6: attained AQP jobs (mean of runs)", reports, fig6Policies)}, nil
}

func renderAveraged(title string, reports map[aqpPolicyName]*AveragedAQPReport, order []aqpPolicyName) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	classes := []string{"light", "medium", "heavy", "total"}
	fmt.Fprintf(&b, "%-18s", "policy")
	for _, c := range classes {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, p := range order {
		r := reports[p]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "%-18s", r.Policy)
		for _, c := range classes {
			fmt.Fprintf(&b, "%8.1f/%-5.1f", r.AttainedByClass[c], r.TotalByClass[c])
		}
		if r.Runs > 1 {
			fmt.Fprintf(&b, "  (±%.1f over %d runs)", r.AttainedStddev, r.Runs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7Result is the false-attainment and waiting-time comparison
// (Fig. 7a/7b), averaged over cfg.Runs.
type Fig7Result struct {
	Reports map[aqpPolicyName]*AveragedAQPReport
	Text    string
}

// Fig7 regenerates Fig. 7. It also measures the isolated runtime of every
// job (the waiting-time reference), which makes it the slowest AQP
// experiment.
func Fig7(cfg Config) (*Fig7Result, error) {
	reports, err := runAQPComparison(cfg, fig6Policies, true, nil)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Fig 7: false attainment and average waiting time (mean of runs)\n")
	fmt.Fprintf(&b, "%-18s %16s %18s\n", "policy", "false-attainment", "avg-wait-seconds")
	for _, p := range fig6Policies {
		r := reports[p]
		fmt.Fprintf(&b, "%-18s %16.1f %18.1f\n", r.Policy, r.FalseAttainments, r.AvgWaitSecs)
	}
	return &Fig7Result{Reports: reports, Text: b.String()}, nil
}

// Fig8Result is the skewed-workload comparison (Fig. 8): three
// single-class workloads.
type Fig8Result struct {
	// BySkew maps "light"/"medium"/"heavy" to the per-policy averages.
	BySkew map[string]map[aqpPolicyName]*AveragedAQPReport
	Text   string
}

// Fig8 regenerates Fig. 8: the workloads contain only light, only
// medium, or only heavy jobs.
func Fig8(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{BySkew: map[string]map[aqpPolicyName]*AveragedAQPReport{}}
	var b strings.Builder
	skews := []struct {
		name string
		mix  [3]float64
	}{
		{"light", [3]float64{1, 0, 0}},
		{"medium", [3]float64{0, 1, 0}},
		{"heavy", [3]float64{0, 0, 1}},
	}
	for _, s := range skews {
		mix := s.mix
		reports, err := runAQPComparison(cfg, fig6Policies, false, &mix)
		if err != nil {
			return nil, err
		}
		res.BySkew[s.name] = reports
		b.WriteString(renderAveraged(fmt.Sprintf("Fig 8 (%s-only workload): attained jobs", s.name), reports, fig6Policies))
		b.WriteByte('\n')
	}
	res.Text = b.String()
	return res, nil
}

// Fig9Result is the progress-estimation sensitivity experiment: Rotary-
// AQP with the uniform-random estimator against the real one and the
// simple baselines.
type Fig9Result struct {
	Reports map[aqpPolicyName]*AveragedAQPReport
	Text    string
}

// Fig9 regenerates Fig. 9.
func Fig9(cfg Config) (*Fig9Result, error) {
	policies := []aqpPolicyName{PolicyRotaryAQP, PolicyRandomEst, PolicyEDF, PolicyLAF, PolicyRoundRobin}
	reports, err := runAQPComparison(cfg, policies, false, nil)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Reports: reports,
		Text:    renderAveraged("Fig 9: impact of progress estimation (mean of runs)", reports, policies),
	}, nil
}
