package serve

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// durableHarness rebuilds the full durable stack — journal, retained
// checkpoint store, executor, server — against one on-disk state
// directory, so tests can kill and restart incarnations at will. The
// catalog is regenerated from the same seed each start, matching a real
// daemon restart over the same dataset.
type durableHarness struct {
	dir    string
	socket string

	srv  *Server
	exec *core.AQPExecutor
	wg   *sync.WaitGroup
}

func newDurableHarness(t *testing.T) *durableHarness {
	t.Helper()
	base := t.TempDir()
	return &durableHarness{
		dir:    filepath.Join(base, "state"),
		socket: filepath.Join(base, "rotary.sock"),
	}
}

// start boots one incarnation and waits for the socket.
func (h *durableHarness) start(t *testing.T) {
	t.Helper()
	jl, store, err := OpenDurable(h.dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	cfg.Store = store
	h.exec = core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	h.srv, err = New(Config{Socket: h.socket, Pace: 0, Obs: reg, Journal: jl}, h.exec, cat)
	if err != nil {
		jl.Close()
		t.Fatalf("New (durable): %v", err)
	}
	h.wg = serveAsync(t, h.srv)
}

// kill SIGKILLs the incarnation: no drain, no flush.
func (h *durableHarness) kill(t *testing.T) {
	t.Helper()
	h.srv.Kill()
	h.wg.Wait()
}

// TestRestartRecoversNonTerminalJobs is the core durability property:
// kill the daemon with admitted work in flight, restart over the same
// state directory, and every non-terminal job is re-registered, keeps
// its identity, and still terminates. Terminal jobs stay terminal and
// are not resubmitted.
func TestRestartRecoversNonTerminalJobs(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)

	for _, id := range []string{"live-a", "live-b"} {
		if r := c.call(t, Message{Op: "submit", ID: id, ReqID: "req-" + id,
			Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
			t.Fatalf("submit %s: %+v", id, r)
		}
	}
	// Make some progress, then kill mid-run.
	if r := c.call(t, Message{Op: "advance", Seconds: 5}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	epoch1 := c.call(t, Message{Op: "resume"}).ServerEpoch
	h.kill(t)

	h.start(t)
	c2 := dial(t, h.socket)
	res := c2.call(t, Message{Op: "resume", ServerEpoch: epoch1})
	if !res.OK || res.Code != CodeServerRestarted {
		t.Fatalf("resume after restart: %+v", res)
	}
	if res.ServerEpoch != epoch1+1 {
		t.Fatalf("server epoch %d after restart of epoch %d", res.ServerEpoch, epoch1)
	}
	if res.Recovered != 2 {
		t.Fatalf("recovered %d jobs, want 2", res.Recovered)
	}
	if res.VirtualNow < 5 {
		t.Fatalf("virtual clock rewound to %v, want >= 5", res.VirtualNow)
	}
	// No admitted job silently dropped: both ids still resolve.
	for _, id := range []string{"live-a", "live-b"} {
		if r := c2.call(t, Message{Op: "status", ID: id}); !r.OK {
			t.Fatalf("status %s after restart: %+v", id, r)
		}
	}
	// The recovered run still terminates.
	if r := c2.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	for _, id := range []string{"live-a", "live-b"} {
		r := c2.call(t, Message{Op: "status", ID: id})
		if !r.OK || r.Status == "pending" || r.Status == "running" {
			t.Fatalf("job %s not terminal after deadline: %+v", id, r)
		}
	}
	if rec := h.exec.Recovery(); rec.Reattached != 2 {
		t.Fatalf("executor reattach count %+v, want 2", rec)
	}

	// A third incarnation after a clean kill: the terminal jobs must NOT
	// be re-registered.
	h.kill(t)
	h.start(t)
	c3 := dial(t, h.socket)
	res3 := c3.call(t, Message{Op: "resume"})
	if res3.Recovered != 0 || res3.Jobs != 0 {
		t.Fatalf("terminal jobs re-registered: %+v", res3)
	}
	if r := c3.call(t, Message{Op: "drain"}); !r.OK {
		t.Fatalf("final drain: %+v", r)
	}
}

// TestRestartMatchesUninterruptedRun compares terminal statuses between
// an uninterrupted control run and a run killed and restarted mid-way:
// the durable arbiter must deliver the same outcomes, including the
// infeasible job expiring in both.
func TestRestartMatchesUninterruptedRun(t *testing.T) {
	subs := []struct{ id, stmt string }{
		{"ok-1", "q1 ACC MIN 60% WITHIN 900 SECONDS"},
		{"ok-2", "q6 ACC MIN 55% WITHIN 900 SECONDS"},
		{"tight", "q1 ACC MIN 99% WITHIN 3 SECONDS"},
	}
	run := func(t *testing.T, killAt bool) map[string]string {
		h := newDurableHarness(t)
		h.start(t)
		c := dial(t, h.socket)
		for _, s := range subs {
			if r := c.call(t, Message{Op: "submit", ID: s.id, Statement: s.stmt}); !r.OK {
				t.Fatalf("submit %s: %+v", s.id, r)
			}
		}
		if r := c.call(t, Message{Op: "advance", Seconds: 10}); !r.OK {
			t.Fatalf("advance: %+v", r)
		}
		if killAt {
			h.kill(t)
			h.start(t)
			c = dial(t, h.socket)
		}
		if r := c.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
			t.Fatalf("advance: %+v", r)
		}
		got := map[string]string{}
		for _, s := range subs {
			r := c.call(t, Message{Op: "status", ID: s.id})
			if !r.OK {
				t.Fatalf("status %s: %+v", s.id, r)
			}
			got[s.id] = r.Status
		}
		if r := c.call(t, Message{Op: "drain"}); !r.OK {
			t.Fatalf("drain: %+v", r)
		}
		return got
	}
	control := run(t, false)
	recovered := run(t, true)
	for id, want := range control {
		if recovered[id] != want {
			t.Errorf("job %s: recovered run ended %q, control %q", id, recovered[id], want)
		}
	}
	if control["tight"] != "expired" {
		t.Errorf("infeasible job ended %q in control, want expired", control["tight"])
	}
}

// TestSweepRetainsJournalReferencedCheckpoints is the regression test
// for the startup sweep: a restart mid-run must NOT delete the
// checkpoints of journal-referenced live jobs (their reattach targets),
// while genuinely stale files are still removed.
func TestSweepRetainsJournalReferencedCheckpoints(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)
	// Two competing q1 jobs on one pool: round-robin defers one per
	// round, so both accumulate disk checkpoints.
	for _, id := range []string{"cp-a", "cp-b"} {
		if r := c.call(t, Message{Op: "submit", ID: id, Statement: "q1 ACC MIN 95% WITHIN 900 SECONDS"}); !r.OK {
			t.Fatalf("submit %s: %+v", id, r)
		}
	}
	if r := c.call(t, Message{Op: "advance", Seconds: 120}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	h.kill(t)

	ckptDir := filepath.Join(h.dir, "ckpt")
	before, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if len(before) == 0 {
		t.Fatalf("no checkpoints on disk at kill time — test premise broken")
	}
	// Plant a stale checkpoint no journal record references: the sweep
	// must still clear it.
	stale := filepath.Join(ckptDir, "ghost.ckpt")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	h.start(t) // OpenDurable runs the sweep with the journal's retain set
	after, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	kept := map[string]bool{}
	for _, p := range after {
		kept[filepath.Base(p)] = true
	}
	if kept["ghost.ckpt"] {
		t.Errorf("sweep retained the unreferenced ghost checkpoint")
	}
	for _, p := range before {
		if !kept[filepath.Base(p)] {
			t.Errorf("sweep deleted journal-referenced checkpoint %s", filepath.Base(p))
		}
	}

	// And the retained checkpoints are actually usable: the recovered
	// jobs reattach (rollback to persisted state), not scratch-restart.
	c2 := dial(t, h.socket)
	if r := c2.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	rec := h.exec.Recovery()
	if rec.Reattached != 2 {
		t.Fatalf("reattached %d jobs, want 2 (%+v)", rec.Reattached, rec)
	}
	if rec.ScratchRestarts != 0 {
		t.Fatalf("recovery fell back to %d scratch restarts despite retained checkpoints (%+v)", rec.ScratchRestarts, rec)
	}
	if r := c2.call(t, Message{Op: "drain"}); !r.OK {
		t.Fatalf("drain: %+v", r)
	}
}

// TestScratchFallbackWithoutCheckpoints removes every checkpoint before
// the restart: recovery must degrade to pristine scratch restarts —
// counted, not fatal — and the jobs still terminate.
func TestScratchFallbackWithoutCheckpoints(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)
	for _, id := range []string{"sc-a", "sc-b"} {
		if r := c.call(t, Message{Op: "submit", ID: id, Statement: "q1 ACC MIN 95% WITHIN 900 SECONDS"}); !r.OK {
			t.Fatalf("submit %s: %+v", id, r)
		}
	}
	if r := c.call(t, Message{Op: "advance", Seconds: 120}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	h.kill(t)
	// Simulate losing the checkpoint volume (journal survives).
	ckpts, _ := filepath.Glob(filepath.Join(h.dir, "ckpt", "*.ckpt"))
	for _, p := range ckpts {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	h.start(t)
	c2 := dial(t, h.socket)
	if r := c2.call(t, Message{Op: "resume"}); r.Recovered != 2 {
		t.Fatalf("resume: %+v", r)
	}
	if r := c2.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	rec := h.exec.Recovery()
	if rec.ScratchRestarts != 2 {
		t.Fatalf("scratch restarts %d, want 2 (%+v)", rec.ScratchRestarts, rec)
	}
	for _, id := range []string{"sc-a", "sc-b"} {
		r := c2.call(t, Message{Op: "status", ID: id})
		if !r.OK || r.Status == "pending" || r.Status == "running" {
			t.Fatalf("job %s not terminal after scratch recovery: %+v", id, r)
		}
	}
	if r := c2.call(t, Message{Op: "drain"}); !r.OK {
		t.Fatalf("drain: %+v", r)
	}
}

// TestReqIDDedupeAcrossRestart: a client that lost a submit reply to a
// crash retries with the same req_id against the restarted daemon and
// gets the journaled job back instead of a duplicate.
func TestReqIDDedupeAcrossRestart(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)
	if r := c.call(t, Message{Op: "submit", ID: "dd", ReqID: "retry-1",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	// Same incarnation: the dedupe index answers immediately.
	dup := c.call(t, Message{Op: "submit", ReqID: "retry-1",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !dup.OK || dup.Code != CodeDuplicateRequest || dup.ID != "dd" {
		t.Fatalf("same-incarnation dedupe: %+v", dup)
	}
	h.kill(t)

	h.start(t)
	c2 := dial(t, h.socket)
	// Across the restart: the journal rebuilt the index.
	dup2 := c2.call(t, Message{Op: "submit", ReqID: "retry-1",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !dup2.OK || dup2.Code != CodeDuplicateRequest || dup2.ID != "dd" {
		t.Fatalf("cross-restart dedupe: %+v", dup2)
	}
	if n := len(h.exec.Jobs()); n != 1 {
		t.Fatalf("%d jobs registered after deduped resubmit, want 1", n)
	}
	if r := c2.call(t, Message{Op: "drain"}); !r.OK {
		t.Fatalf("drain: %+v", r)
	}
}

// TestClientReconnectAcrossRestart exercises the resilient client: a
// request issued after the daemon was killed and restarted transparently
// reconnects with backoff, and the resume handshake reports exactly one
// restart.
func TestClientReconnectAcrossRestart(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	cl, err := NewClient(ClientConfig{Socket: h.socket, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	if r, err := cl.Do(Message{Op: "submit", ID: "rc", ReqID: "rc-1",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); err != nil || !r.OK {
		t.Fatalf("submit via client: %v %+v", err, r)
	}
	epoch := cl.ServerEpoch()
	if epoch == 0 {
		t.Fatalf("client never learned the server epoch")
	}

	h.kill(t)
	h.start(t)

	// The old connection is dead; Do must reconnect and succeed.
	r, err := cl.Do(Message{Op: "status", ID: "rc"})
	if err != nil || !r.OK {
		t.Fatalf("status across restart: %v %+v", err, r)
	}
	if cl.Restarts() != 1 {
		t.Fatalf("client observed %d restarts, want 1", cl.Restarts())
	}
	if cl.ServerEpoch() != epoch+1 {
		t.Fatalf("client epoch %d after restart of %d", cl.ServerEpoch(), epoch)
	}
	// An idempotent resubmit through the client dedupes.
	dup, err := cl.Do(Message{Op: "submit", ReqID: "rc-1",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if err != nil || !dup.OK || dup.Code != CodeDuplicateRequest {
		t.Fatalf("client resubmit: %v %+v", err, dup)
	}
	if r, err := cl.Do(Message{Op: "drain"}); err != nil || !r.OK {
		t.Fatalf("drain via client: %v %+v", err, r)
	}
}
