// Tenant quotas: the multi-tenant front door layered under the
// admission controller. Every arrival is attributed to a tenant (empty
// attribution canonicalizes to DefaultTenant) and must clear the
// tenant's quota before the global deadline/queue checks run:
//
//   - a virtual-clock token bucket bounds the tenant's submit rate
//     (RatePerSec refill up to Burst); an arrival finding less than one
//     token is refused with ErrTenantQuotaExceeded and a retry_after
//     hint derived from the refill rate;
//   - MaxActive caps the tenant's concurrently admitted jobs
//     (ErrTenantQuotaExceeded);
//   - MaxPending caps the tenant's queued jobs (ErrTenantQueueFull).
//
// Determinism contract: bucket refill is driven exclusively by the
// virtual clock carried in Request.Now — never wall clock — and bucket
// state mutates only when a token is consumed (final admit). Refusals
// peek at the prospective level without storing it, so the bucket state
// after any prefix of decisions is a pure fold over the admitted
// arrivals' virtual times. That is what lets journal replay rebuild the
// exact bucket (ReplayAdmitted) and what makes quota verdicts
// bit-identical across restarts and fast-path on/off runs.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rotary/internal/obs"
)

// Typed tenant refusal causes. Callers match with errors.Is.
var (
	// ErrTenantQuotaExceeded marks an arrival refused by the tenant's
	// submit-rate bucket or concurrent-job cap.
	ErrTenantQuotaExceeded = errors.New("admission: tenant quota exceeded")
	// ErrTenantQueueFull marks an arrival refused by the tenant's queued-job
	// cap.
	ErrTenantQueueFull = errors.New("admission: tenant queue full")
)

// DefaultTenant is the tenant unattributed work belongs to. Journal
// records written before the tenant dimension existed replay under this
// name, so pre-tenant state directories stay loadable.
const DefaultTenant = "default"

// CanonicalTenant maps an attribution string to its ledger key.
func CanonicalTenant(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// TenantQuota bounds one tenant. Zero-valued fields mean "unlimited"
// (and Weight 0 means the default weight 1), so the zero TenantQuota is
// a no-op quota.
type TenantQuota struct {
	// Weight is the tenant's fair-share weight in the arbitration layer
	// (see core.FairShareAQP); quotas and weights travel together so one
	// -tenants flag configures both. 0 means 1.
	Weight float64
	// RatePerSec refills the submit-rate token bucket; 0 disables the
	// rate check.
	RatePerSec float64
	// Burst caps the bucket (and is its initial level). 0 with a positive
	// RatePerSec means a burst of 1 — strict pacing.
	Burst float64
	// MaxActive caps the tenant's concurrently admitted, non-terminal
	// jobs. 0 means unlimited.
	MaxActive int
	// MaxPending caps the tenant's queued (not yet running) jobs. 0 means
	// unlimited.
	MaxPending int
}

// normalized applies the zero-value defaults.
func (q TenantQuota) normalized() TenantQuota {
	if q.Weight <= 0 {
		q.Weight = 1
	}
	if q.RatePerSec > 0 && q.Burst <= 0 {
		q.Burst = 1
	}
	return q
}

// TenantTable maps tenants to quotas. The zero table disables tenant
// gating entirely (single-tenant deployments pay nothing); a table with
// only Default set applies that quota to every tenant.
type TenantTable struct {
	// Default is the quota for tenants without an explicit entry.
	Default TenantQuota
	// Tenants holds the explicit per-tenant quotas.
	Tenants map[string]TenantQuota
}

// Enabled reports whether the table configures any gating at all.
func (t TenantTable) Enabled() bool {
	return len(t.Tenants) > 0 || t.Default != (TenantQuota{})
}

// Quota resolves the (normalized) quota for a tenant.
func (t TenantTable) Quota(tenant string) TenantQuota {
	if q, ok := t.Tenants[CanonicalTenant(tenant)]; ok {
		return q.normalized()
	}
	return t.Default.normalized()
}

// Weights extracts the fair-share weight map (explicit tenants only;
// the arbitration layer applies the default weight 1 to the rest).
func (t TenantTable) Weights() map[string]float64 {
	if len(t.Tenants) == 0 {
		return nil
	}
	w := make(map[string]float64, len(t.Tenants))
	for name, q := range t.Tenants {
		w[name] = q.normalized().Weight
	}
	return w
}

// ParseTenantSpec parses the -tenants CLI syntax: semicolon-separated
// tenant clauses, each `name:key=value,...` with keys weight, rate,
// burst, max-active, max-pending. The pseudo-tenant `default` sets the
// table's fallback quota. Example:
//
//	alpha:weight=2,rate=5,burst=10,max-active=8;default:rate=1,burst=4
func ParseTenantSpec(spec string) (TenantTable, error) {
	var tbl TenantTable
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return tbl, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, body, ok := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return tbl, fmt.Errorf("admission: tenant spec clause %q: want name:key=value,...", clause)
		}
		var q TenantQuota
		for _, kv := range strings.Split(body, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return tbl, fmt.Errorf("admission: tenant %s: bad assignment %q", name, kv)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || f < 0 {
				return tbl, fmt.Errorf("admission: tenant %s: %s wants a non-negative number, got %q", name, key, val)
			}
			switch strings.TrimSpace(key) {
			case "weight":
				q.Weight = f
			case "rate":
				q.RatePerSec = f
			case "burst":
				q.Burst = f
			case "max-active", "concurrent":
				q.MaxActive = int(f)
			case "max-pending", "queue":
				q.MaxPending = int(f)
			default:
				return tbl, fmt.Errorf("admission: tenant %s: unknown key %q (want weight, rate, burst, max-active, max-pending)", name, key)
			}
		}
		if name == DefaultTenant {
			tbl.Default = q
			continue
		}
		if tbl.Tenants == nil {
			tbl.Tenants = make(map[string]TenantQuota)
		}
		tbl.Tenants[name] = q
	}
	return tbl, nil
}

// TenantStats is one tenant's decision ledger. Every arrival attributed
// to the tenant lands in exactly one of Admitted / RateRejections /
// ActiveCapRejections / QueueCapRejections / Rejected-by-global-checks,
// so Submitted always equals the sum — the reconciliation invariant the
// chaos suite asserts against the obs counters and the journal.
type TenantStats struct {
	Submitted int
	Admitted  int
	// Rejected counts every refusal, tenant-gate or global.
	Rejected int
	// RateRejections / ActiveCapRejections / QueueCapRejections split the
	// tenant-gate refusals by cause.
	RateRejections      int
	ActiveCapRejections int
	QueueCapRejections  int
	// Released counts admitted jobs that have since gone terminal.
	Released int
	// Active is the current admitted, non-terminal job count.
	Active int
}

// tenantMetrics mirrors one tenant's ledger into labeled obs counters.
type tenantMetrics struct {
	submitted *obs.Counter
	admitted  *obs.Counter
	rejected  *obs.Counter
	rateRej   *obs.Counter
	activeRej *obs.Counter
	queueRej  *obs.Counter
	active    *obs.Gauge
}

// tenantLabel sanitizes a tenant id into a legal Prometheus label value
// (the registry's name grammar forbids quotes and backslashes; control
// bytes would corrupt the exposition). Long ids truncate — labels are
// for operators, the ledger keeps the exact id.
func tenantLabel(t string) string {
	var b strings.Builder
	for _, r := range t {
		if r < 0x20 || r == '"' || r == '\\' || r == 0x7f {
			b.WriteByte('_')
		} else {
			b.WriteRune(r)
		}
		if b.Len() >= 64 {
			break
		}
	}
	return b.String()
}

func newTenantMetrics(reg *obs.Registry, tenant string) tenantMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	l := fmt.Sprintf("{tenant=%q}", tenantLabel(tenant))
	const p = "rotary_admission_tenant_"
	return tenantMetrics{
		submitted: reg.Counter(p+"submitted_total"+l, "arrivals attributed to the tenant"),
		admitted:  reg.Counter(p+"admitted_total"+l, "tenant arrivals admitted"),
		rejected:  reg.Counter(p+"rejected_total"+l, "tenant arrivals refused (any cause)"),
		rateRej:   reg.Counter(p+"rate_rejections_total"+l, "tenant arrivals refused by the submit-rate bucket"),
		activeRej: reg.Counter(p+"active_cap_rejections_total"+l, "tenant arrivals refused by the concurrent-job cap"),
		queueRej:  reg.Counter(p+"queue_cap_rejections_total"+l, "tenant arrivals refused by the queued-job cap"),
		active:    reg.Gauge(p+"active_jobs"+l, "tenant's admitted non-terminal jobs"),
	}
}

// tenantState is the controller's per-tenant ledger entry: the token
// bucket, the concurrent-job count, and the decision stats.
type tenantState struct {
	// Token bucket. primed distinguishes "never consumed" (level == Burst
	// regardless of time) from a live bucket; tokens/last only change on
	// consume so replaying the admitted arrivals reproduces them exactly.
	primed bool
	tokens float64
	last   float64

	active int
	stats  TenantStats
	met    tenantMetrics
}

// peek computes the bucket level at virtual time now without mutating
// state.
func (s *tenantState) peek(now float64, q TenantQuota) float64 {
	if !s.primed {
		return q.Burst
	}
	t := s.tokens + (now-s.last)*q.RatePerSec
	if t > q.Burst {
		t = q.Burst
	}
	return t
}

// consume takes one token at virtual time now. Callers check peek first;
// consume never refuses.
func (s *tenantState) consume(now float64, q TenantQuota) {
	s.tokens = s.peek(now, q) - 1
	s.last = now
	s.primed = true
}

// tenant resolves (creating if needed) the ledger entry. Caller holds
// c.mu.
func (c *Controller) tenant(name string) *tenantState {
	name = CanonicalTenant(name)
	st, ok := c.tenants[name]
	if !ok {
		st = &tenantState{met: newTenantMetrics(c.cfg.Obs, name)}
		c.tenants[name] = st
	}
	return st
}

// retryHint estimates how long until the tenant's next token under q.
func retryHint(q TenantQuota, deficit float64) float64 {
	if q.RatePerSec > 0 {
		h := deficit / q.RatePerSec
		if h < 0 {
			h = 0
		}
		return h
	}
	return 1
}

// decideTenant runs the tenant gate for one arrival. Caller holds c.mu.
// A nil return means the arrival cleared its quota; the caller charges
// the bucket only on final admission via chargeTenant.
func (c *Controller) decideTenant(r Request) *Decision {
	st := c.tenant(r.Tenant)
	st.stats.Submitted++
	st.met.submitted.Inc()
	q := c.cfg.Tenants.Quota(r.Tenant)

	if q.RatePerSec > 0 {
		if level := st.peek(r.Now, q); level < 1 {
			st.stats.Rejected++
			st.stats.RateRejections++
			st.met.rejected.Inc()
			st.met.rateRej.Inc()
			c.stats.Rejected++
			c.met.rejected.Inc()
			return &Decision{
				Verdict: RejectJob,
				Err: fmt.Errorf("admission: %s: tenant %s over submit rate (%.2f tokens, rate %.3g/s): %w",
					r.ID, CanonicalTenant(r.Tenant), level, q.RatePerSec, ErrTenantQuotaExceeded),
				Reason:         "tenant-rate",
				RetryAfterSecs: retryHint(q, 1-level),
			}
		}
	}
	if q.MaxActive > 0 && st.active >= q.MaxActive {
		st.stats.Rejected++
		st.stats.ActiveCapRejections++
		st.met.rejected.Inc()
		st.met.activeRej.Inc()
		c.stats.Rejected++
		c.met.rejected.Inc()
		return &Decision{
			Verdict: RejectJob,
			Err: fmt.Errorf("admission: %s: tenant %s at concurrent-job cap %d: %w",
				r.ID, CanonicalTenant(r.Tenant), q.MaxActive, ErrTenantQuotaExceeded),
			Reason:         "tenant-concurrent",
			RetryAfterSecs: retryHint(q, 1),
		}
	}
	if q.MaxPending > 0 && r.TenantPending >= q.MaxPending {
		st.stats.Rejected++
		st.stats.QueueCapRejections++
		st.met.rejected.Inc()
		st.met.queueRej.Inc()
		c.stats.Rejected++
		c.met.rejected.Inc()
		return &Decision{
			Verdict: RejectJob,
			Err: fmt.Errorf("admission: %s: tenant %s queue depth %d at cap %d: %w",
				r.ID, CanonicalTenant(r.Tenant), r.TenantPending, q.MaxPending, ErrTenantQueueFull),
			Reason:         "tenant-queue-full",
			RetryAfterSecs: retryHint(q, 1),
		}
	}
	return nil
}

// chargeTenant books a final admission against the tenant: one token,
// one active slot. Caller holds c.mu.
func (c *Controller) chargeTenant(r Request) {
	if !c.cfg.Tenants.Enabled() {
		return
	}
	st := c.tenant(r.Tenant)
	q := c.cfg.Tenants.Quota(r.Tenant)
	if q.RatePerSec > 0 {
		st.consume(r.Now, q)
	}
	st.active++
	st.stats.Admitted++
	st.met.admitted.Inc()
	st.met.active.Set(float64(st.active))
}

// tenantRejected books a global-check refusal (deadline or shared
// queue) against the tenant's ledger so Submitted keeps reconciling.
// Caller holds c.mu.
func (c *Controller) tenantRejected(r Request) {
	if !c.cfg.Tenants.Enabled() {
		return
	}
	st := c.tenant(r.Tenant)
	st.stats.Rejected++
	st.met.rejected.Inc()
}

// JobDone releases an admitted job's tenant slot when it reaches a
// terminal status. Executors call it for every job that was actually
// admitted (including shed victims); gate-refused arrivals never held a
// slot.
func (c *Controller) JobDone(tenant string) {
	if !c.cfg.Tenants.Enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.tenant(tenant)
	if st.active > 0 {
		st.active--
	}
	st.stats.Released++
	st.met.active.Set(float64(st.active))
}

// AdoptRecovered restores one live job's active slot after a restart.
// Recovery re-registers journaled jobs bypassing the gate, so the
// concurrent-job cap would otherwise leak open. Decision stats are not
// touched — the ledger counts this era's decisions.
func (c *Controller) AdoptRecovered(tenant string) {
	if !c.cfg.Tenants.Enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.tenant(tenant)
	st.active++
	st.met.active.Set(float64(st.active))
}

// ReplayAdmitted rebuilds the token bucket from the journal: one call
// per historically admitted arrival, in arrival order, at its recorded
// virtual time. Stats and caps are untouched — only the bucket fold is
// replayed, reproducing the exact (tokens, last) pair the pre-crash
// controller held so post-restart verdicts are bit-identical.
func (c *Controller) ReplayAdmitted(tenant string, at float64) {
	if !c.cfg.Tenants.Enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.cfg.Tenants.Quota(tenant)
	if q.RatePerSec > 0 {
		c.tenant(tenant).consume(at, q)
	}
}

// TenantStats snapshots every tenant's ledger, keyed by canonical
// tenant id.
func (c *Controller) TenantStats() map[string]TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantStats, len(c.tenants))
	for name, st := range c.tenants {
		s := st.stats
		s.Active = st.active
		out[name] = s
	}
	return out
}

// TenantNames lists the tenants seen so far, sorted.
func (c *Controller) TenantNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
