package diskio

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"rotary/internal/sim"
)

// InjectedError wraps every fault Faulty deals, so tests and invariant
// checkers can distinguish injected faults from real environmental
// failures while errors.Is still matches the underlying errno
// (syscall.ENOSPC, syscall.EIO) through Unwrap.
type InjectedError struct {
	Op    string
	Path  string
	Errno error
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("diskio: injected %s fault on %s: %v", e.Op, e.Path, e.Errno)
}

// Unwrap exposes the simulated errno.
func (e *InjectedError) Unwrap() error { return e.Errno }

// IsInjected reports whether err originated from a Faulty injector.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// FaultConfig sets the disk-fault mix. All rates are per-opportunity
// probabilities in [0, 1): each write, sync, rename, remove, and open
// draws once. A drawn fault can extend into a burst (BurstOps), which
// models an ENOSPC episode — a full disk stays full for a while — and
// is what makes degraded-mode healing meaningful: the journal must
// ride the burst out, not just retry once.
type FaultConfig struct {
	// Seed drives every draw; equal seeds replay identical fault
	// schedules against identical operation sequences.
	Seed uint64
	// WriteFailRate is the probability a write fails with ENOSPC after
	// landing only a short prefix of the buffer — the torn-frame
	// producer.
	WriteFailRate float64
	// SyncFailRate is the probability an fsync fails with EIO.
	SyncFailRate float64
	// RenameFailRate is the probability a rename (the atomic-write
	// commit point) fails with ENOSPC.
	RenameFailRate float64
	// RemoveFailRate is the probability a remove fails with EIO —
	// the orphaned-temp-file producer.
	RemoveFailRate float64
	// OpenFailRate is the probability opening a file for writing fails
	// with ENOSPC.
	OpenFailRate float64
	// SlowSyncRate is the probability an fsync stalls (wall clock) but
	// succeeds.
	SlowSyncRate float64
	// SlowSyncMs bounds the stall: a slow sync sleeps uniform
	// [1, SlowSyncMs] milliseconds. Defaults to 20.
	SlowSyncMs int
	// BurstOps extends a drawn fault over the following BurstOps
	// faultable operations (0 = every fault is a one-shot blip).
	BurstOps int
}

// Stats counts the faults a Faulty has dealt.
type Stats struct {
	Ops         int64
	WriteFails  int64
	ShortWrites int64
	SyncFails   int64
	SlowSyncs   int64
	RenameFails int64
	RemoveFails int64
	OpenFails   int64
}

// Total sums the failure counts (slow syncs excluded: they succeed).
func (s Stats) Total() int64 {
	return s.WriteFails + s.SyncFails + s.RenameFails + s.RemoveFails + s.OpenFails
}

// Faulty wraps an inner IO with seeded fault injection. Reads
// (ReadFile, ReadDir) always pass through: replay and verification see
// the disk as it really is; only the mutating operations that durable
// protocols depend on can fail. Beyond the seeded rates, scripted
// control (ForceFail / Clear / SetEnabled) lets a harness open and
// close deterministic fault windows — the heal proofs need a fault
// that provably clears.
type Faulty struct {
	inner IO

	mu       sync.Mutex
	cfg      FaultConfig
	rng      *sim.Rand
	stats    Stats
	burst    int   // remaining ops in the current fault burst
	burstErr error // errno the burst keeps dealing
	forced   error // scripted: every mutating op fails with this
	disabled bool  // scripted: seeded draws suspended
}

// NewFaulty wraps inner (nil means OS) with the seeded fault mix.
func NewFaulty(inner IO, cfg FaultConfig) *Faulty {
	if inner == nil {
		inner = OS{}
	}
	if cfg.SlowSyncMs <= 0 {
		cfg.SlowSyncMs = 20
	}
	return &Faulty{
		inner: inner,
		cfg:   cfg,
		rng:   sim.NewRand(cfg.Seed ^ 0xd15c10),
	}
}

// ForceFail makes every subsequent mutating operation fail with errno
// (nil selects ENOSPC) until Clear. This is the scripted fault window
// the heal tests and the torture harness use: deterministic onset,
// deterministic clearing.
func (f *Faulty) ForceFail(errno error) {
	if f == nil {
		return
	}
	if errno == nil {
		errno = syscall.ENOSPC
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forced = errno
}

// Clear ends a scripted fault window and any in-flight burst.
func (f *Faulty) Clear() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forced = nil
	f.burst = 0
	f.burstErr = nil
}

// SetEnabled suspends (false) or resumes (true) the seeded draws.
// Scripted ForceFail windows are unaffected.
func (f *Faulty) SetEnabled(on bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disabled = !on
	if !on {
		f.burst = 0
		f.burstErr = nil
	}
}

// Stats returns the counts of faults dealt so far.
func (f *Faulty) Stats() Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// draw decides whether one mutating operation faults, honoring the
// scripted window, then an active burst, then the seeded rate. It
// returns the errno to deal, or nil.
func (f *Faulty) draw(rate float64, errno error) error {
	f.stats.Ops++
	if f.forced != nil {
		return f.forced
	}
	if f.burst > 0 {
		f.burst--
		return f.burstErr
	}
	if f.disabled || rate <= 0 {
		return nil
	}
	if f.rng.Float64() >= rate {
		return nil
	}
	if f.cfg.BurstOps > 0 {
		f.burst = f.cfg.BurstOps
		f.burstErr = errno
	}
	return errno
}

// OpenFile implements IO. Only write-capable opens can fault: read
// opens pass through so replay always sees the real bytes.
func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		f.mu.Lock()
		errno := f.draw(f.cfg.OpenFailRate, syscall.ENOSPC)
		if errno != nil {
			f.stats.OpenFails++
		}
		f.mu.Unlock()
		if errno != nil {
			return nil, &InjectedError{Op: "open", Path: name, Errno: errno}
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{name: name, inner: inner, f: f}, nil
}

// ReadFile implements IO (passthrough).
func (f *Faulty) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir implements IO (passthrough).
func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// Rename implements IO. A faulted rename never moves the file: the
// commit point of the atomic-write protocol simply does not happen,
// leaving the temp file orphaned — exactly the ENOSPC failure mode the
// open-time sweep exists for.
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	errno := f.draw(f.cfg.RenameFailRate, syscall.ENOSPC)
	if errno != nil {
		f.stats.RenameFails++
	}
	f.mu.Unlock()
	if errno != nil {
		return &InjectedError{Op: "rename", Path: newpath, Errno: errno}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements IO.
func (f *Faulty) Remove(name string) error {
	f.mu.Lock()
	errno := f.draw(f.cfg.RemoveFailRate, syscall.EIO)
	if errno != nil {
		f.stats.RemoveFails++
	}
	f.mu.Unlock()
	if errno != nil {
		return &InjectedError{Op: "remove", Path: name, Errno: errno}
	}
	return f.inner.Remove(name)
}

// Truncate implements IO (passthrough: truncation is recovery's tool,
// and recovery faults are modeled at open/write time).
func (f *Faulty) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// MkdirAll implements IO (passthrough).
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// SyncDir implements IO. Directory fsyncs share the sync fault rate:
// a disk that fails file fsyncs fails directory fsyncs too.
func (f *Faulty) SyncDir(dir string) error {
	f.mu.Lock()
	errno := f.draw(f.cfg.SyncFailRate, syscall.EIO)
	if errno != nil {
		f.stats.SyncFails++
	}
	f.mu.Unlock()
	if errno != nil {
		return &InjectedError{Op: "syncdir", Path: dir, Errno: errno}
	}
	return f.inner.SyncDir(dir)
}

// faultyFile interposes on one open file's writes and fsyncs.
type faultyFile struct {
	name  string
	inner File
	f     *Faulty
}

// Write deals ENOSPC with a short prefix actually landing on the inner
// file: the torn-frame scenario a real full disk produces, so recovery
// code sees genuine partial bytes, not a clean miss.
func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.f.mu.Lock()
	errno := ff.f.draw(ff.f.cfg.WriteFailRate, syscall.ENOSPC)
	var short int
	if errno != nil {
		ff.f.stats.WriteFails++
		if len(p) > 1 {
			short = ff.f.rng.IntN(len(p))
		}
		if short > 0 {
			ff.f.stats.ShortWrites++
		}
	}
	ff.f.mu.Unlock()
	if errno != nil {
		n := 0
		if short > 0 {
			n, _ = ff.inner.Write(p[:short])
		}
		return n, &InjectedError{Op: "write", Path: ff.name, Errno: errno}
	}
	return ff.inner.Write(p)
}

// Sync deals EIO failures and wall-clock stalls.
func (ff *faultyFile) Sync() error {
	ff.f.mu.Lock()
	errno := ff.f.draw(ff.f.cfg.SyncFailRate, syscall.EIO)
	var stall time.Duration
	if errno != nil {
		ff.f.stats.SyncFails++
	} else if !ff.f.disabled && ff.f.forced == nil && ff.f.cfg.SlowSyncRate > 0 &&
		ff.f.rng.Float64() < ff.f.cfg.SlowSyncRate {
		ff.f.stats.SlowSyncs++
		stall = time.Duration(1+ff.f.rng.IntN(ff.f.cfg.SlowSyncMs)) * time.Millisecond
	}
	ff.f.mu.Unlock()
	if errno != nil {
		return &InjectedError{Op: "sync", Path: ff.name, Errno: errno}
	}
	if stall > 0 {
		time.Sleep(stall)
	}
	return ff.inner.Sync()
}

// Close passes through: close faults add no crash-safety scenario the
// sync and write faults do not already cover.
func (ff *faultyFile) Close() error { return ff.inner.Close() }
