package core

import (
	"fmt"
	"strings"
	"sync"

	"rotary/internal/obs"
	"rotary/internal/sim"
)

// TraceKind classifies an arbitration event.
type TraceKind int

// Arbitration trace events. The sequence for one job is:
// Arrive → (Grant → EpochDone → [Checkpoint])* → Stop, with Resume before
// any Grant that replays persisted state, Place/OOM on the DLT side.
const (
	TraceArrive TraceKind = iota
	TraceGrant
	TracePlace
	TraceEpochDone
	TraceCheckpoint
	TraceResume
	TraceOOM
	TraceStop
	// TraceCrash and TraceRestart extend the lifecycle under fault
	// injection: Crash interrupts a running epoch (the job rolls back to
	// its last valid checkpoint at the next grant), Restart marks a
	// from-scratch restart after an unrecoverable checkpoint.
	TraceCrash
	TraceRestart
	// TraceReject, TraceShed, and TraceWatchdog extend the lifecycle under
	// overload: Reject refuses an arrival at the admission gate, Shed
	// evicts a queued job to admit a higher-value arrival, Watchdog
	// preempts a running epoch that exceeded its virtual-time budget (the
	// job re-queues with a penalty and rolls back at its next grant).
	TraceReject
	TraceShed
	TraceWatchdog
	// TraceDetach marks a checkpoint-carried migration: the job left this
	// executor for another arbiter shard, which reattaches it to its
	// durable checkpoint and traces the rest of its lifecycle.
	TraceDetach
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceArrive:
		return "arrive"
	case TraceGrant:
		return "grant"
	case TracePlace:
		return "place"
	case TraceEpochDone:
		return "epoch-done"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceResume:
		return "resume"
	case TraceOOM:
		return "oom"
	case TraceStop:
		return "stop"
	case TraceCrash:
		return "crash"
	case TraceRestart:
		return "restart"
	case TraceReject:
		return "reject"
	case TraceShed:
		return "shed"
	case TraceWatchdog:
		return "watchdog"
	case TraceDetach:
		return "detach"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one timestamped arbitration decision or observation.
type TraceEvent struct {
	At   sim.Time
	Kind TraceKind
	Job  string
	// Tenant attributes lifecycle events (arrive/stop/reject/shed) to
	// the job's tenant; empty on events where attribution adds nothing.
	Tenant string
	// Threads (AQP) or Device (DLT) describe the allocation; Detail adds
	// free-form context (status, accuracy, epoch).
	Threads int
	Device  int
	Detail  string
}

// record converts the event to the sink-facing wire form.
func (ev TraceEvent) record(seq uint64) obs.TraceRecord {
	return obs.TraceRecord{
		Seq:     seq,
		At:      ev.At.Seconds(),
		Kind:    ev.Kind.String(),
		Job:     ev.Job,
		Tenant:  ev.Tenant,
		Threads: ev.Threads,
		Device:  ev.Device,
		Detail:  ev.Detail,
	}
}

// Tracer records the arbitration timeline of an executor run. A nil
// Tracer is a no-op, so executors emit unconditionally through Emit.
//
// The zero value keeps the historical batch-run behaviour: an unbounded
// in-memory timeline. NewTracer(capacity) instead bounds memory with a
// ring that keeps the most recent capacity events and counts what it
// overwrote in Dropped() — the required shape for long-lived daemons
// (rotary-serve), where an unbounded slice is a slow leak. Every event,
// kept or dropped, can additionally be streamed through SetSink.
//
// Tracer is safe for concurrent use; in the common single-executor run
// the mutex is uncontended.
type Tracer struct {
	mu       sync.Mutex
	events   []TraceEvent
	capacity int    // 0 = unbounded
	head     int    // ring write position once len(events) == capacity
	dropped  uint64 // events overwritten by the ring
	seq      uint64 // total events emitted, also the sink sequence number
	sink     obs.TraceSink
	sinkErr  error
}

// NewTracer returns a tracer bounded to the given capacity; capacity <= 0
// means unbounded (the zero-value behaviour).
func NewTracer(capacity int) *Tracer {
	if capacity < 0 {
		capacity = 0
	}
	return &Tracer{capacity: capacity}
}

// SetSink tees every subsequent event into sink (nil detaches). The
// first sink error is retained in SinkErr and stops further writes.
func (t *Tracer) SetSink(sink obs.TraceSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = sink
	t.sinkErr = nil
	t.mu.Unlock()
}

// SinkErr reports the first error returned by the attached sink, if any.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Enabled reports whether events emitted to this tracer are observable
// (nil tracers drop everything). Hot paths use it to skip building
// Detail strings — the dominant arbitration-loop allocation — when no
// one is listening.
func (t *Tracer) Enabled() bool { return t != nil }

// Capacity reports the ring bound (0 = unbounded).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// Dropped reports how many events the bounded ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Emit appends an event; nil receivers drop it. With a bounded tracer the
// oldest in-memory event is overwritten once the ring is full (the sink,
// if any, still sees every event in order).
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink != nil && t.sinkErr == nil {
		if err := t.sink.WriteTrace(ev.record(t.seq)); err != nil {
			t.sinkErr = err
		}
	}
	t.seq++
	if t.capacity <= 0 {
		t.events = append(t.events, ev)
		return
	}
	if len(t.events) < t.capacity {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.head] = ev
	t.head = (t.head + 1) % t.capacity
	t.dropped++
}

// snapshot reassembles the timeline in emission order.
func (t *Tracer) snapshot() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Events returns the recorded timeline in order (for a bounded tracer,
// the most recent Capacity events).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshot()
}

// JobEvents returns the timeline of a single job.
func (t *Tracer) JobEvents(jobID string) []TraceEvent {
	if t == nil {
		return nil
	}
	var out []TraceEvent
	for _, ev := range t.Events() {
		if ev.Job == jobID {
			out = append(out, ev)
		}
	}
	return out
}

// Render formats the last n events (all when n <= 0) as a plain-text log.
func (t *Tracer) Render(n int) string {
	events := t.Events()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%10.1fs %-11s %-24s", ev.At.Seconds(), ev.Kind, ev.Job)
		if ev.Threads > 0 {
			fmt.Fprintf(&b, " threads=%d", ev.Threads)
		}
		if ev.Kind == TracePlace || ev.Kind == TraceOOM {
			fmt.Fprintf(&b, " gpu=%d", ev.Device)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, " %s", ev.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
