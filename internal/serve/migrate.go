// Checkpoint-carried live migration, server side: the three protocol ops
// a router sequences to move one job between shards without losing it.
//
//	migrate-out     drain the job to a detachable state and detach it
//	                (source shard; the reply carries the job's journaled
//	                lifecycle record)
//	migrate-in      rebuild the job from that record, journal the handoff,
//	                and re-register it bypassing admission (target shard)
//	migrate-commit  journal the terminal "migrated" status (source shard)
//
// The ordering is chosen so a crash at any point loses no admitted job.
// After migrate-out the source's journal still lists the job as live, so
// a whole-process crash before migrate-in simply recovers it on the
// source at restart — the in-memory detach was never durable. After
// migrate-in the job is durable on the target; a crash before
// migrate-commit recovers it on BOTH shards (bounded duplicate work, the
// safe side of the trade — the commit record is written last precisely so
// the failure mode is duplication, never loss). The checkpoint itself
// travels out of band: the router exports the frame from the source
// store after migrate-out and imports it under the target's namespace
// before migrate-in, so the target's first grant reattaches exactly like
// a crash-restart recovery would.
package serve

import (
	"errors"
	"fmt"

	"rotary/internal/core"
)

// migrateOut drains the job to a detachable state and detaches it from
// this shard's executor, replying with the journaled lifecycle record the
// router hands to the receiving shard. A running job finishes (or is
// preempted out of) its in-flight epoch first, which fast-forwards this
// shard's virtual clock to the end of that epoch — the cost of never
// tearing an epoch mid-flight. A job that reaches a terminal status
// during the drain has nothing left to move: the reply is OK with code
// "migrate-noop" and the terminal status.
func (s *Server) migrateOut(m Message) Response {
	if m.ID == "" {
		return Response{Error: "serve: migrate-out requires a job id", Code: CodeBadRequest}
	}
	if s.jl == nil {
		return Response{Error: "serve: migration requires a journaled (durable) shard", Code: CodeBadRequest}
	}
	j := s.jobIndex[m.ID]
	eng := s.exec.Engine()
	if j == nil {
		// Not registered: either unknown, or terminal before a restart (the
		// journal remembers those) — a terminal job is a migration no-op.
		if jr, ok := s.jl.Job(m.ID); ok {
			return Response{OK: true, ID: m.ID, Status: jr.Status, Code: CodeMigrateNoop,
				VirtualNow: eng.Now().Seconds()}
		}
		return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID), Code: CodeUnknownJob}
	}
	// The journaled record is the handoff payload; fetch it before touching
	// the executor so a journal diverged by append failures refuses the
	// migration instead of detaching a job it cannot describe.
	jr, ok := s.jl.Job(m.ID)
	if !ok {
		return Response{Error: fmt.Sprintf("serve: job %q has no journal record (journal degraded?)", m.ID),
			Code: CodeBadRequest}
	}
	// Drain until the job is queue-resident (detachable): each Step runs
	// the next engine event, completing the in-flight epoch or limbo wait.
	for {
		if st := j.Status(); st.Terminal() {
			s.syncState()
			return Response{OK: true, ID: m.ID, Status: st.String(), Code: CodeMigrateNoop,
				VirtualNow: eng.Now().Seconds()}
		}
		err := s.exec.Detach(m.ID)
		if err == nil {
			// The executor no longer owns the job; drop it from the serve
			// index too, or the freed "srv-*" slot would still read as taken
			// and the status op would shadow the journal's record.
			s.unregisterJob(m.ID)
			break
		}
		if !errors.Is(err, core.ErrNotDetachable) {
			return Response{Error: err.Error(), Code: CodeBadRequest}
		}
		if !eng.Step() {
			// A live job with an empty event queue should be impossible (its
			// deadline watchdog is always scheduled); report rather than spin.
			return Response{Error: fmt.Sprintf("serve: job %q cannot be drained to a detachable state", m.ID),
				Code: CodeMigrateBusy}
		}
	}
	now := eng.Now().Seconds()
	// Journal epochs the drain completed before handing off the record, so
	// the target resumes from the same durable position a crash-restart
	// would. The diff mark goes terminal-shaped only at migrate-commit.
	mark := s.lastJourn[m.ID]
	if mark == nil {
		mark = &jobMark{}
		s.lastJourn[m.ID] = mark
	}
	if e := j.Epochs(); e > mark.epochs {
		s.journal(Record{Kind: recEpoch, ID: m.ID, Epochs: e, At: now})
		mark.epochs = e
	}
	mark.running = false
	s.syncState() // other jobs may have progressed during the drain
	jr.Status = "pending"
	jr.BestEffort = j.BestEffort()
	if e := j.Epochs(); e > jr.Epochs {
		jr.Epochs = e
	}
	return Response{
		OK:         true,
		ID:         m.ID,
		Status:     "pending",
		BestEffort: jr.BestEffort,
		VirtualNow: now,
		Job:        &jr,
	}
}

// migrateIn rebuilds a job another shard detached and registers it here,
// bypassing admission (the job was already admitted by its home shard;
// re-judging it against this shard's load would change the verdict
// history). The handoff is journaled before the executor sees the job —
// the same WAL ordering as submit — with the ORIGINAL arrival time, so
// absolute-deadline arithmetic on any later restart still charges the job
// for time already spent on its home shard. If the router imported a
// checkpoint frame under this shard's namespace first, the first grant
// reattaches to it; otherwise the job restarts from pristine scratch,
// exactly like crash-restart recovery.
func (s *Server) migrateIn(m Message) Response {
	if m.Job == nil || m.Job.ID == "" {
		return Response{Error: "serve: migrate-in requires a job record", Code: CodeBadRequest}
	}
	jr := *m.Job
	if _, ok := s.jobIndex[jr.ID]; ok {
		return Response{Error: fmt.Sprintf("serve: duplicate job id %q", jr.ID), Code: CodeDuplicateRequest}
	}
	if s.jl != nil {
		if prev, ok := s.jl.Job(jr.ID); ok && terminalStatus(prev.Status) {
			return Response{Error: fmt.Sprintf("serve: job %q already terminal here (%s)", jr.ID, prev.Status),
				Code: CodeDuplicateRequest}
		}
		if derr := s.jl.Degraded(); derr != nil {
			// Same write-ahead refusal as submit: a handoff this shard cannot
			// make durable must not be accepted — the router keeps the job on
			// its (still-durable) source shard instead.
			return Response{
				Error:          "serve: journal degraded: " + derr.Error(),
				Code:           CodeJournalDegraded,
				RetryAfterSecs: s.cfg.HealProbeSecs,
			}
		}
	}
	j, err := s.rebuildJob(jr)
	if err != nil {
		return Response{Error: fmt.Sprintf("serve: migrate-in %s: %v", jr.ID, err), Code: CodeBadRequest}
	}
	eng := s.exec.Engine()
	now := eng.Now().Seconds()
	recs := []Record{{Kind: recSubmit, ID: jr.ID, ReqID: jr.ReqID, Statement: jr.Statement,
		BatchRows: jr.BatchRows, At: jr.ArrivalAt}}
	verdict := "admitted"
	if jr.BestEffort {
		verdict = "degraded"
	}
	recs = append(recs, Record{Kind: recVerdict, ID: jr.ID, Status: verdict, At: now})
	if jr.Epochs > 0 {
		recs = append(recs, Record{Kind: recEpoch, ID: jr.ID, Epochs: jr.Epochs, At: now})
	}
	s.journal(recs...)
	// Seed the diff mark at the carried epoch count so migrated progress is
	// not re-journaled; only epochs completed here append records.
	s.lastJourn[jr.ID] = &jobMark{epochs: jr.Epochs}
	if jr.ReqID != "" {
		s.reqIndex[jr.ReqID] = jr.ID
	}
	s.exec.Recover(j, eng.Now(), jr.BestEffort)
	s.registerJob(j)
	// Fire the re-registration and its same-instant arbitration so the
	// reply reports the job's live status on its new shard.
	eng.RunUntil(eng.Now())
	s.syncState()
	return Response{
		OK:         true,
		ID:         jr.ID,
		Status:     j.Status().String(),
		BestEffort: j.BestEffort(),
		VirtualNow: eng.Now().Seconds(),
	}
}

// migrateCommit journals the terminal "migrated" status on the source
// shard — the last step of a migration, written only after the target
// durably holds the job. From here the source's journal stops listing the
// job as live: a restart will not re-register it, the status op reports
// "migrated", and the retain-aware checkpoint sweep may clear its
// orphaned frame. Committing an already-terminal job is an idempotent
// no-op (code "migrate-noop"), so a router retrying after a lost reply is
// safe.
func (s *Server) migrateCommit(m Message) Response {
	if m.ID == "" {
		return Response{Error: "serve: migrate-commit requires a job id", Code: CodeBadRequest}
	}
	if s.jl == nil {
		return Response{Error: "serve: migration requires a journaled (durable) shard", Code: CodeBadRequest}
	}
	jr, ok := s.jl.Job(m.ID)
	if !ok {
		return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID), Code: CodeUnknownJob}
	}
	now := s.exec.Engine().Now().Seconds()
	if terminalStatus(jr.Status) {
		return Response{OK: true, ID: m.ID, Status: jr.Status, Code: CodeMigrateNoop, VirtualNow: now}
	}
	s.journal(Record{Kind: recTerminal, ID: m.ID, Status: "migrated", Epochs: jr.Epochs, At: now})
	mark := s.lastJourn[m.ID]
	if mark == nil {
		mark = &jobMark{}
		s.lastJourn[m.ID] = mark
	}
	mark.terminal = true
	return Response{OK: true, ID: m.ID, Status: "migrated", VirtualNow: now}
}
