package workload

import (
	"testing"

	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
	"rotary/internal/tpch"
)

func testCatalog(t *testing.T) *tpch.Catalog {
	t.Helper()
	return tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
}

func TestGenerateAQPRespectsSpaces(t *testing.T) {
	specs := GenerateAQP(DefaultAQPWorkload(200, 5))
	if len(specs) != 200 {
		t.Fatalf("%d specs", len(specs))
	}
	classCounts := map[tpch.Class]int{}
	prevArrival := -1.0
	for _, s := range specs {
		cls, err := tpch.ClassOf(s.Query)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if cls != s.Class {
			t.Errorf("%s: class %v but query is %v", s.ID, s.Class, cls)
		}
		classCounts[s.Class]++
		found := false
		for _, a := range AccuracyThresholds {
			if s.Accuracy == a {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: accuracy %v outside Table I space", s.ID, s.Accuracy)
		}
		found = false
		for _, d := range DeadlinesByClass[s.Class] {
			if s.DeadlineSecs == d {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: deadline %v outside the %v space", s.ID, s.DeadlineSecs, s.Class)
		}
		if s.ArrivalSecs < prevArrival {
			t.Errorf("arrivals not monotone at %s", s.ID)
		}
		prevArrival = s.ArrivalSecs
	}
	// 40/30/30 mix within sampling tolerance at n=200.
	if f := float64(classCounts[tpch.Light]) / 200; f < 0.30 || f > 0.50 {
		t.Errorf("light fraction %v, want ≈0.40", f)
	}
}

func TestGenerateAQPDeterministic(t *testing.T) {
	a := GenerateAQP(DefaultAQPWorkload(30, 9))
	b := GenerateAQP(DefaultAQPWorkload(30, 9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs between identical seeds", i)
		}
	}
}

func TestBuildAQPJobAllQueries(t *testing.T) {
	cat := testCatalog(t)
	for _, q := range tpch.AllQueries {
		cls, _ := tpch.ClassOf(q)
		spec := AQPSpec{ID: "t-" + q, Query: q, Class: cls, Accuracy: 0.8,
			DeadlineSecs: 600, BatchRows: 200}
		j, err := BuildAQPJob(cat, spec)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if j.EstMemMB() <= 0 {
			t.Errorf("%s: no memory estimate", q)
		}
		if j.Criteria().Kind != criteria.Accuracy {
			t.Errorf("%s: wrong criteria kind", q)
		}
	}
}

func TestGenerateDLTRespectsSpaces(t *testing.T) {
	specs, err := GenerateDLT(DefaultDLTWorkload(200, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 200 {
		t.Fatalf("%d specs", len(specs))
	}
	kindCounts := map[criteria.Kind]int{}
	for _, s := range specs {
		if err := s.Config.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", s.ID, err)
		}
		kindCounts[s.Criteria.Kind]++
		spec, _ := dlt.Lookup(s.Config.Model)
		batches := dlt.BatchSizesCV
		if spec.Domain == dlt.NLP {
			batches = dlt.BatchSizesNLP
		}
		found := false
		for _, b := range batches {
			if s.Config.BatchSize == b {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: batch %d outside its domain space", s.ID, s.Config.BatchSize)
		}
	}
	// 60/20/20 mix within tolerance.
	if f := float64(kindCounts[criteria.Convergence]) / 200; f < 0.50 || f > 0.70 {
		t.Errorf("convergence fraction %v, want ≈0.60", f)
	}
	if f := float64(kindCounts[criteria.Runtime]) / 200; f < 0.12 || f > 0.30 {
		t.Errorf("runtime fraction %v, want ≈0.20", f)
	}
}

func TestBuildDLTJob(t *testing.T) {
	specs, err := GenerateDLT(DefaultDLTWorkload(20, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		j, err := BuildDLTJob(s)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if j.MaxEpochs() < 1 {
			t.Errorf("%s: max epochs %d", s.ID, j.MaxEpochs())
		}
	}
}

func TestSeedDLTHistory(t *testing.T) {
	repo := estimate.NewRepository()
	if err := SeedDLTHistory(repo, 25, 30, 2); err != nil {
		t.Fatal(err)
	}
	if repo.DLTCount() != 25 {
		t.Fatalf("seeded %d records, want 25", repo.DLTCount())
	}
}

func TestSeedAQPHistoryCoversEveryQuery(t *testing.T) {
	cat := testCatalog(t)
	repo := estimate.NewRepository()
	if err := SeedAQPHistory(repo, cat, 500); err != nil {
		t.Fatal(err)
	}
	if repo.AQPCount() != len(tpch.AllQueries) {
		t.Fatalf("seeded %d records, want %d", repo.AQPCount(), len(tpch.AllQueries))
	}
	for _, q := range tpch.AllQueries {
		cls, _ := tpch.ClassOf(q)
		recs := repo.TopKSimilarAQP(q, cls.String(), 500, 1)
		if len(recs) != 1 || recs[0].Query != q {
			t.Errorf("%s: no exact historical record", q)
		}
		curve := recs[0].Curve
		if len(curve) < 5 {
			t.Errorf("%s: history curve too short (%d points)", q, len(curve))
			continue
		}
		if last := curve[len(curve)-1]; last.Y < 0.99 {
			t.Errorf("%s: history curve ends at accuracy %v, want ≈1", q, last.Y)
		}
	}
}

func TestRecommendedBatchRows(t *testing.T) {
	cat := testCatalog(t)
	b := RecommendedBatchRows(cat)
	rows, _ := cat.FactRows("q1")
	batches := rows / b
	if batches < 100 || batches > 400 {
		t.Errorf("full pass is %d batches, want ≈256", batches)
	}
}

func TestDefaultAQPMemoryMBContends(t *testing.T) {
	cat := testCatalog(t)
	budget := DefaultAQPMemoryMB(cat)
	var total float64
	for _, q := range tpch.AllQueries {
		p, _ := cat.MemoryProfile(q)
		total += p.EstimateMB()
	}
	if budget <= 0 || budget >= total {
		t.Errorf("budget %v vs total %v: not a contended pool", budget, total)
	}
}

func TestAQPWorkloadPersistRoundTrip(t *testing.T) {
	path := t.TempDir() + "/w.json"
	specs := GenerateAQP(DefaultAQPWorkload(12, 4))
	if err := SaveAQPSpecs(path, specs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAQPSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("loaded %d specs, want %d", len(back), len(specs))
	}
	for i := range specs {
		if specs[i] != back[i] {
			t.Fatalf("spec %d diverged: %+v vs %+v", i, specs[i], back[i])
		}
	}
	if _, err := LoadDLTSpecs(path); err == nil {
		t.Error("loaded an AQP file as a DLT workload")
	}
}

func TestDLTWorkloadPersistRoundTrip(t *testing.T) {
	path := t.TempDir() + "/w.json"
	specs, err := GenerateDLT(DefaultDLTWorkload(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveDLTSpecs(path, specs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDLTSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("loaded %d specs, want %d", len(back), len(specs))
	}
	for i := range specs {
		if specs[i].ID != back[i].ID || specs[i].Config != back[i].Config ||
			specs[i].Criteria != back[i].Criteria {
			t.Fatalf("spec %d diverged: %+v vs %+v", i, specs[i], back[i])
		}
	}
	if _, err := LoadAQPSpecs(path); err == nil {
		t.Error("loaded a DLT file as an AQP workload")
	}
	if _, err := LoadDLTSpecs(t.TempDir() + "/missing.json"); err == nil {
		t.Error("loaded a missing file")
	}
}
