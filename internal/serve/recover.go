// Crash-restart recovery: how a journaled server rebuilds the previous
// incarnation's arbiter state at startup, and how the running server
// keeps the journal in lockstep with the executor afterwards.
//
// Recovery replays the journal's valid prefix (done by OpenJournal),
// restores the virtual clock to the last journaled position, and
// re-registers every non-terminal job with the executor in original
// arrival order — bypassing the admission gate, since each was already
// admitted by the previous incarnation and re-judging it against the
// post-restart (empty) load would change the verdict history. Each
// recovered job reattaches to its latest durable checkpoint at its first
// grant; when none survived it restarts from pristine scratch, counted in
// RecoveryStats.ScratchRestarts. Deadlines are absolute across restarts:
// a recovered job's remaining budget is (arrival + deadline) − recovered
// clock, never the full deadline again.
package serve

import (
	"fmt"
	"path/filepath"
	"strings"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// OpenDurable opens the durability pair rooted at dir: the write-ahead
// journal (dir/serve.journal) and a disk-only checkpoint store
// (dir/ckpt) whose startup sweep retains every checkpoint the journal
// still references as live — a recovered job's reattach target must
// survive the sweep that would otherwise clear "stale" files from the
// killed incarnation. The store is disk-only (no memory tier) so every
// save is durable by the time the epoch that produced it is journaled.
func OpenDurable(dir string) (*Journal, *core.CheckpointStore, error) {
	jl, err := OpenJournal(dir)
	if err != nil {
		return nil, nil, err
	}
	live := jl.NonTerminalIDs()
	store, err := core.NewCheckpointStoreRetaining(filepath.Join(dir, "ckpt"), 0,
		func(id string) bool { return live[id] })
	if err != nil {
		jl.Close()
		return nil, nil, err
	}
	return jl, store, nil
}

// recoverFromJournal rebuilds the previous incarnation's state (New,
// before the driver starts): clock, req_id dedupe index, journal diff
// marks, and the executor's job registry in original arrival order.
func (s *Server) recoverFromJournal() error {
	rec := s.jl.Recovered()
	eng := s.exec.Engine()
	// RunUntil advances the clock to the deadline even with an empty
	// event queue — the clock-restoration primitive.
	if vn := sim.Time(rec.VirtualNow); vn > eng.Now() {
		eng.RunUntil(vn)
	}
	s.lastClockAt = eng.Now().Seconds()
	// Rebuild the per-tenant admission buckets as a pure fold over the
	// journaled history: one ReplayAdmitted per historically admitted
	// arrival, in arrival order, at each arrival's virtual time. Rejected
	// arrivals never consumed a token, so they are skipped — after this
	// loop the bucket state is bit-identical to the uninterrupted run's.
	// ("submitted" with no verdict — the torn-append window — replays as
	// admitted, matching its re-registration below.)
	if ctrl := s.exec.Admission(); ctrl != nil {
		for _, jr := range rec.Jobs {
			if jr.Status != "rejected" {
				ctrl.ReplayAdmitted(jr.Tenant, jr.ArrivalAt)
			}
		}
	}
	for _, jr := range rec.Jobs {
		if jr.ReqID != "" {
			s.reqIndex[jr.ReqID] = jr.ID
		}
		if terminalStatus(jr.Status) {
			// Terminal in the journal: nothing to re-register, and the diff
			// mark stops syncJournal from ever logging it again.
			s.lastJourn[jr.ID] = &jobMark{terminal: true, epochs: jr.Epochs}
		}
	}
	live := rec.NonTerminal()
	for _, jr := range live {
		j, err := s.rebuildJob(jr)
		if err != nil {
			return fmt.Errorf("serve: recover job %s: %w", jr.ID, err)
		}
		// Seed the mark at the journaled epoch count so replayed progress
		// is not re-journaled; only epochs beyond it append records.
		s.lastJourn[jr.ID] = &jobMark{epochs: jr.Epochs}
		s.exec.Recover(j, eng.Now(), jr.BestEffort)
	}
	// Fire the re-registrations and their same-instant arbitration so the
	// recovered queue is granted before the first client request.
	eng.RunUntil(eng.Now())
	s.recovered = len(live)
	s.met.recoveredJobs.Add(int64(len(live)))
	s.syncJournal()
	return nil
}

// rebuildJob reconstructs one journaled job from its submitted statement,
// with its deadline clipped to what remains of the original budget.
func (s *Server) rebuildJob(jr JobRecord) (*core.AQPJob, error) {
	cmd, crit, err := criteria.Parse(jr.Statement)
	if err != nil {
		return nil, err
	}
	deadline, ok := crit.Deadline.DeadlineSeconds()
	if !ok {
		return nil, fmt.Errorf("serve: journaled job has a non-wall-time deadline")
	}
	query := strings.ToLower(strings.TrimSpace(cmd))
	cls, err := tpch.ClassOf(query)
	if err != nil {
		return nil, err
	}
	// Absolute-deadline arithmetic: (arrival + D) − recovered now. A job
	// whose deadline already passed gets an epsilon budget — it
	// re-registers, its watchdog fires immediately, and it terminates with
	// the same "expired" status the uninterrupted run would have reached.
	remaining := jr.ArrivalAt + deadline - s.exec.Engine().Now().Seconds()
	if remaining < 1e-3 {
		remaining = 1e-3
	}
	batch := jr.BatchRows
	if batch <= 0 {
		batch = s.cfg.BatchRows
	}
	return workload.BuildAQPJob(s.cat, workload.AQPSpec{
		ID:           jr.ID,
		Query:        query,
		Class:        cls,
		Tenant:       jr.Tenant,
		Accuracy:     crit.Threshold,
		DeadlineSecs: remaining,
		BatchRows:    batch,
	})
}

// journal appends records immediately, fsynced before return — the
// WAL-ordering primitive submit uses to log before applying. Append
// failures degrade durability, not availability: the error is surfaced on
// the health op and counted, and the server keeps serving.
func (s *Server) journal(recs ...Record) {
	if s.jl == nil || len(recs) == 0 {
		return
	}
	if err := s.jl.Append(recs...); err != nil {
		s.jlErr = err
		s.met.journalErrors.Inc()
		return
	}
	s.met.journalRecords.Add(int64(len(recs)))
	_, compactions, _ := s.jl.Stats()
	if d := compactions - s.met.journalCompact.Value(); d > 0 {
		s.met.journalCompact.Add(d)
	}
}

// journalClock persists the current clock position unconditionally (the
// advance op's explicit jump).
func (s *Server) journalClock() {
	if s.jl == nil {
		return
	}
	now := s.exec.Engine().Now().Seconds()
	s.journal(Record{Kind: recClock, At: now})
	s.lastClockAt = now
}

// syncJournal diffs the executor's live job state against the last
// journaled position of each job and appends the missing transitions —
// grants, completed epochs, terminal statuses — in one fsynced batch.
// Called from the driver goroutine after every block of virtual-time
// progress (submit, advance, tick, drain), it guarantees the journal
// never lags the state a client could observe, without instrumenting the
// executor's event handlers. A periodic clock record bounds how far an
// idle paced server's restart may rewind time.
func (s *Server) syncJournal() {
	if s.jl == nil {
		return
	}
	now := s.exec.Engine().Now().Seconds()
	var recs []Record
	for _, j := range s.exec.Jobs() {
		id := j.ID()
		mark := s.lastJourn[id]
		if mark == nil {
			mark = &jobMark{}
			s.lastJourn[id] = mark
		}
		if mark.terminal {
			continue
		}
		if e := j.Epochs(); e > mark.epochs {
			recs = append(recs, Record{Kind: recEpoch, ID: id, Epochs: e, At: now})
			mark.epochs = e
			mark.running = false
		}
		st := j.Status()
		if st.Terminal() {
			recs = append(recs, Record{Kind: recTerminal, ID: id, Status: st.String(), Epochs: j.Epochs(), At: now})
			mark.terminal = true
			continue
		}
		if running := st == core.StatusRunning; running != mark.running {
			if running {
				recs = append(recs, Record{Kind: recGrant, ID: id, At: now})
			}
			mark.running = running
		}
	}
	if now-s.lastClockAt >= s.cfg.ClockJournalSecs {
		recs = append(recs, Record{Kind: recClock, At: now})
		s.lastClockAt = now
	}
	s.journal(recs...)
}
