// Heavy-traffic front-end tests: the binary codec, TCP listeners,
// ingress batching with group commit, overload backpressure, and the
// auto-id monotonicity regression.
package serve

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

func TestParseListenAddr(t *testing.T) {
	cases := []struct {
		spec, network, addr string
		wantErr             bool
	}{
		{spec: "tcp:127.0.0.1:7070", network: "tcp", addr: "127.0.0.1:7070"},
		{spec: "tcp::9000", network: "tcp", addr: ":9000"},
		{spec: "unix:/tmp/x.sock", network: "unix", addr: "/tmp/x.sock"},
		{spec: "/tmp/bare.sock", network: "unix", addr: "/tmp/bare.sock"},
		{spec: "tcp:", wantErr: true},
		{spec: "unix:", wantErr: true},
		{spec: "", wantErr: true},
	}
	for _, c := range cases {
		network, addr, err := parseListenAddr(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseListenAddr(%q): want error, got %s/%s", c.spec, network, addr)
			}
			continue
		}
		if err != nil || network != c.network || addr != c.addr {
			t.Errorf("parseListenAddr(%q) = %s/%s/%v, want %s/%s", c.spec, network, addr, err, c.network, c.addr)
		}
	}
}

// TestCodecRoundTrip pushes fully-populated messages and responses
// through the binary payload encoding and back: every field must
// survive, including the nested JobRecord and ShardInfo shapes.
func TestCodecRoundTrip(t *testing.T) {
	jr := &JobRecord{ID: "j1", ReqID: "r1", Statement: "q5 ACC MIN 80% WITHIN 900 SECONDS",
		Tenant: "acme", BatchRows: 512, ArrivalAt: 12.5, Status: "running", BestEffort: true, Epochs: 7}
	msgs := []Message{
		{},
		{Op: "submit", ID: "job-1", ReqID: "req-1", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS",
			Tenant: "t0", BatchRows: 4096, Wall: true, N: 16},
		{Op: "advance", Seconds: 123.25},
		{Op: "resume", ServerEpoch: 42},
		{Op: "migrate-in", Shard: 3, Job: jr},
		{Op: "trace-tail", N: -5},
	}
	for i, m := range msgs {
		got, err := decodeMessage(encodeMessage(m))
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("message %d round trip:\n sent %+v\n got  %+v", i, m, got)
		}
	}
	resps := []Response{
		{},
		{OK: true, ID: "job-1", Status: "running", Tenant: "t0", Accuracy: 0.93, Progress: 0.5,
			BestEffort: true, VirtualNow: 99.5, Jobs: 10, Terminal: 3, Report: "line1\nline2",
			Dropped: 12, ServerEpoch: 4, Recovered: 2, Shard: 1},
		{Error: "serve: overloaded: ingress ring full (64 queued)", Code: CodeOverloaded, RetryAfterSecs: 0.75},
		{OK: true, Job: jr},
		{OK: true, Shards: []ShardInfo{
			{Index: 0, State: "running", Restarts: 1, Jobs: 5, VirtualNow: 10, ServerEpoch: 2},
			{Index: 1, State: "down", Error: "boom"},
		}},
		{OK: true, VirtualNow: -3.5, Jobs: -1},
	}
	for i, r := range resps {
		got, err := decodeResponse(encodeResponse(r))
		if err != nil {
			t.Fatalf("response %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("response %d round trip:\n sent %+v\n got  %+v", i, r, got)
		}
	}
}

// TestCodecDecodeGarbage feeds malformed payloads to both decoders:
// every outcome must be a typed error — never a panic, never a bogus
// success from a truncated buffer.
func TestCodecDecodeGarbage(t *testing.T) {
	valid := encodeMessage(Message{Op: "submit", ID: "x", Seconds: 1.5})
	msgCases := [][]byte{
		{0xff},            // unknown tag
		{mtOp},            // string tag with its value missing
		{mtSeconds, 1, 2}, // truncated float
		valid[:len(valid)-1],
		{mtOp, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // absurd uvarint length
	}
	for i, b := range msgCases {
		if _, err := decodeMessage(b); err == nil {
			t.Errorf("decodeMessage(case %d): want error, got success", i)
		}
	}
	respCases := [][]byte{
		{0xff},
		{rtError},
		{rtVirtualNow, 1, 2, 3},
		encodeResponse(Response{OK: true, Report: "hello"})[:3],
	}
	for i, b := range respCases {
		if _, err := decodeResponse(b); err == nil {
			t.Errorf("decodeResponse(case %d): want error, got success", i)
		}
	}
	// A tagless empty payload is the zero message — valid by construction.
	if m, err := decodeMessage(nil); err != nil || m.Op != "" {
		t.Errorf("decodeMessage(nil) = %+v, %v", m, err)
	}
}

// newTestServerCfg is newTestServer with a config hook applied before
// New.
func newTestServerCfg(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	ecfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	ecfg.Obs = obs.NewRegistry()
	exec := core.NewAQPExecutor(ecfg, baselines.RoundRobinAQP{}, nil)
	socket := filepath.Join(t.TempDir(), "rotary.sock")
	cfg := Config{Socket: socket, Pace: 0, Obs: ecfg.Obs}
	mut(&cfg)
	srv, err := New(cfg, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, cfg.Socket
}

// TestTCPBinaryEndToEnd drives the full protocol over a TCP listener
// with the binary codec on one connection and JSON lines on another:
// both negotiate against the same listener and observe the same jobs.
func TestTCPBinaryEndToEnd(t *testing.T) {
	srv, socket := newTestServerCfg(t, func(cfg *Config) {
		cfg.Listeners = []string{"tcp:127.0.0.1:0"}
	})
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()

	var tcpAddr string
	for _, a := range srv.ListenAddrs() {
		if a.Network() == "tcp" {
			tcpAddr = a.String()
		}
	}
	if tcpAddr == "" {
		t.Fatalf("no TCP listener bound: %v", srv.ListenAddrs())
	}

	bin, err := NewClient(ClientConfig{Socket: "tcp:" + tcpAddr, Codec: CodecBinary})
	if err != nil {
		t.Fatalf("NewClient(binary): %v", err)
	}
	defer bin.Close()
	sub, err := bin.Do(Message{Op: "submit", ID: "tcp-a", ReqID: "req-tcp-a",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if err != nil || !sub.OK {
		t.Fatalf("binary submit: %+v, %v", sub, err)
	}

	// JSON over the same TCP listener: the codec is per connection.
	jsonCl, err := NewClient(ClientConfig{Socket: "tcp:" + tcpAddr})
	if err != nil {
		t.Fatalf("NewClient(json/tcp): %v", err)
	}
	defer jsonCl.Close()
	st, err := jsonCl.Do(Message{Op: "status", ID: "tcp-a"})
	if err != nil || !st.OK {
		t.Fatalf("json status over tcp: %+v, %v", st, err)
	}

	// And the original Unix socket still works alongside.
	c := dial(t, socket)
	if r := c.call(t, Message{Op: "status", ID: "tcp-a"}); !r.OK {
		t.Fatalf("unix status: %+v", r)
	}

	// The binary codec survives the big text payloads too, and the
	// negotiated-codec counter proves the preamble was honored.
	met, err := bin.Do(Message{Op: "metrics"})
	if err != nil || !met.OK {
		t.Fatalf("binary metrics: %+v, %v", met, err)
	}
	if !strings.Contains(met.Report, `rotary_serve_conns_total{codec="binary"}`) {
		t.Fatalf("metrics missing binary conn counter:\n%s", met.Report)
	}
	bad, err := bin.Do(Message{Op: "status", ID: "nope"})
	if err != nil || bad.Code != CodeUnknownJob {
		t.Fatalf("binary unknown-job: %+v, %v", bad, err)
	}
}

// newDurableIngressServer builds one durable incarnation over the
// harness's state dir without starting Serve — for tests that feed the
// ingress ring directly and run the driver by hand.
func newDurableIngressServer(t *testing.T, h *durableHarness, mut func(*Config)) *Server {
	t.Helper()
	jl, store, err := OpenDurable(h.dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	cfg.Store = store
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	scfg := Config{Socket: h.socket, Pace: 0, Obs: reg, Journal: jl}
	mut(&scfg)
	srv, err := New(scfg, exec, cat)
	if err != nil {
		jl.Close()
		t.Fatalf("New (durable): %v", err)
	}
	return srv
}

// TestGroupCommitAmortizesFsync is the tentpole's fsync-amortization
// proof: a burst of submits arriving together must commit under far
// fewer fsyncs than one per request, while IngressBatch=1 (the
// historical request-at-a-time mode) pays the full price — and both
// runs journal exactly the same records.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	const n = 16
	run := func(batch int) (syncs, records, groups int64) {
		t.Helper()
		srv := newDurableIngressServer(t, newDurableHarness(t), func(cfg *Config) { cfg.IngressBatch = batch })
		reqs := make([]request, n)
		for i := range reqs {
			reqs[i] = request{
				msg: Message{Op: "submit", ID: fmt.Sprintf("gc-%03d", i),
					Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"},
				reply: make(chan Response, 1),
			}
			// The ring is buffered: enqueue the whole burst before the driver
			// wakes — exactly the arrival pattern group commit exists for.
			srv.reqCh <- reqs[i]
		}
		go srv.drive()
		for i, r := range reqs {
			if resp := <-r.reply; !resp.OK {
				t.Fatalf("batch=%d submit %d refused: %+v", batch, i, resp)
			}
		}
		syncs, records, groups = srv.jl.SyncStats()
		srv.Kill()
		return syncs, records, groups
	}

	batchedSyncs, batchedRecs, batchedGroups := run(64)
	baseSyncs, baseRecs, _ := run(1)

	if batchedRecs != baseRecs {
		t.Fatalf("group commit changed the journaled history: %d records batched vs %d baseline", batchedRecs, baseRecs)
	}
	if baseSyncs < n {
		t.Fatalf("baseline (IngressBatch=1) ran %d fsyncs for %d submits, want >= %d", baseSyncs, n, n)
	}
	if batchedSyncs*4 > baseSyncs {
		t.Fatalf("group commit did not amortize: %d fsyncs batched vs %d baseline", batchedSyncs, baseSyncs)
	}
	if batchedGroups == 0 {
		t.Fatalf("no multi-record group commits recorded (syncs=%d records=%d)", batchedSyncs, batchedRecs)
	}
}

// TestOverloadedRefusal fills the ingress ring with no driver draining
// it: the next dispatch must refuse with code "overloaded" and a
// positive retry hint instead of blocking the connection handler.
func TestOverloadedRefusal(t *testing.T) {
	srv, _ := newTestServerCfg(t, func(cfg *Config) { cfg.IngressDepth = 2 })
	// No drive() goroutine: the ring only fills.
	for i := 0; i < 2; i++ {
		srv.reqCh <- request{msg: Message{Op: "health"}, reply: make(chan Response, 1)}
	}
	resp := srv.dispatch(Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if resp.Code != CodeOverloaded {
		t.Fatalf("dispatch on a full ring: %+v, want code %q", resp, CodeOverloaded)
	}
	if resp.RetryAfterSecs <= 0 {
		t.Fatalf("overloaded refusal carries no retry hint: %+v", resp)
	}
	if got := srv.met.overloaded.Value(); got != 1 {
		t.Fatalf("overloaded counter = %d, want 1", got)
	}
}

// TestAutoIDAfterMigrateOut is the satellite-3 regression: the
// historical auto-id scheme derived ids from len(exec.Jobs()), so a
// migrate-out (which shrinks the job set) made the next auto submit
// re-mint an id the journal still remembered and bounce an innocent
// client with "duplicate job id". The counter must be monotonic within
// an incarnation and recovered from the journal across restarts.
func TestAutoIDAfterMigrateOut(t *testing.T) {
	h := newDurableHarness(t)
	h.start(t)
	c := dial(t, h.socket)

	first := c.call(t, Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !first.OK || first.ID == "" {
		t.Fatalf("auto submit: %+v", first)
	}
	out := c.call(t, Message{Op: "migrate-out", ID: first.ID})
	if !out.OK || out.Job == nil {
		t.Fatalf("migrate-out %s: %+v", first.ID, out)
	}
	second := c.call(t, Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !second.OK {
		t.Fatalf("auto submit after migrate-out bounced: %+v", second)
	}
	if second.ID == first.ID {
		t.Fatalf("auto id %q re-minted after migrate-out", second.ID)
	}

	// Across a restart the counter recovers past every journaled id —
	// including the migrated-away one.
	h.kill(t)
	h.start(t)
	c2 := dial(t, h.socket)
	third := c2.call(t, Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !third.OK {
		t.Fatalf("auto submit after restart bounced: %+v", third)
	}
	if third.ID == first.ID || third.ID == second.ID {
		t.Fatalf("auto id %q re-minted after restart (existing: %q, %q)", third.ID, first.ID, second.ID)
	}
	if r := c2.call(t, Message{Op: "drain"}); !r.OK {
		t.Fatalf("drain: %+v", r)
	}
}
