package aqp

import (
	"math"
	"testing"
)

// Table-driven edge cases for ConfidenceInterval: the fraction domain
// boundaries, degenerate variance, and starved cells. The fraction == 1
// rows pin the finite-population correction — with the whole dataset
// processed the scale-up estimate is exact, so the interval must collapse
// to a point instead of reporting residual sampling error.
func TestConfidenceIntervalEdgeCases(t *testing.T) {
	constant := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}, {Name: "a", Kind: Avg}})
	for i := 0; i < 100; i++ {
		constant.Update("g", 3, 1, 3)
	}
	varied := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}, {Name: "a", Kind: Avg}})
	for i := 0; i < 100; i++ {
		varied.Update("g", float64(i), 1, float64(i))
	}
	single := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}})
	single.Update("g", 7)
	empty := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}})

	tests := []struct {
		name      string
		gt        *GroupTable
		group     string
		col       int
		fraction  float64
		wantOK    bool
		wantWidth float64 // -1: don't check
		wantMid   float64 // NaN: don't check
	}{
		{"sum at fraction 1 is exact", varied, "g", 0, 1, true, 0, 4950},
		{"count at fraction 1 is exact", varied, "g", 1, 1, true, 0, 100},
		{"avg ignores fraction", varied, "g", 2, 1, true, -1, math.NaN()},
		{"fraction above 1 rejected", varied, "g", 0, 1.5, false, -1, math.NaN()},
		{"fraction zero rejected", varied, "g", 0, 0, false, -1, math.NaN()},
		{"fraction negative rejected", varied, "g", 0, -0.5, false, -1, math.NaN()},
		{"zero variance sum", constant, "g", 0, 0.5, true, 0, 600},
		{"zero variance avg collapses to mean", constant, "g", 2, 0.5, true, 0, 3},
		{"single sample starved", single, "g", 0, 0.5, false, -1, math.NaN()},
		{"empty table", empty, "g", 0, 0.5, false, -1, math.NaN()},
		{"negative column", varied, "g", -1, 0.5, false, -1, math.NaN()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi, ok := tc.gt.ConfidenceInterval(tc.group, tc.col, 1.96, tc.fraction)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if hi < lo {
				t.Fatalf("inverted interval [%v, %v]", lo, hi)
			}
			if tc.wantWidth >= 0 && math.Abs((hi-lo)-tc.wantWidth) > 1e-9 {
				t.Errorf("width = %v, want %v", hi-lo, tc.wantWidth)
			}
			if !math.IsNaN(tc.wantMid) && math.Abs((lo+hi)/2-tc.wantMid) > 1e-9 {
				t.Errorf("midpoint = %v, want %v", (lo+hi)/2, tc.wantMid)
			}
		})
	}
}

// The CI width must shrink monotonically as the processed fraction grows
// — more data can only tighten a scale-up bound — reaching exactly zero
// at fraction 1.
func TestConfidenceIntervalSumWidthShrinksWithFraction(t *testing.T) {
	gt := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}})
	for i := 0; i < 500; i++ {
		gt.Update("g", float64(i%17))
	}
	prev := math.Inf(1)
	for _, f := range []float64{0.1, 0.3, 0.5, 0.8, 0.95, 1} {
		lo, hi, ok := gt.ConfidenceInterval("g", 0, 1.96, f)
		if !ok {
			t.Fatalf("no CI at fraction %v", f)
		}
		if w := hi - lo; w >= prev {
			t.Errorf("width %v at fraction %v did not shrink (was %v)", w, f, prev)
		} else {
			prev = w
		}
	}
	if prev != 0 {
		t.Errorf("width at fraction 1 = %v, want exactly 0", prev)
	}
}

// Table-driven edge cases for Accuracy: empty snapshots, weight
// degeneracies, and group/column mismatches must all stay in [0, 1]
// without panicking.
func TestAccuracyEdgeCases(t *testing.T) {
	specs := []AggSpec{{Name: "x", Kind: Sum}}
	snap := func(groups map[string][]float64) Snapshot {
		return Snapshot{Specs: specs, Groups: groups}
	}
	tests := []struct {
		name    string
		current Snapshot
		final   Snapshot
		want    float64 // NaN: only check bounds
	}{
		{"empty final is trivially attained", snap(map[string][]float64{"a": {1}}), Snapshot{}, 1},
		{"final with no groups is trivially attained", snap(map[string][]float64{"a": {1}}), snap(map[string][]float64{}), 1},
		{"empty current scores zero", snap(map[string][]float64{}), snap(map[string][]float64{"a": {5}}), 0},
		{"both zero counts as exact", snap(map[string][]float64{"a": {0}}), snap(map[string][]float64{"a": {0}}), 1},
		{"zero final nonzero current", snap(map[string][]float64{"a": {3}}), snap(map[string][]float64{"a": {0}}), 0},
		{"overshoot scores symmetrically", snap(map[string][]float64{"a": {200}}), snap(map[string][]float64{"a": {100}}), 0.5},
		{"current missing a column", Snapshot{Specs: specs, Groups: map[string][]float64{"a": {}}},
			snap(map[string][]float64{"a": {5}}), 0},
		{"extra current groups ignored", snap(map[string][]float64{"a": {5}, "zzz": {9}}),
			snap(map[string][]float64{"a": {5}}), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Accuracy(tc.current, tc.final)
			if got < 0 || got > 1 {
				t.Fatalf("accuracy %v outside [0, 1]", got)
			}
			if !math.IsNaN(tc.want) && math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("accuracy = %v, want %v", got, tc.want)
			}
		})
	}
}

// Negative column weights are clamped to zero rather than poisoning the
// normalization; an all-negative weighting falls back to equal weights.
func TestAccuracyWeightClamping(t *testing.T) {
	specs := []AggSpec{{Name: "x", Kind: Sum, Weight: -5}, {Name: "y", Kind: Sum, Weight: 1}}
	final := Snapshot{Specs: specs, Groups: map[string][]float64{"g": {100, 100}}}
	cur := Snapshot{Specs: specs, Groups: map[string][]float64{"g": {0, 100}}}
	// x's negative weight clamps to 0, so only y (exact) counts.
	if got := Accuracy(cur, final); math.Abs(got-1) > 1e-12 {
		t.Errorf("accuracy with clamped negative weight = %v, want 1", got)
	}
	allNeg := []AggSpec{{Name: "x", Kind: Sum, Weight: -1}, {Name: "y", Kind: Sum, Weight: -1}}
	finalN := Snapshot{Specs: allNeg, Groups: map[string][]float64{"g": {100, 100}}}
	curN := Snapshot{Specs: allNeg, Groups: map[string][]float64{"g": {100, 0}}}
	if got := Accuracy(curN, finalN); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("all-negative weights = %v, want equal-weight 0.5", got)
	}
}
