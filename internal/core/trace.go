package core

import (
	"fmt"
	"strings"

	"rotary/internal/sim"
)

// TraceKind classifies an arbitration event.
type TraceKind int

// Arbitration trace events. The sequence for one job is:
// Arrive → (Grant → EpochDone → [Checkpoint])* → Stop, with Resume before
// any Grant that replays persisted state, Place/OOM on the DLT side.
const (
	TraceArrive TraceKind = iota
	TraceGrant
	TracePlace
	TraceEpochDone
	TraceCheckpoint
	TraceResume
	TraceOOM
	TraceStop
	// TraceCrash and TraceRestart extend the lifecycle under fault
	// injection: Crash interrupts a running epoch (the job rolls back to
	// its last valid checkpoint at the next grant), Restart marks a
	// from-scratch restart after an unrecoverable checkpoint.
	TraceCrash
	TraceRestart
	// TraceReject, TraceShed, and TraceWatchdog extend the lifecycle under
	// overload: Reject refuses an arrival at the admission gate, Shed
	// evicts a queued job to admit a higher-value arrival, Watchdog
	// preempts a running epoch that exceeded its virtual-time budget (the
	// job re-queues with a penalty and rolls back at its next grant).
	TraceReject
	TraceShed
	TraceWatchdog
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceArrive:
		return "arrive"
	case TraceGrant:
		return "grant"
	case TracePlace:
		return "place"
	case TraceEpochDone:
		return "epoch-done"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceResume:
		return "resume"
	case TraceOOM:
		return "oom"
	case TraceStop:
		return "stop"
	case TraceCrash:
		return "crash"
	case TraceRestart:
		return "restart"
	case TraceReject:
		return "reject"
	case TraceShed:
		return "shed"
	case TraceWatchdog:
		return "watchdog"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one timestamped arbitration decision or observation.
type TraceEvent struct {
	At   sim.Time
	Kind TraceKind
	Job  string
	// Threads (AQP) or Device (DLT) describe the allocation; Detail adds
	// free-form context (status, accuracy, epoch).
	Threads int
	Device  int
	Detail  string
}

// Tracer records the arbitration timeline of an executor run. A nil
// Tracer is a no-op, so executors emit unconditionally through Emit. The
// zero value is ready to use. Tracer is not safe for concurrent use —
// each executor run owns its tracer (executors are single-threaded over
// the virtual clock).
type Tracer struct {
	events []TraceEvent
}

// Emit appends an event; nil receivers drop it.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the recorded timeline in order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// JobEvents returns the timeline of a single job.
func (t *Tracer) JobEvents(jobID string) []TraceEvent {
	if t == nil {
		return nil
	}
	var out []TraceEvent
	for _, ev := range t.events {
		if ev.Job == jobID {
			out = append(out, ev)
		}
	}
	return out
}

// Render formats the last n events (all when n <= 0) as a plain-text log.
func (t *Tracer) Render(n int) string {
	events := t.Events()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%10.1fs %-11s %-24s", ev.At.Seconds(), ev.Kind, ev.Job)
		if ev.Threads > 0 {
			fmt.Fprintf(&b, " threads=%d", ev.Threads)
		}
		if ev.Kind == TracePlace || ev.Kind == TraceOOM {
			fmt.Fprintf(&b, " gpu=%d", ev.Device)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, " %s", ev.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
