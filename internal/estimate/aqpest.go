package estimate

import (
	"sync"
	"time"
)

// AccuracyProgress is the Rotary-AQP accuracy-progress estimator of
// §IV-A: it predicts the accuracy a job would reach at a future runtime
// by fitting a progress-runtime curve over the top-k similar historical
// jobs jointly with the job's own recorded real-time intermediate
// results (equal-share weighting).
//
// It also serves as the pluggable estimation point for the Fig. 9
// sensitivity experiment: ProgressEstimator is the interface the arbiter
// consumes, and RandomProgress is the misleading uniform-random stand-in.
type AccuracyProgress struct {
	repo *Repository
	topK int

	mu       sync.Mutex
	overhead time.Duration
	calls    int
}

// ProgressEstimator predicts a job's accuracy progress at a future
// runtime from its identity and real-time (runtime, accuracy) history.
type ProgressEstimator interface {
	// EstimateAt predicts the accuracy progress at runtime atSecs. The
	// second result reports whether a meaningful estimate existed.
	EstimateAt(query, class string, batchRows int, realtime []Point, atSecs float64) (float64, bool)
}

// NewAccuracyProgress returns the historical+real-time estimator.
func NewAccuracyProgress(repo *Repository, topK int) *AccuracyProgress {
	if topK < 1 {
		topK = 3
	}
	return &AccuracyProgress{repo: repo, topK: topK}
}

// EstimateAt implements ProgressEstimator.
func (a *AccuracyProgress) EstimateAt(query, class string, batchRows int, realtime []Point, atSecs float64) (float64, bool) {
	start := time.Now()
	defer func() {
		a.mu.Lock()
		a.overhead += time.Since(start)
		a.calls++
		a.mu.Unlock()
	}()

	var hist []Point
	for _, rec := range a.repo.TopKSimilarAQP(query, class, batchRows, a.topK) {
		hist = append(hist, rec.Curve...)
	}
	if len(hist) == 0 && len(realtime) < 2 {
		return 0, false
	}
	if countFinite(hist)+countFinite(realtime) == 0 {
		// An all-NaN series fits the zero line, which would masquerade
		// as a confident "no progress" estimate.
		return 0, false
	}
	line := JointFit(hist, realtime)
	est := line.At(atSecs)
	// A degenerate fit (NaN/Inf coefficients survive clamping — NaN fails
	// both comparisons) must report unknown, not poison the arbiter; the
	// caller falls back to the job's own envelope-based real-time curve.
	if !finite(est) {
		return 0, false
	}
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, true
}

// Overhead reports the cumulative real wall-clock estimation time.
func (a *AccuracyProgress) Overhead() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.overhead
}

// Calls reports how many estimates were made.
func (a *AccuracyProgress) Calls() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

// RandomProgress is the Fig. 9 artificial estimator: "their accuracy
// progress estimator will randomly return the estimated progress
// following a uniform distribution from 0 to 1. Such artificial progress
// estimation is misleading."
type RandomProgress struct {
	mu  sync.Mutex
	src rng
}

type rng interface{ Float64() float64 }

// NewRandomProgress wraps a uniform source (internal/sim.Rand satisfies
// it).
func NewRandomProgress(src interface{ Float64() float64 }) *RandomProgress {
	return &RandomProgress{src: src}
}

// EstimateAt implements ProgressEstimator by ignoring everything and
// returning uniform noise.
func (r *RandomProgress) EstimateAt(string, string, int, []Point, float64) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.src.Float64(), true
}
