// dlt-cluster runs the Table II survey-based DLT workload on a simulated
// 4-GPU cluster under the three Rotary-DLT variants — fairness (T=100%),
// adaptive (T=50%), and efficiency (T=0%) — and prints the Fig. 10-style
// attainment-progress snapshots side by side, showing the
// fairness/efficiency trade the threshold T tunes.
package main

import (
	"fmt"
	"log"

	"rotary"
)

func main() {
	log.SetFlags(0)
	const jobs = 20
	specs, err := rotary.GenerateDLTWorkload(rotary.DefaultDLTWorkload(jobs, 11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survey-based workload: %d jobs\n", jobs)

	variants := []struct {
		label string
		t     float64
	}{
		{"fairness  (T=100%)", 1.0},
		{"adaptive  (T= 50%)", 0.5},
		{"efficiency(T=  0%)", 0.0},
	}
	for _, v := range variants {
		repo := rotary.NewRepository()
		if err := rotary.SeedDLTHistory(repo, 40, 30, 11); err != nil {
			log.Fatal(err)
		}
		sched := rotary.NewRotaryDLT(v.t, rotary.NewTEE(repo, 3), rotary.NewTME(repo, 3))
		exec := rotary.NewDLTExecutor(rotary.DefaultDLTExecConfig(), sched, repo)
		built := make([]*rotary.DLTJob, 0, jobs)
		for _, spec := range specs {
			j, err := rotary.BuildDLTJob(spec)
			if err != nil {
				log.Fatal(err)
			}
			built = append(built, j)
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			log.Fatal(err)
		}

		var times []rotary.Time
		for t := rotary.Time(3600); t < exec.Engine().Now(); t += 3600 {
			times = append(times, t)
		}
		times = append(times, exec.Engine().Now())
		fmt.Printf("\n%s — makespan %.0f min\n", v.label, exec.Engine().Now().Minutes())
		fmt.Printf("%10s %8s %10s %10s %10s\n", "t(min)", "attained", "min-prog", "median", "mean")
		for _, s := range rotary.SnapshotDLT(built, times) {
			fmt.Printf("%10.0f %8d %10.2f %10.2f %10.2f\n",
				s.At.Minutes(), s.Attained, s.Progress.Min, s.Progress.P50, s.Progress.Mean)
		}
	}
	fmt.Println("\nfairness pushes the minimum progress up fastest; efficiency completes")
	fmt.Println("the most jobs early; adaptive switches from the former to the latter")
	fmt.Println("once every job clears the threshold.")
}
