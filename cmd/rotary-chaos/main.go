// Command rotary-chaos runs the composed-fault torture harness: a
// durable arbiter is booted over a fault-injectable disk layer, driven
// with open-loop loadgen traffic, and tortured with a seeded schedule
// composing disk-fault windows (ENOSPC / EIO bursts the journal must
// heal in place), process kills (journal replay must resurrect every
// acked job), and rogue connections (mid-frame drops, stalls, hostile
// bytes). Afterwards the journal chain is audited read-only against the
// durability invariants: no acked record lost, no duplicate job ids,
// monotonic server epochs, and agreement between the resume handshake,
// the obs counters, and an independent journal replay.
//
// Usage:
//
//	rotary-chaos -seeds 1,7,42                 # the CI matrix
//	rotary-chaos -seed 7 -rounds 6 -ops 500    # one long seed
//	rotary-chaos -seeds 1,7,42 -artifacts /tmp/chaos -out report.json
//
// Exit status is non-zero when any seed violates an invariant; the
// per-seed invariant report plus the raw journal segments land under
// -artifacts for offline debugging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rotary/internal/torture"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-chaos: ")
	var (
		seed      = flag.Uint64("seed", 0, "single seed to run (ignored when -seeds is set)")
		seeds     = flag.String("seeds", "", `comma-separated seed matrix, e.g. "1,7,42"`)
		dir       = flag.String("dir", "", "state directory root (default: a fresh temp dir per seed, removed on success)")
		rounds    = flag.Int("rounds", 4, "fault rounds composed per seed (>= 3 covers every fault family)")
		ops       = flag.Int("ops", 120, "open-loop submits per round")
		rate      = flag.Float64("rate", 300, "open-loop arrival rate (submits/sec)")
		conns     = flag.Int("conns", 4, "loadgen connection pool")
		sf        = flag.Float64("sf", 0.005, "TPC-H scale factor for the tortured server")
		artifacts = flag.String("artifacts", "", "directory receiving invariant reports + journal segments on failure")
		out       = flag.String("out", "", "write the full per-seed report matrix as JSON to this file")
		quiet     = flag.Bool("q", false, "suppress per-round progress lines")
	)
	flag.Parse()

	var matrix []uint64
	if *seeds != "" {
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				log.Fatalf("bad -seeds entry %q: %v", part, err)
			}
			matrix = append(matrix, v)
		}
	} else {
		matrix = []uint64{*seed}
	}

	reports := make([]*torture.Report, 0, len(matrix))
	failed := 0
	for _, s := range matrix {
		base := *dir
		if base == "" {
			tmp, err := os.MkdirTemp("", fmt.Sprintf("rotary-chaos-%d-*", s))
			if err != nil {
				log.Fatal(err)
			}
			base = tmp
		} else {
			base = filepath.Join(base, fmt.Sprintf("seed-%d", s))
			if err := os.MkdirAll(base, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		logf := func(format string, args ...any) {
			fmt.Printf("seed %d: %s\n", s, fmt.Sprintf(format, args...))
		}
		if *quiet {
			logf = nil
		}
		fmt.Printf("=== seed %d: %d rounds × %d ops at %g/s ===\n", s, *rounds, *ops, *rate)
		rep, err := torture.Run(torture.Config{
			Seed:        s,
			Dir:         filepath.Join(base, "state"),
			Socket:      filepath.Join(base, "rotary.sock"),
			Rounds:      *rounds,
			Ops:         *ops,
			Rate:        *rate,
			Conns:       *conns,
			SF:          *sf,
			ArtifactDir: *artifacts,
			Logf:        logf,
		})
		if err != nil {
			log.Fatalf("seed %d: %v", s, err)
		}
		reports = append(reports, rep)
		if rep.OK {
			fmt.Printf("seed %d OK: %d acked, %d heals, %d kills, %d conn faults, epochs %v\n",
				s, rep.Acked, rep.Heals, rep.Kills, rep.ConnFaults, rep.Epochs)
			if *dir == "" {
				os.RemoveAll(base)
			}
		} else {
			failed++
			fmt.Printf("seed %d FAILED (%d invariant violations):\n", s, len(rep.Failures))
			for _, f := range rep.Failures {
				fmt.Printf("  - %s\n", f)
			}
			fmt.Printf("  state retained under %s\n", base)
		}
	}

	if *out != "" {
		b, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if failed > 0 {
		log.Fatalf("%d/%d seeds violated durability invariants", failed, len(matrix))
	}
	fmt.Printf("all %d seeds passed\n", len(matrix))
}
