package core

import (
	"errors"
	"fmt"
	"math"

	"rotary/internal/admission"
	"rotary/internal/aqp"
	"rotary/internal/cluster"
	"rotary/internal/estimate"
	"rotary/internal/faults"
	"rotary/internal/obs"
	"rotary/internal/sim"
)

// AQPExecConfig sizes the multi-tenant AQP system. The paper's testbed
// exposes 20 physical cores and 192 GB to Spark.
type AQPExecConfig struct {
	Threads int
	MemMB   float64
	// CheckpointSecsPerMB is the disk checkpoint+restore cost per MB of
	// job state; deferring a job to disk and resuming it later pays
	// 2 × (CheckpointBaseSecs + state·CheckpointSecsPerMB).
	CheckpointSecsPerMB float64
	// CheckpointBaseSecs is the fixed checkpoint/restore latency.
	CheckpointBaseSecs float64
	// RecordHistory appends completed jobs to the repository so later
	// workloads estimate from them.
	RecordHistory bool
	// Store, when set, actually persists deferred jobs' state (stream
	// offsets + aggregate tables) and restores it on resume — §VI's disk
	// checkpointing with an optional memory materialization tier. Resumes
	// served from the memory tier skip the virtual disk-replay cost.
	Store *CheckpointStore
	// Tracer, when set, records the arbitration timeline. Nil adopts the
	// process default tracer if one was installed (SetDefaultTracer).
	Tracer *Tracer
	// Obs selects the metrics registry the executor's counters live in.
	// Nil uses the process-wide obs.Default() — instrumentation is always
	// on; a private registry isolates a run (replay tests do this).
	Obs *obs.Registry
	// Faults, when set, deals deterministic worker crashes into running
	// epochs (checkpoint I/O faults are dealt by arming the Store with the
	// same injector). Fault injection requires a Store: recovery replays
	// persisted state.
	Faults *faults.Injector
	// CrashRecoverySecs is the virtual time between a worker crash and the
	// job rejoining the pending queue (failure detection + worker
	// restart). Defaults to 2s.
	CrashRecoverySecs float64
	// DataParallelism caps the real data-path worker width an epoch may
	// use. A grant's thread count maps to actual goroutines inside
	// OnlineQuery.ProcessBatch (partitioned accumulation with a
	// deterministic merge, see internal/aqp); on machines with fewer
	// cores than the simulated 20-thread testbed this cap keeps the
	// physical fan-out bounded without changing the virtual-time
	// accounting. Zero means grants pass through unclamped.
	DataParallelism int
	// Admission, when set, gates arrivals: jobs whose estimated completion
	// cannot meet their deadline under current load, or that arrive while
	// the active set is at the controller's bound, are refused or shed per
	// the controller's backpressure policy. Nil admits everything (the
	// closed-workload behaviour).
	Admission *admission.Controller
	// WatchdogSlack, when > 0, arms the epoch watchdog: a running epoch is
	// preempted after slack × the job's predicted epoch cost, re-queueing
	// the job with a penalty and a rollback to its last checkpoint. Each
	// consecutive preemption doubles the job's next budget so genuinely
	// long epochs eventually complete. Requires a Store (the rollback
	// replays persisted state). Zero disables the watchdog.
	WatchdogSlack float64
	// WatchdogPenaltySecs is the virtual delay before a preempted job
	// rejoins the queue. Defaults to 5s.
	WatchdogPenaltySecs float64
	// AgingRounds, when > 0, wraps the scheduler in a starvation guard: a
	// pending job passed over for more than AgingRounds consecutive
	// arbitration rounds is forced a minimal grant. Zero leaves the policy
	// unwrapped.
	AgingRounds int
	// FastPath enables the arbitration decision cache (DESIGN.md §11):
	// when the scheduler implements ProfiledAQPScheduler, repeated
	// arbitrations over an identical queue-state signature replay the
	// cached grant template instead of re-running the policy. Decisions
	// are bit-identical either way — the cache key covers every input
	// the policy declares — so this is purely a control-plane
	// optimization. Unprofiled schedulers (including any AgingRounds
	// guard wrap) bypass the cache and behave exactly as before.
	FastPath bool
}

// DefaultAQPExecConfig mirrors the paper's 20-thread server, scaled to a
// memory budget appropriate for the chosen dataset scale factor.
func DefaultAQPExecConfig(memMB float64) AQPExecConfig {
	return AQPExecConfig{
		Threads:             20,
		MemMB:               memMB,
		CheckpointSecsPerMB: 0.02,
		CheckpointBaseSecs:  1.0,
		RecordHistory:       true,
	}
}

// AQPExecutor drives a workload of AQP jobs through a scheduling policy
// over virtual time: Algorithm 1's loop realized as a discrete-event
// program. It owns the thread/memory pool, applies grants, charges epoch
// costs (including checkpoint overheads and memory-oversubscription
// pressure), observes per-epoch state, and stops jobs per the shared
// multi-tenant system rules (estimated attainment, envelope convergence,
// deadline expiry, data exhaustion).
type AQPExecutor struct {
	eng   *sim.Engine
	pool  *cluster.CPUPool
	sched AQPScheduler
	repo  *estimate.Repository
	cfg   AQPExecConfig

	jobs    []*AQPJob
	pending []*AQPJob
	running map[string]*AQPJob
	// limbo counts jobs in neither queue: preempted or crashed, waiting
	// out a penalty/recovery delay before re-enqueueing. Admission counts
	// them — they still occupy a slot of the bounded active set.
	limbo int

	runningEstMem float64
	arbPending    bool
	terminalCount int
	storeErr      error
	rec           RecoveryStats
	overload      OverloadStats
	guard         *StarvationGuardAQP
	met           *execMetrics
	fast          *aqpFastPath

	// Arbitration scratch, reused across rounds so the per-epoch control
	// plane stays allocation-free: the context and its Pending/Running
	// slices are valid only for the duration of one Assign call.
	arbCtx     AQPContext
	arbPend    []*AQPJob
	arbRunning []*AQPJob

	// ownsEngine marks an executor with a private engine (it may Stop the
	// engine when its workload completes); onDone notifies a composing
	// driver (the unified executor) instead.
	ownsEngine bool
	onDone     func()
}

// NewAQPExecutor builds an executor over a fresh engine and pool.
func NewAQPExecutor(cfg AQPExecConfig, sched AQPScheduler, repo *estimate.Repository) *AQPExecutor {
	e := NewAQPExecutorOn(sim.New(), cfg, sched, repo)
	e.ownsEngine = true
	return e
}

// NewAQPExecutorOn builds an executor over an existing engine, so that
// multiple executors (the unified AQP+DLT system of §VI) share one
// virtual clock.
func NewAQPExecutorOn(eng *sim.Engine, cfg AQPExecConfig, sched AQPScheduler, repo *estimate.Repository) *AQPExecutor {
	if cfg.Threads <= 0 {
		cfg.Threads = 20
	}
	if cfg.MemMB <= 0 {
		cfg.MemMB = 8192
	}
	if repo == nil {
		repo = estimate.NewRepository()
	}
	if cfg.CrashRecoverySecs <= 0 {
		cfg.CrashRecoverySecs = 2
	}
	if cfg.WatchdogPenaltySecs <= 0 {
		cfg.WatchdogPenaltySecs = 5
	}
	if cfg.Tracer == nil {
		cfg.Tracer = defaultTracer
	}
	e := &AQPExecutor{
		eng:     eng,
		pool:    cluster.NewCPUPool(cfg.Threads, cfg.MemMB),
		sched:   sched,
		repo:    repo,
		cfg:     cfg,
		running: make(map[string]*AQPJob),
		met:     newExecMetrics(cfg.Obs, "aqp"),
	}
	if cfg.AgingRounds > 0 {
		e.guard = NewStarvationGuardAQP(sched, cfg.AgingRounds)
		e.sched = e.guard
	}
	if cfg.FastPath {
		e.fast = newAQPFastPath(e.sched)
	}
	return e
}

// Engine exposes the virtual clock (tests and metric snapshots use it).
func (e *AQPExecutor) Engine() *sim.Engine { return e.eng }

// Tracer exposes the configured tracer (nil when tracing is disabled);
// the serving mode's trace-tail op reads it.
func (e *AQPExecutor) Tracer() *Tracer { return e.cfg.Tracer }

// Jobs returns every submitted job.
func (e *AQPExecutor) Jobs() []*AQPJob { return e.jobs }

// Recovery reports the executor's fault-recovery counters.
func (e *AQPExecutor) Recovery() RecoveryStats { return e.rec }

// Overload reports the executor's overload-protection counters.
func (e *AQPExecutor) Overload() OverloadStats {
	o := e.overload
	if e.guard != nil {
		o.ForcedGrants = e.guard.ForcedGrants()
	}
	return o
}

// Admission exposes the configured admission controller (nil when
// admission is disabled).
func (e *AQPExecutor) Admission() *admission.Controller { return e.cfg.Admission }

// Submit schedules a job's arrival at the given virtual time.
func (e *AQPExecutor) Submit(j *AQPJob, at sim.Time) {
	e.register(j, at, false)
}

// Recover re-registers a journal-recovered job at the given virtual time:
// the job passed admission in a previous daemon incarnation, so it
// bypasses the gate and rejoins the wait queue directly. Its first grant
// replays the latest durable checkpoint; if none survived the restart it
// falls back to the pristine scratch restart with the usual RecoveryStats
// accounting. bestEffort restores a Degrade admission verdict journaled
// before the crash.
func (e *AQPExecutor) Recover(j *AQPJob, at sim.Time, bestEffort bool) {
	j.bestEffort = bestEffort
	e.register(j, at, true)
}

// Detach removes a queued pending job from the executor for
// checkpoint-carried migration to another arbiter shard. Only a job
// resident in the wait queue can detach: a running job must first finish
// (or be preempted out of) its in-flight epoch, and a job in limbo
// (waiting out a crash or watchdog penalty) is mid-transition — both
// report ErrNotDetachable so the caller can drain and retry. The detached
// job's already-scheduled deadline watchdog becomes a no-op; the receiving
// shard rebuilds the job from its journaled statement and reattaches it to
// its durable checkpoint, so the detached object itself is never reused.
func (e *AQPExecutor) Detach(id string) error {
	var j *AQPJob
	idx := -1
	for i, cand := range e.jobs {
		if cand.ID() == id {
			j, idx = cand, i
			break
		}
	}
	if j == nil {
		return fmt.Errorf("core: detach %s: %w", id, ErrUnknownJob)
	}
	if j.status.Terminal() {
		return fmt.Errorf("core: detach %s: job already terminal (%s)", id, j.status)
	}
	queued := false
	for _, p := range e.pending {
		if p == j {
			queued = true
			break
		}
	}
	if !queued {
		return fmt.Errorf("core: detach %s: %w (status %s)", id, ErrNotDetachable, j.status)
	}
	e.removePending(j)
	e.jobs = append(e.jobs[:idx], e.jobs[idx+1:]...)
	j.detached = true
	// The durable checkpoint is deliberately left in the store: the
	// migration path exports it AFTER detaching (the detach is what
	// guarantees no further epoch can overwrite it mid-copy). The orphaned
	// source copy is cleared by the caller once the handoff commits, or by
	// the retain-aware startup sweep after the journal marks the job
	// migrated.
	// The job's tenant slot moves with it: the receiving shard adopts it
	// on Recover, so the source releases it here.
	if e.cfg.Admission != nil {
		e.cfg.Admission.JobDone(j.tenant)
	}
	e.met.detached.Inc()
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceDetach, Job: j.ID()})
	return nil
}

// Typed detach errors: the serving layer maps these onto retriable vs
// permanent protocol replies.
var (
	// ErrUnknownJob reports that the executor has no job with the id.
	ErrUnknownJob = errors.New("core: unknown job")
	// ErrNotDetachable reports a job that exists but is not queue-resident
	// (running or in limbo); draining its in-flight epoch and retrying will
	// usually succeed.
	ErrNotDetachable = errors.New("core: job not detachable")
)

// register is the shared arrival path behind Submit and Recover.
func (e *AQPExecutor) register(j *AQPJob, at sim.Time, recovered bool) {
	if e.cfg.DataParallelism > 0 {
		if q, ok := j.query.(interface{ SetMaxDataWidth(int) }); ok {
			q.SetMaxDataWidth(e.cfg.DataParallelism)
		}
	}
	// Capture the pristine state before any processing: the restart-from-
	// scratch fallback when no usable checkpoint survives a failure.
	if e.cfg.Store != nil && j.pristine == nil {
		if data, err := j.query.Checkpoint(); err != nil {
			e.storeErr = fmt.Errorf("core: pristine checkpoint %s: %w", j.ID(), err)
		} else {
			j.pristine = data
		}
	}
	e.jobs = append(e.jobs, j)
	e.eng.ScheduleAt(at, func() {
		j.arrival = e.eng.Now()
		j.arrived = true
		j.status = StatusPending
		e.met.arrivals.Inc()
		if recovered {
			// Reattach to the persisted checkpoint at the first grant. With
			// no store the fresh in-memory state is all there is, and the
			// job simply replays from the beginning.
			if e.cfg.Store != nil {
				j.needsRestore = true
			}
			// The job passed admission in a previous incarnation; restore
			// its tenant's concurrent-job slot so the cap stays closed.
			if e.cfg.Admission != nil {
				e.cfg.Admission.AdoptRecovered(j.tenant)
			}
			e.rec.Reattached++
			e.met.reattached.Inc()
		} else if e.cfg.Admission != nil && !e.admit(j) {
			return
		}
		detail := ""
		if recovered {
			detail = "recovered"
		}
		e.enqueue(j)
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceArrive, Job: j.ID(), Tenant: j.tenant, Detail: detail})
		// Deadline watchdog: a job still waiting in the queue when its
		// deadline passes is terminated right there, not at some later
		// epoch boundary.
		e.eng.Schedule(j.DeadlineSecs(), func() {
			if j.status == StatusPending && !j.detached {
				e.removePending(j)
				e.finishJob(j, StatusExpired)
				e.scheduleArbitrate()
			}
		})
		e.scheduleArbitrate()
	})
}

// admit runs the admission decision for an arriving job, reporting
// whether the job entered the wait queue. Refused jobs (and shed victims)
// terminate immediately with StatusRejected/StatusShed.
func (e *AQPExecutor) admit(j *AQPJob) bool {
	ctrl := e.cfg.Admission
	depth := len(e.pending) + len(e.running) + e.limbo
	tenantPending := 0
	for _, p := range e.pending {
		if p.tenant == j.tenant {
			tenantPending++
		}
	}
	req := admission.Request{
		ID:                j.ID(),
		QueueDepth:        depth,
		EstCompletionSecs: e.estCompletionSecs(j),
		RemainingSecs:     j.DeadlineSecs(),
		Tenant:            j.tenant,
		Now:               e.eng.Now().Seconds(),
		TenantPending:     tenantPending,
	}
	dec := ctrl.Decide(req)
	switch dec.Verdict {
	case admission.DegradeBestEffort:
		j.bestEffort = true
		e.overload.Degraded++
		e.met.degraded.Inc()
		return true
	case admission.RejectJob:
		j.rejectErr = dec.Err
		j.retryAfterSecs = dec.RetryAfterSecs
		e.rejectJob(j, StatusRejected, dec.Reason)
		return false
	case admission.ShedVictim:
		v := e.shedVictim(j)
		if v == nil {
			ctrl.ResolveShed(req, false)
			j.rejectErr = admission.ShedRefusalErr(j.ID(), depth, ctrl.Config().MaxQueueDepth)
			e.rejectJob(j, StatusRejected, "queue-full no-victim")
			return false
		}
		ctrl.ResolveShed(req, true)
		e.removePending(v)
		e.rejectJob(v, StatusShed, fmt.Sprintf("for %s", j.ID()))
		return true
	default:
		return true
	}
}

// estCompletionSecs estimates an arrival's queueing delay plus first
// service under the current load: the queued and running jobs' next-epoch
// costs spread over the whole pool, plus the arrival's own first epoch.
func (e *AQPExecutor) estCompletionSecs(j *AQPJob) float64 {
	var backlog float64
	for _, p := range e.pending {
		backlog += p.nextEpochSecsGuess()
	}
	for _, r := range e.running {
		backlog += r.nextEpochSecsGuess()
	}
	return backlog/float64(e.pool.TotalThreads()) + j.nextEpochSecsGuess()
}

// shedVictim picks the queued job with strictly lower value than the
// arrival, preferring best-effort jobs, then lower attainment progress,
// then later deadlines (less urgent), with the ID as the deterministic
// final tiebreak. It returns nil when the arrival itself is the cheapest
// job in sight — evicting an equal-value job would just churn the queue.
func (e *AQPExecutor) shedVictim(arrival *AQPJob) *AQPJob {
	var victim *AQPJob
	for _, p := range e.pending {
		if victim == nil || aqpLessValuable(p, victim) {
			victim = p
		}
	}
	if victim != nil && aqpLessValuable(victim, arrival) {
		return victim
	}
	return nil
}

// aqpLessValuable orders jobs by shedding preference: best-effort first,
// then lower attainment progress (less sunk work toward completion), then
// later absolute deadline (less urgent), then larger ID.
func aqpLessValuable(a, b *AQPJob) bool {
	if a.bestEffort != b.bestEffort {
		return a.bestEffort
	}
	pa, pb := a.AttainmentProgress(), b.AttainmentProgress()
	if pa != pb {
		return pa < pb
	}
	da := a.arrival.Seconds() + a.DeadlineSecs()
	db := b.arrival.Seconds() + b.DeadlineSecs()
	if da != db {
		return da > db
	}
	return a.id > b.id
}

// rejectJob terminates a job outside the normal stop path: refused at the
// admission gate (StatusRejected) or evicted from the queue
// (StatusShed). No history is recorded — the job never produced a curve
// worth learning from.
func (e *AQPExecutor) rejectJob(j *AQPJob, status JobStatus, detail string) {
	kind := TraceReject
	if status == StatusShed {
		kind = TraceShed
		e.overload.Shed++
		e.met.shed.Inc()
		// A shed victim was admitted earlier and held a tenant slot.
		if e.cfg.Admission != nil {
			e.cfg.Admission.JobDone(j.tenant)
		}
	} else {
		e.overload.Rejected++
		e.met.rejected.Inc()
	}
	if e.cfg.Store != nil {
		e.cfg.Store.Remove(j.ID())
	}
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: kind, Job: j.ID(), Tenant: j.tenant, Detail: detail})
	j.status = status
	j.endTime = e.eng.Now()
	e.met.outcome(status)
	e.terminalCount++
	if e.terminalCount == len(e.jobs) {
		if e.ownsEngine {
			e.eng.Stop()
		} else if e.onDone != nil {
			e.onDone()
		}
	}
}

// enqueue appends to the wait queue, tracking its high-water mark.
func (e *AQPExecutor) enqueue(j *AQPJob) {
	e.pending = append(e.pending, j)
	if d := len(e.pending); d > e.overload.MaxPendingDepth {
		e.overload.MaxPendingDepth = d
	}
	e.met.pendingJobs.Set(float64(len(e.pending)))
}

// Validate checks the configuration invariants Run enforces, for drivers
// (the serving mode) that advance the engine incrementally instead of
// calling Run.
func (e *AQPExecutor) Validate() error {
	if e.cfg.Faults.Enabled() && e.cfg.Store == nil {
		return errors.New("core: AQP fault injection requires a CheckpointStore (recovery replays persisted state)")
	}
	if e.cfg.WatchdogSlack > 0 && e.cfg.Store == nil {
		return errors.New("core: AQP epoch watchdog requires a CheckpointStore (preemption rolls back to persisted state)")
	}
	return nil
}

// Run drives the simulation until every submitted job is terminal (or no
// events remain, which means the workload deadlocked — reported as an
// error).
func (e *AQPExecutor) Run() error {
	if err := e.Validate(); err != nil {
		return err
	}
	e.eng.Run()
	if e.storeErr != nil {
		return e.storeErr
	}
	if e.terminalCount != len(e.jobs) {
		return fmt.Errorf("core: %d of %d AQP jobs did not terminate", len(e.jobs)-e.terminalCount, len(e.jobs))
	}
	return nil
}

// scheduleArbitrate coalesces all same-instant events (arrivals, epoch
// completions) into one arbitration decision, so the policy sees the
// complete queue state of the instant.
func (e *AQPExecutor) scheduleArbitrate() {
	if e.arbPending {
		return
	}
	e.arbPending = true
	e.eng.Schedule(0, func() {
		e.arbPending = false
		e.arbitrate()
	})
}

// arbitrate invokes the policy over the current queue state and applies
// its grants. The context and its slices are scratch reused across
// rounds; policies must not retain them past Assign (every in-repo
// policy copies before sorting).
func (e *AQPExecutor) arbitrate() {
	if len(e.pending) == 0 || e.pool.FreeThreads() == 0 {
		return
	}
	e.arbPend = append(e.arbPend[:0], e.pending...)
	e.arbCtx = AQPContext{
		Now:          e.eng.Now(),
		Pending:      e.arbPend,
		Running:      e.runningJobs(),
		FreeThreads:  e.pool.FreeThreads(),
		TotalThreads: e.pool.TotalThreads(),
		FreeMemMB:    e.pool.FreeMemMB(),
		TotalMemMB:   e.pool.TotalMemMB(),
	}
	var grants []AQPGrant
	if e.fast != nil {
		grants = e.fast.assign(&e.arbCtx)
	} else {
		grants = e.sched.Assign(&e.arbCtx)
	}
	for _, g := range grants {
		e.startEpoch(g)
	}
}

// runningJobs presents the running set sorted by job ID: map iteration
// order is randomized per run, and policies that read ctx.Running must
// see a deterministic queue state (the bit-identical replay guarantees
// of both the fast path and the chaos suites depend on it).
func (e *AQPExecutor) runningJobs() []*AQPJob {
	out := e.arbRunning[:0]
	for _, j := range e.running {
		out = append(out, j)
	}
	sortAQPJobsByID(out)
	e.arbRunning = out
	return out
}

// FastPath reports the decision-cache counters; all-zero when the fast
// path is disabled.
func (e *AQPExecutor) FastPath() FastPathStats {
	if e.fast == nil {
		return FastPathStats{}
	}
	return e.fast.stats
}

// startEpoch applies one grant: books resources, charges resume overhead
// if the job was checkpointed, processes the running epoch's batches, and
// schedules the epoch-completion event.
func (e *AQPExecutor) startEpoch(g AQPGrant) {
	j := g.Job
	if j.status.Terminal() || e.running[j.ID()] != nil {
		return
	}
	if err := e.pool.Allocate(j.ID(), g.Threads, g.ReserveMemMB); err != nil {
		return // raced against another grant this round; stay pending
	}
	e.removePending(j)
	j.status = StatusRunning
	e.running[j.ID()] = j
	e.runningEstMem += j.EstMemMB()
	e.met.grants.Inc()
	e.met.runningJobs.Set(float64(len(e.running)))
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceGrant, Job: j.ID(), Threads: g.Threads})

	// Memory-oversubscription pressure: if the running jobs' true
	// footprints exceed the pool, everything pays a thrashing factor.
	// Memory-aware policies reserve estimates and so self-limit to ≤ 1.
	// The factor is superlinear (paging thrash does not conserve
	// throughput), so oversubscribing is strictly worse than serializing.
	pressure := e.runningEstMem / e.pool.TotalMemMB()
	if pressure < 1 {
		pressure = 1
	} else {
		pressure = math.Pow(pressure, 1.5)
	}

	var epochSecs float64
	// Checkpoint-I/O backoff accrued when this job's state was last saved
	// is charged to its next epoch.
	epochSecs += j.deferredPenaltySecs
	j.deferredPenaltySecs = 0
	// Resuming a job deferred at an earlier instant replays its disk
	// checkpoint; a job re-granted at the very moment it released keeps
	// its state hot (§III-C's third advantage) — unless a crash left the
	// in-memory state dirty (needsRestore), which forces the replay. With
	// a CheckpointStore configured the replay is real: the in-memory state
	// is discarded and reconstructed from the persisted bytes, and resumes
	// served from the store's memory tier skip the disk-replay cost.
	if j.needsRestore || (j.everRan && j.lastRelease != e.eng.Now()) {
		epochSecs += e.resumeJob(j)
	}
	// The grant's thread count is passed straight into the data path:
	// stateless queries fan the epoch's batches out across that many
	// goroutines (partitioned accumulation, deterministic merge), so a
	// larger grant is real wall-clock speedup, not just a smaller
	// virtual-time charge. Results are bit-identical at every width.
	var workSecs float64
	for b := 0; b < j.epochBatches; b++ {
		rows, cost := j.query.ProcessBatch(j.batchRows, g.Threads)
		workSecs += cost
		if rows == 0 {
			break
		}
	}
	epochSecs = (epochSecs + workSecs) * pressure
	if epochSecs <= 0 {
		epochSecs = 0.001
	}
	// Normalized work: the batch costs re-expressed at one thread, so the
	// job's progress-runtime curve shares units with the single-threaded
	// historical curves.
	normWork := workSecs * aqp.Speedup(g.Threads)
	// Epoch watchdog: a runaway epoch (the cost model gone degenerate, a
	// stuck data source, pathological pressure) is cut short once it
	// exceeds slack × the job's predicted epoch cost. Strikes double the
	// budget so a genuinely long epoch eventually completes.
	watchAt := math.Inf(1)
	if e.cfg.WatchdogSlack > 0 {
		budget := e.cfg.WatchdogSlack * j.nextEpochSecsGuess() * math.Pow(2, float64(j.watchdogStrikes))
		if epochSecs > budget {
			watchAt = budget
		}
	}
	// The injector may interrupt the epoch mid-flight: the worker dies,
	// its in-flight results are lost, and the job rolls back to its last
	// valid checkpoint at the next grant. The injector's draw comes first
	// so arming the watchdog never perturbs the fault sequence; an earlier
	// crash wins over a later watchdog preemption.
	if after, crashed := e.cfg.Faults.EpochCrash(epochSecs); crashed && after <= watchAt {
		e.eng.Schedule(after, func() { e.crashEpoch(j, after) })
		return
	}
	if !math.IsInf(watchAt, 1) {
		e.eng.Schedule(watchAt, func() { e.preemptEpoch(j, watchAt) })
		return
	}
	e.eng.Schedule(epochSecs, func() { e.finishEpoch(j, epochSecs, normWork) })
}

// preemptEpoch handles the watchdog firing wastedSecs into a running
// epoch: the epoch's in-flight results are lost, resources free
// immediately, and the job rejoins the queue after the penalty delay with
// a forced rollback to its last valid checkpoint (like a crash, minus the
// failure-detection machinery).
func (e *AQPExecutor) preemptEpoch(j *AQPJob, wastedSecs float64) {
	e.pool.Release(j.ID())
	delete(e.running, j.ID())
	e.runningEstMem -= j.EstMemMB()
	e.met.runningJobs.Set(float64(len(e.running)))
	j.status = StatusPending
	j.needsRestore = true
	j.processingSecs += wastedSecs
	j.watchdogStrikes++
	e.overload.WatchdogPreemptions++
	e.met.watchdogPreempts.Inc()
	e.overload.WatchdogWastedSecs += wastedSecs
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceWatchdog, Job: j.ID(),
			Detail: fmt.Sprintf("wasted=%.1fs strikes=%d", wastedSecs, j.watchdogStrikes)})
	}
	e.limbo++
	e.eng.Schedule(e.cfg.WatchdogPenaltySecs, func() {
		e.limbo--
		// The deadline watchdog may have expired the job while it waited
		// out the penalty.
		if j.status.Terminal() {
			return
		}
		e.enqueue(j)
		e.scheduleArbitrate()
	})
	e.scheduleArbitrate()
}

// resumeJob replays the job's persisted state and returns the virtual
// resume cost. An unusable checkpoint (missing, corrupt, or persistently
// failing I/O) falls back to a from-scratch restart off the pristine
// state; any other failure is fatal to the run.
func (e *AQPExecutor) resumeJob(j *AQPJob) float64 {
	state := j.query.StateMemMB()
	cost := 2 * (e.cfg.CheckpointBaseSecs + state*e.cfg.CheckpointSecsPerMB)
	if e.cfg.Store == nil {
		e.met.resumes.Inc()
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceResume, Job: j.ID()})
		return cost
	}
	rollingBack := j.needsRestore
	data, fromMemory, err := e.cfg.Store.Load(j.ID())
	cost += e.cfg.Store.TakePenaltySecs()
	if err == nil {
		err = j.query.Restore(data)
		if err == nil {
			if fromMemory {
				cost = 0.1 * e.cfg.CheckpointBaseSecs
			}
			j.needsRestore = false
			if rollingBack {
				e.rec.Rollbacks++
				e.met.rollbacks.Inc()
			}
			e.met.resumes.Inc()
			if e.cfg.Tracer.Enabled() {
				e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceResume, Job: j.ID(),
					Detail: fmt.Sprintf("fromMemory=%v", fromMemory)})
			}
			return cost
		}
	}
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTransient) {
		if serr := e.scratchRestart(j, err); serr != nil {
			e.storeErr = serr
		}
	} else {
		e.storeErr = fmt.Errorf("core: resume %s: %w", j.ID(), err)
	}
	return cost
}

// scratchRestart rewinds the job to its pristine state: the persisted
// checkpoint is unusable, so the job replays from the beginning — which,
// with deterministic data, reproduces the fault-free observation sequence
// exactly.
func (e *AQPExecutor) scratchRestart(j *AQPJob, cause error) error {
	if j.pristine == nil {
		return fmt.Errorf("core: restart %s: no pristine state: %w", j.ID(), cause)
	}
	if err := j.query.Restore(j.pristine); err != nil {
		return fmt.Errorf("core: restart %s: %w", j.ID(), err)
	}
	e.cfg.Store.Remove(j.ID())
	j.resetForScratchRestart()
	e.rec.ScratchRestarts++
	e.met.scratchRestarts.Inc()
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceRestart, Job: j.ID(),
		Detail: restartCause(cause)})
	return nil
}

// restartCause classifies the checkpoint failure that forced a restart.
func restartCause(err error) string {
	switch {
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	case errors.Is(err, ErrNotFound):
		return "not-found"
	case errors.Is(err, ErrTransient):
		return "transient"
	default:
		return "error"
	}
}

// crashEpoch handles a worker crash wastedSecs into a running epoch: the
// epoch's results are lost, resources free immediately, and the job
// rejoins the queue after the crash-recovery delay with a forced rollback
// to its last valid checkpoint.
func (e *AQPExecutor) crashEpoch(j *AQPJob, wastedSecs float64) {
	e.pool.Release(j.ID())
	delete(e.running, j.ID())
	e.runningEstMem -= j.EstMemMB()
	e.met.runningJobs.Set(float64(len(e.running)))
	j.status = StatusPending
	j.needsRestore = true
	j.processingSecs += wastedSecs
	if !j.crashPending {
		j.crashPending = true
		j.crashedSince = e.eng.Now()
	}
	e.rec.Crashes++
	e.met.crashes.Inc()
	e.rec.WastedWorkSecs += wastedSecs
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceCrash, Job: j.ID(),
			Detail: fmt.Sprintf("wasted=%.1fs", wastedSecs)})
	}
	e.limbo++
	e.eng.Schedule(e.cfg.CrashRecoverySecs, func() {
		e.limbo--
		// The deadline watchdog may have expired the job while it was
		// recovering.
		if j.status.Terminal() {
			return
		}
		e.enqueue(j)
		e.scheduleArbitrate()
	})
	e.scheduleArbitrate()
}

// finishEpoch observes the completed epoch and applies the shared stop
// rules.
func (e *AQPExecutor) finishEpoch(j *AQPJob, epochSecs, normWork float64) {
	e.pool.Release(j.ID())
	delete(e.running, j.ID())
	e.runningEstMem -= j.EstMemMB()
	e.met.runningJobs.Set(float64(len(e.running)))
	e.met.epochs.Inc()
	e.met.epochSecs.Observe(epochSecs)
	j.everRan = true
	j.lastRelease = e.eng.Now()
	j.epochs++
	j.processingSecs += epochSecs
	j.normSecs += normWork
	j.watchdogStrikes = 0 // completed within budget
	if j.crashPending {
		j.crashPending = false
		e.rec.Recovered++
		e.met.recovered.Inc()
		e.rec.RecoveryLatencySecs += (e.eng.Now() - j.crashedSince).Seconds()
	}
	j.observeEpoch(e.eng.Now())
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceEpochDone, Job: j.ID(),
			Detail: fmt.Sprintf("epoch=%d est-acc=%.3f", j.epochs, j.EstimatedAccuracy())})
	}

	now := e.eng.Now()
	elapsed := (now - j.arrival).Seconds()
	// Stop margin: the estimate is noisy around the threshold, so the
	// system demands a small cushion before declaring attainment —
	// otherwise roughly half the stops would land just below the true
	// threshold and count as false attainment.
	stopAt := j.crit.Threshold * 1.05
	if ceil := j.crit.Threshold + 0.03; stopAt > ceil {
		stopAt = ceil
	}
	switch {
	case j.query.Exhausted():
		// Processed everything: the answer is exact.
		e.finishJob(j, StatusAttainedStop)
	case j.crit.Threshold > 0 && j.EstimatedAccuracy() >= stopAt:
		e.finishJob(j, StatusAttainedStop)
	case j.envelopeConverged() && j.query.DataProgress() >= 0.3:
		// The envelope declares convergence only once a meaningful share
		// of the stream has passed; early stalls on selective queries are
		// lulls, not convergence.
		e.finishJob(j, StatusConvergedStop)
	case elapsed >= j.DeadlineSecs():
		e.finishJob(j, StatusExpired)
	default:
		j.status = StatusPending
		e.enqueue(j)
		// Persist the deferred job's state; if it is re-granted this very
		// instant the checkpoint is simply never replayed.
		if e.cfg.Store != nil {
			if data, err := j.query.Checkpoint(); err != nil {
				e.storeErr = fmt.Errorf("core: checkpoint %s: %w", j.ID(), err)
			} else if err := e.cfg.Store.Save(j.ID(), data); err != nil {
				j.deferredPenaltySecs += e.cfg.Store.TakePenaltySecs()
				if errors.Is(err, ErrTransient) {
					// The save failed for good, but any previously persisted
					// checkpoint is now behind the in-memory bookkeeping, so
					// rolling back to it would desynchronize the job. Replay
					// from scratch instead — deterministic data makes that
					// exact, just slower.
					if serr := e.scratchRestart(j, err); serr != nil {
						e.storeErr = serr
					}
				} else {
					e.storeErr = err
				}
			} else {
				j.deferredPenaltySecs += e.cfg.Store.TakePenaltySecs()
				e.met.checkpoints.Inc()
				e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceCheckpoint, Job: j.ID()})
			}
		}
	}
	e.scheduleArbitrate()
}

func (e *AQPExecutor) finishJob(j *AQPJob, status JobStatus) {
	if e.cfg.Store != nil {
		e.cfg.Store.Remove(j.ID())
	}
	// Every finishJob target was admitted (it reached the queue), so its
	// tenant's concurrent-job slot opens here.
	if e.cfg.Admission != nil {
		e.cfg.Admission.JobDone(j.tenant)
	}
	if j.crashPending {
		// Expired while still recovering: close the latency window without
		// counting a successful recovery.
		j.crashPending = false
		e.rec.RecoveryLatencySecs += (e.eng.Now() - j.crashedSince).Seconds()
	}
	e.cfg.Tracer.Emit(TraceEvent{At: e.eng.Now(), Kind: TraceStop, Job: j.ID(), Tenant: j.tenant, Detail: status.String()})
	j.status = status
	j.endTime = e.eng.Now()
	j.stopAcc = j.query.Accuracy()
	e.met.outcome(status)
	e.terminalCount++
	if e.terminalCount == len(e.jobs) {
		// Workload complete: drop leftover watchdog timers so the clock
		// reflects the real makespan (or tell the composing driver).
		if e.ownsEngine {
			e.eng.Stop()
		} else if e.onDone != nil {
			e.onDone()
		}
	}
	if e.cfg.RecordHistory {
		e.repo.AddAQP(estimate.AQPRecord{
			ID:        j.ID(),
			Query:     j.query.Name(),
			Class:     j.class,
			BatchRows: j.batchRows,
			Curve:     j.RealtimeCurve(),
		})
	}
}

func (e *AQPExecutor) removePending(j *AQPJob) {
	for i, p := range e.pending {
		if p == j {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.met.pendingJobs.Set(float64(len(e.pending)))
			return
		}
	}
}
