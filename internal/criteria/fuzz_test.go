package criteria

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that every successfully
// parsed criterion re-renders to a clause that parses back to itself.
func FuzzParse(f *testing.F) {
	f.Add("SELECT 1 ACC MIN 95% WITHIN 3600 SECONDS")
	f.Add("TRAIN X ON Y ACC DELTA 0.001 WITHIN 30 EPOCHS")
	f.Add("RUN FOR 2 HOURS")
	f.Add("FOR")
	f.Add("MIN WITHIN")
	f.Add("x acc min -5% within 10 epochs")
	f.Add("x acc delta 1e309 within 10 epochs")
	f.Fuzz(func(t *testing.T, input string) {
		cmd, crit, err := Parse(input)
		if err != nil {
			return
		}
		round := strings.TrimSpace(cmd + " " + crit.String())
		_, crit2, err2 := Parse(round)
		if err2 != nil {
			t.Fatalf("render of %q did not re-parse: %q: %v", input, round, err2)
		}
		if crit2.Kind != crit.Kind {
			t.Fatalf("kind changed across round trip: %v -> %v", crit.Kind, crit2.Kind)
		}
	})
}
