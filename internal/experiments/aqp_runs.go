package experiments

import (
	"fmt"
	"math"
	"sync"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/metrics"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// aqpPolicyName identifies the five Fig. 6 policies plus the Fig. 9
// random-estimator variant.
type aqpPolicyName string

// The evaluated AQP policies.
const (
	PolicyRotaryAQP  aqpPolicyName = "rotary-aqp"
	PolicyRoundRobin aqpPolicyName = "round-robin"
	PolicyEDF        aqpPolicyName = "edf"
	PolicyLAF        aqpPolicyName = "laf"
	PolicyReLAQS     aqpPolicyName = "relaqs"
	PolicyRandomEst  aqpPolicyName = "rotary-random-est"
)

// fig6Policies is the Fig. 6 lineup.
var fig6Policies = []aqpPolicyName{PolicyRotaryAQP, PolicyReLAQS, PolicyEDF, PolicyLAF, PolicyRoundRobin}

// newAQPScheduler instantiates a policy. Rotary variants get a repository
// pre-seeded with one standalone run of every query (§IV-A's historical
// data); baselines do not consult history.
func newAQPScheduler(name aqpPolicyName, repo *estimate.Repository, seed uint64) core.AQPScheduler {
	switch name {
	case PolicyRotaryAQP:
		return core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
	case PolicyRoundRobin:
		return baselines.RoundRobinAQP{}
	case PolicyEDF:
		return baselines.EDFAQP{}
	case PolicyLAF:
		return baselines.LAFAQP{}
	case PolicyReLAQS:
		return baselines.ReLAQS{}
	case PolicyRandomEst:
		return baselines.RandomRotaryAQP(sim.NewRand(seed ^ 0xf19))
	default:
		panic(fmt.Sprintf("experiments: unknown AQP policy %q", name))
	}
}

// historyMu guards the seeded-history cache: seeding replays every query
// standalone, so it is computed once per (catalog, batch size) and cloned
// per run.
var (
	historyMu    sync.Mutex
	historyCache = map[historyKey]*estimate.Repository{}
)

type historyKey struct {
	cat   *tpch.Catalog
	batch int
}

// seededHistory returns a private copy of the once-computed historical
// repository for the catalog.
func seededHistory(cat *tpch.Catalog, batchRows int) (*estimate.Repository, error) {
	historyMu.Lock()
	defer historyMu.Unlock()
	key := historyKey{cat, batchRows}
	base, ok := historyCache[key]
	if !ok {
		base = estimate.NewRepository()
		if err := workload.SeedAQPHistory(base, cat, batchRows); err != nil {
			return nil, err
		}
		historyCache[key] = base
	}
	return base.Clone(), nil
}

// runAQPPolicy executes one workload under one policy and returns the
// terminal jobs.
func runAQPPolicy(cat *tpch.Catalog, specs []workload.AQPSpec, name aqpPolicyName, seed uint64) ([]*core.AQPJob, error) {
	repo := estimate.NewRepository()
	if name == PolicyRotaryAQP || name == PolicyRandomEst {
		var err error
		repo, err = seededHistory(cat, specs[0].BatchRows)
		if err != nil {
			return nil, err
		}
	}
	sched := newAQPScheduler(name, repo, seed)
	exec := core.NewAQPExecutor(core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)), sched, repo)
	for _, spec := range specs {
		j, err := workload.BuildAQPJob(cat, spec)
		if err != nil {
			return nil, err
		}
		exec.Submit(j, sim.Time(spec.ArrivalSecs))
	}
	if err := exec.Run(); err != nil {
		return nil, err
	}
	return exec.Jobs(), nil
}

// isolatedRuntimes measures each spec standalone: a fresh executor with
// the whole pool to itself and the Rotary scheduler, the "running it
// independently and isolated" baseline of Fig. 7b.
func isolatedRuntimes(cat *tpch.Catalog, specs []workload.AQPSpec) (map[string]float64, error) {
	repo, err := seededHistory(cat, specs[0].BatchRows)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(specs))
	for _, spec := range specs {
		sched := core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))
		exec := core.NewAQPExecutor(core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)), sched, repo)
		j, err := workload.BuildAQPJob(cat, spec)
		if err != nil {
			return nil, err
		}
		exec.Submit(j, 0)
		if err := exec.Run(); err != nil {
			return nil, err
		}
		out[spec.ID] = (j.EndTime() - j.Arrival()).Seconds()
	}
	return out, nil
}

// AveragedAQPReport accumulates per-policy measures over runs.
type AveragedAQPReport struct {
	Policy           string
	AttainedByClass  map[string]float64 // mean attained per class + "total"
	TotalByClass     map[string]float64
	FalseAttainments float64
	AvgWaitSecs      float64
	Runs             int
	// AttainedStddev is the run-to-run standard deviation of the total
	// attained count (0 for single-run experiments).
	AttainedStddev float64

	attainedTotals []float64
}

// accumulate folds one run's report in.
func (a *AveragedAQPReport) accumulate(rep metrics.AQPReport) {
	if a.AttainedByClass == nil {
		a.AttainedByClass = map[string]float64{}
		a.TotalByClass = map[string]float64{}
	}
	for c, n := range rep.AttainedByClass() {
		a.AttainedByClass[c] += float64(n)
	}
	for c, n := range rep.TotalByClass() {
		a.TotalByClass[c] += float64(n)
	}
	a.FalseAttainments += float64(rep.FalseAttained())
	a.AvgWaitSecs += rep.AvgWaitSecs()
	a.attainedTotals = append(a.attainedTotals, float64(rep.AttainedByClass()["total"]))
	a.Runs++
}

func (a *AveragedAQPReport) finalize() {
	if a.Runs == 0 {
		return
	}
	n := float64(a.Runs)
	for c := range a.AttainedByClass {
		a.AttainedByClass[c] /= n
	}
	for c := range a.TotalByClass {
		a.TotalByClass[c] /= n
	}
	a.FalseAttainments /= n
	a.AvgWaitSecs /= n
	if len(a.attainedTotals) > 1 {
		mean := 0.0
		for _, v := range a.attainedTotals {
			mean += v
		}
		mean /= float64(len(a.attainedTotals))
		var ss float64
		for _, v := range a.attainedTotals {
			ss += (v - mean) * (v - mean)
		}
		a.AttainedStddev = math.Sqrt(ss / float64(len(a.attainedTotals)-1))
	}
}

// runAQPComparison runs every named policy over cfg.Runs seeded workloads
// and returns the per-policy averages. withWaiting also measures isolated
// runtimes (expensive) for the Fig. 7b waiting-time column. mix overrides
// the Table I class mix when non-nil (Fig. 8's skewed workloads).
func runAQPComparison(cfg Config, policies []aqpPolicyName, withWaiting bool, mix *[3]float64) (map[aqpPolicyName]*AveragedAQPReport, error) {
	out := make(map[aqpPolicyName]*AveragedAQPReport, len(policies))
	for _, p := range policies {
		out[p] = &AveragedAQPReport{Policy: string(p)}
	}
	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.Seed + uint64(run)
		cat := catalogFor(cfg.SF, cfg.Seed) // same dataset; workload varies by seed
		wcfg := workload.DefaultAQPWorkload(cfg.AQPJobs, seed)
		wcfg.BatchRows = workload.RecommendedBatchRows(cat)
		if mix != nil {
			wcfg.Mix = *mix
		}
		specs := workload.GenerateAQP(wcfg)
		var iso map[string]float64
		if withWaiting {
			var err error
			iso, err = isolatedRuntimes(cat, specs)
			if err != nil {
				return nil, err
			}
		}
		// Policies are independent (private repositories, executors, and
		// jobs over a read-only catalog), so they run concurrently.
		reps := make([]metrics.AQPReport, len(policies))
		errs := make([]error, len(policies))
		var wg sync.WaitGroup
		for i, p := range policies {
			wg.Add(1)
			go func(i int, p aqpPolicyName) {
				defer wg.Done()
				jobs, err := runAQPPolicy(cat, specs, p, seed)
				if err != nil {
					errs[i] = fmt.Errorf("policy %s run %d: %w", p, run, err)
					return
				}
				reps[i] = metrics.AnalyzeAQP(string(p), jobs, iso)
			}(i, p)
		}
		wg.Wait()
		for i, p := range policies {
			if errs[i] != nil {
				return nil, errs[i]
			}
			out[p].accumulate(reps[i])
		}
	}
	for _, a := range out {
		a.finalize()
	}
	return out, nil
}
