// Package admission implements the overload front door of the arbiter:
// a deadline/utility-aware admission controller with a bounded wait
// queue. The paper's arbiter (§III-D) assumes a closed, well-behaved job
// set — every submitted job enters the wait queue and eventually runs.
// Under open-loop arrivals that assumption breaks: when the offered load
// exceeds capacity, an unbounded queue grows without limit and every
// queued job's deadline becomes infeasible. The controller turns that
// failure mode into an explicit, typed decision at arrival time:
//
//   - a job whose estimated completion cannot meet its criteria deadline
//     under the current load is refused (ErrAdmissionRejected) — or, under
//     the Degrade policy, admitted as best-effort;
//   - a job arriving while the active set is at the configured bound is
//     refused (ErrQueueFull) — or, under the ShedLowestValue policy,
//     admitted by evicting the lowest-value queued job.
//
// The controller itself is pure decision logic over a Request snapshot;
// the executors own the queues and supply the load estimates, so the same
// controller front-ends the AQP, DLT, and serving-mode queues.
package admission

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"rotary/internal/obs"
)

// Typed refusal causes. Callers match with errors.Is.
var (
	// ErrAdmissionRejected marks a job refused because its estimated
	// completion cannot meet its deadline under current load.
	ErrAdmissionRejected = errors.New("admission: deadline infeasible under current load")
	// ErrQueueFull marks a job refused because the wait queue is at its
	// configured bound.
	ErrQueueFull = errors.New("admission: queue full")
)

// Policy selects the backpressure response when a job cannot be admitted
// outright.
type Policy int

const (
	// Reject refuses the arriving job (the default).
	Reject Policy = iota
	// ShedLowestValue admits the arriving job over a full queue by
	// evicting the queued job with the lowest value — if one with strictly
	// lower value than the arrival exists; otherwise the arrival is the
	// cheapest job in sight and is refused instead.
	ShedLowestValue
	// Degrade admits deadline-infeasible jobs as best-effort: they keep
	// running but renounce any feasibility claim (and are first in line
	// for shedding). The queue bound stays hard under Degrade.
	Degrade
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Reject:
		return "reject"
	case ShedLowestValue:
		return "shed"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reject":
		return Reject, nil
	case "shed", "shed-lowest-value":
		return ShedLowestValue, nil
	case "degrade", "best-effort":
		return Degrade, nil
	default:
		return Reject, fmt.Errorf("admission: unknown policy %q (want reject, shed, degrade)", s)
	}
}

// Config parameterizes a Controller.
type Config struct {
	// MaxQueueDepth bounds the active set (queued + running jobs); an
	// arrival that would push the count past the bound triggers the
	// backpressure policy. 0 means unbounded.
	MaxQueueDepth int
	// SlackFactor scales the completion estimate in the deadline
	// feasibility check: a job is infeasible when
	// SlackFactor × EstCompletionSecs > RemainingSecs. 0 disables the
	// check; 1 trusts the estimate exactly; larger values refuse earlier
	// (the estimate is optimistic under contention).
	SlackFactor float64
	// Policy is the backpressure response. See the Policy constants.
	Policy Policy
	// Tenants configures per-tenant quotas (token-bucket submit rate,
	// concurrent-job and queued-job caps). The zero table disables tenant
	// gating. See tenant.go.
	Tenants TenantTable
	// Obs selects the metrics registry the controller's verdict counters
	// live in. Nil uses the process-wide obs.Default().
	Obs *obs.Registry
}

// Verdict is the controller's decision for one arrival.
type Verdict int

const (
	// Admit enqueues the job normally.
	Admit Verdict = iota
	// RejectJob refuses the job; Decision.Err carries the typed cause.
	RejectJob
	// ShedVictim admits the job if the executor can evict a queued job
	// with strictly lower value; the executor reports the outcome through
	// ResolveShed.
	ShedVictim
	// DegradeBestEffort admits the job flagged best-effort.
	DegradeBestEffort
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case RejectJob:
		return "reject"
	case ShedVictim:
		return "shed-victim"
	case DegradeBestEffort:
		return "degrade"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Request is the load snapshot an executor presents for one arrival.
type Request struct {
	// ID identifies the arriving job (error messages only).
	ID string
	// QueueDepth is the active-set size (queued + running) before this
	// arrival.
	QueueDepth int
	// EstCompletionSecs estimates the job's queueing delay plus first
	// service under the current load.
	EstCompletionSecs float64
	// RemainingSecs is the time left until the job's deadline. Jobs
	// without a wall-time deadline pass +Inf (or any huge value) and are
	// never deadline-refused.
	RemainingSecs float64
	// Tenant attributes the arrival; empty canonicalizes to
	// DefaultTenant. Ignored unless Config.Tenants is set.
	Tenant string
	// Now is the arrival's virtual-clock time in seconds. It drives
	// token-bucket refill — never wall clock, so replays reproduce every
	// verdict bit-identically.
	Now float64
	// TenantPending is the tenant's queued-job count before this arrival
	// (for the MaxPending cap).
	TenantPending int
}

// Decision is the controller's answer.
type Decision struct {
	Verdict Verdict
	// Err carries the typed refusal cause when Verdict is RejectJob.
	Err error
	// Reason is a short human-readable cause for traces.
	Reason string
	// RetryAfterSecs hints when a quota-refused tenant should retry
	// (0 when the refusal is not time-based).
	RetryAfterSecs float64
}

// Stats counts the controller's decisions.
type Stats struct {
	Submitted int
	Admitted  int
	Rejected  int
	// Shed counts queued jobs evicted to admit a higher-value arrival.
	Shed int
	// Degraded counts deadline-infeasible jobs admitted as best-effort.
	Degraded int
	// QueueFullRejections is the subset of Rejected refused at the bound.
	QueueFullRejections int
	// MaxQueueDepth is the deepest active set observed at decision time.
	MaxQueueDepth int
}

// Controller applies a Config to arrival Requests. It is pure decision
// logic: it owns no queue and performs no I/O, so one controller can
// front-end any executor. Safe for concurrent use: the simulated
// arbitration loop is single-threaded, but live serving submits from
// one goroutine per connection, so the decision ledger is mutex-guarded.
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	stats   Stats
	met     ctrlMetrics
	tenants map[string]*tenantState
}

// ctrlMetrics mirrors Stats into the obs registry: verdict counters plus
// the queue-depth gauge sampled at decision time. Handles are nil-safe.
type ctrlMetrics struct {
	submitted  *obs.Counter
	admitted   *obs.Counter
	rejected   *obs.Counter
	shed       *obs.Counter
	degraded   *obs.Counter
	queueFull  *obs.Counter
	queueDepth *obs.Gauge
}

func newCtrlMetrics(reg *obs.Registry) ctrlMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	const p = "rotary_admission_"
	return ctrlMetrics{
		submitted:  reg.Counter(p+"submitted_total", "arrivals presented to the admission gate"),
		admitted:   reg.Counter(p+"admitted_total", "arrivals admitted (including degraded and shed-admitted)"),
		rejected:   reg.Counter(p+"rejected_total", "arrivals refused"),
		shed:       reg.Counter(p+"shed_total", "queued jobs evicted to admit an arrival"),
		degraded:   reg.Counter(p+"degraded_total", "deadline-infeasible arrivals admitted best-effort"),
		queueFull:  reg.Counter(p+"queue_full_rejections_total", "refusals at the queue bound"),
		queueDepth: reg.Gauge(p+"queue_depth", "active-set size observed at the last decision"),
	}
}

// NewController validates and applies the config.
func NewController(cfg Config) *Controller {
	if cfg.SlackFactor < 0 || math.IsNaN(cfg.SlackFactor) {
		cfg.SlackFactor = 0
	}
	if cfg.MaxQueueDepth < 0 {
		cfg.MaxQueueDepth = 0
	}
	return &Controller{cfg: cfg, met: newCtrlMetrics(cfg.Obs), tenants: make(map[string]*tenantState)}
}

// Config returns the applied configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the decision counters so far.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Decide evaluates one arrival. The tenant gate runs first: its
// verdicts must be a pure function of tenant state and virtual time so
// journal replay reproduces them regardless of how the shared queue
// happens to look after a restart. The deadline feasibility check runs
// next — shedding a queued job frees a slot but no time, so an
// infeasible job is refused (or degraded) regardless of queue headroom.
// The queue bound is checked last and is hard under every policy
// except ShedLowestValue. A token is consumed (and the tenant's active
// slot taken) only on final admission; refusals leave the bucket
// untouched.
func (c *Controller) Decide(r Request) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Submitted++
	c.met.submitted.Inc()
	c.met.queueDepth.Set(float64(r.QueueDepth))
	if r.QueueDepth > c.stats.MaxQueueDepth {
		c.stats.MaxQueueDepth = r.QueueDepth
	}

	if c.cfg.Tenants.Enabled() {
		if d := c.decideTenant(r); d != nil {
			return *d
		}
	}

	degraded := false
	if c.cfg.SlackFactor > 0 && r.RemainingSecs > 0 && !math.IsInf(r.RemainingSecs, 1) &&
		c.cfg.SlackFactor*r.EstCompletionSecs > r.RemainingSecs {
		if c.cfg.Policy != Degrade {
			c.stats.Rejected++
			c.met.rejected.Inc()
			c.tenantRejected(r)
			return Decision{
				Verdict: RejectJob,
				Err: fmt.Errorf("admission: %s: estimated completion %.0fs × slack %.2g exceeds remaining %.0fs: %w",
					r.ID, r.EstCompletionSecs, c.cfg.SlackFactor, r.RemainingSecs, ErrAdmissionRejected),
				Reason: "deadline-infeasible",
			}
		}
		degraded = true
	}

	if c.cfg.MaxQueueDepth > 0 && r.QueueDepth >= c.cfg.MaxQueueDepth {
		if c.cfg.Policy == ShedLowestValue {
			return Decision{Verdict: ShedVictim, Reason: "queue-full"}
		}
		c.stats.Rejected++
		c.stats.QueueFullRejections++
		c.met.rejected.Inc()
		c.met.queueFull.Inc()
		c.tenantRejected(r)
		return Decision{
			Verdict: RejectJob,
			Err: fmt.Errorf("admission: %s: active set %d at bound %d: %w",
				r.ID, r.QueueDepth, c.cfg.MaxQueueDepth, ErrQueueFull),
			Reason: "queue-full",
		}
	}

	if degraded {
		c.stats.Degraded++
		c.stats.Admitted++
		c.met.degraded.Inc()
		c.met.admitted.Inc()
		c.chargeTenant(r)
		return Decision{Verdict: DegradeBestEffort, Reason: "deadline-infeasible"}
	}
	c.stats.Admitted++
	c.met.admitted.Inc()
	c.chargeTenant(r)
	return Decision{Verdict: Admit}
}

// ResolveShed finalizes a ShedVictim verdict for the arrival described
// by r: shed reports whether the executor found a strictly-lower-value
// victim to evict (the arrival was admitted in its place); false means
// the arrival itself was the cheapest job in sight and was refused. On
// admission the arrival's tenant is charged exactly as a direct Admit
// would have (the victim's slot is released separately via JobDone).
func (c *Controller) ResolveShed(r Request, shed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shed {
		c.stats.Shed++
		c.stats.Admitted++
		c.met.shed.Inc()
		c.met.admitted.Inc()
		c.chargeTenant(r)
	} else {
		c.stats.Rejected++
		c.stats.QueueFullRejections++
		c.met.rejected.Inc()
		c.met.queueFull.Inc()
		c.tenantRejected(r)
	}
}

// ShedRefusalErr is the typed error an executor attaches to an arrival
// refused because no lower-value victim existed.
func ShedRefusalErr(id string, depth, bound int) error {
	return fmt.Errorf("admission: %s: active set %d at bound %d and no lower-value victim: %w",
		id, depth, bound, ErrQueueFull)
}
