package cliutil

import (
	"math"
	"strings"
	"testing"
)

func TestValidators(t *testing.T) {
	if err := MinInt("-jobs", 0, 1); err == nil || !strings.Contains(err.Error(), "-jobs") {
		t.Errorf("MinInt(0,1) = %v", err)
	}
	if err := MinInt("-jobs", 1, 1); err != nil {
		t.Errorf("MinInt(1,1) = %v", err)
	}
	if err := Positive("-sf", 0); err == nil {
		t.Error("Positive(0) accepted")
	}
	if err := Positive("-sf", math.NaN()); err == nil {
		t.Error("Positive(NaN) accepted")
	}
	if err := NonNegative("-arrival", -1); err == nil {
		t.Error("NonNegative(-1) accepted")
	}
	if err := Fraction("-fault-rate", 1.5); err == nil {
		t.Error("Fraction(1.5) accepted")
	}
	if err := Fraction("-fault-rate", 0.5); err != nil {
		t.Errorf("Fraction(0.5) = %v", err)
	}
}

func TestValidateAllJoins(t *testing.T) {
	if err := ValidateAll(nil, nil); err != nil {
		t.Errorf("all-nil = %v", err)
	}
	err := ValidateAll(Positive("-sf", -1), nil, MinInt("-gpus", 0, 1))
	if err == nil {
		t.Fatal("joined errors lost")
	}
	for _, want := range []string{"-sf", "-gpus"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s: %v", want, err)
		}
	}
}
