package aqp

import "sync"

// This file is the parallel data path: an epoch's per-partition row runs
// are folded into private partial GroupTables by a pool of goroutines,
// then combined by GroupTable.Merge in partition-index order.
//
// Determinism argument, in full, because the equivalence suite leans on
// it:
//
//  1. Partition p's records arrive in a fixed order (a pure function of
//     the topic — never of batch sizing or scheduling), and every record
//     of partition p is folded into partial p by exactly one goroutine at
//     a time. The floating-point operation sequence inside partial p is
//     therefore identical at every worker width, including width 1.
//  2. Partials are merged in partition-index order, so the addition order
//     into each merged cell is fixed too.
//
// Scheduling decides only *when* each partition's fold runs, never the
// arithmetic itself, so snapshots are bit-identical across widths. The
// sequential reference (width 1) is the same computation run inline.

// runPartitions folds each non-empty partition batch into its partial
// table using up to width goroutines. Width 1 (or fewer non-empty
// partitions than workers would need) processes inline in partition
// order; the result is bit-identical either way.
func runPartitions[T any](width int, batches [][]T, partials []*GroupTable, process func([]T, *GroupTable)) {
	work := make([]int, 0, len(batches))
	for p, b := range batches {
		if len(b) > 0 {
			work = append(work, p)
		}
	}
	if width > len(work) {
		width = len(work)
	}
	if width <= 1 {
		for _, p := range work {
			process(batches[p], partials[p])
		}
		return
	}
	jobs := make(chan int, len(work))
	for _, p := range work {
		jobs <- p
	}
	close(jobs)
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for p := range jobs {
				process(batches[p], partials[p])
			}
		}()
	}
	wg.Wait()
}
