// Command rotary-unified runs a mixed AQP + DLT workload through the §VI
// unified arbitration system: one virtual clock, one historical
// repository, one cluster-wide fairness threshold across both resource
// substrates.
//
// Usage:
//
//	rotary-unified [-threshold 0.5] [-aqp-jobs 10] [-dlt-jobs 10] [-sf 0.01] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rotary"
	"rotary/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-unified: ")
	var (
		threshold  = flag.Float64("threshold", 0.5, "cluster-wide fairness threshold T in [0, 1]")
		aqpJobs    = flag.Int("aqp-jobs", 10, "AQP workload size")
		dltJobs    = flag.Int("dlt-jobs", 10, "DLT workload size")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed       = flag.Uint64("seed", 1, "random seed")
		traceOut   = flag.String("trace-out", "", "stream every trace event (both substrates) as JSON lines to this file")
		metricsOut = flag.String("metrics-out", "", "write the final metrics registry (Prometheus text format) to this file")
	)
	flag.Parse()
	if err := cliutil.ValidateAll(
		cliutil.Fraction("-threshold", *threshold),
		cliutil.MinInt("-aqp-jobs", *aqpJobs, 1),
		cliutil.MinInt("-dlt-jobs", *dltJobs, 1),
		cliutil.Positive("-sf", *sf),
	); err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("generating TPC-H at SF=%g and seeding history…\n", *sf)
	ds := rotary.GenerateTPCH(*sf, *seed)
	cat := rotary.NewCatalog(ds, *seed)
	repo := rotary.NewRepository()
	if err := rotary.SeedAQPHistory(repo, cat, rotary.RecommendedBatchRows(cat)); err != nil {
		log.Fatal(err)
	}
	if err := rotary.SeedDLTHistory(repo, 30, 30, *seed); err != nil {
		log.Fatal(err)
	}

	if *traceOut != "" {
		sink, err := rotary.OpenJSONLSink(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		// Both substrates adopt the default tracer, so one JSONL stream
		// carries the unified run's full arbitration timeline.
		tracer := rotary.NewTracer(0)
		tracer.SetSink(sink)
		rotary.SetDefaultTracer(tracer)
	}

	u := rotary.NewUnifiedExecutor(rotary.UnifiedExecConfig{
		AQP:       rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat)),
		DLT:       rotary.DefaultDLTExecConfig(),
		Threshold: *threshold,
	}, repo)

	wcfg := rotary.DefaultAQPWorkload(*aqpJobs, *seed)
	wcfg.BatchRows = rotary.RecommendedBatchRows(cat)
	for _, spec := range rotary.GenerateAQPWorkload(wcfg) {
		j, err := rotary.BuildAQPJob(cat, spec)
		if err != nil {
			log.Fatal(err)
		}
		u.SubmitAQP(j, rotary.Time(spec.ArrivalSecs))
	}
	dltSpecs, err := rotary.GenerateDLTWorkload(rotary.DefaultDLTWorkload(*dltJobs, *seed))
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range dltSpecs {
		j, err := rotary.BuildDLTJob(spec)
		if err != nil {
			log.Fatal(err)
		}
		u.SubmitDLT(j, 0)
	}

	fmt.Printf("running %d AQP + %d DLT jobs with cluster-wide T = %.0f%%…\n\n",
		*aqpJobs, *dltJobs, *threshold*100)
	fmt.Printf("%10s %22s\n", "t(min)", "cluster min progress")
	for tick := rotary.Time(600); ; tick += 600 {
		u.Engine().RunUntil(tick)
		fmt.Printf("%10.0f %22.2f\n", tick.Minutes(), u.MinProgress())
		if u.Engine().Pending() == 0 {
			break
		}
	}

	aqpDone, dltDone := 0, 0
	for _, j := range u.AQPJobs() {
		if j.Status() == rotary.StatusAttainedStop {
			aqpDone++
		}
	}
	for _, j := range u.DLTJobs() {
		if j.Status() == rotary.StatusAttainedStop {
			dltDone++
		}
	}
	fmt.Printf("\nattained: %d/%d AQP, %d/%d DLT; makespan %.0f virtual minutes\n",
		aqpDone, len(u.AQPJobs()), dltDone, len(u.DLTJobs()), u.Engine().Now().Minutes())
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(rotary.DefaultMetrics().RenderText(true)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}
