package serve

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// TestClientStalledServerTimeout: a server that accepts connections but
// never replies must surface as a typed ErrTimeout within the
// configured bound — never an indefinite hang.
func TestClientStalledServerTimeout(t *testing.T) {
	socket := filepath.Join(t.TempDir(), "stall.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, read nothing, reply never
		}
	}()

	cl, err := NewClient(ClientConfig{
		Socket:         socket,
		Backoff:        5 * time.Millisecond,
		Attempts:       2,
		RequestTimeout: 75 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Do(Message{Op: "health"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("Do succeeded against a stalled server")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled server produced %v, want errors.Is(err, ErrTimeout)", err)
	}
	// 2 attempts x 75ms, plus backoff and slack: well under 5s either way.
	if elapsed > 5*time.Second {
		t.Fatalf("timed out after %v, deadline not enforced", elapsed)
	}
}

// TestClientRequestTimeoutDisabled: a negative RequestTimeout disables
// the deadline — the round trip against a healthy server succeeds.
func TestClientRequestTimeoutDisabled(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()

	cl, err := NewClient(ClientConfig{Socket: socket, RequestTimeout: -1})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	if r, err := cl.Do(Message{Op: "health"}); err != nil || !r.OK {
		t.Fatalf("health with disabled deadline: %v %+v", err, r)
	}
}
