// Package serve hosts the long-lived serving mode: a wall-clock driver
// around the virtual-time AQP arbiter. Clients submit completion-criteria
// statements (Fig. 3 syntax, e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS")
// over a Unix socket carrying one JSON object per line; the server admits
// or refuses them through the admission controller, arbitrates them on
// the shared virtual clock, and reports status and overload counters on
// demand. Beyond submit/status/stats/advance/drain, the protocol exposes
// live observability ops: "metrics" returns the Prometheus text rendering
// of the obs registry, "trace-tail" returns the last N events of the
// executor's bounded trace ring (with the overwrite count), and "health"
// is a cheap liveness probe reporting job counts and the virtual clock.
//
// The engine stays single-threaded: one driver goroutine owns the engine
// and executor exclusively. Connection handlers never touch either — they
// forward requests over a channel and relay the reply. Wall-clock pacing
// maps real time onto the virtual clock at a configurable rate; a drain
// (the SIGTERM path) stops accepting work and fast-forwards virtual time
// until every in-flight job reaches a terminal status, which each job's
// deadline watchdog guarantees is a bounded wait.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"rotary/internal/admission"
	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/metrics"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Config parameterizes the server.
type Config struct {
	// Socket is the Unix socket path to listen on.
	Socket string
	// Pace is how many virtual seconds elapse per wall-clock second.
	// Zero freezes the clock between requests — virtual time then only
	// advances on submit, advance, and drain (the deterministic-test
	// mode).
	Pace float64
	// Tick is the wall-clock pacing granularity. Defaults to 50 ms.
	Tick time.Duration
	// BatchRows is the default per-step batch size for submissions that
	// do not specify one.
	BatchRows int
	// Obs selects the metrics registry served by the "metrics" op (and
	// holding the server's own request counters). Nil uses the
	// process-wide obs.Default(), which the executor's and admission
	// controller's counters also land on by default.
	Obs *obs.Registry
}

// Message is one client request line.
type Message struct {
	// Op selects the operation: "submit", "status", "stats", "advance",
	// "metrics", "trace-tail", "health", or "drain".
	Op string `json:"op"`
	// ID names the job for submit (optional; generated when empty) and
	// status.
	ID string `json:"id,omitempty"`
	// Statement is the submit payload: a query name with an appended
	// Fig. 3 accuracy criterion, e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS".
	Statement string `json:"statement,omitempty"`
	// BatchRows overrides the server's default batch size for this job.
	BatchRows int `json:"batch_rows,omitempty"`
	// Seconds is the advance payload: virtual seconds to fast-forward.
	Seconds float64 `json:"seconds,omitempty"`
	// Wall selects whether the "metrics" op includes wall-clock-derived
	// metrics. The default false keeps the response deterministic for a
	// seeded run (golden comparisons rely on this).
	Wall bool `json:"wall,omitempty"`
	// N bounds the "trace-tail" op: how many trailing trace events to
	// render (default 32).
	N int `json:"n,omitempty"`
}

// Response is one server reply line.
type Response struct {
	OK         bool    `json:"ok"`
	Error      string  `json:"error,omitempty"`
	ID         string  `json:"id,omitempty"`
	Status     string  `json:"status,omitempty"`
	Accuracy   float64 `json:"accuracy,omitempty"`
	Progress   float64 `json:"progress,omitempty"`
	BestEffort bool    `json:"best_effort,omitempty"`
	VirtualNow float64 `json:"virtual_now,omitempty"`
	Jobs       int     `json:"jobs,omitempty"`
	Terminal   int     `json:"terminal,omitempty"`
	Report     string  `json:"report,omitempty"`
	// Dropped reports the tracer ring's overwritten-event count
	// (trace-tail and health ops).
	Dropped uint64 `json:"dropped,omitempty"`
}

type request struct {
	msg   Message
	reply chan Response
}

// Server is the live arbiter.
type Server struct {
	cfg  Config
	exec *core.AQPExecutor
	cat  *tpch.Catalog
	reg  *obs.Registry
	met  *serveMetrics

	reqCh   chan request
	drainCh chan chan Response
	doneCh  chan struct{}

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
	final Response
}

// New builds a server over an executor and the catalog its jobs bind to.
// The executor must not be Run — the server drives its engine itself.
func New(cfg Config, exec *core.AQPExecutor, cat *tpch.Catalog) (*Server, error) {
	if cfg.Socket == "" {
		return nil, errors.New("serve: socket path required")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Millisecond
	}
	if cfg.Pace < 0 {
		cfg.Pace = 0
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = workload.RecommendedBatchRows(cat)
	}
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	return &Server{
		cfg:     cfg,
		exec:    exec,
		cat:     cat,
		reg:     reg,
		met:     newServeMetrics(reg),
		reqCh:   make(chan request),
		drainCh: make(chan chan Response),
		doneCh:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// serveMetrics holds the server's own obs handles: per-op request
// counters, the virtual-clock position, and the pacing-drift gauge.
type serveMetrics struct {
	requests map[string]*obs.Counter
	other    *obs.Counter
	// paceDrift is wall-class: how many wall-clock seconds the virtual
	// clock lagged the ideal pace line at the last tick, measured before
	// the tick's catch-up. Healthy scheduling keeps it near the tick
	// interval; growth means the driver cannot keep pace.
	paceDrift  *obs.Gauge
	virtualNow *obs.Gauge
}

// serveOps are the protocol operations with pre-registered counters;
// anything else lands on op="other".
var serveOps = []string{"submit", "status", "stats", "advance", "metrics", "trace-tail", "health", "drain"}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{requests: make(map[string]*obs.Counter, len(serveOps))}
	for _, op := range serveOps {
		m.requests[op] = reg.Counter(fmt.Sprintf("rotary_serve_requests_total{op=%q}", op), "client requests by operation")
	}
	m.other = reg.Counter(`rotary_serve_requests_total{op="other"}`, "client requests by operation")
	m.paceDrift = reg.WallGauge("rotary_serve_pace_drift_secs",
		"wall seconds the virtual clock lagged the pace line at the last tick (pre catch-up)")
	m.virtualNow = reg.Gauge("rotary_serve_virtual_now_secs", "virtual clock position")
	return m
}

func (m *serveMetrics) count(op string) {
	if c, ok := m.requests[op]; ok {
		c.Inc()
		return
	}
	m.other.Inc()
}

// Serve listens on the configured socket and blocks until a drain
// completes (a client "drain" op or a Drain call, typically from the
// SIGTERM handler).
func (s *Server) Serve() error {
	ln, err := net.Listen("unix", s.cfg.Socket)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.drive()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed by drain
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
	<-s.doneCh
	// Unblock idle readers without cutting off in-flight replies: a
	// handler mid-write finishes, then its next read fails and it closes
	// its own connection.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Drain initiates a graceful drain from outside the protocol (the
// SIGTERM handler): stop accepting, fast-forward the in-flight jobs to
// termination, shut down. It returns the final drain response; if the
// server is already draining it reports that without blocking.
func (s *Server) Drain() Response {
	rc := make(chan Response, 1)
	select {
	case s.drainCh <- rc:
		return <-rc
	case <-s.doneCh:
		return s.Final()
	}
}

// Final reports the drain response once the server has drained (zero
// Response before then) — the shutdown report main prints after Serve
// returns.
func (s *Server) Final() Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// drive is the single goroutine that owns the engine and executor.
//
// Pacing uses a fixed start anchor: every tick advances the clock to
// base + Pace × (wall elapsed since anchor). The previous per-tick
// time.Now() deltas let each tick's scheduler lateness compound into
// permanent drift; against a fixed anchor a late tick is self-correcting
// — the next target already includes the time the tick missed. External
// clock jumps (the advance op, a submit's same-instant arbitration past
// the pace line) re-anchor so pacing resumes from the new position
// instead of freezing until wall time catches up.
func (s *Server) drive() {
	defer close(s.doneCh)
	var tickC <-chan time.Time
	if s.cfg.Pace > 0 {
		ticker := time.NewTicker(s.cfg.Tick)
		defer ticker.Stop()
		tickC = ticker.C
	}
	eng := s.exec.Engine()
	anchor := time.Now()
	base := eng.Now()
	target := func() sim.Time {
		return base + sim.Time(time.Since(anchor).Seconds()*s.cfg.Pace)
	}
	for {
		select {
		case r := <-s.reqCh:
			if r.msg.Op == "drain" {
				s.met.count("drain")
				r.reply <- s.drainNow()
				return
			}
			r.reply <- s.handle(r.msg)
			if eng.Now() > target() {
				anchor = time.Now()
				base = eng.Now()
			}
		case rc := <-s.drainCh:
			rc <- s.drainNow()
			return
		case <-tickC:
			t := target()
			if lag := (t - eng.Now()).Seconds(); lag > 0 {
				s.met.paceDrift.Set(lag / s.cfg.Pace)
				eng.RunUntil(t)
			}
			s.met.virtualNow.Set(eng.Now().Seconds())
		}
	}
}

// drainNow stops the listener and fast-forwards virtual time until every
// submitted job is terminal. Every admitted job carries a deadline
// watchdog event, so the event queue cannot run dry before the jobs do —
// but if it somehow does, the failure is reported, not hidden.
func (s *Server) drainNow() Response {
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	eng := s.exec.Engine()
	for s.terminalCount() < len(s.exec.Jobs()) && eng.Step() {
	}
	resp := s.statsResponse()
	resp.Status = "drained"
	if left := len(s.exec.Jobs()) - s.terminalCount(); left > 0 {
		resp.OK = false
		resp.Error = fmt.Sprintf("serve: drain left %d jobs unterminated", left)
	}
	s.mu.Lock()
	s.final = resp
	s.mu.Unlock()
	return resp
}

func (s *Server) terminalCount() int {
	n := 0
	for _, j := range s.exec.Jobs() {
		if j.Status().Terminal() {
			n++
		}
	}
	return n
}

// handle executes one request against the executor (driver goroutine
// only).
func (s *Server) handle(m Message) Response {
	s.met.count(m.Op)
	defer s.met.virtualNow.Set(s.exec.Engine().Now().Seconds())
	switch m.Op {
	case "submit":
		return s.submit(m)
	case "status":
		return s.status(m)
	case "stats":
		return s.statsResponse()
	case "advance":
		if m.Seconds < 0 {
			return Response{Error: "serve: advance seconds must be >= 0"}
		}
		eng := s.exec.Engine()
		eng.RunUntil(eng.Now() + sim.Time(m.Seconds))
		return Response{OK: true, VirtualNow: eng.Now().Seconds()}
	case "metrics":
		// Wall metrics are excluded by default so a seeded run's response
		// is replay-stable; {"op":"metrics","wall":true} includes them.
		return Response{
			OK:         true,
			VirtualNow: s.exec.Engine().Now().Seconds(),
			Report:     s.reg.RenderText(m.Wall),
		}
	case "trace-tail":
		tr := s.exec.Tracer()
		if tr == nil {
			return Response{Error: "serve: tracing disabled (executor has no Tracer configured)"}
		}
		n := m.N
		if n <= 0 {
			n = 32
		}
		return Response{
			OK:         true,
			VirtualNow: s.exec.Engine().Now().Seconds(),
			Report:     tr.Render(n),
			Dropped:    tr.Dropped(),
		}
	case "health":
		resp := Response{
			OK:         true,
			Status:     "healthy",
			Jobs:       len(s.exec.Jobs()),
			Terminal:   s.terminalCount(),
			VirtualNow: s.exec.Engine().Now().Seconds(),
		}
		if tr := s.exec.Tracer(); tr != nil {
			resp.Dropped = tr.Dropped()
		}
		return resp
	default:
		return Response{Error: fmt.Sprintf("serve: unknown op %q", m.Op)}
	}
}

// submit parses the statement, binds the job, and pushes it through the
// admission gate at the current virtual instant. The arrival (and its
// admission verdict) is forced to fire before replying, so the response
// carries the decision.
func (s *Server) submit(m Message) Response {
	cmd, crit, err := criteria.Parse(m.Statement)
	if err != nil {
		return Response{Error: err.Error()}
	}
	if crit.Kind != criteria.Accuracy {
		return Response{Error: `serve: serving mode requires an accuracy criterion (e.g. "q5 ACC MIN 80% WITHIN 900 SECONDS")`}
	}
	deadline, ok := crit.Deadline.DeadlineSeconds()
	if !ok {
		return Response{Error: "serve: AQP deadlines must be wall-time, not epochs"}
	}
	query := strings.ToLower(strings.TrimSpace(cmd))
	cls, err := tpch.ClassOf(query)
	if err != nil {
		return Response{Error: err.Error()}
	}
	id := m.ID
	if id == "" {
		id = fmt.Sprintf("srv-%03d", len(s.exec.Jobs()))
	}
	for _, j := range s.exec.Jobs() {
		if j.ID() == id {
			return Response{Error: fmt.Sprintf("serve: duplicate job id %q", id)}
		}
	}
	batch := m.BatchRows
	if batch <= 0 {
		batch = s.cfg.BatchRows
	}
	j, err := workload.BuildAQPJob(s.cat, workload.AQPSpec{
		ID:           id,
		Query:        query,
		Class:        cls,
		Accuracy:     crit.Threshold,
		DeadlineSecs: deadline,
		BatchRows:    batch,
	})
	if err != nil {
		return Response{Error: err.Error()}
	}
	eng := s.exec.Engine()
	s.exec.Submit(j, eng.Now())
	// Fire the arrival and its same-instant arbitration so the reply
	// reports the admission verdict.
	eng.RunUntil(eng.Now())
	st := j.Status()
	resp := Response{
		ID:         id,
		Status:     st.String(),
		BestEffort: j.BestEffort(),
		VirtualNow: eng.Now().Seconds(),
	}
	switch st {
	case core.StatusRejected, core.StatusShed:
		resp.Error = "serve: admission refused: " + st.String()
	default:
		resp.OK = true
	}
	return resp
}

func (s *Server) status(m Message) Response {
	for _, j := range s.exec.Jobs() {
		if j.ID() != m.ID {
			continue
		}
		return Response{
			OK:         true,
			ID:         j.ID(),
			Status:     j.Status().String(),
			Accuracy:   j.EstimatedAccuracy(),
			Progress:   j.AttainmentProgress(),
			BestEffort: j.BestEffort(),
			VirtualNow: s.exec.Engine().Now().Seconds(),
		}
	}
	return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID)}
}

func (s *Server) statsResponse() Response {
	var as admission.Stats
	if ctrl := s.exec.Admission(); ctrl != nil {
		as = ctrl.Stats()
	}
	return Response{
		OK:         true,
		Jobs:       len(s.exec.Jobs()),
		Terminal:   s.terminalCount(),
		VirtualNow: s.exec.Engine().Now().Seconds(),
		Report:     metrics.RenderOverload("serve", as, s.exec.Overload()),
	}
}

// serveConn reads JSON lines, forwards each to the driver, and writes the
// reply. Oversized or malformed lines get an error response instead of
// killing the connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m Message
		var resp Response
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			resp = Response{Error: "serve: bad request: " + err.Error()}
		} else {
			resp = s.dispatch(m)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch forwards one message to the driver goroutine, handling the
// races around drain: the driver may exit between the send and the
// reply.
func (s *Server) dispatch(m Message) Response {
	r := request{msg: m, reply: make(chan Response, 1)}
	select {
	case s.reqCh <- r:
	case <-s.doneCh:
		return Response{Error: "serve: server draining"}
	}
	select {
	case resp := <-r.reply:
		return resp
	case <-s.doneCh:
		// The driver may have replied just before exiting.
		select {
		case resp := <-r.reply:
			return resp
		default:
			return Response{Error: "serve: server draining"}
		}
	}
}
