// Package estimate implements Rotary's estimation machinery: weighted
// linear regression, the paper's joint historical/real-time curve fitting,
// the top-k similar-job selection with similarity(x,y) = 1 − |x−y|/max(x,y),
// the non-parametric envelope-function convergence detector, the training
// epoch estimator (TEE), the training memory estimator (TME), and the
// historical-job repository that feeds them.
package estimate

import "math"

// Point is an (x, y) observation.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Line is a fitted y = Intercept + Slope·x.
type Line struct {
	Intercept float64
	Slope     float64
}

// At evaluates the line.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// XFor solves for the x at which the line reaches y, reporting false when
// the slope is non-positive (the line never gets there) — the erroneous-
// estimation regime Fig. 11 exercises.
func (l Line) XFor(y float64) (float64, bool) {
	if l.Slope <= 1e-12 {
		return 0, false
	}
	return (y - l.Intercept) / l.Slope, true
}

// FitWLS fits y = a + b·x by weighted least squares (the paper cites Kay's
// classical WLS). Zero or negative weights drop the point. With fewer than
// two distinct x values the fit degenerates to a flat line through the
// weighted mean.
func FitWLS(points []Point, weights []float64) Line {
	if len(points) != len(weights) {
		panic("estimate: points/weights length mismatch")
	}
	var sw, swx, swy, swxx, swxy float64
	for i, p := range points {
		w := weights[i]
		if w <= 0 {
			continue
		}
		sw += w
		swx += w * p.X
		swy += w * p.Y
		swxx += w * p.X * p.X
		swxy += w * p.X * p.Y
	}
	if sw == 0 {
		return Line{}
	}
	den := sw*swxx - swx*swx
	if math.Abs(den) < 1e-12 {
		return Line{Intercept: swy / sw}
	}
	b := (sw*swxy - swx*swy) / den
	a := (swy - b*swx) / sw
	return Line{Intercept: a, Slope: b}
}

// JointFit implements §IV-A's continuous joint fitting: "each recorded
// real-time result and the combination of all the historical data will
// share equal weight". With m real-time points, every real-time point
// carries weight 1/(m+1) and the historical points split the remaining
// 1/(m+1) evenly. With no real-time data the fit is purely historical;
// with no history it is purely real-time.
func JointFit(historical, realtime []Point) Line {
	m := len(realtime)
	switch {
	case m == 0 && len(historical) == 0:
		return Line{}
	case m == 0:
		w := make([]float64, len(historical))
		for i := range w {
			w[i] = 1
		}
		return FitWLS(historical, w)
	case len(historical) == 0:
		w := make([]float64, m)
		for i := range w {
			w[i] = 1
		}
		return FitWLS(realtime, w)
	}
	share := 1.0 / float64(m+1)
	points := make([]Point, 0, len(historical)+m)
	weights := make([]float64, 0, len(historical)+m)
	histEach := share / float64(len(historical))
	for _, p := range historical {
		points = append(points, p)
		weights = append(weights, histEach)
	}
	for _, p := range realtime {
		points = append(points, p)
		weights = append(weights, share)
	}
	return FitWLS(points, weights)
}

// Similarity is §IV-B's size similarity: 1 − |x−y| / max(x, y), in [0, 1]
// for non-negative inputs. Two zeros are identical (similarity 1).
func Similarity(x, y float64) float64 {
	if x < 0 {
		x = -x
	}
	if y < 0 {
		y = -y
	}
	m := math.Max(x, y)
	if m == 0 {
		return 1
	}
	return 1 - math.Abs(x-y)/m
}
