package core_test

import (
	"fmt"
	"testing"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Starvation-freedom under any policy: with the aging guard armed, every
// admitted job must receive its first grant within a bounded number of
// grant rounds of arriving, no matter how the inner policy ranks it.
// Priority-ordered policies (EDF, LAF) would otherwise park the tail of
// an overloaded queue indefinitely.
func TestStarvationFreedomAcrossPolicies(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 200); err != nil {
		t.Fatal(err)
	}
	const (
		aging = 4
		nJobs = 8 // 4x overload for a 2-thread pool
	)
	policies := []struct {
		name  string
		sched core.AQPScheduler
	}{
		{"rotary", core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3))},
		{"relaqs", baselines.ReLAQS{}},
		{"edf", baselines.EDFAQP{}},
		{"laf", baselines.LAFAQP{}},
		{"rr", baselines.RoundRobinAQP{}},
	}
	queries := []string{"q1", "q6", "q12", "q14", "q3", "q19"}
	for _, p := range policies {
		t.Run(p.name, func(t *testing.T) {
			tracer := &core.Tracer{}
			cfg := core.DefaultAQPExecConfig(1e6)
			cfg.Threads = 2
			cfg.AgingRounds = aging
			cfg.Tracer = tracer
			exec := core.NewAQPExecutor(cfg, p.sched, repo)
			var jobs []*core.AQPJob
			for i := 0; i < nJobs; i++ {
				j := buildJob(t, cat, fmt.Sprintf("st-%d", i), queries[i%len(queries)], 0.9, 1e7)
				jobs = append(jobs, j)
				exec.Submit(j, 0)
			}
			if err := exec.Run(); err != nil {
				t.Fatalf("%s: %v", p.name, err)
			}
			events := tracer.Events()
			for _, j := range jobs {
				if !j.Status().Terminal() {
					t.Errorf("%s: job %s not terminal (%v)", p.name, j.ID(), j.Status())
				}
				// Find the job's first grant, counting the distinct grant
				// instants (arbitration rounds that granted someone) it sat
				// through first. The guard caps the wait at roughly its
				// aging threshold plus one forced grant per queued peer;
				// without it, a last-ranked job under EDF or LAF waits for
				// every higher-priority job's entire epoch sequence.
				rounds := 0
				lastGrantAt := -1.0
				first := false
				for _, ev := range events {
					if ev.Kind != core.TraceGrant {
						continue
					}
					if ev.Job == j.ID() {
						first = true
						break
					}
					if at := ev.At.Seconds(); at != lastGrantAt {
						rounds++
						lastGrantAt = at
					}
				}
				if !first {
					t.Errorf("%s: job %s was never granted", p.name, j.ID())
					continue
				}
				if limit := aging + nJobs + 2; rounds > limit {
					t.Errorf("%s: job %s waited %d grant rounds for its first grant (limit %d)",
						p.name, j.ID(), rounds, limit)
				}
			}
		})
	}
}

// The guard must stay out of the way when the inner policy is already
// fair: round-robin grants everyone without forced interventions.
func TestStarvationGuardIdleUnderFairPolicy(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 2
	cfg.AgingRounds = 4
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	for i := 0; i < 6; i++ {
		exec.Submit(buildJob(t, cat, fmt.Sprintf("fair-%d", i), "q1", 0.9, 1e7), 0)
	}
	if err := exec.Run(); err != nil {
		t.Fatal(err)
	}
	if f := exec.Overload().ForcedGrants; f != 0 {
		t.Errorf("round-robin needed %d forced grants; the guard should be idle under a fair policy", f)
	}
}
