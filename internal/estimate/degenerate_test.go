package estimate

import (
	"math"
	"testing"
)

// Degenerate-input guards: every estimator must survive pathological
// series — constant, non-monotone, single-point, and NaN/Inf-polluted —
// by reporting "unknown" (ok=false) or a finite fallback, never by
// leaking NaN/Inf into an arbitration decision.

func TestFitWLSDropsNonFinitePoints(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 1},
		{X: math.NaN(), Y: 2},
		{X: 2, Y: math.Inf(1)},
		{X: 3, Y: 3},
	}
	w := []float64{1, 1, 1, 1}
	line := FitWLS(pts, w)
	if !finite(line.Slope) || !finite(line.Intercept) {
		t.Fatalf("non-finite fit %+v from polluted points", line)
	}
	if math.Abs(line.Slope-1) > 1e-9 || math.Abs(line.Intercept) > 1e-9 {
		t.Fatalf("fit %+v, want y=x from the two finite points", line)
	}
}

func TestFitWLSDropsNonFiniteWeights(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 2, Y: 100}, {X: 3, Y: 3}}
	w := []float64{1, math.NaN(), 1}
	line := FitWLS(pts, w)
	if math.Abs(line.Slope-1) > 1e-9 {
		t.Fatalf("slope %v, want 1 with the NaN-weighted outlier dropped", line.Slope)
	}
}

func TestFitWLSAllPointsDegenerate(t *testing.T) {
	pts := []Point{{X: math.NaN(), Y: 1}, {X: 2, Y: math.NaN()}}
	line := FitWLS(pts, []float64{1, 1})
	if line != (Line{}) {
		t.Fatalf("fit %+v, want zero line when every point is dropped", line)
	}
}

func TestFitWLSSinglePoint(t *testing.T) {
	line := FitWLS([]Point{{X: 5, Y: 0.7}}, []float64{1})
	if line.Slope != 0 || math.Abs(line.Intercept-0.7) > 1e-9 {
		t.Fatalf("fit %+v, want flat line through the single point", line)
	}
}

func TestXForRejectsDegenerateLines(t *testing.T) {
	cases := []struct {
		name string
		line Line
	}{
		{"flat", Line{Intercept: 0.5, Slope: 0}},
		{"negative slope", Line{Intercept: 0.9, Slope: -0.1}},
		{"nan slope", Line{Intercept: 0.5, Slope: math.NaN()}},
		{"nan intercept", Line{Intercept: math.NaN(), Slope: 1}},
		{"inf intercept", Line{Intercept: math.Inf(-1), Slope: 1}},
	}
	for _, c := range cases {
		if x, ok := c.line.XFor(0.95); ok {
			t.Errorf("%s: XFor = (%v, true), want unknown", c.name, x)
		}
	}
}

func TestAccuracyProgressConstantSeries(t *testing.T) {
	est := NewAccuracyProgress(NewRepository(), 3)
	// A constant series fits a flat line; the estimate must stay finite
	// and clamped.
	rt := []Point{{X: 10, Y: 0.4}, {X: 20, Y: 0.4}, {X: 30, Y: 0.4}}
	p, ok := est.EstimateAt("q1", "small", 1000, rt, 300)
	if !ok {
		t.Fatal("constant series should still yield a (flat) estimate")
	}
	if !finite(p) || p < 0 || p > 1 {
		t.Fatalf("estimate %v outside [0,1]", p)
	}
}

func TestAccuracyProgressNaNSeries(t *testing.T) {
	est := NewAccuracyProgress(NewRepository(), 3)
	rt := []Point{{X: 10, Y: math.NaN()}, {X: 20, Y: math.NaN()}}
	p, ok := est.EstimateAt("q1", "small", 1000, rt, 300)
	if ok {
		t.Fatalf("all-NaN series produced estimate %v, want unknown", p)
	}
}

func TestAccuracyProgressNonMonotoneSeries(t *testing.T) {
	est := NewAccuracyProgress(NewRepository(), 3)
	rt := []Point{{X: 10, Y: 0.8}, {X: 20, Y: 0.2}, {X: 30, Y: 0.9}, {X: 40, Y: 0.1}}
	p, ok := est.EstimateAt("q1", "small", 1000, rt, 1e6)
	if ok && (!finite(p) || p < 0 || p > 1) {
		t.Fatalf("non-monotone series leaked estimate %v outside [0,1]", p)
	}
}

func TestTEENonMonotoneAndConstantSeries(t *testing.T) {
	repo := NewRepository()
	repo.AddDLT(DLTRecord{
		ID: "h1", Model: "resnet", Family: "cnn", Dataset: "cifar10",
		ParamsM: 11, BatchSize: 32,
		AccCurve: []float64{0.3, 0.5, 0.6, 0.65, 0.68},
	})
	tee := NewTEE(repo, 3)
	q := DLTQuery{Model: "resnet", Family: "cnn", Dataset: "cifar10", ParamsM: 11, BatchSize: 32}

	// Constant real-time accuracy: the joint fit may go flat; either the
	// estimator reports unknown or a finite positive epoch count.
	if e, ok := tee.EstimateEpochs(q, []float64{0.4, 0.4, 0.4, 0.4}, 0.95); ok && e < 1 {
		t.Fatalf("constant series: epochs %d < 1", e)
	}
	// Non-monotone (oscillating) accuracy must not panic or overflow.
	if e, ok := tee.EstimateEpochs(q, []float64{0.5, 0.1, 0.6, 0.05}, 0.95); ok && e < 1 {
		t.Fatalf("non-monotone series: epochs %d < 1", e)
	}
}

func TestTEENearFlatSlopeSaturates(t *testing.T) {
	repo := NewRepository()
	// A barely-rising curve puts the target crossing astronomically far
	// out; the estimate must saturate at a large finite int, not overflow.
	curve := make([]float64, 8)
	for i := range curve {
		curve[i] = 0.10 + 1e-11*float64(i)
	}
	repo.AddDLT(DLTRecord{
		ID: "flat", Model: "m", Family: "f", Dataset: "d",
		ParamsM: 1, BatchSize: 8, AccCurve: curve,
	})
	tee := NewTEE(repo, 3)
	q := DLTQuery{Model: "m", Family: "f", Dataset: "d", ParamsM: 1, BatchSize: 8}
	e, ok := tee.EstimateEpochs(q, nil, 0.99)
	if ok && (e < 1 || e > 1e9+1) {
		t.Fatalf("near-flat slope: epochs %d outside (0, 1e9]", e)
	}
}

func TestTMENaNHistoryReportsUnknown(t *testing.T) {
	repo := NewRepository()
	repo.AddDLT(DLTRecord{
		ID: "bad", Model: "m", Family: "f", Dataset: "d",
		ParamsM: 1, BatchSize: 32, PeakMemMB: math.NaN(),
	})
	tme := NewTME(repo, 3)
	if mb, ok := tme.EstimateMB("d", 1, 32); ok {
		t.Fatalf("all-NaN history produced %v MB, want unknown", mb)
	}
}

func TestTMESinglePointHistory(t *testing.T) {
	repo := NewRepository()
	repo.AddDLT(DLTRecord{
		ID: "one", Model: "m", Family: "f", Dataset: "d",
		ParamsM: 1, BatchSize: 32, PeakMemMB: 4000,
	})
	tme := NewTME(repo, 3)
	mb, ok := tme.EstimateMB("d", 1, 64)
	if !ok {
		t.Fatal("single-point history should yield a flat-line estimate")
	}
	if !finite(mb) || mb <= 0 {
		t.Fatalf("estimate %v MB, want finite positive", mb)
	}
}

func TestEnvelopeIgnoresNonFinite(t *testing.T) {
	e := NewEnvelope(3)
	e.Observe(10)
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	e.Observe(10)
	e.Observe(10)
	if e.Observations() != 3 {
		t.Fatalf("Observations = %d, want 3 (non-finite dropped)", e.Observations())
	}
	if r := e.Ratio(); r != 1 {
		t.Fatalf("Ratio = %v, want 1 for a stable window", r)
	}
	if !e.Converged(0.99) {
		t.Fatal("window of identical finite values should converge")
	}
}

func TestEnvelopeSinglePointNotConverged(t *testing.T) {
	e := NewEnvelope(4)
	e.Observe(5)
	if e.Ratio() != 0 {
		t.Fatalf("Ratio = %v, want 0 with one observation", e.Ratio())
	}
	if e.Converged(0.5) {
		t.Fatal("single observation must not converge")
	}
}
